// ablation measures the design choices DESIGN.md flags for study: the
// direct bus/network data path for dirty write-backs, the directory cache,
// and the paper's dispatch arbitration policy, each toggled independently
// on a write-back-heavy workload.
package main

import (
	"fmt"
	"log"

	"ccnuma/internal/config"
	"ccnuma/internal/machine"
	"ccnuma/internal/stats"
	"ccnuma/internal/workload"
)

func run(arch string, mutate func(*config.Config)) *stats.Run {
	cfg := config.Base()
	cfg, err := cfg.WithArch(arch)
	if err != nil {
		log.Fatal(err)
	}
	cfg.Nodes, cfg.ProcsPerNode = 4, 2
	cfg.SimLimit = 10_000_000_000
	if mutate != nil {
		mutate(&cfg)
	}
	m, err := machine.New(cfg, "ocean")
	if err != nil {
		log.Fatal(err)
	}
	w, err := workload.New("ocean", workload.SizeTest, m.NProcs())
	if err != nil {
		log.Fatal(err)
	}
	if err := w.Setup(m); err != nil {
		log.Fatal(err)
	}
	r, err := m.Run(w.Body)
	if err != nil {
		log.Fatal(err)
	}
	return r
}

func main() {
	fmt.Println("Controller design ablations (ocean, 4x2 system, PPC engines)")
	fmt.Println()

	baseline := run("PPC", nil)
	fmt.Printf("%-34s %10d cycles (util %.1f%%, queue %.0f ns)\n",
		"baseline PPC", baseline.ExecTime,
		100*baseline.AvgUtilization(-1), baseline.AvgQueueDelayNs(-1))

	cases := []struct {
		name   string
		mutate func(*config.Config)
	}{
		{"no directory cache", func(c *config.Config) { c.DirCacheEntries = 0 }},
		{"tiny directory cache (256)", func(c *config.Config) { c.DirCacheEntries = 256 }},
		{"FIFO dispatch arbitration", func(c *config.Config) { c.Arbitration = config.ArbFIFO }},
		{"livelock limit 1", func(c *config.Config) { c.LivelockLimit = 1 }},
		{"livelock limit 16", func(c *config.Config) { c.LivelockLimit = 16 }},
	}
	for _, tc := range cases {
		r := run("PPC", tc.mutate)
		delta := 100 * (float64(r.ExecTime)/float64(baseline.ExecTime) - 1)
		fmt.Printf("%-34s %10d cycles (%+.1f%%)\n", tc.name, r.ExecTime, delta)
	}

	fmt.Println()
	fmt.Println("Same ablations on HWC engines:")
	hbase := run("HWC", nil)
	fmt.Printf("%-34s %10d cycles\n", "baseline HWC", hbase.ExecTime)
	for _, tc := range cases {
		r := run("HWC", tc.mutate)
		delta := 100 * (float64(r.ExecTime)/float64(hbase.ExecTime) - 1)
		fmt.Printf("%-34s %10d cycles (%+.1f%%)\n", tc.name, r.ExecTime, delta)
	}
	fmt.Printf("\nPP penalty at baseline: %+.0f%%\n", 100*stats.Penalty(hbase, baseline))
}
