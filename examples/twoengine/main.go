// twoengine explores the paper's two-protocol-engine designs (Section 3.4):
// it compares one- and two-engine controllers on a communication-intensive
// workload, prints the LPE/RPE utilization imbalance of the paper's
// local/remote address split, and contrasts it with the round-robin split
// the paper discusses as the "more even" alternative.
package main

import (
	"fmt"
	"log"

	"ccnuma/internal/config"
	"ccnuma/internal/machine"
	"ccnuma/internal/stats"
	"ccnuma/internal/workload"
)

func run(arch string, split config.SplitPolicy) *stats.Run {
	cfg := config.Base()
	cfg, err := cfg.WithArch(arch)
	if err != nil {
		log.Fatal(err)
	}
	cfg.Split = split
	cfg.Nodes, cfg.ProcsPerNode = 4, 2
	cfg.SimLimit = 10_000_000_000
	m, err := machine.New(cfg, "radix")
	if err != nil {
		log.Fatal(err)
	}
	w, err := workload.New("radix", workload.SizeTest, m.NProcs())
	if err != nil {
		log.Fatal(err)
	}
	if err := w.Setup(m); err != nil {
		log.Fatal(err)
	}
	r, err := m.Run(w.Body)
	if err != nil {
		log.Fatal(err)
	}
	if err := w.Verify(); err != nil {
		log.Fatal(err)
	}
	return r
}

func main() {
	fmt.Println("Radix sort: one vs two protocol engines (4x2 system)")
	fmt.Println()

	for _, engine := range []string{"HWC", "PPC"} {
		one := run(engine, config.SplitLocalRemote)
		two := run("2"+engine, config.SplitLocalRemote)
		gain := 1 - float64(two.ExecTime)/float64(one.ExecTime)
		fmt.Printf("%-4s -> 2%-4s  exec %8d -> %8d cycles  (%.0f%% faster)\n",
			engine, engine, one.ExecTime, two.ExecTime, 100*gain)
		fmt.Printf("  LPE: util %5.1f%%  share %5.1f%%  queue %6.0f ns\n",
			100*two.AvgUtilization(0), 100*two.EngineShare(0), two.AvgQueueDelayNs(0))
		fmt.Printf("  RPE: util %5.1f%%  share %5.1f%%  queue %6.0f ns\n",
			100*two.AvgUtilization(1), 100*two.EngineShare(1), two.AvgQueueDelayNs(1))
	}

	fmt.Println()
	fmt.Println("Split-policy ablation on 2PPC (paper section 3.4 discussion):")
	lr := run("2PPC", config.SplitLocalRemote)
	rr := run("2PPC", config.SplitRoundRobin)
	fmt.Printf("  local/remote split: %8d cycles (LPE %4.1f%% / RPE %4.1f%% util)\n",
		lr.ExecTime, 100*lr.AvgUtilization(0), 100*lr.AvgUtilization(1))
	fmt.Printf("  round-robin split:  %8d cycles (eng0 %4.1f%% / eng1 %4.1f%% util)\n",
		rr.ExecTime, 100*rr.AvgUtilization(0), 100*rr.AvgUtilization(1))
	fmt.Println()
	fmt.Println("The paper keeps the local/remote split despite its imbalance: only")
	fmt.Println("the LPE needs a directory path, and no handler is duplicated across")
	fmt.Println("the two engines' FSMs.")
}
