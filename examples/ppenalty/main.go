// ppenalty reproduces the paper's prediction methodology (Section 3.3,
// Figure 12): sweep a simple synthetic workload across communication rates
// (RCCPI), measure the protocol-processor penalty at each point, and print
// the penalty-versus-RCCPI curve that lets a designer predict the penalty
// of a large application from its RCCPI alone.
package main

import (
	"fmt"
	"log"

	"ccnuma/internal/config"
	"ccnuma/internal/machine"
	"ccnuma/internal/stats"
	"ccnuma/internal/workload"
)

func measure(arch string, sharePct, computePer int) *stats.Run {
	cfg := config.Base()
	cfg, err := cfg.WithArch(arch)
	if err != nil {
		log.Fatal(err)
	}
	cfg.Nodes, cfg.ProcsPerNode = 8, 4
	cfg.SimLimit = 10_000_000_000
	m, err := machine.New(cfg, "micro")
	if err != nil {
		log.Fatal(err)
	}
	w := workload.NewMicro(300, sharePct, computePer, m.NProcs())
	if err := w.Setup(m); err != nil {
		log.Fatal(err)
	}
	r, err := m.Run(w.Body)
	if err != nil {
		log.Fatal(err)
	}
	return r
}

func main() {
	fmt.Println("PP penalty vs communication rate (micro workload sweep, 8x4 system)")
	fmt.Println()
	fmt.Printf("%-22s %12s %12s %12s\n", "point (share/compute)", "1000xRCCPI", "PP penalty", "PPC util")
	type knob struct{ share, compute int }
	for _, k := range []knob{
		{2, 400}, {5, 200}, {10, 120}, {20, 80}, {35, 50}, {50, 30}, {70, 20}, {90, 10},
	} {
		hwc := measure("HWC", k.share, k.compute)
		ppc := measure("PPC", k.share, k.compute)
		fmt.Printf("share=%2d%% compute=%-4d  %12.2f %11.0f%% %11.1f%%\n",
			k.share, k.compute, 1000*hwc.RCCPI(),
			100*stats.Penalty(hwc, ppc), 100*ppc.AvgUtilization(-1))
	}
	fmt.Println()
	fmt.Println("Reading the curve: find a large application's RCCPI with a cheap")
	fmt.Println("simulator, look up the penalty here — the paper's methodology for")
	fmt.Println("predicting controller-architecture impact without detailed simulation.")
}
