// Quickstart: build a CC-NUMA machine, run one SPLASH-2-style workload on
// two controller architectures, and print the PP penalty — the paper's
// headline metric — in about thirty lines of API use.
package main

import (
	"fmt"
	"log"

	"ccnuma/internal/config"
	"ccnuma/internal/machine"
	"ccnuma/internal/stats"
	"ccnuma/internal/workload"
)

func run(arch string) *stats.Run {
	// Start from the paper's base system (16 SMP nodes x 4 processors,
	// 128-byte lines, 70 ns network) and pick a controller architecture.
	cfg := config.Base()
	cfg, err := cfg.WithArch(arch)
	if err != nil {
		log.Fatal(err)
	}
	cfg.Nodes, cfg.ProcsPerNode = 4, 2 // shrink for a quick demo
	cfg.SimLimit = 10_000_000_000

	m, err := machine.New(cfg, "ocean")
	if err != nil {
		log.Fatal(err)
	}

	// Workloads allocate their shared regions, then run SPMD on every
	// simulated processor; the run returns the paper's statistics.
	w, err := workload.New("ocean", workload.SizeTest, m.NProcs())
	if err != nil {
		log.Fatal(err)
	}
	if err := w.Setup(m); err != nil {
		log.Fatal(err)
	}
	r, err := m.Run(w.Body)
	if err != nil {
		log.Fatal(err)
	}
	if err := w.Verify(); err != nil {
		log.Fatal(err)
	}
	return r
}

func main() {
	hwc := run("HWC")
	ppc := run("PPC")
	fmt.Printf("Ocean on HWC: %8d cycles (controller utilization %.1f%%)\n",
		hwc.ExecTime, 100*hwc.AvgUtilization(-1))
	fmt.Printf("Ocean on PPC: %8d cycles (controller utilization %.1f%%)\n",
		ppc.ExecTime, 100*ppc.AvgUtilization(-1))
	fmt.Printf("PP penalty:   %+.0f%%   (1000 x RCCPI = %.2f)\n",
		100*stats.Penalty(hwc, ppc), 1000*hwc.RCCPI())
}
