package memaddr

import (
	"testing"
	"testing/quick"

	"ccnuma/internal/config"
)

func space(t *testing.T, mutate func(*config.Config)) *Space {
	t.Helper()
	cfg := config.Base()
	if mutate != nil {
		mutate(&cfg)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	return NewSpace(&cfg)
}

func TestAllocRoundRobinPlacement(t *testing.T) {
	s := space(t, nil)
	base := s.Alloc(4 * 4096)
	if base%4096 != 0 {
		t.Fatalf("base %#x not page aligned", base)
	}
	for i := 0; i < 4; i++ {
		want := i % 16
		if got := s.Home(base + Addr(i*4096)); got != want {
			t.Errorf("page %d home = %d, want %d", i, got, want)
		}
	}
	// A second allocation continues the rotation.
	b2 := s.Alloc(4096)
	if got := s.Home(b2); got != 4 {
		t.Errorf("next allocation home = %d, want 4", got)
	}
}

func TestAllocFirstTouch(t *testing.T) {
	s := space(t, func(c *config.Config) { c.Placement = config.PlaceFirstTouch })
	base := s.Alloc(4096)
	if got := s.Home(base); got != -1 {
		t.Fatalf("untouched page has home %d, want -1", got)
	}
	if got := s.HomeOrAssign(base, 7); got != 7 {
		t.Fatalf("first touch assigned %d, want 7", got)
	}
	// Subsequent touches keep the original assignment.
	if got := s.HomeOrAssign(base, 3); got != 7 {
		t.Fatalf("second touch reassigned to %d, want 7", got)
	}
}

func TestAllocOnNode(t *testing.T) {
	s := space(t, nil)
	base := s.AllocOnNode(3*4096, 9)
	for i := 0; i < 3; i++ {
		if got := s.Home(base + Addr(i*4096)); got != 9 {
			t.Errorf("page %d home = %d, want 9", i, got)
		}
	}
}

func TestAllocPlaced(t *testing.T) {
	s := space(t, nil)
	base := s.AllocPlaced(4*4096, func(p int) int { return (p * 2) % 16 })
	for i := 0; i < 4; i++ {
		if got := s.Home(base + Addr(i*4096)); got != (i*2)%16 {
			t.Errorf("page %d home = %d, want %d", i, got, (i*2)%16)
		}
	}
}

func TestNullPageUnmapped(t *testing.T) {
	s := space(t, nil)
	if got := s.Home(0); got != -1 {
		t.Fatalf("null page has home %d", got)
	}
	if base := s.Alloc(1); base < 4096 {
		t.Fatalf("first allocation %#x overlaps the null page", base)
	}
}

func TestLineAndBankMapping(t *testing.T) {
	s := space(t, nil)
	if got := s.Line(0x1234); got != 0x1200+0x00 {
		// 0x1234 with 128-byte lines -> 0x1200 | (0x34 &^ 0x7f) = 0x1200.
		t.Fatalf("Line(0x1234) = %#x", got)
	}
	if got := s.LineOffset(0x1234); got != 0x34 {
		t.Fatalf("LineOffset = %#x, want 0x34", got)
	}
	// Consecutive lines map to consecutive banks modulo MemBanks.
	for i := 0; i < 8; i++ {
		addr := Addr(0x10000 + i*128)
		if got := s.Bank(addr); got != i%4 {
			t.Errorf("Bank(line %d) = %d, want %d", i, got, i%4)
		}
	}
}

func TestAllocationsDoNotOverlap(t *testing.T) {
	s := space(t, nil)
	type region struct{ base, end Addr }
	var regions []region
	for _, n := range []int{1, 4096, 4097, 100000, 128} {
		b := s.Alloc(n)
		regions = append(regions, region{b, b + Addr(n)})
	}
	for i := range regions {
		for j := i + 1; j < len(regions); j++ {
			a, b := regions[i], regions[j]
			if a.base < b.end && b.base < a.end {
				t.Fatalf("regions %d and %d overlap: %+v %+v", i, j, a, b)
			}
		}
	}
}

// Property: Line is idempotent, offset-consistent, and bank assignment only
// depends on the line.
func TestLineProperties(t *testing.T) {
	s := space(t, nil)
	f := func(a uint32) bool {
		addr := Addr(a)
		line := s.Line(addr)
		if s.Line(line) != line {
			return false
		}
		if line+Addr(s.LineOffset(addr)) != addr {
			return false
		}
		return s.Bank(addr) == s.Bank(line)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAllocPanicsOnBadInput(t *testing.T) {
	s := space(t, nil)
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("zero alloc", func() { s.Alloc(0) })
	mustPanic("bad node", func() { s.AllocOnNode(4096, 99) })
	mustPanic("bad placed home", func() {
		s.AllocPlaced(4096, func(int) int { return 1000 })
	})
}
