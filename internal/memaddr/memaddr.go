// Package memaddr implements the simulated physical address space of the
// CC-NUMA machine: allocation of shared regions, page-granular home-node
// placement (round-robin, first-touch, or explicit hints), and the
// line/bank mappings used by the memory controllers.
package memaddr

import (
	"fmt"

	"ccnuma/internal/config"
)

// Addr is a simulated physical address.
type Addr = uint64

// Space is the machine's physical address space. It is not safe for
// concurrent use; in the simulator only one goroutine runs at a time.
type Space struct {
	cfg   *config.Config
	next  Addr         // next unallocated address (starts above the null page)
	homes map[Addr]int // page number -> home node (missing = unassigned)
	rr    int          // next node for round-robin placement
}

// NewSpace creates an empty address space for the given configuration.
func NewSpace(cfg *config.Config) *Space {
	return &Space{
		cfg:   cfg,
		next:  Addr(cfg.PageSize), // keep page 0 unmapped to catch null addresses
		homes: make(map[Addr]int),
	}
}

// pageOf returns the page number containing addr.
func (s *Space) pageOf(addr Addr) Addr { return addr / Addr(s.cfg.PageSize) }

// Line returns the line-aligned base address of addr.
func (s *Space) Line(addr Addr) Addr { return addr &^ Addr(s.cfg.LineSize-1) }

// LineOffset returns addr's offset within its line.
func (s *Space) LineOffset(addr Addr) int { return int(addr & Addr(s.cfg.LineSize-1)) }

// Bank returns the interleaved memory bank index (within the home node's
// memory controller) serving addr's line.
func (s *Space) Bank(addr Addr) int {
	return int(s.Line(addr)/Addr(s.cfg.LineSize)) % s.cfg.MemBanks
}

// Alloc reserves n bytes of shared memory, page-aligned, and assigns home
// nodes to its pages according to the configured placement policy. Under
// first-touch placement pages remain unassigned until first access. The
// returned base address is page-aligned.
func (s *Space) Alloc(n int) Addr {
	return s.allocPages(n, func(page int) int {
		switch s.cfg.Placement {
		case config.PlaceFirstTouch:
			return -1
		default: // round-robin is also the fallback for explicit allocations
			// made without hints.
			h := s.rr
			s.rr = (s.rr + 1) % s.cfg.Nodes
			return h
		}
	})
}

// AllocOnNode reserves n bytes homed entirely on one node, regardless of the
// placement policy. It is used for per-processor private regions (stacks,
// task queues) and for the paper's FFT programmer-optimized placement.
func (s *Space) AllocOnNode(n, node int) Addr {
	if node < 0 || node >= s.cfg.Nodes {
		panic(fmt.Sprintf("memaddr: AllocOnNode node %d out of range", node))
	}
	return s.allocPages(n, func(int) int { return node })
}

// AllocPlaced reserves n bytes and calls home(i) for the i-th page of the
// region to choose its home node. A negative return leaves the page to
// first-touch assignment.
func (s *Space) AllocPlaced(n int, home func(page int) int) Addr {
	return s.allocPages(n, home)
}

func (s *Space) allocPages(n int, home func(page int) int) Addr {
	if n <= 0 {
		panic(fmt.Sprintf("memaddr: allocation of %d bytes", n))
	}
	ps := Addr(s.cfg.PageSize)
	base := (s.next + ps - 1) &^ (ps - 1)
	pages := (Addr(n) + ps - 1) / ps
	for i := Addr(0); i < pages; i++ {
		h := home(int(i))
		if h >= 0 {
			if h >= s.cfg.Nodes {
				panic(fmt.Sprintf("memaddr: home %d out of range", h))
			}
			s.homes[base/ps+i] = h
		}
	}
	s.next = base + pages*ps
	return base
}

// Home returns the home node of addr, or -1 if the page is still unassigned
// (first-touch placement before any access).
func (s *Space) Home(addr Addr) int {
	if h, ok := s.homes[s.pageOf(addr)]; ok {
		return h
	}
	return -1
}

// HomeOrAssign returns the home node of addr, assigning the page to toucher
// if it has none yet (first-touch placement).
func (s *Space) HomeOrAssign(addr Addr, toucher int) int {
	page := s.pageOf(addr)
	if h, ok := s.homes[page]; ok {
		return h
	}
	if toucher < 0 || toucher >= s.cfg.Nodes {
		panic(fmt.Sprintf("memaddr: toucher %d out of range", toucher))
	}
	s.homes[page] = toucher
	return toucher
}

// Allocated returns the highest allocated address bound (exclusive).
func (s *Space) Allocated() Addr { return s.next }
