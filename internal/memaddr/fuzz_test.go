package memaddr

import (
	"testing"

	"ccnuma/internal/config"
)

// fuzzConfig derives a valid geometry from raw fuzz bytes (or skips).
func fuzzConfig(t *testing.T, lineExp, pageExp, banks, nodes uint8) *config.Config {
	t.Helper()
	c := config.Base()
	c.LineSize = 1 << (4 + int(lineExp)%6)        // 16..512 bytes
	c.PageSize = c.LineSize << (int(pageExp) % 5) // 1x..16x the line
	c.MemBanks = 1 + int(banks)%8
	c.Nodes = 1 << (int(nodes) % 5) // 1..16, power of two for all topologies
	if err := c.Validate(); err != nil {
		t.Skip(err)
	}
	return &c
}

// FuzzLineBankMapping checks the address-decomposition invariants for
// arbitrary addresses under arbitrary valid geometries: line alignment,
// offset round-trips, and bank stability across a line.
func FuzzLineBankMapping(f *testing.F) {
	f.Add(uint64(0x12345), uint8(0), uint8(0), uint8(0), uint8(2))
	f.Add(uint64(1)<<40, uint8(5), uint8(4), uint8(7), uint8(4))
	f.Add(uint64(4096), uint8(3), uint8(2), uint8(3), uint8(0))
	f.Fuzz(func(t *testing.T, addr uint64, lineExp, pageExp, banks, nodes uint8) {
		c := fuzzConfig(t, lineExp, pageExp, banks, nodes)
		s := NewSpace(c)
		line := s.Line(addr)
		if line%uint64(c.LineSize) != 0 {
			t.Fatalf("Line(%#x) = %#x is not line-aligned", addr, line)
		}
		if addr < line || addr-line >= uint64(c.LineSize) {
			t.Fatalf("addr %#x outside its own line [%#x, %#x)", addr, line, line+uint64(c.LineSize))
		}
		if got := uint64(s.LineOffset(addr)); got != addr-line {
			t.Fatalf("LineOffset(%#x) = %d, want %d", addr, got, addr-line)
		}
		if s.Line(line) != line {
			t.Fatalf("Line is not idempotent: Line(%#x) = %#x", line, s.Line(line))
		}
		b := s.Bank(addr)
		if b < 0 || b >= c.MemBanks {
			t.Fatalf("Bank(%#x) = %d out of range [0,%d)", addr, b, c.MemBanks)
		}
		// Every address within the line maps to the same bank.
		if s.Bank(line) != b || s.Bank(line+uint64(c.LineSize)-1) != b {
			t.Fatalf("bank differs within line %#x: %d vs %d vs %d",
				line, b, s.Bank(line), s.Bank(line+uint64(c.LineSize)-1))
		}
	})
}

// FuzzHomePlacementRoundTrip checks that explicit home-node placement
// survives the page mapping: every address of an AllocOnNode region
// resolves back to the requested node, allocations are page-aligned and
// non-overlapping, and homes are stable across repeated queries.
func FuzzHomePlacementRoundTrip(f *testing.F) {
	f.Add(uint8(0), uint8(0), uint16(1), uint8(1), uint8(3))
	f.Add(uint8(3), uint8(2), uint16(9000), uint8(5), uint8(2))
	f.Add(uint8(5), uint8(4), uint16(64), uint8(0), uint8(4))
	f.Fuzz(func(t *testing.T, lineExp, pageExp uint8, n uint16, node, nodes uint8) {
		c := fuzzConfig(t, lineExp, pageExp, 0, nodes)
		s := NewSpace(c)
		home := int(node) % c.Nodes
		size := 1 + int(n)%(4*c.PageSize)
		base := s.AllocOnNode(size, home)
		if base%uint64(c.PageSize) != 0 {
			t.Fatalf("AllocOnNode returned unaligned base %#x", base)
		}
		other := s.Alloc(c.PageSize)
		if other < base+uint64(size) {
			t.Fatalf("allocations overlap: [%#x,+%d) then %#x", base, size, other)
		}
		for _, off := range []uint64{0, uint64(size) / 2, uint64(size) - 1} {
			a := base + off
			if got := s.Home(a); got != home {
				t.Fatalf("Home(%#x) = %d, want %d", a, got, home)
			}
			if got := s.Home(a); got != home {
				t.Fatalf("Home(%#x) changed on re-query: %d", a, got)
			}
		}
	})
}
