// Package smpbus models the node-local SMP bus of the paper's base system:
// a 100 MHz, 16-byte-wide, fully pipelined, split-transaction bus with
// separate address and data paths, snooping caches, and an interleaved
// memory controller that is a separate bus agent from the coherence
// controller. The coherence controller participates as a privileged agent:
// its bus-side directory copy lets it claim (defer) transactions that need
// protocol action, and the direct data path forwards dirty-remote
// write-backs straight to the network interface.
package smpbus

import (
	"fmt"

	"ccnuma/internal/config"
	"ccnuma/internal/obs"
	"ccnuma/internal/sim"
)

// Kind identifies a bus transaction type.
type Kind int

const (
	// Read requests a shared copy of a line (processor read miss).
	Read Kind = iota
	// ReadEx requests an exclusive copy with data (processor write miss).
	ReadEx
	// Upgrade requests exclusivity for a line the requester holds Shared
	// (no data transfer needed if nothing intervenes).
	Upgrade
	// WriteBack evicts a dirty line to memory (local home) or through the
	// controller's direct data path to the network (remote home).
	WriteBack
	// Inval is a controller-issued invalidation of local copies (on behalf
	// of a home-node invalidation request).
	Inval
	// Fetch is a controller-issued read of a line for a remote requester;
	// a dirty local copy downgrades to Shared/Owned semantics preserved by
	// the snoop rules.
	Fetch
	// FetchEx is a controller-issued read+invalidate of a line for a
	// remote exclusive requester.
	FetchEx
	// supplyKind is the internal deferred-reply transaction.
	supplyKind

	numKinds
)

var kindNames = [...]string{"Read", "ReadEx", "Upgrade", "WriteBack", "Inval", "Fetch", "FetchEx", "Supply"}

func (k Kind) String() string {
	if k >= 0 && int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// CCSrc is the Src value identifying the coherence controller as issuer.
const CCSrc = -1

// Status reports how a transaction completed.
type Status int

const (
	// OK means the transaction completed (data delivered where relevant).
	OK Status = iota
	// RetryNeeded means the transaction collided with an in-flight
	// transaction on the same line; the issuer should re-arbitrate after
	// the configured back-off (re-evaluating its cache state first).
	RetryNeeded
	// NoData means a Fetch/FetchEx found neither a cached copy nor local
	// memory backing (a fetch on a remote-home line whose dirty copy was
	// written back in the meantime).
	NoData
)

func (s Status) String() string {
	switch s {
	case OK:
		return "OK"
	case RetryNeeded:
		return "RetryNeeded"
	case NoData:
		return "NoData"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Outcome is passed to a transaction's Done callback.
type Outcome struct {
	Status Status
	// Shared reports, for Read, that other caches hold the line (install
	// Shared rather than Exclusive); for WriteBack, that sibling caches
	// still share the line (the home must keep this node in the sharing
	// vector); for Fetch, that a dirty copy supplied the data.
	Shared bool
	// Dirty reports, for Fetch/FetchEx, that the data came from a dirty
	// cache copy rather than memory (the home must update memory).
	Dirty bool
	// WithData reports that the completion delivered the full line (an
	// upgrade grant after queued invalidations carries none; a deferred
	// read-exclusive reply does).
	WithData bool
	// Data is the shadow cache-line value delivered with the completion
	// (meaningful when WithData, or for Fetch/FetchEx data collection).
	Data uint64
}

// Txn is one bus transaction. Create with fields set and hand to Issue; the
// bus invokes Done exactly once.
type Txn struct {
	ID   uint64
	Kind Kind
	Line uint64
	// Src is the index of the issuing processor's snooper, or CCSrc for
	// controller-issued transactions.
	Src int
	// HomeLocal reports whether the line's home node is this node
	// (precomputed by the issuer from the address map).
	HomeLocal bool
	// RequesterOwns marks an Upgrade issued by a processor that holds the
	// line Owned (dirty-shared): the node already has dirty ownership, so
	// the upgrade only invalidates in-node siblings and must not consult
	// the home.
	RequesterOwns bool
	// Data is the shadow cache-line value carried by the transaction
	// (write-back payloads, controller deferred replies).
	Data uint64
	// Attr is the causal-span transaction ID of the miss episode this
	// transaction serves (zero for untracked work: write-backs,
	// invalidations, controller fetches). It rides along at zero timing
	// cost and is only consulted when attribution is on.
	Attr uint64
	// Done receives the outcome. It runs at the completion cycle.
	Done func(Outcome)

	// supplyFor links an internal deferred-reply transaction to the parked
	// transaction it completes.
	supplyFor *Txn
	withData  bool
	shared    bool
	// snoopData is the shadow value captured from the supplying snooper at
	// strobe time (valid when a snooper answered Owned or Shared).
	snoopData uint64
	// deferredToCC marks a transaction parked with the controller. Parked
	// transactions hold their pending slot for a long time but are not
	// actively transferring data, so controller interventions may proceed
	// past them (the controller's MSHR-fill check covers the actual
	// data-transfer window).
	deferredToCC bool
}

// SnoopResult is a snooping agent's verdict at address-strobe time.
type SnoopResult int

const (
	// SnoopNone: no copy, no interest.
	SnoopNone SnoopResult = iota
	// SnoopShared: agent holds a clean sharable copy (and will supply a
	// Read via cache-to-cache transfer if no dirty owner exists).
	SnoopShared
	// SnoopOwned: agent holds a dirty copy and will supply it.
	SnoopOwned
	// SnoopDefer: the coherence controller claims the transaction; it will
	// complete it later with a deferred reply.
	SnoopDefer
)

func (r SnoopResult) String() string {
	switch r {
	case SnoopNone:
		return "SnoopNone"
	case SnoopShared:
		return "SnoopShared"
	case SnoopOwned:
		return "SnoopOwned"
	case SnoopDefer:
		return "SnoopDefer"
	default:
		return fmt.Sprintf("SnoopResult(%d)", int(r))
	}
}

// Snooper observes address strobes. Snoop must apply any state change the
// transaction implies for the agent (invalidate on ReadEx/Upgrade/Inval/
// FetchEx, downgrade on Read/Fetch) and return its verdict. The issuing
// agent is not snooped.
type Snooper interface {
	Snoop(txn *Txn) SnoopResult
}

// DataSupplier is optionally implemented by snoopers that track shadow
// line values. When a snooper answers SnoopOwned (or SnoopShared for a
// clean cache-to-cache transfer) the bus reads the supplied value through
// this interface; snoopers must keep the last value readable even after
// the snoop invalidated the copy.
type DataSupplier interface {
	LineData(line uint64) uint64
}

// Controller is the coherence controller's bus-facing interface.
type Controller interface {
	Snooper
	// AcceptDeferred transfers completion responsibility for txn to the
	// controller after its Snoop returned SnoopDefer. The controller later
	// calls Bus.Supply (or Bus.Abort) with the same txn.
	AcceptDeferred(txn *Txn)
	// CaptureWriteBack receives a dirty-remote write-back through the
	// direct data path, after the data has crossed the bus. sharedLeft
	// reports whether sibling caches still hold the line; data is the
	// shadow line value being written back.
	CaptureWriteBack(line uint64, sharedLeft bool, data uint64)
}

// Bus is one node's SMP bus plus its memory controller.
type Bus struct {
	eng  *sim.Engine
	cfg  *config.Config
	node int
	tr   *obs.Tracer // nil when tracing is disabled

	addr  *sim.Resource
	data  *sim.Resource
	banks []*sim.Resource

	snoopers []Snooper
	cc       Controller

	pending map[uint64]*Txn // line -> in-flight processor transaction
	nextID  uint64

	// mem is the shadow value image of this node's local memory, keyed by
	// line address. Absent entries read as zero (never-written memory).
	mem map[uint64]uint64

	counts  [numKinds]uint64
	retries uint64
	stalls  uint64 // injected bus outages (fault layer)

	spans *obs.SpanTracker // nil when attribution is disabled
}

// New creates a bus for the given node with the configured number of
// interleaved memory banks. tr may be nil.
func New(eng *sim.Engine, cfg *config.Config, node int, tr *obs.Tracer) *Bus {
	b := &Bus{
		eng:     eng,
		cfg:     cfg,
		node:    node,
		tr:      tr,
		addr:    sim.NewResource(eng, fmt.Sprintf("bus-addr-%d", node)),
		data:    sim.NewResource(eng, fmt.Sprintf("bus-data-%d", node)),
		pending: make(map[uint64]*Txn),
		mem:     make(map[uint64]uint64),
	}
	for i := 0; i < cfg.MemBanks; i++ {
		b.banks = append(b.banks, sim.NewResource(eng, fmt.Sprintf("bank-%d.%d", node, i)))
	}
	return b
}

// AttachSnooper registers a processor cache agent and returns its Src index.
func (b *Bus) AttachSnooper(s Snooper) int {
	b.snoopers = append(b.snoopers, s)
	return len(b.snoopers) - 1
}

// AttachSpans attaches the latency-attribution span tracker (nil keeps
// attribution disabled).
func (b *Bus) AttachSpans(sp *obs.SpanTracker) { b.spans = sp }

// AttachController registers the node's coherence controller.
func (b *Bus) AttachController(cc Controller) {
	if b.cc != nil {
		panic("smpbus: controller already attached")
	}
	b.cc = cc
}

// Node returns the node index this bus belongs to.
func (b *Bus) Node() int { return b.node }

// AddrResource and DataResource expose the underlying resources for
// utilization reporting.
func (b *Bus) AddrResource() *sim.Resource { return b.addr }

// DataResource exposes the data-bus resource.
func (b *Bus) DataResource() *sim.Resource { return b.data }

// Stall occupies the address and data buses for dur cycles (fault
// injection: a transient bus outage). Outstanding transactions queue
// behind the outage and proceed when it clears.
func (b *Bus) Stall(dur sim.Time) {
	if dur <= 0 {
		return
	}
	b.stalls++
	b.addr.Acquire(dur, func(sim.Time) {})
	b.data.Acquire(dur, func(sim.Time) {})
}

// Stalls returns the number of injected bus outages.
func (b *Bus) Stalls() uint64 { return b.stalls }

// NumBanks returns the interleaved memory bank count.
func (b *Bus) NumBanks() int { return len(b.banks) }

// BanksBusy returns the summed busy time of all memory banks (for mean
// bank-occupancy sampling).
func (b *Bus) BanksBusy() sim.Time {
	var t sim.Time
	for _, bk := range b.banks {
		t += bk.Busy()
	}
	return t
}

// Count returns how many transactions of kind k reached the address strobe.
func (b *Bus) Count(k Kind) uint64 { return b.counts[k] }

// Retries returns how many transactions were bounced for same-line
// conflicts.
func (b *Bus) Retries() uint64 { return b.retries }

// MemValue returns the shadow value of a line in this node's local memory
// (zero if never written).
func (b *Bus) MemValue(line uint64) uint64 { return b.mem[line] }

// SetMemValue overwrites the shadow memory image for a line. It exists for
// controllers that absorb remote write-backs into home memory.
func (b *Bus) SetMemValue(line, v uint64) { b.mem[line] = v }

func (b *Bus) bank(line uint64) *sim.Resource {
	return b.banks[int(line/uint64(b.cfg.LineSize))%len(b.banks)]
}

// Issue submits a transaction. The address bus is arbitrated FIFO; the
// snoop happens BusArb cycles after the grant; completion depends on the
// responder (sibling cache, memory, or a controller deferred reply).
func (b *Bus) Issue(txn *Txn) {
	if txn.Done == nil {
		panic("smpbus: transaction without Done callback")
	}
	if txn.Line&uint64(b.cfg.LineSize-1) != 0 {
		panic(fmt.Sprintf("smpbus: unaligned line %#x", txn.Line))
	}
	b.nextID++
	txn.ID = b.nextID
	b.spans.SpanBegin(txn.Attr, obs.StageBusArb, 0, b.eng.Now())
	if txn.Kind == WriteBack && txn.HomeLocal {
		// The line enters the write-back buffer now; any read serialized
		// later is forwarded the buffered value even though the bus/bank
		// occupancy of the actual memory update is still ahead. Without
		// this, a read strobing between the eviction and the write-back's
		// data phase would return stale memory.
		b.mem[txn.Line] = txn.Data
	}
	b.addr.Acquire(b.cfg.AddrStrobe, func(start sim.Time) {
		b.eng.At(start+b.cfg.BusArb, func() { b.strobe(txn) })
	})
}

// strobe runs at address-strobe time: conflict check, snoop, resolution.
func (b *Bus) strobe(txn *Txn) {
	b.counts[txn.Kind]++
	now := b.eng.Now()
	b.tr.BusStrobe(now, b.node, txn.Kind.String(), txn.Line, txn.Src)
	b.spans.SpanEnd(txn.Attr, obs.StageBusArb, 0, now)

	// Same-line serialization. Processor transactions register in the
	// pending table and bounce on conflicts. Controller-issued fetches and
	// invalidations must not strobe in the middle of a LIVE same-line
	// transfer (a supplier may already be invalidated with the requester
	// not yet filled, or a concurrent local miss may be about to install a
	// stale exclusive copy), so they bounce on non-parked conflicts.
	// Transactions parked with the controller (deferredToCC) are waiting
	// on the controller itself and are bypassed — the controller
	// serializes per line above the bus.
	if txn.Src != CCSrc {
		if txn.Kind == WriteBack {
			// Write-backs bounce only on LIVE same-line transfers. A parked
			// transaction may be waiting on the home, and the home may be
			// waiting on this very write-back (the evict-then-re-request
			// pattern) — blocking here would livelock. Write-backs do not
			// register in the pending table: they complete unconditionally
			// and carry no fill to protect.
			if prev, busy := b.pending[txn.Line]; busy && !prev.deferredToCC {
				b.bounce(txn, now)
				return
			}
		} else {
			if prev, busy := b.pending[txn.Line]; busy && prev != txn {
				b.bounce(txn, now)
				return
			}
			b.pending[txn.Line] = txn
		}
	} else {
		switch txn.Kind {
		case Fetch, FetchEx, Inval:
			if prev, busy := b.pending[txn.Line]; busy && !prev.deferredToCC {
				b.bounce(txn, now)
				return
			}
		case WriteBack, supplyKind:
			// Controller memory writes and deferred replies never bounce:
			// they carry no fill to protect and parked work depends on them.
		case Read, ReadEx, Upgrade:
			panic(fmt.Sprintf("smpbus: controller-issued processor kind %v line %#x", txn.Kind, txn.Line))
		default:
			panic(fmt.Sprintf("smpbus: controller-issued unknown kind %v line %#x", txn.Kind, txn.Line))
		}
	}
	if txn.Kind == supplyKind {
		b.resolveSupply(txn, now)
		return
	}

	// Snoop everyone but the issuer. The supplying snooper's shadow line
	// value is captured so data-bearing resolutions can deliver it (the
	// dirty owner's value wins over a clean sharer's).
	verdict := SnoopNone
	sharedSeen := false
	supplier := -1
	for i, s := range b.snoopers {
		if i == txn.Src {
			continue
		}
		switch s.Snoop(txn) {
		case SnoopShared:
			sharedSeen = true
			if supplier < 0 {
				supplier = i
			}
		case SnoopOwned:
			if verdict == SnoopOwned {
				panic(fmt.Sprintf("smpbus: two dirty owners for line %#x", txn.Line))
			}
			verdict = SnoopOwned
			supplier = i
		case SnoopNone, SnoopDefer:
		}
	}
	if supplier >= 0 {
		if ds, ok := b.snoopers[supplier].(DataSupplier); ok {
			txn.snoopData = ds.LineData(txn.Line)
		}
	}
	deferred := false
	ccShared := false
	if b.cc != nil && txn.Src != CCSrc {
		switch v := b.cc.Snoop(txn); v {
		case SnoopDefer:
			deferred = true
		case SnoopShared:
			// The bus-side directory reports remote sharers: memory may
			// still respond, but the line must install Shared.
			ccShared = true
		case SnoopNone:
		case SnoopOwned:
			panic(fmt.Sprintf("smpbus: controller snoop returned owner verdict for line %#x", txn.Line))
		default:
			panic(fmt.Sprintf("smpbus: controller snoop returned unknown verdict %v", v))
		}
	}

	switch txn.Kind {
	case Read:
		b.resolveRead(txn, now, verdict == SnoopOwned, sharedSeen, deferred, ccShared)
	case ReadEx:
		b.resolveReadEx(txn, now, verdict == SnoopOwned, deferred)
	case Upgrade:
		switch {
		case txn.RequesterOwns:
			// The requester holds the line Owned: node-level dirty
			// ownership is already here; invalidating the snooped siblings
			// suffices.
			b.complete(txn, now+2, Outcome{Status: OK})
		case verdict == SnoopOwned:
			// A sibling held the line dirty (Owned): in-node ownership
			// transfer, exactly like ReadEx — the home must not be asked,
			// since node-level ownership does not change.
			b.transferData(txn, now+b.cfg.CacheToCache, Outcome{Status: OK, Dirty: true, WithData: true, Data: txn.snoopData})
		case deferred:
			txn.deferredToCC = true
			b.cc.AcceptDeferred(txn)
		default:
			// Exclusivity granted on the spot: siblings invalidated at
			// snoop.
			b.complete(txn, now+2, Outcome{Status: OK})
		}
	case WriteBack:
		b.resolveWriteBack(txn, now, sharedSeen)
	case Inval:
		b.complete(txn, now+2, Outcome{Status: OK})
	case Fetch, FetchEx:
		b.resolveFetch(txn, now, verdict == SnoopOwned, sharedSeen)
	default:
		panic(fmt.Sprintf("smpbus: unhandled kind %v", txn.Kind))
	}
}

func (b *Bus) resolveRead(txn *Txn, now sim.Time, owned, sharedSeen, deferred, ccShared bool) {
	switch {
	case owned:
		// Cache-to-cache transfer from the dirty owner. Ownership stays in
		// the node (the supplier moved to Owned in its snoop handler), so
		// no write-back to home is needed here.
		b.transferData(txn, now+b.cfg.CacheToCache, Outcome{Status: OK, Shared: true, Dirty: true, Data: txn.snoopData})
	case sharedSeen:
		// Clean cache-to-cache transfer from a sharer.
		b.transferData(txn, now+b.cfg.CacheToCache, Outcome{Status: OK, Shared: true, Data: txn.snoopData})
	case deferred:
		txn.deferredToCC = true
		b.cc.AcceptDeferred(txn)
	case txn.HomeLocal:
		b.memoryRead(txn, now, Outcome{Status: OK, Shared: ccShared})
	default:
		panic(fmt.Sprintf("smpbus: read of remote line %#x with no responder (controller missing?)", txn.Line))
	}
}

func (b *Bus) resolveReadEx(txn *Txn, now sim.Time, owned, deferred bool) {
	switch {
	case owned:
		// Dirty copy moves cache-to-cache; the snoop invalidated it at the
		// supplier. Home directory state is unchanged (the node as a whole
		// still owns the line for remote homes; local homes track only
		// remote sharers, of which there are none when a local M exists).
		b.transferData(txn, now+b.cfg.CacheToCache, Outcome{Status: OK, Dirty: true, Data: txn.snoopData})
	case deferred:
		txn.deferredToCC = true
		b.cc.AcceptDeferred(txn)
	case txn.HomeLocal:
		b.memoryRead(txn, now, Outcome{Status: OK})
	default:
		panic(fmt.Sprintf("smpbus: readex of remote line %#x with no responder", txn.Line))
	}
}

func (b *Bus) resolveWriteBack(txn *Txn, now sim.Time, sharedLeft bool) {
	// Data crosses the bus starting two cycles after the strobe.
	b.data.AcquireAt(now+2, b.cfg.BusDataTime(), func(ds sim.Time) {
		end := ds + b.cfg.BusDataTime()
		if txn.HomeLocal {
			// Memory bank absorbs the line (its shadow value was already
			// forwarded from the write-back buffer at issue time).
			b.bank(txn.Line).AcquireAt(ds, b.cfg.BankBusy, nil)
			b.complete(txn, end, Outcome{Status: OK, Shared: sharedLeft})
			return
		}
		// Direct data path: the controller's bus interface forwards the
		// line to the network interface without dispatching a handler.
		if b.cc == nil {
			panic("smpbus: remote write-back with no controller")
		}
		line, shared, data := txn.Line, sharedLeft, txn.Data
		b.eng.At(end, func() { b.cc.CaptureWriteBack(line, shared, data) })
		b.complete(txn, end, Outcome{Status: OK, Shared: sharedLeft})
	})
}

func (b *Bus) resolveFetch(txn *Txn, now sim.Time, owned, sharedSeen bool) {
	switch {
	case owned:
		if txn.HomeLocal {
			// The dirty local copy downgrades to clean Shared as its data
			// leaves for the controller; home memory absorbs the line.
			b.bank(txn.Line).AcquireAt(now+b.cfg.CacheToCache, b.cfg.BankBusy, nil)
			b.mem[txn.Line] = txn.snoopData
		}
		b.transferData(txn, now+b.cfg.CacheToCache, Outcome{Status: OK, Shared: sharedSeen, Dirty: true, Data: txn.snoopData})
	case sharedSeen && txn.Kind == Fetch:
		b.transferData(txn, now+b.cfg.CacheToCache, Outcome{Status: OK, Shared: true, Data: txn.snoopData})
	case txn.HomeLocal:
		b.memoryRead(txn, now, Outcome{Status: OK, Shared: sharedSeen})
	case sharedSeen: // FetchEx on a remote-home line with only clean sharers
		// The sharers were invalidated by the snoop; there is no data to
		// collect locally and none is needed (the home supplies it).
		b.complete(txn, now+2, Outcome{Status: OK, Shared: true})
	default:
		b.complete(txn, now+2, Outcome{Status: NoData})
	}
}

// memoryRead models a line read from the interleaved memory: the bank is
// busy for BankBusy cycles; data reaches the bus MemAccess cycles after the
// bank accepts the access; the requester restarts on the critical quad
// word.
func (b *Bus) memoryRead(txn *Txn, now sim.Time, out Outcome) {
	out.Data = b.mem[txn.Line]
	b.bank(txn.Line).AcquireAt(now, b.cfg.BankBusy, func(bankStart sim.Time) {
		b.spans.SpanEnd(txn.Attr, obs.StageMem, 0, bankStart+b.cfg.MemAccess)
		b.transferData(txn, bankStart+b.cfg.MemAccess, out)
	})
}

// transferData moves a line over the data bus beginning no earlier than
// ready, completing the transaction at the critical-quad-word arrival.
func (b *Bus) transferData(txn *Txn, ready sim.Time, out Outcome) {
	b.data.AcquireAt(ready, b.cfg.BusDataTime(), func(ds sim.Time) {
		b.complete(txn, ds+b.cfg.CriticalQuad, out)
	})
}

// bounce rejects a strobed transaction with RetryNeeded two cycles later
// (the conflict-resolution window), attributing the window to the bus.
func (b *Bus) bounce(txn *Txn, now sim.Time) {
	b.retries++
	b.spans.SpanEnd(txn.Attr, obs.StageBus, 0, now+2)
	b.eng.After(2, func() { txn.Done(Outcome{Status: RetryNeeded}) })
}

// complete removes the pending entry and fires Done at time t.
func (b *Bus) complete(txn *Txn, t sim.Time, out Outcome) {
	b.spans.SpanEnd(txn.Attr, obs.StageBus, 0, t)
	b.eng.At(t, func() {
		if b.pending[txn.Line] == txn {
			delete(b.pending, txn.Line)
		}
		txn.Done(out)
	})
}

// Supply completes a previously deferred transaction. withData selects a
// full data transfer (read/readex responses) versus a bare grant (upgrade
// acknowledgements); shared tells a Read requester to install the line
// Shared; data is the shadow line value delivered with a data-bearing
// reply.
func (b *Bus) Supply(parked *Txn, withData, shared bool, data uint64) {
	s := &Txn{
		Kind:      supplyKind,
		Line:      parked.Line,
		Src:       CCSrc,
		HomeLocal: parked.HomeLocal,
		Data:      data,
		Attr:      parked.Attr,
		Done:      func(Outcome) {},
		supplyFor: parked,
		withData:  withData,
		shared:    shared,
	}
	b.Issue(s)
}

func (b *Bus) resolveSupply(s *Txn, now sim.Time) {
	parked := s.supplyFor
	out := Outcome{Status: OK, Shared: s.shared, WithData: s.withData, Data: s.Data}
	if s.withData {
		b.data.AcquireAt(now+2, b.cfg.BusDataTime(), func(ds sim.Time) {
			b.complete(parked, ds+b.cfg.CriticalQuad, out)
		})
		return
	}
	b.complete(parked, now+2, out)
}

// Abort bounces a deferred transaction back to its issuer with RetryNeeded
// (used when the controller decides the request must be re-evaluated, e.g.
// an upgrade whose line was invalidated while queued).
func (b *Bus) Abort(parked *Txn) {
	b.spans.SpanEnd(parked.Attr, obs.StageBus, 0, b.eng.Now()+2)
	b.eng.After(2, func() {
		if b.pending[parked.Line] == parked {
			delete(b.pending, parked.Line)
		}
		parked.Done(Outcome{Status: RetryNeeded})
	})
}
