package smpbus

import (
	"testing"

	"ccnuma/internal/config"
	"ccnuma/internal/sim"
)

// fakeSnooper returns a fixed verdict and records the transactions it saw.
type fakeSnooper struct {
	verdict SnoopResult
	seen    []*Txn
}

func (f *fakeSnooper) Snoop(txn *Txn) SnoopResult {
	f.seen = append(f.seen, txn)
	return f.verdict
}

// fakeCC defers everything it is told to and records events.
type fakeCC struct {
	verdict  SnoopResult
	deferred []*Txn
	wbLines  []uint64
	wbShared []bool
}

func (f *fakeCC) Snoop(*Txn) SnoopResult  { return f.verdict }
func (f *fakeCC) AcceptDeferred(txn *Txn) { f.deferred = append(f.deferred, txn) }
func (f *fakeCC) CaptureWriteBack(line uint64, shared bool, data uint64) {
	f.wbLines = append(f.wbLines, line)
	f.wbShared = append(f.wbShared, shared)
}

func newBus(t *testing.T) (*sim.Engine, *Bus, *config.Config) {
	t.Helper()
	cfg := config.Base()
	eng := sim.NewEngine()
	return eng, New(eng, &cfg, 0, nil), &cfg
}

func issue(eng *sim.Engine, b *Bus, txn *Txn) *Outcome {
	var got *Outcome
	txn.Done = func(o Outcome) { c := o; got = &c }
	eng.At(eng.Now(), func() { b.Issue(txn) })
	return got
}

func TestLocalReadFromMemoryTiming(t *testing.T) {
	eng, b, cfg := newBus(t)
	snp := &fakeSnooper{verdict: SnoopNone}
	src := b.AttachSnooper(snp)
	var doneAt sim.Time = -1
	var out Outcome
	eng.At(0, func() {
		b.Issue(&Txn{Kind: Read, Line: 0x1000, Src: src, HomeLocal: true, Done: func(o Outcome) {
			doneAt = eng.Now()
			out = o
		}})
	})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// Grant at 0, strobe at +BusArb(4), bank grant at 4, data start at
	// 4+MemAccess(20)=24, critical quad at +CriticalQuad(4)=28.
	want := cfg.BusArb + cfg.MemAccess + cfg.CriticalQuad
	if doneAt != want {
		t.Fatalf("read completed at %d, want %d", doneAt, want)
	}
	if out.Status != OK || out.Shared {
		t.Fatalf("outcome %+v, want OK exclusive", out)
	}
	if b.Count(Read) != 1 {
		t.Fatalf("read count = %d", b.Count(Read))
	}
}

func TestReadSharedWhenSiblingHolds(t *testing.T) {
	eng, b, cfg := newBus(t)
	b.AttachSnooper(&fakeSnooper{verdict: SnoopShared})
	src := b.AttachSnooper(&fakeSnooper{verdict: SnoopNone})
	var out Outcome
	var doneAt sim.Time
	eng.At(0, func() {
		b.Issue(&Txn{Kind: Read, Line: 0x1000, Src: src, HomeLocal: true, Done: func(o Outcome) {
			out = o
			doneAt = eng.Now()
		}})
	})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !out.Shared {
		t.Fatal("read with sibling sharer should install Shared")
	}
	// Cache-to-cache: strobe(4) + CacheToCache(16) + CriticalQuad(4).
	want := cfg.BusArb + cfg.CacheToCache + cfg.CriticalQuad
	if doneAt != want {
		t.Fatalf("c2c read completed at %d, want %d", doneAt, want)
	}
}

func TestReadFromDirtyOwner(t *testing.T) {
	eng, b, _ := newBus(t)
	owner := &fakeSnooper{verdict: SnoopOwned}
	b.AttachSnooper(owner)
	src := b.AttachSnooper(&fakeSnooper{verdict: SnoopNone})
	var out Outcome
	eng.At(0, func() {
		b.Issue(&Txn{Kind: Read, Line: 0x2000, Src: src, HomeLocal: false, Done: func(o Outcome) { out = o }})
	})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !out.Dirty || !out.Shared || out.Status != OK {
		t.Fatalf("outcome %+v, want dirty shared OK", out)
	}
	if len(owner.seen) != 1 || owner.seen[0].Kind != Read {
		t.Fatal("owner was not snooped")
	}
}

func TestRemoteReadDefersToController(t *testing.T) {
	eng, b, _ := newBus(t)
	src := b.AttachSnooper(&fakeSnooper{verdict: SnoopNone})
	cc := &fakeCC{verdict: SnoopDefer}
	b.AttachController(cc)
	completed := false
	var parked *Txn
	eng.At(0, func() {
		txn := &Txn{Kind: Read, Line: 0x3000, Src: src, HomeLocal: false, Done: func(o Outcome) {
			completed = true
			if o.Status != OK || !o.Shared {
				t.Errorf("outcome %+v", o)
			}
		}}
		parked = txn
		b.Issue(txn)
	})
	eng.At(100, func() {
		if len(cc.deferred) != 1 || cc.deferred[0] != parked {
			t.Fatal("controller did not receive the deferred transaction")
		}
		if completed {
			t.Fatal("deferred transaction completed early")
		}
		b.Supply(parked, true, true, 0)
	})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !completed {
		t.Fatal("deferred transaction never completed")
	}
}

func TestSupplyWithoutData(t *testing.T) {
	eng, b, _ := newBus(t)
	src := b.AttachSnooper(&fakeSnooper{verdict: SnoopNone})
	cc := &fakeCC{verdict: SnoopDefer}
	b.AttachController(cc)
	var doneAt sim.Time = -1
	eng.At(0, func() {
		b.Issue(&Txn{Kind: Upgrade, Line: 0x3000, Src: src, HomeLocal: true, Done: func(o Outcome) {
			doneAt = eng.Now()
		}})
	})
	eng.At(50, func() { b.Supply(cc.deferred[0], false, false, 0) })
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// Supply issued at 50: grant 50, strobe 54, complete 56.
	if doneAt != 56 {
		t.Fatalf("grant arrived at %d, want 56", doneAt)
	}
}

func TestUpgradeCompletesLocallyWithoutRemoteSharers(t *testing.T) {
	eng, b, _ := newBus(t)
	sib := &fakeSnooper{verdict: SnoopShared}
	b.AttachSnooper(sib)
	src := b.AttachSnooper(&fakeSnooper{verdict: SnoopNone})
	cc := &fakeCC{verdict: SnoopNone}
	b.AttachController(cc)
	var doneAt sim.Time = -1
	eng.At(0, func() {
		b.Issue(&Txn{Kind: Upgrade, Line: 0x1000, Src: src, HomeLocal: true, Done: func(o Outcome) {
			doneAt = eng.Now()
		}})
	})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if doneAt != 6 { // strobe at 4 + 2
		t.Fatalf("upgrade completed at %d, want 6", doneAt)
	}
	if len(cc.deferred) != 0 {
		t.Fatal("upgrade should not have been deferred")
	}
	if len(sib.seen) != 1 {
		t.Fatal("sibling must snoop the upgrade to invalidate its copy")
	}
}

func TestWriteBackLocalGoesToMemory(t *testing.T) {
	eng, b, cfg := newBus(t)
	src := b.AttachSnooper(&fakeSnooper{verdict: SnoopNone})
	cc := &fakeCC{verdict: SnoopNone}
	b.AttachController(cc)
	var doneAt sim.Time = -1
	eng.At(0, func() {
		b.Issue(&Txn{Kind: WriteBack, Line: 0x1000, Src: src, HomeLocal: true, Done: func(o Outcome) {
			doneAt = eng.Now()
		}})
	})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// strobe 4, data starts 6, ends 6+16=22.
	want := cfg.BusArb + 2 + cfg.BusDataTime()
	if doneAt != want {
		t.Fatalf("writeback completed at %d, want %d", doneAt, want)
	}
	if len(cc.wbLines) != 0 {
		t.Fatal("local writeback must not use the direct data path")
	}
}

func TestWriteBackRemoteUsesDirectDataPath(t *testing.T) {
	eng, b, _ := newBus(t)
	sib := &fakeSnooper{verdict: SnoopShared}
	b.AttachSnooper(sib)
	src := b.AttachSnooper(&fakeSnooper{verdict: SnoopNone})
	cc := &fakeCC{verdict: SnoopNone}
	b.AttachController(cc)
	eng.At(0, func() {
		b.Issue(&Txn{Kind: WriteBack, Line: 0x2000, Src: src, HomeLocal: false, Done: func(Outcome) {}})
	})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(cc.wbLines) != 1 || cc.wbLines[0] != 0x2000 {
		t.Fatalf("controller captured %v", cc.wbLines)
	}
	if !cc.wbShared[0] {
		t.Fatal("sibling sharer should be reported to the controller")
	}
}

func TestSameLineConflictRetries(t *testing.T) {
	eng, b, _ := newBus(t)
	src0 := b.AttachSnooper(&fakeSnooper{verdict: SnoopNone})
	src1 := b.AttachSnooper(&fakeSnooper{verdict: SnoopNone})
	cc := &fakeCC{verdict: SnoopDefer}
	b.AttachController(cc)
	var second Outcome
	secondDone := false
	eng.At(0, func() {
		b.Issue(&Txn{Kind: Read, Line: 0x1000, Src: src0, HomeLocal: false, Done: func(Outcome) {}})
		b.Issue(&Txn{Kind: Read, Line: 0x1000, Src: src1, HomeLocal: false, Done: func(o Outcome) {
			second = o
			secondDone = true
		}})
	})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !secondDone || second.Status != RetryNeeded {
		t.Fatalf("second transaction outcome %+v, want RetryNeeded", second)
	}
	if b.Retries() != 1 {
		t.Fatalf("retries = %d, want 1", b.Retries())
	}
}

func TestFetchFromMemoryAndFromOwner(t *testing.T) {
	eng, b, _ := newBus(t)
	owner := &fakeSnooper{verdict: SnoopOwned}
	b.AttachSnooper(owner)
	var fromOwner, fromMem Outcome
	eng.At(0, func() {
		b.Issue(&Txn{Kind: Fetch, Line: 0x1000, Src: CCSrc, HomeLocal: true, Done: func(o Outcome) { fromOwner = o }})
	})
	eng.At(200, func() {
		owner.verdict = SnoopNone
		b.Issue(&Txn{Kind: Fetch, Line: 0x2000, Src: CCSrc, HomeLocal: true, Done: func(o Outcome) { fromMem = o }})
	})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !fromOwner.Dirty {
		t.Fatalf("owner fetch outcome %+v, want dirty", fromOwner)
	}
	if fromMem.Dirty || fromMem.Status != OK {
		t.Fatalf("memory fetch outcome %+v", fromMem)
	}
}

func TestFetchRemoteNoCopyReturnsNoData(t *testing.T) {
	eng, b, _ := newBus(t)
	b.AttachSnooper(&fakeSnooper{verdict: SnoopNone})
	var out Outcome
	eng.At(0, func() {
		b.Issue(&Txn{Kind: FetchEx, Line: 0x2000, Src: CCSrc, HomeLocal: false, Done: func(o Outcome) { out = o }})
	})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if out.Status != NoData {
		t.Fatalf("outcome %+v, want NoData", out)
	}
}

func TestAbortBouncesParkedTransaction(t *testing.T) {
	eng, b, _ := newBus(t)
	src := b.AttachSnooper(&fakeSnooper{verdict: SnoopNone})
	cc := &fakeCC{verdict: SnoopDefer}
	b.AttachController(cc)
	var out Outcome
	eng.At(0, func() {
		b.Issue(&Txn{Kind: Upgrade, Line: 0x1000, Src: src, HomeLocal: false, Done: func(o Outcome) { out = o }})
	})
	eng.At(100, func() { b.Abort(cc.deferred[0]) })
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if out.Status != RetryNeeded {
		t.Fatalf("outcome %+v, want RetryNeeded", out)
	}
}

func TestBankContentionSerializesSameBank(t *testing.T) {
	eng, b, cfg := newBus(t)
	src := b.AttachSnooper(&fakeSnooper{verdict: SnoopNone})
	// Two lines in the same bank: stride = MemBanks * LineSize.
	lineA := uint64(0x0000)
	lineB := lineA + uint64(cfg.MemBanks*cfg.LineSize)
	_ = lineB
	var times []sim.Time
	eng.At(0, func() {
		b.Issue(&Txn{Kind: Read, Line: lineA, Src: src, HomeLocal: true, Done: func(Outcome) { times = append(times, eng.Now()) }})
		b.Issue(&Txn{Kind: Read, Line: lineA + 4*uint64(cfg.LineSize), Src: src, HomeLocal: true, Done: func(Outcome) { times = append(times, eng.Now()) }})
	})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(times) != 2 {
		t.Fatalf("completions: %v", times)
	}
	// Second access to the same bank waits for BankBusy(40) from the first
	// bank grant (4): data at 44+20, done at 68.
	if times[1]-times[0] < cfg.BankBusy-cfg.AddrStrobe {
		t.Fatalf("same-bank accesses not serialized: %v", times)
	}
}

func TestUnalignedLinePanics(t *testing.T) {
	eng, b, _ := newBus(t)
	src := b.AttachSnooper(&fakeSnooper{verdict: SnoopNone})
	defer func() {
		if recover() == nil {
			t.Error("unaligned line did not panic")
		}
	}()
	b.Issue(&Txn{Kind: Read, Line: 0x1001, Src: src, HomeLocal: true, Done: func(Outcome) {}})
	_, _ = eng.Run()
}

func TestMissingDoneCallbackPanics(t *testing.T) {
	_, b, _ := newBus(t)
	defer func() {
		if recover() == nil {
			t.Error("missing Done did not panic")
		}
	}()
	b.Issue(&Txn{Kind: Read, Line: 0x1000})
}

func TestKindString(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		if k.String() == "" {
			t.Errorf("kind %d has empty name", int(k))
		}
	}
}

func TestUpgradeOwnedSiblingTransfersInNode(t *testing.T) {
	eng, b, _ := newBus(t)
	owner := &fakeSnooper{verdict: SnoopOwned}
	b.AttachSnooper(owner)
	src := b.AttachSnooper(&fakeSnooper{verdict: SnoopNone})
	cc := &fakeCC{verdict: SnoopDefer} // the CC would defer, but ownership wins
	b.AttachController(cc)
	var out Outcome
	eng.At(0, func() {
		b.Issue(&Txn{Kind: Upgrade, Line: 0x1000, Src: src, HomeLocal: false, Done: func(o Outcome) { out = o }})
	})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if out.Status != OK || !out.WithData || !out.Dirty {
		t.Fatalf("outcome %+v, want in-node dirty transfer with data", out)
	}
	if len(cc.deferred) != 0 {
		t.Fatal("upgrade with an Owned sibling must not reach the home")
	}
}

func TestUpgradeRequesterOwnsCompletesLocally(t *testing.T) {
	eng, b, _ := newBus(t)
	sib := &fakeSnooper{verdict: SnoopShared}
	b.AttachSnooper(sib)
	src := b.AttachSnooper(&fakeSnooper{verdict: SnoopNone})
	cc := &fakeCC{verdict: SnoopDefer}
	b.AttachController(cc)
	var out Outcome
	eng.At(0, func() {
		b.Issue(&Txn{Kind: Upgrade, Line: 0x2000, Src: src, HomeLocal: false,
			RequesterOwns: true, Done: func(o Outcome) { out = o }})
	})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if out.Status != OK || out.WithData {
		t.Fatalf("outcome %+v, want bare local grant", out)
	}
	if len(cc.deferred) != 0 {
		t.Fatal("dirty-owner upgrade must not consult the home")
	}
	if len(sib.seen) != 1 {
		t.Fatal("siblings must be snooped (invalidated)")
	}
}

func TestLocalReadInstallsSharedWhenDirectoryReportsSharers(t *testing.T) {
	eng, b, _ := newBus(t)
	src := b.AttachSnooper(&fakeSnooper{verdict: SnoopNone})
	cc := &fakeCC{verdict: SnoopShared} // bus-side directory: remote sharers exist
	b.AttachController(cc)
	var out Outcome
	eng.At(0, func() {
		b.Issue(&Txn{Kind: Read, Line: 0x1000, Src: src, HomeLocal: true, Done: func(o Outcome) { out = o }})
	})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if out.Status != OK || !out.Shared {
		t.Fatalf("outcome %+v: memory served the line but it must install Shared", out)
	}
}

func TestWriteBackPassesParkedTransaction(t *testing.T) {
	eng, b, _ := newBus(t)
	src0 := b.AttachSnooper(&fakeSnooper{verdict: SnoopNone})
	src1 := b.AttachSnooper(&fakeSnooper{verdict: SnoopNone})
	cc := &fakeCC{verdict: SnoopDefer}
	b.AttachController(cc)
	wbDone := false
	eng.At(0, func() {
		// First a read that gets parked with the controller.
		b.Issue(&Txn{Kind: Read, Line: 0x2000, Src: src0, HomeLocal: false, Done: func(Outcome) {}})
	})
	eng.At(50, func() {
		// Then a write-back of the same line from the sibling: it must NOT
		// bounce on the parked read (livelock otherwise).
		b.Issue(&Txn{Kind: WriteBack, Line: 0x2000, Src: src1, HomeLocal: false, Done: func(o Outcome) {
			wbDone = o.Status == OK
		}})
	})
	eng.At(500, func() {
		if len(cc.deferred) == 1 {
			b.Supply(cc.deferred[0], true, true, 0)
		}
	})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !wbDone {
		t.Fatal("write-back blocked behind a parked transaction")
	}
	if len(cc.wbLines) != 1 {
		t.Fatal("write-back never captured by the direct data path")
	}
}

func TestCCInterventionBouncesOnLiveTransfer(t *testing.T) {
	eng, b, cfg := newBus(t)
	src := b.AttachSnooper(&fakeSnooper{verdict: SnoopNone})
	var outcomes []Status
	eng.At(0, func() {
		// Live local read occupies the line (memory path, done ~28 cycles).
		b.Issue(&Txn{Kind: Read, Line: 0x1000, Src: src, HomeLocal: true, Done: func(Outcome) {}})
		// CC fetch for the same line strobes mid-flight: must bounce.
		b.Issue(&Txn{Kind: Fetch, Line: 0x1000, Src: CCSrc, HomeLocal: true, Done: func(o Outcome) {
			outcomes = append(outcomes, o.Status)
		}})
	})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(outcomes) != 1 || outcomes[0] != RetryNeeded {
		t.Fatalf("outcomes %v, want one RetryNeeded", outcomes)
	}
	_ = cfg
}
