// Package pram implements the paper's Section 3.3 prediction methodology:
// "system designers can obtain the RCCPI measure for important large
// applications using simple simulators (e.g. PRAM) and relate that RCCPI
// to a graph similar to Figure 12 obtained through detailed simulation of
// simpler applications."
//
// The estimator runs the same workload programs as the detailed machine —
// they are written against prog.Env — but with a purely functional model:
// per-processor caches, a node-granular directory, and no timing at all.
// Each shared-memory reference is classified by the coherence actions it
// would trigger, and the resulting message/dispatch count approximates the
// detailed simulator's "requests to coherence controllers". One pass gives
// an RCCPI estimate orders of magnitude faster than detailed simulation.
package pram

import (
	"fmt"

	"ccnuma/internal/cache"
	"ccnuma/internal/config"
	"ccnuma/internal/memaddr"
	"ccnuma/internal/prog"
)

// lineState is the functional directory entry for one line: which node (if
// any) holds it dirty and which nodes hold clean copies.
type lineState struct {
	dirtyNode int // -1 = none
	sharers   uint64
}

// Sim is the functional estimator.
type Sim struct {
	cfg   *config.Config
	space *memaddr.Space

	procs []*proc
	dir   map[uint64]*lineState

	instructions uint64
	ccRequests   uint64

	// Scheduling.
	parkedBarrier []*proc
	locks         map[int]*lockq
}

type lockq struct {
	held    bool
	waiters []*proc
}

type proc struct {
	sim  *Sim
	id   int
	node int
	l2   *cache.Cache

	start    chan struct{}
	ops      chan op
	blocked  bool
	finished bool
}

type opKind int

const (
	opRead opKind = iota
	opWrite
	opCompute
	opBarrier
	opLock
	opUnlock
	opDone
)

type op struct {
	kind opKind
	addr uint64
	n    int
}

// New creates an estimator sharing the machine's configuration and address
// space (allocate workload regions against the same space, then Run).
func New(cfg *config.Config, space *memaddr.Space) *Sim {
	s := &Sim{
		cfg:   cfg,
		space: space,
		dir:   make(map[uint64]*lineState),
		locks: make(map[int]*lockq),
	}
	for i := 0; i < cfg.TotalProcs(); i++ {
		s.procs = append(s.procs, &proc{
			sim:   s,
			id:    i,
			node:  i / cfg.ProcsPerNode,
			l2:    cache.New(cfg.L2Size, cfg.L2Assoc, cfg.LineSize),
			start: make(chan struct{}),
			ops:   make(chan op),
		})
	}
	return s
}

// Instructions returns the executed instruction count.
func (s *Sim) Instructions() uint64 { return s.instructions }

// CCRequests returns the estimated requests to coherence controllers.
func (s *Sim) CCRequests() uint64 { return s.ccRequests }

// RCCPI returns the estimated requests-to-controllers per instruction.
func (s *Sim) RCCPI() float64 {
	if s.instructions == 0 {
		return 0
	}
	return float64(s.ccRequests) / float64(s.instructions)
}

// Run executes the SPMD program functionally. Processors run one at a time
// (barrier- and lock-granular scheduling), which preserves the data-race-
// free programs' results and reference streams.
func (s *Sim) Run(program func(prog.Env)) error {
	for _, p := range s.procs {
		p := p
		go func() {
			<-p.start
			program(&env{p: p})
			p.ops <- op{kind: opDone}
		}()
	}
	// Round-robin one operation per processor per turn: per-reference
	// interleaving matters, because it produces the line ping-pong that
	// dominates the communication of migratory and falsely-shared data
	// (coarser schedules underestimate Ocean- and Radix-class traffic
	// several-fold).
	for {
		progressed := false
		for _, p := range s.procs {
			if p.finished || p.blocked {
				continue
			}
			progressed = true
			s.step(p)
		}
		if s.allFinished() {
			return nil
		}
		if !progressed {
			return fmt.Errorf("pram: deadlock (%d parked at barrier of %d procs)",
				len(s.parkedBarrier), len(s.procs))
		}
	}
}

func (s *Sim) allFinished() bool {
	for _, p := range s.procs {
		if !p.finished {
			return false
		}
	}
	return true
}

// step executes one operation of p (p must be runnable).
func (s *Sim) step(p *proc) {
	{
		p.start <- struct{}{}
		o := <-p.ops
		switch o.kind {
		case opRead:
			s.instructions++
			s.access(p, o.addr, false)
		case opWrite:
			s.instructions++
			s.access(p, o.addr, true)
		case opCompute:
			s.instructions += uint64(o.n)
		case opBarrier:
			s.parkedBarrier = append(s.parkedBarrier, p)
			p.blocked = true
			if len(s.parkedBarrier) == len(s.procs) {
				for _, q := range s.parkedBarrier {
					q.blocked = false
				}
				s.parkedBarrier = nil
			}
			return
		case opLock:
			s.instructions++
			lq := s.locks[o.n]
			if lq == nil {
				lq = &lockq{}
				s.locks[o.n] = lq
			}
			if lq.held {
				lq.waiters = append(lq.waiters, p)
				p.blocked = true
				return
			}
			lq.held = true
			// A lock acquisition is a read-exclusive of the lock line at
			// minimum: charge a small constant.
			s.ccRequests += 2
		case opUnlock:
			s.instructions++
			lq := s.locks[o.n]
			if lq == nil || !lq.held {
				panic(fmt.Sprintf("pram: unlock of free lock %d", o.n))
			}
			if len(lq.waiters) > 0 {
				next := lq.waiters[0]
				lq.waiters = lq.waiters[1:]
				next.blocked = false
				s.ccRequests += 2
			} else {
				lq.held = false
			}
		case opDone:
			p.finished = true
			return
		}
	}
}

// entry returns the directory record for a line.
func (s *Sim) entry(line uint64) *lineState {
	e := s.dir[line]
	if e == nil {
		e = &lineState{dirtyNode: -1}
		s.dir[line] = e
	}
	return e
}

// siblingHas reports whether another processor on p's node caches the line
// (and whether dirty), enabling in-node cache-to-cache supply.
func (s *Sim) siblingHas(p *proc, line uint64) (present, dirty bool) {
	lo := p.node * s.cfg.ProcsPerNode
	for i := lo; i < lo+s.cfg.ProcsPerNode; i++ {
		if i == p.id {
			continue
		}
		switch st := s.procs[i].l2.Lookup(line); st {
		case cache.Shared, cache.Exclusive:
			present = true
		case cache.Modified, cache.Owned:
			return true, true
		case cache.Invalid:
		default:
			panic(fmt.Sprintf("pram: line %#x in unknown cache state %v", line, st))
		}
	}
	return present, false
}

// access classifies one reference and charges the estimated controller
// dispatches it would cause in the detailed model.
func (s *Sim) access(p *proc, addr uint64, write bool) {
	line := s.space.Line(addr)
	if s.space.Home(line) < 0 {
		s.space.HomeOrAssign(line, p.node)
	}
	home := s.space.Home(line)
	local := home == p.node
	st := p.l2.Touch(line)
	e := s.entry(line)

	if !write {
		if st != cache.Invalid {
			return // hit
		}
		if present, _ := s.siblingHas(p, line); present {
			s.install(p, line, cache.Shared, e)
			return // in-node cache-to-cache supply, no controller work
		}
		switch {
		case local && e.dirtyNode >= 0 && e.dirtyNode != p.node:
			// Local read, dirty remote: defer + intervention + data home.
			s.ccRequests += 3
		case local:
			// Memory responds under the bus-side directory filter.
		case e.dirtyNode >= 0 && e.dirtyNode != home && e.dirtyNode != p.node:
			// Remote read forwarded to a third-node owner.
			s.ccRequests += 5
		default:
			// Remote read served at the home.
			s.ccRequests += 3
		}
		s.install(p, line, cache.Shared, e)
		e.sharers |= 1 << uint(p.node)
		if e.dirtyNode >= 0 && e.dirtyNode != p.node {
			// The owner's cached copy downgrades to clean Shared as its
			// data is fetched (its next write will be an upgrade again —
			// the read-halo/rewrite cycle that dominates stencil traffic).
			s.downgradeNode(e.dirtyNode, line)
			e.sharers |= 1 << uint(e.dirtyNode)
			e.dirtyNode = -1
		}
		return
	}

	// Write.
	if st == cache.Modified || st == cache.Exclusive {
		if st == cache.Exclusive {
			p.l2.SetState(line, cache.Modified)
		}
		return // silent upgrade
	}
	if _, dirty := s.siblingHas(p, line); dirty {
		// In-node ownership transfer.
		s.invalidateNode(p, line)
		s.install(p, line, cache.Modified, e)
		return
	}
	remoteSharers := s.remoteSharerCount(e, p.node)
	switch {
	case local && e.dirtyNode >= 0 && e.dirtyNode != p.node:
		s.ccRequests += 3
	case local && remoteSharers > 0:
		s.ccRequests += uint64(1 + 2*remoteSharers)
	case local:
		// Bus upgrade/readex satisfied under the directory filter.
	case e.dirtyNode >= 0 && e.dirtyNode != home && e.dirtyNode != p.node:
		s.ccRequests += 5
	case remoteSharers > 0:
		s.ccRequests += uint64(3 + 2*remoteSharers)
	default:
		s.ccRequests += 3
	}
	s.invalidateAll(p, line)
	s.install(p, line, cache.Modified, e)
	e.sharers = 0
	if !local {
		e.dirtyNode = p.node
	} else {
		e.dirtyNode = -1
	}
}

// remoteSharerCount counts nodes other than requester and home that the
// directory lists as sharers.
func (s *Sim) remoteSharerCount(e *lineState, node int) int {
	n := 0
	for b := 0; b < s.cfg.Nodes; b++ {
		if b == node {
			continue
		}
		if e.sharers&(1<<uint(b)) != 0 {
			n++
		}
	}
	return n
}

// downgradeNode moves a node's dirty copies of line to clean Shared (the
// effect of a home-initiated fetch at the owner).
func (s *Sim) downgradeNode(node int, line uint64) {
	lo := node * s.cfg.ProcsPerNode
	for i := lo; i < lo+s.cfg.ProcsPerNode; i++ {
		if s.procs[i].l2.Lookup(line).Dirty() {
			s.procs[i].l2.SetState(line, cache.Shared)
		}
	}
}

// invalidateNode removes the line from p's node's other caches.
func (s *Sim) invalidateNode(p *proc, line uint64) {
	lo := p.node * s.cfg.ProcsPerNode
	for i := lo; i < lo+s.cfg.ProcsPerNode; i++ {
		if i != p.id {
			s.procs[i].l2.Invalidate(line)
		}
	}
}

// invalidateAll removes the line from every other cache in the machine.
func (s *Sim) invalidateAll(p *proc, line uint64) {
	for _, q := range s.procs {
		if q.id != p.id {
			q.l2.Invalidate(line)
		}
	}
}

// install fills a line, charging an estimated write-back for dirty
// victims homed remotely.
func (s *Sim) install(p *proc, line uint64, st cache.State, e *lineState) {
	victim, vstate := p.l2.Insert(line, st)
	if vstate.Dirty() {
		if s.space.Home(victim) != p.node {
			s.ccRequests++ // write-back dispatch at the home
		}
		ve := s.entry(victim)
		if ve.dirtyNode == p.node {
			if present, dirty := s.siblingHas(p, victim); !present || !dirty {
				ve.dirtyNode = -1
			}
		}
	}
}

// env adapts a pram proc to prog.Env.
type env struct {
	p *proc
}

func (e *env) ID() int   { return e.p.id }
func (e *env) Node() int { return e.p.node }

func (e *env) issue(o op) {
	e.p.ops <- o
	<-e.p.start
}

func (e *env) Read(addr uint64)  { e.issue(op{kind: opRead, addr: addr}) }
func (e *env) Write(addr uint64) { e.issue(op{kind: opWrite, addr: addr}) }
func (e *env) Compute(n int) {
	if n > 0 {
		e.issue(op{kind: opCompute, n: n})
	}
}
func (e *env) ReadRange(addr uint64, n int) {
	for i := 0; i < n; i++ {
		e.Read(addr + uint64(i*8))
	}
}
func (e *env) WriteRange(addr uint64, n int) {
	for i := 0; i < n; i++ {
		e.Write(addr + uint64(i*8))
	}
}
func (e *env) Barrier()      { e.issue(op{kind: opBarrier}) }
func (e *env) Lock(id int)   { e.issue(op{kind: opLock, n: id}) }
func (e *env) Unlock(id int) { e.issue(op{kind: opUnlock, n: id}) }

var _ prog.Env = (*env)(nil)
