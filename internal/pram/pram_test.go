package pram

import (
	"testing"

	"ccnuma/internal/config"
	"ccnuma/internal/machine"
	"ccnuma/internal/memaddr"
	"ccnuma/internal/prog"
	"ccnuma/internal/workload"
)

func newSim(t *testing.T, nodes, ppn int) (*Sim, *memaddr.Space, *config.Config) {
	t.Helper()
	cfg := config.Base()
	cfg.Nodes = nodes
	cfg.ProcsPerNode = ppn
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	space := memaddr.NewSpace(&cfg)
	return New(&cfg, space), space, &cfg
}

func TestLocalOnlyHasNoControllerTraffic(t *testing.T) {
	s, space, _ := newSim(t, 2, 1)
	bases := []uint64{space.AllocOnNode(4096, 0), space.AllocOnNode(4096, 1)}
	err := s.Run(func(e prog.Env) {
		for i := 0; i < 20; i++ {
			e.Read(bases[e.Node()] + uint64(i*8))
			e.Write(bases[e.Node()] + uint64(i*8))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.CCRequests() != 0 {
		t.Fatalf("local-only run estimated %d controller requests", s.CCRequests())
	}
	if s.Instructions() == 0 {
		t.Fatal("no instructions counted")
	}
}

func TestRemoteReadCharged(t *testing.T) {
	s, space, _ := newSim(t, 2, 1)
	base := space.AllocOnNode(4096, 0)
	err := s.Run(func(e prog.Env) {
		if e.ID() == 1 {
			e.Read(base)
		}
		e.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.CCRequests() != 3 {
		t.Fatalf("remote clean read charged %d, want 3", s.CCRequests())
	}
}

func TestMigratoryWriteCharged(t *testing.T) {
	s, space, _ := newSim(t, 2, 1)
	base := space.AllocOnNode(4096, 0)
	err := s.Run(func(e prog.Env) {
		if e.ID() == 1 {
			e.Write(base) // remote readex, uncached: 3
		}
		e.Barrier()
		if e.ID() == 0 {
			e.Read(base) // local read, dirty remote: 3
		}
		e.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.CCRequests() != 6 {
		t.Fatalf("charged %d, want 6", s.CCRequests())
	}
}

func TestBarrierAndLockScheduling(t *testing.T) {
	s, _, _ := newSim(t, 2, 2)
	counter := 0
	err := s.Run(func(e prog.Env) {
		for i := 0; i < 3; i++ {
			e.Lock(1)
			counter++
			e.Unlock(1)
			e.Barrier()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if counter != 12 {
		t.Fatalf("critical sections = %d, want 12", counter)
	}
}

func TestDeadlockDetected(t *testing.T) {
	s, _, _ := newSim(t, 2, 1)
	err := s.Run(func(e prog.Env) {
		if e.ID() == 0 {
			e.Barrier() // proc 1 never joins
		}
	})
	if err == nil {
		t.Fatal("mismatched barrier should be detected")
	}
}

// TestEstimateTracksDetailed compares the PRAM RCCPI estimate against the
// detailed simulator for real workloads: within a factor of two and
// order-preserving, which is all the paper's prediction methodology needs.
func TestEstimateTracksDetailed(t *testing.T) {
	apps := []string{"ocean", "lu", "radix"}
	est := map[string]float64{}
	det := map[string]float64{}
	for _, app := range apps {
		// Detailed run.
		cfg := config.Base()
		cfg.Nodes, cfg.ProcsPerNode = 4, 2
		cfg.SimLimit = 10_000_000_000
		m, err := machine.New(cfg, app)
		if err != nil {
			t.Fatal(err)
		}
		w, err := workload.New(app, workload.SizeTest, m.NProcs())
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Setup(m); err != nil {
			t.Fatal(err)
		}
		r, err := m.Run(w.Body)
		if err != nil {
			t.Fatal(err)
		}
		det[app] = r.RCCPI()

		// PRAM estimate (fresh machine for a fresh address space).
		m2, err := machine.New(cfg, app)
		if err != nil {
			t.Fatal(err)
		}
		w2, err := workload.New(app, workload.SizeTest, m2.NProcs())
		if err != nil {
			t.Fatal(err)
		}
		if err := w2.Setup(m2); err != nil {
			t.Fatal(err)
		}
		s := New(&m2.Cfg, m2.Space)
		if err := s.Run(w2.Body); err != nil {
			t.Fatal(err)
		}
		est[app] = s.RCCPI()
		t.Logf("%-8s detailed 1000*RCCPI=%.2f  pram=%.2f  ratio=%.2f",
			app, 1000*det[app], 1000*est[app], est[app]/det[app])
	}
	for _, app := range apps {
		ratio := est[app] / det[app]
		if ratio < 0.4 || ratio > 2.5 {
			t.Errorf("%s: PRAM estimate off by %.2fx", app, ratio)
		}
	}
	// Ordering must hold: ocean and radix communicate more than lu.
	if !(est["ocean"] > est["lu"]) || !(est["radix"] > est["lu"]) {
		t.Errorf("PRAM ordering broken: %v", est)
	}
}

// TestEstimateAllApps runs the estimator over every registered paper
// application, checking it completes and produces a positive estimate.
func TestEstimateAllApps(t *testing.T) {
	for _, app := range workload.PaperApps {
		app := app
		t.Run(app, func(t *testing.T) {
			cfg := config.Base()
			cfg.Nodes, cfg.ProcsPerNode = 2, 2
			m, err := machine.New(cfg, app)
			if err != nil {
				t.Fatal(err)
			}
			w, err := workload.New(app, workload.SizeTest, m.NProcs())
			if err != nil {
				t.Fatal(err)
			}
			if err := w.Setup(m); err != nil {
				t.Fatal(err)
			}
			s := New(&m.Cfg, m.Space)
			if err := s.Run(w.Body); err != nil {
				t.Fatal(err)
			}
			if s.RCCPI() <= 0 {
				t.Fatalf("RCCPI estimate %v", s.RCCPI())
			}
			// The functional pass runs the real computation too.
			if err := w.Verify(); err != nil {
				t.Fatalf("verification under PRAM: %v", err)
			}
		})
	}
}
