package cache

import "testing"

// refEntry is one valid line in the reference model.
type refEntry struct {
	state State
	stamp uint64 // recency: last Insert/Touch tick
}

// FuzzInsertEviction drives a small cache with a fuzzed op sequence and
// cross-checks every observable result against an independent reference
// model of set-indexed LRU replacement: inserts only evict when the
// target set is full, the victim is the least-recently-inserted-or-touched
// valid line of that set, Lookup never perturbs recency, and the resident
// population always matches the model exactly.
func FuzzInsertEviction(f *testing.F) {
	f.Add(uint8(1), uint8(2), uint8(0), []byte{0, 1, 1, 2, 0, 3, 3, 1, 5, 1})
	f.Add(uint8(0), uint8(0), uint8(1), []byte{1, 0, 1, 1, 1, 2, 1, 3, 4, 0})
	f.Add(uint8(3), uint8(3), uint8(2), []byte{2, 7, 0, 7, 6, 7, 5, 7, 2, 7})
	f.Fuzz(func(t *testing.T, assocB, setsB, lineB uint8, ops []byte) {
		assoc := 1 + int(assocB)%4
		nsets := 1 << (int(setsB) % 4)
		lineSize := 1 << (4 + int(lineB)%3)
		c := New(nsets*assoc*lineSize, assoc, lineSize)

		model := map[uint64]*refEntry{}
		clock := uint64(0)
		setOf := func(line uint64) uint64 {
			return (line / uint64(lineSize)) % uint64(nsets)
		}
		// lruVictim returns the valid line of set s with the oldest
		// recency stamp, and how many valid lines the set holds.
		lruVictim := func(s uint64) (uint64, *refEntry, int) {
			var vl uint64
			var ve *refEntry
			n := 0
			for line, e := range model {
				if setOf(line) != s {
					continue
				}
				n++
				if ve == nil || e.stamp < ve.stamp {
					vl, ve = line, e
				}
			}
			return vl, ve, n
		}

		insertStates := []State{Shared, Exclusive, Modified, Owned}
		if len(ops) > 1024 {
			ops = ops[:1024]
		}
		for i := 0; i+1 < len(ops); i += 2 {
			op := ops[i] % 7
			line := uint64(ops[i+1]) * uint64(lineSize)
			switch op {
			case 0, 1, 2, 3: // Insert in one of the four valid states
				st := insertStates[op]
				clock++
				victim, vst := c.Insert(line, st)
				if e, ok := model[line]; ok {
					if vst != Invalid {
						t.Fatalf("re-insert of %#x evicted %#x(%v)", line, victim, vst)
					}
					e.state, e.stamp = st, clock
					break
				}
				wantL, wantE, valid := lruVictim(setOf(line))
				if valid < assoc {
					if vst != Invalid {
						t.Fatalf("insert of %#x into non-full set evicted %#x(%v)", line, victim, vst)
					}
				} else {
					if vst == Invalid {
						t.Fatalf("insert of %#x into full set evicted nothing", line)
					}
					if victim != wantL || vst != wantE.state {
						t.Fatalf("insert of %#x evicted %#x(%v), model expects %#x(%v)",
							line, victim, vst, wantL, wantE.state)
					}
					if setOf(victim) != setOf(line) {
						t.Fatalf("victim %#x not in the same set as %#x", victim, line)
					}
					delete(model, victim)
				}
				model[line] = &refEntry{state: st, stamp: clock}
			case 4: // Touch
				want := Invalid
				if e, ok := model[line]; ok {
					want = e.state
					clock++
					e.stamp = clock
				}
				if got := c.Touch(line); got != want {
					t.Fatalf("Touch(%#x) = %v, model has %v", line, got, want)
				}
			case 5: // Lookup (recency-neutral)
				want := Invalid
				if e, ok := model[line]; ok {
					want = e.state
				}
				if got := c.Lookup(line); got != want {
					t.Fatalf("Lookup(%#x) = %v, model has %v", line, got, want)
				}
			case 6: // Invalidate
				want := Invalid
				if _, ok := model[line]; ok {
					want = model[line].state
					delete(model, line)
				}
				if got := c.Invalidate(line); got != want {
					t.Fatalf("Invalidate(%#x) = %v, model has %v", line, got, want)
				}
			}
			if c.Count() != len(model) {
				t.Fatalf("after op %d: Count() = %d, model holds %d", i/2, c.Count(), len(model))
			}
		}

		// Final sweep: the resident lines and states must match exactly.
		seen := 0
		c.Lines(func(line uint64, st State) bool {
			seen++
			e, ok := model[line]
			if !ok {
				t.Fatalf("cache holds %#x(%v), model does not", line, st)
			}
			if e.state != st {
				t.Fatalf("cache holds %#x in %v, model says %v", line, st, e.state)
			}
			return true
		})
		if seen != len(model) {
			t.Fatalf("cache enumerates %d lines, model holds %d", seen, len(model))
		}
	})
}
