// Package cache models the set-associative, write-back, LRU caches of the
// simulated compute processors (16 KB L1 and 1 MB L2, 4-way, 128-byte lines
// in the base configuration). The caches are timing/state models only: data
// values live in the workload's own Go memory.
package cache

import "fmt"

// State is a MESI cache-line state.
type State uint8

const (
	// Invalid means the line is not present.
	Invalid State = iota
	// Shared means a clean copy that other caches may also hold.
	Shared
	// Exclusive means a clean copy known to be the only cached one.
	Exclusive
	// Modified means a dirty copy; the cache owns the line.
	Modified
	// Owned means a dirty copy that other caches on the same SMP bus may
	// share (it arises when a Modified line supplies a read via
	// cache-to-cache transfer without writing back to the home node).
	// The owner remains responsible for eventually writing the line back.
	Owned
)

// Dirty reports whether the state carries modified data (Modified or
// Owned).
func (s State) Dirty() bool { return s == Modified || s == Owned }

func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	case Owned:
		return "O"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// way is one cache way: a line address, its state, and an LRU stamp.
type way struct {
	line  uint64
	state State
	lru   uint64 // higher = more recently used
}

// Cache is a set-associative LRU cache. The zero value is unusable; create
// with New.
type Cache struct {
	sets     [][]way
	assoc    int
	lineSize uint64
	setMask  uint64
	clock    uint64 // LRU counter
}

// New creates a cache of size bytes, assoc ways, and lineSize-byte lines.
// size must be an exact multiple of assoc*lineSize and the resulting set
// count must be a power of two.
func New(size, assoc, lineSize int) *Cache {
	if size <= 0 || assoc <= 0 || lineSize <= 0 {
		panic(fmt.Sprintf("cache: bad geometry size=%d assoc=%d line=%d", size, assoc, lineSize))
	}
	if size%(assoc*lineSize) != 0 {
		panic(fmt.Sprintf("cache: size %d not divisible by assoc %d * line %d", size, assoc, lineSize))
	}
	nsets := size / (assoc * lineSize)
	if nsets&(nsets-1) != 0 {
		panic(fmt.Sprintf("cache: set count %d not a power of two", nsets))
	}
	sets := make([][]way, nsets)
	backing := make([]way, nsets*assoc)
	for i := range sets {
		sets[i] = backing[i*assoc : (i+1)*assoc : (i+1)*assoc]
	}
	return &Cache{
		sets:     sets,
		assoc:    assoc,
		lineSize: uint64(lineSize),
		setMask:  uint64(nsets - 1),
	}
}

// Sets returns the number of sets.
func (c *Cache) Sets() int { return len(c.sets) }

// Assoc returns the associativity.
func (c *Cache) Assoc() int { return c.assoc }

func (c *Cache) setFor(line uint64) []way {
	return c.sets[(line/c.lineSize)&c.setMask]
}

func (c *Cache) find(line uint64) *way {
	set := c.setFor(line)
	for i := range set {
		if set[i].state != Invalid && set[i].line == line {
			return &set[i]
		}
	}
	return nil
}

// Lookup returns the state of line without updating LRU order (used by
// snoops, which should not perturb replacement).
func (c *Cache) Lookup(line uint64) State {
	if w := c.find(line); w != nil {
		return w.state
	}
	return Invalid
}

// Touch returns the state of line and marks it most recently used.
func (c *Cache) Touch(line uint64) State {
	if w := c.find(line); w != nil {
		c.clock++
		w.lru = c.clock
		return w.state
	}
	return Invalid
}

// SetState updates the state of a present line. It panics if the line is
// not present: callers must have established presence, and silently
// creating lines here would mask protocol bugs.
func (c *Cache) SetState(line uint64, st State) {
	w := c.find(line)
	if w == nil {
		panic(fmt.Sprintf("cache: SetState on absent line %#x", line))
	}
	if st == Invalid {
		w.state = Invalid
		return
	}
	w.state = st
}

// Invalidate removes line if present and returns its prior state.
func (c *Cache) Invalidate(line uint64) State {
	if w := c.find(line); w != nil {
		st := w.state
		w.state = Invalid
		return st
	}
	return Invalid
}

// Insert places line in state st, evicting the LRU way of its set if the
// set is full. It returns the victim line and its state (victim == 0 and
// Invalid when an empty way was used). Inserting a line that is already
// present just updates its state and LRU position.
func (c *Cache) Insert(line uint64, st State) (victim uint64, victimState State) {
	if st == Invalid {
		panic("cache: Insert with Invalid state")
	}
	c.clock++
	if w := c.find(line); w != nil {
		w.state = st
		w.lru = c.clock
		return 0, Invalid
	}
	set := c.setFor(line)
	// Prefer an invalid way; otherwise evict the least recently used.
	victimIdx := 0
	for i := range set {
		if set[i].state == Invalid {
			victimIdx = i
			goto place
		}
		if set[i].lru < set[victimIdx].lru {
			victimIdx = i
		}
	}
	victim, victimState = set[victimIdx].line, set[victimIdx].state
place:
	set[victimIdx] = way{line: line, state: st, lru: c.clock}
	return victim, victimState
}

// Lines calls fn for every valid line in the cache. Iteration order is
// set-major and deterministic. If fn returns false iteration stops.
func (c *Cache) Lines(fn func(line uint64, st State) bool) {
	for _, set := range c.sets {
		for i := range set {
			if set[i].state != Invalid {
				if !fn(set[i].line, set[i].state) {
					return
				}
			}
		}
	}
}

// Count returns the number of valid lines.
func (c *Cache) Count() int {
	n := 0
	c.Lines(func(uint64, State) bool { n++; return true })
	return n
}
