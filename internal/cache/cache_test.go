package cache

import (
	"testing"
	"testing/quick"
)

func TestBasicInsertLookup(t *testing.T) {
	c := New(1024, 2, 128) // 4 sets, 2 ways
	if c.Sets() != 4 || c.Assoc() != 2 {
		t.Fatalf("geometry %d sets %d ways", c.Sets(), c.Assoc())
	}
	if st := c.Lookup(0x1000); st != Invalid {
		t.Fatalf("empty cache lookup = %v", st)
	}
	c.Insert(0x1000, Shared)
	if st := c.Lookup(0x1000); st != Shared {
		t.Fatalf("lookup after insert = %v", st)
	}
	c.SetState(0x1000, Modified)
	if st := c.Lookup(0x1000); st != Modified {
		t.Fatalf("after SetState = %v", st)
	}
	if st := c.Invalidate(0x1000); st != Modified {
		t.Fatalf("invalidate returned %v", st)
	}
	if st := c.Lookup(0x1000); st != Invalid {
		t.Fatalf("after invalidate = %v", st)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(512, 2, 128) // 2 sets, 2 ways; same-set stride = 2*128 = 256
	// Lines 0x0000, 0x0200, 0x0400 all map to set 0.
	c.Insert(0x0000, Shared)
	c.Insert(0x0200, Shared)
	c.Touch(0x0000) // make 0x0000 MRU; 0x0200 becomes LRU
	victim, st := c.Insert(0x0400, Modified)
	if victim != 0x0200 || st != Shared {
		t.Fatalf("evicted %#x/%v, want 0x200/S", victim, st)
	}
	if c.Lookup(0x0000) != Shared || c.Lookup(0x0400) != Modified {
		t.Fatal("survivors corrupted")
	}
}

func TestInsertExistingUpdates(t *testing.T) {
	c := New(512, 2, 128)
	c.Insert(0x0000, Shared)
	victim, st := c.Insert(0x0000, Modified)
	if victim != 0 || st != Invalid {
		t.Fatalf("re-insert evicted %#x/%v", victim, st)
	}
	if c.Lookup(0x0000) != Modified {
		t.Fatal("re-insert did not update state")
	}
	if c.Count() != 1 {
		t.Fatalf("count = %d, want 1", c.Count())
	}
}

func TestSnoopLookupDoesNotTouchLRU(t *testing.T) {
	c := New(512, 2, 128)
	c.Insert(0x0000, Shared)
	c.Insert(0x0200, Shared)
	// Lookup (snoop) 0x0000 must NOT make it MRU.
	c.Lookup(0x0000)
	victim, _ := c.Insert(0x0400, Shared)
	if victim != 0x0000 {
		t.Fatalf("evicted %#x, want 0x0000 (Lookup must not update LRU)", victim)
	}
}

func TestSetStateOnAbsentPanics(t *testing.T) {
	c := New(512, 2, 128)
	defer func() {
		if recover() == nil {
			t.Error("SetState on absent line did not panic")
		}
	}()
	c.SetState(0xdead00, Shared)
}

func TestBadGeometryPanics(t *testing.T) {
	for _, g := range [][3]int{{0, 1, 128}, {1000, 4, 128}, {768, 2, 128}} {
		g := g
		func() {
			defer func() { recover() }()
			New(g[0], g[1], g[2])
			t.Errorf("geometry %v did not panic", g)
		}()
	}
}

func TestLinesIteration(t *testing.T) {
	c := New(1024, 2, 128)
	want := map[uint64]State{0x1000: Shared, 0x2080: Modified, 0x3100: Exclusive}
	for l, s := range want {
		c.Insert(l, s)
	}
	got := map[uint64]State{}
	c.Lines(func(l uint64, s State) bool { got[l] = s; return true })
	if len(got) != len(want) {
		t.Fatalf("iterated %d lines, want %d", len(got), len(want))
	}
	for l, s := range want {
		if got[l] != s {
			t.Errorf("line %#x = %v, want %v", l, got[l], s)
		}
	}
	// Early termination.
	n := 0
	c.Lines(func(uint64, State) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early stop visited %d", n)
	}
}

// Property: occupancy never exceeds capacity, and a line just inserted is
// always present afterwards.
func TestCapacityProperty(t *testing.T) {
	f := func(lines []uint16) bool {
		c := New(2048, 4, 128) // 4 sets * 4 ways = 16 lines max
		for _, l := range lines {
			line := uint64(l) * 128
			c.Insert(line, Shared)
			if c.Lookup(line) != Shared {
				return false
			}
			if c.Count() > 16 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: an evicted victim is no longer present and came from the same
// set as the inserted line.
func TestVictimSameSetProperty(t *testing.T) {
	f := func(lines []uint16) bool {
		c := New(1024, 2, 128) // 4 sets
		setOf := func(line uint64) uint64 { return (line / 128) % 4 }
		for _, l := range lines {
			line := uint64(l) * 128
			victim, st := c.Insert(line, Modified)
			if st != Invalid {
				if setOf(victim) != setOf(line) {
					return false
				}
				if c.Lookup(victim) != Invalid {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestStateString(t *testing.T) {
	for st, want := range map[State]string{Invalid: "I", Shared: "S", Exclusive: "E", Modified: "M"} {
		if st.String() != want {
			t.Errorf("%d.String() = %q, want %q", st, st.String(), want)
		}
	}
}
