package stats

import (
	"fmt"
	"strings"

	"ccnuma/internal/sim"
)

// histBuckets is the number of power-of-two latency buckets (bucket i
// holds values in [2^i, 2^(i+1)), bucket 0 holds 0 and 1).
const histBuckets = 20

// Histogram accumulates a latency distribution in power-of-two buckets;
// ccsim reports it for cache-miss service times.
type Histogram struct {
	Buckets [histBuckets]uint64
	Count   uint64
	Sum     int64
	MaxVal  int64
}

// Add records one sample (negative samples are clamped to zero).
func (h *Histogram) Add(v sim.Time) {
	x := int64(v)
	if x < 0 {
		x = 0
	}
	b := 0
	for s := x; s > 1 && b < histBuckets-1; s >>= 1 {
		b++
	}
	h.Buckets[b]++
	h.Count++
	h.Sum += x
	if x > h.MaxVal {
		h.MaxVal = x
	}
}

// Merge adds another histogram's contents.
func (h *Histogram) Merge(o *Histogram) {
	for i := range h.Buckets {
		h.Buckets[i] += o.Buckets[i]
	}
	h.Count += o.Count
	h.Sum += o.Sum
	if o.MaxVal > h.MaxVal {
		h.MaxVal = o.MaxVal
	}
}

// Mean returns the average sample.
func (h *Histogram) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// BucketBounds returns the value range [lo, hi) of bucket i. The last
// bucket additionally absorbs every sample >= its lo bound.
func BucketBounds(i int) (lo, hi int64) {
	if i <= 0 {
		return 0, 2
	}
	return int64(1) << uint(i), int64(1) << uint(i+1)
}

// NumBuckets is the bucket count of every Histogram.
const NumBuckets = histBuckets

// Percentile returns the p-th percentile (p in [0,100]) with linear
// interpolation inside the containing power-of-two bucket: the percentile
// rank's fractional position among the bucket's samples maps linearly onto
// the bucket's value range. The result never exceeds the observed maximum.
func (h *Histogram) Percentile(p float64) float64 {
	if h.Count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	target := p / 100 * float64(h.Count)
	if target < 1 {
		target = 1 // the percentile of a non-empty histogram covers >= 1 sample
	}
	var cum float64
	for i, c := range h.Buckets {
		if c == 0 {
			continue
		}
		fc := float64(c)
		if cum+fc >= target {
			lo, hi := BucketBounds(i)
			v := float64(lo) + (target-cum)/fc*float64(hi-lo)
			if v > float64(h.MaxVal) {
				v = float64(h.MaxVal)
			}
			return v
		}
		cum += fc
	}
	return float64(h.MaxVal)
}

// Render draws a compact text distribution.
func (h *Histogram) Render(title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: n=%d mean=%.0f p50=%.0f p90=%.0f p99=%.0f max=%d\n",
		title, h.Count, h.Mean(), h.Percentile(50), h.Percentile(90), h.Percentile(99), h.MaxVal)
	if h.Count == 0 {
		return b.String()
	}
	var peak uint64
	for _, c := range h.Buckets {
		if c > peak {
			peak = c
		}
	}
	for i, c := range h.Buckets {
		if c == 0 {
			continue
		}
		bar := int(40 * c / peak)
		if bar == 0 {
			bar = 1
		}
		fmt.Fprintf(&b, "  [%6d, %6d) %-40s %d\n",
			int64(1)<<uint(i)&^1, int64(1)<<uint(i+1), strings.Repeat("#", bar), c)
	}
	return b.String()
}
