// Package stats accumulates and reduces the measurements the paper reports:
// execution time, instruction counts, requests to the coherence controllers
// (RCCPI), protocol-engine occupancy and utilization, queueing delays,
// request inter-arrival rates, and the derived PP penalty. Model components
// update the raw counters; the reduction methods implement the exact
// definitions of Section 3.3 of the paper.
package stats

import (
	"fmt"
	"sort"

	"ccnuma/internal/sim"
)

// EngineStats holds the per-protocol-engine measurements. In one-engine
// controllers only engine 0 is used; in two-engine controllers engine 0 is
// the LPE (local addresses) and engine 1 the RPE (remote addresses) under
// the paper's split policy.
type EngineStats struct {
	Busy       sim.Time // cycles the engine was occupied by handlers
	Dispatches uint64   // handlers dispatched
	QueueDelay sim.Time // total arrival-to-dispatch delay of its requests
	// QueueDelayHist is the distribution of those per-dispatch delays, so
	// percentiles (not just the mean) of Table 6's queueing column exist.
	QueueDelayHist Histogram
}

// MeanQueueDelay returns the average queueing delay per dispatch in cycles.
func (e *EngineStats) MeanQueueDelay() float64 {
	if e.Dispatches == 0 {
		return 0
	}
	return float64(e.QueueDelay) / float64(e.Dispatches)
}

// ControllerStats holds per-coherence-controller measurements.
type ControllerStats struct {
	// Arrivals counts protocol requests entering the controller's queues
	// (bus-side requests, network-side requests, network-side responses).
	Arrivals uint64
	// arrival inter-gap tracking for the paper's arrival-rate metric.
	GapSum      sim.Time
	GapN        uint64
	lastArrival sim.Time
	seenArrival bool

	Engines []EngineStats

	// Robustness counters: NACK/retry flow control and fault recovery.
	// All stay zero with the recovery knobs off.
	NacksSent  uint64 // home-side NACKs issued (full queue or retried-owner bounce)
	NacksRecv  uint64 // NACKs processed at the requester (dropped strays excluded)
	Retries    uint64 // requests re-issued after a NACK back-off or timeout
	Timeouts   uint64 // MSHR request timeouts fired
	BusAborts  uint64 // bus transactions aborted on a full bus queue
	StrayDrops uint64 // stale/duplicate responses tolerated and dropped
	// RetryLat is the issue-to-fill service time of requests that needed at
	// least one retry.
	RetryLat Histogram
}

// NoteArrival records a request arrival at time t.
func (c *ControllerStats) NoteArrival(t sim.Time) {
	c.Arrivals++
	if c.seenArrival {
		c.GapSum += t - c.lastArrival
		c.GapN++
	}
	c.seenArrival = true
	c.lastArrival = t
}

// Busy returns the controller's total engine occupancy.
func (c *ControllerStats) Busy() sim.Time {
	var t sim.Time
	for i := range c.Engines {
		t += c.Engines[i].Busy
	}
	return t
}

// Dispatches returns total handlers dispatched on the controller.
func (c *ControllerStats) Dispatches() uint64 {
	var n uint64
	for i := range c.Engines {
		n += c.Engines[i].Dispatches
	}
	return n
}

// QueueDelay returns the total queueing delay across all engines.
func (c *ControllerStats) QueueDelay() sim.Time {
	var t sim.Time
	for i := range c.Engines {
		t += c.Engines[i].QueueDelay
	}
	return t
}

// MeanInterArrival returns the mean request inter-arrival gap in cycles
// (0 when fewer than two arrivals occurred).
func (c *ControllerStats) MeanInterArrival() float64 {
	if c.GapN == 0 {
		return 0
	}
	return float64(c.GapSum) / float64(c.GapN)
}

// Run aggregates the results of one simulation.
type Run struct {
	Arch     string   // HWC / PPC / 2HWC / 2PPC
	App      string   // workload name
	ExecTime sim.Time // parallel-phase execution time

	Instructions uint64 // total instructions over all processors

	Controllers []ControllerStats

	// MissLatency is the distribution of cache-miss service times (from
	// bus issue to processor restart) over all processors.
	MissLatency Histogram

	// Extra named counters (bus transactions, network messages, cache
	// hits/misses, ...) for validation and the example programs.
	Counters map[string]uint64

	// Attribution is the per-stage decomposition of miss latency recorded
	// by the span tracker (nil unless the run enabled attribution).
	Attribution *Attribution
}

// StageAttribution is the aggregate latency of one span stage over every
// completed transaction of a run.
type StageAttribution struct {
	Stage string    // stage name (obs stage table)
	Total sim.Time  // cycles attributed to this stage over all transactions
	Hist  Histogram // per-transaction distribution of the stage's cycles
}

// Attribution is the causal latency-attribution aggregate of one run: for
// every completed coherence transaction, its end-to-end miss latency
// partitioned cycle-exactly into stage segments.
type Attribution struct {
	Completed  uint64 // transactions finished and aggregated
	Violations uint64 // conservation violations (must be zero)
	EndToEnd   Histogram
	Stages     []StageAttribution
}

// TotalCycles returns the attributed cycles summed over all stages (equal
// to EndToEnd.Sum when conservation holds).
func (a *Attribution) TotalCycles() sim.Time {
	var t sim.Time
	for i := range a.Stages {
		t += a.Stages[i].Total
	}
	return t
}

// StageShare returns the fraction of all attributed cycles spent in the
// named stage (0 when the run attributed nothing).
func (a *Attribution) StageShare(stage string) float64 {
	if a == nil || a.EndToEnd.Sum <= 0 {
		return 0
	}
	for i := range a.Stages {
		if a.Stages[i].Stage == stage {
			return float64(a.Stages[i].Total) / float64(a.EndToEnd.Sum)
		}
	}
	return 0
}

// NewRun creates an empty Run with one controller per entry of
// engineCounts, controller i holding engineCounts[i] engines — the counts
// may differ per node on heterogeneous machines (config.EngineCounts).
func NewRun(arch, app string, engineCounts []int) *Run {
	r := &Run{
		Arch:        arch,
		App:         app,
		Controllers: make([]ControllerStats, len(engineCounts)),
		Counters:    make(map[string]uint64),
	}
	for i := range r.Controllers {
		n := engineCounts[i]
		if n < 1 {
			n = 1
		}
		r.Controllers[i].Engines = make([]EngineStats, n)
	}
	return r
}

// Add increments a named counter.
func (r *Run) Add(name string, delta uint64) { r.Counters[name] += delta }

// Counter returns a named counter's value (0 when absent).
func (r *Run) Counter(name string) uint64 { return r.Counters[name] }

// CounterNames returns the sorted names of all non-zero counters.
func (r *Run) CounterNames() []string {
	names := make([]string, 0, len(r.Counters))
	for n := range r.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// TotalArrivals returns requests to all coherence controllers.
func (r *Run) TotalArrivals() uint64 {
	var n uint64
	for i := range r.Controllers {
		n += r.Controllers[i].Arrivals
	}
	return n
}

// TotalOccupancy returns the summed engine occupancy of all controllers,
// the quantity whose PPC/HWC ratio the paper reports as ~2.5.
func (r *Run) TotalOccupancy() sim.Time {
	var t sim.Time
	for i := range r.Controllers {
		t += r.Controllers[i].Busy()
	}
	return t
}

// QueueDelayHistogram merges the arrival-to-dispatch delay distributions of
// every engine of every controller into one histogram.
func (r *Run) QueueDelayHistogram() Histogram {
	var h Histogram
	for i := range r.Controllers {
		for j := range r.Controllers[i].Engines {
			h.Merge(&r.Controllers[i].Engines[j].QueueDelayHist)
		}
	}
	return h
}

// RetryLatencyHistogram merges the retry-latency distributions (issue-to-
// fill service time of requests that needed at least one retry) of every
// controller.
func (r *Run) RetryLatencyHistogram() Histogram {
	var h Histogram
	for i := range r.Controllers {
		h.Merge(&r.Controllers[i].RetryLat)
	}
	return h
}

// RecoveryTotals sums the robustness counters over all controllers, in the
// order (nacksSent, nacksRecv, retries, timeouts, busAborts, strayDrops).
func (r *Run) RecoveryTotals() (nacksSent, nacksRecv, retries, timeouts, busAborts, strayDrops uint64) {
	for i := range r.Controllers {
		c := &r.Controllers[i]
		nacksSent += c.NacksSent
		nacksRecv += c.NacksRecv
		retries += c.Retries
		timeouts += c.Timeouts
		busAborts += c.BusAborts
		strayDrops += c.StrayDrops
	}
	return
}

// RCCPI returns requests to coherence controllers per instruction. The
// paper's tables report 1000×RCCPI.
func (r *Run) RCCPI() float64 {
	if r.Instructions == 0 {
		return 0
	}
	return float64(r.TotalArrivals()) / float64(r.Instructions)
}

// AvgUtilization returns the average controller occupancy divided by
// execution time (the paper's "average HWC/PPC utilization"). For
// two-engine controllers pass an engine index of -1 to aggregate both, or
// 0/1 for the LPE/RPE columns of Table 7.
func (r *Run) AvgUtilization(engine int) float64 {
	if r.ExecTime == 0 || len(r.Controllers) == 0 {
		return 0
	}
	var busy sim.Time
	for i := range r.Controllers {
		if engine < 0 {
			busy += r.Controllers[i].Busy()
		} else if engine < len(r.Controllers[i].Engines) {
			busy += r.Controllers[i].Engines[engine].Busy
		}
	}
	return float64(busy) / float64(len(r.Controllers)) / float64(r.ExecTime)
}

// AvgQueueDelay returns the mean queueing delay per dispatched request in
// cycles, over all controllers (engine = -1) or one engine index.
func (r *Run) AvgQueueDelay(engine int) float64 {
	var delay sim.Time
	var n uint64
	for i := range r.Controllers {
		if engine < 0 {
			delay += r.Controllers[i].QueueDelay()
			n += r.Controllers[i].Dispatches()
		} else if engine < len(r.Controllers[i].Engines) {
			delay += r.Controllers[i].Engines[engine].QueueDelay
			n += r.Controllers[i].Engines[engine].Dispatches
		}
	}
	if n == 0 {
		return 0
	}
	return float64(delay) / float64(n)
}

// AvgQueueDelayNs returns AvgQueueDelay converted to nanoseconds, the unit
// of Tables 6 and 7.
func (r *Run) AvgQueueDelayNs(engine int) float64 {
	return r.AvgQueueDelay(engine) * 5.0
}

// ArrivalRatePerMicrosecond returns the paper's arrival-rate metric: the
// reciprocal of the mean inter-arrival time of requests to each controller
// (averaged over controllers), scaled to requests per microsecond (200 CPU
// cycles).
func (r *Run) ArrivalRatePerMicrosecond() float64 {
	if len(r.Controllers) == 0 {
		return 0
	}
	var sum float64
	var n int
	for i := range r.Controllers {
		gap := r.Controllers[i].MeanInterArrival()
		if gap > 0 {
			sum += 200.0 / gap
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// EngineShare returns the fraction of dispatched requests handled by the
// given engine index (Table 7's request-distribution columns).
func (r *Run) EngineShare(engine int) float64 {
	var mine, all uint64
	for i := range r.Controllers {
		if engine < len(r.Controllers[i].Engines) {
			mine += r.Controllers[i].Engines[engine].Dispatches
		}
		all += r.Controllers[i].Dispatches()
	}
	if all == 0 {
		return 0
	}
	return float64(mine) / float64(all)
}

// Penalty returns the PP performance penalty of run r relative to baseline
// b: the relative increase in execution time (e.g. 0.93 for Ocean in the
// paper's base configuration).
func Penalty(b, r *Run) float64 {
	if b == nil || r == nil || b.ExecTime == 0 {
		return 0
	}
	return float64(r.ExecTime)/float64(b.ExecTime) - 1.0
}

// OccupancyRatio returns r's total controller occupancy divided by b's
// (the paper's "PPC/HWC occupancy" column, ~2.5).
func OccupancyRatio(b, r *Run) float64 {
	if b == nil || r == nil || b.TotalOccupancy() == 0 {
		return 0
	}
	return float64(r.TotalOccupancy()) / float64(b.TotalOccupancy())
}

// String summarizes the run for logs.
func (r *Run) String() string {
	return fmt.Sprintf("%s/%s: %d cycles, %d instr, 1000*RCCPI=%.2f, util=%.2f%%",
		r.App, r.Arch, r.ExecTime, r.Instructions, 1000*r.RCCPI(), 100*r.AvgUtilization(-1))
}

// CurvePoint is one (x, y) sample of a measured curve (e.g. the
// penalty-versus-RCCPI calibration of the paper's Section 3.3).
type CurvePoint struct {
	X, Y float64
}
