package stats

import (
	"math"
	"testing"

	"ccnuma/internal/sim"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestNoteArrivalGaps(t *testing.T) {
	var c ControllerStats
	for _, at := range []sim.Time{100, 150, 250} {
		c.NoteArrival(at)
	}
	if c.Arrivals != 3 {
		t.Fatalf("arrivals = %d", c.Arrivals)
	}
	// Gaps: 50, 100 -> mean 75.
	if got := c.MeanInterArrival(); !almost(got, 75) {
		t.Fatalf("mean inter-arrival = %v, want 75", got)
	}
}

func TestRunReductions(t *testing.T) {
	r := NewRun("PPC", "ocean", []int{1, 1})
	r.ExecTime = 1000
	r.Instructions = 10000
	r.Controllers[0].Engines[0] = EngineStats{Busy: 500, Dispatches: 50, QueueDelay: 1000}
	r.Controllers[1].Engines[0] = EngineStats{Busy: 300, Dispatches: 30, QueueDelay: 200}
	r.Controllers[0].Arrivals = 50
	r.Controllers[1].Arrivals = 30

	if got := r.TotalArrivals(); got != 80 {
		t.Errorf("TotalArrivals = %d", got)
	}
	if got := r.TotalOccupancy(); got != 800 {
		t.Errorf("TotalOccupancy = %d", got)
	}
	if got := r.RCCPI(); !almost(got, 0.008) {
		t.Errorf("RCCPI = %v", got)
	}
	// Average utilization = mean(500/1000, 300/1000) = 0.4.
	if got := r.AvgUtilization(-1); !almost(got, 0.4) {
		t.Errorf("AvgUtilization = %v", got)
	}
	// Queue delay = 1200 cycles over 80 dispatches = 15 cycles = 75 ns.
	if got := r.AvgQueueDelay(-1); !almost(got, 15) {
		t.Errorf("AvgQueueDelay = %v", got)
	}
	if got := r.AvgQueueDelayNs(-1); !almost(got, 75) {
		t.Errorf("AvgQueueDelayNs = %v", got)
	}
}

func TestTwoEngineReductions(t *testing.T) {
	r := NewRun("2HWC", "fft", []int{2})
	r.ExecTime = 1000
	r.Controllers[0].Engines[0] = EngineStats{Busy: 400, Dispatches: 40, QueueDelay: 400}
	r.Controllers[0].Engines[1] = EngineStats{Busy: 100, Dispatches: 60, QueueDelay: 60}
	if got := r.AvgUtilization(0); !almost(got, 0.4) {
		t.Errorf("LPE utilization = %v", got)
	}
	if got := r.AvgUtilization(1); !almost(got, 0.1) {
		t.Errorf("RPE utilization = %v", got)
	}
	if got := r.EngineShare(0); !almost(got, 0.4) {
		t.Errorf("LPE share = %v", got)
	}
	if got := r.EngineShare(1); !almost(got, 0.6) {
		t.Errorf("RPE share = %v", got)
	}
	if got := r.AvgQueueDelay(0); !almost(got, 10) {
		t.Errorf("LPE queue delay = %v", got)
	}
	if got := r.AvgQueueDelay(1); !almost(got, 1) {
		t.Errorf("RPE queue delay = %v", got)
	}
}

func TestPenaltyAndOccupancyRatio(t *testing.T) {
	hwc := NewRun("HWC", "ocean", []int{1})
	hwc.ExecTime = 1000
	hwc.Controllers[0].Engines[0].Busy = 400
	ppc := NewRun("PPC", "ocean", []int{1})
	ppc.ExecTime = 1930
	ppc.Controllers[0].Engines[0].Busy = 1000
	if got := Penalty(hwc, ppc); !almost(got, 0.93) {
		t.Errorf("penalty = %v, want 0.93", got)
	}
	if got := OccupancyRatio(hwc, ppc); !almost(got, 2.5) {
		t.Errorf("occupancy ratio = %v, want 2.5", got)
	}
	if got := Penalty(nil, ppc); got != 0 {
		t.Errorf("nil baseline penalty = %v", got)
	}
}

func TestArrivalRate(t *testing.T) {
	r := NewRun("HWC", "x", []int{1, 1})
	// Controller 0: arrivals every 100 cycles -> 2 per microsecond.
	for i := 0; i < 5; i++ {
		r.Controllers[0].NoteArrival(sim.Time(i * 100))
	}
	// Controller 1: arrivals every 400 cycles -> 0.5 per microsecond.
	for i := 0; i < 5; i++ {
		r.Controllers[1].NoteArrival(sim.Time(i * 400))
	}
	if got := r.ArrivalRatePerMicrosecond(); !almost(got, 1.25) {
		t.Errorf("arrival rate = %v, want 1.25", got)
	}
}

func TestCounters(t *testing.T) {
	r := NewRun("HWC", "x", []int{1})
	r.Add("busReads", 3)
	r.Add("busReads", 2)
	r.Add("netMsgs", 7)
	if r.Counter("busReads") != 5 || r.Counter("netMsgs") != 7 {
		t.Fatal("counter accumulation broken")
	}
	names := r.CounterNames()
	if len(names) != 2 || names[0] != "busReads" || names[1] != "netMsgs" {
		t.Fatalf("CounterNames = %v", names)
	}
	if r.Counter("absent") != 0 {
		t.Fatal("absent counter should be 0")
	}
}

func TestZeroSafety(t *testing.T) {
	r := NewRun("HWC", "x", nil)
	if r.RCCPI() != 0 || r.AvgUtilization(-1) != 0 || r.AvgQueueDelay(-1) != 0 ||
		r.ArrivalRatePerMicrosecond() != 0 || r.EngineShare(0) != 0 {
		t.Fatal("zero-valued run should reduce to zeros")
	}
	var e EngineStats
	if e.MeanQueueDelay() != 0 {
		t.Fatal("empty engine mean queue delay should be 0")
	}
	var c ControllerStats
	if c.MeanInterArrival() != 0 {
		t.Fatal("empty controller inter-arrival should be 0")
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	for _, v := range []sim.Time{0, 1, 2, 3, 100, 150, 1000} {
		h.Add(v)
	}
	if h.Count != 7 {
		t.Fatalf("count = %d", h.Count)
	}
	if h.MaxVal != 1000 {
		t.Fatalf("max = %d", h.MaxVal)
	}
	if m := h.Mean(); m < 170 || m > 185 {
		t.Fatalf("mean = %v", m)
	}
	if p := h.Percentile(50); p < 3 || p > 127 {
		t.Fatalf("p50 bound = %v", p)
	}
	if p := h.Percentile(100); p < 1000 {
		t.Fatalf("p100 bound = %v below max", p)
	}
	var h2 Histogram
	h2.Add(5000)
	h.Merge(&h2)
	if h.Count != 8 || h.MaxVal != 5000 {
		t.Fatalf("merge broken: %+v", h)
	}
	if h.Render("x") == "" {
		t.Fatal("empty render")
	}
	var empty Histogram
	if empty.Mean() != 0 || empty.Percentile(50) != 0 {
		t.Fatal("empty histogram should reduce to zeros")
	}
	if empty.Render("e") == "" {
		t.Fatal("empty render should still print the header")
	}
}

// TestPercentileInterpolation checks the within-bucket interpolation against
// distributions whose percentiles are known in closed form.
func TestPercentileInterpolation(t *testing.T) {
	approx := func(got, want float64) bool {
		d := got - want
		return d > -1e-9 && d < 1e-9
	}

	// 100 identical samples of 10 land in bucket [8, 16): interpolation
	// within the bucket is capped at the observed maximum, so a constant
	// distribution reports the constant at every percentile past the cap.
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Add(10)
	}
	if p := h.Percentile(50); !approx(p, 10) {
		t.Fatalf("constant p50 = %v, want 10 (clamped at observed max)", p)
	}
	if p := h.Percentile(99); !approx(p, 10) {
		t.Fatalf("constant p99 = %v, want 10", p)
	}

	// Bimodal: 50 samples of 4 (bucket [4,8)) and 50 of 64 (bucket [64,128)).
	var bi Histogram
	for i := 0; i < 50; i++ {
		bi.Add(4)
		bi.Add(64)
	}
	if p := bi.Percentile(25); !approx(p, 6) {
		t.Fatalf("bimodal p25 = %v, want 6", p) // rank 25 of 50 in [4,8)
	}
	if p := bi.Percentile(75); !approx(p, 64) {
		// rank 25 of 50 in [64,128) interpolates to 96, then clamps at the
		// observed maximum of 64.
		t.Fatalf("bimodal p75 = %v, want 64 (clamped at observed max)", p)
	}

	// Uniform 1..1024: the interpolated median must land next to 512.
	var u Histogram
	for v := sim.Time(1); v <= 1024; v++ {
		u.Add(v)
	}
	if p := u.Percentile(50); p < 511 || p > 514 {
		t.Fatalf("uniform p50 = %v, want ~512", p)
	}

	// Percentiles must be monotone in p and clamp out-of-range inputs.
	prev := -1.0
	for _, p := range []float64{-5, 0, 10, 50, 90, 95, 99, 100, 140} {
		v := u.Percentile(p)
		if v < prev {
			t.Fatalf("percentile not monotone: p%v = %v after %v", p, v, prev)
		}
		prev = v
	}
	if u.Percentile(200) != u.Percentile(100) {
		t.Fatal("p>100 should clamp to p100")
	}
}

func TestBucketBounds(t *testing.T) {
	if lo, hi := BucketBounds(0); lo != 0 || hi != 2 {
		t.Fatalf("bucket 0 = [%d,%d)", lo, hi)
	}
	if lo, hi := BucketBounds(5); lo != 32 || hi != 64 {
		t.Fatalf("bucket 5 = [%d,%d)", lo, hi)
	}
	// Adjacent buckets must tile the value line.
	for i := 0; i < NumBuckets-1; i++ {
		_, hi := BucketBounds(i)
		lo, _ := BucketBounds(i + 1)
		if hi != lo {
			t.Fatalf("gap between bucket %d and %d: hi=%d lo=%d", i, i+1, hi, lo)
		}
	}
}

func TestQueueDelayHistogramMerge(t *testing.T) {
	r := NewRun("HWC", "unit", []int{2, 2})
	r.Controllers[0].Engines[0].QueueDelayHist.Add(4)
	r.Controllers[0].Engines[1].QueueDelayHist.Add(8)
	r.Controllers[1].Engines[0].QueueDelayHist.Add(16)
	h := r.QueueDelayHistogram()
	if h.Count != 3 || h.Sum != 28 || h.MaxVal != 16 {
		t.Fatalf("merged queue-delay histogram = %+v", h)
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	var h Histogram
	h.Add(-5)
	if h.MaxVal != 0 || h.Count != 1 {
		t.Fatalf("negative clamp broken: %+v", h)
	}
}
