package chaos

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"ccnuma/internal/config"
	"ccnuma/internal/workload"
)

// runCampaign executes a 10-schedule fft campaign on the ccchaos default
// machine (4x2, robust knobs on) and returns the full progress/summary
// stream and the serialized run artifact. Runs sharing a dir must be
// sequential: the artifact file is overwritten and re-read per run. The
// dir is shared so the echoed artifact path is identical across runs.
func runCampaign(t *testing.T, dir string, jobs int) (string, []byte) {
	t.Helper()
	cfg := config.Base()
	cfg.Nodes, cfg.ProcsPerNode = 4, 2
	cfg.SimLimit = 50_000_000_000
	cfg = cfg.WithRobustness()
	var out bytes.Buffer
	c := &Campaign{
		Cfg:       cfg,
		Size:      workload.SizeTest,
		SizeName:  "test",
		Schedules: 10,
		Events:    2 + cfg.Nodes,
		BaseSeed:  1,
		Jobs:      jobs,
		JSONDir:   dir,
		Out:       &out,
	}
	failed, err := c.RunApp("fft")
	if err != nil {
		t.Fatalf("jobs=%d: %v", jobs, err)
	}
	if failed != 0 {
		t.Fatalf("jobs=%d: %d schedules failed to recover:\n%s", jobs, failed, out.String())
	}
	art, err := os.ReadFile(filepath.Join(dir, "ccchaos-fft.json"))
	if err != nil {
		t.Fatalf("jobs=%d: %v", jobs, err)
	}
	return out.String(), art
}

// TestCampaignParallelMatchesSerial is the chaos-side determinism pin: a
// 10-schedule campaign at Jobs=8 must produce a byte-identical progress
// stream (pilot line, per-schedule lines in schedule order, summary) and a
// byte-identical run artifact to the serial campaign.
func TestCampaignParallelMatchesSerial(t *testing.T) {
	dir := t.TempDir()
	serialOut, serialArt := runCampaign(t, dir, 1)
	parallelOut, parallelArt := runCampaign(t, dir, 8)
	if serialOut != parallelOut {
		t.Errorf("jobs=8 output differs from serial:\n--- serial ---\n%s\n--- jobs=8 ---\n%s",
			serialOut, parallelOut)
	}
	if !bytes.Equal(serialArt, parallelArt) {
		t.Errorf("jobs=8 artifact not byte-identical to serial:\n--- serial ---\n%s\n--- jobs=8 ---\n%s",
			serialArt, parallelArt)
	}
}

// TestCampaignRepeatable pins run-to-run repeatability of a campaign: the
// same (app, seed) pair must reproduce the identical artifact.
func TestCampaignRepeatable(t *testing.T) {
	dir := t.TempDir()
	out1, art1 := runCampaign(t, dir, 2)
	out2, art2 := runCampaign(t, dir, 2)
	if out1 != out2 {
		t.Error("two identical campaigns produced different output")
	}
	if !bytes.Equal(art1, art2) {
		t.Error("two identical campaigns serialized different artifacts")
	}
}
