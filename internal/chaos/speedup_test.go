package chaos

import (
	"bytes"
	"runtime"
	"testing"
	"time"

	"ccnuma/internal/config"
	"ccnuma/internal/workload"
)

// timeCampaign runs one fft campaign at the given worker count and returns
// its wall time. Schedules are independent simulations, so on a host with
// spare cores the pool should scale nearly linearly.
func timeCampaign(t *testing.T, jobs, schedules int) time.Duration {
	t.Helper()
	cfg := config.Base()
	cfg.Nodes, cfg.ProcsPerNode = 4, 2
	cfg.SimLimit = 50_000_000_000
	cfg = cfg.WithRobustness()
	var out bytes.Buffer
	c := &Campaign{
		Cfg:       cfg,
		Size:      workload.SizeTest,
		SizeName:  "test",
		Schedules: schedules,
		Events:    2 + cfg.Nodes,
		BaseSeed:  1,
		Jobs:      jobs,
		Quiet:     true,
		Out:       &out,
	}
	start := time.Now()
	failed, err := c.RunApp("fft")
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("jobs=%d: %v", jobs, err)
	}
	if failed != 0 {
		t.Fatalf("jobs=%d: %d schedules failed:\n%s", jobs, failed, out.String())
	}
	return elapsed
}

// TestCampaignPoolSpeedup is the pool-utilization regression test behind the
// ccbench chaos/fft section: with four real cores available, fanning the
// independent schedules across -jobs 4 must beat the serial loop by a clear
// margin. The historical failure mode was not the pool but the measurement —
// baselines recorded with -jobs 4 on a GOMAXPROCS=1 host reported ~0.99x
// "speedup" that was pure goroutine oversubscription, which is why ccbench
// now refuses cross-GOMAXPROCS baseline comparisons. On hosts without the
// cores to exercise real parallelism this test skips explicitly rather than
// passing vacuously.
func TestCampaignPoolSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock benchmark; skipped in -short mode")
	}
	if procs := runtime.GOMAXPROCS(0); procs < 4 {
		t.Skipf("pool speedup needs >= 4 real cores, host has GOMAXPROCS=%d: "+
			"parallel wall-clock on this machine measures oversubscription, not the pool", procs)
	}
	const schedules = 20
	// Warm caches (workload memoization, allocator) so the serial timing
	// isn't charged for first-touch costs the parallel run then skips.
	timeCampaign(t, 1, 2)
	serial := timeCampaign(t, 1, schedules)
	parallel := timeCampaign(t, 4, schedules)
	speedup := float64(serial) / float64(parallel)
	t.Logf("serial %v, jobs=4 %v, speedup %.2fx", serial, parallel, speedup)
	if speedup < 1.5 {
		t.Errorf("campaign speedup at jobs=4 is %.2fx (serial %v vs parallel %v), want >= 1.5x — "+
			"the runner pool is not keeping its workers busy", speedup, serial, parallel)
	}
}
