// Package chaos runs workload kernels under seeded fault-injection
// schedules on the robust machine configuration and checks that every run
// recovers: the kernel completes, its result verifies, the network drains,
// and the coherence invariants hold on the quiesced machine. Each schedule
// is generated deterministically from its seed, so any failure is
// reproducible from the (app, seed) pair alone.
//
// Schedules are independent simulations, so a campaign fans them across
// Jobs workers; reporting is always in schedule order, making the output
// and artifacts byte-identical for any Jobs value.
package chaos

import (
	"context"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"

	"ccnuma/internal/config"
	"ccnuma/internal/fault"
	"ccnuma/internal/interconnect"
	"ccnuma/internal/machine"
	"ccnuma/internal/obs"
	"ccnuma/internal/runner"
	"ccnuma/internal/sim"
	"ccnuma/internal/stats"
	"ccnuma/internal/workload"
)

// Campaign describes one chaos sweep over fault schedules. Per app it first
// executes one fault-free pilot run to size the schedule (message count and
// time horizon), then Schedules chaos runs with seeds BaseSeed+First,
// BaseSeed+First+1, ...
type Campaign struct {
	Cfg      config.Config
	Size     workload.SizeClass
	SizeName string
	// First is the index of the first schedule (repro: First=N, Schedules=1
	// replays exactly schedule N).
	First     int
	Schedules int
	// Events is the number of faults per schedule.
	Events   int
	BaseSeed int64
	// Jobs bounds how many schedules run concurrently (<= 0 = GOMAXPROCS,
	// 1 = serial). Output is identical for any value.
	Jobs int
	// JSONDir, when non-empty, receives one run artifact per app
	// (ccchaos-<app>.json).
	JSONDir string
	// ScenarioJSON and ScenarioFingerprint, when set, are embedded in every
	// artifact so the campaign is replayable from its own output.
	ScenarioJSON        []byte
	ScenarioFingerprint string
	// Quiet suppresses per-schedule progress lines.
	Quiet bool
	// Out receives all progress and summary output (required).
	Out io.Writer
}

// RunApp pilots one app fault-free, then runs the schedule sweep. It
// returns the number of failed schedules.
func (c *Campaign) RunApp(name string) (int, error) {
	// Pilot: fault-free run on the same robust configuration, counting the
	// network messages so the schedule's fault coordinates land inside the
	// run instead of past its end.
	pilotMsgs, pilotExec, err := c.pilot(name)
	if err != nil {
		return 0, fmt.Errorf("%s: fault-free pilot failed (nothing injected): %w", name, err)
	}
	if !c.Quiet {
		fmt.Fprintf(c.Out, "%-10s pilot: %d messages, %d cycles\n", name, pilotMsgs, pilotExec)
	}

	params := fault.Params{
		Events:   c.Events,
		Horizon:  pilotExec,
		Messages: pilotMsgs,
		Nodes:    c.Cfg.Nodes,
		Engines:  c.Cfg.MaxEngineCount(),
	}

	// One schedule = one job. A schedule that fails to recover is a result,
	// not an error: the sweep always runs to completion, exactly like the
	// serial loop, and failures are reported in schedule order.
	type scheduleResult struct {
		sch  *fault.Schedule
		run  *stats.Run
		inj  *fault.Injector
		fail *obs.FailureDoc
		err  error
	}
	failed := 0
	applied := map[string]uint64{}
	var failures []obs.FailureDoc
	var lastRun *stats.Run
	_, err = runner.MapStream(context.Background(), c.Jobs, c.Schedules,
		func(i int) (scheduleResult, error) {
			seed := c.BaseSeed + int64(c.First+i)
			sch := fault.Generate(seed, params)
			r, inj, fail, err := c.runSchedule(name, sch)
			return scheduleResult{sch: sch, run: r, inj: inj, fail: fail, err: err}, nil
		},
		func(i int, res scheduleResult) {
			s := c.First + i
			seed := c.BaseSeed + int64(s)
			if res.err != nil {
				failed++
				doc := res.fail
				if doc == nil {
					doc = machine.ClassifyFailure(res.err)
				}
				doc.Seed = seed
				failures = append(failures, *doc)
				fmt.Fprintf(c.Out, "%-10s seed=%d FAILED [%s]: %v\n", name, seed, doc.Class, res.err)
				fmt.Fprintf(c.Out, "  repro: ccchaos -app %s -arch %s -nodes %d -ppn %d -size %s -seed %d -first %d -schedules 1 -events %d\n",
					name, c.Cfg.ArchName(), c.Cfg.Nodes, c.Cfg.ProcsPerNode, c.SizeName, c.BaseSeed, s, c.Events)
				fmt.Fprintf(c.Out, "  schedule: %s\n", res.sch)
				return
			}
			for k, v := range res.inj.AppliedByKind() {
				applied[k] += v
			}
			lastRun = res.run
			if !c.Quiet {
				ns, nr, rt, to, ba, sd := res.run.RecoveryTotals()
				fmt.Fprintf(c.Out, "%-10s seed=%d ok: %d/%d faults applied, exec=%d cycles, nacks=%d/%d retries=%d timeouts=%d busAborts=%d strayDrops=%d\n",
					name, seed, res.inj.AppliedTotal(), len(res.sch.Events), res.run.ExecTime, ns, nr, rt, to, ba, sd)
			}
		})
	if err != nil {
		return failed, err
	}

	fmt.Fprintf(c.Out, "%-10s %d/%d schedules recovered; faults applied: %s\n",
		name, c.Schedules-failed, c.Schedules, renderApplied(applied))

	if c.JSONDir != "" && lastRun != nil {
		art := obs.NewArtifact("ccchaos", c.SizeName, &c.Cfg, lastRun)
		art.Seed = c.BaseSeed
		art.Scenario = c.ScenarioJSON
		art.ScenarioFingerprint = c.ScenarioFingerprint
		art.Recovery = obs.NewRecoveryDoc(&c.Cfg, lastRun, applied)
		art.Recovery.Failures = failures
		path := filepath.Join(c.JSONDir, "ccchaos-"+name+".json")
		if err := art.WriteFile(path); err != nil {
			return failed, err
		}
		if !c.Quiet {
			fmt.Fprintf(c.Out, "%-10s artifact: %s\n", name, path)
		}
	}
	return failed, nil
}

// pilot runs the kernel fault-free on the robust configuration and returns
// its network message count and execution time.
func (c *Campaign) pilot(name string) (uint64, sim.Time, error) {
	m, err := machine.New(c.Cfg, name)
	if err != nil {
		return 0, 0, err
	}
	var msgs uint64
	m.Net.Fault = func(src, dst int, payload interface{}) interconnect.Decision {
		// The hook fires on every source node's engine; under -shards those
		// run concurrently.
		atomic.AddUint64(&msgs, 1)
		return interconnect.Decision{}
	}
	r, err := c.runKernel(m, name)
	if err != nil {
		return 0, 0, err
	}
	return msgs, r.ExecTime, nil
}

// runSchedule executes one kernel run with the schedule injected and all
// recovery checks applied: completion, result verification, network drain.
func (c *Campaign) runSchedule(name string, sch *fault.Schedule) (r *stats.Run, inj *fault.Injector, fail *obs.FailureDoc, err error) {
	// The recovery machinery is deliberately fail-stop (e.g. an exhausted
	// retry budget panics); one schedule's failure must not take down the
	// rest of the sweep. The panic value is classified before it is
	// flattened to an error, so the artifact records *why* the schedule
	// failed (retry-budget exhaustion vs an unclassified panic).
	defer func() {
		if p := recover(); p != nil {
			fail = machine.ClassifyFailure(p)
			r, err = nil, fmt.Errorf("panic: %v", p)
		}
	}()
	m, err := machine.New(c.Cfg, name)
	if err != nil {
		return nil, nil, nil, err
	}
	inj = m.InjectFaults(sch)
	r, err = c.runKernel(m, name)
	if err != nil {
		return nil, inj, nil, err
	}
	if inflight := m.Net.InFlight(); inflight != 0 {
		return nil, inj, nil, fmt.Errorf("network did not drain: %d frames still in flight", inflight)
	}
	for n := 0; n < c.Cfg.Nodes; n++ {
		if q := m.Net.OutQueued(n); q != 0 {
			return nil, inj, nil, fmt.Errorf("network did not drain: node %d NI still queues %d frames", n, q)
		}
	}
	return r, inj, nil, nil
}

// runKernel builds the seeded workload, runs it, and verifies the result.
// Machine.Run itself enforces processor completion, zero transient protocol
// ops, and the global coherence invariants on the quiesced machine.
func (c *Campaign) runKernel(m *machine.Machine, name string) (*stats.Run, error) {
	w, err := workload.NewSeeded(name, c.Size, m.NProcs(), c.BaseSeed)
	if err != nil {
		return nil, err
	}
	if err := w.Setup(m); err != nil {
		return nil, err
	}
	r, err := m.Run(w.Body)
	if err != nil {
		return nil, err
	}
	if err := w.Verify(); err != nil {
		return nil, fmt.Errorf("verification failed: %w", err)
	}
	return r, nil
}

func renderApplied(applied map[string]uint64) string {
	if len(applied) == 0 {
		return "none"
	}
	kinds := make([]string, 0, len(applied))
	for k := range applied {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	parts := make([]string, 0, len(kinds))
	for _, k := range kinds {
		parts = append(parts, fmt.Sprintf("%s=%d", k, applied[k]))
	}
	return strings.Join(parts, " ")
}
