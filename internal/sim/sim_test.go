package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineRunsInTimeOrder(t *testing.T) {
	e := NewEngine()
	var got []Time
	for _, d := range []Time{5, 1, 3, 2, 4} {
		d := d
		e.At(d, func() { got = append(got, d) })
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatalf("events out of order: %v", got)
	}
	if e.Now() != 5 {
		t.Fatalf("final time = %d, want 5", e.Now())
	}
}

func TestEngineTieBreakIsInsertionOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(7, func() { got = append(got, i) })
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("tie-broken order %v, want insertion order", got)
		}
	}
}

func TestEngineAfterAccumulates(t *testing.T) {
	e := NewEngine()
	var fired Time
	e.After(10, func() {
		e.After(5, func() { fired = e.Now() })
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 15 {
		t.Fatalf("nested After fired at %d, want 15", fired)
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	e := NewEngine()
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestEngineNegativeDelayPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	e.After(-1, func() {})
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.At(1, func() { ran++; e.Stop() })
	e.At(2, func() { ran++ })
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if ran != 1 {
		t.Fatalf("ran %d events after Stop, want 1", ran)
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
}

func TestEngineLimit(t *testing.T) {
	e := NewEngine()
	e.Limit = 100
	e.At(50, func() { e.After(200, func() {}) })
	if _, err := e.Run(); err == nil {
		t.Fatal("expected limit error")
	}
	if e.Now() != 50 {
		t.Fatalf("time advanced past limit trigger: %d", e.Now())
	}
}

func TestEngineLimitNotHitWhenQuiet(t *testing.T) {
	e := NewEngine()
	e.Limit = 100
	e.At(99, func() {})
	if _, err := e.Run(); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestEngineDeterminism runs the same randomized schedule twice and checks
// execution transcripts match exactly.
func TestEngineDeterminism(t *testing.T) {
	run := func(seed int64) []int {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		var transcript []int
		var rec func(id, depth int)
		rec = func(id, depth int) {
			transcript = append(transcript, id)
			if depth < 3 {
				n := rng.Intn(3)
				for i := 0; i < n; i++ {
					child := id*10 + i
					e.After(Time(rng.Intn(20)), func() { rec(child, depth+1) })
				}
			}
		}
		for i := 0; i < 10; i++ {
			i := i
			e.At(Time(rng.Intn(50)), func() { rec(i, 0) })
		}
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return transcript
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("transcript lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("transcripts diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestResourceFIFOAndStats(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "bus")
	var starts []Time
	e.At(0, func() {
		r.Acquire(10, func(s Time) { starts = append(starts, s) })
		r.Acquire(10, func(s Time) { starts = append(starts, s) })
	})
	e.At(5, func() {
		r.Acquire(10, func(s Time) { starts = append(starts, s) })
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []Time{0, 10, 20}
	for i, s := range starts {
		if s != want[i] {
			t.Fatalf("starts = %v, want %v", starts, want)
		}
	}
	if r.Busy() != 30 {
		t.Fatalf("busy = %d, want 30", r.Busy())
	}
	if r.Grants() != 3 {
		t.Fatalf("grants = %d, want 3", r.Grants())
	}
	// Waits: 0, 10, 15.
	if r.WaitTotal() != 25 {
		t.Fatalf("wait total = %d, want 25", r.WaitTotal())
	}
	if got := r.MeanWait(); got != 25.0/3 {
		t.Fatalf("mean wait = %v", got)
	}
}

func TestResourceAcquireAt(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "bank")
	var start Time = -1
	e.At(0, func() {
		r.AcquireAt(100, 10, func(s Time) { start = s })
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if start != 100 {
		t.Fatalf("deferred acquire started at %d, want 100", start)
	}
}

func TestResourceUtilization(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "x")
	e.At(0, func() { r.Acquire(25, nil) })
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := r.Utilization(100); got != 0.25 {
		t.Fatalf("utilization = %v, want 0.25", got)
	}
	if got := r.Utilization(0); got != 0 {
		t.Fatalf("utilization of zero elapsed = %v, want 0", got)
	}
}

// Property: for any set of (arrival, hold) pairs issued in arrival order,
// the resource grants in FIFO order with no overlap and no idle-time
// inversion (a grant never starts before the later of its arrival and the
// previous grant's end).
func TestResourceNoOverlapProperty(t *testing.T) {
	f := func(holds []uint8) bool {
		e := NewEngine()
		r := NewResource(e, "p")
		type grant struct{ start, end Time }
		var grants []grant
		at := Time(0)
		for _, h := range holds {
			h := Time(h%50) + 1
			at += Time(h % 7)
			thisAt := at
			e.At(thisAt, func() {
				r.Acquire(h, func(s Time) {
					grants = append(grants, grant{s, s + h})
				})
			})
		}
		if _, err := e.Run(); err != nil {
			return false
		}
		var prevEnd Time
		for _, g := range grants {
			if g.start < prevEnd {
				return false
			}
			prevEnd = g.end
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeNanoseconds(t *testing.T) {
	if Time(200).Nanoseconds() != 1000 {
		t.Fatalf("200 cycles should be 1000 ns, got %v", Time(200).Nanoseconds())
	}
}
