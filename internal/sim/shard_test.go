package sim

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// --- toy model -----------------------------------------------------------
//
// A miniature message-passing machine exercising every cross-shard
// mechanism the real model uses: DeferTo publications with latency at or
// past the lookahead, same-cycle bursts, Fence-mediated shared state with
// cross-engine scheduling from fence bodies, and per-node seeded RNG
// streams. Run serially (all nodes on one engine) and sharded (nodes
// mapped onto cluster shards) it must produce identical per-node logs,
// identical fence order, identical executed counts, and identical final
// time — the same property the golden determinism tests pin for the full
// machine.

type toyNode struct {
	id     int
	eng    *Engine
	sim    *toySim
	rng    *rand.Rand
	state  uint64
	log    []uint64
	budget int
}

type toySim struct {
	look     Time
	nodes    []*toyNode
	cluster  *Cluster
	serial   *Engine
	fenceLog []string
}

func newToySim(nodes, shards int, look Time, seed int64) *toySim {
	s := &toySim{look: look}
	engs := make([]*Engine, nodes)
	if shards <= 1 {
		s.serial = NewEngine()
		for i := range engs {
			engs[i] = s.serial
		}
	} else {
		s.cluster = NewCluster(shards, look)
		for i := range engs {
			engs[i] = s.cluster.Shard(i * shards / nodes)
		}
	}
	for i := 0; i < nodes; i++ {
		s.nodes = append(s.nodes, &toyNode{
			id:     i,
			eng:    engs[i],
			sim:    s,
			rng:    rand.New(rand.NewSource(seed + int64(i))),
			budget: 150,
		})
	}
	for _, n := range s.nodes {
		n := n
		n.eng.At(Time(n.id%3), n.work)
	}
	return s
}

func (s *toySim) run() (Time, error) {
	if s.cluster != nil {
		return s.cluster.Run(0, nil)
	}
	return s.serial.Run()
}

func (s *toySim) executed() uint64 {
	if s.cluster != nil {
		return s.cluster.Executed()
	}
	return s.serial.Executed()
}

func (n *toyNode) work() {
	n.state = n.state*1099511628211 + uint64(n.eng.Now())<<8 + uint64(n.id)
	for k := n.rng.Intn(3); k > 0; k-- {
		dst := n.sim.nodes[n.rng.Intn(len(n.sim.nodes))]
		delay := n.sim.look + Time(n.rng.Intn(6))
		n.send(dst, delay, n.state^uint64(dst.id))
	}
	if n.budget > 0 {
		n.budget--
		n.eng.After(Time(n.rng.Intn(4)+1), n.work)
	}
	if n.rng.Intn(8) == 0 {
		at := n.eng.Now()
		peer := n.sim.nodes[(n.id+1)%len(n.sim.nodes)]
		// Fence in tail position, like machine.Barrier: mutate shared
		// state, schedule cross-engine at or past the lookahead horizon,
		// and schedule immediately on the (parked) posting engine.
		n.eng.Fence(func() {
			n.sim.fenceLog = append(n.sim.fenceLog, fmt.Sprintf("%d@%d", n.id, at))
			peer.eng.At(at+n.sim.look+1, peer.poke)
			n.eng.At(at, func() { n.state ^= 0x5bd1e995 })
		})
	}
}

func (n *toyNode) poke() {
	n.state ^= 0x9e3779b97f4a7c15
	n.log = append(n.log, 0xF0F0<<32|uint64(n.eng.Now()))
}

func (n *toyNode) send(dst *toyNode, delay Time, payload uint64) {
	arr := n.eng.Now() + delay
	n.eng.DeferTo(dst.eng, func() {
		dst.eng.At(arr, func() { dst.deliver(payload) })
	})
}

func (n *toyNode) deliver(payload uint64) {
	n.log = append(n.log, payload*31+uint64(n.eng.Now()))
	n.state = n.state*31 + payload
	if n.rng.Intn(4) == 0 && n.budget > 0 {
		n.budget--
		dst := n.sim.nodes[n.rng.Intn(len(n.sim.nodes))]
		n.send(dst, n.sim.look+Time(n.rng.Intn(3)), n.state)
	}
}

type toyResult struct {
	states   []uint64
	logs     [][]uint64
	fenceLog []string
	executed uint64
	final    Time
}

func runToy(t *testing.T, nodes, shards int, look Time, seed int64) toyResult {
	t.Helper()
	s := newToySim(nodes, shards, look, seed)
	final, err := s.run()
	if err != nil {
		t.Fatalf("nodes=%d shards=%d seed=%d: %v", nodes, shards, seed, err)
	}
	r := toyResult{fenceLog: s.fenceLog, executed: s.executed(), final: final}
	for _, n := range s.nodes {
		r.states = append(r.states, n.state)
		r.logs = append(r.logs, n.log)
	}
	return r
}

// TestShardMatchesSerial is the seeded cross-shard ordering test: for a
// grid of node/shard/seed combinations the sharded run must reproduce the
// serial run exactly — per-node delivery logs, fence resolution order,
// executed event count, and final simulated time.
func TestShardMatchesSerial(t *testing.T) {
	for _, nodes := range []int{2, 4, 6} {
		for _, shards := range []int{2, 3, 4} {
			if shards > nodes {
				continue
			}
			for seed := int64(1); seed <= 5; seed++ {
				want := runToy(t, nodes, 1, 14, seed)
				got := runToy(t, nodes, shards, 14, seed)
				name := fmt.Sprintf("nodes=%d shards=%d seed=%d", nodes, shards, seed)
				if !reflect.DeepEqual(got.states, want.states) {
					t.Errorf("%s: states diverged: %v vs serial %v", name, got.states, want.states)
				}
				if !reflect.DeepEqual(got.logs, want.logs) {
					t.Errorf("%s: delivery logs diverged", name)
				}
				if !reflect.DeepEqual(got.fenceLog, want.fenceLog) {
					t.Errorf("%s: fence order diverged: %v vs serial %v", name, got.fenceLog, want.fenceLog)
				}
				if got.executed != want.executed {
					t.Errorf("%s: executed %d vs serial %d", name, got.executed, want.executed)
				}
				if got.final != want.final {
					t.Errorf("%s: final time %d vs serial %d", name, got.final, want.final)
				}
			}
		}
	}
}

// TestShardRunToRunStable re-runs one sharded configuration repeatedly and
// requires identical results every time; under -race this doubles as the
// shard-barrier stress test (workers, fences, drains, and the coordinator
// all racing across windows).
func TestShardRunToRunStable(t *testing.T) {
	want := runToy(t, 6, 4, 14, 99)
	for i := 0; i < 8; i++ {
		got := runToy(t, 6, 4, 14, 99)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("run %d diverged from first sharded run", i)
		}
	}
}

// TestShardHorizonBoundary pins the window-edge rule: an event landing
// exactly at the lookahead horizon belongs to the next window.
func TestShardHorizonBoundary(t *testing.T) {
	c := NewCluster(2, 10)
	var order []string
	src, dst := c.Shard(0), c.Shard(1)
	src.At(0, func() {
		src.DeferTo(dst, func() {
			dst.At(10, func() { order = append(order, "recv@10") }) // exactly at horizon
		})
	})
	// Also at the horizon, on the destination shard: scheduled during
	// setup, so serially it precedes the drained delivery at the same
	// cycle — rank order must reproduce that.
	dst.At(10, func() { order = append(order, "local@10") })
	if _, err := c.Run(0, nil); err != nil {
		t.Fatal(err)
	}
	want := []string{"local@10", "recv@10"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("order %v, want %v", order, want)
	}
	// Window 1 covers [0,10), window 2 starts at 10: the horizon events
	// must not have run in window 1.
	if c.Windows() != 2 {
		t.Fatalf("windows = %d, want 2", c.Windows())
	}
	if c.CrossSends() != 1 {
		t.Fatalf("cross sends = %d, want 1", c.CrossSends())
	}
}

// TestShardZeroLatencySendRejected pins the lookahead guard: a drained
// cross-shard send that schedules below the window horizon (for example a
// zero-latency send) must panic rather than silently reorder.
func TestShardZeroLatencySendRejected(t *testing.T) {
	c := NewCluster(2, 10)
	src, dst := c.Shard(0), c.Shard(1)
	src.At(5, func() {
		arr := src.Now() // zero-latency: below the horizon of window [5,15)
		src.DeferTo(dst, func() {
			dst.At(arr, func() {})
		})
	})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("zero-latency cross-shard send did not panic")
		}
		if !strings.Contains(fmt.Sprint(r), "lookahead violated") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	c.Run(0, nil)
}

// TestShardDrainOrder pins end-of-window drain ordering: publications from
// several source shards into one destination, arriving at the same cycle,
// must replay in the serial order of their send sites (here: setup order,
// then per-event call order).
func TestShardDrainOrder(t *testing.T) {
	c := NewCluster(3, 10)
	var got []int
	dst := c.Shard(0)
	// Setup order fixes serial order: shard 1's event is scheduled before
	// shard 2's; both run at t=0 in window 1 and send two back-to-back
	// messages arriving at the same cycle.
	for _, src := range []int{1, 2} {
		src := src
		e := c.Shard(src)
		e.At(0, func() {
			for k := 0; k < 2; k++ {
				tag := src*10 + k
				e.DeferTo(dst, func() {
					dst.At(12, func() { got = append(got, tag) })
				})
			}
		})
	}
	if _, err := c.Run(0, nil); err != nil {
		t.Fatal(err)
	}
	want := []int{10, 11, 20, 21}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("drain order %v, want %v", got, want)
	}
}

// TestShardFenceOrder pins fence resolution order across shards: fences
// posted in one window resolve in reconstructed serial order (earlier
// simulated time first; same time by setup order), not report-arrival
// order.
func TestShardFenceOrder(t *testing.T) {
	c := NewCluster(4, 100)
	var got []int
	// All four fences land in a single window [0,100); shard 3 posts at
	// the earliest simulated time and must resolve first.
	times := []Time{5, 5, 7, 2}
	for s := 0; s < 4; s++ {
		s := s
		e := c.Shard(s)
		e.At(times[s], func() {
			e.Fence(func() { got = append(got, s) })
		})
	}
	if _, err := c.Run(0, nil); err != nil {
		t.Fatal(err)
	}
	want := []int{3, 0, 1, 2}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("fence order %v, want %v", got, want)
	}
}

// TestShardScheduleAfterFenceRejected pins the Fence tail-position
// contract: an event scheduling on its own engine after posting a fence
// panics.
func TestShardScheduleAfterFenceRejected(t *testing.T) {
	c := NewCluster(2, 10)
	e := c.Shard(0)
	e.At(0, func() {
		e.Fence(func() {})
		defer func() {
			r := recover()
			if r == nil || !strings.Contains(fmt.Sprint(r), "after posting a Fence") {
				t.Errorf("expected tail-position panic, got %v", r)
			}
		}()
		e.At(5, func() {})
	})
	if _, err := c.Run(0, nil); err != nil {
		t.Fatal(err)
	}
}

// TestShardPanicPropagates pins crash behavior: a panic inside an event on
// a worker shard is re-thrown, with its original value, on the goroutine
// that called Run — the same observable behavior as a serial run, which
// chaos failure classification depends on.
func TestShardPanicPropagates(t *testing.T) {
	c := NewCluster(2, 10)
	type boom struct{ n int }
	c.Shard(1).At(3, func() { panic(boom{n: 7}) })
	c.Shard(0).At(1, func() {})
	defer func() {
		r := recover()
		if b, ok := r.(boom); !ok || b.n != 7 {
			t.Fatalf("expected boom{7} panic, got %v", r)
		}
	}()
	c.Run(0, nil)
}

// TestShardLimitMatchesSerial pins the time-limit path: a sharded run must
// execute exactly the events a serial run executes before the limit and
// fail with the identical error.
func TestShardLimitMatchesSerial(t *testing.T) {
	build := func(engs []*Engine) {
		// Chains on two nodes; every event schedules the next 7 cycles out,
		// past the limit eventually.
		for i, e := range engs {
			e := e
			var tick func()
			tick = func() { e.After(7, tick) }
			e.At(Time(i), tick)
		}
	}
	serial := NewEngine()
	serial.Limit = 50
	build([]*Engine{serial, serial})
	_, serr := serial.Run()
	if serr == nil {
		t.Fatal("serial run did not hit the limit")
	}

	c := NewCluster(2, 14)
	c.Shard(0).Limit = 50
	c.Shard(1).Limit = 50
	build([]*Engine{c.Shard(0), c.Shard(1)})
	_, perr := c.Run(0, nil)
	if perr == nil {
		t.Fatal("sharded run did not hit the limit")
	}
	if serr.Error() != perr.Error() {
		t.Fatalf("limit errors diverge:\nserial:  %v\nsharded: %v", serr, perr)
	}
	if c.Executed() != serial.Executed() {
		t.Fatalf("executed %d events, serial %d", c.Executed(), serial.Executed())
	}
}

// TestShardStepCapCheck pins the watchdog hook: a shard burning through the
// per-window step cap parks the cluster and runs onCheck with everything
// quiesced; an onCheck error aborts the run.
func TestShardStepCapCheck(t *testing.T) {
	mk := func() *Cluster {
		c := NewCluster(2, 10)
		e := c.Shard(0)
		var spin func()
		n := 0
		spin = func() {
			if n++; n < 100 {
				e.At(e.Now(), spin) // same-cycle livelock, all in one window
			}
		}
		e.At(0, spin)
		return c
	}

	checks := 0
	if _, err := mk().Run(10, func(executed uint64) error {
		checks++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if checks == 0 {
		t.Fatal("step cap never triggered onCheck")
	}

	wantErr := fmt.Errorf("livelock detected")
	_, err := mk().Run(10, func(executed uint64) error { return wantErr })
	if err != wantErr {
		t.Fatalf("abort error = %v, want %v", err, wantErr)
	}
}

// TestShardSameCycleMultiShardBurst covers the heap edge the PDES windows
// lean on: large same-cycle bursts on several shards at once must drain in
// per-shard scheduling order even though the shards execute concurrently.
func TestShardSameCycleMultiShardBurst(t *testing.T) {
	const shards, burst = 4, 257
	c := NewCluster(shards, 10)
	got := make([][]int, shards)
	for s := 0; s < shards; s++ {
		s := s
		e := c.Shard(s)
		e.At(0, func() {
			for i := 0; i < burst; i++ {
				i := i
				e.At(5, func() { got[s] = append(got[s], i) })
			}
		})
	}
	if _, err := c.Run(0, nil); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < shards; s++ {
		if len(got[s]) != burst {
			t.Fatalf("shard %d fired %d of %d", s, len(got[s]), burst)
		}
		for i, v := range got[s] {
			if v != i {
				t.Fatalf("shard %d same-cycle FIFO violated at %d: got %d", s, i, v)
			}
		}
	}
}

// TestClusterMaxPendingAcrossShards covers MaxPending high-water accounting
// across shards: the cluster aggregate is the sum of per-shard high-water
// marks, each reached independently.
func TestClusterMaxPendingAcrossShards(t *testing.T) {
	c := NewCluster(2, 10)
	depths := []int{5, 9}
	for s, d := range depths {
		e := c.Shard(s)
		for i := 0; i < d; i++ {
			e.At(Time(i), func() {})
		}
	}
	if _, err := c.Run(0, nil); err != nil {
		t.Fatal(err)
	}
	if got, want := c.MaxPending(), depths[0]+depths[1]; got != want {
		t.Fatalf("MaxPending = %d, want %d", got, want)
	}
	for s, d := range depths {
		if got := c.Shard(s).MaxPending(); got != d {
			t.Fatalf("shard %d MaxPending = %d, want %d", s, got, d)
		}
	}
}

// TestShardSlabReuseAfterDrain covers slab reuse across windows: once a
// shard has reached its high-water mark, windows of drained cross-shard
// deliveries must not regrow its heap slab.
func TestShardSlabReuseAfterDrain(t *testing.T) {
	const look = 8
	c := NewCluster(2, look)
	a, b := c.Shard(0), c.Shard(1)
	var caps [2]int
	hops := 0
	var hop func(self, other *Engine) func()
	hop = func(self, other *Engine) func() {
		return func() {
			if hops++; hops > 2000 {
				return
			}
			if hops == 500 { // steady state reached: record slab capacities
				caps[0], caps[1] = cap(a.events), cap(b.events)
			}
			arr := self.Now() + look
			self.DeferTo(other, func() {
				other.At(arr, hop(other, self))
			})
		}
	}
	for i := 0; i < 4; i++ {
		a.At(Time(i), hop(a, b))
	}
	if _, err := c.Run(0, nil); err != nil {
		t.Fatal(err)
	}
	if caps[0] == 0 {
		t.Fatal("steady state never reached")
	}
	if cap(a.events) != caps[0] || cap(b.events) != caps[1] {
		t.Fatalf("slabs regrew across drains: (%d,%d) -> (%d,%d)",
			caps[0], caps[1], cap(a.events), cap(b.events))
	}
}

// TestRankLessTotalOrder cross-checks rankLess against the serial sequence
// order it reconstructs: run the toy serially on a cluster-of-one... not
// expressible, so instead exercise the comparator directly on a randomized
// lineage and verify antisymmetry, transitivity on sampled triples, and the
// documented special cases (same parent, root, ancestor-before-descendant).
func TestRankLessTotalOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	root := &Ctx{}
	var all []*rankNode
	mint := func(ctx *Ctx) *rankNode {
		r := &rankNode{t: ctx.at, parent: ctx.parent, idx: ctx.next}
		ctx.next++
		all = append(all, r)
		return r
	}
	// Grow a random lineage forest: events at increasing times scheduling
	// children, with frequent same-cycle cascades.
	ctxs := []*Ctx{root}
	for i := 0; i < 400; i++ {
		ctx := ctxs[rng.Intn(len(ctxs))]
		r := mint(ctx)
		at := ctx.at
		if rng.Intn(3) > 0 {
			at += Time(rng.Intn(4))
		}
		if at < ctx.at {
			at = ctx.at
		}
		ctxs = append(ctxs, &Ctx{parent: r, at: at})
	}
	for i := range all {
		for j := range all {
			if i == j {
				continue
			}
			ij := rankLess(all[i], all[j])
			ji := rankLess(all[j], all[i])
			if ij == ji {
				t.Fatalf("rankLess not antisymmetric for nodes %d,%d", i, j)
			}
		}
	}
	for k := 0; k < 20_000; k++ {
		a, b, c := all[rng.Intn(len(all))], all[rng.Intn(len(all))], all[rng.Intn(len(all))]
		if a != b && b != c && a != c && rankLess(a, b) && rankLess(b, c) && !rankLess(a, c) {
			t.Fatal("rankLess not transitive")
		}
	}
	// Ancestor orders before descendant.
	for _, r := range all {
		for p := r.parent; p != nil; p = p.parent {
			if !rankLess(p, r) {
				t.Fatalf("ancestor does not precede descendant")
			}
		}
	}
}
