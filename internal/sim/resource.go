package sim

// Resource models a unit-capacity, serially-occupied hardware resource such
// as a bus, a memory bank, a network port, or a protocol engine. Users
// Acquire the resource with a desired hold time; the resource grants requests
// in FIFO order and invokes the grant callback at the cycle the resource
// becomes theirs. Occupancy and queueing statistics are accumulated for the
// utilization and queueing-delay columns of Table 6 / Table 7.
type Resource struct {
	eng  *Engine
	name string

	// freeAt is the first cycle at which the resource is idle.
	freeAt Time

	// Statistics.
	busy       Time   // total cycles held
	grants     uint64 // number of acquisitions
	waitTotal  Time   // total queueing delay across grants
	lastArrive Time   // most recent arrival, for inter-arrival tracking
	interTotal Time   // sum of inter-arrival gaps
	interN     uint64 // number of gaps summed
}

// NewResource creates a resource bound to an engine. The name is used in
// reports only.
func NewResource(eng *Engine, name string) *Resource {
	return &Resource{eng: eng, name: name}
}

// Name returns the resource's report name.
func (r *Resource) Name() string { return r.name }

// Acquire requests the resource for hold cycles starting as soon as it is
// free (FIFO). grant runs at the cycle the hold begins. Acquire returns the
// time at which the hold will begin.
func (r *Resource) Acquire(hold Time, grant func(start Time)) Time {
	now := r.eng.Now()
	r.noteArrival(now)
	start := r.freeAt
	if start < now {
		start = now
	}
	r.freeAt = start + hold
	r.busy += hold
	r.grants++
	r.waitTotal += start - now
	if grant != nil {
		r.eng.At(start, func() { grant(start) })
	}
	return start
}

// AcquireAt is like Acquire but the request is considered to arrive at the
// given (current or future) time rather than now. It is used when a model
// component decides at time t that a resource will be needed at t+d.
func (r *Resource) AcquireAt(arrive, hold Time, grant func(start Time)) Time {
	// On a sharded engine a request drained at a window boundary may carry
	// an arrival earlier than this shard's local clock (which has already
	// run ahead within the window); clamping it would change occupancy
	// statistics relative to the serial run, so the stated arrival is kept.
	// Serial engines keep the clamp as a safety net for callers that
	// computed an arrival in the past.
	if arrive < r.eng.Now() && !r.eng.Sharded() {
		arrive = r.eng.Now()
	}
	r.noteArrival(arrive)
	start := r.freeAt
	if start < arrive {
		start = arrive
	}
	r.freeAt = start + hold
	r.busy += hold
	r.grants++
	r.waitTotal += start - arrive
	if grant != nil {
		r.eng.At(start, func() { grant(start) })
	}
	return start
}

// FreeAt reports the first cycle at which the resource is currently expected
// to be idle.
func (r *Resource) FreeAt() Time { return r.freeAt }

func (r *Resource) noteArrival(t Time) {
	if r.grants > 0 {
		gap := t - r.lastArrive
		if gap >= 0 {
			r.interTotal += gap
			r.interN++
		}
	}
	r.lastArrive = t
}

// Busy returns total cycles the resource has been held.
func (r *Resource) Busy() Time { return r.busy }

// Grants returns the number of acquisitions.
func (r *Resource) Grants() uint64 { return r.grants }

// WaitTotal returns the cumulative queueing delay over all grants.
func (r *Resource) WaitTotal() Time { return r.waitTotal }

// MeanWait returns the average queueing delay per grant in cycles.
func (r *Resource) MeanWait() float64 {
	if r.grants == 0 {
		return 0
	}
	return float64(r.waitTotal) / float64(r.grants)
}

// MeanInterArrival returns the mean gap between successive arrivals in
// cycles, or 0 if fewer than two arrivals occurred.
func (r *Resource) MeanInterArrival() float64 {
	if r.interN == 0 {
		return 0
	}
	return float64(r.interTotal) / float64(r.interN)
}

// Utilization returns busy time as a fraction of the elapsed time.
func (r *Resource) Utilization(elapsed Time) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(r.busy) / float64(elapsed)
}
