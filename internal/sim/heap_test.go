package sim

import (
	"math/rand"
	"sort"
	"testing"
)

// TestHeapTotalOrder drives the 4-ary heap with a large randomized
// interleaving of pushes and pops and checks that events drain in exact
// (time, seq) total order — including FIFO order for same-cycle ties, which
// the machine model relies on for bit-for-bit reproducibility.
func TestHeapTotalOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	e := NewEngine()

	type stamp struct {
		at  Time
		seq uint64
	}
	var fired []stamp

	// Schedule in clustered batches so many events share a cycle (ties) and
	// interleave pops so the heap is exercised at many sizes, not just one
	// build-then-drain pass.
	pending := 0
	for round := 0; round < 200; round++ {
		batch := rng.Intn(32) + 1
		for i := 0; i < batch; i++ {
			// Cluster times into few buckets to force same-cycle ties.
			at := e.Now() + Time(rng.Intn(8))
			var ev stamp
			e.At(at, func() {
				ev.at = e.Now()
				fired = append(fired, ev)
			})
			// Engine assigns seq internally; mirror it (seq is incremented
			// once per At call, starting from 1).
			ev.seq = e.seq
			ev.at = at
			pending++
		}
		drain := rng.Intn(pending + 1)
		for i := 0; i < drain; i++ {
			if !e.Step() {
				t.Fatalf("round %d: Step returned false with %d pending", round, pending)
			}
			pending--
		}
	}
	for e.Step() {
	}

	if len(fired) == 0 {
		t.Fatal("no events fired")
	}
	if !sort.SliceIsSorted(fired, func(i, j int) bool {
		a, b := fired[i], fired[j]
		return a.at < b.at || (a.at == b.at && a.seq < b.seq)
	}) {
		for i := 1; i < len(fired); i++ {
			a, b := fired[i-1], fired[i]
			if b.at < a.at || (b.at == a.at && b.seq < a.seq) {
				t.Fatalf("order violation at %d: (%d,%d) fired before (%d,%d)",
					i, a.at, a.seq, b.at, b.seq)
			}
		}
	}
}

// TestHeapSameCycleFIFO checks the tie-break path directly: a burst of
// events all scheduled for the same cycle must execute in insertion order.
func TestHeapSameCycleFIFO(t *testing.T) {
	e := NewEngine()
	const n = 257 // not a power of the heap arity: exercises ragged last rows
	var got []int
	for i := 0; i < n; i++ {
		i := i
		e.At(10, func() { got = append(got, i) })
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("fired %d of %d events", len(got), n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("same-cycle FIFO violated at position %d: got event %d", i, v)
		}
	}
}

// TestHeapSlabReuse checks that the heap's backing array is reused: after
// reaching steady state, schedule/step cycles must not grow the slab.
func TestHeapSlabReuse(t *testing.T) {
	e := NewEngine()
	var fire func()
	rng := rand.New(rand.NewSource(7))
	fire = func() { e.After(Time(rng.Intn(16)+1), fire) }
	const depth = 512
	for i := 0; i < depth; i++ {
		e.At(Time(rng.Intn(16)), fire)
	}
	// Warm up to high-water mark.
	for i := 0; i < 10_000; i++ {
		e.Step()
	}
	capBefore := cap(e.events)
	for i := 0; i < 100_000; i++ {
		e.Step()
	}
	if cap(e.events) != capBefore {
		t.Fatalf("slab grew in steady state: cap %d -> %d", capBefore, cap(e.events))
	}
	if e.MaxPending() < depth {
		t.Fatalf("MaxPending %d below steady-state depth %d", e.MaxPending(), depth)
	}
}

// TestHeapScheduleStepAllocFree asserts the serial scheduling hot path is
// allocation-free at steady state: the rank machinery added for sharded
// clusters must cost serial engines nothing (events carry a nil rank and
// the (time, seq) path is unchanged).
func TestHeapScheduleStepAllocFree(t *testing.T) {
	e := NewEngine()
	rng := rand.New(rand.NewSource(3))
	var fire func()
	fire = func() { e.After(Time(rng.Intn(16)+1), fire) }
	for i := 0; i < 256; i++ {
		e.At(Time(rng.Intn(16)), fire)
	}
	for i := 0; i < 10_000; i++ { // reach slab high water
		e.Step()
	}
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 100; i++ {
			e.Step()
		}
	})
	if allocs > 0 {
		t.Fatalf("serial schedule/step allocates %.1f per 100 steps at steady state", allocs)
	}
}

// TestHeapPoppedSlotCleared checks that pop zeroes the vacated tail slot so
// completed closures are not pinned by the slab.
func TestHeapPoppedSlotCleared(t *testing.T) {
	e := NewEngine()
	e.At(1, func() {})
	e.At(2, func() {})
	e.Step()
	e.Step()
	for i := 0; i < cap(e.events); i++ {
		ev := e.events[:cap(e.events)][i]
		if ev.fn != nil {
			t.Fatalf("slab slot %d still holds a closure after drain", i)
		}
	}
}
