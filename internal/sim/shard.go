package sim

import "fmt"

// Conservative parallel simulation (PDES) support: a Cluster groups one
// Engine per shard and executes them concurrently in barrier-synchronized
// time windows of width equal to the conservative lookahead (the minimum
// latency of any cross-shard interaction). Within a window every shard only
// executes events it already owns; cross-shard effects are either published
// through DeferTo into the destination shard's next-window inbox, or routed
// through Fence, which quiesces the whole cluster before running.
//
// # Why the merged order equals the serial order
//
// A serial engine executes events in (time, seq) order, where seq is the
// global At-call order. A sharded run cannot maintain a global counter, so
// every event instead carries a rank: a node in the scheduling-lineage tree
// recording (t, parent, idx) — the simulated time at which the event was
// scheduled, the rank of the event that scheduled it, and the index of this
// At call among the scheduler's calls. rankLess compares two ranks by
// walking the lineage:
//
//   - different scheduling times order by time: an At call made at an
//     earlier simulated time precedes one made later, exactly as serial seq
//     does (serial time never goes backwards);
//   - same scheduler orders by call index: serial seq increments per call;
//   - different schedulers at the same time order as the schedulers
//     themselves order, recursively — which is the same comparison one
//     level up the tree.
//
// The recursion grounds out at setup-time ranks (parent == nil), which
// carry a single cluster-wide index and therefore reproduce serial setup
// order directly; a nil parent also orders a scheduler before everything it
// (transitively) scheduled at the same time. By induction over the lineage
// depth, rankLess is a strict total order on the ranks of any one engine's
// events that coincides with the serial (time, seq) order restricted to
// those events. Cross-engine, the window protocol guarantees that events in
// window k+1 carry times at or past window k's horizon, so the
// concatenation of per-window, per-engine executions is a linear extension
// of the serial order in which every pair of *interacting* events (same
// engine, or sender/receiver of a drained cross-shard effect, or
// fence-ordered) is ordered exactly as in the serial run — which is what
// byte-identical artifacts require.
type rankNode struct {
	t      Time
	parent *rankNode
	idx    uint32
}

// rankLess reports whether a orders strictly before b in the reconstructed
// serial order. The two ranks must be distinct nodes of one cluster's
// lineage tree.
func rankLess(a, b *rankNode) bool {
	for {
		if a.t != b.t {
			return a.t < b.t
		}
		if a.parent == b.parent {
			return a.idx < b.idx
		}
		if a.parent == nil {
			return true
		}
		if b.parent == nil {
			return false
		}
		a, b = a.parent, b.parent
	}
}

// Ctx is a scheduling context: the lineage position (parent, at) under
// which new ranks are minted and the running per-scheduler call counter.
type Ctx struct {
	parent *rankNode
	next   uint32
	at     Time
}

// fenceReq is a pending Fence: the rank reserved at the call site (which
// fixes the fence's place in the serial order) and the deferred body.
type fenceReq struct {
	key *rankNode
	fn  func()
}

// deferred is one cross-shard publication: the rank reserved at the DeferTo
// call site and the closure to run against the destination shard at the
// window boundary.
type deferred struct {
	key *rankNode
	fn  func()
}

// report is what a worker sends on the cluster's done channel: end of
// window (neither flag), a posted fence, a step-cap stall, or a panic
// captured from an event body.
type report struct {
	shard    int
	fenced   bool
	stalled  bool
	panicked bool
	pv       any
	rank     *rankNode
}

// window is one barrier-synchronized execution grant: run local events
// strictly before horizon, parking every cap steps if cap > 0.
type window struct {
	horizon Time
	cap     uint64
}

type resumeMsg struct {
	abort bool
}

// Cluster coordinates a set of sharded engines. Create one with NewCluster,
// hand each model node the engine returned by Shard, then call Run once.
// All non-Run methods that aggregate statistics are only safe to call while
// the cluster is quiescent (before Run starts or after it returns).
type Cluster struct {
	engines   []*Engine
	lookahead Time

	// root is the setup-time scheduling context, shared by all engines:
	// its single call counter reproduces the serial seq order of events
	// scheduled before Run (machine construction, fault arming).
	root Ctx
	// override, when non-nil, replaces per-engine contexts during fence
	// resolution and window drain, both of which run on the coordinating
	// goroutine while every worker is parked.
	override *Ctx
	running  bool

	// draining/drainHorizon arm the lookahead-violation guard in
	// Engine.At while drained cross-shard sends replay.
	draining     bool
	drainHorizon Time

	// outbox[src][dst] accumulates cross-shard publications during a
	// window; src rows are only appended by the src worker (or by the
	// coordinator while workers are parked), so no locking is needed.
	outbox [][][]deferred
	// merge is the drain scratch, reused across windows.
	merge []deferred

	start  []chan window
	resume []chan resumeMsg
	done   chan report

	windows uint64
	fencesN uint64
}

// NewCluster creates shards fresh engines coordinated with the given
// conservative lookahead (the minimum simulated latency of any cross-shard
// interaction; cross-shard sends drained at a window boundary must land at
// or past the horizon, which At enforces).
func NewCluster(shards int, lookahead Time) *Cluster {
	if shards < 2 {
		panic("sim: cluster needs at least 2 shards")
	}
	if lookahead <= 0 {
		panic("sim: cluster lookahead must be positive")
	}
	c := &Cluster{
		engines:   make([]*Engine, shards),
		lookahead: lookahead,
		outbox:    make([][][]deferred, shards),
		start:     make([]chan window, shards),
		resume:    make([]chan resumeMsg, shards),
		done:      make(chan report, shards),
	}
	for i := range c.engines {
		e := NewEngine()
		e.cluster = c
		e.shard = i
		c.engines[i] = e
		c.outbox[i] = make([][]deferred, shards)
		c.start[i] = make(chan window)
		c.resume[i] = make(chan resumeMsg)
	}
	return c
}

// Shard returns the engine owning shard i.
func (c *Cluster) Shard(i int) *Engine { return c.engines[i] }

// Shards returns the number of shards.
func (c *Cluster) Shards() int { return len(c.engines) }

// Lookahead returns the conservative window width in cycles.
func (c *Cluster) Lookahead() Time { return c.lookahead }

// Windows returns how many barrier windows Run executed.
func (c *Cluster) Windows() uint64 { return c.windows }

// Fences returns how many cluster-wide fences Run resolved.
func (c *Cluster) Fences() uint64 { return c.fencesN }

// CrossSends returns how many DeferTo publications crossed a window
// boundary.
func (c *Cluster) CrossSends() uint64 {
	var n uint64
	for _, e := range c.engines {
		n += e.crossSends
	}
	return n
}

// Executed sums executed events across shards.
func (c *Cluster) Executed() uint64 {
	var n uint64
	for _, e := range c.engines {
		n += e.executed
	}
	return n
}

// MaxPending sums the per-shard event-queue high-water marks.
func (c *Cluster) MaxPending() int {
	var n int
	for _, e := range c.engines {
		n += e.maxPending
	}
	return n
}

// LimitHit reports whether any shard stopped at its time limit.
func (c *Cluster) LimitHit() bool {
	for _, e := range c.engines {
		if e.limitHit {
			return true
		}
	}
	return false
}

// Pending sums events still queued across shards.
func (c *Cluster) Pending() int {
	var n int
	for _, e := range c.engines {
		n += len(e.events)
	}
	return n
}

// Now returns the latest simulated time any shard has reached.
func (c *Cluster) Now() Time {
	var t Time
	for _, e := range c.engines {
		if e.now > t {
			t = e.now
		}
	}
	return t
}

// ctx resolves the scheduling context for an At call on engine e: the
// coordinator's override during fence/drain replay, the shared root context
// outside Run, or the engine's current-event context.
func (c *Cluster) ctx(e *Engine) *Ctx {
	if c.override != nil {
		return c.override
	}
	if !c.running {
		return &c.root
	}
	return &e.cur
}

// DeferTo publishes fn for execution against dst at the current window's
// boundary, in the reconstructed serial order of every publication in the
// window (across all destinations, so global send-order counters stay
// exact). On a serial engine it runs fn inline, so call sites need no mode
// split. The closure must only schedule at or past the window horizon
// (guaranteed whenever the modeled latency is at least the cluster
// lookahead); At panics otherwise.
func (e *Engine) DeferTo(dst *Engine, fn func()) {
	c := e.cluster
	if c == nil || !c.running {
		fn()
		return
	}
	if dst.cluster != c {
		panic("sim: DeferTo across clusters")
	}
	ctx := c.ctx(e)
	key := &rankNode{t: ctx.at, parent: ctx.parent, idx: ctx.next}
	ctx.next++
	e.crossSends++
	c.outbox[e.shard][dst.shard] = append(c.outbox[e.shard][dst.shard], deferred{key: key, fn: fn})
}

// Fence defers fn until every shard in the cluster has quiesced at the
// fence's point in the serial order, then runs it with the whole machine
// state consistent; the posting shard executes nothing between the fence
// call and its resolution. Pending fences from several shards resolve in
// reconstructed serial order. On a serial engine (or while the cluster is
// already quiescent: setup, drain, or another fence's body) fn runs inline.
//
// The posting event must call Fence in tail position: after posting it may
// still publish through DeferTo (whose order is fixed at the call site) but
// must not schedule directly on its own engine — on a serial engine fn has
// already run inline at that point, while on a sharded engine it runs after
// the event body, and a direct At could tie-break differently against fn's
// own scheduling. At enforces this.
func (e *Engine) Fence(fn func()) {
	c := e.cluster
	if c == nil || !c.running || c.override != nil {
		fn()
		return
	}
	if e.fence != nil {
		panic("sim: second Fence posted by one event")
	}
	cur := &e.cur
	key := &rankNode{t: cur.at, parent: cur.parent, idx: cur.next}
	cur.next++
	e.fence = &fenceReq{key: key, fn: fn}
}

// worker drives one shard: for each window grant it executes local events
// strictly before the horizon, parking on a posted fence or on the step cap
// and capturing event panics for deterministic replay by the coordinator.
func (c *Cluster) worker(shard int) {
	e := c.engines[shard]
	for w := range c.start[shard] {
		c.done <- c.runWindow(e, shard, w)
	}
}

func (c *Cluster) runWindow(e *Engine, shard int, w window) (final report) {
	final.shard = shard
	var steps uint64
	for !e.stopped && len(e.events) > 0 {
		next := e.events[0].at
		if next >= w.horizon {
			break
		}
		if e.Limit > 0 && next > e.Limit {
			e.stopped = true
			e.limitHit = true
			break
		}
		if w.cap > 0 && steps >= w.cap {
			c.done <- report{shard: shard, stalled: true}
			if rm := <-c.resume[shard]; rm.abort {
				return final
			}
			steps = 0
			continue
		}
		ev := e.pop()
		e.now = ev.at
		e.executed++
		steps++
		e.cur = Ctx{parent: ev.rank, at: ev.at}
		if pv := runCaptured(ev.fn); pv != nil {
			final.panicked = true
			final.pv = pv
			final.rank = ev.rank
			return final
		}
		if e.fence != nil {
			c.done <- report{shard: shard, fenced: true}
			if rm := <-c.resume[shard]; rm.abort {
				return final
			}
		}
	}
	return final
}

// runCaptured runs fn and returns a non-nil panic value if it panicked.
// Panics with a nil value are re-thrown as a sentinel so callers can use
// nil to mean "no panic".
func runCaptured(fn func()) (pv any) {
	defer func() {
		if r := recover(); r != nil {
			pv = r
		}
	}()
	fn()
	return nil
}

// drain replays every cross-shard publication accumulated this window in
// one globally rank-sorted pass: the invocation order across all
// destinations is exactly the reconstructed serial order of the DeferTo
// call sites. That global guarantee (not just per-destination) is what lets
// callers keep counters indexed by global send order — the fault injector's
// message coordinate, for one — bitwise identical to the serial run. It
// snapshots and clears the outbox first, so publications made by the
// replayed closures land in the next window.
func (c *Cluster) drain(horizon Time) {
	buf := c.merge[:0]
	for src := range c.engines {
		for dst := range c.engines {
			row := c.outbox[src][dst]
			if len(row) == 0 {
				continue
			}
			buf = append(buf, row...)
			for i := range row {
				row[i] = deferred{}
			}
			c.outbox[src][dst] = row[:0]
		}
	}
	if len(buf) == 0 {
		c.merge = buf
		return
	}
	c.draining = true
	c.drainHorizon = horizon
	// Insertion sort: windows are one lookahead wide, so per-window batches
	// are small; keys are pairwise distinct, so the order is unique.
	for i := 1; i < len(buf); i++ {
		d := buf[i]
		j := i - 1
		for j >= 0 && rankLess(d.key, buf[j].key) {
			buf[j+1] = buf[j]
			j--
		}
		buf[j+1] = d
	}
	for i, d := range buf {
		octx := Ctx{parent: d.key, at: d.key.t}
		c.override = &octx
		d.fn()
		buf[i] = deferred{}
	}
	c.merge = buf[:0]
	c.override = nil
	c.draining = false
}

// Run executes all shards to completion in barrier-synchronized windows and
// returns the final simulated time. stepCap, when positive, bounds the
// events one shard may execute inside a single window before the cluster
// quiesces and onCheck runs (the stall watchdog hook); onCheck also runs
// between windows each time cumulative executed events grow by stepCap. A
// non-nil error from onCheck aborts the run and is returned. Panics raised
// by event bodies are captured per shard and re-thrown on the calling
// goroutine; when several shards panic in one window the serially-earliest
// panic (by rank) wins, matching the serial run.
func (c *Cluster) Run(stepCap uint64, onCheck func(executed uint64) error) (Time, error) {
	if c.running {
		panic("sim: cluster Run re-entered")
	}
	c.running = true
	for i := range c.engines {
		go c.worker(i)
	}
	var (
		parkedFence []int
		parkedStall []int
		closed      bool
	)
	teardown := func() {
		for _, s := range parkedFence {
			c.resume[s] <- resumeMsg{abort: true}
			<-c.done
		}
		for _, s := range parkedStall {
			c.resume[s] <- resumeMsg{abort: true}
			<-c.done
		}
		parkedFence, parkedStall = nil, nil
		for i := range c.start {
			close(c.start[i])
		}
		closed = true
		c.running = false
	}
	defer func() {
		if !closed {
			teardown()
		}
	}()

	var runErr error
	var lastCheck uint64
	n := len(c.engines)
	for runErr == nil {
		t, have := Time(0), false
		stopAll := false
		for _, e := range c.engines {
			if e.stopped {
				// A limit-stopped shard just sits out (the serial loop
				// likewise executes every event at or below Limit before
				// stopping); an explicit Stop halts the whole cluster.
				if !e.limitHit {
					stopAll = true
				}
				continue
			}
			if len(e.events) == 0 {
				continue
			}
			if !have || e.events[0].at < t {
				t, have = e.events[0].at, true
			}
		}
		if !have || stopAll {
			break
		}
		c.windows++
		w := window{horizon: t + c.lookahead, cap: stepCap}
		for i := range c.start {
			c.start[i] <- w
		}
		finished := 0
		var panics []report
		for finished < n {
			if finished+len(parkedFence)+len(parkedStall) == n {
				if len(parkedFence) > 0 {
					best := 0
					for i := 1; i < len(parkedFence); i++ {
						if rankLess(c.engines[parkedFence[i]].fence.key, c.engines[parkedFence[best]].fence.key) {
							best = i
						}
					}
					s := parkedFence[best]
					e := c.engines[s]
					f := e.fence
					e.fence = nil
					c.fencesN++
					octx := Ctx{parent: f.key, at: f.key.t}
					c.override = &octx
					// The poster stays in parkedFence until the body
					// returns, so the deferred teardown can still abort it
					// if the body panics.
					f.fn()
					c.override = nil
					parkedFence = append(parkedFence[:best], parkedFence[best+1:]...)
					c.resume[s] <- resumeMsg{}
					continue
				}
				// Only step-cap stalls are parked: run the watchdog with
				// the cluster quiesced, unless a panic is already pending
				// (then machine state is suspect — just let the window
				// finish so the serially-earliest panic is found).
				if len(panics) == 0 && onCheck != nil {
					if err := onCheck(c.Executed()); err != nil {
						runErr = err
						for _, s := range parkedStall {
							c.resume[s] <- resumeMsg{abort: true}
						}
						parkedStall = nil
						continue
					}
					lastCheck = c.Executed()
				}
				for _, s := range parkedStall {
					c.resume[s] <- resumeMsg{}
				}
				parkedStall = nil
				continue
			}
			rep := <-c.done
			switch {
			case rep.fenced:
				parkedFence = append(parkedFence, rep.shard)
			case rep.stalled:
				parkedStall = append(parkedStall, rep.shard)
			default:
				finished++
				if rep.panicked {
					panics = append(panics, rep)
				}
			}
		}
		if len(panics) > 0 {
			teardown()
			best := 0
			for i := 1; i < len(panics); i++ {
				if rankLess(panics[i].rank, panics[best].rank) {
					best = i
				}
			}
			panic(panics[best].pv)
		}
		if runErr != nil {
			break
		}
		c.drain(w.horizon)
		if onCheck != nil && stepCap > 0 {
			if ex := c.Executed(); ex-lastCheck >= stepCap {
				if err := onCheck(ex); err != nil {
					runErr = err
					break
				}
				lastCheck = ex
			}
		}
	}
	teardown()
	now := c.Now()
	if runErr != nil {
		return now, runErr
	}
	for _, e := range c.engines {
		if e.limitHit {
			return now, fmt.Errorf("sim: time limit %d exceeded at t=%d with %d events pending", e.Limit, now, c.Pending())
		}
	}
	return now, nil
}
