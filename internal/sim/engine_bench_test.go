package sim

import (
	"math/rand"
	"testing"
)

// BenchmarkEngineScheduleStep exercises the schedule/step hot loop: a
// steady-state queue of pending events where every executed event schedules
// a replacement at a pseudo-random future time. This is the engine's
// dominant workload shape under the machine model (every component re-arms
// itself as it progresses).
func BenchmarkEngineScheduleStep(b *testing.B) {
	const depth = 1024 // steady-state pending events
	rng := rand.New(rand.NewSource(1))
	e := NewEngine()
	var fire func()
	fire = func() {
		e.After(Time(rng.Intn(64)+1), fire)
	}
	for i := 0; i < depth; i++ {
		e.At(Time(rng.Intn(64)), fire)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !e.Step() {
			b.Fatal("queue drained unexpectedly")
		}
	}
}

// BenchmarkEngineMixedHorizon mixes near events (the common case: bus and
// engine occupancies a few cycles out) with a tail of far-future events
// (timeouts), the mix that stresses heap reordering.
func BenchmarkEngineMixedHorizon(b *testing.B) {
	const depth = 4096
	rng := rand.New(rand.NewSource(2))
	e := NewEngine()
	var fire func()
	fire = func() {
		if rng.Intn(8) == 0 {
			e.After(Time(rng.Intn(100_000)+10_000), fire) // timeout-like
		} else {
			e.After(Time(rng.Intn(16)+1), fire) // occupancy-like
		}
	}
	for i := 0; i < depth; i++ {
		e.At(Time(rng.Intn(64)), fire)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !e.Step() {
			b.Fatal("queue drained unexpectedly")
		}
	}
}

// BenchmarkClusterWindow measures the sharded scheduling path end to end:
// per-event rank minting (one small allocation per event, absent from the
// serial path), window barriers, and cross-shard drain, on a 2-shard
// ping-pong at the lookahead horizon — the worst case for barrier overhead
// (one message per window).
func BenchmarkClusterWindow(b *testing.B) {
	const look = 14
	b.ReportAllocs()
	c := NewCluster(2, look)
	remaining := b.N
	var hop func(self, other *Engine) func()
	hop = func(self, other *Engine) func() {
		return func() {
			if remaining--; remaining <= 0 {
				return
			}
			arr := self.Now() + look
			self.DeferTo(other, func() {
				other.At(arr, hop(other, self))
			})
		}
	}
	c.Shard(0).At(0, hop(c.Shard(0), c.Shard(1)))
	b.ResetTimer()
	if _, err := c.Run(0, nil); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkEngineSameCycleBurst measures bursts of same-cycle events (the
// FIFO tie-break path): snoop fan-outs and zero-latency handoffs schedule
// many events at the current time.
func BenchmarkEngineSameCycleBurst(b *testing.B) {
	e := NewEngine()
	nop := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += 64 {
		t := e.Now() + 1
		for j := 0; j < 64; j++ {
			e.At(t, nop)
		}
		for j := 0; j < 64; j++ {
			if !e.Step() {
				b.Fatal("queue drained unexpectedly")
			}
		}
	}
}
