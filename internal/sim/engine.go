// Package sim provides the deterministic discrete-event simulation engine
// underlying the CC-NUMA machine model. Simulated time is measured in
// compute-processor clock cycles (5 ns at 200 MHz, matching the paper's
// parameter tables). All model components schedule closures on a single
// Engine; the engine executes them in (time, sequence) order, which makes
// every simulation bit-for-bit reproducible.
package sim

import (
	"fmt"
)

// Time is a simulated timestamp or duration in compute-processor cycles
// (5 ns each). Negative durations are invalid.
type Time int64

// Nanoseconds converts a Time to nanoseconds using the paper's 200 MHz
// compute-processor clock.
func (t Time) Nanoseconds() float64 { return float64(t) * 5.0 }

// event is a scheduled closure. seq breaks ties between events scheduled for
// the same cycle so execution order is insertion order (deterministic).
// Events are stored by value inside the engine's heap slab: scheduling one
// performs no per-event heap allocation (the closure the caller passes is
// the only allocation on the scheduling path).
//
// rank is nil on a serial engine. On a sharded engine (one that belongs to a
// Cluster) every event carries a scheduling-lineage rank that reconstructs
// the serial (time, seq) total order without a global sequence counter; see
// shard.go for the ordering argument.
type event struct {
	at   Time
	seq  uint64
	rank *rankNode
	fn   func()
}

// before reports whether e orders ahead of o in the engine's total order:
// (time, seq) on a serial engine, (time, rank) on a sharded one. An engine
// never mixes ranked and unranked events, so the nil checks only select the
// mode.
func (e *event) before(o *event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	if e.rank == nil {
		return e.seq < o.seq
	}
	return rankLess(e.rank, o.rank)
}

// heapArity is the fan-out of the event heap. A 4-ary heap halves the tree
// depth of a binary heap, trading a few extra sibling comparisons (which hit
// the same cache line, since events are stored by value) for fewer
// level-to-level moves — the winning trade for the short-horizon reschedule
// pattern that dominates the machine model.
const heapArity = 4

// Engine is a discrete-event scheduler. The zero value is not usable; create
// one with NewEngine. Engine is not safe for concurrent use: all model code
// runs on the single goroutine that called Run (workload goroutines hand off
// control synchronously and never touch the engine while it is stepping).
// Independent simulations each own their engine, so whole runs can execute
// concurrently (see internal/runner).
type Engine struct {
	now Time
	seq uint64
	// events is a value-typed heapArity-ary min-heap ordered by (at, seq).
	// The backing array doubles as the event slab: pops shrink the slice
	// without releasing capacity, so a simulation reaches its high-water
	// queue depth once and then schedules allocation-free.
	events []event
	// stopped is set by Stop; Run drains no further events once set.
	stopped bool
	// executed counts events run, for debugging, runaway detection, and
	// events-per-second throughput accounting (obs.MeasurePerf).
	executed uint64
	// maxPending tracks the heap's high-water mark (slab size reporting).
	maxPending int
	// limitHit records that the run ended because Limit was exceeded.
	limitHit bool
	// Limit optionally bounds simulated time; Run returns an error if the
	// event horizon passes Limit (guards against protocol livelock bugs).
	Limit Time

	// Sharded-mode state (nil/zero on a serial engine). cluster links the
	// engine to its Cluster, shard is its index there, cur is the scheduling
	// context of the event currently executing on this engine's worker,
	// fence holds a quiesce request posted by the current event, and
	// crossSends counts DeferTo publications originating here.
	cluster    *Cluster
	shard      int
	cur        Ctx
	fence      *fenceReq
	crossSends uint64
}

// NewEngine returns an empty engine at time zero with no time limit.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Executed reports how many events have been executed so far.
func (e *Engine) Executed() uint64 { return e.executed }

// MaxPending reports the event queue's high-water mark: the slab capacity a
// simulation of this shape needs.
func (e *Engine) MaxPending() int { return e.maxPending }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it always indicates a model bug rather than a recoverable condition.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling at %d before now %d", t, e.now))
	}
	ev := event{at: t, fn: fn}
	if c := e.cluster; c != nil {
		if c.draining && t < c.drainHorizon {
			panic(fmt.Sprintf("sim: cross-shard lookahead violated: drained send schedules at %d before window horizon %d", t, c.drainHorizon))
		}
		ctx := c.ctx(e)
		if ctx == &e.cur && e.fence != nil {
			// A fence body runs inline on a serial engine but after the
			// posting event's body on a sharded one; scheduling on the
			// posting engine after Fence could therefore tie-break
			// differently against the body's own events. Requiring Fence
			// in tail position keeps the orders provably identical.
			panic("sim: event scheduled on its own engine after posting a Fence")
		}
		ev.rank = &rankNode{t: ctx.at, parent: ctx.parent, idx: ctx.next}
		ctx.next++
	} else {
		e.seq++
		ev.seq = e.seq
	}
	e.push(ev)
	if len(e.events) > e.maxPending {
		e.maxPending = len(e.events)
	}
}

// After schedules fn to run d cycles from now.
func (e *Engine) After(d Time, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", d))
	}
	e.At(e.now+d, fn)
}

// push appends ev and sifts it up to its heap position.
func (e *Engine) push(ev event) {
	h := append(e.events, ev)
	e.events = h
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / heapArity
		if !ev.before(&h[parent]) {
			break
		}
		h[i] = h[parent]
		i = parent
	}
	h[i] = ev
}

// pop removes and returns the minimum event. The vacated slot at the slab
// tail is zeroed so the engine does not pin the popped closure alive.
func (e *Engine) pop() event {
	h := e.events
	min := h[0]
	n := len(h) - 1
	last := h[n]
	h[n] = event{}
	h = h[:n]
	e.events = h
	if n > 0 {
		// Sift last down from the root.
		i := 0
		for {
			c := heapArity*i + 1
			if c >= n {
				break
			}
			end := c + heapArity
			if end > n {
				end = n
			}
			m := c
			for j := c + 1; j < end; j++ {
				if h[j].before(&h[m]) {
					m = j
				}
			}
			if !h[m].before(&last) {
				break
			}
			h[i] = h[m]
			i = m
		}
		h[i] = last
	}
	return min
}

// Stop halts the run loop after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Step executes the single earliest pending event and advances time to it.
// It reports whether an event was executed.
func (e *Engine) Step() bool {
	if e.stopped || len(e.events) == 0 {
		return false
	}
	if e.Limit > 0 && e.events[0].at > e.Limit {
		e.stopped = true
		e.limitHit = true
		return false
	}
	ev := e.pop()
	e.now = ev.at
	e.executed++
	if e.cluster != nil {
		e.cur = Ctx{parent: ev.rank, at: ev.at}
	}
	ev.fn()
	return true
}

// Sharded reports whether the engine belongs to a Cluster. Model components
// use it to route cross-shard effects through DeferTo/Fence instead of
// calling into another engine directly.
func (e *Engine) Sharded() bool { return e.cluster != nil }

// Run executes events until the queue is empty, Stop is called, or the time
// limit (if any) is exceeded. It returns the final simulated time and an
// error if the time limit was hit with work still pending.
func (e *Engine) Run() (Time, error) {
	for e.Step() {
	}
	if e.limitHit {
		return e.now, fmt.Errorf("sim: time limit %d exceeded at t=%d with %d events pending", e.Limit, e.now, len(e.events))
	}
	return e.now, nil
}

// Pending reports the number of events waiting in the queue.
func (e *Engine) Pending() int { return len(e.events) }

// LimitHit reports whether stepping stopped because the time limit was
// exceeded (for callers driving Step directly instead of Run).
func (e *Engine) LimitHit() bool { return e.limitHit }
