// Package sim provides the deterministic discrete-event simulation engine
// underlying the CC-NUMA machine model. Simulated time is measured in
// compute-processor clock cycles (5 ns at 200 MHz, matching the paper's
// parameter tables). All model components schedule closures on a single
// Engine; the engine executes them in (time, sequence) order, which makes
// every simulation bit-for-bit reproducible.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a simulated timestamp or duration in compute-processor cycles
// (5 ns each). Negative durations are invalid.
type Time int64

// Nanoseconds converts a Time to nanoseconds using the paper's 200 MHz
// compute-processor clock.
func (t Time) Nanoseconds() float64 { return float64(t) * 5.0 }

// event is a scheduled closure. seq breaks ties between events scheduled for
// the same cycle so execution order is insertion order (deterministic).
type event struct {
	at  Time
	seq uint64
	fn  func()
}

// eventHeap implements heap.Interface ordered by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event scheduler. The zero value is not usable; create
// one with NewEngine. Engine is not safe for concurrent use: all model code
// runs on the single goroutine that called Run (workload goroutines hand off
// control synchronously and never touch the engine while it is stepping).
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap
	// stopped is set by Stop; Run drains no further events once set.
	stopped bool
	// executed counts events run, for debugging and runaway detection.
	executed uint64
	// limitHit records that the run ended because Limit was exceeded.
	limitHit bool
	// Limit optionally bounds simulated time; Run returns an error if the
	// event horizon passes Limit (guards against protocol livelock bugs).
	Limit Time
}

// NewEngine returns an empty engine at time zero with no time limit.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Executed reports how many events have been executed so far.
func (e *Engine) Executed() uint64 { return e.executed }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it always indicates a model bug rather than a recoverable condition.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling at %d before now %d", t, e.now))
	}
	e.seq++
	heap.Push(&e.events, &event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d cycles from now.
func (e *Engine) After(d Time, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", d))
	}
	e.At(e.now+d, fn)
}

// Stop halts the run loop after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Step executes the single earliest pending event and advances time to it.
// It reports whether an event was executed.
func (e *Engine) Step() bool {
	if e.stopped || len(e.events) == 0 {
		return false
	}
	if e.Limit > 0 && e.events[0].at > e.Limit {
		e.stopped = true
		e.limitHit = true
		return false
	}
	ev := heap.Pop(&e.events).(*event)
	e.now = ev.at
	e.executed++
	ev.fn()
	return true
}

// Run executes events until the queue is empty, Stop is called, or the time
// limit (if any) is exceeded. It returns the final simulated time and an
// error if the time limit was hit with work still pending.
func (e *Engine) Run() (Time, error) {
	for e.Step() {
	}
	if e.limitHit {
		return e.now, fmt.Errorf("sim: time limit %d exceeded at t=%d with %d events pending", e.Limit, e.now, len(e.events))
	}
	return e.now, nil
}

// Pending reports the number of events waiting in the queue.
func (e *Engine) Pending() int { return len(e.events) }

// LimitHit reports whether stepping stopped because the time limit was
// exceeded (for callers driving Step directly instead of Run).
func (e *Engine) LimitHit() bool { return e.limitHit }
