// Flag overlay: the bridge between the commands' historical flag sets and
// the scenario document. Every command resolves its effective scenario the
// same way — Default(), then the -spec/-replay document if given, then its
// flags — so `-spec file.json -netlat 200` means "that experiment, but
// with a 200-cycle network", and a command invoked with no spec behaves
// exactly as it always has.
package scenario

import (
	"flag"
	"fmt"
	"strconv"
	"strings"

	"ccnuma/internal/config"
	"ccnuma/internal/sim"
)

// FlagFunc applies one flag's value to the spec; commands register these
// as overrides for flags whose meaning differs from the shared mapping
// (e.g. ccchaos's -seed seeds the fault schedules, not the workload).
type FlagFunc func(*Spec, string) error

// FromFlags resolves a command's effective scenario. Exactly one of
// specPath/replayPath may be non-empty: specPath loads a scenario file,
// replayPath extracts the scenario embedded in a run artifact. With
// neither, the spec starts from Default() and every flag applies at its
// default or explicit value, reproducing the commands' historical
// behavior; with a spec, only flags the user explicitly set override it.
func FromFlags(fs *flag.FlagSet, specPath, replayPath string, overrides map[string]FlagFunc) (*Spec, error) {
	if specPath != "" && replayPath != "" {
		return nil, fmt.Errorf("scenario: -spec and -replay are mutually exclusive")
	}
	var s *Spec
	var err error
	switch {
	case replayPath != "":
		s, err = LoadArtifact(replayPath)
	case specPath != "":
		s, err = Load(specPath)
	default:
		s = Default()
	}
	if err != nil {
		return nil, err
	}
	if err := Overlay(s, fs, specPath != "" || replayPath != "", overrides); err != nil {
		return nil, err
	}
	return s, nil
}

// Overlay applies a parsed flag set to the spec. With onlySet false it
// visits every flag (defaults included) in flag-name order; with onlySet
// true it visits only flags the user explicitly passed. Flags with no
// scenario meaning (output paths, verbosity, budgets) are ignored.
func Overlay(s *Spec, fs *flag.FlagSet, onlySet bool, overrides map[string]FlagFunc) error {
	var err error
	visit := func(f *flag.Flag) {
		if err != nil {
			return
		}
		if fn, ok := overrides[f.Name]; ok {
			if e := fn(s, f.Value.String()); e != nil {
				err = fmt.Errorf("scenario: -%s: %w", f.Name, e)
			}
			return
		}
		if _, e := ApplyFlag(s, f.Name, f.Value.String()); e != nil {
			err = fmt.Errorf("scenario: -%s: %w", f.Name, e)
		}
	}
	if onlySet {
		fs.Visit(visit)
	} else {
		fs.VisitAll(visit)
	}
	return err
}

// ApplyFlag maps one shared flag onto the spec, reporting whether the name
// has a scenario meaning. Visit order matters for two pairs and flag.Visit*
// iterates alphabetically, which happens to be the order the commands
// always applied them in: -arch (resetting the engine layout) precedes
// -engines and -node-archs, and -robust (the coarse preset) precedes
// nothing it would clobber.
func ApplyFlag(s *Spec, name, value string) (bool, error) {
	switch name {
	case "app":
		s.Workload.App = value
	case "size":
		s.Workload.Size = value
	case "seed":
		v, err := strconv.ParseInt(value, 10, 64)
		if err != nil {
			return true, err
		}
		s.Workload.Seed = v
	case "arch":
		m, err := s.Machine.WithArch(value)
		if err != nil {
			return true, err
		}
		s.Machine = m
	case "engines":
		v, err := strconv.Atoi(value)
		if err != nil {
			return true, err
		}
		s.Machine.NumEngines = v
	case "node-archs":
		s.Machine.NodeArchs = splitList(value)
	case "nodes":
		v, err := strconv.Atoi(value)
		if err != nil {
			return true, err
		}
		s.Machine.Nodes = v
	case "ppn", "procs":
		v, err := strconv.Atoi(value)
		if err != nil {
			return true, err
		}
		s.Machine.ProcsPerNode = v
	case "line":
		v, err := strconv.Atoi(value)
		if err != nil {
			return true, err
		}
		s.Machine.LineSize = v
	case "netlat":
		v, err := strconv.ParseInt(value, 10, 64)
		if err != nil {
			return true, err
		}
		s.Machine.NetLatency = sim.Time(v)
	case "split":
		p, err := config.ParseSplit(value)
		if err != nil {
			return true, err
		}
		s.Machine.Split = p
	case "arb":
		p, err := config.ParseArb(value)
		if err != nil {
			return true, err
		}
		s.Machine.Arbitration = p
	case "topo":
		t, err := config.ParseTopology(value)
		if err != nil {
			return true, err
		}
		s.Machine.Topology = t
	case "directpath":
		v, err := strconv.ParseBool(value)
		if err != nil {
			return true, err
		}
		s.Machine.DirectDataPath = v
	case "dircache":
		v, err := strconv.Atoi(value)
		if err != nil {
			return true, err
		}
		s.Machine.DirCacheEntries = v
	case "robust":
		v, err := strconv.ParseBool(value)
		if err != nil {
			return true, err
		}
		if v {
			s.Machine = s.Machine.WithRobustness()
		}
	case "attribution":
		v, err := strconv.ParseBool(value)
		if err != nil {
			return true, err
		}
		s.Machine.Attribution = v
	case "jobs":
		v, err := strconv.Atoi(value)
		if err != nil {
			return true, err
		}
		s.Jobs = v
	case "shards":
		v, err := strconv.Atoi(value)
		if err != nil {
			return true, err
		}
		s.Machine.SimShards = v
	case "schedules":
		v, err := strconv.Atoi(value)
		if err != nil {
			return true, err
		}
		s.EnsureFaults().Schedules = v
	case "first":
		v, err := strconv.Atoi(value)
		if err != nil {
			return true, err
		}
		s.EnsureFaults().First = v
	case "events":
		v, err := strconv.Atoi(value)
		if err != nil {
			return true, err
		}
		s.EnsureFaults().Events = v
	case "param":
		s.EnsureSweep().Param = value
	case "values":
		vals, err := parseIntList(value)
		if err != nil {
			return true, err
		}
		s.EnsureSweep().Values = vals
	case "archs":
		s.EnsureSweep().Archs = splitList(value)
	default:
		return false, nil
	}
	return true, nil
}

// splitList splits a comma-separated flag value, trimming blanks; an empty
// value yields nil so `-node-archs ""` clears the override.
func splitList(value string) []string {
	if strings.TrimSpace(value) == "" {
		return nil
	}
	parts := strings.Split(value, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		out = append(out, strings.TrimSpace(p))
	}
	return out
}

func parseIntList(value string) ([]int, error) {
	parts := splitList(value)
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
