package scenario

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ccnuma/internal/config"
)

// TestCanonicalFixpoint requires canonicalization to be a fixpoint of
// loading: Canonical() -> LoadBytes() -> Canonical() must reproduce the
// bytes exactly, for the default spec and for a spec using every section.
func TestCanonicalFixpoint(t *testing.T) {
	specs := map[string]*Spec{
		"default": Default(),
		"full":    fullSpec(t),
	}
	for name, s := range specs {
		first, err := s.Canonical()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		back, err := LoadBytes(first)
		if err != nil {
			t.Fatalf("%s: reloading canonical bytes: %v", name, err)
		}
		second, err := back.Canonical()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !bytes.Equal(first, second) {
			t.Errorf("%s: canonicalization is not a fixpoint:\n first: %s\nsecond: %s", name, first, second)
		}
	}
}

// fullSpec exercises every schema section: heterogeneous machine, seeded
// workload, fault plan, sweep plan, and a cost override.
func fullSpec(t *testing.T) *Spec {
	t.Helper()
	s := Default()
	s.Name = "full"
	s.Machine.Nodes = 4
	s.Machine.ProcsPerNode = 2
	s.Machine.NodeArchs = []string{"HWC", "HWC", "2PPC", "2PPC"}
	s.Machine.Costs[config.OpSendHeader][config.PPC] = 33
	s.Machine = s.Machine.WithRobustness()
	s.Workload = Workload{App: "fft", Size: "test", Seed: 7}
	s.Faults = &FaultPlan{Schedules: 5, First: 2, Events: 3, BaseSeed: 11}
	s.Sweep = &SweepPlan{Param: "netlat", Values: []int{14, 50}, Archs: []string{"HWC", "2PPC"}}
	s.Jobs = 2
	return s
}

// TestFingerprintStableAcrossFieldOrder feeds the loader two documents
// that differ only in JSON field order and whitespace and requires
// identical fingerprints — and a third document that differs in substance
// to hash differently.
func TestFingerprintStableAcrossFieldOrder(t *testing.T) {
	a := `{
  "schema": "ccnuma-scenario/v1",
  "workload": {"app": "fft", "size": "test"},
  "machine": {"nodes": 4, "procsPerNode": 2}
}`
	b := `{"machine":{"procsPerNode":2,"nodes":4},"workload":{"size":"test","app":"fft"},"schema":"ccnuma-scenario/v1"}`
	c := `{"schema":"ccnuma-scenario/v1","workload":{"app":"fft","size":"test"},"machine":{"nodes":8,"procsPerNode":2}}`

	fp := func(doc string) string {
		s, err := LoadBytes([]byte(doc))
		if err != nil {
			t.Fatal(err)
		}
		h, err := s.Fingerprint()
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	fa, fb, fc := fp(a), fp(b), fp(c)
	if fa != fb {
		t.Errorf("field order changed the fingerprint: %s vs %s", fa, fb)
	}
	if fa == fc {
		t.Errorf("substantively different specs share fingerprint %s", fa)
	}
	if len(fa) != 16 {
		t.Errorf("fingerprint %q is not 16 hex digits", fa)
	}
}

// ccsimFlags reproduces cmd/ccsim's scenario-relevant flag set on a fresh
// FlagSet so overlay behavior can be tested hermetically.
func ccsimFlags() *flag.FlagSet {
	fs := flag.NewFlagSet("ccsim", flag.ContinueOnError)
	fs.String("app", "ocean", "")
	fs.String("arch", "HWC", "")
	fs.Int("engines", 0, "")
	fs.String("node-archs", "", "")
	fs.Int("nodes", 16, "")
	fs.Int("ppn", 4, "")
	fs.Int("line", 128, "")
	fs.Int("netlat", 14, "")
	fs.String("size", "base", "")
	fs.String("split", "local-remote", "")
	fs.String("arb", "paper", "")
	fs.String("topo", "crossbar", "")
	fs.Bool("directpath", true, "")
	fs.Int("dircache", 8192, "")
	fs.Int64("seed", 0, "")
	fs.Bool("robust", false, "")
	return fs
}

// TestSpecPlusOverridesEqualsPureFlags pins the resolution rule the
// commands rely on: a spec file plus explicit override flags must resolve
// to exactly the scenario that pure flags produce (same fingerprint), for
// the Table 6 / Figure 6 style configurations the golden pins cover.
func TestSpecPlusOverridesEqualsPureFlags(t *testing.T) {
	// Pure flags: ccsim -app fft -arch 2PPC -nodes 4 -ppn 2 -size test -netlat 50
	pure := ccsimFlags()
	if err := pure.Parse([]string{"-app", "fft", "-arch", "2PPC", "-nodes", "4", "-ppn", "2", "-size", "test", "-netlat", "50"}); err != nil {
		t.Fatal(err)
	}
	fromFlags, err := FromFlags(pure, "", "", nil)
	if err != nil {
		t.Fatal(err)
	}

	// Spec file declaring part of it, with the rest as override flags.
	dir := t.TempDir()
	path := filepath.Join(dir, "spec.json")
	doc := `{
  "schema": "ccnuma-scenario/v1",
  "machine": {"nodes": 4, "procsPerNode": 2, "netLatency": 999},
  "workload": {"app": "fft", "size": "test"}
}`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	over := ccsimFlags()
	if err := over.Parse([]string{"-arch", "2PPC", "-netlat", "50"}); err != nil {
		t.Fatal(err)
	}
	fromSpec, err := FromFlags(over, path, "", nil)
	if err != nil {
		t.Fatal(err)
	}

	fp1, err := fromFlags.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	fp2, err := fromSpec.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fp1 != fp2 {
		c1, _ := fromFlags.Canonical()
		c2, _ := fromSpec.Canonical()
		t.Errorf("spec+overrides != pure flags:\nflags: %s\n spec: %s", c1, c2)
	}
	if fromSpec.Machine.NetLatency != 50 {
		t.Errorf("explicit -netlat 50 did not override the spec's 999, got %d", fromSpec.Machine.NetLatency)
	}
}

// TestOverlayOnlySetRespectsSpec checks the other half of the rule: flag
// defaults must NOT leak over a loaded spec.
func TestOverlayOnlySetRespectsSpec(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "spec.json")
	doc := `{"schema": "ccnuma-scenario/v1", "machine": {"nodes": 8, "netLatency": 200}, "workload": {"app": "lu", "size": "test"}}`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	fs := ccsimFlags()
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	s, err := FromFlags(fs, path, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Machine.Nodes != 8 || s.Machine.NetLatency != 200 || s.Workload.App != "lu" {
		t.Errorf("flag defaults clobbered the spec: nodes=%d netlat=%d app=%s",
			s.Machine.Nodes, s.Machine.NetLatency, s.Workload.App)
	}
}

// TestLoadRejects pins the loader's failure modes, each with an error a
// user can act on.
func TestLoadRejects(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		frag string
	}{
		{"missing schema", `{"workload": {"app": "fft", "size": "test"}}`, "schema"},
		{"wrong schema", `{"schema": "ccnuma-scenario/v2"}`, "ccnuma-scenario/v1"},
		{"unknown field", `{"schema": "ccnuma-scenario/v1", "wrkload": {}}`, "wrkload"},
		{"unknown machine field", `{"schema": "ccnuma-scenario/v1", "machine": {"nodez": 4}}`, "nodez"},
		{"bad cost row", `{"schema": "ccnuma-scenario/v1", "machine": {"costs": {"nope": [1,2,3]}}}`, "nope"},
		{"malformed", `{"schema": `, "unexpected"},
	}
	for _, tc := range cases {
		_, err := LoadBytes([]byte(tc.doc))
		if err == nil {
			t.Errorf("%s: expected error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.frag) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.frag)
		}
	}
}

// TestValidateRejects covers spec-level validation beyond the machine.
func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Spec)
		frag   string
	}{
		{"unknown app", func(s *Spec) { s.Workload.App = "doom" }, "workload.app"},
		{"unknown size", func(s *Spec) { s.Workload.Size = "jumbo" }, "workload.size"},
		{"negative schedules", func(s *Spec) { s.Faults = &FaultPlan{Schedules: -1} }, "faults.schedules"},
		{"negative first", func(s *Spec) { s.Faults = &FaultPlan{First: -2} }, "faults.first"},
		{"bad sweep param", func(s *Spec) { s.Sweep = &SweepPlan{Param: "zoom", Values: []int{1}, Archs: []string{"HWC"}} }, "sweep.param"},
		{"empty sweep values", func(s *Spec) { s.Sweep = &SweepPlan{Param: "netlat", Archs: []string{"HWC"}} }, "sweep.values"},
		{"empty sweep archs", func(s *Spec) { s.Sweep = &SweepPlan{Param: "netlat", Values: []int{1}} }, "sweep.archs"},
		{"bad sweep arch", func(s *Spec) { s.Sweep = &SweepPlan{Param: "netlat", Values: []int{1}, Archs: []string{"XY"}} }, "sweep.archs"},
		{"negative jobs", func(s *Spec) { s.Jobs = -1 }, "jobs"},
		{"machine error", func(s *Spec) { s.Machine.LineSize = 96 }, "LineSize"},
	}
	for _, tc := range cases {
		s := Default()
		tc.mutate(s)
		err := s.Validate()
		if err == nil {
			t.Errorf("%s: expected error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.frag) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.frag)
		}
	}
	// "all" is a valid app (chaos campaigns fan out over the paper apps).
	s := Default()
	s.Workload.App = "all"
	if err := s.Validate(); err != nil {
		t.Errorf("app=all rejected: %v", err)
	}
}

// TestLoadArtifact round-trips a spec through an artifact's scenario field
// the way ccsim -replay does.
func TestLoadArtifact(t *testing.T) {
	s := fullSpec(t)
	canon, err := s.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	fp, err := s.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	art := map[string]interface{}{
		"schema":              "ccnuma-run/v1",
		"scenario":            json.RawMessage(canon),
		"scenarioFingerprint": fp,
	}
	data, err := json.Marshal(art)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "run.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	back, err := LoadArtifact(path)
	if err != nil {
		t.Fatal(err)
	}
	fp2, err := back.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fp2 != fp {
		t.Errorf("replayed spec fingerprint %s != original %s", fp2, fp)
	}

	// An artifact without an embedded scenario is a clear error.
	bare := filepath.Join(dir, "bare.json")
	if err := os.WriteFile(bare, []byte(`{"schema":"ccnuma-run/v1"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadArtifact(bare); err == nil || !strings.Contains(err.Error(), "embeds no scenario") {
		t.Errorf("artifact without scenario: err = %v", err)
	}
}

// TestApplySweepValue pins each sweep axis and its failure modes.
func TestApplySweepValue(t *testing.T) {
	cfg := config.Base()
	cfg.Nodes, cfg.ProcsPerNode = 4, 2
	if err := ApplySweepValue(&cfg, "ppn", 4); err != nil {
		t.Fatal(err)
	}
	if cfg.Nodes != 2 || cfg.ProcsPerNode != 4 {
		t.Errorf("ppn sweep: %dx%d, want 2x4", cfg.Nodes, cfg.ProcsPerNode)
	}
	if err := ApplySweepValue(&cfg, "ppn", 3); err == nil {
		t.Error("ppn that does not divide total processors was accepted")
	}
	if err := ApplySweepValue(&cfg, "engines", 4); err != nil {
		t.Fatal(err)
	}
	if cfg.NumEngines != 4 || cfg.Split != config.SplitRegion {
		t.Error("engines sweep did not force the region split for >2 engines")
	}
	if err := ApplySweepValue(&cfg, "hoplat", 9); err != nil {
		t.Fatal(err)
	}
	if cfg.Topology != config.TopoMesh2D || cfg.NetHopLatency != 9 {
		t.Error("hoplat sweep did not switch to the mesh topology")
	}
	if err := ApplySweepValue(&cfg, "warp", 1); err == nil {
		t.Error("unknown sweep parameter was accepted")
	}
}

// TestFlagOverrides checks the per-command override hook (ccchaos's -seed
// feeds the fault plan, not the workload).
func TestFlagOverrides(t *testing.T) {
	fs := flag.NewFlagSet("ccchaos", flag.ContinueOnError)
	fs.Int64("seed", 1, "")
	if err := fs.Parse([]string{"-seed", "42"}); err != nil {
		t.Fatal(err)
	}
	overrides := map[string]FlagFunc{
		"seed": func(s *Spec, value string) error {
			s.EnsureFaults().BaseSeed = 42
			return nil
		},
	}
	s, err := FromFlags(fs, "", "", overrides)
	if err != nil {
		t.Fatal(err)
	}
	if s.Faults == nil || s.Faults.BaseSeed != 42 {
		t.Errorf("override did not route -seed to faults.baseSeed: %+v", s.Faults)
	}
	if s.Workload.Seed != 0 {
		t.Errorf("override leaked into workload.seed: %d", s.Workload.Seed)
	}
}
