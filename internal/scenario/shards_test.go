package scenario

import (
	"testing"

	"ccnuma/internal/config"
)

// TestShardsOutsideFingerprint pins that SimShards is a host knob, not
// experiment identity: two specs differing only in shard count share a
// fingerprint and a canonical encoding, so memo caches, artifact replay,
// and the experiment service treat sharded and serial runs of the same
// experiment as the same cell.
func TestShardsOutsideFingerprint(t *testing.T) {
	a := Default()
	b := Default()
	b.Machine.SimShards = 4
	fa, err := a.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	fb, err := b.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fa != fb {
		t.Errorf("fingerprint changed with SimShards: %s vs %s", fa, fb)
	}
	ca, err := a.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	cb, err := b.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if string(ca) != string(cb) {
		t.Error("canonical encoding changed with SimShards")
	}
}

// TestShardsFlagApplies pins the -shards flag mapping and the validation
// fences around it: shard counts are bounded by the node count and the
// mesh topology cannot shard.
func TestShardsFlagApplies(t *testing.T) {
	s := Default()
	if ok, err := ApplyFlag(s, "shards", "4"); !ok || err != nil {
		t.Fatalf("ApplyFlag(shards): ok=%v err=%v", ok, err)
	}
	if s.Machine.SimShards != 4 {
		t.Fatalf("SimShards = %d, want 4", s.Machine.SimShards)
	}

	cfg := config.Base()
	cfg.Nodes, cfg.ProcsPerNode = 4, 2
	cfg.SimShards = 5
	if err := cfg.Validate(); err == nil {
		t.Error("Validate accepted more shards than nodes")
	}
	cfg.SimShards = -1
	if err := cfg.Validate(); err == nil {
		t.Error("Validate accepted a negative shard count")
	}
	cfg.SimShards = 2
	cfg.Topology = config.TopoMesh2D
	if err := cfg.Validate(); err == nil {
		t.Error("Validate accepted a sharded mesh topology")
	}
	cfg.Topology = config.TopoCrossbar
	if err := cfg.Validate(); err != nil {
		t.Errorf("Validate rejected a legal sharded crossbar: %v", err)
	}
}
