package scenario

import (
	"fmt"
	"testing"

	"ccnuma/internal/machine"
	"ccnuma/internal/stats"
	"ccnuma/internal/workload"
)

// runSpec builds the machine and workload a spec describes and runs it to
// completion, exactly as cmd/ccsim does.
func runSpec(t *testing.T, s *Spec) *stats.Run {
	t.Helper()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	size, err := s.Size()
	if err != nil {
		t.Fatal(err)
	}
	m, err := machine.New(s.Machine, s.Workload.App)
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.NewSeeded(s.Workload.App, size, m.NProcs(), s.Workload.Seed)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Setup(m); err != nil {
		t.Fatal(err)
	}
	r, err := m.Run(w.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Verify(); err != nil {
		t.Fatalf("verification: %v", err)
	}
	return r
}

// TestGoldenExecTimesFromSpec pins the same cycle counts as the workload
// package's golden test, but with the machine built from a scenario
// document instead of flags: the declarative path must be cycle-identical
// to the imperative one.
func TestGoldenExecTimesFromSpec(t *testing.T) {
	cases := []struct {
		app  string
		arch string
		want int64
	}{
		{"fft", "HWC", 14804},
		{"fft", "2PPC", 21476},
	}
	for _, tc := range cases {
		doc := fmt.Sprintf(`{
  "schema": "ccnuma-scenario/v1",
  "machine": {"nodes": 4, "procsPerNode": 2},
  "workload": {"app": %q, "size": "test"}
}`, tc.app)
		s, err := LoadBytes([]byte(doc))
		if err != nil {
			t.Fatal(err)
		}
		s.Machine, err = s.Machine.WithArch(tc.arch)
		if err != nil {
			t.Fatal(err)
		}
		if got := int64(runSpec(t, s).ExecTime); got != tc.want {
			t.Errorf("%s on %s from spec: ExecTime = %d cycles, want %d — the scenario path diverged from the flag path",
				tc.app, tc.arch, got, tc.want)
		}
	}
}

// TestHeterogeneousMachineRuns exercises the Section 5 asymmetric designs:
// HWC controllers on half the nodes, PPC on the other half. The machine
// must build, run, verify, and report per-node engine statistics sized to
// each node's own controller, and the mixed machine's execution time must
// land strictly between the all-HWC and all-PPC configurations.
func TestHeterogeneousMachineRuns(t *testing.T) {
	build := func(archs []string) *Spec {
		s := Default()
		s.Machine.Nodes = 4
		s.Machine.ProcsPerNode = 2
		s.Machine.NodeArchs = archs
		s.Workload = Workload{App: "fft", Size: "test"}
		return s
	}

	hwc := runSpec(t, build(nil)).ExecTime
	mixed := build([]string{"HWC", "HWC", "PPC", "PPC"})
	mixedRun := runSpec(t, mixed)
	ppc := runSpec(t, build([]string{"PPC", "PPC", "PPC", "PPC"})).ExecTime

	if !(hwc < mixedRun.ExecTime && mixedRun.ExecTime < ppc) {
		t.Errorf("mixed machine should land between HWC and PPC: HWC=%d mixed=%d PPC=%d", hwc, mixedRun.ExecTime, ppc)
	}

	// A two-engine remote half also runs (2PPC remotes behind HWC homes,
	// the paper's natural asymmetric pairing), and its engine statistics
	// are ragged to the per-node layout: one engine on the HWC homes, two
	// on the 2PPC remotes.
	two := build([]string{"HWC", "HWC", "2PPC", "2PPC"})
	twoRun := runSpec(t, two)
	if twoRun.ExecTime <= 0 {
		t.Errorf("hetero 2PPC machine returned non-positive exec time %d", twoRun.ExecTime)
	}
	for n, want := range two.Machine.EngineCounts() {
		if got := len(twoRun.Controllers[n].Engines); got != want {
			t.Errorf("node %d engine stats sized %d, want %d", n, got, want)
		}
	}
	if twoRun.Controllers[2].Engines[1].Dispatches == 0 {
		t.Error("second engine of the 2PPC remote node never dispatched")
	}
}
