// Package scenario defines the declarative ccnuma-scenario/v1 spec: one
// versioned JSON document that names everything a run needs — machine
// geometry and per-node engine configuration, Table 1/2 timing overrides,
// workload and problem size, fault schedule, sweep axes, seeds, and job
// counts. Every command (ccsim, ccsweep, ccchaos, ccbench, ccverify) is a
// thin wrapper over the same loading pipeline: start from Default(),
// overlay a -spec file if given, then overlay the command's flags.
//
// Specs are canonicalized before use: loading resolves absent fields to
// their defaults, validation rejects inconsistent machines with errors
// naming the offending field, and Canonical() serializes the resolved spec
// with a fixed field order. The Fingerprint() of those canonical bytes is
// stable across JSON field ordering and whitespace, so two specs hash
// equal exactly when they describe the same experiment. Run artifacts
// embed the canonical document plus its fingerprint, which is what makes
// `ccsim -replay artifact.json` reproduce any published result.
package scenario

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"

	"ccnuma/internal/config"
	"ccnuma/internal/sim"
	"ccnuma/internal/workload"
)

// Schema is the versioned identifier every scenario document must carry.
const Schema = "ccnuma-scenario/v1"

// DefaultSimLimit is the watchdog horizon the commands have always run
// under (config.Base leaves SimLimit at a lower library default).
const DefaultSimLimit = 50_000_000_000

// Spec is one complete experiment description.
type Spec struct {
	SchemaName string `json:"schema"`
	// Name is a free-form label for humans; it participates in the
	// canonical form (two specs differing only in Name hash differently).
	Name string `json:"name,omitempty"`

	// Machine is the full architectural configuration, including the
	// heterogeneous per-node overrides (machine.nodeArchs) and the Table 2
	// occupancy table (machine.costs).
	Machine config.Config `json:"machine"`

	Workload Workload `json:"workload"`

	// Faults, when present, describes a chaos campaign (ccchaos).
	Faults *FaultPlan `json:"faults,omitempty"`

	// Sweep, when present, describes a parameter sweep grid (ccsweep).
	Sweep *SweepPlan `json:"sweep,omitempty"`

	// Jobs bounds concurrency for commands that fan out independent
	// simulations (0 = GOMAXPROCS). Output is identical for any value.
	Jobs int `json:"jobs,omitempty"`
}

// Workload names the kernel and problem size to run.
type Workload struct {
	App string `json:"app"`
	// Size is the problem-size class: test, base, or large.
	Size string `json:"size"`
	// Seed selects the kernel's input (0 = the fixed default input).
	Seed int64 `json:"seed,omitempty"`
}

// FaultPlan describes a seeded fault-injection campaign.
type FaultPlan struct {
	// Schedules is the number of fault schedules per application.
	Schedules int `json:"schedules"`
	// First is the index of the first schedule (repro: First=N,
	// Schedules=1 replays exactly schedule N).
	First int `json:"first,omitempty"`
	// Events is the number of faults per schedule (0 = scale with the
	// machine: 2 + nodes).
	Events int `json:"events,omitempty"`
	// BaseSeed seeds the generator; schedule s runs under BaseSeed+s.
	BaseSeed int64 `json:"baseSeed"`
}

// SweepPlan describes a parameter sweep grid, value-major: the first
// architecture of each value group is that group's penalty baseline.
type SweepPlan struct {
	Param  string   `json:"param"`
	Values []int    `json:"values"`
	Archs  []string `json:"archs"`
}

// SweepParams lists the parameters ApplySweepValue understands.
var SweepParams = []string{"netlat", "line", "ppn", "engines", "dircache", "banks", "hoplat"}

// Default returns the baseline scenario: the paper's base machine with the
// commands' usual watchdog horizon, running ocean at the base size.
func Default() *Spec {
	m := config.Base()
	m.SimLimit = DefaultSimLimit
	return &Spec{
		SchemaName: Schema,
		Machine:    m,
		Workload:   Workload{App: "ocean", Size: "base"},
	}
}

// EnsureFaults returns the spec's fault plan, installing the ccchaos
// defaults first when the loaded document had no faults section.
func (s *Spec) EnsureFaults() *FaultPlan {
	if s.Faults == nil {
		s.Faults = &FaultPlan{Schedules: 25, BaseSeed: 1}
	}
	return s.Faults
}

// EnsureSweep returns the spec's sweep plan, installing the ccsweep
// defaults first when the loaded document had no sweep section.
func (s *Spec) EnsureSweep() *SweepPlan {
	if s.Sweep == nil {
		s.Sweep = &SweepPlan{
			Param:  "netlat",
			Values: []int{14, 50, 100, 200},
			Archs:  []string{"HWC", "PPC"},
		}
	}
	return s.Sweep
}

// Load reads and resolves a scenario file.
func Load(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	s, err := LoadBytes(data)
	if err != nil {
		return nil, fmt.Errorf("scenario: %s: %w", path, err)
	}
	return s, nil
}

// LoadBytes resolves a scenario document against the defaults: fields
// absent from the JSON keep their Default() values, so a spec only states
// what it changes. Unknown fields are rejected, as is any schema other
// than ccnuma-scenario/v1.
func LoadBytes(data []byte) (*Spec, error) {
	var probe struct {
		Schema *string `json:"schema"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, err
	}
	if probe.Schema == nil {
		return nil, fmt.Errorf("missing schema field (want %q)", Schema)
	}
	if *probe.Schema != Schema {
		return nil, fmt.Errorf("schema %q, want %q", *probe.Schema, Schema)
	}
	s := Default()
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(s); err != nil {
		return nil, err
	}
	return s, nil
}

// LoadArtifact extracts and resolves the canonical scenario embedded in a
// ccnuma-run/v1 artifact, the entry point of `ccsim -replay`.
func LoadArtifact(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	var probe struct {
		Scenario json.RawMessage `json:"scenario"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, fmt.Errorf("scenario: %s: %w", path, err)
	}
	if len(probe.Scenario) == 0 {
		return nil, fmt.Errorf("scenario: %s: artifact embeds no scenario (pre-scenario artifact?)", path)
	}
	s, err := LoadBytes(probe.Scenario)
	if err != nil {
		return nil, fmt.Errorf("scenario: %s: embedded scenario: %w", path, err)
	}
	return s, nil
}

// Validate checks the resolved spec end to end: the machine configuration,
// the workload name and size, and the fault/sweep sections when present.
func (s *Spec) Validate() error {
	if s.SchemaName != Schema {
		return fmt.Errorf("scenario: schema %q, want %q", s.SchemaName, Schema)
	}
	if err := s.Machine.Validate(); err != nil {
		return err
	}
	if s.Workload.App != "all" && !knownApp(s.Workload.App) {
		return fmt.Errorf("scenario: workload.app: unknown application %q (have %v)", s.Workload.App, workload.Names())
	}
	if _, err := ParseSize(s.Workload.Size); err != nil {
		return fmt.Errorf("scenario: workload.size: %w", err)
	}
	if f := s.Faults; f != nil {
		if f.Schedules < 0 {
			return fmt.Errorf("scenario: faults.schedules: must be >= 0, got %d", f.Schedules)
		}
		if f.First < 0 {
			return fmt.Errorf("scenario: faults.first: must be >= 0, got %d", f.First)
		}
		if f.Events < 0 {
			return fmt.Errorf("scenario: faults.events: must be >= 0, got %d", f.Events)
		}
	}
	if sw := s.Sweep; sw != nil {
		if !knownSweepParam(sw.Param) {
			return fmt.Errorf("scenario: sweep.param: unknown parameter %q (have %v)", sw.Param, SweepParams)
		}
		if len(sw.Values) == 0 {
			return fmt.Errorf("scenario: sweep.values: must name at least one value")
		}
		if len(sw.Archs) == 0 {
			return fmt.Errorf("scenario: sweep.archs: must name at least one architecture")
		}
		for _, a := range sw.Archs {
			if _, _, err := config.ParseArch(a); err != nil {
				return fmt.Errorf("scenario: sweep.archs: %w", err)
			}
		}
	}
	if s.Jobs < 0 {
		return fmt.Errorf("scenario: jobs: must be >= 0, got %d", s.Jobs)
	}
	return nil
}

// Canonical validates the spec and serializes it in canonical form: fixed
// field order, two-space indentation, trailing newline. Canonical bytes
// are a fixpoint of LoadBytes, and they are what artifacts embed and what
// Fingerprint hashes.
func (s *Spec) Canonical() ([]byte, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	// SimShards tunes the host, not the experiment: results are pinned
	// byte-identical for every shard count, so the canonical form — and
	// with it the fingerprint, the scenario an artifact embeds, and what
	// -replay reproduces — excludes it. (Machine is a value field, so the
	// shallow copy cannot disturb the caller's spec.)
	c := *s
	c.Machine.SimShards = 0
	b, err := json.MarshalIndent(&c, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Fingerprint returns the stable identity of the spec: the first 16 hex
// digits of the SHA-256 of its canonical bytes. Two documents that resolve
// to the same experiment fingerprint identically regardless of field
// order, whitespace, or which defaults they spelled out.
func (s *Spec) Fingerprint() (string, error) {
	b, err := s.Canonical()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])[:16], nil
}

// Size resolves the workload size class.
func (s *Spec) Size() (workload.SizeClass, error) {
	return ParseSize(s.Workload.Size)
}

// ParseSize resolves a problem-size name.
func ParseSize(name string) (workload.SizeClass, error) {
	switch name {
	case "test":
		return workload.SizeTest, nil
	case "base":
		return workload.SizeBase, nil
	case "large":
		return workload.SizeLarge, nil
	}
	return 0, fmt.Errorf("unknown size %q (want test, base, or large)", name)
}

// ApplySweepValue sets one swept parameter on the configuration; it is the
// single definition of what ccsweep's -param axis means.
func ApplySweepValue(cfg *config.Config, param string, v int) error {
	switch param {
	case "netlat":
		cfg.NetLatency = sim.Time(v)
	case "line":
		cfg.LineSize = v
	case "ppn":
		total := cfg.Nodes * cfg.ProcsPerNode
		if v <= 0 || total%v != 0 {
			return fmt.Errorf("ppn %d does not divide %d processors", v, total)
		}
		cfg.Nodes, cfg.ProcsPerNode = total/v, v
	case "engines":
		cfg.NumEngines = v
		if v > 2 {
			cfg.Split = config.SplitRegion
		}
	case "dircache":
		cfg.DirCacheEntries = v
	case "banks":
		cfg.MemBanks = v
	case "hoplat":
		cfg.Topology = config.TopoMesh2D
		cfg.NetHopLatency = sim.Time(v)
	default:
		return fmt.Errorf("unknown parameter %q (have %v)", param, SweepParams)
	}
	return nil
}

func knownApp(name string) bool {
	for _, n := range workload.Names() {
		if n == name {
			return true
		}
	}
	return false
}

func knownSweepParam(name string) bool {
	for _, p := range SweepParams {
		if p == name {
			return true
		}
	}
	return false
}
