package machine

import (
	"fmt"
	"math/rand"
	"testing"

	"ccnuma/internal/config"
	"ccnuma/internal/prog"
)

// randomProgram builds a deterministic pseudo-random SPMD program from a
// seed: mixed reads, writes, upgrades-by-rewrite, lock sections, and
// barriers over a shared region sized to force evictions and every
// protocol path. Each processor derives its own stream from (seed, id), so
// one seed fixes the whole run.
func randomProgram(seed int64, base uint64, lines, iters, lineSize int) func(prog.Env) {
	return func(e prog.Env) {
		rng := rand.New(rand.NewSource(seed*1000 + int64(e.ID())))
		for i := 0; i < iters; i++ {
			a := base + uint64(rng.Intn(lines)*lineSize)
			switch rng.Intn(10) {
			case 0, 1, 2, 3:
				e.Read(a)
			case 4, 5:
				e.Write(a)
			case 6:
				e.Read(a)
				e.Write(a) // read-modify-write: upgrade path
			case 7:
				l := rng.Intn(4)
				e.Lock(l)
				e.Read(a)
				e.Write(a)
				e.Unlock(l)
			case 8:
				e.Compute(rng.Intn(200))
			case 9:
				e.Read(a + 64)
			}
			// Barriers are structural (same count on every processor).
			if i%64 == 63 {
				e.Barrier()
			}
		}
		e.Barrier()
	}
}

// TestProtocolStressSeeds tortures the full protocol across seeds,
// architectures, and split policies; every run ends with the global
// coherence invariant sweep inside Machine.Run.
func TestProtocolStressSeeds(t *testing.T) {
	type combo struct {
		arch  string
		split config.SplitPolicy
	}
	combos := []combo{
		{"HWC", config.SplitLocalRemote},
		{"PPC", config.SplitLocalRemote},
		{"2HWC", config.SplitLocalRemote},
		{"2PPC", config.SplitLocalRemote},
		{"2PPC", config.SplitRoundRobin},
		{"PPCA", config.SplitLocalRemote},
	}
	seeds := []int64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, cb := range combos {
		for _, seed := range seeds {
			cb, seed := cb, seed
			t.Run(fmt.Sprintf("%s-%v-seed%d", cb.arch, cb.split, seed), func(t *testing.T) {
				cfg := testCfg(4, 2)
				var err error
				cfg, err = cfg.WithArch(cb.arch)
				if err != nil {
					t.Fatal(err)
				}
				cfg.Split = cb.split
				// Small caches force evictions and write-back races.
				cfg.L2Size = 16 * 1024
				cfg.L1Size = 2 * 1024
				cfg.L1Assoc, cfg.L2Assoc = 2, 2
				m, err := New(cfg, "stress")
				if err != nil {
					t.Fatal(err)
				}
				base := m.Space.Alloc(256 * cfg.LineSize)
				if _, err := m.Run(randomProgram(seed, base, 256, 300, cfg.LineSize)); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestProtocolStressFourEngines tortures the region-split extension.
func TestProtocolStressFourEngines(t *testing.T) {
	cfg := testCfg(4, 2)
	cfg.Engine = config.PPC
	cfg.NumEngines = 4
	cfg.Split = config.SplitRegion
	cfg.L2Size = 16 * 1024
	cfg.L1Size = 2 * 1024
	cfg.L1Assoc, cfg.L2Assoc = 2, 2
	m, err := New(cfg, "stress4")
	if err != nil {
		t.Fatal(err)
	}
	base := m.Space.Alloc(256 * cfg.LineSize)
	if _, err := m.Run(randomProgram(7, base, 256, 300, cfg.LineSize)); err != nil {
		t.Fatal(err)
	}
}

// TestProtocolStressSmallLines tortures the Figure 7 configuration (32-byte
// lines quadruple the transaction rate).
func TestProtocolStressSmallLines(t *testing.T) {
	cfg := testCfg(2, 2)
	cfg.LineSize = 32
	cfg.L2Size = 8 * 1024
	cfg.L1Size = 1024
	cfg.L1Assoc, cfg.L2Assoc = 2, 2
	m, err := New(cfg, "stress32")
	if err != nil {
		t.Fatal(err)
	}
	base := m.Space.Alloc(256 * cfg.LineSize)
	if _, err := m.Run(randomProgram(11, base, 256, 400, cfg.LineSize)); err != nil {
		t.Fatal(err)
	}
}

// TestCoherenceCheckerDetectsViolations plants an inconsistency and
// verifies the sweep reports it (guarding the guard).
func TestCoherenceCheckerDetectsViolations(t *testing.T) {
	cfg := testCfg(2, 1)
	m, err := New(cfg, "guard")
	if err != nil {
		t.Fatal(err)
	}
	base := m.Space.AllocOnNode(4096, 0)
	// Run a legitimate program first.
	_, err = m.Run(func(e prog.Env) {
		if e.ID() == 1 {
			e.Write(base)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Now corrupt the home directory behind the protocol's back: claim the
	// line is clean while node 1 holds it Modified.
	m.Dirs[0].Write(m.Eng.Now(), base, dirEntryNone())
	if err := m.CheckCoherence(); err == nil {
		t.Fatal("checker missed a planted dirty-without-directory violation")
	}
}

// TestProtocolStressDynamicSplit tortures the shortest-queue split.
func TestProtocolStressDynamicSplit(t *testing.T) {
	cfg := testCfg(4, 2)
	cfg.Engine = config.PPC
	cfg.NumEngines = 3
	cfg.Split = config.SplitDynamic
	cfg.L2Size = 16 * 1024
	cfg.L1Size = 2 * 1024
	cfg.L1Assoc, cfg.L2Assoc = 2, 2
	m, err := New(cfg, "stressdyn")
	if err != nil {
		t.Fatal(err)
	}
	base := m.Space.Alloc(256 * cfg.LineSize)
	if _, err := m.Run(randomProgram(13, base, 256, 300, cfg.LineSize)); err != nil {
		t.Fatal(err)
	}
}

// TestProtocolStressMesh tortures the protocol over the 2-D mesh topology.
func TestProtocolStressMesh(t *testing.T) {
	cfg := testCfg(4, 2)
	cfg.Engine = config.PPC
	cfg.Topology = config.TopoMesh2D
	cfg.L2Size = 16 * 1024
	cfg.L1Size = 2 * 1024
	cfg.L1Assoc, cfg.L2Assoc = 2, 2
	m, err := New(cfg, "stressmesh")
	if err != nil {
		t.Fatal(err)
	}
	base := m.Space.Alloc(256 * cfg.LineSize)
	if _, err := m.Run(randomProgram(17, base, 256, 300, cfg.LineSize)); err != nil {
		t.Fatal(err)
	}
}
