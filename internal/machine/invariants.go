package machine

import (
	"fmt"

	"ccnuma/internal/cache"
	"ccnuma/internal/directory"
)

// CheckCoherence validates the global coherence invariants on a quiesced
// machine (no in-flight transactions): every dirty cached line is owned by
// exactly one node and registered as DirtyRemote at its home (unless the
// home itself holds it), and every clean shared copy of a remote line is
// covered by the home directory. Stale directory sharers (nodes that
// silently dropped Shared copies) are legal; uncovered holders are not.
// Machine.Run calls this after every successful run.
func (m *Machine) CheckCoherence() error {
	lines := make(map[uint64][]l2Holder)
	for _, p := range m.Procs {
		node := p.Node()
		p.ForEachL2Line(func(line uint64, st cache.State) {
			lines[line] = append(lines[line], l2Holder{node, st})
		})
	}
	for line, hs := range lines {
		home := m.Space.Home(line)
		if home < 0 {
			return fmt.Errorf("coherence: cached line %#x has no home", line)
		}
		entry := m.Dirs[home].Lookup(line)

		dirtyNode := -1
		for _, h := range hs {
			if h.state.Dirty() {
				if dirtyNode >= 0 && dirtyNode != h.node {
					return fmt.Errorf("coherence: line %#x dirty in nodes %d and %d", line, dirtyNode, h.node)
				}
				dirtyNode = h.node
			}
		}
		// A dirty copy forbids clean copies outside the dirty node unless
		// the dirty state is Owned (dirty-shared within one node is legal,
		// and Owned lines may have Shared copies in other nodes only if
		// the directory knows — which DirtyRemote precludes). Modified
		// must be globally exclusive.
		for _, h := range hs {
			if dirtyNode >= 0 && h.node != dirtyNode {
				if anyModified(hs) {
					return fmt.Errorf("coherence: line %#x cached in node %d while Modified in node %d",
						line, h.node, dirtyNode)
				}
			}
		}

		for _, h := range hs {
			if h.node == home {
				continue // the home's own caches are covered by bus snooping
			}
			switch {
			case h.state.Dirty():
				if entry.State != directory.DirtyRemote || entry.Owner != h.node {
					return fmt.Errorf("coherence: line %#x dirty (%v) in node %d but home %d records %v/owner=%d",
						line, h.state, h.node, home, entry.State, entry.Owner)
				}
			default: // Shared or Exclusive copy of a remote line
				covered := (entry.State == directory.SharedRemote && entry.Sharers.Has(h.node)) ||
					(entry.State == directory.DirtyRemote && entry.Owner == h.node)
				if !covered {
					return fmt.Errorf("coherence: line %#x held %v by node %d but home %d records %v (sharers=%b owner=%d)",
						line, h.state, h.node, home, entry.State, entry.Sharers, entry.Owner)
				}
			}
		}
		// DirtyRemote entries must be backed by an actual dirty copy at
		// the owner (otherwise a write-back was lost).
		if entry.State == directory.DirtyRemote {
			found := false
			for _, h := range hs {
				if h.node == entry.Owner && h.state.Dirty() {
					found = true
				}
			}
			if !found {
				return fmt.Errorf("coherence: home %d records line %#x DirtyRemote at node %d but no dirty copy exists",
					home, line, entry.Owner)
			}
		}
	}
	return nil
}

// l2Holder is one cache's view of a line during the coherence sweep.
type l2Holder struct {
	node  int
	state cache.State
}

func anyModified(hs []l2Holder) bool {
	for _, h := range hs {
		if h.state == cache.Modified {
			return true
		}
	}
	return false
}

// dirEntryNone returns an empty (NoRemote) directory entry (test helper).
func dirEntryNone() directory.Entry { return directory.Entry{} }
