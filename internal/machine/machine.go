// Package machine assembles the full CC-NUMA system of the paper's base
// configuration: N SMP nodes (bus + interleaved memory + caches + coherence
// controller + directory) connected by the point-to-point network, plus the
// synchronization layer (barriers and queued test-and-set locks) the
// SPLASH-2 kernels need. It owns the simulation run loop and collects the
// statistics of Tables 6 and 7.
package machine

import (
	"fmt"
	"strings"

	"ccnuma/internal/config"
	"ccnuma/internal/core"
	"ccnuma/internal/cpu"
	"ccnuma/internal/directory"
	"ccnuma/internal/interconnect"
	"ccnuma/internal/memaddr"
	"ccnuma/internal/prog"
	"ccnuma/internal/protocol"
	"ccnuma/internal/sim"
	"ccnuma/internal/smpbus"
	"ccnuma/internal/stats"
)

// Machine is one fully wired CC-NUMA system.
type Machine struct {
	Eng   *sim.Engine
	Cfg   config.Config
	Space *memaddr.Space
	Net   *interconnect.Network
	Buses []*smpbus.Bus
	Dirs  []*directory.Directory
	CCs   []*core.Controller
	Procs []*cpu.Proc

	run *stats.Run

	// Barrier state (single global sense-counting barrier).
	barrierParked []*cpu.Proc

	// Lock state.
	locks     map[int]*lockState
	lockAddrs map[int]uint64
	lockPage  uint64
	lockNext  int
}

type lockState struct {
	held    bool
	waiters []*cpu.Proc
}

// New builds a machine for cfg. The app name labels the statistics run.
func New(cfg config.Config, app string) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	eng := sim.NewEngine()
	eng.Limit = cfg.SimLimit
	m := &Machine{
		Eng:       eng,
		Cfg:       cfg,
		locks:     make(map[int]*lockState),
		lockAddrs: make(map[int]uint64),
		run:       stats.NewRun(cfg.ArchName(), app, cfg.Nodes, cfg.EngineCount()),
	}
	m.Space = memaddr.NewSpace(&m.Cfg)
	m.Net = interconnect.New(eng, &m.Cfg)
	for n := 0; n < cfg.Nodes; n++ {
		bus := smpbus.New(eng, &m.Cfg, n)
		dir := directory.New(eng, &m.Cfg, n)
		cc := core.New(eng, &m.Cfg, n, bus, m.Net, dir, m.Space, &m.run.Controllers[n])
		m.Buses = append(m.Buses, bus)
		m.Dirs = append(m.Dirs, dir)
		m.CCs = append(m.CCs, cc)
		for i := 0; i < cfg.ProcsPerNode; i++ {
			id := n*cfg.ProcsPerNode + i
			p := cpu.New(eng, &m.Cfg, id, n, bus, m.Space, m)
			m.Procs = append(m.Procs, p)
		}
	}
	return m, nil
}

// NProcs returns the machine's processor count.
func (m *Machine) NProcs() int { return len(m.Procs) }

// Run executes program on every processor (SPMD) and returns the collected
// statistics. The run fails if the simulation exceeds the configured time
// limit or deadlocks with unfinished processors.
func (m *Machine) Run(program func(prog.Env)) (*stats.Run, error) {
	for _, p := range m.Procs {
		p.Run(program)
	}
	if _, err := m.Eng.Run(); err != nil {
		return nil, err
	}
	var execTime sim.Time
	for _, p := range m.Procs {
		done, at := p.Finished()
		if !done {
			var dump strings.Builder
			for _, cc := range m.CCs {
				dump.WriteString(cc.DumpPending())
			}
			return nil, fmt.Errorf("machine: processor %d never finished (deadlock: %d events executed, %d parked at barrier)\n%s",
				p.ID(), m.Eng.Executed(), len(m.barrierParked), dump.String())
		}
		if at > execTime {
			execTime = at
		}
	}
	for n, cc := range m.CCs {
		if pend := cc.PendingOps(); pend != 0 {
			return nil, fmt.Errorf("machine: controller %d left %d transient ops", n, pend)
		}
	}
	if err := m.CheckCoherence(); err != nil {
		return nil, err
	}
	m.collect(execTime)
	return m.run, nil
}

func (m *Machine) collect(execTime sim.Time) {
	r := m.run
	r.ExecTime = execTime
	for _, p := range m.Procs {
		r.Instructions += p.Instructions()
		r.MissLatency.Merge(p.MissLatencies())
		for k, v := range p.Counters() {
			r.Add(k, v)
		}
	}
	r.Add("netMessages", m.Net.Messages())
	r.Add("netFlits", m.Net.Flits())
	for _, b := range m.Buses {
		for k := smpbus.Kind(0); k < 8; k++ {
			if c := b.Count(k); c > 0 {
				r.Add("bus"+k.String(), c)
			}
		}
	}
	for _, d := range m.Dirs {
		r.Add("dirCacheHits", d.CacheHits())
		r.Add("dirCacheMisses", d.CacheMisses())
	}
	for h := protocol.Handler(0); h < protocol.Handler(protocol.NumHandlers); h++ {
		var c, busy uint64
		for _, cc := range m.CCs {
			c += cc.HandlerCount(h)
			busy += uint64(cc.HandlerBusy(h))
		}
		if c > 0 {
			r.Add("handler:"+h.String(), c)
			r.Add("handlerBusy:"+h.String(), busy)
		}
	}
}

// ---- synchronization (cpu.SyncHandler) --------------------------------------

// Barrier parks the processor; when the last one arrives, all resume after
// the configured barrier cost. Barriers are simulated at a fixed cost
// rather than as coherence spin loops (see DESIGN.md substitutions).
func (m *Machine) Barrier(p *cpu.Proc) {
	m.barrierParked = append(m.barrierParked, p)
	if len(m.barrierParked) < len(m.Procs) {
		return
	}
	parked := m.barrierParked
	m.barrierParked = nil
	for _, q := range parked {
		q := q
		m.Eng.After(m.Cfg.BarrierCost, q.Resume)
	}
}

// lockAddrFor lazily assigns each lock a cache line (packed 32 per page so
// lock homes spread round-robin like ordinary data).
func (m *Machine) lockAddrFor(id int) uint64 {
	if a, ok := m.lockAddrs[id]; ok {
		return a
	}
	perPage := m.Cfg.PageSize / m.Cfg.LineSize
	if m.lockNext%perPage == 0 {
		m.lockPage = m.Space.Alloc(m.Cfg.PageSize)
	}
	a := m.lockPage + uint64((m.lockNext%perPage)*m.Cfg.LineSize)
	m.lockNext++
	m.lockAddrs[id] = a
	return a
}

// Lock models a queued test-and-set lock: the acquire is a read-exclusive
// of the lock's cache line; contended acquirers park until the release and
// then retry the line acquisition after a back-off.
func (m *Machine) Lock(p *cpu.Proc, id int) {
	ls := m.locks[id]
	if ls == nil {
		ls = &lockState{}
		m.locks[id] = ls
	}
	addr := m.lockAddrFor(id)
	p.SyncAccess(addr, true, func() {
		if !ls.held {
			ls.held = true
			p.Resume()
			return
		}
		ls.waiters = append(ls.waiters, p)
	})
}

// Unlock releases the lock with a store to its line and hands it to the
// next waiter, whose retry pays another line acquisition.
func (m *Machine) Unlock(p *cpu.Proc, id int) {
	ls := m.locks[id]
	if ls == nil || !ls.held {
		panic(fmt.Sprintf("machine: unlock of free lock %d", id))
	}
	addr := m.lockAddrFor(id)
	p.SyncAccess(addr, true, func() {
		if len(ls.waiters) == 0 {
			ls.held = false
		} else {
			next := ls.waiters[0]
			ls.waiters = ls.waiters[1:]
			m.Eng.After(m.Cfg.LockRetry, func() {
				next.SyncAccess(addr, true, next.Resume)
			})
		}
		p.Resume()
	})
}
