// Package machine assembles the full CC-NUMA system of the paper's base
// configuration: N SMP nodes (bus + interleaved memory + caches + coherence
// controller + directory) connected by the point-to-point network, plus the
// synchronization layer (barriers and queued test-and-set locks) the
// SPLASH-2 kernels need. It owns the simulation run loop and collects the
// statistics of Tables 6 and 7.
package machine

import (
	"fmt"
	"strings"

	"ccnuma/internal/config"
	"ccnuma/internal/core"
	"ccnuma/internal/cpu"
	"ccnuma/internal/directory"
	"ccnuma/internal/interconnect"
	"ccnuma/internal/memaddr"
	"ccnuma/internal/obs"
	"ccnuma/internal/prog"
	"ccnuma/internal/protocol"
	"ccnuma/internal/sim"
	"ccnuma/internal/smpbus"
	"ccnuma/internal/stats"
)

// Machine is one fully wired CC-NUMA system.
type Machine struct {
	// Eng is the serial event engine, or shard 0's engine when the
	// simulation is sharded (Cfg.SimShards > 1). Code that needs the
	// engine owning a particular node must use engFor.
	Eng   *sim.Engine
	Cfg   config.Config
	Space *memaddr.Space

	// engs[n] is the engine that owns node n's components; every entry
	// aliases Eng when the run is serial. cluster is nil when serial.
	engs    []*sim.Engine
	cluster *sim.Cluster
	Net     *interconnect.Network
	Buses   []*smpbus.Bus
	Dirs    []*directory.Directory
	CCs     []*core.Controller
	Procs   []*cpu.Proc

	// Tracer is the structured-event tracer every component records into
	// (nil when tracing is disabled).
	Tracer *obs.Tracer

	run     *stats.Run
	sampler *obs.Sampler
	spans   *obs.SpanTracker // nil unless Cfg.Attribution

	// Barrier state (single global sense-counting barrier).
	barrierParked []*cpu.Proc

	// Lock state.
	locks     map[int]*lockState
	lockAddrs map[int]uint64
	lockPage  uint64
	lockNext  int
}

type lockState struct {
	held    bool
	waiters []*cpu.Proc
}

// New builds a machine for cfg with tracing disabled. The app name labels
// the statistics run.
func New(cfg config.Config, app string) (*Machine, error) {
	return NewTraced(cfg, app, nil)
}

// NewTraced builds a machine whose components record typed events into tr
// (nil disables tracing at zero cost).
func NewTraced(cfg config.Config, app string, tr *obs.Tracer) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var cluster *sim.Cluster
	if cfg.SimShards > 1 {
		if tr != nil {
			return nil, fmt.Errorf("machine: tracing requires SimShards <= 1: the trace ring is one globally ordered log")
		}
		// Conservative lookahead: the smallest delay any cross-node effect
		// pays. Messages pay NetLatency on the wire, barrier releases pay
		// BarrierCost, and lock handoffs pay LockRetry, so no shard can be
		// affected by another within a window shorter than their minimum.
		look := cfg.NetLatency
		if cfg.BarrierCost < look {
			look = cfg.BarrierCost
		}
		if cfg.LockRetry < look {
			look = cfg.LockRetry
		}
		if look <= 0 {
			return nil, fmt.Errorf("machine: SimShards=%d needs positive NetLatency, BarrierCost, and LockRetry for conservative lookahead (got %d, %d, %d)",
				cfg.SimShards, cfg.NetLatency, cfg.BarrierCost, cfg.LockRetry)
		}
		cluster = sim.NewCluster(cfg.SimShards, look)
	}
	engs := make([]*sim.Engine, cfg.Nodes)
	for n := range engs {
		switch {
		case cluster != nil:
			engs[n] = cluster.Shard(n * cfg.SimShards / cfg.Nodes)
		case n == 0:
			engs[n] = sim.NewEngine()
		default:
			engs[n] = engs[0]
		}
	}
	if cluster != nil {
		for i := 0; i < cfg.SimShards; i++ {
			cluster.Shard(i).Limit = cfg.SimLimit
		}
	} else {
		engs[0].Limit = cfg.SimLimit
	}
	eng := engs[0]
	m := &Machine{
		Eng:       eng,
		engs:      engs,
		cluster:   cluster,
		Cfg:       cfg,
		Tracer:    tr,
		locks:     make(map[int]*lockState),
		lockAddrs: make(map[int]uint64),
		run:       stats.NewRun(cfg.ArchName(), app, cfg.EngineCounts()),
	}
	m.Space = memaddr.NewSpace(&m.Cfg)
	m.Net = interconnect.New(eng, &m.Cfg, tr)
	if cluster != nil {
		m.Net.Shard(engs)
	}
	if cfg.Attribution {
		m.spans = obs.NewSpanTracker(tr)
		m.Net.AttachSpans(m.spans)
	}
	for n := 0; n < cfg.Nodes; n++ {
		bus := smpbus.New(engs[n], &m.Cfg, n, tr)
		dir := directory.New(engs[n], &m.Cfg, n, tr)
		cc := core.New(engs[n], &m.Cfg, n, bus, m.Net, dir, m.Space, &m.run.Controllers[n], tr)
		bus.AttachSpans(m.spans)
		cc.AttachSpans(m.spans)
		m.Buses = append(m.Buses, bus)
		m.Dirs = append(m.Dirs, dir)
		m.CCs = append(m.CCs, cc)
		for i := 0; i < cfg.ProcsPerNode; i++ {
			id := n*cfg.ProcsPerNode + i
			p := cpu.New(engs[n], &m.Cfg, id, n, bus, m.Space, m, tr)
			p.AttachSpans(m.spans)
			m.Procs = append(m.Procs, p)
		}
	}
	return m, nil
}

// engFor returns the engine that owns node n's components (Eng when serial).
func (m *Machine) engFor(node int) *sim.Engine { return m.engs[node] }

// fence runs fn in a globally serialized context. Shared machine state —
// the barrier list, the lock tables, the page-placement map — may only be
// touched under a fence; when serial, fn runs inline at zero cost.
func (m *Machine) fence(p *cpu.Proc, fn func()) { m.engFor(p.Node()).Fence(fn) }

// Executed returns the events executed so far, summed across shards.
func (m *Machine) Executed() uint64 {
	if m.cluster != nil {
		return m.cluster.Executed()
	}
	return m.Eng.Executed()
}

// Cluster returns the shard cluster, or nil when the run is serial.
func (m *Machine) Cluster() *sim.Cluster { return m.cluster }

func (m *Machine) simNow() sim.Time {
	if m.cluster != nil {
		return m.cluster.Now()
	}
	return m.Eng.Now()
}

func (m *Machine) pendingEvents() int {
	if m.cluster != nil {
		return m.cluster.Pending()
	}
	return m.Eng.Pending()
}

// Spans returns the machine's span tracker (nil unless Cfg.Attribution).
func (m *Machine) Spans() *obs.SpanTracker { return m.spans }

// AttachSampler registers a time-series sampler; the machine probes engine
// utilization, queue depths, bus/bank/directory occupancy, and NI backlog
// every sampler interval of simulated time during Run.
func (m *Machine) AttachSampler(s *obs.Sampler) { m.sampler = s }

// NProcs returns the machine's processor count.
func (m *Machine) NProcs() int { return len(m.Procs) }

// Run executes program on every processor (SPMD) and returns the collected
// statistics. The run fails if the simulation exceeds the configured time
// limit or deadlocks with unfinished processors.
func (m *Machine) Run(program func(prog.Env)) (*stats.Run, error) {
	for _, p := range m.Procs {
		p.Run(program)
	}
	if m.sampler != nil {
		if m.cluster != nil {
			return nil, fmt.Errorf("machine: the sampler probes every node from one periodic event and requires SimShards <= 1")
		}
		m.startSampler()
	}
	if err := m.runEngine(); err != nil {
		return nil, err
	}
	var execTime sim.Time
	for _, p := range m.Procs {
		done, at := p.Finished()
		if !done {
			return nil, fmt.Errorf("machine: processor %d never finished (deadlock: %d events executed, %d parked at barrier)\n%s",
				p.ID(), m.Executed(), len(m.barrierParked), m.Snapshot())
		}
		if at > execTime {
			execTime = at
		}
	}
	for n, cc := range m.CCs {
		if pend := cc.PendingOps(); pend != 0 {
			return nil, fmt.Errorf("machine: controller %d left %d transient ops", n, pend)
		}
	}
	if err := m.CheckCoherence(); err != nil {
		return nil, err
	}
	// Every attributed run self-checks the span conservation invariant:
	// each completed transaction's stage segments partition its end-to-end
	// miss latency exactly, and no transaction leaks open.
	if err := m.spans.CheckConservation(); err != nil {
		return nil, err
	}
	m.collect(execTime)
	return m.run, nil
}

// watchdogChunk bounds how many events may execute at a single simulated
// cycle before the stall watchdog declares livelock. Real same-cycle bursts
// are a few events per component; millions means time has stopped advancing.
const watchdogChunk = 2_000_000

// runEngine drives the event loop in chunks, watching for loss of forward
// progress: if a full chunk of events executes without the clock moving, or
// with no useful protocol work (dispatches) behind heavy NACK/retry
// traffic, the run is aborted with a classified stall report and a state
// snapshot instead of spinning forever.
func (m *Machine) runEngine() error {
	if m.cluster != nil {
		return m.runEngineSharded()
	}
	prevDisp, prevNacks, prevRetries := m.progressCounters()
	for {
		last := m.Eng.Now()
		n := 0
		for n < watchdogChunk && m.Eng.Step() {
			n++
		}
		if n < watchdogChunk {
			break // queue drained, Stop called, or time limit hit
		}
		rep := m.stallReport(last, n, prevDisp, prevNacks, prevRetries)
		if m.Eng.Now() == last {
			return fmt.Errorf("machine: watchdog: simulated time stalled at t=%d (%d events without progress)\n%s\n%s",
				m.Eng.Now(), watchdogChunk, rep, m.Snapshot())
		}
		// Time advances but a whole chunk dispatched nothing while NACK or
		// retry traffic flowed: the protocol is churning without absorbing
		// work (NACK storm / livelock with a moving clock).
		if rep.DispatchesInWindow == 0 && rep.NacksInWindow+rep.RetriesInWindow > 0 {
			return fmt.Errorf("machine: watchdog: no useful work for %d events at t=%d\n%s\n%s",
				watchdogChunk, m.Eng.Now(), rep, m.Snapshot())
		}
		prevDisp, prevNacks, prevRetries = m.progressCounters()
	}
	if m.Eng.LimitHit() {
		return fmt.Errorf("machine: time limit %d exceeded at t=%d with %d events pending\n%s",
			m.Eng.Limit, m.Eng.Now(), m.Eng.Pending(), m.Snapshot())
	}
	return nil
}

// runEngineSharded drives the shard cluster with the same watchdog policy
// as the serial loop: the onCheck hook fires with the cluster quiescent
// every watchdogChunk events, applying the identical stall classification.
func (m *Machine) runEngineSharded() error {
	prevDisp, prevNacks, prevRetries := m.progressCounters()
	last := m.simNow()
	check := func(executed uint64) error {
		rep := m.stallReport(last, watchdogChunk, prevDisp, prevNacks, prevRetries)
		now := m.simNow()
		if now == last {
			return fmt.Errorf("machine: watchdog: simulated time stalled at t=%d (%d events without progress)\n%s\n%s",
				now, watchdogChunk, rep, m.Snapshot())
		}
		if rep.DispatchesInWindow == 0 && rep.NacksInWindow+rep.RetriesInWindow > 0 {
			return fmt.Errorf("machine: watchdog: no useful work for %d events at t=%d\n%s\n%s",
				watchdogChunk, now, rep, m.Snapshot())
		}
		prevDisp, prevNacks, prevRetries = m.progressCounters()
		last = now
		return nil
	}
	if _, err := m.cluster.Run(watchdogChunk, check); err != nil {
		// The cluster reports the limit only after draining every event at
		// or below it, exactly like the serial loop; re-render its error in
		// the machine's format. Watchdog errors pass through unchanged.
		if m.cluster.LimitHit() && strings.HasPrefix(err.Error(), "sim: time limit") {
			return fmt.Errorf("machine: time limit %d exceeded at t=%d with %d events pending\n%s",
				m.Eng.Limit, m.simNow(), m.pendingEvents(), m.Snapshot())
		}
		return err
	}
	return nil
}

// Snapshot renders the machine's live state for stall and deadlock reports:
// engine occupancy and queue depths, outstanding transient protocol state,
// and network-interface port backlogs.
func (m *Machine) Snapshot() string {
	var b strings.Builder
	now := m.simNow()
	fmt.Fprintf(&b, "t=%d executed=%d pending=%d\n", now, m.Executed(), m.pendingEvents())
	for n, cc := range m.CCs {
		b.WriteString(cc.DumpPending())
		out := m.Net.OutPort(n).FreeAt() - now
		in := m.Net.InPort(n).FreeAt() - now
		if out < 0 {
			out = 0
		}
		if in < 0 {
			in = 0
		}
		if out > 0 || in > 0 {
			fmt.Fprintf(&b, "node %d ni-out backlog=%d ni-in backlog=%d\n", n, out, in)
		}
	}
	return b.String()
}

// startSampler schedules the periodic probe that feeds the attached
// sampler. The probe re-arms itself only while other events are pending, so
// it never keeps a finished simulation alive.
func (m *Machine) startSampler() {
	s := m.sampler
	nodes := m.Cfg.Nodes
	prevEng := make([][]sim.Time, nodes)
	for n := range prevEng {
		prevEng[n] = make([]sim.Time, m.Cfg.NodeEngineCount(n))
	}
	prevAddr := make([]sim.Time, nodes)
	prevData := make([]sim.Time, nodes)
	prevBank := make([]sim.Time, nodes)
	prevDir := make([]sim.Time, nodes)
	prevNacks := make([]uint64, nodes)
	prevRetries := make([]uint64, nodes)
	var prevOverflows uint64
	var tick func()
	tick = func() {
		now := m.Eng.Now()
		overflows := m.Net.Link().Overflows
		ovDelta := overflows - prevOverflows
		prevOverflows = overflows
		for n := 0; n < nodes; n++ {
			bus := m.Buses[n]
			addr := bus.AddrResource().Busy()
			data := bus.DataResource().Busy()
			bank := bus.BanksBusy()
			dram := m.Dirs[n].DRAM().Busy()
			outBacklog := int64(m.Net.OutPort(n).FreeAt() - now)
			inBacklog := int64(m.Net.InPort(n).FreeAt() - now)
			if outBacklog < 0 {
				outBacklog = 0
			}
			if inBacklog < 0 {
				inBacklog = 0
			}
			nacks := m.run.Controllers[n].NacksSent
			retries := m.run.Controllers[n].Retries + m.run.Controllers[n].Timeouts
			nackDelta := nacks - prevNacks[n]
			retryDelta := retries - prevRetries[n]
			prevNacks[n], prevRetries[n] = nacks, retries
			for i := range prevEng[n] {
				busy := m.run.Controllers[n].Engines[i].Busy
				resp, req, busQ := m.CCs[n].QueueDepths(i)
				s.Add(obs.Sample{
					At:             int64(now),
					Node:           n,
					Engine:         i,
					EngineUtilPct:  s.UtilPct(busy - prevEng[n][i]),
					EngineBusy:     m.CCs[n].EngineBusy(i),
					RespQ:          resp,
					ReqQ:           req,
					BusQ:           busQ,
					BusAddrUtilPct: s.UtilPct(addr - prevAddr[n]),
					BusDataUtilPct: s.UtilPct(data - prevData[n]),
					BankUtilPct:    s.UtilPct((bank - prevBank[n]) / sim.Time(bus.NumBanks())),
					DirDRAMUtilPct: s.UtilPct(dram - prevDir[n]),
					NIOutBacklog:   outBacklog,
					NIInBacklog:    inBacklog,
					QueueCap:       m.Cfg.QueueDepth,
					NIOutQueued:    m.Net.OutQueued(n),
					Nacks:          nackDelta,
					Retries:        retryDelta,
					Overflows:      ovDelta,
				})
				prevEng[n][i] = busy
			}
			prevAddr[n], prevData[n], prevBank[n], prevDir[n] = addr, data, bank, dram
		}
		if m.Eng.Pending() > 0 {
			m.Eng.After(s.Interval, tick)
		}
	}
	m.Eng.After(s.Interval, tick)
}

func (m *Machine) collect(execTime sim.Time) {
	r := m.run
	r.ExecTime = execTime
	r.Attribution = m.spans.Stats()
	for _, p := range m.Procs {
		r.Instructions += p.Instructions()
		r.MissLatency.Merge(p.MissLatencies())
		for k, v := range p.Counters() {
			r.Add(k, v)
		}
	}
	r.Add("netMessages", m.Net.Messages())
	r.Add("netFlits", m.Net.Flits())
	for _, b := range m.Buses {
		for k := smpbus.Kind(0); k < 8; k++ {
			if c := b.Count(k); c > 0 {
				r.Add("bus"+k.String(), c)
			}
		}
	}
	for _, d := range m.Dirs {
		r.Add("dirCacheHits", d.CacheHits())
		r.Add("dirCacheMisses", d.CacheMisses())
	}
	// Recovery and fault counters, added only when non-zero so fault-free
	// reports are byte-identical to pre-robustness output.
	ns, nr, rt, to, ba, sd := r.RecoveryTotals()
	for _, c := range []struct {
		name string
		v    uint64
	}{
		{"nacksSent", ns}, {"nacksRecv", nr}, {"retries", rt},
		{"timeouts", to}, {"busAborts", ba}, {"strayDrops", sd},
	} {
		if c.v > 0 {
			r.Add(c.name, c.v)
		}
	}
	link := m.Net.Link()
	for _, c := range []struct {
		name string
		v    uint64
	}{
		{"linkDrops", link.Drops}, {"linkDuplicates", link.Duplicates},
		{"linkCorrupts", link.Corrupts}, {"linkDelays", link.DelaysInjected},
		{"linkRetransmits", link.Retransmits}, {"linkDiscards", link.Discards},
		{"niOverflows", link.Overflows}, {"niBrownouts", link.Brownouts},
	} {
		if c.v > 0 {
			r.Add(c.name, c.v)
		}
	}
	var busStalls uint64
	for _, b := range m.Buses {
		busStalls += b.Stalls()
	}
	if busStalls > 0 {
		r.Add("busStalls", busStalls)
	}
	for h := protocol.Handler(0); h < protocol.Handler(protocol.NumHandlers); h++ {
		var c, busy uint64
		for _, cc := range m.CCs {
			c += cc.HandlerCount(h)
			busy += uint64(cc.HandlerBusy(h))
		}
		if c > 0 {
			r.Add("handler:"+h.String(), c)
			r.Add("handlerBusy:"+h.String(), busy)
		}
	}
}

// ---- synchronization (cpu.SyncHandler) --------------------------------------

// Barrier parks the processor; when the last one arrives, all resume after
// the configured barrier cost. Barriers are simulated at a fixed cost
// rather than as coherence spin loops (see DESIGN.md substitutions). The
// arrival list is shared machine state, so the whole operation runs under a
// fence; releases pay BarrierCost, which is at least the cluster lookahead,
// so the cross-engine resumes are legal from the fence body.
func (m *Machine) Barrier(p *cpu.Proc) {
	m.fence(p, func() {
		m.barrierParked = append(m.barrierParked, p)
		if len(m.barrierParked) < len(m.Procs) {
			return
		}
		parked := m.barrierParked
		m.barrierParked = nil
		at := m.engFor(p.Node()).Now()
		for _, q := range parked {
			q := q
			m.engFor(q.Node()).At(at+m.Cfg.BarrierCost, q.Resume)
		}
	})
}

// lockAddrFor lazily assigns each lock a cache line (packed 32 per page so
// lock homes spread round-robin like ordinary data).
func (m *Machine) lockAddrFor(id int) uint64 {
	if a, ok := m.lockAddrs[id]; ok {
		return a
	}
	perPage := m.Cfg.PageSize / m.Cfg.LineSize
	if m.lockNext%perPage == 0 {
		m.lockPage = m.Space.Alloc(m.Cfg.PageSize)
	}
	a := m.lockPage + uint64((m.lockNext%perPage)*m.Cfg.LineSize)
	m.lockNext++
	m.lockAddrs[id] = a
	return a
}

// Lock models a queued test-and-set lock: the acquire is a read-exclusive
// of the lock's cache line; contended acquirers park until the release and
// then retry the line acquisition after a back-off.
func (m *Machine) Lock(p *cpu.Proc, id int) {
	// Outer fence: the lock table and lock-line placement are shared
	// machine state. Inner fence: the completion callback mutates the lock
	// state again, from an event on p's engine. Both run inline when serial.
	m.fence(p, func() {
		ls := m.locks[id]
		if ls == nil {
			ls = &lockState{}
			m.locks[id] = ls
		}
		addr := m.lockAddrFor(id)
		p.SyncAccess(addr, true, func() {
			m.fence(p, func() {
				if !ls.held {
					ls.held = true
					p.Resume()
					return
				}
				ls.waiters = append(ls.waiters, p)
			})
		})
	})
}

// Unlock releases the lock with a store to its line and hands it to the
// next waiter, whose retry pays another line acquisition.
func (m *Machine) Unlock(p *cpu.Proc, id int) {
	m.fence(p, func() {
		ls := m.locks[id]
		if ls == nil || !ls.held {
			panic(fmt.Sprintf("machine: unlock of free lock %d", id))
		}
		addr := m.lockAddrFor(id)
		p.SyncAccess(addr, true, func() {
			m.fence(p, func() {
				if len(ls.waiters) == 0 {
					ls.held = false
				} else {
					next := ls.waiters[0]
					ls.waiters = ls.waiters[1:]
					at := m.engFor(p.Node()).Now()
					// The handoff pays LockRetry >= lookahead, so the retry
					// may land cross-engine; its completion callback
					// (next.Resume) touches no shared state and needs no
					// fence.
					m.engFor(next.Node()).At(at+m.Cfg.LockRetry, func() {
						next.SyncAccess(addr, true, next.Resume)
					})
				}
				p.Resume()
			})
		})
	})
}
