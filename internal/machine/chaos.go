package machine

import (
	"fmt"

	"ccnuma/internal/fault"
	"ccnuma/internal/sim"
)

// InjectFaults arms a deterministic fault schedule on the machine: message
// faults plug into the network's fault hook, component faults (engine
// stalls, NI brownouts, bus stalls) are scheduled at their simulated times.
// Call before Run. The returned injector reports what actually fired.
func (m *Machine) InjectFaults(sch *fault.Schedule) *fault.Injector {
	inj := fault.NewInjector(sch, m.Cfg.Nodes)
	m.Net.Fault = inj.NetFault
	for _, ev := range inj.ComponentEvents() {
		ev := ev
		if ev.Node < 0 || ev.Node >= m.Cfg.Nodes {
			continue
		}
		// Component faults are node-local, so each arms on the engine that
		// owns its node; when sharded the callbacks touch only that shard's
		// state (NoteApplied counters are only read after Run).
		eng := m.engFor(ev.Node)
		switch ev.Kind {
		case fault.EngineStall:
			eng.At(ev.At, func() {
				if m.CCs[ev.Node].StallEngine(ev.Engine, ev.Dur) {
					inj.NoteApplied(fault.EngineStall)
					m.Tracer.Fault(eng.Now(), ev.Node, ev.Kind.String(), int64(ev.Dur))
				}
			})
		case fault.Brownout:
			eng.At(ev.At, func() {
				m.Net.Brownout(ev.Node, ev.Out, ev.Dur)
				inj.NoteApplied(fault.Brownout)
				m.Tracer.Fault(eng.Now(), ev.Node, ev.Kind.String(), int64(ev.Dur))
			})
		case fault.BusStall:
			eng.At(ev.At, func() {
				m.Buses[ev.Node].Stall(ev.Dur)
				inj.NoteApplied(fault.BusStall)
				m.Tracer.Fault(eng.Now(), ev.Node, ev.Kind.String(), int64(ev.Dur))
			})
		}
	}
	return inj
}

// StallClass is the watchdog's diagnosis of a run that stopped making
// forward progress.
type StallClass int

const (
	// ClassDeadlock: the event queue spun down or circular waiting left no
	// handler activity at all — nothing is being dispatched.
	ClassDeadlock StallClass = iota
	// ClassNackStorm: handlers run, but NACK/retry traffic dominates the
	// dispatch mix — requests bounce without ever being absorbed.
	ClassNackStorm
	// ClassLivelock: events execute without simulated time advancing and
	// without NACK dominance (a scheduling cycle at one instant).
	ClassLivelock
	// ClassStarvation: the machine dispatches useful work and time advances,
	// but some processors are stuck behind it indefinitely.
	ClassStarvation
)

var stallClassNames = [...]string{"deadlock", "nack-storm", "livelock", "starvation"}

func (c StallClass) String() string {
	if int(c) < len(stallClassNames) {
		return stallClassNames[c]
	}
	return fmt.Sprintf("StallClass(%d)", int(c))
}

// StallReport is a snapshot of forward-progress indicators over one
// watchdog window, taken when the watchdog suspects a hang.
type StallReport struct {
	At              sim.Time // simulated time of the snapshot
	TimeAdvanced    sim.Time // simulated time gained during the window
	EventsInWindow  int      // engine events executed during the window
	PendingEvents   int      // events still queued
	PendingOps      int      // transient protocol ops outstanding
	UnfinishedProcs int      // processors that have not completed
	TotalProcs      int

	// Window deltas of the recovery counters.
	DispatchesInWindow uint64 // protocol handlers dispatched
	NacksInWindow      uint64 // NACKs sent
	RetriesInWindow    uint64 // re-issues (NACK back-offs + timeouts)
}

// Classify diagnoses the stall. The decision tree prefers the most specific
// explanation the counters support: no dispatches at all is a deadlock;
// NACKs rivalling dispatches is a NACK storm; same-cycle spinning without
// either is a livelock; anything else starves some processor.
func (r StallReport) Classify() StallClass {
	switch {
	case r.DispatchesInWindow == 0 && r.EventsInWindow == 0:
		return ClassDeadlock
	case r.NacksInWindow > 0 && r.NacksInWindow*2 >= r.DispatchesInWindow:
		return ClassNackStorm
	case r.TimeAdvanced == 0:
		return ClassLivelock
	default:
		return ClassStarvation
	}
}

// String renders the report for stall diagnostics.
func (r StallReport) String() string {
	return fmt.Sprintf(
		"class=%s t=%d advanced=%d events=%d pendingEvents=%d pendingOps=%d procs=%d/%d dispatches=%d nacks=%d retries=%d",
		r.Classify(), int64(r.At), int64(r.TimeAdvanced), r.EventsInWindow,
		r.PendingEvents, r.PendingOps, r.TotalProcs-r.UnfinishedProcs,
		r.TotalProcs, r.DispatchesInWindow, r.NacksInWindow, r.RetriesInWindow)
}

// stallReport builds a StallReport for the window since the given counter
// snapshot.
func (m *Machine) stallReport(last sim.Time, events int, prevDisp, prevNacks, prevRetries uint64) StallReport {
	rep := StallReport{
		At:             m.simNow(),
		TimeAdvanced:   m.simNow() - last,
		EventsInWindow: events,
		PendingEvents:  m.pendingEvents(),
		TotalProcs:     len(m.Procs),
	}
	for _, cc := range m.CCs {
		rep.PendingOps += cc.PendingOps()
	}
	for _, p := range m.Procs {
		if done, _ := p.Finished(); !done {
			rep.UnfinishedProcs++
		}
	}
	disp, nacks, retries := m.progressCounters()
	rep.DispatchesInWindow = disp - prevDisp
	rep.NacksInWindow = nacks - prevNacks
	rep.RetriesInWindow = retries - prevRetries
	return rep
}

// progressCounters sums the forward-progress counters the classifier
// windows over.
func (m *Machine) progressCounters() (dispatches, nacks, retries uint64) {
	for i := range m.run.Controllers {
		c := &m.run.Controllers[i]
		dispatches += c.Dispatches()
		nacks += c.NacksSent
		retries += c.Retries + c.Timeouts
	}
	return
}
