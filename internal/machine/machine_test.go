package machine

import (
	"testing"

	"ccnuma/internal/config"
	"ccnuma/internal/prog"
	"ccnuma/internal/protocol"
	"ccnuma/internal/stats"
)

// testCfg returns a small machine configuration with a deadlock guard.
func testCfg(nodes, procs int) config.Config {
	cfg := config.Base()
	cfg.Nodes = nodes
	cfg.ProcsPerNode = procs
	cfg.SimLimit = 50_000_000
	return cfg
}

func mustRun(t *testing.T, cfg config.Config, name string, prog func(prog.Env)) (*Machine, *stats.Run) {
	t.Helper()
	m, err := New(cfg, name)
	if err != nil {
		t.Fatal(err)
	}
	r, err := m.Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	return m, r
}

func TestLocalReadsNeverTouchController(t *testing.T) {
	cfg := testCfg(2, 1)
	m, err := New(cfg, "local")
	if err != nil {
		t.Fatal(err)
	}
	// One page per node; each processor touches only its own node's page.
	addrs := []uint64{m.Space.AllocOnNode(4096, 0), m.Space.AllocOnNode(4096, 1)}
	r, err := m.Run(func(e prog.Env) {
		base := addrs[e.Node()]
		for i := 0; i < 20; i++ {
			e.Read(base + uint64(i*8))
			e.Write(base + uint64(i*8))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.TotalArrivals(); got != 0 {
		t.Fatalf("local-only run sent %d requests to controllers", got)
	}
	if r.ExecTime == 0 || r.Instructions == 0 {
		t.Fatalf("suspicious run: %+v", r)
	}
}

func TestRemoteReadMissPath(t *testing.T) {
	cfg := testCfg(2, 1)
	m, err := New(cfg, "remote-read")
	if err != nil {
		t.Fatal(err)
	}
	base := m.Space.AllocOnNode(4096, 0) // homed on node 0
	r, err := m.Run(func(e prog.Env) {
		if e.ID() == 1 { // processor on node 1 reads node 0's line
			e.Read(base)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.TotalArrivals() == 0 {
		t.Fatal("remote read did not reach any controller")
	}
	// Requester side and home side handlers must each fire once.
	if c := m.CCs[1].HandlerCount(protocol.HBusReadRemote); c != 1 {
		t.Errorf("bus-read-remote count = %d, want 1", c)
	}
	if c := m.CCs[0].HandlerCount(protocol.HRemoteReadHomeClean); c != 1 {
		t.Errorf("home clean read count = %d, want 1", c)
	}
	if c := m.CCs[1].HandlerCount(protocol.HDataRespRead); c != 1 {
		t.Errorf("data response count = %d, want 1", c)
	}
}

// TestRemoteReadLatencyTable3 checks the no-contention remote clean read
// miss latency against the paper's Table 3: 142 cycles for HWC and 212 for
// PPC (+/- a tolerance for model granularity), i.e. roughly +49% for PPC.
func TestRemoteReadLatencyTable3(t *testing.T) {
	measure := func(engine config.EngineKind) int64 {
		cfg := testCfg(2, 1)
		cfg.Engine = engine
		m, err := New(cfg, "latency")
		if err != nil {
			t.Fatal(err)
		}
		base := m.Space.AllocOnNode(4096, 0)
		r, err := m.Run(func(e prog.Env) {
			if e.ID() == 1 {
				e.Read(base)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return int64(r.ExecTime)
	}
	hwc := measure(config.HWC)
	ppc := measure(config.PPC)
	t.Logf("remote clean read miss: HWC=%d PPC=%d (+%.0f%%)", hwc, ppc,
		100*float64(ppc-hwc)/float64(hwc))
	if hwc < 120 || hwc > 175 {
		t.Errorf("HWC latency %d outside Table 3 neighbourhood (142)", hwc)
	}
	if ppc < 180 || ppc > 255 {
		t.Errorf("PPC latency %d outside Table 3 neighbourhood (212)", ppc)
	}
	rel := float64(ppc-hwc) / float64(hwc)
	if rel < 0.30 || rel < 0 || rel > 0.75 {
		t.Errorf("PPC relative increase %.2f, paper reports 0.49", rel)
	}
}

func TestProducerConsumerMigration(t *testing.T) {
	cfg := testCfg(2, 1)
	m, err := New(cfg, "migration")
	if err != nil {
		t.Fatal(err)
	}
	base := m.Space.AllocOnNode(4096, 0)
	_, err = m.Run(func(e prog.Env) {
		if e.ID() == 0 {
			e.Write(base) // home node dirties its own line
		}
		e.Barrier()
		if e.ID() == 1 {
			e.Write(base) // remote node takes exclusive ownership
		}
		e.Barrier()
		if e.ID() == 0 {
			e.Read(base) // home reads back: intervention at remote owner
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Node 1's write is a remote read-exclusive; home finds the line clean
	// (dir tracks only remote nodes, node 0's dirty copy is collected by
	// the home-side FetchEx snoop).
	if c := m.CCs[0].HandlerCount(protocol.HRemoteReadExHomeUncached); c != 1 {
		t.Errorf("readex at home count = %d, want 1", c)
	}
	// Node 0's read back finds DirtyRemote and forwards an intervention.
	if c := m.CCs[0].HandlerCount(protocol.HBusReadLocalDirtyRemote); c != 1 {
		t.Errorf("local read dirty-remote count = %d, want 1", c)
	}
	if c := m.CCs[1].HandlerCount(protocol.HFetchOwnerFromHome); c != 1 {
		t.Errorf("owner fetch count = %d, want 1", c)
	}
	if c := m.CCs[0].HandlerCount(protocol.HOwnerDataAtHomeRead); c != 1 {
		t.Errorf("owner data at home count = %d, want 1", c)
	}
}

func TestInvalidationFanOut(t *testing.T) {
	cfg := testCfg(4, 1)
	m, err := New(cfg, "inval")
	if err != nil {
		t.Fatal(err)
	}
	base := m.Space.AllocOnNode(4096, 0)
	_, err = m.Run(func(e prog.Env) {
		if e.ID() >= 1 { // nodes 1..3 become sharers
			e.Read(base)
		}
		e.Barrier()
		if e.ID() == 1 { // node 1 upgrades: nodes 2 and 3 get invalidated
			e.Write(base)
		}
		e.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	invals := m.CCs[2].HandlerCount(protocol.HInvalAtSharer) +
		m.CCs[3].HandlerCount(protocol.HInvalAtSharer)
	if invals != 2 {
		t.Errorf("invalidations at sharers = %d, want 2", invals)
	}
	acks := m.CCs[0].HandlerCount(protocol.HInvalAckMore) +
		m.CCs[0].HandlerCount(protocol.HInvalAckLastRemote)
	if acks != 2 {
		t.Errorf("acks at home = %d, want 2", acks)
	}
}

func TestRemoteOwnerToRemoteRequesterForward(t *testing.T) {
	cfg := testCfg(4, 1)
	m, err := New(cfg, "forward")
	if err != nil {
		t.Fatal(err)
	}
	base := m.Space.AllocOnNode(4096, 0)
	_, err = m.Run(func(e prog.Env) {
		if e.ID() == 1 {
			e.Write(base) // node 1 owns dirty
		}
		e.Barrier()
		if e.ID() == 2 {
			e.Read(base) // node 2 reads: home forwards to node 1
		}
		e.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if c := m.CCs[0].HandlerCount(protocol.HRemoteReadHomeDirty); c != 1 {
		t.Errorf("home dirty-forward count = %d, want 1", c)
	}
	if c := m.CCs[1].HandlerCount(protocol.HFetchOwnerRemoteReq); c != 1 {
		t.Errorf("owner fetch (remote requester) = %d, want 1", c)
	}
	// Owner sends data directly to node 2 and a sharing write-back home.
	if c := m.CCs[2].HandlerCount(protocol.HDataRespRead); c != 1 {
		t.Errorf("requester data response = %d, want 1", c)
	}
	if c := m.CCs[0].HandlerCount(protocol.HOwnerWBAtHomeRead); c != 1 {
		t.Errorf("sharing write-back at home = %d, want 1", c)
	}
}

func TestEvictionWriteBackReachesHome(t *testing.T) {
	cfg := testCfg(2, 1)
	// Tiny L2 so dirty remote lines get evicted.
	cfg.L2Size = 4 * 1024
	cfg.L2Assoc = 2
	cfg.L1Size = 1024
	cfg.L1Assoc = 2
	m, err := New(cfg, "wb")
	if err != nil {
		t.Fatal(err)
	}
	base := m.Space.AllocOnNode(64*1024, 0)
	_, err = m.Run(func(e prog.Env) {
		if e.ID() == 1 {
			// Dirty far more lines than the L2 holds.
			for i := 0; i < 256; i++ {
				e.Write(base + uint64(i*128))
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if c := m.CCs[0].HandlerCount(protocol.HWriteBackAtHome); c == 0 {
		t.Error("no eviction write-backs arrived at home")
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	cfg := testCfg(2, 2)
	m, err := New(cfg, "barrier")
	if err != nil {
		t.Fatal(err)
	}
	base := m.Space.AllocOnNode(4096, 0)
	order := make([]int, 0, 8)
	_, err = m.Run(func(e prog.Env) {
		// Stagger arrival with different amounts of work.
		e.Compute(100 * (e.ID() + 1))
		e.Read(base + uint64(e.ID()*128))
		order = append(order, e.ID())
		e.Barrier()
		order = append(order, 100+e.ID())
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 8 {
		t.Fatalf("order has %d entries", len(order))
	}
	// All pre-barrier entries precede all post-barrier entries.
	for i, v := range order {
		if i < 4 && v >= 100 {
			t.Fatalf("barrier leaked: %v", order)
		}
		if i >= 4 && v < 100 {
			t.Fatalf("barrier leaked: %v", order)
		}
	}
}

func TestLockMutualExclusionAndTraffic(t *testing.T) {
	cfg := testCfg(2, 2)
	m, err := New(cfg, "locks")
	if err != nil {
		t.Fatal(err)
	}
	inside := 0
	maxInside := 0
	total := 0
	_, err = m.Run(func(e prog.Env) {
		for i := 0; i < 5; i++ {
			e.Lock(7)
			inside++
			if inside > maxInside {
				maxInside = inside
			}
			total++
			e.Compute(50)
			e.Read(uint64(4096)) // some work inside the section
			inside--
			e.Unlock(7)
			e.Compute(20)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if maxInside != 1 {
		t.Fatalf("mutual exclusion violated: %d inside", maxInside)
	}
	if total != 20 {
		t.Fatalf("critical sections executed %d times, want 20", total)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() *stats.Run {
		cfg := testCfg(4, 2)
		m, err := New(cfg, "det")
		if err != nil {
			t.Fatal(err)
		}
		base := m.Space.Alloc(64 * 1024)
		r, err := m.Run(func(e prog.Env) {
			for i := 0; i < 100; i++ {
				a := base + uint64(((i*37+e.ID()*13)%512)*128)
				if (i+e.ID())%3 == 0 {
					e.Write(a)
				} else {
					e.Read(a)
				}
				e.Compute(10)
			}
			e.Barrier()
		})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if a.ExecTime != b.ExecTime {
		t.Fatalf("nondeterministic: %d vs %d", a.ExecTime, b.ExecTime)
	}
	if a.TotalArrivals() != b.TotalArrivals() {
		t.Fatalf("nondeterministic arrivals: %d vs %d", a.TotalArrivals(), b.TotalArrivals())
	}
}

// sharedStress drives all processors over a shared region with mixed reads
// and writes; used to shake out protocol races across architectures.
func sharedStress(base uint64, iters int) func(prog.Env) {
	return func(e prog.Env) {
		for i := 0; i < iters; i++ {
			a := base + uint64(((i*17+e.ID()*29)%256)*128)
			switch (i + e.ID()) % 4 {
			case 0, 1:
				e.Read(a)
			case 2:
				e.Write(a)
			case 3:
				e.Read(a + 64)
			}
			if i%32 == 31 {
				e.Barrier()
			}
		}
		e.Barrier()
	}
}

func TestAllArchitecturesRunStress(t *testing.T) {
	var hwcTime, ppcTime int64
	for _, arch := range config.Architectures {
		cfg := testCfg(4, 2)
		cfg, err := cfg.WithArch(arch)
		if err != nil {
			t.Fatal(err)
		}
		m, err := New(cfg, "stress")
		if err != nil {
			t.Fatal(err)
		}
		base := m.Space.Alloc(64 * 1024)
		r, err := m.Run(sharedStress(base, 200))
		if err != nil {
			t.Fatalf("%s: %v", arch, err)
		}
		t.Logf("%s: exec=%d arrivals=%d util=%.1f%%", arch, r.ExecTime,
			r.TotalArrivals(), 100*r.AvgUtilization(-1))
		switch arch {
		case "HWC":
			hwcTime = int64(r.ExecTime)
		case "PPC":
			ppcTime = int64(r.ExecTime)
		}
	}
	if ppcTime <= hwcTime {
		t.Errorf("PPC (%d) should be slower than HWC (%d) under load", ppcTime, hwcTime)
	}
}

func TestTwoEngineSplitUsesBothEngines(t *testing.T) {
	cfg := testCfg(4, 2)
	cfg.TwoEngines = true
	m, err := New(cfg, "split")
	if err != nil {
		t.Fatal(err)
	}
	base := m.Space.Alloc(64 * 1024)
	r, err := m.Run(sharedStress(base, 200))
	if err != nil {
		t.Fatal(err)
	}
	var lpe, rpe uint64
	for i := range r.Controllers {
		lpe += r.Controllers[i].Engines[0].Dispatches
		rpe += r.Controllers[i].Engines[1].Dispatches
	}
	if lpe == 0 || rpe == 0 {
		t.Fatalf("engine dispatches LPE=%d RPE=%d; both should be used", lpe, rpe)
	}
	// The paper's Table 7: most requests go to the RPE (53-64%).
	share := float64(rpe) / float64(lpe+rpe)
	t.Logf("RPE share = %.1f%%", 100*share)
	if share < 0.4 {
		t.Errorf("RPE share %.2f unexpectedly low", share)
	}
}

func TestFirstTouchPlacement(t *testing.T) {
	cfg := testCfg(2, 1)
	cfg.Placement = config.PlaceFirstTouch
	m, err := New(cfg, "ft")
	if err != nil {
		t.Fatal(err)
	}
	base := m.Space.Alloc(2 * 4096)
	_, err = m.Run(func(e prog.Env) {
		// Each processor touches its own page first.
		e.Read(base + uint64(e.Node()*4096))
		e.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if h := m.Space.Home(base); h != 0 {
		t.Errorf("page 0 homed on %d, want 0", h)
	}
	if h := m.Space.Home(base + 4096); h != 1 {
		t.Errorf("page 1 homed on %d, want 1", h)
	}
}

func TestFourEngineRegionSplit(t *testing.T) {
	cfg := testCfg(4, 2)
	cfg.Engine = config.PPC
	cfg.NumEngines = 4
	cfg.Split = config.SplitRegion
	m, err := New(cfg, "4ppc")
	if err != nil {
		t.Fatal(err)
	}
	base := m.Space.Alloc(64 * 1024)
	r, err := m.Run(sharedStress(base, 200))
	if err != nil {
		t.Fatal(err)
	}
	if r.Arch != "4PPC" {
		t.Errorf("arch name = %s, want 4PPC", r.Arch)
	}
	// All four engines must see work.
	for e := 0; e < 4; e++ {
		var disp uint64
		for i := range r.Controllers {
			disp += r.Controllers[i].Engines[e].Dispatches
		}
		if disp == 0 {
			t.Errorf("engine %d never dispatched", e)
		}
	}
}

func TestPPCABetweenHWCAndPPC(t *testing.T) {
	times := map[string]int64{}
	for _, arch := range []string{"HWC", "PPCA", "PPC"} {
		cfg := testCfg(4, 2)
		cfg, err := cfg.WithArch(arch)
		if err != nil {
			t.Fatal(err)
		}
		m, err := New(cfg, "kind")
		if err != nil {
			t.Fatal(err)
		}
		base := m.Space.Alloc(64 * 1024)
		r, err := m.Run(sharedStress(base, 200))
		if err != nil {
			t.Fatal(err)
		}
		times[arch] = int64(r.ExecTime)
	}
	if !(times["HWC"] <= times["PPCA"] && times["PPCA"] <= times["PPC"]) {
		t.Errorf("engine-kind ordering: HWC=%d PPCA=%d PPC=%d", times["HWC"], times["PPCA"], times["PPC"])
	}
}

func TestMeshTopologyEndToEnd(t *testing.T) {
	var xbar, mesh int64
	for _, topo := range []config.Topology{config.TopoCrossbar, config.TopoMesh2D} {
		cfg := testCfg(4, 2)
		cfg.Engine = config.PPC
		cfg.Topology = topo
		m, err := New(cfg, "mesh")
		if err != nil {
			t.Fatal(err)
		}
		base := m.Space.Alloc(64 * 1024)
		r, err := m.Run(sharedStress(base, 150))
		if err != nil {
			t.Fatal(err)
		}
		if topo == config.TopoCrossbar {
			xbar = int64(r.ExecTime)
		} else {
			mesh = int64(r.ExecTime)
		}
	}
	if xbar == 0 || mesh == 0 {
		t.Fatal("runs missing")
	}
	t.Logf("crossbar=%d mesh=%d (+%.0f%%)", xbar, mesh, 100*float64(mesh-xbar)/float64(xbar))
}

func TestMissLatencyHistogramCollected(t *testing.T) {
	cfg := testCfg(2, 1)
	m, err := New(cfg, "hist")
	if err != nil {
		t.Fatal(err)
	}
	base := m.Space.AllocOnNode(4096, 0)
	r, err := m.Run(func(e prog.Env) {
		if e.ID() == 1 {
			for i := 0; i < 8; i++ {
				e.Read(base + uint64(i*128))
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.MissLatency.Count != 8 {
		t.Fatalf("miss histogram count = %d, want 8", r.MissLatency.Count)
	}
	// Remote clean reads take ~150 cycles plus fill.
	if m := r.MissLatency.Mean(); m < 100 || m > 400 {
		t.Fatalf("mean miss latency %v out of range", m)
	}
}

func TestHandlerBusyCountersCollected(t *testing.T) {
	cfg := testCfg(2, 1)
	m, err := New(cfg, "hbusy")
	if err != nil {
		t.Fatal(err)
	}
	base := m.Space.AllocOnNode(4096, 0)
	r, err := m.Run(func(e prog.Env) {
		if e.ID() == 1 {
			e.Read(base)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Counter("handler:remote read to home (clean)") != 1 {
		t.Fatal("handler count missing")
	}
	if r.Counter("handlerBusy:remote read to home (clean)") == 0 {
		t.Fatal("handler busy-time counter missing")
	}
}
