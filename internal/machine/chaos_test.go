package machine

import (
	"strings"
	"testing"

	"ccnuma/internal/fault"
	"ccnuma/internal/prog"
)

// TestStallClassification pins the classifier's decision tree on
// representative counter windows.
func TestStallClassification(t *testing.T) {
	cases := []struct {
		name string
		rep  StallReport
		want StallClass
	}{
		{"deadlock: nothing ran at all",
			StallReport{}, ClassDeadlock},
		{"nack storm: NACKs rival dispatches",
			StallReport{EventsInWindow: watchdogChunk, DispatchesInWindow: 1000,
				NacksInWindow: 900, RetriesInWindow: 800}, ClassNackStorm},
		{"livelock: events spin at one instant without NACK dominance",
			StallReport{EventsInWindow: watchdogChunk, DispatchesInWindow: 500,
				TimeAdvanced: 0}, ClassLivelock},
		{"starvation: time and work advance but procs are stuck",
			StallReport{EventsInWindow: watchdogChunk, DispatchesInWindow: 5000,
				NacksInWindow: 10, TimeAdvanced: 100, UnfinishedProcs: 2, TotalProcs: 4},
			ClassStarvation},
	}
	for _, tc := range cases {
		if got := tc.rep.Classify(); got != tc.want {
			t.Errorf("%s: Classify() = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestStallReportString pins that the report renders its class and the
// progress counters the diagnosis rests on.
func TestStallReportString(t *testing.T) {
	rep := StallReport{
		At: 1234, EventsInWindow: 7, TotalProcs: 4, UnfinishedProcs: 1,
		DispatchesInWindow: 42, NacksInWindow: 41, RetriesInWindow: 3,
	}
	s := rep.String()
	for _, want := range []string{"class=nack-storm", "t=1234", "dispatches=42", "nacks=41", "procs=3/4"} {
		if !strings.Contains(s, want) {
			t.Errorf("StallReport.String() = %q, missing %q", s, want)
		}
	}
}

// TestWatchdogSnapshotOnLivelock drives the real watchdog: an event that
// perpetually reschedules itself at the same simulated instant must trip
// the chunk watchdog, and the error must carry the classified stall report
// and the machine snapshot.
func TestWatchdogSnapshotOnLivelock(t *testing.T) {
	if testing.Short() {
		t.Skip("executes a full watchdog chunk of events")
	}
	m, err := New(testCfg(2, 1), "watchdog-test")
	if err != nil {
		t.Fatal(err)
	}
	spin := 0
	var loop func()
	loop = func() {
		spin++
		m.Eng.After(0, loop)
	}
	m.Eng.After(10, loop)
	err = m.runEngine()
	if err == nil {
		t.Fatal("runEngine returned nil for a same-cycle event loop")
	}
	msg := err.Error()
	for _, want := range []string{"watchdog", "simulated time stalled", "class=", "pendingEvents="} {
		if !strings.Contains(msg, want) {
			t.Errorf("watchdog error missing %q:\n%s", want, msg)
		}
	}
	if !strings.Contains(msg, "t=10") {
		t.Errorf("watchdog error does not pin the stalled instant:\n%s", msg)
	}
}

// TestInjectFaultsAppliesSchedule runs a small kernel under a seeded
// schedule on the robust configuration and checks that the injector
// accounts for applied faults and the run still completes correctly.
func TestInjectFaultsAppliesSchedule(t *testing.T) {
	cfg := testCfg(2, 2).WithRobustness()
	m, err := New(cfg, "chaos-test")
	if err != nil {
		t.Fatal(err)
	}
	sch := fault.Generate(7, fault.Params{
		Events:   12,
		Horizon:  50_000,
		Messages: 400,
		Nodes:    cfg.Nodes,
		Engines:  cfg.EngineCount(),
	})
	inj := m.InjectFaults(sch)
	base := m.Space.AllocOnNode(64*cfg.LineSize, 0)
	r, err := m.Run(func(e prog.Env) {
		// Every processor walks the shared region homed on node 0, so
		// remote misses, interventions, and write-backs all flow while
		// faults land on them.
		for i := 0; i < 64; i++ {
			a := base + uint64(i*cfg.LineSize)
			e.Read(a)
			e.Write(a)
		}
		e.Barrier()
	})
	if err != nil {
		t.Fatalf("chaos run failed: %v\nschedule: %s", err, sch)
	}
	if r.ExecTime <= 0 {
		t.Fatal("no simulated time elapsed")
	}
	if inj.MsgCount() == 0 {
		t.Error("fault hook saw no messages; injector not wired")
	}
	t.Logf("schedule %s: %d msgs seen, %d faults applied, exec=%d cycles",
		sch, inj.MsgCount(), inj.AppliedTotal(), r.ExecTime)
}

// TestScheduleDeterminism pins seed reproducibility: identical seeds yield
// identical schedules, different seeds differ.
func TestScheduleDeterminism(t *testing.T) {
	p := fault.Params{Events: 16, Horizon: 100_000, Messages: 1000, Nodes: 4, Engines: 2}
	a, b := fault.Generate(42, p), fault.Generate(42, p)
	if a.String() != b.String() {
		t.Errorf("same seed, different schedules:\n%s\n%s", a, b)
	}
	if c := fault.Generate(43, p); c.String() == a.String() {
		t.Errorf("different seeds produced identical schedules: %s", a)
	}
}
