package machine

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"ccnuma/internal/core"
	"ccnuma/internal/obs"
)

func TestClassifyFailureRetryBudget(t *testing.T) {
	rbe := &core.RetryBudgetError{Node: 3, Line: 0x1f80, Attempts: 26, LastEvent: "NACKed", At: 12345}
	doc := ClassifyFailure(rbe)
	if doc.Class != obs.FailureRetryBudget {
		t.Fatalf("class = %q, want %q", doc.Class, obs.FailureRetryBudget)
	}
	if !doc.Pathological() {
		t.Fatal("retry-budget exhaustion must classify as pathological")
	}
	if doc.Node != 3 || doc.Line != "0x1f80" || doc.Attempts != 26 {
		t.Fatalf("location not carried over: %+v", doc)
	}
	if !strings.Contains(doc.Message, "exhausted its retry budget") {
		t.Fatalf("message lost the diagnostic: %q", doc.Message)
	}
}

func TestClassifyFailureWrappedError(t *testing.T) {
	rbe := &core.RetryBudgetError{Node: 1, Line: 0x40, Attempts: 9, LastEvent: "timed out", At: 7}
	wrapped := fmt.Errorf("schedule 4: %w", rbe)
	doc := ClassifyFailure(wrapped)
	if doc.Class != obs.FailureRetryBudget {
		t.Fatalf("wrapped retry-budget error classified as %q", doc.Class)
	}
}

func TestClassifyFailureUnclassified(t *testing.T) {
	if doc := ClassifyFailure("kaboom"); doc.Class != obs.FailurePanic || doc.Pathological() {
		t.Fatalf("raw panic value: got %+v", doc)
	}
	if doc := ClassifyFailure(errors.New("disk on fire")); doc.Class != obs.FailureError || doc.Pathological() {
		t.Fatalf("plain error: got %+v", doc)
	}
	if doc := ClassifyFailure(nil); doc != nil {
		t.Fatalf("nil in, got %+v", doc)
	}
}
