package machine

import (
	"errors"
	"fmt"

	"ccnuma/internal/core"
	"ccnuma/internal/obs"
)

// ClassifyFailure turns a recovered panic value or returned error from a
// simulation run into its machine-readable ccnuma-run/v1 failure document.
// It is the single definition of which failures are pathological (the
// scenario deterministically cannot complete — the protocol's fail-stop
// fired) versus unclassified, shared by every harness that survives a
// failing run: the chaos campaign records the document in its artifact,
// and ccserved consults Pathological() before spending cell retries.
func ClassifyFailure(p interface{}) *obs.FailureDoc {
	if p == nil {
		return nil
	}
	switch v := p.(type) {
	case *core.RetryBudgetError:
		return &obs.FailureDoc{
			Class:    obs.FailureRetryBudget,
			Message:  v.Error(),
			Node:     v.Node,
			Line:     fmt.Sprintf("%#x", v.Line),
			Attempts: v.Attempts,
		}
	case error:
		// An error chain may still carry the typed fail-stop (e.g. wrapped
		// by a harness before rethrowing).
		var rbe *core.RetryBudgetError
		if errors.As(v, &rbe) {
			return ClassifyFailure(rbe)
		}
		return &obs.FailureDoc{Class: obs.FailureError, Message: v.Error()}
	default:
		return &obs.FailureDoc{Class: obs.FailurePanic, Message: fmt.Sprint(v)}
	}
}
