package interconnect

import (
	"fmt"

	"ccnuma/internal/sim"
)

// mesh implements the 2-D mesh topology: nodes arranged in a rows×cols
// grid, dimension-order (X then Y) routing, and one sim.Resource per
// directed link so messages contend hop by hop.
type mesh struct {
	rows, cols int
	// links[from][to] for adjacent nodes.
	links map[[2]int]*sim.Resource
}

// newMesh factors n into the squarest rows×cols grid (n must not be
// prime beyond 2 — power-of-two node counts always factor).
func newMesh(eng *sim.Engine, n int) *mesh {
	rows := 1
	for r := 1; r*r <= n; r++ {
		if n%r == 0 {
			rows = r
		}
	}
	m := &mesh{rows: rows, cols: n / rows, links: make(map[[2]int]*sim.Resource)}
	link := func(a, b int) {
		key := [2]int{a, b}
		if m.links[key] == nil {
			m.links[key] = sim.NewResource(eng, fmt.Sprintf("link-%d-%d", a, b))
		}
	}
	for r := 0; r < m.rows; r++ {
		for c := 0; c < m.cols; c++ {
			id := r*m.cols + c
			if c+1 < m.cols {
				link(id, id+1)
				link(id+1, id)
			}
			if r+1 < m.rows {
				link(id, id+m.cols)
				link(id+m.cols, id)
			}
		}
	}
	return m
}

// route returns the sequence of directed links from src to dst under
// dimension-order routing (X first, then Y).
func (m *mesh) route(src, dst int) [][2]int {
	var hops [][2]int
	r, c := src/m.cols, src%m.cols
	dr, dc := dst/m.cols, dst%m.cols
	for c != dc {
		next := c + 1
		if dc < c {
			next = c - 1
		}
		hops = append(hops, [2]int{r*m.cols + c, r*m.cols + next})
		c = next
	}
	for r != dr {
		next := r + 1
		if dr < r {
			next = r - 1
		}
		hops = append(hops, [2]int{r*m.cols + c, next*m.cols + c})
		r = next
	}
	return hops
}

// Hops returns the Manhattan distance between two nodes.
func (m *mesh) Hops(src, dst int) int { return len(m.route(src, dst)) }
