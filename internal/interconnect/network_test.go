package interconnect

import (
	"testing"

	"ccnuma/internal/config"
	"ccnuma/internal/sim"
)

func setup(t *testing.T) (*sim.Engine, *Network, *config.Config) {
	t.Helper()
	cfg := config.Base()
	eng := sim.NewEngine()
	net := New(eng, &cfg, nil)
	return eng, net, &cfg
}

func TestControlMessageLatency(t *testing.T) {
	eng, net, cfg := setup(t)
	var deliveredAt sim.Time = -1
	var deliveredSrc int
	var deliveredPayload interface{}
	net.Attach(1, func(src int, p interface{}) {
		deliveredAt = eng.Now()
		deliveredSrc = src
		deliveredPayload = p
	})
	eng.At(0, func() { net.Send(0, 1, cfg.ControlFlits(), "hello") })
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// Control message: 1 flit x 2 cycles serialization + 14 latency = 16.
	if deliveredAt != 16 {
		t.Fatalf("delivered at %d, want 16", deliveredAt)
	}
	if deliveredSrc != 0 || deliveredPayload != "hello" {
		t.Fatalf("delivery metadata wrong: src=%d payload=%v", deliveredSrc, deliveredPayload)
	}
}

func TestDataMessageLatency(t *testing.T) {
	eng, net, cfg := setup(t)
	var at sim.Time = -1
	net.Attach(2, func(int, interface{}) { at = eng.Now() })
	eng.At(0, func() { net.Send(0, 2, cfg.LineDataFlits(), nil) })
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// 5 flits x 2 + 14 = 24.
	if at != 24 {
		t.Fatalf("data message delivered at %d, want 24", at)
	}
}

func TestOutputPortSerializes(t *testing.T) {
	eng, net, _ := setup(t)
	var times []sim.Time
	net.Attach(1, func(int, interface{}) { times = append(times, eng.Now()) })
	net.Attach(2, func(int, interface{}) { times = append(times, eng.Now()) })
	eng.At(0, func() {
		net.Send(0, 1, 5, nil) // occupies out port [0,10)
		net.Send(0, 2, 1, nil) // must wait until 10
	})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(times) != 2 {
		t.Fatalf("delivered %d messages", len(times))
	}
	// First: 10 + 14 = 24. Second: starts at 10, 2 + 14 = 26.
	if times[0] != 24 || times[1] != 26 {
		t.Fatalf("delivery times %v, want [24 26]", times)
	}
}

func TestInputPortContention(t *testing.T) {
	eng, net, _ := setup(t)
	var times []sim.Time
	net.Attach(3, func(src int, _ interface{}) { times = append(times, eng.Now()) })
	eng.At(0, func() {
		net.Send(0, 3, 5, nil) // arrives head at 14, drains [14,24)
		net.Send(1, 3, 5, nil) // head also at 14, must queue: drains [24,34)
	})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(times) != 2 || times[0] != 24 || times[1] != 34 {
		t.Fatalf("delivery times %v, want [24 34]", times)
	}
}

func TestSlowNetworkParameter(t *testing.T) {
	cfg := config.Base()
	cfg.NetLatency = 200 // 1 microsecond
	eng := sim.NewEngine()
	net := New(eng, &cfg, nil)
	var at sim.Time
	net.Attach(1, func(int, interface{}) { at = eng.Now() })
	eng.At(0, func() { net.Send(0, 1, 1, nil) })
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 202 {
		t.Fatalf("slow-net delivery at %d, want 202", at)
	}
}

func TestCounters(t *testing.T) {
	eng, net, _ := setup(t)
	net.Attach(1, func(int, interface{}) {})
	eng.At(0, func() {
		net.Send(0, 1, 5, nil)
		net.Send(0, 1, 1, nil)
	})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if net.Messages() != 2 || net.Flits() != 6 {
		t.Fatalf("messages=%d flits=%d", net.Messages(), net.Flits())
	}
	if net.OutPort(0).Busy() != 12 {
		t.Fatalf("out port busy = %d, want 12", net.OutPort(0).Busy())
	}
	if net.InPort(1).Grants() != 2 {
		t.Fatalf("in port grants = %d", net.InPort(1).Grants())
	}
}

func TestNoSinkPanics(t *testing.T) {
	eng, net, _ := setup(t)
	eng.At(0, func() { net.Send(0, 1, 1, nil) })
	defer func() {
		if recover() == nil {
			t.Error("delivery without sink did not panic")
		}
	}()
	_, _ = eng.Run()
}

func TestDoubleAttachPanics(t *testing.T) {
	_, net, _ := setup(t)
	net.Attach(0, func(int, interface{}) {})
	defer func() {
		if recover() == nil {
			t.Error("double attach did not panic")
		}
	}()
	net.Attach(0, func(int, interface{}) {})
}

func TestMeshGeometry(t *testing.T) {
	cfg := config.Base()
	cfg.Topology = config.TopoMesh2D
	eng := sim.NewEngine()
	net := New(eng, &cfg, nil) // 16 nodes -> 4x4 mesh
	// Corner to corner: Manhattan distance 6.
	if got := net.Hops(0, 15); got != 6 {
		t.Fatalf("hops(0,15) = %d, want 6", got)
	}
	if got := net.Hops(0, 1); got != 1 {
		t.Fatalf("hops(0,1) = %d, want 1", got)
	}
	if got := net.Hops(5, 5); got != 0 {
		t.Fatalf("hops(5,5) = %d, want 0", got)
	}
}

func TestMeshLatencyScalesWithDistance(t *testing.T) {
	cfg := config.Base()
	cfg.Topology = config.TopoMesh2D
	eng := sim.NewEngine()
	net := New(eng, &cfg, nil)
	var near, far sim.Time
	net.Attach(1, func(int, interface{}) { near = eng.Now() })
	net.Attach(15, func(int, interface{}) { far = eng.Now() })
	eng.At(0, func() {
		net.Send(0, 1, 1, nil)  // 1 hop
		net.Send(0, 15, 1, nil) // 6 hops
	})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if near == 0 || far == 0 {
		t.Fatal("messages not delivered")
	}
	// Each extra hop costs at least HopLatency + serialization.
	if far-near < 5*(cfg.NetHopLatency) {
		t.Fatalf("distance scaling too weak: near=%d far=%d", near, far)
	}
}

func TestMeshLinkContention(t *testing.T) {
	cfg := config.Base()
	cfg.Nodes = 4 // 2x2 mesh
	cfg.Topology = config.TopoMesh2D
	eng := sim.NewEngine()
	net := New(eng, &cfg, nil)
	var times []sim.Time
	net.Attach(1, func(int, interface{}) { times = append(times, eng.Now()) })
	eng.At(0, func() {
		// Two messages over the same 0->1 link: the second queues.
		net.Send(0, 1, 5, nil)
		net.Send(0, 1, 5, nil)
	})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(times) != 2 {
		t.Fatalf("delivered %d", len(times))
	}
	if times[1]-times[0] < 10 { // serialization of 5 flits x 2 cycles
		t.Fatalf("no link contention visible: %v", times)
	}
}

func TestMeshEndToEndMachine(t *testing.T) {
	// Covered more fully in machine tests; here just assert crossbar and
	// mesh deliver the same message count for one remote miss.
	for _, topo := range []config.Topology{config.TopoCrossbar, config.TopoMesh2D} {
		cfg := config.Base()
		cfg.Nodes = 4
		cfg.Topology = topo
		eng := sim.NewEngine()
		net := New(eng, &cfg, nil)
		got := 0
		net.Attach(3, func(int, interface{}) { got++ })
		eng.At(0, func() { net.Send(0, 3, cfg.LineDataFlits(), nil) })
		if _, err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		if got != 1 {
			t.Fatalf("%v: delivered %d", topo, got)
		}
	}
}

// TestReliableLinkPreservesPairOrder pins the go-back-N contract: when a
// frame on a (src, dst) pair is dropped or delayed under NetReliable, later
// frames on the same pair must queue behind its recovery window instead of
// overtaking it. The coherence protocol depends on this (an ownership grant
// must land before a subsequent intervention).
func TestReliableLinkPreservesPairOrder(t *testing.T) {
	for _, tc := range []struct {
		name  string
		fault Decision
	}{
		{"drop", Decision{Drop: true}},
		{"corrupt", Decision{Replace: "mangled"}},
		{"delay", Decision{Delay: 300}},
	} {
		eng, net, cfg := setup(t)
		cfg.NetReliable = true
		cfg.NetRetryDelay = 100
		var order []interface{}
		net.Attach(1, func(_ int, p interface{}) { order = append(order, p) })
		hit := false
		net.Fault = func(src, dst int, payload interface{}) Decision {
			if payload == "first" && !hit {
				hit = true
				return tc.fault
			}
			return Decision{}
		}
		eng.At(0, func() { net.Send(0, 1, 1, "first") })
		eng.At(1, func() { net.Send(0, 1, 1, "second") })
		if _, err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		if len(order) != 2 || order[0] != "first" || order[1] != "second" {
			t.Errorf("%s: delivery order %v, want [first second]", tc.name, order)
		}
		if net.InFlight() != 0 {
			t.Errorf("%s: %d frames still in flight after drain", tc.name, net.InFlight())
		}
	}
}

// TestReliableLinkRejectsDuplicates pins that a duplicated frame's copy
// burns bandwidth but never reaches the protocol under NetReliable.
func TestReliableLinkRejectsDuplicates(t *testing.T) {
	eng, net, cfg := setup(t)
	cfg.NetReliable = true
	delivered := 0
	net.Attach(1, func(int, interface{}) { delivered++ })
	net.Fault = func(int, int, interface{}) Decision { return Decision{Duplicate: true} }
	eng.At(0, func() { net.Send(0, 1, 1, "msg") })
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered != 1 {
		t.Errorf("delivered %d copies, want 1", delivered)
	}
	if net.Link().Discards != 1 {
		t.Errorf("Discards = %d, want 1", net.Link().Discards)
	}
}
