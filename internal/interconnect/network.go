// Package interconnect models the CC-NUMA system's point-to-point network:
// a fast switch with 32-byte-wide links, a fixed point-to-point latency
// (70 ns in the base system), and external point contention modelled as
// FIFO queueing on each node's network-interface input and output ports.
// Payloads are opaque to the network; the coherence protocol lives above.
package interconnect

import (
	"fmt"
	"sync/atomic"

	"ccnuma/internal/config"
	"ccnuma/internal/obs"
	"ccnuma/internal/sim"
)

// Handler receives a delivered message on the destination node.
type Handler func(src int, payload interface{})

// Decision is the action the fault layer takes on one message entering the
// network. The zero value means "deliver normally".
type Decision struct {
	// Drop loses the message on the link. With Config.NetReliable the link
	// layer retransmits the original after NetRetryDelay; without it the
	// loss is permanent.
	Drop bool
	// Duplicate injects a second copy of the message. With NetReliable the
	// receiving NI discards the copy (sequence-number dedup) after it has
	// consumed link bandwidth; without it the copy reaches the protocol.
	Duplicate bool
	// Delay adds cycles to the message's switch traversal.
	Delay sim.Time
	// Replace, when non-nil, substitutes a corrupted payload. With
	// NetReliable the corrupted frame fails the receiver's CRC, is
	// discarded, and the original is retransmitted; without it the
	// corrupted payload is delivered as-is.
	Replace interface{}
}

// FaultHook inspects every message entering the network and decides its
// fate. It sees originals only — link-level retransmissions and
// fault-created duplicate copies are not re-faulted — and must be
// deterministic (cclint's sim-rand check applies to implementations in
// simulation packages).
type FaultHook func(src, dst int, payload interface{}) Decision

// LinkStats aggregates the link layer's fault and recovery activity.
type LinkStats struct {
	Drops          uint64 // messages lost on the link (injected)
	Duplicates     uint64 // duplicate copies injected
	Corrupts       uint64 // payload corruptions injected
	DelaysInjected uint64 // messages given extra traversal delay
	Retransmits    uint64 // link-level retransmissions (NetReliable)
	Discards       uint64 // frames rejected at the receiving NI (CRC/dedup)
	Overflows      uint64 // sends parked on a full NI output buffer
	Brownouts      uint64 // injected NI port outages
}

// discardFrame wraps a payload that crosses the wire but is rejected by the
// receiving NI (a corrupted frame failing its CRC, or a duplicate caught by
// sequence-number dedup): it consumes bandwidth, then vanishes.
type discardFrame struct {
	payload interface{}
}

// frame is a send parked behind a full NI output buffer or a link-level
// recovery window.
type frame struct {
	dst     int
	flits   int
	payload interface{}
	delay   sim.Time
}

// pairHold is a go-back-N recovery window on one (src, dst) pair: the
// frames queued here re-enter the send path, in order, when the window
// closes. The coherence protocol relies on per-pair FIFO delivery (an
// ownership grant must reach the new owner before a later intervention),
// and the fault-free network provides it via its port FIFOs — so the
// reliable link layer must preserve it too: a retransmitted or delayed
// frame holds everything behind it on the same pair instead of being
// overtaken.
type pairHold struct {
	frames []frame
}

// Network connects the nodes' network interfaces.
type Network struct {
	eng *sim.Engine
	// engs, when non-nil, maps each node to the shard engine that owns it
	// (set by Shard). The source side of a send — output port, overflow
	// buffer, go-back-N holds — runs entirely on the source node's engine;
	// the destination side crosses shards through DeferTo, so the input
	// port admits requests in the reconstructed serial order.
	engs  []*sim.Engine
	cfg   *config.Config
	tr    *obs.Tracer     // nil when tracing is disabled
	out   []*sim.Resource // per-node NI output ports
	in    []*sim.Resource // per-node NI input ports
	sinks []Handler
	mesh  *mesh // non-nil under TopoMesh2D

	// Fault, when non-nil, is consulted for every original message entering
	// the network (the internal/fault injector plugs in here; verify's
	// detection tests install targeted hooks directly).
	Fault FaultHook

	// msgs/flits/inFlight are updated atomically: when sharded, sends on
	// different source engines race on the totals (the sums are still
	// deterministic; only the interleaving is not).
	msgs  uint64
	flits uint64
	// inFlight counts messages accepted by Send whose sink has not fired
	// yet (the ccverify model checker uses it to detect quiescence and to
	// bound its in-flight message multiset).
	inFlight int64

	link  LinkStats
	spans *obs.SpanTracker // nil when attribution is disabled
	// outQueued/outWait implement the finite NI output buffer: messages
	// beyond Config.NIPortDepth park in outWait until the port drains.
	// Only maintained when the depth knob is on, so fault-free runs
	// schedule an identical event stream.
	outQueued []int
	outWait   [][]frame
	// hold[src] carries the active go-back-N recovery windows keyed by
	// destination (NetReliable only; never populated on a fault-free run).
	// Per-source maps keep all mutation on the source node's engine.
	hold []map[int]*pairHold
}

// New creates the network for the configured node count. tr may be nil.
func New(eng *sim.Engine, cfg *config.Config, tr *obs.Tracer) *Network {
	n := &Network{
		eng:       eng,
		cfg:       cfg,
		tr:        tr,
		out:       make([]*sim.Resource, cfg.Nodes),
		in:        make([]*sim.Resource, cfg.Nodes),
		sinks:     make([]Handler, cfg.Nodes),
		outQueued: make([]int, cfg.Nodes),
		outWait:   make([][]frame, cfg.Nodes),
		hold:      make([]map[int]*pairHold, cfg.Nodes),
	}
	for i := 0; i < cfg.Nodes; i++ {
		n.out[i] = sim.NewResource(eng, fmt.Sprintf("ni-out-%d", i))
		n.in[i] = sim.NewResource(eng, fmt.Sprintf("ni-in-%d", i))
		n.hold[i] = map[int]*pairHold{}
	}
	if cfg.Topology == config.TopoMesh2D {
		n.mesh = newMesh(eng, cfg.Nodes)
	}
	return n
}

// Shard rebinds each node's NI port resources to the shard engine that owns
// the node. Must be called before any traffic is sent. The mesh topology
// routes through per-hop links shared between nodes and cannot shard
// (config.Validate rejects the combination).
func (n *Network) Shard(engs []*sim.Engine) {
	if len(engs) != len(n.out) {
		panic(fmt.Sprintf("interconnect: Shard got %d engines for %d nodes", len(engs), len(n.out)))
	}
	if n.mesh != nil {
		panic("interconnect: mesh topology cannot shard")
	}
	n.engs = engs
	for i := range n.out {
		n.out[i] = sim.NewResource(engs[i], fmt.Sprintf("ni-out-%d", i))
		n.in[i] = sim.NewResource(engs[i], fmt.Sprintf("ni-in-%d", i))
	}
}

// engOf returns the engine that owns a node's NI.
func (n *Network) engOf(node int) *sim.Engine {
	if n.engs != nil {
		return n.engs[node]
	}
	return n.eng
}

func (n *Network) sharded() bool { return n.engs != nil }

// AttachSpans attaches the latency-attribution span tracker (nil keeps
// attribution disabled).
func (n *Network) AttachSpans(sp *obs.SpanTracker) { n.spans = sp }

// Hops returns the routing distance between two nodes (1 for the
// crossbar).
func (n *Network) Hops(src, dst int) int {
	if n.mesh == nil {
		return 1
	}
	return n.mesh.Hops(src, dst)
}

// Attach registers the message sink for a node. Every node must have a sink
// before traffic is sent to it.
func (n *Network) Attach(node int, h Handler) {
	if n.sinks[node] != nil {
		panic(fmt.Sprintf("interconnect: node %d already attached", node))
	}
	n.sinks[node] = h
}

// Send transmits a message of the given flit count from src to dst. The
// sender's output port is occupied for the serialization time; the head
// flit then traverses the switch with the configured point-to-point
// latency; the receiver's input port is occupied while the message drains
// into the destination NI; the sink fires when the last flit has arrived.
// Send returns immediately (the NI accepts the message into its send queue
// at the current cycle).
func (n *Network) Send(src, dst, flitCount int, payload interface{}) {
	if src < 0 || src >= len(n.out) || dst < 0 || dst >= len(n.in) {
		panic(fmt.Sprintf("interconnect: send %d->%d out of range", src, dst))
	}
	if flitCount <= 0 {
		flitCount = 1
	}
	if n.spans.Enabled() {
		txn, epoch := obs.DescribeSpan(payload)
		n.spans.SpanBegin(txn, obs.StageNIPort, epoch, n.engOf(src).Now())
	}
	if n.Fault == nil {
		n.enqueue(src, dst, flitCount, payload, 0)
		return
	}
	d := n.Fault(src, dst, payload)
	if d.Delay > 0 {
		atomic.AddUint64(&n.link.DelaysInjected, 1)
	}
	if d.Replace != nil {
		atomic.AddUint64(&n.link.Corrupts, 1)
		if n.cfg.NetReliable {
			// The mangled frame crosses the wire, fails the receiver's
			// CRC, and the sender's replay buffer re-sends the original.
			n.enqueue(src, dst, flitCount, &discardFrame{payload: d.Replace}, d.Delay)
			atomic.AddUint64(&n.link.Retransmits, 1)
			n.holdPair(src, dst, n.retryDelay(), frame{dst: dst, flits: flitCount, payload: payload})
			return
		}
		payload = d.Replace
	}
	if d.Drop {
		atomic.AddUint64(&n.link.Drops, 1)
		if n.cfg.NetReliable {
			atomic.AddUint64(&n.link.Retransmits, 1)
			n.holdPair(src, dst, n.retryDelay(), frame{dst: dst, flits: flitCount, payload: payload})
		}
		return
	}
	if d.Duplicate {
		atomic.AddUint64(&n.link.Duplicates, 1)
		copyPayload := payload
		if n.cfg.NetReliable {
			copyPayload = &discardFrame{payload: payload}
		}
		// The duplicate copy needs no ordering: the receiving NI rejects
		// it (reliable) or the protocol must tolerate it (raw).
		n.enqueue(src, dst, flitCount, copyPayload, 0)
	}
	if n.cfg.NetReliable {
		if d.Delay > 0 {
			// A delayed frame stalls its go-back-N window: later frames
			// on the pair queue behind it instead of overtaking.
			n.holdPair(src, dst, d.Delay, frame{dst: dst, flits: flitCount, payload: payload})
			return
		}
		if h := n.hold[src][dst]; h != nil {
			h.frames = append(h.frames, frame{dst: dst, flits: flitCount, payload: payload})
			return
		}
	}
	n.enqueue(src, dst, flitCount, payload, d.Delay)
}

// retryDelay is the link-level recovery latency (replay-buffer timeout).
func (n *Network) retryDelay() sim.Time {
	if d := n.cfg.NetRetryDelay; d > 0 {
		return d
	}
	return n.cfg.NetLatency
}

// holdPair opens (or joins) the pair's go-back-N recovery window: f and
// every subsequent original on the pair re-enter the send path, in order,
// when the window closes after delay.
func (n *Network) holdPair(src, dst int, delay sim.Time, f frame) {
	if h := n.hold[src][dst]; h != nil {
		// Already recovering this pair: the frame joins the replay queue
		// and rides the existing window.
		h.frames = append(h.frames, f)
		return
	}
	h := &pairHold{frames: []frame{f}}
	n.hold[src][dst] = h
	n.engOf(src).After(delay, func() {
		delete(n.hold[src], dst)
		for _, qf := range h.frames {
			n.enqueue(src, qf.dst, qf.flits, qf.payload, qf.delay)
		}
	})
}

// enqueue admits a message to the source NI's output buffer, parking it
// when the configured finite depth is exceeded (back-pressure).
func (n *Network) enqueue(src, dst, flitCount int, payload interface{}, delay sim.Time) {
	if n.cfg.NIPortDepth > 0 && n.outQueued[src] >= n.cfg.NIPortDepth {
		atomic.AddUint64(&n.link.Overflows, 1)
		n.outWait[src] = append(n.outWait[src], frame{dst: dst, flits: flitCount, payload: payload, delay: delay})
		return
	}
	n.transmit(src, dst, flitCount, payload, delay)
}

func (n *Network) transmit(src, dst, flitCount int, payload interface{}, delay sim.Time) {
	atomic.AddUint64(&n.msgs, 1)
	atomic.AddUint64(&n.flits, uint64(flitCount))
	atomic.AddInt64(&n.inFlight, 1)
	track := n.cfg.NIPortDepth > 0
	if track {
		n.outQueued[src]++
	}
	if n.tr != nil {
		name, line := obs.DescribePayload(payload)
		n.tr.NetSend(n.eng.Now(), src, dst, name, line, flitCount)
	}
	ser := sim.Time(flitCount) * n.cfg.NetFlitTime
	n.out[src].Acquire(ser, func(start sim.Time) {
		if n.spans.Enabled() {
			txn, epoch := obs.DescribeSpan(payload)
			n.spans.SpanEnd(txn, obs.StageNIPort, epoch, start)
			n.spans.SpanBegin(txn, obs.StageWire, epoch, start)
		}
		if track {
			n.engOf(src).At(start+ser, func() { n.portDrained(src) })
		}
		if n.mesh != nil && src != dst {
			n.sendMesh(src, dst, start+delay, ser, payload)
			return
		}
		headArrives := start + n.cfg.NetLatency + delay
		n.deliverAt(src, dst, headArrives, ser, payload)
	})
}

// portDrained frees one NI output-buffer slot and launches the oldest
// parked send, if any.
func (n *Network) portDrained(src int) {
	n.outQueued[src]--
	if len(n.outWait[src]) == 0 {
		return
	}
	f := n.outWait[src][0]
	n.outWait[src] = n.outWait[src][1:]
	n.transmit(src, f.dst, f.flits, f.payload, f.delay)
}

// Brownout takes a node's NI port out of service for dur cycles (fault
// injection): the port resource is occupied, so queued and future messages
// wait behind the outage exactly as behind a long serialization.
func (n *Network) Brownout(node int, out bool, dur sim.Time) {
	if node < 0 || node >= len(n.out) || dur <= 0 {
		return
	}
	atomic.AddUint64(&n.link.Brownouts, 1)
	r := n.in[node]
	if out {
		r = n.out[node]
	}
	if !out && n.sharded() {
		// Input-port admissions are serialized through the window drain in
		// reconstructed serial order; the outage must take its place in that
		// same order or the port's FIFO accumulation diverges from serial.
		// The nil grant schedules no event, so the drain's lookahead guard
		// never sees the below-horizon arrival.
		eng := n.engOf(node)
		at := eng.Now()
		eng.DeferTo(eng, func() { r.AcquireAt(at, dur, nil) })
		return
	}
	r.Acquire(dur, func(sim.Time) {})
}

// sendMesh chains the message across the mesh's links with dimension-order
// routing: each hop contends for its directed link, occupies it for the
// serialization time, and adds the per-hop router latency.
func (n *Network) sendMesh(src, dst int, start, ser sim.Time, payload interface{}) {
	hops := n.mesh.route(src, dst)
	var advance func(i int, t sim.Time)
	advance = func(i int, t sim.Time) {
		if i == len(hops) {
			n.deliverAt(src, dst, t, ser, payload)
			return
		}
		link := n.mesh.links[hops[i]]
		link.AcquireAt(t, ser, func(ls sim.Time) {
			advance(i+1, ls+n.cfg.NetHopLatency)
		})
	}
	advance(0, start)
}

// deliverAt drains the message into the destination NI beginning at
// headArrives and fires the sink when the last flit lands. When sharded,
// every delivery — even one whose destination shares the source's shard —
// crosses through DeferTo, so the input port admits requests in the
// reconstructed serial order (its FIFO accumulation depends on admission
// order, not just arrival times). headArrives is at least one network
// latency past the sending event, and the cluster lookahead never exceeds
// the network latency, so the drained admission lands at or past the
// window horizon.
func (n *Network) deliverAt(src, dst int, headArrives, ser sim.Time, payload interface{}) {
	if n.sharded() {
		n.engOf(src).DeferTo(n.engOf(dst), func() {
			n.admit(src, dst, headArrives, ser, payload)
		})
		return
	}
	n.admit(src, dst, headArrives, ser, payload)
}

func (n *Network) admit(src, dst int, headArrives, ser sim.Time, payload interface{}) {
	eng := n.engOf(dst)
	n.in[dst].AcquireAt(headArrives, ser, func(inStart sim.Time) {
		eng.At(inStart+ser, func() {
			atomic.AddInt64(&n.inFlight, -1)
			if _, rejected := payload.(*discardFrame); rejected {
				// Failed CRC or duplicate sequence number: the NI rejects
				// the frame after it has consumed wire bandwidth.
				atomic.AddUint64(&n.link.Discards, 1)
				return
			}
			sink := n.sinks[dst]
			if sink == nil {
				panic(fmt.Sprintf("interconnect: no sink on node %d", dst))
			}
			if n.tr != nil {
				name, line := obs.DescribePayload(payload)
				n.tr.NetRecv(eng.Now(), src, dst, name, line)
			}
			if n.spans.Enabled() {
				txn, epoch := obs.DescribeSpan(payload)
				n.spans.SpanEnd(txn, obs.StageWire, epoch, eng.Now())
			}
			sink(src, payload)
		})
	})
}

// Messages returns the number of messages sent so far.
func (n *Network) Messages() uint64 { return n.msgs }

// Link returns the link layer's fault/recovery counters.
func (n *Network) Link() LinkStats { return n.link }

// OutQueued returns the number of messages currently held in a node's NI
// output buffer (0 unless Config.NIPortDepth is on).
func (n *Network) OutQueued(node int) int {
	return n.outQueued[node] + len(n.outWait[node])
}

// InFlight returns the number of messages currently traversing the network
// (sent but not yet delivered to a sink).
func (n *Network) InFlight() int { return int(n.inFlight) }

// Flits returns the number of flits sent so far.
func (n *Network) Flits() uint64 { return n.flits }

// OutPort exposes a node's output-port resource (for utilization reports).
func (n *Network) OutPort(node int) *sim.Resource { return n.out[node] }

// InPort exposes a node's input-port resource.
func (n *Network) InPort(node int) *sim.Resource { return n.in[node] }
