// Package interconnect models the CC-NUMA system's point-to-point network:
// a fast switch with 32-byte-wide links, a fixed point-to-point latency
// (70 ns in the base system), and external point contention modelled as
// FIFO queueing on each node's network-interface input and output ports.
// Payloads are opaque to the network; the coherence protocol lives above.
package interconnect

import (
	"fmt"

	"ccnuma/internal/config"
	"ccnuma/internal/obs"
	"ccnuma/internal/sim"
)

// Handler receives a delivered message on the destination node.
type Handler func(src int, payload interface{})

// Decision is the action the fault layer takes on one message entering the
// network. The zero value means "deliver normally".
type Decision struct {
	// Drop loses the message on the link. With Config.NetReliable the link
	// layer retransmits the original after NetRetryDelay; without it the
	// loss is permanent.
	Drop bool
	// Duplicate injects a second copy of the message. With NetReliable the
	// receiving NI discards the copy (sequence-number dedup) after it has
	// consumed link bandwidth; without it the copy reaches the protocol.
	Duplicate bool
	// Delay adds cycles to the message's switch traversal.
	Delay sim.Time
	// Replace, when non-nil, substitutes a corrupted payload. With
	// NetReliable the corrupted frame fails the receiver's CRC, is
	// discarded, and the original is retransmitted; without it the
	// corrupted payload is delivered as-is.
	Replace interface{}
}

// FaultHook inspects every message entering the network and decides its
// fate. It sees originals only — link-level retransmissions and
// fault-created duplicate copies are not re-faulted — and must be
// deterministic (cclint's sim-rand check applies to implementations in
// simulation packages).
type FaultHook func(src, dst int, payload interface{}) Decision

// LinkStats aggregates the link layer's fault and recovery activity.
type LinkStats struct {
	Drops          uint64 // messages lost on the link (injected)
	Duplicates     uint64 // duplicate copies injected
	Corrupts       uint64 // payload corruptions injected
	DelaysInjected uint64 // messages given extra traversal delay
	Retransmits    uint64 // link-level retransmissions (NetReliable)
	Discards       uint64 // frames rejected at the receiving NI (CRC/dedup)
	Overflows      uint64 // sends parked on a full NI output buffer
	Brownouts      uint64 // injected NI port outages
}

// discardFrame wraps a payload that crosses the wire but is rejected by the
// receiving NI (a corrupted frame failing its CRC, or a duplicate caught by
// sequence-number dedup): it consumes bandwidth, then vanishes.
type discardFrame struct {
	payload interface{}
}

// frame is a send parked behind a full NI output buffer or a link-level
// recovery window.
type frame struct {
	dst     int
	flits   int
	payload interface{}
	delay   sim.Time
}

// pairKey identifies one directed (src, dst) link-layer connection.
type pairKey struct{ src, dst int }

// pairHold is a go-back-N recovery window on one (src, dst) pair: the
// frames queued here re-enter the send path, in order, when the window
// closes. The coherence protocol relies on per-pair FIFO delivery (an
// ownership grant must reach the new owner before a later intervention),
// and the fault-free network provides it via its port FIFOs — so the
// reliable link layer must preserve it too: a retransmitted or delayed
// frame holds everything behind it on the same pair instead of being
// overtaken.
type pairHold struct {
	frames []frame
}

// Network connects the nodes' network interfaces.
type Network struct {
	eng   *sim.Engine
	cfg   *config.Config
	tr    *obs.Tracer     // nil when tracing is disabled
	out   []*sim.Resource // per-node NI output ports
	in    []*sim.Resource // per-node NI input ports
	sinks []Handler
	mesh  *mesh // non-nil under TopoMesh2D

	// Fault, when non-nil, is consulted for every original message entering
	// the network (the internal/fault injector plugs in here; verify's
	// detection tests install targeted hooks directly).
	Fault FaultHook

	msgs  uint64
	flits uint64
	// inFlight counts messages accepted by Send whose sink has not fired
	// yet (the ccverify model checker uses it to detect quiescence and to
	// bound its in-flight message multiset).
	inFlight int

	link  LinkStats
	spans *obs.SpanTracker // nil when attribution is disabled
	// outQueued/outWait implement the finite NI output buffer: messages
	// beyond Config.NIPortDepth park in outWait until the port drains.
	// Only maintained when the depth knob is on, so fault-free runs
	// schedule an identical event stream.
	outQueued []int
	outWait   [][]frame
	// hold carries the active go-back-N recovery windows (NetReliable
	// only; never populated on a fault-free run).
	hold map[pairKey]*pairHold
}

// New creates the network for the configured node count. tr may be nil.
func New(eng *sim.Engine, cfg *config.Config, tr *obs.Tracer) *Network {
	n := &Network{
		eng:       eng,
		cfg:       cfg,
		tr:        tr,
		out:       make([]*sim.Resource, cfg.Nodes),
		in:        make([]*sim.Resource, cfg.Nodes),
		sinks:     make([]Handler, cfg.Nodes),
		outQueued: make([]int, cfg.Nodes),
		outWait:   make([][]frame, cfg.Nodes),
		hold:      map[pairKey]*pairHold{},
	}
	for i := 0; i < cfg.Nodes; i++ {
		n.out[i] = sim.NewResource(eng, fmt.Sprintf("ni-out-%d", i))
		n.in[i] = sim.NewResource(eng, fmt.Sprintf("ni-in-%d", i))
	}
	if cfg.Topology == config.TopoMesh2D {
		n.mesh = newMesh(eng, cfg.Nodes)
	}
	return n
}

// AttachSpans attaches the latency-attribution span tracker (nil keeps
// attribution disabled).
func (n *Network) AttachSpans(sp *obs.SpanTracker) { n.spans = sp }

// Hops returns the routing distance between two nodes (1 for the
// crossbar).
func (n *Network) Hops(src, dst int) int {
	if n.mesh == nil {
		return 1
	}
	return n.mesh.Hops(src, dst)
}

// Attach registers the message sink for a node. Every node must have a sink
// before traffic is sent to it.
func (n *Network) Attach(node int, h Handler) {
	if n.sinks[node] != nil {
		panic(fmt.Sprintf("interconnect: node %d already attached", node))
	}
	n.sinks[node] = h
}

// Send transmits a message of the given flit count from src to dst. The
// sender's output port is occupied for the serialization time; the head
// flit then traverses the switch with the configured point-to-point
// latency; the receiver's input port is occupied while the message drains
// into the destination NI; the sink fires when the last flit has arrived.
// Send returns immediately (the NI accepts the message into its send queue
// at the current cycle).
func (n *Network) Send(src, dst, flitCount int, payload interface{}) {
	if src < 0 || src >= len(n.out) || dst < 0 || dst >= len(n.in) {
		panic(fmt.Sprintf("interconnect: send %d->%d out of range", src, dst))
	}
	if flitCount <= 0 {
		flitCount = 1
	}
	if n.spans.Enabled() {
		txn, epoch := obs.DescribeSpan(payload)
		n.spans.SpanBegin(txn, obs.StageNIPort, epoch, n.eng.Now())
	}
	if n.Fault == nil {
		n.enqueue(src, dst, flitCount, payload, 0)
		return
	}
	d := n.Fault(src, dst, payload)
	if d.Delay > 0 {
		n.link.DelaysInjected++
	}
	if d.Replace != nil {
		n.link.Corrupts++
		if n.cfg.NetReliable {
			// The mangled frame crosses the wire, fails the receiver's
			// CRC, and the sender's replay buffer re-sends the original.
			n.enqueue(src, dst, flitCount, &discardFrame{payload: d.Replace}, d.Delay)
			n.link.Retransmits++
			n.holdPair(src, dst, n.retryDelay(), frame{dst: dst, flits: flitCount, payload: payload})
			return
		}
		payload = d.Replace
	}
	if d.Drop {
		n.link.Drops++
		if n.cfg.NetReliable {
			n.link.Retransmits++
			n.holdPair(src, dst, n.retryDelay(), frame{dst: dst, flits: flitCount, payload: payload})
		}
		return
	}
	if d.Duplicate {
		n.link.Duplicates++
		copyPayload := payload
		if n.cfg.NetReliable {
			copyPayload = &discardFrame{payload: payload}
		}
		// The duplicate copy needs no ordering: the receiving NI rejects
		// it (reliable) or the protocol must tolerate it (raw).
		n.enqueue(src, dst, flitCount, copyPayload, 0)
	}
	if n.cfg.NetReliable {
		if d.Delay > 0 {
			// A delayed frame stalls its go-back-N window: later frames
			// on the pair queue behind it instead of overtaking.
			n.holdPair(src, dst, d.Delay, frame{dst: dst, flits: flitCount, payload: payload})
			return
		}
		if h := n.hold[pairKey{src, dst}]; h != nil {
			h.frames = append(h.frames, frame{dst: dst, flits: flitCount, payload: payload})
			return
		}
	}
	n.enqueue(src, dst, flitCount, payload, d.Delay)
}

// retryDelay is the link-level recovery latency (replay-buffer timeout).
func (n *Network) retryDelay() sim.Time {
	if d := n.cfg.NetRetryDelay; d > 0 {
		return d
	}
	return n.cfg.NetLatency
}

// holdPair opens (or joins) the pair's go-back-N recovery window: f and
// every subsequent original on the pair re-enter the send path, in order,
// when the window closes after delay.
func (n *Network) holdPair(src, dst int, delay sim.Time, f frame) {
	key := pairKey{src, dst}
	if h := n.hold[key]; h != nil {
		// Already recovering this pair: the frame joins the replay queue
		// and rides the existing window.
		h.frames = append(h.frames, f)
		return
	}
	h := &pairHold{frames: []frame{f}}
	n.hold[key] = h
	n.eng.After(delay, func() {
		delete(n.hold, key)
		for _, qf := range h.frames {
			n.enqueue(src, qf.dst, qf.flits, qf.payload, qf.delay)
		}
	})
}

// enqueue admits a message to the source NI's output buffer, parking it
// when the configured finite depth is exceeded (back-pressure).
func (n *Network) enqueue(src, dst, flitCount int, payload interface{}, delay sim.Time) {
	if n.cfg.NIPortDepth > 0 && n.outQueued[src] >= n.cfg.NIPortDepth {
		n.link.Overflows++
		n.outWait[src] = append(n.outWait[src], frame{dst: dst, flits: flitCount, payload: payload, delay: delay})
		return
	}
	n.transmit(src, dst, flitCount, payload, delay)
}

func (n *Network) transmit(src, dst, flitCount int, payload interface{}, delay sim.Time) {
	n.msgs++
	n.flits += uint64(flitCount)
	n.inFlight++
	track := n.cfg.NIPortDepth > 0
	if track {
		n.outQueued[src]++
	}
	if n.tr != nil {
		name, line := obs.DescribePayload(payload)
		n.tr.NetSend(n.eng.Now(), src, dst, name, line, flitCount)
	}
	ser := sim.Time(flitCount) * n.cfg.NetFlitTime
	n.out[src].Acquire(ser, func(start sim.Time) {
		if n.spans.Enabled() {
			txn, epoch := obs.DescribeSpan(payload)
			n.spans.SpanEnd(txn, obs.StageNIPort, epoch, start)
			n.spans.SpanBegin(txn, obs.StageWire, epoch, start)
		}
		if track {
			n.eng.At(start+ser, func() { n.portDrained(src) })
		}
		if n.mesh != nil && src != dst {
			n.sendMesh(src, dst, start+delay, ser, payload)
			return
		}
		headArrives := start + n.cfg.NetLatency + delay
		n.deliverAt(src, dst, headArrives, ser, payload)
	})
}

// portDrained frees one NI output-buffer slot and launches the oldest
// parked send, if any.
func (n *Network) portDrained(src int) {
	n.outQueued[src]--
	if len(n.outWait[src]) == 0 {
		return
	}
	f := n.outWait[src][0]
	n.outWait[src] = n.outWait[src][1:]
	n.transmit(src, f.dst, f.flits, f.payload, f.delay)
}

// Brownout takes a node's NI port out of service for dur cycles (fault
// injection): the port resource is occupied, so queued and future messages
// wait behind the outage exactly as behind a long serialization.
func (n *Network) Brownout(node int, out bool, dur sim.Time) {
	if node < 0 || node >= len(n.out) || dur <= 0 {
		return
	}
	n.link.Brownouts++
	r := n.in[node]
	if out {
		r = n.out[node]
	}
	r.Acquire(dur, func(sim.Time) {})
}

// sendMesh chains the message across the mesh's links with dimension-order
// routing: each hop contends for its directed link, occupies it for the
// serialization time, and adds the per-hop router latency.
func (n *Network) sendMesh(src, dst int, start, ser sim.Time, payload interface{}) {
	hops := n.mesh.route(src, dst)
	var advance func(i int, t sim.Time)
	advance = func(i int, t sim.Time) {
		if i == len(hops) {
			n.deliverAt(src, dst, t, ser, payload)
			return
		}
		link := n.mesh.links[hops[i]]
		link.AcquireAt(t, ser, func(ls sim.Time) {
			advance(i+1, ls+n.cfg.NetHopLatency)
		})
	}
	advance(0, start)
}

// deliverAt drains the message into the destination NI beginning at
// headArrives and fires the sink when the last flit lands.
func (n *Network) deliverAt(src, dst int, headArrives, ser sim.Time, payload interface{}) {
	n.in[dst].AcquireAt(headArrives, ser, func(inStart sim.Time) {
		n.eng.At(inStart+ser, func() {
			n.inFlight--
			if _, rejected := payload.(*discardFrame); rejected {
				// Failed CRC or duplicate sequence number: the NI rejects
				// the frame after it has consumed wire bandwidth.
				n.link.Discards++
				return
			}
			sink := n.sinks[dst]
			if sink == nil {
				panic(fmt.Sprintf("interconnect: no sink on node %d", dst))
			}
			if n.tr != nil {
				name, line := obs.DescribePayload(payload)
				n.tr.NetRecv(n.eng.Now(), src, dst, name, line)
			}
			if n.spans.Enabled() {
				txn, epoch := obs.DescribeSpan(payload)
				n.spans.SpanEnd(txn, obs.StageWire, epoch, n.eng.Now())
			}
			sink(src, payload)
		})
	})
}

// Messages returns the number of messages sent so far.
func (n *Network) Messages() uint64 { return n.msgs }

// Link returns the link layer's fault/recovery counters.
func (n *Network) Link() LinkStats { return n.link }

// OutQueued returns the number of messages currently held in a node's NI
// output buffer (0 unless Config.NIPortDepth is on).
func (n *Network) OutQueued(node int) int {
	return n.outQueued[node] + len(n.outWait[node])
}

// InFlight returns the number of messages currently traversing the network
// (sent but not yet delivered to a sink).
func (n *Network) InFlight() int { return n.inFlight }

// Flits returns the number of flits sent so far.
func (n *Network) Flits() uint64 { return n.flits }

// OutPort exposes a node's output-port resource (for utilization reports).
func (n *Network) OutPort(node int) *sim.Resource { return n.out[node] }

// InPort exposes a node's input-port resource.
func (n *Network) InPort(node int) *sim.Resource { return n.in[node] }
