// Package interconnect models the CC-NUMA system's point-to-point network:
// a fast switch with 32-byte-wide links, a fixed point-to-point latency
// (70 ns in the base system), and external point contention modelled as
// FIFO queueing on each node's network-interface input and output ports.
// Payloads are opaque to the network; the coherence protocol lives above.
package interconnect

import (
	"fmt"

	"ccnuma/internal/config"
	"ccnuma/internal/obs"
	"ccnuma/internal/sim"
)

// Handler receives a delivered message on the destination node.
type Handler func(src int, payload interface{})

// Network connects the nodes' network interfaces.
type Network struct {
	eng   *sim.Engine
	cfg   *config.Config
	tr    *obs.Tracer     // nil when tracing is disabled
	out   []*sim.Resource // per-node NI output ports
	in    []*sim.Resource // per-node NI input ports
	sinks []Handler
	mesh  *mesh // non-nil under TopoMesh2D

	msgs  uint64
	flits uint64
	// inFlight counts messages accepted by Send whose sink has not fired
	// yet (the ccverify model checker uses it to detect quiescence and to
	// bound its in-flight message multiset).
	inFlight int
}

// New creates the network for the configured node count. tr may be nil.
func New(eng *sim.Engine, cfg *config.Config, tr *obs.Tracer) *Network {
	n := &Network{
		eng:   eng,
		cfg:   cfg,
		tr:    tr,
		out:   make([]*sim.Resource, cfg.Nodes),
		in:    make([]*sim.Resource, cfg.Nodes),
		sinks: make([]Handler, cfg.Nodes),
	}
	for i := 0; i < cfg.Nodes; i++ {
		n.out[i] = sim.NewResource(eng, fmt.Sprintf("ni-out-%d", i))
		n.in[i] = sim.NewResource(eng, fmt.Sprintf("ni-in-%d", i))
	}
	if cfg.Topology == config.TopoMesh2D {
		n.mesh = newMesh(eng, cfg.Nodes)
	}
	return n
}

// Hops returns the routing distance between two nodes (1 for the
// crossbar).
func (n *Network) Hops(src, dst int) int {
	if n.mesh == nil {
		return 1
	}
	return n.mesh.Hops(src, dst)
}

// Attach registers the message sink for a node. Every node must have a sink
// before traffic is sent to it.
func (n *Network) Attach(node int, h Handler) {
	if n.sinks[node] != nil {
		panic(fmt.Sprintf("interconnect: node %d already attached", node))
	}
	n.sinks[node] = h
}

// Send transmits a message of the given flit count from src to dst. The
// sender's output port is occupied for the serialization time; the head
// flit then traverses the switch with the configured point-to-point
// latency; the receiver's input port is occupied while the message drains
// into the destination NI; the sink fires when the last flit has arrived.
// Send returns immediately (the NI accepts the message into its send queue
// at the current cycle).
func (n *Network) Send(src, dst, flitCount int, payload interface{}) {
	if src < 0 || src >= len(n.out) || dst < 0 || dst >= len(n.in) {
		panic(fmt.Sprintf("interconnect: send %d->%d out of range", src, dst))
	}
	if flitCount <= 0 {
		flitCount = 1
	}
	n.msgs++
	n.flits += uint64(flitCount)
	n.inFlight++
	if n.tr != nil {
		name, line := obs.DescribePayload(payload)
		n.tr.NetSend(n.eng.Now(), src, dst, name, line, flitCount)
	}
	ser := sim.Time(flitCount) * n.cfg.NetFlitTime
	n.out[src].Acquire(ser, func(start sim.Time) {
		if n.mesh != nil && src != dst {
			n.sendMesh(src, dst, start, ser, payload)
			return
		}
		headArrives := start + n.cfg.NetLatency
		n.deliverAt(src, dst, headArrives, ser, payload)
	})
}

// sendMesh chains the message across the mesh's links with dimension-order
// routing: each hop contends for its directed link, occupies it for the
// serialization time, and adds the per-hop router latency.
func (n *Network) sendMesh(src, dst int, start, ser sim.Time, payload interface{}) {
	hops := n.mesh.route(src, dst)
	var advance func(i int, t sim.Time)
	advance = func(i int, t sim.Time) {
		if i == len(hops) {
			n.deliverAt(src, dst, t, ser, payload)
			return
		}
		link := n.mesh.links[hops[i]]
		link.AcquireAt(t, ser, func(ls sim.Time) {
			advance(i+1, ls+n.cfg.NetHopLatency)
		})
	}
	advance(0, start)
}

// deliverAt drains the message into the destination NI beginning at
// headArrives and fires the sink when the last flit lands.
func (n *Network) deliverAt(src, dst int, headArrives, ser sim.Time, payload interface{}) {
	n.in[dst].AcquireAt(headArrives, ser, func(inStart sim.Time) {
		n.eng.At(inStart+ser, func() {
			sink := n.sinks[dst]
			if sink == nil {
				panic(fmt.Sprintf("interconnect: no sink on node %d", dst))
			}
			if n.tr != nil {
				name, line := obs.DescribePayload(payload)
				n.tr.NetRecv(n.eng.Now(), src, dst, name, line)
			}
			n.inFlight--
			sink(src, payload)
		})
	})
}

// Messages returns the number of messages sent so far.
func (n *Network) Messages() uint64 { return n.msgs }

// InFlight returns the number of messages currently traversing the network
// (sent but not yet delivered to a sink).
func (n *Network) InFlight() int { return n.inFlight }

// Flits returns the number of flits sent so far.
func (n *Network) Flits() uint64 { return n.flits }

// OutPort exposes a node's output-port resource (for utilization reports).
func (n *Network) OutPort(node int) *sim.Resource { return n.out[node] }

// InPort exposes a node's input-port resource.
func (n *Network) InPort(node int) *sim.Resource { return n.in[node] }
