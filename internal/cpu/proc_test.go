package cpu

import (
	"testing"

	"ccnuma/internal/cache"
	"ccnuma/internal/config"
	"ccnuma/internal/memaddr"
	"ccnuma/internal/prog"
	"ccnuma/internal/sim"
	"ccnuma/internal/smpbus"
)

// noSync panics on any synchronization: these tests use none.
type noSync struct{}

func (noSync) Barrier(*Proc)   { panic("unexpected barrier") }
func (noSync) Lock(*Proc, int) { panic("unexpected lock") }
func (noSync) Unlock(*Proc, int) {
	panic("unexpected unlock")
}

// testRig is one node's bus with memory and no coherence controller:
// enough to exercise the processor's cache hierarchy timing.
func testRig(t *testing.T, procs int) (*sim.Engine, *config.Config, *memaddr.Space, *smpbus.Bus, []*Proc) {
	t.Helper()
	cfg := config.Base()
	cfg.Nodes = 1
	cfg.ProcsPerNode = procs
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	eng.Limit = 10_000_000
	space := memaddr.NewSpace(&cfg)
	bus := smpbus.New(eng, &cfg, 0, nil)
	var ps []*Proc
	for i := 0; i < procs; i++ {
		ps = append(ps, New(eng, &cfg, i, 0, bus, space, noSync{}, nil))
	}
	return eng, &cfg, space, bus, ps
}

func run(t *testing.T, eng *sim.Engine, ps []*Proc, progs ...func(prog.Env)) {
	t.Helper()
	for i, p := range ps {
		p.Run(progs[i])
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	for _, p := range ps {
		if done, _ := p.Finished(); !done {
			t.Fatalf("proc %d did not finish", p.ID())
		}
	}
}

func TestCacheHitHierarchy(t *testing.T) {
	eng, _, space, _, ps := testRig(t, 1)
	base := space.Alloc(4096)
	run(t, eng, ps, func(e prog.Env) {
		e.Read(base)      // cold miss
		e.Read(base)      // L1 hit
		e.Read(base + 8)  // L1 hit (same line)
		e.Write(base)     // needs exclusivity: E->M silent (we were sole reader)
		e.Read(base + 64) // same 128B line: L1 hit
	})
	p := ps[0]
	c := p.Counters()
	if c["misses"] != 1 {
		t.Fatalf("misses = %d, want 1", c["misses"])
	}
	if c["l1Hits"] < 3 {
		t.Fatalf("l1 hits = %d, want >= 3", c["l1Hits"])
	}
	if p.Instructions() != 5 {
		t.Fatalf("instructions = %d, want 5", p.Instructions())
	}
}

func TestComputeAdvancesTime(t *testing.T) {
	eng, _, space, _, ps := testRig(t, 1)
	base := space.Alloc(4096)
	run(t, eng, ps, func(e prog.Env) {
		e.Read(base)
		e.Compute(1000)
		e.Read(base)
	})
	if eng.Now() < 1000 {
		t.Fatalf("compute did not advance time: %d", eng.Now())
	}
	if ps[0].Instructions() != 1002 {
		t.Fatalf("instructions = %d, want 1002", ps[0].Instructions())
	}
}

func TestExclusiveThenSilentUpgrade(t *testing.T) {
	eng, _, space, bus, ps := testRig(t, 1)
	base := space.Alloc(4096)
	run(t, eng, ps, func(e prog.Env) {
		e.Read(base)  // installs Exclusive (no other sharers)
		e.Write(base) // E -> M silently, no bus transaction
	})
	if got := bus.Count(smpbus.Upgrade); got != 0 {
		t.Fatalf("silent E->M issued %d upgrades", got)
	}
	if bus.Count(smpbus.Read) != 1 {
		t.Fatalf("reads = %d", bus.Count(smpbus.Read))
	}
}

func TestSharingAndUpgrade(t *testing.T) {
	eng, _, space, bus, ps := testRig(t, 2)
	base := space.Alloc(4096)
	run(t, eng, ps,
		func(e prog.Env) { // proc 0: read then later write
			e.Read(base)
			e.Compute(500)
			e.Write(base)
		},
		func(e prog.Env) { // proc 1: read (creating sharing)
			e.Compute(100)
			e.Read(base)
			e.Compute(2000)
		})
	// Proc 0's write found the line Shared -> an Upgrade appears.
	if got := bus.Count(smpbus.Upgrade); got != 1 {
		t.Fatalf("upgrades = %d, want 1", got)
	}
}

func TestCacheToCacheTransfer(t *testing.T) {
	eng, _, space, bus, ps := testRig(t, 2)
	base := space.Alloc(4096)
	run(t, eng, ps,
		func(e prog.Env) {
			e.Write(base) // M in proc 0
			e.Compute(5000)
		},
		func(e prog.Env) {
			e.Compute(500)
			e.Read(base) // c2c from proc 0's M copy
		})
	// The second read must NOT have gone to memory: one memory access for
	// proc 0's fill, the c2c supplies the other. Check proc 0 downgraded
	// to Owned.
	line := space.Line(base)
	if st := ps[0].l2.Lookup(line); st != cache.Owned {
		t.Fatalf("supplier state = %v, want Owned", st)
	}
	if st := ps[1].l2.Lookup(line); st != cache.Shared {
		t.Fatalf("reader state = %v, want Shared", st)
	}
	_ = bus
}

func TestOwnedWriterUpgradesInPlace(t *testing.T) {
	eng, _, space, bus, ps := testRig(t, 2)
	base := space.Alloc(4096)
	run(t, eng, ps,
		func(e prog.Env) {
			e.Write(base) // M
			e.Compute(5000)
			e.Write(base) // now Owned (after proc 1's read): upgrade, RequesterOwns
		},
		func(e prog.Env) {
			e.Compute(500)
			e.Read(base)
			e.Compute(10000)
		})
	line := space.Line(base)
	if st := ps[0].l2.Lookup(line); st != cache.Modified {
		t.Fatalf("owner state after re-write = %v, want Modified", st)
	}
	if st := ps[1].l2.Lookup(line); st != cache.Invalid {
		t.Fatalf("stale sharer state = %v, want Invalid", st)
	}
	if got := bus.Count(smpbus.Upgrade); got != 1 {
		t.Fatalf("upgrades = %d, want 1", got)
	}
}

func TestEvictionWritesBack(t *testing.T) {
	eng, cfg, space, bus, ps := testRig(t, 1)
	// Touch more lines than one L2 set holds to force dirty evictions:
	// lines mapping to the same set are L2Size/L2Assoc apart.
	setStride := uint64(cfg.L2Size / cfg.L2Assoc)
	base := space.Alloc(int(setStride) * 8)
	run(t, eng, ps, func(e prog.Env) {
		for i := 0; i < 6; i++ {
			e.Write(base + uint64(i)*setStride)
		}
	})
	if got := bus.Count(smpbus.WriteBack); got < 1 {
		t.Fatalf("no write-backs after overflowing a set (got %d)", got)
	}
}

func TestL1Inclusion(t *testing.T) {
	eng, _, space, bus, ps := testRig(t, 2)
	base := space.Alloc(4096)
	run(t, eng, ps,
		func(e prog.Env) {
			e.Read(base)
			e.Compute(2000)
			// After proc 1's write invalidated us (including L1), this
			// read must miss again.
			e.Read(base)
		},
		func(e prog.Env) {
			e.Compute(500)
			e.Write(base)
		})
	if got := ps[0].Counters()["misses"]; got != 2 {
		t.Fatalf("proc 0 misses = %d, want 2 (L1 must be back-invalidated)", got)
	}
	_ = bus
}

func TestSyncAccessCallback(t *testing.T) {
	eng, _, space, _, ps := testRig(t, 1)
	base := space.Alloc(4096)
	p := ps[0]
	fired := false
	eng.At(0, func() {
		p.SyncAccess(base, true, func() { fired = true })
	})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("sync access callback never fired")
	}
	if p.Counters()["writes"] != 1 {
		t.Fatal("sync access not counted")
	}
}

func TestOverlappingSyncAccessPanics(t *testing.T) {
	eng, _, space, _, ps := testRig(t, 1)
	base := space.Alloc(4096)
	p := ps[0]
	defer func() {
		if recover() == nil {
			t.Error("overlapping SyncAccess did not panic")
		}
	}()
	eng.At(0, func() {
		p.SyncAccess(base, true, func() {})
		p.SyncAccess(base+128, true, func() {})
	})
	_, _ = eng.Run()
}

func TestReadWriteRangeHelpers(t *testing.T) {
	eng, _, space, _, ps := testRig(t, 1)
	base := space.Alloc(4096)
	run(t, eng, ps, func(e prog.Env) {
		e.ReadRange(base, 16)
		e.WriteRange(base, 16)
	})
	c := ps[0].Counters()
	if c["reads"] != 16 || c["writes"] != 16 {
		t.Fatalf("reads=%d writes=%d, want 16/16", c["reads"], c["writes"])
	}
}
