// Package cpu implements the execution-driven compute-processor model.
// Each simulated processor runs its workload program on a dedicated
// goroutine; the program's shared-memory loads and stores are issued to the
// timing model (L1 -> L2 -> SMP bus -> coherence controller) and the
// goroutine blocks until the simulated access completes, exactly like the
// Augmint task-switch-per-reference model the paper used. Control is handed
// off synchronously, so only one goroutine (the engine's or one program's)
// ever runs at a time and simulations stay deterministic.
package cpu

import (
	"fmt"

	"ccnuma/internal/cache"
	"ccnuma/internal/config"
	"ccnuma/internal/memaddr"
	"ccnuma/internal/obs"
	"ccnuma/internal/prog"
	"ccnuma/internal/sim"
	"ccnuma/internal/smpbus"
	"ccnuma/internal/stats"
)

type opKind int

const (
	opRead opKind = iota
	opWrite
	opBarrier
	opLock
	opUnlock
	opDone
)

type op struct {
	kind opKind
	addr uint64
	comp int64 // compute cycles/instructions preceding this operation
	id   int   // lock identifier
}

// SyncHandler implements machine-level synchronization: the processor
// hands barrier/lock operations to it and expects Resume to be called when
// the processor may continue.
type SyncHandler interface {
	Barrier(p *Proc)
	Lock(p *Proc, id int)
	Unlock(p *Proc, id int)
}

// Proc is one simulated compute processor.
type Proc struct {
	eng   *sim.Engine
	cfg   *config.Config
	id    int // global processor index
	node  int
	bus   *smpbus.Bus
	src   int // snooper index on the bus
	space *memaddr.Space
	sync  SyncHandler
	tr    *obs.Tracer // nil when tracing is disabled

	l1 *cache.Cache
	l2 *cache.Cache

	// vals shadows the value of every line this processor has ever held or
	// written (one uint64 per line). Entries are deliberately kept after
	// invalidation: the bus reads a supplier's value at snoop time, after
	// the snoop itself may have invalidated the copy.
	vals   map[uint64]uint64
	valSeq uint64
	// lastRead and lastWrite record the shadow value observed by the most
	// recent completed load and produced by the most recent completed
	// store (read by the ccverify model checker between operations).
	lastRead  uint64
	lastWrite uint64

	start chan struct{}
	ops   chan op

	// syncCb, when set, receives the completion of an access issued by the
	// synchronization layer instead of resuming the program.
	syncCb func()

	pendingComp int64 // program-side accumulated compute cycles

	// Statistics.
	instructions uint64
	reads        uint64
	writes       uint64
	l1Hits       uint64
	l2Hits       uint64
	misses       uint64
	upgrades     uint64
	retries      uint64
	finished     bool
	finishedAt   sim.Time
	missLat      stats.Histogram
	missStart    sim.Time // start of the in-flight miss (one per processor)
	missActive   bool
	// retryStreak counts consecutive bus aborts of the in-flight miss, for
	// the exponential back-off gated on Config.BusBackoffMax.
	retryStreak int

	// spans is the latency-attribution tracker (nil when attribution is
	// off). missTxn is the causal-span ID of the in-flight miss episode,
	// minted like shadow write values: processor index in the high word,
	// per-processor sequence in the low word.
	spans   *obs.SpanTracker
	missTxn uint64
	missSeq uint64
}

// New creates a processor attached to its node's bus. tr may be nil.
func New(eng *sim.Engine, cfg *config.Config, id, node int, bus *smpbus.Bus,
	space *memaddr.Space, sync SyncHandler, tr *obs.Tracer) *Proc {
	p := &Proc{
		eng:   eng,
		cfg:   cfg,
		id:    id,
		node:  node,
		bus:   bus,
		space: space,
		sync:  sync,
		tr:    tr,
		l1:    cache.New(cfg.L1Size, cfg.L1Assoc, cfg.LineSize),
		l2:    cache.New(cfg.L2Size, cfg.L2Assoc, cfg.LineSize),
		vals:  make(map[uint64]uint64),
		start: make(chan struct{}),
		ops:   make(chan op),
	}
	p.src = bus.AttachSnooper(p)
	return p
}

// AttachSpans attaches the latency-attribution span tracker (nil keeps
// attribution disabled).
func (p *Proc) AttachSpans(sp *obs.SpanTracker) { p.spans = sp }

// ID returns the processor's global index.
func (p *Proc) ID() int { return p.id }

// Node returns the processor's node index.
func (p *Proc) Node() int { return p.node }

// Instructions returns the instruction count (compute cycles plus one per
// memory reference, the paper's 1-IPC in-order assumption).
func (p *Proc) Instructions() uint64 { return p.instructions }

// Finished reports whether the program has completed, and when.
func (p *Proc) Finished() (bool, sim.Time) { return p.finished, p.finishedAt }

// ForEachL2Line visits every valid line in the processor's L2 cache (for
// end-of-run coherence invariant checks).
func (p *Proc) ForEachL2Line(fn func(line uint64, st cache.State)) {
	p.l2.Lines(func(line uint64, st cache.State) bool {
		fn(line, st)
		return true
	})
}

// ForEachL1Line visits every valid line in the processor's L1 cache (the
// model checker folds L1 presence into its abstract state hash).
func (p *Proc) ForEachL1Line(fn func(line uint64, st cache.State)) {
	p.l1.Lines(func(line uint64, st cache.State) bool {
		fn(line, st)
		return true
	})
}

// L2State returns the L2 state of a line without touching LRU.
func (p *Proc) L2State(line uint64) cache.State { return p.l2.Lookup(line) }

// LineValue returns the processor's shadow value for a line (zero if the
// processor never held it).
func (p *Proc) LineValue(line uint64) uint64 { return p.vals[line] }

// LastReadValue returns the shadow value observed by the most recently
// completed load.
func (p *Proc) LastReadValue() uint64 { return p.lastRead }

// LastWriteValue returns the shadow value produced by the most recently
// completed store.
func (p *Proc) LastWriteValue() uint64 { return p.lastWrite }

// writeValue mints a globally unique shadow value for a completed store to
// line: the processor index in the high word and a per-processor sequence
// number in the low word (no shared counter, so replays stay deterministic).
func (p *Proc) writeValue(line uint64) {
	p.valSeq++
	v := uint64(p.id+1)<<32 | p.valSeq
	p.vals[line] = v
	p.lastWrite = v
}

// readValue records the value a completed load observed from the local copy.
func (p *Proc) readValue(line uint64) { p.lastRead = p.vals[line] }

// MissLatencies returns the processor's miss service-time distribution.
func (p *Proc) MissLatencies() *stats.Histogram { return &p.missLat }

// Counters returns the processor's reference statistics.
func (p *Proc) Counters() map[string]uint64 {
	return map[string]uint64{
		"reads": p.reads, "writes": p.writes,
		"l1Hits": p.l1Hits, "l2Hits": p.l2Hits, "misses": p.misses,
		"upgrades": p.upgrades, "busRetries": p.retries,
	}
}

// Run launches the program goroutine and schedules its first time slice.
// The program must use only the provided Env for shared-memory access.
func (p *Proc) Run(program func(prog.Env)) {
	env := &Env{p: p}
	go func() {
		<-p.start
		program(env)
		p.ops <- op{kind: opDone}
	}()
	p.eng.At(p.eng.Now(), p.resumeProgram)
}

// Resume lets the synchronization handler continue a parked processor.
func (p *Proc) Resume() {
	p.resumeProgram()
}

// SyncAccess models a load/store issued by the synchronization layer on
// behalf of the parked program (a lock-line acquisition or release). done
// runs at completion instead of resuming the program.
func (p *Proc) SyncAccess(addr uint64, write bool, done func()) {
	if p.syncCb != nil {
		panic("cpu: overlapping SyncAccess")
	}
	p.syncCb = done
	p.instructions++
	if write {
		p.writes++
	} else {
		p.reads++
	}
	p.access(addr, write)
}

// resumeProgram transfers control to the program goroutine, receives its
// next operation, and models it. The engine goroutine blocks while the
// program computes, which serializes all program execution deterministically.
func (p *Proc) resumeProgram() {
	p.start <- struct{}{}
	o := <-p.ops
	p.handleOp(o)
}

func (p *Proc) handleOp(o op) {
	if o.comp > 0 {
		p.instructions += uint64(o.comp)
		p.eng.After(sim.Time(o.comp), func() { p.execOp(o) })
		return
	}
	p.execOp(o)
}

func (p *Proc) execOp(o op) {
	switch o.kind {
	case opRead, opWrite:
		p.instructions++
		if o.kind == opRead {
			p.reads++
		} else {
			p.writes++
		}
		p.access(o.addr, o.kind == opWrite)
	case opBarrier:
		p.sync.Barrier(p)
	case opLock:
		p.sync.Lock(p, o.id)
	case opUnlock:
		p.sync.Unlock(p, o.id)
	case opDone:
		p.finished = true
		p.finishedAt = p.eng.Now()
	default:
		panic(fmt.Sprintf("cpu: unknown op %d", o.kind))
	}
}

// access models one load or store.
func (p *Proc) access(addr uint64, write bool) {
	line := p.space.Line(addr)
	if p.space.Home(line) < 0 {
		// First touch under first-touch placement assigns the page here.
		// The placement table is shared by every node, so on a sharded
		// engine the assignment runs under a cluster fence and the access
		// re-enters once the home is set (nothing above this point has
		// side effects, so re-entry is safe). On a serial engine the fence
		// body runs inline and this is the plain assign-and-continue path.
		p.eng.Fence(func() {
			p.space.HomeOrAssign(line, p.node)
			p.access(addr, write)
		})
		return
	}

	// L1: presence filter. Writes additionally require L2 exclusivity.
	if p.l1.Touch(line) != cache.Invalid {
		st := p.l2.Touch(line)
		if st == cache.Invalid {
			// Inclusion was broken by a snoop between references; fall
			// through to the L2/bus path after back-invalidating L1.
			p.l1.Invalidate(line)
		} else if !write {
			p.l1Hits++
			p.readValue(line)
			p.finishAccess(p.cfg.L1HitTime)
			return
		} else if st == cache.Modified || st == cache.Exclusive {
			p.l1Hits++
			p.l2.SetState(line, cache.Modified)
			p.writeValue(line)
			p.finishAccess(p.cfg.L1HitTime)
			return
		}
		// Write to a Shared/Owned line: exclusivity needed below.
	}

	st := p.l2.Touch(line)
	switch {
	case st == cache.Invalid:
		p.misses++
		p.missStart = p.eng.Now()
		p.missActive = true
		if p.spans.Enabled() {
			p.missSeq++
			p.missTxn = uint64(p.id+1)<<32 | p.missSeq
			p.spans.Start(p.missTxn, p.node, line, p.missStart)
			p.spans.SpanBegin(p.missTxn, obs.StageStall, 0, p.missStart)
		}
		kind := smpbus.Read
		if write {
			kind = smpbus.ReadEx
		}
		p.eng.After(p.cfg.L2MissDetect, func() { p.issueMiss(line, kind) })
	case !write:
		p.l2Hits++
		p.readValue(line)
		p.installL1(line)
		p.finishAccess(p.cfg.L2HitTime)
	case st == cache.Modified || st == cache.Exclusive:
		p.l2Hits++
		p.l2.SetState(line, cache.Modified)
		p.writeValue(line)
		p.installL1(line)
		p.finishAccess(p.cfg.L2HitTime)
	default: // write to Shared or Owned: upgrade
		p.upgrades++
		p.eng.After(p.cfg.L2MissDetect, func() { p.issueMiss(line, smpbus.Upgrade) })
	}
}

// requesterOwns reports whether an Upgrade should carry the
// dirty-ownership mark (the line is Owned in our L2 at issue time).
func (p *Proc) requesterOwns(line uint64, kind smpbus.Kind) bool {
	return kind == smpbus.Upgrade && p.l2.Lookup(line) == cache.Owned
}

// issueMiss puts a transaction on the bus and handles its outcome,
// retrying with a re-evaluated cache state when bounced.
func (p *Proc) issueMiss(line uint64, kind smpbus.Kind) {
	owns := p.requesterOwns(line, kind)
	txn := &smpbus.Txn{
		Kind:          kind,
		Line:          line,
		Src:           p.src,
		HomeLocal:     p.space.Home(line) == p.node,
		RequesterOwns: owns,
		Done:          func(o smpbus.Outcome) { p.missDone(line, kind, owns, o) },
	}
	if p.missActive {
		txn.Attr = p.missTxn
		p.spans.SpanEnd(p.missTxn, obs.StageStall, 0, p.eng.Now())
	}
	p.bus.Issue(txn)
}

// busBackoff returns the delay before re-issuing an aborted bus
// transaction: the fixed BusRetry interval, or — with Config.BusBackoffMax
// on — BusRetry doubled per consecutive abort and capped, so requesters
// bounced off a full controller queue spread out instead of retrying in
// lockstep. With the knob off this is exactly the pre-robustness constant.
func (p *Proc) busBackoff() sim.Time {
	d := p.cfg.BusRetry
	if limit := p.cfg.BusBackoffMax; limit > 0 {
		for i := 0; i < p.retryStreak; i++ {
			d <<= 1
			if d >= limit {
				d = limit
				break
			}
		}
		p.retryStreak++
	}
	return d
}

func (p *Proc) missDone(line uint64, kind smpbus.Kind, owned bool, o smpbus.Outcome) {
	p.tr.Cache(p.eng.Now(), p.node, p.src, line, "missDone", kind.String())
	switch o.Status {
	case smpbus.RetryNeeded:
		p.retries++
		p.spans.SpanBegin(p.missTxn, obs.StageBackoff, 0, p.eng.Now())
		p.eng.After(p.busBackoff(), func() { p.retryAccess(line, kind) })
		return
	case smpbus.OK:
		p.retryStreak = 0
	default:
		panic(fmt.Sprintf("cpu: unexpected miss outcome %+v", o))
	}
	switch kind {
	case smpbus.Read:
		st := cache.Exclusive
		if o.Shared {
			st = cache.Shared
		}
		p.installL2(line, st)
		p.vals[line] = o.Data
		p.readValue(line)
	case smpbus.ReadEx:
		p.installL2(line, cache.Modified)
		p.vals[line] = o.Data
		p.writeValue(line)
	case smpbus.Upgrade:
		if o.WithData {
			// The reply carried the full line (deferred upgrades convert
			// to read-exclusive at the home, and in-node ownership
			// transfers move the line cache-to-cache).
			p.installL2(line, cache.Modified)
			p.vals[line] = o.Data
			p.writeValue(line)
			break
		}
		if owned {
			// A dirty-owner grant is valid only if we still hold the line
			// Owned: a home-initiated intervention may have downgraded or
			// invalidated it while the upgrade was in flight, in which
			// case global ownership moved and we must restart.
			if p.l2.Lookup(line) != cache.Owned {
				p.eng.After(p.cfg.BusRetry, func() { p.retryAccess(line, smpbus.Upgrade) })
				return
			}
			p.l2.SetState(line, cache.Modified)
			p.writeValue(line)
			p.installL1(line)
			break
		}
		// A bare home grant may arrive after an intervening invalidation
		// removed our copy; in that case restart as a full read-exclusive.
		if p.l2.Lookup(line) == cache.Invalid {
			p.issueMiss(line, smpbus.ReadEx)
			return
		}
		p.l2.SetState(line, cache.Modified)
		p.writeValue(line)
		p.installL1(line)
	case smpbus.WriteBack, smpbus.Inval, smpbus.Fetch, smpbus.FetchEx:
		panic(fmt.Sprintf("cpu: miss completion for non-processor kind %v line %#x", kind, line))
	default:
		panic(fmt.Sprintf("cpu: miss completion for unknown kind %v line %#x", kind, line))
	}
	p.finishMiss()
	p.finishAccess(p.cfg.FillRestart)
}

// retryAccess re-evaluates the cache state after a bus bounce: the line may
// have arrived via a sibling in the meantime.
func (p *Proc) retryAccess(line uint64, kind smpbus.Kind) {
	p.spans.SpanEnd(p.missTxn, obs.StageBackoff, 0, p.eng.Now())
	st := p.l2.Touch(line)
	switch kind {
	case smpbus.Read:
		if st != cache.Invalid {
			// The line arrived via a sibling while we were backing off: the
			// miss episode dissolves into a cache hit, so its span (if any)
			// is discarded rather than finished.
			p.spans.Abandon(p.missTxn)
			p.readValue(line)
			p.installL1(line)
			p.finishAccess(p.cfg.L2HitTime)
			return
		}
	case smpbus.ReadEx, smpbus.Upgrade:
		switch st {
		case cache.Modified, cache.Exclusive:
			p.spans.Abandon(p.missTxn)
			p.l2.SetState(line, cache.Modified)
			p.writeValue(line)
			p.installL1(line)
			p.finishAccess(p.cfg.L2HitTime)
			return
		case cache.Shared, cache.Owned:
			kind = smpbus.Upgrade
		case cache.Invalid:
			kind = smpbus.ReadEx
		default:
			panic(fmt.Sprintf("cpu: unknown cache state %v retrying line %#x", st, line))
		}
	case smpbus.WriteBack, smpbus.Inval, smpbus.Fetch, smpbus.FetchEx:
		panic(fmt.Sprintf("cpu: retry of non-processor kind %v line %#x", kind, line))
	default:
		panic(fmt.Sprintf("cpu: retry of unknown kind %v line %#x", kind, line))
	}
	p.issueMiss(line, kind)
}

// installL2 inserts a filled line, writing back a dirty victim and keeping
// L1 inclusive.
func (p *Proc) installL2(line uint64, st cache.State) {
	victim, vstate := p.l2.Insert(line, st)
	p.tr.Cache(p.eng.Now(), p.node, p.src, line, "install", st.String())
	if vstate != cache.Invalid {
		p.tr.Cache(p.eng.Now(), p.node, p.src, victim, "evict", vstate.String())
		p.l1.Invalidate(victim)
		if vstate.Dirty() {
			p.writeBack(victim)
		}
	}
	p.installL1(line)
}

func (p *Proc) installL1(line uint64) {
	p.l1.Insert(line, cache.Shared) // L1 tracks presence only
}

// writeBack issues an eviction write-back (fire and forget; the write-back
// buffer is not a modelled resource beyond the bus itself).
func (p *Proc) writeBack(line uint64) {
	p.tr.Cache(p.eng.Now(), p.node, p.src, line, "writeback", "")
	txn := &smpbus.Txn{
		Kind:      smpbus.WriteBack,
		Line:      line,
		Src:       p.src,
		HomeLocal: p.space.Home(line) == p.node,
		Data:      p.vals[line],
		Done: func(o smpbus.Outcome) {
			if o.Status == smpbus.RetryNeeded {
				p.eng.After(p.cfg.BusRetry, func() { p.writeBack(line) })
			}
		},
	}
	p.bus.Issue(txn)
}

// finishMiss records the completed miss's service time.
func (p *Proc) finishMiss() {
	if p.missActive {
		p.spans.Finish(p.missTxn, p.eng.Now())
		p.missLat.Add(p.eng.Now() - p.missStart)
		p.missActive = false
	}
}

// finishAccess resumes the program (or completes a synchronization access)
// after the access latency.
func (p *Proc) finishAccess(extra sim.Time) {
	if cb := p.syncCb; cb != nil {
		p.syncCb = nil
		p.eng.After(extra, cb)
		return
	}
	p.eng.After(extra, p.resumeProgram)
}

// Snoop implements the bus snooping agent for this processor's caches.
func (p *Proc) Snoop(txn *smpbus.Txn) smpbus.SnoopResult {
	line := txn.Line
	st := p.l2.Lookup(line)
	if st == cache.Invalid {
		return smpbus.SnoopNone
	}
	p.tr.Cache(p.eng.Now(), p.node, p.src, line, "snoop", st.String())
	switch txn.Kind {
	case smpbus.Read:
		// In-node read: a dirty owner supplies and keeps ownership
		// (Modified -> Owned); clean holders supply shared.
		if st.Dirty() {
			p.l2.SetState(line, cache.Owned)
			return smpbus.SnoopOwned
		}
		if st == cache.Exclusive {
			p.l2.SetState(line, cache.Shared)
		}
		return smpbus.SnoopShared
	case smpbus.Fetch:
		// Controller fetch: dirty data leaves the node (home memory will
		// be updated), so the copy downgrades to clean Shared.
		if st.Dirty() {
			p.l2.SetState(line, cache.Shared)
			return smpbus.SnoopOwned
		}
		if st == cache.Exclusive {
			p.l2.SetState(line, cache.Shared)
		}
		return smpbus.SnoopShared
	case smpbus.ReadEx, smpbus.Upgrade, smpbus.FetchEx, smpbus.Inval:
		p.l2.Invalidate(line)
		p.l1.Invalidate(line)
		if st.Dirty() {
			return smpbus.SnoopOwned
		}
		return smpbus.SnoopShared
	case smpbus.WriteBack:
		// Another agent writes the line back; we keep our (clean) copy and
		// report continued sharing.
		return smpbus.SnoopShared
	default:
		// Deferred-reply (supply) strobes resolve before snooping, so no
		// other kind can reach a processor snooper.
		panic(fmt.Sprintf("cpu: snoop of unexpected kind %v line %#x", txn.Kind, line))
	}
}

// LineData implements smpbus.DataSupplier: the shadow value this processor
// would put on the bus when supplying the line cache-to-cache.
func (p *Proc) LineData(line uint64) uint64 { return p.vals[line] }

// ---- program-facing API -----------------------------------------------------

// Env is the shared-memory interface handed to workload programs (the
// detailed implementation of prog.Env). All methods block the program
// goroutine until the simulated operation completes. Env is owned by a
// single program goroutine.
type Env struct {
	p *Proc
}

var _ prog.Env = (*Env)(nil)

// ID returns the global processor index running this program.
func (e *Env) ID() int { return e.p.id }

// Node returns the processor's node.
func (e *Env) Node() int { return e.p.node }

// Compute charges n instruction cycles of local computation. The cost is
// attached to the next memory or synchronization operation.
func (e *Env) Compute(n int) {
	if n > 0 {
		e.p.pendingComp += int64(n)
	}
}

func (e *Env) issue(o op) {
	o.comp = e.p.pendingComp
	e.p.pendingComp = 0
	e.p.ops <- o
	<-e.p.start
}

// Read performs a shared-memory load from addr.
func (e *Env) Read(addr uint64) { e.issue(op{kind: opRead, addr: addr}) }

// Write performs a shared-memory store to addr.
func (e *Env) Write(addr uint64) { e.issue(op{kind: opWrite, addr: addr}) }

// ReadRange loads n consecutive 8-byte words starting at addr, one
// reference per word (the caches collapse same-line references).
func (e *Env) ReadRange(addr uint64, n int) {
	for i := 0; i < n; i++ {
		e.Read(addr + uint64(i*8))
	}
}

// WriteRange stores n consecutive 8-byte words starting at addr.
func (e *Env) WriteRange(addr uint64, n int) {
	for i := 0; i < n; i++ {
		e.Write(addr + uint64(i*8))
	}
}

// Barrier joins the global barrier; the program resumes when every
// processor has arrived.
func (e *Env) Barrier() { e.issue(op{kind: opBarrier}) }

// Lock acquires the numbered lock, modelling the coherence traffic of a
// read-exclusive acquisition of the lock's cache line.
func (e *Env) Lock(id int) { e.issue(op{kind: opLock, id: id}) }

// Unlock releases the numbered lock.
func (e *Env) Unlock(id int) { e.issue(op{kind: opUnlock, id: id}) }
