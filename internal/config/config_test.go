package config

import (
	"strings"
	"testing"
)

func TestBaseValidates(t *testing.T) {
	c := Base()
	if err := c.Validate(); err != nil {
		t.Fatalf("base config invalid: %v", err)
	}
}

func TestBaseMatchesPaperParameters(t *testing.T) {
	c := Base()
	if c.Nodes != 16 || c.ProcsPerNode != 4 {
		t.Errorf("geometry %dx%d, want 16x4", c.Nodes, c.ProcsPerNode)
	}
	if c.LineSize != 128 {
		t.Errorf("line size %d, want 128", c.LineSize)
	}
	if c.L1Size != 16*1024 || c.L2Size != 1024*1024 {
		t.Errorf("cache sizes L1=%d L2=%d", c.L1Size, c.L2Size)
	}
	if c.NetLatency != 14 {
		t.Errorf("network latency %d cycles, want 14 (70 ns)", c.NetLatency)
	}
	if c.MemAccess != 20 {
		t.Errorf("memory access %d, want 20", c.MemAccess)
	}
	if c.AddrStrobe != 4 {
		t.Errorf("address strobe %d, want 4", c.AddrStrobe)
	}
	if c.DirCacheEntries != 8192 {
		t.Errorf("dir cache entries %d, want 8192", c.DirCacheEntries)
	}
}

func TestDefaultCostsTable2Assumptions(t *testing.T) {
	costs := DefaultCosts()
	// HWC on-chip register accesses take one system cycle (2 CPU cycles).
	for _, op := range []SubOp{OpReadBusReg, OpWriteBusReg, OpReadNIReg, OpWriteNIReg} {
		if got := costs.Cost(HWC, op); got != 2 {
			t.Errorf("HWC %v = %d, want 2", op, got)
		}
	}
	// PP reads of off-chip registers take 8 CPU cycles, writes 4.
	if got := costs.Cost(PPC, OpReadBusReg); got != 8 {
		t.Errorf("PPC read bus reg = %d, want 8", got)
	}
	if got := costs.Cost(PPC, OpWriteBusReg); got != 4 {
		t.Errorf("PPC write bus reg = %d, want 4", got)
	}
	// The MSHR probe is a cached software-table search for the PP: cheaper
	// than an off-chip read plus search, costlier than a plain load.
	if got := costs.Cost(PPC, OpAssocSearch); got < 4 || got > costs.Cost(PPC, OpReadBusReg)+2 {
		t.Errorf("PPC assoc search = %d, want within [4, read+2]", got)
	}
	// HWC folds bit operations and conditions into other actions.
	if costs.Cost(HWC, OpBitField) != 0 || costs.Cost(HWC, OpCondition) != 0 {
		t.Error("HWC bit/condition ops should be free")
	}
	// PPC pays for every sub-operation.
	for op := SubOp(0); op < numSubOps; op++ {
		if costs.Cost(PPC, op) <= 0 {
			t.Errorf("PPC %v should have positive cost", op)
		}
	}
}

func TestValidateRejectsBadGeometry(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
		frag   string
	}{
		{"zero nodes", func(c *Config) { c.Nodes = 0 }, "Nodes"},
		{"non-pow2 nodes", func(c *Config) { c.Nodes = 12; c.Topology = TopoMesh2D }, "power of two"},
		{"zero procs", func(c *Config) { c.ProcsPerNode = 0 }, "ProcsPerNode"},
		{"bad line", func(c *Config) { c.LineSize = 96 }, "LineSize"},
		{"page < line", func(c *Config) { c.PageSize = 64 }, "PageSize"},
		{"l1 geometry", func(c *Config) { c.L1Size = 1000 }, "L1"},
		{"banks", func(c *Config) { c.MemBanks = 0 }, "MemBanks"},
		{"livelock", func(c *Config) { c.LivelockLimit = 0 }, "LivelockLimit"},
	}
	for _, tc := range cases {
		c := Base()
		tc.mutate(&c)
		err := c.Validate()
		if err == nil {
			t.Errorf("%s: expected error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.frag) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.frag)
		}
	}
}

func TestWithArch(t *testing.T) {
	base := Base()
	for _, name := range Architectures {
		c, err := base.WithArch(name)
		if err != nil {
			t.Fatalf("WithArch(%s): %v", name, err)
		}
		if c.ArchName() != name {
			t.Errorf("ArchName = %s, want %s", c.ArchName(), name)
		}
	}
	if _, err := base.WithArch("XYZ"); err == nil {
		t.Error("expected error for unknown architecture")
	}
}

func TestDerivedQuantities(t *testing.T) {
	c := Base()
	// 128B line + 8B header over 32B flits = 5 flits.
	if got := c.LineDataFlits(); got != 5 {
		t.Errorf("LineDataFlits = %d, want 5", got)
	}
	if got := c.ControlFlits(); got != 1 {
		t.Errorf("ControlFlits = %d, want 1", got)
	}
	// 128B over a 16B-wide 100MHz bus = 8 bus cycles = 16 CPU cycles.
	if got := c.BusDataTime(); got != 16 {
		t.Errorf("BusDataTime = %d, want 16", got)
	}
	if got := c.TotalProcs(); got != 64 {
		t.Errorf("TotalProcs = %d, want 64", got)
	}
	c.LineSize = 32
	if got := c.LineDataFlits(); got != 2 {
		t.Errorf("LineDataFlits(32B) = %d, want 2", got)
	}
	if got := c.BusDataTime(); got != 4 {
		t.Errorf("BusDataTime(32B) = %d, want 4", got)
	}
}

func TestStringers(t *testing.T) {
	if HWC.String() != "HWC" || PPC.String() != "PPC" {
		t.Error("EngineKind stringer broken")
	}
	if SplitLocalRemote.String() != "local/remote" || SplitRoundRobin.String() != "round-robin" {
		t.Error("SplitPolicy stringer broken")
	}
	if ArbPaper.String() != "paper" || ArbFIFO.String() != "fifo" {
		t.Error("ArbPolicy stringer broken")
	}
	if PlaceRoundRobin.String() != "round-robin" || PlaceFirstTouch.String() != "first-touch" || PlaceExplicit.String() != "explicit" {
		t.Error("PlacementPolicy stringer broken")
	}
	for op := SubOp(0); op < numSubOps; op++ {
		if op.String() == "" || strings.HasPrefix(op.String(), "SubOp(") {
			t.Errorf("missing name for sub-op %d", int(op))
		}
	}
}

func TestExtensionValidation(t *testing.T) {
	c := Base()
	c.NumEngines = 4
	if err := c.Validate(); err == nil {
		t.Error("4 engines with local/remote split should be rejected")
	}
	c.Split = SplitRegion
	if err := c.Validate(); err != nil {
		t.Errorf("4 region-split engines rejected: %v", err)
	}
	if c.EngineCount() != 4 {
		t.Errorf("EngineCount = %d, want 4", c.EngineCount())
	}
	if c.ArchName() != "4PPC" && c.Engine == PPC {
		// Engine defaults to HWC in Base; set and re-check below.
		_ = c
	}
	c.Engine = PPC
	if got := c.ArchName(); got != "4PPC" {
		t.Errorf("ArchName = %s, want 4PPC", got)
	}
	c.RegionBytes = 100
	if err := c.Validate(); err == nil {
		t.Error("non-power-of-two RegionBytes should be rejected")
	}
	c.RegionBytes = 4096
	c.NumEngines = -1
	if err := c.Validate(); err == nil {
		t.Error("negative NumEngines should be rejected")
	}
}

func TestPPCACosts(t *testing.T) {
	costs := DefaultCosts()
	for op := SubOp(0); op < SubOp(NumSubOps); op++ {
		hwc, ppca, ppc := costs.Cost(HWC, op), costs.Cost(PPCA, op), costs.Cost(PPC, op)
		if ppca < hwc || ppca > ppc {
			t.Errorf("%v: PPCA cost %d outside [HWC %d, PPC %d]", op, ppca, hwc, ppc)
		}
	}
	// The dispatch and send assists must actually help.
	if costs.Cost(PPCA, OpDispatch) >= costs.Cost(PPC, OpDispatch) {
		t.Error("PPCA dispatch assist missing")
	}
	if costs.Cost(PPCA, OpSendHeader) >= costs.Cost(PPC, OpSendHeader) {
		t.Error("PPCA send assist missing")
	}
}

func TestWithArchExtended(t *testing.T) {
	base := Base()
	for _, name := range []string{"PPCA", "2PPCA"} {
		c, err := base.WithArch(name)
		if err != nil {
			t.Fatalf("WithArch(%s): %v", name, err)
		}
		if c.ArchName() != name {
			t.Errorf("ArchName = %s, want %s", c.ArchName(), name)
		}
		if err := c.Validate(); err != nil {
			t.Errorf("%s invalid: %v", name, err)
		}
	}
}

func TestRegionShift(t *testing.T) {
	c := Base()
	c.RegionBytes = 4096
	if got := c.RegionShift(); got != 12 {
		t.Errorf("RegionShift = %d, want 12", got)
	}
}
