// Package config holds every architectural parameter of the simulated
// CC-NUMA machine: the geometry (nodes, processors per node), the cache and
// memory hierarchy, the SMP bus and network timings of the paper's Table 1,
// and the protocol-engine sub-operation occupancies of Table 2. All times
// are in compute-processor cycles (5 ns at 200 MHz).
package config

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"ccnuma/internal/sim"
)

// EngineKind selects the protocol-engine implementation inside the
// coherence controller.
type EngineKind int

const (
	// HWC is the custom-hardware finite-state-machine engine (100 MHz,
	// on-chip registers, bit operations folded into other actions).
	HWC EngineKind = iota
	// PPC is the commodity protocol processor (200 MHz PowerPC) that talks
	// to the bus and network interfaces through memory-mapped off-chip
	// registers on the controller's local bus.
	PPC
	// PPCA is the paper's Section 5 proposal, implemented here as an
	// extension: a commodity protocol processor with incremental custom
	// hardware accelerating the common handler actions (a hardware
	// dispatch assist and a message-send/data-path assist), keeping the
	// protocol programmable.
	PPCA

	numEngineKinds
)

// NumEngineKinds is the number of engine implementations.
const NumEngineKinds = int(numEngineKinds)

func (k EngineKind) String() string {
	switch k {
	case HWC:
		return "HWC"
	case PPC:
		return "PPC"
	case PPCA:
		return "PPCA"
	default:
		return fmt.Sprintf("EngineKind(%d)", int(k))
	}
}

// MarshalText renders the engine kind as its paper name, so scenario
// documents say "PPC" instead of an opaque integer.
func (k EngineKind) MarshalText() ([]byte, error) {
	if k < 0 || k >= EngineKind(numEngineKinds) {
		return nil, fmt.Errorf("config: unknown engine kind %d", int(k))
	}
	return []byte(k.String()), nil
}

// UnmarshalText parses a paper engine-kind name.
func (k *EngineKind) UnmarshalText(text []byte) error {
	kind, err := ParseEngineKind(string(text))
	if err != nil {
		return err
	}
	*k = kind
	return nil
}

// ParseEngineKind resolves an engine-kind name (HWC, PPC, PPCA).
func ParseEngineKind(name string) (EngineKind, error) {
	switch name {
	case "HWC":
		return HWC, nil
	case "PPC":
		return PPC, nil
	case "PPCA":
		return PPCA, nil
	default:
		return 0, fmt.Errorf("config: unknown engine kind %q", name)
	}
}

// SplitPolicy selects how requests are distributed over two protocol
// engines.
type SplitPolicy int

const (
	// SplitLocalRemote is the paper's (and S3.mp's) policy: the local
	// protocol engine (LPE) handles requests for addresses whose home is
	// this node, the remote protocol engine (RPE) handles the rest. Only
	// the LPE touches the directory.
	SplitLocalRemote SplitPolicy = iota
	// SplitRoundRobin alternates requests between the engines regardless
	// of address; it is the "more even" alternative the paper discusses
	// (and would require both engines to reach the directory).
	SplitRoundRobin
	// SplitRegion interleaves memory regions across all engines (the
	// paper's Section 5 "more protocol engines for different regions of
	// memory"); every engine needs a directory path. Required when more
	// than two engines are configured.
	SplitRegion
	// SplitDynamic assigns each request to the engine with the shortest
	// queue — the paper's "splitting the workload dynamically" alternative
	// (which it notes requires every engine to access the directory,
	// "increasing the cost and complexity of coherence controllers").
	SplitDynamic
)

func (p SplitPolicy) String() string {
	switch p {
	case SplitRoundRobin:
		return "round-robin"
	case SplitRegion:
		return "region"
	case SplitDynamic:
		return "dynamic"
	default:
		return "local/remote"
	}
}

// MarshalText renders the split policy for scenario documents; the
// canonical form is the flag spelling ("local-remote", not "local/remote").
func (p SplitPolicy) MarshalText() ([]byte, error) {
	if p == SplitLocalRemote {
		return []byte("local-remote"), nil
	}
	return []byte(p.String()), nil
}

// UnmarshalText parses a split-policy name.
func (p *SplitPolicy) UnmarshalText(text []byte) error {
	pol, err := ParseSplit(string(text))
	if err != nil {
		return err
	}
	*p = pol
	return nil
}

// ParseSplit resolves a split-policy name; "local/remote" and
// "local-remote" are synonyms.
func ParseSplit(name string) (SplitPolicy, error) {
	switch name {
	case "local-remote", "local/remote":
		return SplitLocalRemote, nil
	case "round-robin":
		return SplitRoundRobin, nil
	case "region":
		return SplitRegion, nil
	case "dynamic":
		return SplitDynamic, nil
	default:
		return 0, fmt.Errorf("config: unknown split policy %q", name)
	}
}

// ArbPolicy selects the dispatch arbitration between the controller's three
// input queues.
type ArbPolicy int

const (
	// ArbPaper is the paper's policy: network responses first, then network
	// requests, then bus requests, except that a bus request that has
	// waited through LivelockLimit network-request dispatches proceeds
	// before further network requests.
	ArbPaper ArbPolicy = iota
	// ArbFIFO dispatches strictly in arrival order (ablation).
	ArbFIFO
)

func (p ArbPolicy) String() string {
	if p == ArbFIFO {
		return "fifo"
	}
	return "paper"
}

// MarshalText renders the arbitration policy for scenario documents.
func (p ArbPolicy) MarshalText() ([]byte, error) { return []byte(p.String()), nil }

// UnmarshalText parses an arbitration-policy name.
func (p *ArbPolicy) UnmarshalText(text []byte) error {
	pol, err := ParseArb(string(text))
	if err != nil {
		return err
	}
	*p = pol
	return nil
}

// ParseArb resolves an arbitration-policy name.
func ParseArb(name string) (ArbPolicy, error) {
	switch name {
	case "paper":
		return ArbPaper, nil
	case "fifo":
		return ArbFIFO, nil
	default:
		return 0, fmt.Errorf("config: unknown arbitration %q", name)
	}
}

// SubOp enumerates the protocol-engine sub-operations of the paper's
// Table 2. A protocol handler is a sequence of sub-operations; its occupancy
// is the sum of their costs for the engine kind in use.
type SubOp int

const (
	// OpDispatch receives and decodes the next request and jumps to its
	// handler (for PPC: read the dispatch-controller register, decode,
	// branch).
	OpDispatch SubOp = iota
	// OpReadBusReg reads a special bus-interface register.
	OpReadBusReg
	// OpWriteBusReg writes a special bus-interface register.
	OpWriteBusReg
	// OpReadNIReg reads a special network-interface register.
	OpReadNIReg
	// OpWriteNIReg writes a special network-interface register.
	OpWriteNIReg
	// OpLatchHeader extracts the request's type and address from the
	// already-fetched dispatch information (the PP's 14-cycle dispatch
	// includes the uncached read of the dispatch-controller register, so
	// both engines pay only a decode here).
	OpLatchHeader
	// OpAssocSearch searches the pending-transaction (MSHR) table: a CAM
	// lookup for HWC, a cached software table probe for the PP.
	OpAssocSearch
	// OpDirCacheRead reads a directory entry that hits in the directory
	// cache (HWC: custom on-chip cache; PPC: the PP's on-chip data cache).
	OpDirCacheRead
	// OpDirCacheWrite writes a directory entry through the directory cache.
	OpDirCacheWrite
	// OpSendHeader composes and sends a network message header (PPC: three
	// uncached stores to NI registers).
	OpSendHeader
	// OpStartDataXfer triggers the direct bus-interface/network-interface
	// data transfer with a single special-register write.
	OpStartDataXfer
	// OpBitField sets, clears, or extracts a bit field (HWC folds these
	// into other actions at zero cost).
	OpBitField
	// OpCondition decides a condition or branch (HWC decides multiple
	// conditions in one cycle at zero marginal cost).
	OpCondition
	// OpCompute is one cycle-equivalent of miscellaneous handler
	// computation.
	OpCompute

	numSubOps
)

var subOpNames = [...]string{
	"dispatch handler",
	"read special bus interface register",
	"write special bus interface register",
	"read special network interface register",
	"write special network interface register",
	"latch request header",
	"pending-transaction table search",
	"directory cache read",
	"directory cache write",
	"compose and send message header",
	"start direct data transfer",
	"bit field operation",
	"decide condition",
	"other computation",
}

func (op SubOp) String() string {
	if op >= 0 && int(op) < len(subOpNames) {
		return subOpNames[op]
	}
	return fmt.Sprintf("SubOp(%d)", int(op))
}

// NumSubOps is the number of defined sub-operations.
const NumSubOps = int(numSubOps)

// subOpKeys are the compact scenario-schema keys of the sub-operations, in
// SubOp order (the long forms in subOpNames stay the human-readable table
// labels).
var subOpKeys = [...]string{
	"dispatch",
	"readBusReg",
	"writeBusReg",
	"readNIReg",
	"writeNIReg",
	"latchHeader",
	"assocSearch",
	"dirCacheRead",
	"dirCacheWrite",
	"sendHeader",
	"startDataXfer",
	"bitField",
	"condition",
	"compute",
}

// Key returns the scenario-schema key of the sub-operation.
func (op SubOp) Key() string {
	if op >= 0 && int(op) < len(subOpKeys) {
		return subOpKeys[op]
	}
	return fmt.Sprintf("subOp%d", int(op))
}

// CostTable gives the occupancy of each sub-operation for each engine kind,
// in compute-processor cycles (Table 2 of the paper, plus the PPCA
// extension column).
type CostTable [numSubOps][numEngineKinds]sim.Time

// Cost returns the occupancy of op on engine kind k.
func (t *CostTable) Cost(k EngineKind, op SubOp) sim.Time { return t[op][k] }

// MarshalJSON renders the table as an object keyed by sub-operation, each
// value the [HWC, PPC, PPCA] occupancy row — the scenario schema's Table 2
// representation. Keys are emitted in SubOp order, so the canonical bytes
// are stable.
func (t CostTable) MarshalJSON() ([]byte, error) {
	var b []byte
	b = append(b, '{')
	for op := SubOp(0); op < numSubOps; op++ {
		if op > 0 {
			b = append(b, ',')
		}
		b = append(b, fmt.Sprintf("%q:[%d,%d,%d]", op.Key(),
			int64(t[op][HWC]), int64(t[op][PPC]), int64(t[op][PPCA]))...)
	}
	b = append(b, '}')
	return b, nil
}

// UnmarshalJSON merges a keyed cost object into the table: rows present in
// the document replace the current values (so a scenario can override a
// single Table 2 row and inherit the rest), unknown keys are rejected.
func (t *CostTable) UnmarshalJSON(data []byte) error {
	var rows map[string][]int64
	if err := json.Unmarshal(data, &rows); err != nil {
		return fmt.Errorf("config: costs: %w", err)
	}
	index := make(map[string]SubOp, numSubOps)
	for op := SubOp(0); op < numSubOps; op++ {
		index[op.Key()] = op
	}
	for key, row := range rows {
		op, ok := index[key]
		if !ok {
			return fmt.Errorf("config: costs: unknown sub-operation %q", key)
		}
		if len(row) != NumEngineKinds {
			return fmt.Errorf("config: costs: %q has %d columns, want %d (HWC, PPC, PPCA)",
				key, len(row), NumEngineKinds)
		}
		for k := 0; k < NumEngineKinds; k++ {
			t[op][k] = sim.Time(row[k])
		}
	}
	return nil
}

// DefaultCosts reflects the paper's Table 2 assumptions:
//   - HWC accesses to on-chip registers take one system cycle (2 CPU
//     cycles); bit operations and conditions are combined with other
//     actions (zero marginal cost).
//   - PP reads of off-chip registers take 4 system cycles (8 CPU cycles),
//     +1 system cycle (2 CPU cycles) for an associative search; PP writes
//     take 2 system cycles (4 CPU cycles); PP compute cycles follow
//     compiled PowerPC instruction counts (about 2 CPU cycles per simple
//     operation here).
//
// The PPCA column models the paper's Section 5 proposal of incremental
// custom hardware added to a protocol processor: a hardware dispatch
// assist (request pre-decoded into on-chip registers), single-store
// message-send and data-path assists, and hardware bit-field extraction;
// the remaining sub-operations keep the commodity-PP costs.
func DefaultCosts() CostTable {
	var t CostTable
	set := func(op SubOp, hwc, ppc, ppca sim.Time) { t[op] = [numEngineKinds]sim.Time{hwc, ppc, ppca} }
	set(OpDispatch, 2, 14, 6)
	set(OpReadBusReg, 2, 8, 8)
	set(OpWriteBusReg, 2, 4, 4)
	set(OpReadNIReg, 2, 8, 8)
	set(OpWriteNIReg, 2, 4, 4)
	set(OpLatchHeader, 2, 2, 2)
	set(OpAssocSearch, 2, 6, 4)
	set(OpDirCacheRead, 2, 2, 2)
	set(OpDirCacheWrite, 2, 2, 2)
	set(OpSendHeader, 2, 8, 4)
	set(OpStartDataXfer, 2, 4, 2)
	set(OpBitField, 0, 2, 0)
	set(OpCondition, 0, 2, 2)
	set(OpCompute, 0, 2, 2)
	return t
}

// Config is the complete parameter set for one simulation. Use Base() and
// mutate copies; the struct is plain data and safe to copy.
//
// Every exported field carries a JSON tag: the struct doubles as the
// machine section of the ccnuma-scenario/v1 document (internal/scenario),
// and cclint's config-schema check rejects fields that would silently
// bypass -spec.
type Config struct {
	// Geometry.
	Nodes        int `json:"nodes"`        // SMP nodes in the machine
	ProcsPerNode int `json:"procsPerNode"` // compute processors per node

	// Controller architecture.
	Engine EngineKind `json:"engine"`
	// TwoEngines selects the paper's two-engine designs (2HWC / 2PPC).
	TwoEngines bool `json:"twoEngines"`
	// NumEngines, when positive, overrides TwoEngines with an arbitrary
	// engine count (the paper's Section 5 extension); more than two
	// engines require the region or round-robin split.
	NumEngines  int         `json:"numEngines"`
	Split       SplitPolicy `json:"split"`
	Arbitration ArbPolicy   `json:"arbitration"`
	// NodeArchs, when non-empty, configures heterogeneous controllers:
	// entry i names node i's architecture ("HWC", "2PPC", ...; an empty
	// entry inherits Engine/TwoEngines/NumEngines). The paper's Section 5
	// discussion of asymmetric designs — e.g. custom-hardware home nodes
	// serving commodity protocol-processor remotes — is expressed here.
	NodeArchs []string `json:"nodeArchs,omitempty"`
	// RegionBytes is the interleaving granularity of SplitRegion.
	RegionBytes int `json:"regionBytes"`
	// LivelockLimit is the number of consecutive network-request dispatches
	// after which a waiting bus request is served first (paper: "e.g. four").
	LivelockLimit int `json:"livelockLimit"`
	// DirectDataPath enables the direct bus-interface/network-interface
	// path that forwards dirty-remote write-backs to the home node without
	// waiting for handler dispatch.
	DirectDataPath bool `json:"directDataPath"`

	// Cache hierarchy.
	LineSize int `json:"lineSize"` // bytes per cache line (base: 128)
	L1Size   int `json:"l1Size"`   // bytes (16 KB)
	L1Assoc  int `json:"l1Assoc"`
	L2Size   int `json:"l2Size"` // bytes (1 MB)
	L2Assoc  int `json:"l2Assoc"`
	// L1HitTime and L2HitTime are load-to-use latencies; L2MissDetect is
	// the time to discover an L2 miss and issue the bus request (Table 3:
	// "detect L2 miss" = 8).
	L1HitTime    sim.Time `json:"l1HitTime"`
	L2HitTime    sim.Time `json:"l2HitTime"`
	L2MissDetect sim.Time `json:"l2MissDetect"`

	// SMP bus (100 MHz, 16 bytes wide, fully pipelined, split transaction,
	// separate address and data buses).
	BusCycle       sim.Time `json:"busCycle"`       // CPU cycles per bus cycle (2)
	AddrStrobe     sim.Time `json:"addrStrobe"`     // address strobe to next address strobe (4)
	BusArb         sim.Time `json:"busArb"`         // arbitration before the strobe
	SnoopLatch     sim.Time `json:"snoopLatch"`     // strobe to controller queue insertion
	MemAccess      sim.Time `json:"memAccess"`      // address strobe to start of data from memory (20)
	CacheToCache   sim.Time `json:"cacheToCache"`   // address strobe to start of data from another cache
	CriticalQuad   sim.Time `json:"criticalQuad"`   // data start to critical quad word delivered
	FillRestart    sim.Time `json:"fillRestart"`    // L2/L1 fill to processor restart
	BusRetry       sim.Time `json:"busRetry"`       // back-off before re-arbitrating a retried transaction
	MemBanks       int      `json:"memBanks"`       // interleaved banks per node
	BankBusy       sim.Time `json:"bankBusy"`       // bank occupancy per line access
	WriteBackDepth int      `json:"writeBackDepth"` // write-back buffer entries per processor

	// Network (Table 1: point-to-point 14 cycles = 70 ns; 32-byte links).
	NetLatency   sim.Time `json:"netLatency"`   // point-to-point latency (crossbar) / router cut-through (mesh)
	NetFlitBytes int      `json:"netFlitBytes"` // link width per flit
	NetFlitTime  sim.Time `json:"netFlitTime"`  // cycles per flit on a port (100 MHz link: 2)
	NetHeader    int      `json:"netHeader"`    // header bytes per message
	// Topology selects the interconnect structure; NetHopLatency is the
	// per-hop router+wire latency of the 2-D mesh.
	Topology      Topology `json:"topology"`
	NetHopLatency sim.Time `json:"netHopLatency"`

	// Directory.
	DirCacheEntries int      `json:"dirCacheEntries"` // write-through directory cache entries (8K)
	DirDRAMRead     sim.Time `json:"dirDRAMRead"`     // controller-side DRAM directory read
	DirDRAMWrite    sim.Time `json:"dirDRAMWrite"`    // controller-side DRAM directory write

	// Protocol-engine sub-operation occupancies (Table 2).
	Costs CostTable `json:"costs"`

	// Memory layout.
	PageSize  int             `json:"pageSize"` // bytes per page for placement
	Placement PlacementPolicy `json:"placement"`

	// Synchronization.
	BarrierCost sim.Time `json:"barrierCost"` // fixed cost of a barrier episode
	LockRetry   sim.Time `json:"lockRetry"`   // back-off before a queued lock retry

	// SimLimit bounds simulated time to catch protocol livelock (0 = none).
	SimLimit sim.Time `json:"simLimit"`

	// Attribution enables per-transaction causal latency attribution: every
	// miss episode carries a span ID and each component checkpoints the
	// stage it contributes (see internal/obs). Off by default; the disabled
	// path records nothing and leaves event schedules byte-identical.
	// omitempty keeps canonical scenario encodings (and their fingerprints)
	// unchanged when the knob is off.
	Attribution bool `json:"attribution,omitempty"`

	// SimShards splits one simulation across this many event-engine shards
	// executed on separate OS threads, synchronized in conservative time
	// windows one network latency wide (see internal/sim's Cluster). Nodes
	// are assigned to shards in contiguous blocks; 0 or 1 runs the literal
	// serial event loop. Results are byte-identical for any value (pinned
	// by the golden determinism tests), so the knob is excluded from
	// canonical scenario encodings and fingerprints — it tunes the host,
	// not the experiment.
	SimShards int `json:"simShards,omitempty"`

	// Robustness / flow control. The paper's model assumes infinitely deep
	// controller queues and a lossless network; every knob below defaults to
	// its zero value, which preserves that model cycle-for-cycle (pinned by
	// the golden test in internal/workload). Turning them on buys survival
	// of finite buffering and injected transient faults.

	// QueueDepth bounds each protocol-engine input queue (0 = unbounded).
	// A network request arriving at a full request queue is NACKed back to
	// its requester; a bus request arriving at a full bus queue is aborted
	// on the bus (the requester sees RetryNeeded and backs off). Response
	// queues are never limited: responses sink into reserved MSHR slots, so
	// bounding them could deadlock the guaranteed delivery channel.
	QueueDepth int `json:"queueDepth"`
	// NIPortDepth bounds the per-node network-interface output buffer, in
	// messages (0 = unbounded). Sends beyond the depth park in FIFO order
	// until the port drains (back-pressure into the controller).
	NIPortDepth int `json:"niPortDepth"`
	// NackDelay is the base back-off before a NACKed request is re-issued;
	// it doubles per consecutive NACK up to NackBackoffMax (0 = BusRetry).
	NackDelay sim.Time `json:"nackDelay"`
	// NackBackoffMax caps the exponential NACK back-off (0 = no cap).
	NackBackoffMax sim.Time `json:"nackBackoffMax"`
	// RetryBudget bounds consecutive NACK/timeout retries of one request
	// before the controller declares the line unserviceable and panics with
	// a diagnosis (0 = unbounded).
	RetryBudget int `json:"retryBudget"`
	// RequestTimeout re-issues an outstanding MSHR request that has seen no
	// response for this many cycles, recovering transactions lost to
	// injected faults (0 = no timeouts).
	RequestTimeout sim.Time `json:"requestTimeout"`
	// NetReliable models link-level recovery (CRC detection, sequence
	// numbers, a sender-side replay buffer): dropped or corrupted messages
	// are retransmitted after NetRetryDelay and duplicated messages are
	// discarded at the receiving interface. Without it, injected network
	// faults reach the protocol raw (used by the verify detection tests).
	NetReliable bool `json:"netReliable"`
	// NetRetryDelay is the link-level retransmission delay (0 = NetLatency).
	NetRetryDelay sim.Time `json:"netRetryDelay"`
	// BusBackoffMax, when positive, turns the processors' constant BusRetry
	// back-off into an exponential one capped at this value, shedding bus
	// load under NACK storms.
	BusBackoffMax sim.Time `json:"busBackoffMax"`
}

// Robust reports whether any recovery knob is enabled; the controller uses
// it to gate fault-tolerant message handling (tolerating stray or duplicate
// responses instead of treating them as protocol bugs).
func (c *Config) Robust() bool {
	return c.QueueDepth > 0 || c.RequestTimeout > 0 || c.NetReliable
}

// WithRobustness returns a copy of c with every recovery knob set to a
// sane default: finite queues, NACK/retry flow control, request timeouts,
// and a reliable link layer. ccchaos and the fault sweep run with these.
func (c Config) WithRobustness() Config {
	c.QueueDepth = 16
	c.NIPortDepth = 32
	c.NackDelay = 30
	c.NackBackoffMax = 2000
	c.RetryBudget = 25
	c.RequestTimeout = 50_000
	c.NetReliable = true
	c.NetRetryDelay = 100
	c.BusBackoffMax = 640
	return c
}

// Topology selects the interconnect structure.
type Topology int

const (
	// TopoCrossbar is the paper's IBM switch: a single-stage network with
	// one fixed point-to-point latency between any pair of nodes.
	TopoCrossbar Topology = iota
	// TopoMesh2D is a 2-D mesh with dimension-order (X then Y) routing:
	// latency grows with Manhattan distance and messages contend for the
	// individual links along their route (an extension beyond the paper's
	// switch, for studying topology sensitivity).
	TopoMesh2D
)

func (t Topology) String() string {
	if t == TopoMesh2D {
		return "mesh2d"
	}
	return "crossbar"
}

// MarshalText renders the topology for scenario documents.
func (t Topology) MarshalText() ([]byte, error) { return []byte(t.String()), nil }

// UnmarshalText parses a topology name.
func (t *Topology) UnmarshalText(text []byte) error {
	topo, err := ParseTopology(string(text))
	if err != nil {
		return err
	}
	*t = topo
	return nil
}

// ParseTopology resolves a topology name; "mesh" is the flag spelling of
// "mesh2d".
func ParseTopology(name string) (Topology, error) {
	switch name {
	case "crossbar":
		return TopoCrossbar, nil
	case "mesh", "mesh2d":
		return TopoMesh2D, nil
	default:
		return 0, fmt.Errorf("config: unknown topology %q", name)
	}
}

// PlacementPolicy selects how pages are assigned home nodes.
type PlacementPolicy int

const (
	// PlaceRoundRobin assigns pages to nodes round-robin (the paper's
	// default policy).
	PlaceRoundRobin PlacementPolicy = iota
	// PlaceFirstTouch assigns a page to the node of the first processor
	// that touches it after initialization.
	PlaceFirstTouch
	// PlaceExplicit honours per-allocation placement hints (used for FFT,
	// which the paper runs with programmer-optimized placement).
	PlaceExplicit
)

func (p PlacementPolicy) String() string {
	switch p {
	case PlaceFirstTouch:
		return "first-touch"
	case PlaceExplicit:
		return "explicit"
	default:
		return "round-robin"
	}
}

// MarshalText renders the placement policy for scenario documents.
func (p PlacementPolicy) MarshalText() ([]byte, error) { return []byte(p.String()), nil }

// UnmarshalText parses a placement-policy name.
func (p *PlacementPolicy) UnmarshalText(text []byte) error {
	pol, err := ParsePlacement(string(text))
	if err != nil {
		return err
	}
	*p = pol
	return nil
}

// ParsePlacement resolves a placement-policy name.
func ParsePlacement(name string) (PlacementPolicy, error) {
	switch name {
	case "round-robin":
		return PlaceRoundRobin, nil
	case "first-touch":
		return PlaceFirstTouch, nil
	case "explicit":
		return PlaceExplicit, nil
	default:
		return 0, fmt.Errorf("config: unknown placement policy %q", name)
	}
}

// Base returns the paper's base system configuration: 16 four-processor SMP
// nodes, 128-byte lines, 16 KB L1 / 1 MB L2 4-way LRU caches, 100 MHz
// 16-byte split-transaction bus, 70 ns network, HWC controller with one
// engine.
func Base() Config {
	return Config{
		Nodes:        16,
		ProcsPerNode: 4,

		Engine:         HWC,
		TwoEngines:     false,
		Split:          SplitLocalRemote,
		RegionBytes:    4096,
		Arbitration:    ArbPaper,
		LivelockLimit:  4,
		DirectDataPath: true,

		LineSize:     128,
		L1Size:       16 * 1024,
		L1Assoc:      4,
		L2Size:       1024 * 1024,
		L2Assoc:      4,
		L1HitTime:    1,
		L2HitTime:    8,
		L2MissDetect: 8,

		BusCycle:       2,
		AddrStrobe:     4,
		BusArb:         4,
		SnoopLatch:     4,
		MemAccess:      20,
		CacheToCache:   16,
		CriticalQuad:   4,
		FillRestart:    10,
		BusRetry:       20,
		MemBanks:       4,
		BankBusy:       40,
		WriteBackDepth: 4,

		NetLatency:    14,
		NetFlitBytes:  32,
		NetFlitTime:   2,
		NetHeader:     8,
		Topology:      TopoCrossbar,
		NetHopLatency: 4,

		DirCacheEntries: 8192,
		DirDRAMRead:     20,
		DirDRAMWrite:    20,

		Costs: DefaultCosts(),

		PageSize:  4096,
		Placement: PlaceRoundRobin,

		BarrierCost: 200,
		LockRetry:   40,
	}
}

// TotalProcs returns the machine's processor count.
func (c *Config) TotalProcs() int { return c.Nodes * c.ProcsPerNode }

// LineDataFlits returns the number of network flits occupied by a message
// carrying one cache line plus a header.
func (c *Config) LineDataFlits() int {
	return (c.LineSize + c.NetHeader + c.NetFlitBytes - 1) / c.NetFlitBytes
}

// ControlFlits returns the flits occupied by a header-only control message.
func (c *Config) ControlFlits() int {
	return (c.NetHeader + c.NetFlitBytes - 1) / c.NetFlitBytes
}

// BusDataTime returns the data-bus occupancy of a full cache-line transfer
// (16 bytes per 100 MHz bus cycle).
func (c *Config) BusDataTime() sim.Time {
	cycles := (c.LineSize + 15) / 16
	return sim.Time(cycles) * c.BusCycle
}

// FieldError is a validation failure that names the offending
// configuration field; callers can errors.As it out of Validate's result
// to map a failure back to the scenario-schema field.
type FieldError struct {
	Field string // Config field name (e.g. "Nodes", "NodeArchs[3]")
	Err   error
}

func (e *FieldError) Error() string { return "config: " + e.Field + ": " + e.Err.Error() }

func (e *FieldError) Unwrap() error { return e.Err }

// fieldErr builds a FieldError for field with a formatted description.
func fieldErr(field, format string, args ...interface{}) error {
	return &FieldError{Field: field, Err: fmt.Errorf(format, args...)}
}

// Validate checks internal consistency and returns a *FieldError naming
// the offending field for the first problem found.
func (c *Config) Validate() error {
	switch {
	case c.Nodes <= 0:
		return fieldErr("Nodes", "must be positive, got %d", c.Nodes)
	case c.ProcsPerNode <= 0:
		return fieldErr("ProcsPerNode", "must be positive, got %d", c.ProcsPerNode)
	case c.Nodes&(c.Nodes-1) != 0 && c.Topology != TopoCrossbar:
		return fieldErr("Nodes", "must be a power of two for topology %v, got %d", c.Topology, c.Nodes)
	case c.LineSize <= 0 || c.LineSize&(c.LineSize-1) != 0:
		return fieldErr("LineSize", "must be a positive power of two, got %d", c.LineSize)
	case c.PageSize < c.LineSize || c.PageSize&(c.PageSize-1) != 0:
		return fieldErr("PageSize", "must be a power of two >= LineSize, got %d", c.PageSize)
	case c.L1Assoc <= 0:
		return fieldErr("L1Assoc", "must be positive, got %d", c.L1Assoc)
	case c.L2Assoc <= 0:
		return fieldErr("L2Assoc", "must be positive, got %d", c.L2Assoc)
	case c.L1Size <= 0 || c.L1Size%(c.L1Assoc*c.LineSize) != 0:
		return fieldErr("L1Size", "geometry %d/%d-way/%dB does not divide evenly", c.L1Size, c.L1Assoc, c.LineSize)
	case c.L2Size <= 0 || c.L2Size%(c.L2Assoc*c.LineSize) != 0:
		return fieldErr("L2Size", "geometry %d/%d-way/%dB does not divide evenly", c.L2Size, c.L2Assoc, c.LineSize)
	case c.MemBanks <= 0:
		return fieldErr("MemBanks", "must be positive, got %d", c.MemBanks)
	case c.Engine < 0 || c.Engine >= EngineKind(numEngineKinds):
		return fieldErr("Engine", "unknown engine kind %d", int(c.Engine))
	case c.NumEngines < 0:
		return fieldErr("NumEngines", "must be non-negative, got %d", c.NumEngines)
	case c.NumEngines > 2 && c.Split == SplitLocalRemote:
		return fieldErr("Split", "%d engines require the region or round-robin split", c.NumEngines)
	case c.Split == SplitRegion && (c.RegionBytes < c.LineSize || c.RegionBytes&(c.RegionBytes-1) != 0):
		return fieldErr("RegionBytes", "must be a power of two >= LineSize, got %d", c.RegionBytes)
	case c.LivelockLimit <= 0:
		return fieldErr("LivelockLimit", "must be positive, got %d", c.LivelockLimit)
	case c.NetFlitBytes <= 0:
		return fieldErr("NetFlitBytes", "must be positive, got %d", c.NetFlitBytes)
	case c.QueueDepth < 0:
		return fieldErr("QueueDepth", "must be non-negative, got %d", c.QueueDepth)
	case c.NIPortDepth < 0:
		return fieldErr("NIPortDepth", "must be non-negative, got %d", c.NIPortDepth)
	case c.RetryBudget < 0:
		return fieldErr("RetryBudget", "must be non-negative, got %d", c.RetryBudget)
	case c.NackDelay < 0:
		return fieldErr("NackDelay", "must be non-negative, got %d", int64(c.NackDelay))
	case c.NackBackoffMax < 0:
		return fieldErr("NackBackoffMax", "must be non-negative, got %d", int64(c.NackBackoffMax))
	case c.RequestTimeout < 0:
		return fieldErr("RequestTimeout", "must be non-negative, got %d", int64(c.RequestTimeout))
	case c.NetRetryDelay < 0:
		return fieldErr("NetRetryDelay", "must be non-negative, got %d", int64(c.NetRetryDelay))
	case c.BusBackoffMax < 0:
		return fieldErr("BusBackoffMax", "must be non-negative, got %d", int64(c.BusBackoffMax))
	case c.QueueDepth > 0 && c.QueueDepth < 2:
		return fieldErr("QueueDepth", "below 2 cannot hold a request and its replay, got %d", c.QueueDepth)
	case c.SimShards < 0:
		return fieldErr("SimShards", "must be non-negative, got %d", c.SimShards)
	case c.SimShards > c.Nodes:
		return fieldErr("SimShards", "cannot exceed Nodes (%d), got %d", c.Nodes, c.SimShards)
	case c.SimShards > 1 && c.Topology == TopoMesh2D:
		return fieldErr("SimShards", "mesh topology routes through shared per-hop links and cannot shard; use the crossbar or SimShards <= 1")
	}
	if err := c.validateCosts(); err != nil {
		return err
	}
	return c.validateNodeArchs()
}

// validateCosts rejects occupancy overrides outside the model's range: no
// negative occupancy, and a positive dispatch cost for every engine kind —
// a zero-cost dispatch would let handlers complete in zero cycles, which
// the dispatch loop treats as a protocol bug.
func (c *Config) validateCosts() error {
	for op := SubOp(0); op < numSubOps; op++ {
		for k := EngineKind(0); k < numEngineKinds; k++ {
			if c.Costs[op][k] < 0 {
				return fieldErr(fmt.Sprintf("Costs[%s][%s]", op.Key(), k),
					"occupancy must be non-negative, got %d", int64(c.Costs[op][k]))
			}
		}
	}
	for k := EngineKind(0); k < numEngineKinds; k++ {
		if c.Costs[OpDispatch][k] <= 0 {
			return fieldErr(fmt.Sprintf("Costs[%s][%s]", OpDispatch.Key(), k),
				"dispatch occupancy must be positive, got %d", int64(c.Costs[OpDispatch][k]))
		}
	}
	return nil
}

// validateNodeArchs checks the heterogeneous-node overrides: the list must
// be empty or exactly node-length, every entry must parse, and a node with
// more than two engines needs a split policy that reaches them all.
func (c *Config) validateNodeArchs() error {
	if len(c.NodeArchs) == 0 {
		return nil
	}
	if len(c.NodeArchs) != c.Nodes {
		return fieldErr("NodeArchs", "has %d entries for %d nodes (must be empty or one entry per node)",
			len(c.NodeArchs), c.Nodes)
	}
	for n, name := range c.NodeArchs {
		if name == "" {
			continue
		}
		_, count, err := ParseArch(name)
		if err != nil {
			return fieldErr(fmt.Sprintf("NodeArchs[%d]", n), "%v", err)
		}
		if count > 2 && c.Split == SplitLocalRemote {
			return fieldErr(fmt.Sprintf("NodeArchs[%d]", n),
				"%d engines require the region or round-robin split", count)
		}
	}
	return nil
}

// EngineCount returns the number of protocol engines per controller.
func (c *Config) EngineCount() int {
	if c.NumEngines > 0 {
		return c.NumEngines
	}
	if c.TwoEngines {
		return 2
	}
	return 1
}

// RegionShift returns log2(RegionBytes) for the region split.
func (c *Config) RegionShift() uint {
	s := uint(0)
	for 1<<s < c.RegionBytes {
		s++
	}
	return s
}

// ArchName returns the paper's name for the controller architecture
// selected by this configuration: HWC, PPC, 2HWC, 2PPC, nXXX for the
// extended engine counts, or a mixed(...) summary for heterogeneous
// machines.
func (c *Config) ArchName() string {
	if c.Heterogeneous() {
		return c.mixedArchName()
	}
	return archName(c.Engine, c.EngineCount())
}

// archName renders the paper-style name for one (kind, count) pair.
func archName(k EngineKind, count int) string {
	if count > 1 {
		return fmt.Sprintf("%d%s", count, k)
	}
	return k.String()
}

// mixedArchName summarizes a heterogeneous machine deterministically:
// per-node architecture names with node counts, ordered by first
// appearance in node order, e.g. "mixed(HWCx4,2PPCx12)".
func (c *Config) mixedArchName() string {
	counts := map[string]int{}
	var order []string
	for n := 0; n < c.Nodes; n++ {
		name := c.NodeArchName(n)
		if counts[name] == 0 {
			order = append(order, name)
		}
		counts[name]++
	}
	parts := make([]string, 0, len(order))
	for _, name := range order {
		parts = append(parts, fmt.Sprintf("%sx%d", name, counts[name]))
	}
	return "mixed(" + strings.Join(parts, ",") + ")"
}

// ParseArch resolves a controller architecture name — an engine kind with
// an optional leading engine count: "HWC", "PPC", "2HWC", "2PPCA", "4PPC".
func ParseArch(name string) (EngineKind, int, error) {
	digits := 0
	for digits < len(name) && name[digits] >= '0' && name[digits] <= '9' {
		digits++
	}
	count := 1
	if digits > 0 {
		n, err := strconv.Atoi(name[:digits])
		if err != nil || n < 1 {
			return 0, 0, fmt.Errorf("config: unknown architecture %q", name)
		}
		count = n
	}
	kind, err := ParseEngineKind(name[digits:])
	if err != nil {
		return 0, 0, fmt.Errorf("config: unknown architecture %q", name)
	}
	return kind, count, nil
}

// WithArch returns a copy of c configured for the named homogeneous
// architecture ("HWC", "PPC", "2HWC", "2PPC", ... with optional engine
// count prefix). Any per-node overrides are cleared.
func (c Config) WithArch(name string) (Config, error) {
	kind, count, err := ParseArch(name)
	if err != nil {
		return c, err
	}
	c.Engine = kind
	c.TwoEngines = count == 2
	c.NumEngines = 0
	if count > 2 {
		c.NumEngines = count
	}
	c.NodeArchs = nil
	return c, nil
}

// Heterogeneous reports whether any node carries a per-node architecture
// override.
func (c *Config) Heterogeneous() bool {
	base, baseCount := c.Engine, c.EngineCount()
	for n := range c.NodeArchs {
		if c.NodeArchs[n] == "" {
			continue
		}
		if kind, count := c.nodeArch(n); kind != base || count != baseCount {
			return true
		}
	}
	return false
}

// NodeArchName returns node n's architecture name, honouring NodeArchs.
func (c *Config) NodeArchName(n int) string {
	if n < len(c.NodeArchs) && c.NodeArchs[n] != "" {
		return c.NodeArchs[n]
	}
	return archName(c.Engine, c.EngineCount())
}

// nodeArch resolves node n's engine kind and count. Config must have
// passed Validate; an unparsable override is a programming error here.
func (c *Config) nodeArch(n int) (EngineKind, int) {
	if n < len(c.NodeArchs) && c.NodeArchs[n] != "" {
		kind, count, err := ParseArch(c.NodeArchs[n])
		if err != nil {
			panic(fmt.Sprintf("config: NodeArchs[%d] = %q not validated: %v", n, c.NodeArchs[n], err))
		}
		return kind, count
	}
	return c.Engine, c.EngineCount()
}

// NodeEngineKind returns the protocol-engine implementation of node n's
// controller.
func (c *Config) NodeEngineKind(n int) EngineKind {
	kind, _ := c.nodeArch(n)
	return kind
}

// NodeEngineCount returns the number of protocol engines on node n's
// controller.
func (c *Config) NodeEngineCount(n int) int {
	_, count := c.nodeArch(n)
	return count
}

// EngineCounts returns the per-node engine counts (what stats.NewRun
// sizes its per-controller slices from).
func (c *Config) EngineCounts() []int {
	counts := make([]int, c.Nodes)
	for n := range counts {
		counts[n] = c.NodeEngineCount(n)
	}
	return counts
}

// MaxEngineCount returns the largest engine count of any node's
// controller (the fault generator's engine-index range).
func (c *Config) MaxEngineCount() int {
	max := c.EngineCount()
	for n := range c.NodeArchs {
		if count := c.NodeEngineCount(n); count > max {
			max = count
		}
	}
	return max
}

// Architectures lists the four controller architectures in the paper's
// presentation order.
var Architectures = []string{"HWC", "2HWC", "PPC", "2PPC"}
