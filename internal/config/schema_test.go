package config

import (
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"
)

// TestValidateFieldErrorEdges drives Validate through the rejection edges
// the scenario loader depends on, checking both that the configuration is
// rejected and that the error names the offending field.
func TestValidateFieldErrorEdges(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
		field  string
	}{
		{"negative nodes", func(c *Config) { c.Nodes = -4 }, "Nodes"},
		{"negative procs", func(c *Config) { c.ProcsPerNode = -1 }, "ProcsPerNode"},
		{"zero l1 assoc", func(c *Config) { c.L1Assoc = 0 }, "L1Assoc"},
		{"negative l2 assoc", func(c *Config) { c.L2Assoc = -2 }, "L2Assoc"},
		{"zero l1 size", func(c *Config) { c.L1Size = 0 }, "L1"},
		{"negative engines", func(c *Config) { c.NumEngines = -1 }, "NumEngines"},
		{"many engines need split", func(c *Config) { c.NumEngines = 4; c.Split = SplitLocalRemote }, "Split"},
		{"region bytes", func(c *Config) { c.NumEngines = 4; c.Split = SplitRegion; c.RegionBytes = 100 }, "RegionBytes"},
		{"bad engine kind", func(c *Config) { c.Engine = EngineKind(99) }, "Engine"},
		{"negative occupancy", func(c *Config) { c.Costs[OpSendHeader][PPC] = -1 }, "Costs[sendHeader][PPC]"},
		{"zero dispatch", func(c *Config) { c.Costs[OpDispatch][HWC] = 0 }, "Costs[dispatch][HWC]"},
		{"node archs length", func(c *Config) { c.NodeArchs = []string{"HWC"} }, "NodeArchs"},
		{"node archs name", func(c *Config) {
			c.Nodes = 2
			c.NodeArchs = []string{"HWC", "XYZ"}
		}, "NodeArchs[1]"},
		{"node archs split", func(c *Config) {
			c.Nodes = 2
			c.NodeArchs = []string{"4PPC", "HWC"}
		}, "NodeArchs[0]"},
		{"negative queue depth", func(c *Config) { c.QueueDepth = -1 }, "QueueDepth"},
		{"queue depth one", func(c *Config) { c.QueueDepth = 1 }, "QueueDepth"},
		{"negative nack delay", func(c *Config) { c.NackDelay = -5 }, "NackDelay"},
	}
	for _, tc := range cases {
		c := Base()
		tc.mutate(&c)
		err := c.Validate()
		if err == nil {
			t.Errorf("%s: expected error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.field) {
			t.Errorf("%s: error %q does not name field %q", tc.name, err, tc.field)
		}
		var fe *FieldError
		if !errors.As(err, &fe) {
			t.Errorf("%s: error %T is not a *FieldError", tc.name, err)
		}
	}
}

// TestFieldErrorUnwrap checks the wrapped-error contract: errors.As
// recovers the field name and Unwrap exposes the cause.
func TestFieldErrorUnwrap(t *testing.T) {
	c := Base()
	c.LineSize = 96
	err := c.Validate()
	var fe *FieldError
	if !errors.As(err, &fe) {
		t.Fatalf("Validate error %T does not unwrap to *FieldError", err)
	}
	if fe.Field != "LineSize" {
		t.Errorf("FieldError.Field = %q, want LineSize", fe.Field)
	}
	if fe.Unwrap() == nil {
		t.Error("FieldError.Unwrap returned nil")
	}
	if !strings.HasPrefix(err.Error(), "config: LineSize:") {
		t.Errorf("error %q does not follow the config: <field>: format", err)
	}
}

// TestConfigJSONTagsComplete walks Config (and every in-package struct
// reachable from it) with reflection and requires a json tag on each
// exported field — the same contract the config-schema lint check
// enforces at type-check time.
func TestConfigJSONTagsComplete(t *testing.T) {
	seen := map[reflect.Type]bool{}
	var walk func(rt reflect.Type)
	walk = func(rt reflect.Type) {
		if seen[rt] || rt.Kind() != reflect.Struct {
			return
		}
		seen[rt] = true
		for i := 0; i < rt.NumField(); i++ {
			f := rt.Field(i)
			if !f.IsExported() {
				continue
			}
			if _, ok := f.Tag.Lookup("json"); !ok {
				t.Errorf("%s.%s has no json tag; it cannot appear in a scenario document", rt.Name(), f.Name)
			}
			ft := f.Type
			for ft.Kind() == reflect.Ptr || ft.Kind() == reflect.Slice || ft.Kind() == reflect.Array {
				ft = ft.Elem()
			}
			if ft.PkgPath() == rt.PkgPath() {
				walk(ft)
			}
		}
	}
	walk(reflect.TypeOf(Config{}))
}

// TestConfigJSONRoundTrip serializes a configuration with every category
// of field moved off its default — geometry, enums, costs, robustness
// knobs, per-node overrides — and requires the decode to reproduce it
// exactly. This is the schema-completeness guarantee behind replay: any
// field that fails to round-trip would silently revert to a default.
func TestConfigJSONRoundTrip(t *testing.T) {
	c := Base()
	c.Nodes = 8
	c.ProcsPerNode = 2
	c.Engine = PPC
	c.TwoEngines = true
	c.Split = SplitRegion
	c.RegionBytes = 8192
	c.Arbitration = ArbFIFO
	c.Topology = TopoMesh2D
	c.NetHopLatency = 9
	c.Placement = PlaceFirstTouch
	c.NodeArchs = []string{"HWC", "HWC", "PPC", "PPC", "2HWC", "2HWC", "PPCA", "PPCA"}
	c.Costs[OpSendHeader][PPC] = 33
	c.Costs[OpDispatch][PPCA] = 7
	c = c.WithRobustness()
	c.SimLimit = 123_456

	data, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	var back Config
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(c, back) {
		t.Errorf("config did not survive the JSON round trip:\n got %+v\nwant %+v", back, c)
	}
}

// TestCostTableJSONMerge pins the overlay semantics of the Table 2 cost
// matrix: rows present in the document replace the defaults, absent rows
// inherit them, and unknown row names or malformed rows are rejected.
func TestCostTableJSONMerge(t *testing.T) {
	c := Base()
	if err := json.Unmarshal([]byte(`{"costs":{"sendHeader":[3,21,9]}}`), &c); err != nil {
		t.Fatal(err)
	}
	if got := c.Costs.Cost(PPC, OpSendHeader); got != 21 {
		t.Errorf("overridden sendHeader[PPC] = %d, want 21", got)
	}
	def := DefaultCosts()
	if got := c.Costs.Cost(PPC, OpDispatch); got != def.Cost(PPC, OpDispatch) {
		t.Errorf("absent dispatch row did not inherit the default: got %d", got)
	}

	var ct CostTable
	if err := json.Unmarshal([]byte(`{"bogusRow":[1,2,3]}`), &ct); err == nil {
		t.Error("unknown cost row was accepted")
	}
	if err := json.Unmarshal([]byte(`{"dispatch":[1,2]}`), &ct); err == nil {
		t.Error("short cost row was accepted")
	}
}

// TestParseArch covers the count-prefixed architecture grammar shared by
// -arch, sweep archs, and per-node overrides.
func TestParseArch(t *testing.T) {
	cases := []struct {
		in    string
		kind  EngineKind
		count int
		ok    bool
	}{
		{"HWC", HWC, 1, true},
		{"PPC", PPC, 1, true},
		{"PPCA", PPCA, 1, true},
		{"2HWC", HWC, 2, true},
		{"2PPCA", PPCA, 2, true},
		{"4PPC", PPC, 4, true},
		{"16HWC", HWC, 16, true},
		{"0HWC", 0, 0, false},
		{"-2PPC", 0, 0, false},
		{"2", 0, 0, false},
		{"", 0, 0, false},
		{"XYZ", 0, 0, false},
	}
	for _, tc := range cases {
		kind, count, err := ParseArch(tc.in)
		if tc.ok != (err == nil) {
			t.Errorf("ParseArch(%q) error = %v, want ok=%v", tc.in, err, tc.ok)
			continue
		}
		if tc.ok && (kind != tc.kind || count != tc.count) {
			t.Errorf("ParseArch(%q) = (%v, %d), want (%v, %d)", tc.in, kind, count, tc.kind, tc.count)
		}
	}
}

// TestHeterogeneousHelpers exercises the per-node accessors on a mixed
// machine: node-level kinds and engine counts, the ragged count slice, and
// the mixed architecture name.
func TestHeterogeneousHelpers(t *testing.T) {
	c := Base()
	c.Nodes = 4
	c.NodeArchs = []string{"HWC", "2PPC", "PPC", "2PPC"}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if !c.Heterogeneous() {
		t.Error("Heterogeneous() = false for a mixed machine")
	}
	wantKinds := []EngineKind{HWC, PPC, PPC, PPC}
	wantCounts := []int{1, 2, 1, 2}
	for n := 0; n < c.Nodes; n++ {
		if k := c.NodeEngineKind(n); k != wantKinds[n] {
			t.Errorf("NodeEngineKind(%d) = %v, want %v", n, k, wantKinds[n])
		}
		if cnt := c.NodeEngineCount(n); cnt != wantCounts[n] {
			t.Errorf("NodeEngineCount(%d) = %d, want %d", n, cnt, wantCounts[n])
		}
	}
	if got := c.EngineCounts(); !reflect.DeepEqual(got, wantCounts) {
		t.Errorf("EngineCounts() = %v, want %v", got, wantCounts)
	}
	if got := c.MaxEngineCount(); got != 2 {
		t.Errorf("MaxEngineCount() = %d, want 2", got)
	}
	name := c.ArchName()
	if !strings.Contains(name, "mixed") || !strings.Contains(name, "HWC") || !strings.Contains(name, "2PPC") {
		t.Errorf("ArchName() = %q, want a mixed(...) name listing both architectures", name)
	}

	// A homogeneous NodeArchs list is not heterogeneous and keeps the
	// plain architecture name.
	c.NodeArchs = []string{"HWC", "HWC", "HWC", "HWC"}
	if c.Heterogeneous() {
		t.Error("Heterogeneous() = true for a uniform NodeArchs list")
	}
}
