// Package prog defines the shared-memory programming interface that
// workload programs are written against. Two implementations exist: the
// detailed execution-driven processor model (cpu.Env), which charges every
// reference to the full timing model, and the fast functional PRAM
// estimator (pram.Env), which runs the same program in a single pass to
// estimate its communication rate — the paper's Section 3.3 methodology of
// measuring RCCPI with a simple simulator to predict the PP penalty.
package prog

// Env is a simulated processor's shared-memory interface. All methods
// block the program until the (simulated) operation completes.
type Env interface {
	// ID returns the global processor index running this program.
	ID() int
	// Node returns the processor's SMP node.
	Node() int
	// Read performs a shared-memory load.
	Read(addr uint64)
	// Write performs a shared-memory store.
	Write(addr uint64)
	// ReadRange loads n consecutive 8-byte words starting at addr.
	ReadRange(addr uint64, n int)
	// WriteRange stores n consecutive 8-byte words starting at addr.
	WriteRange(addr uint64, n int)
	// Compute charges n instruction cycles of local computation.
	Compute(n int)
	// Barrier joins the global barrier.
	Barrier()
	// Lock acquires the numbered lock.
	Lock(id int)
	// Unlock releases the numbered lock.
	Unlock(id int)
}
