package core

import (
	"testing"

	"ccnuma/internal/config"
	"ccnuma/internal/directory"
	"ccnuma/internal/interconnect"
	"ccnuma/internal/memaddr"
	"ccnuma/internal/protocol"
	"ccnuma/internal/sim"
	"ccnuma/internal/smpbus"
	"ccnuma/internal/stats"
)

// rig wires two controllers with buses, directories, and a network, but no
// processors: tests drive the bus and network interfaces directly.
type rig struct {
	eng   *sim.Engine
	cfg   config.Config
	space *memaddr.Space
	net   *interconnect.Network
	buses []*smpbus.Bus
	ccs   []*Controller
	runs  *stats.Run
}

func newRig(t *testing.T, mutate func(*config.Config)) *rig {
	t.Helper()
	cfg := config.Base()
	cfg.Nodes = 2
	cfg.ProcsPerNode = 1
	cfg.SimLimit = 10_000_000
	if mutate != nil {
		mutate(&cfg)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	r := &rig{eng: sim.NewEngine(), cfg: cfg}
	r.space = memaddr.NewSpace(&r.cfg)
	r.net = interconnect.New(r.eng, &r.cfg, nil)
	r.runs = stats.NewRun(cfg.ArchName(), "rig", cfg.EngineCounts())
	for n := 0; n < cfg.Nodes; n++ {
		bus := smpbus.New(r.eng, &r.cfg, n, nil)
		dir := directory.New(r.eng, &r.cfg, n, nil)
		cc := New(r.eng, &r.cfg, n, bus, r.net, dir, r.space, &r.runs.Controllers[n], nil)
		r.buses = append(r.buses, bus)
		r.ccs = append(r.ccs, cc)
	}
	return r
}

// silentSnooper holds no lines.
type silentSnooper struct{}

func (silentSnooper) Snoop(*smpbus.Txn) smpbus.SnoopResult { return smpbus.SnoopNone }

func TestSnoopClassification(t *testing.T) {
	r := newRig(t, nil)
	localLine := r.space.AllocOnNode(4096, 0)
	remoteLine := r.space.AllocOnNode(4096, 1)
	cc := r.ccs[0]

	// Remote lines always defer (if no sibling supplied them, the request
	// must go to the home).
	for _, k := range []smpbus.Kind{smpbus.Read, smpbus.ReadEx, smpbus.Upgrade} {
		txn := &smpbus.Txn{Kind: k, Line: remoteLine, HomeLocal: false}
		if got := cc.Snoop(txn); got != smpbus.SnoopDefer {
			t.Errorf("remote %v snoop = %v, want defer", k, got)
		}
	}
	// Write-backs never defer (direct data path handles them).
	wb := &smpbus.Txn{Kind: smpbus.WriteBack, Line: remoteLine, HomeLocal: false}
	if got := cc.Snoop(wb); got != smpbus.SnoopNone {
		t.Errorf("writeback snoop = %v, want none", got)
	}
	// Local lines with no remote state pass.
	rd := &smpbus.Txn{Kind: smpbus.Read, Line: localLine, HomeLocal: true}
	if got := cc.Snoop(rd); got != smpbus.SnoopNone {
		t.Errorf("clean local read snoop = %v, want none", got)
	}
	// DirtyRemote defers reads; SharedRemote defers only exclusives.
	cc.dir.Write(0, localLine, directory.Entry{State: directory.DirtyRemote, Owner: 1})
	if got := cc.Snoop(rd); got != smpbus.SnoopDefer {
		t.Errorf("dirty-remote local read snoop = %v, want defer", got)
	}
	cc.dir.Write(0, localLine, directory.Entry{State: directory.SharedRemote,
		Sharers: directory.Bitmap(0).Set(1)})
	if got := cc.Snoop(rd); got != smpbus.SnoopShared {
		t.Errorf("shared-remote local read snoop = %v, want shared (memory responds, line installs Shared)", got)
	}
	rx := &smpbus.Txn{Kind: smpbus.ReadEx, Line: localLine, HomeLocal: true}
	if got := cc.Snoop(rx); got != smpbus.SnoopDefer {
		t.Errorf("shared-remote local readex snoop = %v, want defer", got)
	}
}

func TestRemoteMissRoundTrip(t *testing.T) {
	r := newRig(t, nil)
	line := r.space.AllocOnNode(4096, 0) // homed on node 0
	r.buses[1].AttachSnooper(silentSnooper{})
	r.buses[0].AttachSnooper(silentSnooper{})

	var out *smpbus.Outcome
	r.eng.At(0, func() {
		r.buses[1].Issue(&smpbus.Txn{
			Kind: smpbus.Read, Line: line, Src: 0, HomeLocal: false,
			Done: func(o smpbus.Outcome) { c := o; out = &c },
		})
	})
	if _, err := r.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if out == nil || out.Status != smpbus.OK || !out.Shared {
		t.Fatalf("outcome %+v, want OK shared", out)
	}
	// Directory at home records node 1 as a sharer.
	e := r.ccs[0].dir.Lookup(line)
	if e.State != directory.SharedRemote || !e.Sharers.Has(1) {
		t.Fatalf("home directory %+v, want SharedRemote{1}", e)
	}
	if r.ccs[0].PendingOps() != 0 || r.ccs[1].PendingOps() != 0 {
		t.Fatal("transient state left behind")
	}
	// Handler accounting on both sides.
	if r.ccs[1].HandlerCount(protocol.HBusReadRemote) != 1 ||
		r.ccs[0].HandlerCount(protocol.HRemoteReadHomeClean) != 1 ||
		r.ccs[1].HandlerCount(protocol.HDataRespRead) != 1 {
		t.Fatal("handler counts wrong")
	}
	// Statistics recorded arrivals on both controllers.
	if r.runs.TotalArrivals() < 3 {
		t.Fatalf("arrivals = %d", r.runs.TotalArrivals())
	}
}

func TestRemoteReadExSetsDirty(t *testing.T) {
	r := newRig(t, nil)
	line := r.space.AllocOnNode(4096, 0)
	r.buses[0].AttachSnooper(silentSnooper{})
	r.buses[1].AttachSnooper(silentSnooper{})
	done := false
	r.eng.At(0, func() {
		r.buses[1].Issue(&smpbus.Txn{
			Kind: smpbus.ReadEx, Line: line, Src: 0, HomeLocal: false,
			Done: func(o smpbus.Outcome) {
				done = true
				if o.Status != smpbus.OK || o.Shared {
					t.Errorf("outcome %+v", o)
				}
			},
		})
	})
	if _, err := r.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("readex never completed")
	}
	e := r.ccs[0].dir.Lookup(line)
	if e.State != directory.DirtyRemote || e.Owner != 1 {
		t.Fatalf("home directory %+v, want DirtyRemote{1}", e)
	}
}

func TestWriteBackClearsDirectory(t *testing.T) {
	r := newRig(t, nil)
	line := r.space.AllocOnNode(4096, 0)
	r.ccs[0].dir.Write(0, line, directory.Entry{State: directory.DirtyRemote, Owner: 1})
	r.eng.At(0, func() { r.ccs[1].CaptureWriteBack(line, false, 0) })
	if _, err := r.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if e := r.ccs[0].dir.Lookup(line); e.State != directory.NoRemote {
		t.Fatalf("directory %+v after writeback, want NoRemote", e)
	}
	if r.ccs[0].HandlerCount(protocol.HWriteBackAtHome) != 1 {
		t.Fatal("writeback handler not dispatched")
	}
}

func TestWriteBackSharedLeftKeepsSharer(t *testing.T) {
	r := newRig(t, nil)
	line := r.space.AllocOnNode(4096, 0)
	r.ccs[0].dir.Write(0, line, directory.Entry{State: directory.DirtyRemote, Owner: 1})
	r.eng.At(0, func() { r.ccs[1].CaptureWriteBack(line, true, 0) })
	if _, err := r.eng.Run(); err != nil {
		t.Fatal(err)
	}
	e := r.ccs[0].dir.Lookup(line)
	if e.State != directory.SharedRemote || !e.Sharers.Has(1) {
		t.Fatalf("directory %+v, want SharedRemote{1}", e)
	}
}

func TestArbitrationPrefersResponses(t *testing.T) {
	r := newRig(t, nil)
	cc := r.ccs[0]
	e := cc.engines[0]
	// Hand-enqueue: one bus request, one net request, one response.
	line := r.space.AllocOnNode(4096, 1)
	respMsg := &protocol.Msg{Type: protocol.MsgInvalAck, Line: line}
	reqMsg := &protocol.Msg{Type: protocol.MsgInval, Line: line}
	e.respQ = append(e.respQ, &work{msg: respMsg})
	e.reqQ = append(e.reqQ, &work{msg: reqMsg})
	e.busQ = append(e.busQ, &work{txn: &smpbus.Txn{Kind: smpbus.Read, Line: line}})

	if w := e.pick(); w.msg != respMsg {
		t.Fatal("responses must dispatch first")
	}
	if w := e.pick(); w.msg != reqMsg {
		t.Fatal("network requests dispatch before bus requests")
	}
	if w := e.pick(); w.txn == nil {
		t.Fatal("bus request should be last")
	}
	if e.pick() != nil {
		t.Fatal("queues should be empty")
	}
}

func TestArbitrationLivelockException(t *testing.T) {
	r := newRig(t, func(c *config.Config) { c.LivelockLimit = 2 })
	e := r.ccs[0].engines[0]
	line := r.space.AllocOnNode(4096, 1)
	busWork := &work{txn: &smpbus.Txn{Kind: smpbus.Read, Line: line}}
	e.busQ = append(e.busQ, busWork)
	for i := 0; i < 5; i++ {
		e.reqQ = append(e.reqQ, &work{msg: &protocol.Msg{Type: protocol.MsgInval, Line: line}})
	}
	// Two network requests dispatch; the third pick must serve the bus.
	if w := e.pick(); w.msg == nil {
		t.Fatal("pick 1 should be a network request")
	}
	if w := e.pick(); w.msg == nil {
		t.Fatal("pick 2 should be a network request")
	}
	if w := e.pick(); w != busWork {
		t.Fatal("anti-livelock exception should serve the waiting bus request")
	}
	if e.netStreak != 0 {
		t.Fatal("streak should reset after serving the bus")
	}
}

func TestArbitrationFIFO(t *testing.T) {
	r := newRig(t, func(c *config.Config) { c.Arbitration = config.ArbFIFO })
	e := r.ccs[0].engines[0]
	line := r.space.AllocOnNode(4096, 1)
	first := &work{arrival: 5, txn: &smpbus.Txn{Kind: smpbus.Read, Line: line}}
	second := &work{arrival: 10, msg: &protocol.Msg{Type: protocol.MsgInvalAck, Line: line}}
	e.busQ = append(e.busQ, first)
	e.respQ = append(e.respQ, second)
	if w := e.pick(); w != first {
		t.Fatal("FIFO must dispatch the earliest arrival even from the bus queue")
	}
	if w := e.pick(); w != second {
		t.Fatal("second pick wrong")
	}
}

func TestTwoEngineSplitRouting(t *testing.T) {
	r := newRig(t, func(c *config.Config) { c.TwoEngines = true })
	cc := r.ccs[0]
	localLine := r.space.AllocOnNode(4096, 0)
	remoteLine := r.space.AllocOnNode(4096, 1)
	if e := cc.engineFor(localLine); e != cc.engines[0] {
		t.Error("local line must route to the LPE")
	}
	if e := cc.engineFor(remoteLine); e != cc.engines[1] {
		t.Error("remote line must route to the RPE")
	}
}

func TestRoundRobinSplitAlternates(t *testing.T) {
	r := newRig(t, func(c *config.Config) {
		c.TwoEngines = true
		c.Split = config.SplitRoundRobin
	})
	cc := r.ccs[0]
	line := r.space.AllocOnNode(4096, 0)
	a := cc.engineFor(line)
	b := cc.engineFor(line)
	if a == b {
		t.Fatal("round-robin split should alternate engines")
	}
}

func TestPerInvalCostPositive(t *testing.T) {
	r := newRig(t, nil)
	if r.ccs[0].perInvalCost() <= 0 {
		t.Fatal("per-invalidation cost must be positive")
	}
}

func TestChargeCountsHandlers(t *testing.T) {
	r := newRig(t, nil)
	cc := r.ccs[0]
	occ, act := cc.charge(protocol.HRemoteReadHomeClean, 0, 0)
	if occ <= 0 {
		t.Fatal("occupancy must be positive")
	}
	if act < cc.eng.Now() {
		t.Fatal("action time in the past")
	}
	if cc.HandlerCount(protocol.HRemoteReadHomeClean) != 1 {
		t.Fatal("handler count not recorded")
	}
	// Directory stall extends both occupancy and action time.
	occ2, act2 := cc.charge(protocol.HRemoteReadHomeClean, 20, 0)
	if occ2 != occ+20 || act2 != act+20 {
		t.Fatalf("dir stall not applied: occ %d->%d act %d->%d", occ, occ2, act, act2)
	}
}

func TestDynamicSplitPicksShortestQueue(t *testing.T) {
	r := newRig(t, func(c *config.Config) {
		c.TwoEngines = true
		c.Split = config.SplitDynamic
	})
	cc := r.ccs[0]
	line := r.space.AllocOnNode(4096, 1)
	// Load engine 0 with queued work; the next request must go to engine 1.
	cc.engines[0].reqQ = append(cc.engines[0].reqQ,
		&work{msg: &protocol.Msg{Type: protocol.MsgInval, Line: line}})
	if e := cc.engineFor(line); e != cc.engines[1] {
		t.Fatal("dynamic split should pick the idle engine")
	}
	// Balance them; ties resolve to engine 0.
	cc.engines[1].reqQ = append(cc.engines[1].reqQ,
		&work{msg: &protocol.Msg{Type: protocol.MsgInval, Line: line}})
	if e := cc.engineFor(line); e != cc.engines[0] {
		t.Fatal("dynamic split ties should resolve to the first engine")
	}
}

func TestHandlerBusyAccounting(t *testing.T) {
	r := newRig(t, nil)
	cc := r.ccs[0]
	occ, _ := cc.charge(protocol.HInvalAtSharer, 0, 0)
	if got := cc.HandlerBusy(protocol.HInvalAtSharer); got != occ {
		t.Fatalf("handler busy = %d, want %d", got, occ)
	}
}
