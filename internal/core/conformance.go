package core

import (
	"ccnuma/internal/protocol"
	"ccnuma/internal/smpbus"
)

// ConformanceHook observes every handler dispatch and every network send a
// controller performs, in terms of the trigger/handler vocabulary of the
// statically extracted protocol model (internal/extract). The model
// conformance harness (internal/model) attaches one to replay concrete
// simulator transitions through the abstract transition table; a nil hook
// costs a single pointer check per dispatch and send.
type ConformanceHook interface {
	// Dispatch fires when a handler is charged: trigger is the queued work
	// that was dispatched ("msg:<Type>" or "bus:<Kind>/local|remote") and h
	// the handler the controller selected for it.
	Dispatch(node int, trigger string, h protocol.Handler)
	// Send fires for every outgoing network message. inDispatch reports
	// whether the send happened synchronously under a handler dispatch (in
	// which case trigger/h identify it); asynchronous sends (bus-completion
	// closures, deferred finishes, the NI NACK bounce, and the direct
	// write-back data path) carry inDispatch == false.
	Send(node int, inDispatch bool, trigger string, h protocol.Handler, t protocol.MsgType)
}

// SetConformanceHook attaches (or with nil detaches) the conformance
// observer.
func (cc *Controller) SetConformanceHook(h ConformanceHook) { cc.hook = h }

// ForceNackNext arms a one-shot NI fault: the next n NACKable requests
// arriving at this controller are bounced as if the request queue were
// full, exercising the real NACK/backoff/retry path regardless of queue
// occupancy. It is a deterministic injection seam for the single-fault
// sweep's "nack" class and is inert outside robust configurations (a
// non-robust requester treats an unexpected NACK as a stray).
func (cc *Controller) ForceNackNext(n int) { cc.forceNack += n }

// trigger names w in the extracted model's trigger vocabulary.
func (w *work) trigger() string {
	if w.txn != nil {
		if w.txn.HomeLocal {
			return "bus:" + w.txn.Kind.String() + "/local"
		}
		return "bus:" + w.txn.Kind.String() + "/remote"
	}
	return "msg:" + w.msg.Type.String()
}

// TriggerForMsg renders the trigger label for a network message type, and
// TriggerForBus for a deferred bus transaction kind — the same labels the
// extractor writes into the committed model artifact.
func TriggerForMsg(t protocol.MsgType) string { return "msg:" + t.String() }

// TriggerForBus renders the bus-side trigger label.
func TriggerForBus(k smpbus.Kind, homeLocal bool) string {
	if homeLocal {
		return "bus:" + k.String() + "/local"
	}
	return "bus:" + k.String() + "/remote"
}
