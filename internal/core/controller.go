// Package core implements the paper's subject: the coherence controller of
// an SMP-based CC-NUMA node. The controller bridges the node's snooping SMP
// bus and the interconnection network, synthesizing global cache coherence
// with a full-bit-map directory protocol. It contains:
//
//   - three input queues (bus-side requests, network-side requests,
//     network-side responses) with the paper's dispatch arbitration policy:
//     responses first, then network requests, then bus requests, except
//     that a bus request that has waited through LivelockLimit consecutive
//     network-request dispatches proceeds first;
//   - one or two protocol engines (HWC finite-state machines or PPC
//     protocol processors) whose handler occupancies come from the
//     sub-operation sequences in the protocol package and the Table 2 cost
//     model;
//   - under the two-engine split, an LPE serving local-home addresses
//     (the only engine that touches the directory) and an RPE serving
//     remote-home addresses, as in S3.mp;
//   - the direct bus-interface/network-interface data path that forwards
//     dirty-remote write-backs to the home node without handler dispatch.
package core

import (
	"fmt"
	"sort"
	"strings"

	"ccnuma/internal/config"
	"ccnuma/internal/directory"
	"ccnuma/internal/interconnect"
	"ccnuma/internal/memaddr"
	"ccnuma/internal/obs"
	"ccnuma/internal/protocol"
	"ccnuma/internal/sim"
	"ccnuma/internal/smpbus"
	"ccnuma/internal/stats"
)

// work is one queued protocol request: either a deferred bus transaction or
// a network message.
type work struct {
	arrival sim.Time
	txn     *smpbus.Txn
	msg     *protocol.Msg
}

// label names the queued request for tracing (a constant-table string).
func (w *work) label() string {
	if w.txn != nil {
		return w.txn.Kind.String()
	}
	return w.msg.Type.String()
}

// homeOp is a transient home-node operation on a local line.
type homeOp struct {
	line      uint64
	excl      bool
	requester int         // remote requester node, or -1 when local
	parked    *smpbus.Txn // parked local bus transaction (requester == -1)
	upgrade   bool        // parked transaction is an upgrade (no data)

	// epoch echoes the requesting episode's tag into the grant (zero for
	// local requesters and with the robustness knobs off). txn is the
	// remote requester's causal-span ID, echoed the same way.
	epoch uint32
	txn   uint64

	acksLeft     int
	needData     bool
	haveData     bool
	intervention bool // fetch forwarded to a remote owner, response pending
	waitWB       bool // intervention missed; waiting for the eviction WB
	wbArrived    bool
	finishing    bool // response issued; retirement pending on the bus reply
	// data is the shadow line value collected for the response (from the
	// home fetch, the owner's data message, or an in-flight write-back).
	data uint64
	// finalDir is written to the directory when the op completes.
	finalDir directory.Entry

	waiters []*work
}

// spanTxn resolves the causal-span identity of the op's requester: local
// requesters are identified by their parked bus transaction, remote ones
// by the ID echoed from the request message.
func (op *homeOp) spanTxn() (uint64, uint32) {
	if op.parked != nil {
		return op.parked.Attr, 0
	}
	return op.txn, op.epoch
}

func (op *homeOp) ready() bool {
	return !op.intervention && op.acksLeft == 0 &&
		(!op.needData || op.haveData) && (!op.waitWB || op.wbArrived)
}

// mshrEntry tracks one outstanding request from this node to a remote home.
type mshrEntry struct {
	line   uint64
	excl   bool
	parked *smpbus.Txn
	// responseArrived is set the moment a data response for this miss
	// reaches the node (it may still be waiting in an input queue). Under
	// the round-robin engine split an intervention for the same line can
	// otherwise be dispatched by the other engine ahead of the response.
	responseArrived bool
	filling         bool // response dispatched, bus supply in flight
	// data is the shadow line value delivered by the data response.
	data    uint64
	waiters []*work

	// Robustness state (zero and unused with the recovery knobs off).
	// issuedAt is when the request was first sent; attempts counts NACKs
	// and timeouts consumed against Config.RetryBudget; timeoutSeq
	// invalidates stale timeout events after a re-issue; epoch tags the
	// episode's messages so stale grants from a closed episode are dropped.
	issuedAt   sim.Time
	attempts   int
	timeoutSeq int
	epoch      uint32
}

// Controller is one node's coherence controller.
type Controller struct {
	eng   *sim.Engine
	cfg   *config.Config
	node  int
	bus   *smpbus.Bus
	net   *interconnect.Network
	dir   *directory.Directory
	space *memaddr.Space
	st    *stats.ControllerStats
	tr    *obs.Tracer // nil when tracing is disabled

	// kind is this node's protocol-engine implementation; on heterogeneous
	// machines (Config.NodeArchs) it differs per controller, so occupancy
	// lookups must go through it rather than cfg.Engine.
	kind    config.EngineKind
	engines []*engine
	rr      int

	homeOps map[uint64]*homeOp
	mshr    map[uint64]*mshrEntry

	handlerCounts [protocol.NumHandlers]uint64
	handlerBusy   [protocol.NumHandlers]sim.Time

	// epochCtr mints request-episode tags for outgoing ReadReq/ReadExReq
	// (see protocol.Msg.Epoch).
	epochCtr uint32

	// spans is the latency-attribution tracker (nil when attribution is off).
	spans *obs.SpanTracker

	// hook observes dispatches and sends for the model conformance harness
	// (nil in normal runs). curTrigger/curHandler identify the dispatch in
	// progress so synchronous sends can be attributed to their rule;
	// inDispatch distinguishes them from closure-deferred sends.
	hook       ConformanceHook
	inDispatch bool
	curTrigger string
	curHandler protocol.Handler

	// forceNack counts pending one-shot forced NI bounces (ForceNackNext).
	forceNack int
}

// engine is one protocol engine (FSM or protocol processor) with its input
// queues.
type engine struct {
	cc        *Controller
	idx       int
	busQ      []*work
	reqQ      []*work
	respQ     []*work
	busy      bool
	netStreak int // consecutive network-request dispatches while bus waits
}

// New creates a controller, attaching it to the node's bus and to the
// network. st receives the controller's measurements (may be a throwaway
// for unit tests); tr may be nil to disable tracing.
func New(eng *sim.Engine, cfg *config.Config, node int, bus *smpbus.Bus,
	net *interconnect.Network, dir *directory.Directory, space *memaddr.Space,
	st *stats.ControllerStats, tr *obs.Tracer) *Controller {

	cc := &Controller{
		eng:     eng,
		cfg:     cfg,
		node:    node,
		bus:     bus,
		net:     net,
		dir:     dir,
		space:   space,
		st:      st,
		tr:      tr,
		kind:    cfg.NodeEngineKind(node),
		homeOps: make(map[uint64]*homeOp),
		mshr:    make(map[uint64]*mshrEntry),
	}
	for i := 0; i < cfg.NodeEngineCount(node); i++ {
		cc.engines = append(cc.engines, &engine{cc: cc, idx: i})
	}
	bus.AttachController(cc)
	net.Attach(node, cc.deliver)
	return cc
}

// AttachSpans attaches the latency-attribution span tracker (nil keeps
// attribution disabled).
func (cc *Controller) AttachSpans(sp *obs.SpanTracker) { cc.spans = sp }

// HandlerCount returns how many times handler h was dispatched.
func (cc *Controller) HandlerCount(h protocol.Handler) uint64 {
	return cc.handlerCounts[h]
}

// HandlerBusy returns the total engine occupancy charged by handler h.
func (cc *Controller) HandlerBusy(h protocol.Handler) sim.Time {
	return cc.handlerBusy[h]
}

// PendingOps reports outstanding transient state (for end-of-run checks).
func (cc *Controller) PendingOps() int { return len(cc.homeOps) + len(cc.mshr) }

// QueueDepths returns engine i's input-queue depths (for the sampler and
// stall snapshots).
func (cc *Controller) QueueDepths(i int) (resp, req, bus int) {
	e := cc.engines[i]
	return len(e.respQ), len(e.reqQ), len(e.busQ)
}

// EngineBusy reports whether engine i is executing a handler right now.
func (cc *Controller) EngineBusy(i int) bool { return cc.engines[i].busy }

// DumpPending describes outstanding transient state for deadlock
// diagnostics (map iteration is sorted by line so the dump is
// deterministic).
func (cc *Controller) DumpPending() string {
	var b strings.Builder
	lines := make([]uint64, 0, len(cc.homeOps))
	for line := range cc.homeOps {
		lines = append(lines, line)
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	for _, line := range lines {
		op := cc.homeOps[line]
		fmt.Fprintf(&b, "node %d homeOp line=%#x excl=%v req=%d acks=%d needData=%v haveData=%v interv=%v waitWB=%v wbArr=%v upgrade=%v waiters=%d\n",
			cc.node, line, op.excl, op.requester, op.acksLeft, op.needData,
			op.haveData, op.intervention, op.waitWB, op.wbArrived, op.upgrade, len(op.waiters))
	}
	lines = lines[:0]
	for line := range cc.mshr {
		lines = append(lines, line)
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	for _, line := range lines {
		m := cc.mshr[line]
		fmt.Fprintf(&b, "node %d mshr line=%#x excl=%v filling=%v waiters=%d\n",
			cc.node, line, m.excl, m.filling, len(m.waiters))
	}
	for i, e := range cc.engines {
		fmt.Fprintf(&b, "node %d engine %d busy=%v busQ=%d reqQ=%d respQ=%d\n",
			cc.node, i, e.busy, len(e.busQ), len(e.reqQ), len(e.respQ))
	}
	return b.String()
}

// StateSnapshot renders the controller's complete transient state as a
// deterministic string (map iteration is sorted by line). Two controllers
// with equal snapshots will behave identically given identical future
// inputs; the ccverify model checker folds snapshots into its abstract
// state hash.
func (cc *Controller) StateSnapshot() string {
	var b strings.Builder
	lines := make([]uint64, 0, len(cc.homeOps))
	for line := range cc.homeOps {
		lines = append(lines, line)
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	for _, line := range lines {
		op := cc.homeOps[line]
		fmt.Fprintf(&b, "h%#x:e%vr%da%dn%vd%vi%vw%vb%vf%vu%vq%d;",
			line, op.excl, op.requester, op.acksLeft, op.needData, op.haveData,
			op.intervention, op.waitWB, op.wbArrived, op.finishing, op.upgrade,
			len(op.waiters))
	}
	lines = lines[:0]
	for line := range cc.mshr {
		lines = append(lines, line)
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	for _, line := range lines {
		m := cc.mshr[line]
		fmt.Fprintf(&b, "m%#x:e%vr%vf%vq%d;", line, m.excl, m.responseArrived,
			m.filling, len(m.waiters))
	}
	for i, e := range cc.engines {
		fmt.Fprintf(&b, "e%d:b%vs%d", i, e.busy, e.netStreak)
		for _, w := range e.respQ {
			fmt.Fprintf(&b, "R%s@%#x", w.label(), cc.lineOf(w))
		}
		for _, w := range e.reqQ {
			fmt.Fprintf(&b, "Q%s@%#x", w.label(), cc.lineOf(w))
		}
		for _, w := range e.busQ {
			fmt.Fprintf(&b, "B%s@%#x", w.label(), cc.lineOf(w))
		}
		b.WriteByte(';')
	}
	return b.String()
}

func (cc *Controller) costs() *config.CostTable { return &cc.cfg.Costs }

func (cc *Controller) cost(op config.SubOp) sim.Time {
	return cc.cfg.Costs.Cost(cc.kind, op)
}

// engineFor selects the engine serving a line per the split policy.
func (cc *Controller) engineFor(line uint64) *engine {
	if len(cc.engines) == 1 {
		return cc.engines[0]
	}
	switch cc.cfg.Split {
	case config.SplitRoundRobin:
		cc.rr = (cc.rr + 1) % len(cc.engines)
		return cc.engines[cc.rr]
	case config.SplitDynamic:
		// Shortest-queue assignment (ties to the lowest index keep it
		// deterministic).
		best := cc.engines[0]
		bestLen := best.queueLen()
		for _, e := range cc.engines[1:] {
			if l := e.queueLen(); l < bestLen {
				best, bestLen = e, l
			}
		}
		return best
	case config.SplitRegion:
		// Memory regions interleave across all engines (Section 5's
		// "more protocol engines for different regions of memory").
		idx := int(line>>cc.cfg.RegionShift()) % len(cc.engines)
		return cc.engines[idx]
	default:
		if cc.space.Home(line) == cc.node {
			return cc.engines[0] // LPE
		}
		return cc.engines[1] // RPE
	}
}

// ---- bus-facing interface -------------------------------------------------

// Snoop implements the bus-side directory filter: it claims transactions
// that need protocol action and lets the memory controller or sibling
// caches serve the rest. It is side-effect-free (a claimed transaction is
// handed over via AcceptDeferred).
func (cc *Controller) Snoop(txn *smpbus.Txn) smpbus.SnoopResult {
	if txn.Kind == smpbus.WriteBack {
		// Write-backs never need a deferred reply; remote ones arrive via
		// the direct data path (CaptureWriteBack).
		return smpbus.SnoopNone
	}
	if !txn.HomeLocal {
		// Remote-home line: if no sibling cache supplies it, the request
		// must travel to the home node.
		return smpbus.SnoopDefer
	}
	if cc.homeOps[txn.Line] != nil {
		return smpbus.SnoopDefer
	}
	e := cc.dir.Lookup(txn.Line)
	switch txn.Kind {
	case smpbus.Read:
		if e.State == directory.DirtyRemote {
			return smpbus.SnoopDefer
		}
		if e.State == directory.SharedRemote {
			// Memory may respond, but the requester must install Shared:
			// remote nodes hold copies.
			return smpbus.SnoopShared
		}
		return smpbus.SnoopNone
	case smpbus.ReadEx, smpbus.Upgrade:
		if e.State != directory.NoRemote {
			return smpbus.SnoopDefer
		}
		return smpbus.SnoopNone
	default:
		// Controller-issued kinds (Inval/Fetch/FetchEx) and deferred
		// replies never snoop their own controller.
		panic(fmt.Sprintf("core: controller snooped unexpected kind %v line %#x", txn.Kind, txn.Line))
	}
}

// AcceptDeferred receives a bus transaction the snoop claimed. With a
// finite QueueDepth, a full bus queue aborts the transaction on the bus
// instead: the requesting processor sees RetryNeeded and backs off.
func (cc *Controller) AcceptDeferred(txn *smpbus.Txn) {
	e := cc.engineFor(txn.Line)
	if cc.cfg.QueueDepth > 0 && len(e.busQ) >= cc.cfg.QueueDepth {
		cc.st.BusAborts++
		cc.bus.Abort(txn)
		return
	}
	w := &work{arrival: cc.eng.Now(), txn: txn}
	cc.st.NoteArrival(w.arrival)
	e.busQ = append(e.busQ, w)
	cc.tr.Enqueue(w.arrival, cc.node, e.idx, obs.QBus, len(e.busQ), txn.Kind.String(), txn.Line)
	cc.spans.SpanBegin(txn.Attr, obs.StageCCQueue, 0, w.arrival)
	e.kick()
}

// CaptureWriteBack implements the direct data path: a dirty-remote
// write-back is forwarded to the home node without dispatching a protocol
// handler.
func (cc *Controller) CaptureWriteBack(line uint64, sharedLeft bool, data uint64) {
	home := cc.space.Home(line)
	if home == cc.node {
		panic("core: direct data path invoked for a local line")
	}
	cc.send(cc.eng.Now(), home, &protocol.Msg{
		Type: protocol.MsgWriteBack, Line: line, Src: cc.node,
		Dirty: true, SharedLeft: sharedLeft, Data: data,
	})
}

// ---- network-facing interface ---------------------------------------------

func (cc *Controller) deliver(src int, payload interface{}) {
	msg, ok := payload.(*protocol.Msg)
	if !ok {
		panic(fmt.Sprintf("core: unexpected payload %T", payload))
	}
	w := &work{arrival: cc.eng.Now(), msg: msg}
	e := cc.engineFor(msg.Line)
	if msg.IsResponse() {
		isData := msg.Type == protocol.MsgDataShared ||
			msg.Type == protocol.MsgDataExcl || msg.Type == protocol.MsgOwnerData
		if isData {
			// A stale grant (an epoch a retried request already closed)
			// must not mark the current episode as answered: it will be
			// dropped at dispatch, and flagging it here would suppress the
			// episode's timeout and NACK retries.
			if m := cc.mshr[msg.Line]; m != nil && (!cc.cfg.Robust() || msg.Epoch == m.epoch) {
				m.responseArrived = true
			}
		}
		cc.st.NoteArrival(w.arrival)
		e.respQ = append(e.respQ, w)
		cc.tr.Enqueue(w.arrival, cc.node, e.idx, obs.QResp, len(e.respQ), msg.Type.String(), msg.Line)
		cc.spans.SpanBegin(msg.Txn, obs.StageCCQueue, msg.Epoch, w.arrival)
	} else {
		// Finite request queue: a NACKable request arriving at a full
		// queue is bounced straight back by the NI, without consuming a
		// handler dispatch. Non-NACKable requests (forwarded interventions,
		// invalidations, write-backs) ride guaranteed channels with
		// reserved buffering and are always accepted.
		full := cc.cfg.QueueDepth > 0 && len(e.reqQ) >= cc.cfg.QueueDepth
		if msg.Nackable() && (full || cc.forceNack > 0) {
			if !full {
				cc.forceNack--
			}
			cc.st.NacksSent++
			cc.tr.Nack(w.arrival, cc.node, e.idx, msg.Type.String(), msg.Line)
			cc.send(w.arrival, msg.Requester, &protocol.Msg{
				Type: protocol.MsgNack, Line: msg.Line, Src: cc.node,
				Requester: msg.Requester, Excl: msg.Type == protocol.MsgReadExReq,
				Epoch: msg.Epoch, Txn: msg.Txn,
			})
			return
		}
		cc.st.NoteArrival(w.arrival)
		e.reqQ = append(e.reqQ, w)
		cc.tr.Enqueue(w.arrival, cc.node, e.idx, obs.QReq, len(e.reqQ), msg.Type.String(), msg.Line)
		cc.spans.SpanBegin(msg.Txn, obs.StageCCQueue, msg.Epoch, w.arrival)
	}
	e.kick()
}

// StallEngine occupies an idle protocol engine for dur cycles (fault
// injection: a transient engine stall). It reports whether the stall was
// applied; a busy engine is already stalled and absorbs the fault.
func (cc *Controller) StallEngine(idx int, dur sim.Time) bool {
	if len(cc.engines) == 0 || dur <= 0 {
		return false
	}
	e := cc.engines[idx%len(cc.engines)]
	if e.busy {
		return false
	}
	e.busy = true
	cc.eng.After(dur, func() {
		e.busy = false
		e.kick()
	})
	return true
}

func (cc *Controller) send(at sim.Time, dst int, msg *protocol.Msg) {
	if dst == cc.node {
		panic(fmt.Sprintf("core: node %d sending %v to itself", dst, msg.Type))
	}
	if dst < 0 {
		panic(fmt.Sprintf("core: message %v to unmapped home %d (line %#x)", msg.Type, dst, msg.Line))
	}
	if cc.hook != nil {
		cc.hook.Send(cc.node, cc.inDispatch, cc.curTrigger, cc.curHandler, msg.Type)
	}
	cc.eng.At(at, func() {
		cc.net.Send(cc.node, dst, msg.Flits(cc.cfg), msg)
	})
}

// ---- dispatch -------------------------------------------------------------

// queueLen returns the engine's total queued work plus any in-service
// handler (the dynamic split's load metric).
func (e *engine) queueLen() int {
	n := len(e.busQ) + len(e.reqQ) + len(e.respQ)
	if e.busy {
		n++
	}
	return n
}

// kick starts a dispatch if the engine is idle and work is queued.
func (e *engine) kick() {
	if e.busy {
		return
	}
	w := e.pick()
	if w == nil {
		return
	}
	e.dispatch(w)
}

// takeResp removes the head of the response queue, tracing the removal.
func (e *engine) takeResp() *work {
	w := e.respQ[0]
	e.respQ = e.respQ[1:]
	e.cc.tr.Dequeue(e.cc.eng.Now(), e.cc.node, e.idx, obs.QResp, len(e.respQ), e.cc.lineOf(w))
	return w
}

// takeReq removes the head of the network-request queue.
func (e *engine) takeReq() *work {
	w := e.reqQ[0]
	e.reqQ = e.reqQ[1:]
	e.cc.tr.Dequeue(e.cc.eng.Now(), e.cc.node, e.idx, obs.QReq, len(e.reqQ), e.cc.lineOf(w))
	return w
}

// takeBus removes the head of the bus-request queue.
func (e *engine) takeBus() *work {
	w := e.busQ[0]
	e.busQ = e.busQ[1:]
	e.cc.tr.Dequeue(e.cc.eng.Now(), e.cc.node, e.idx, obs.QBus, len(e.busQ), e.cc.lineOf(w))
	return w
}

// pick removes and returns the next work item per the arbitration policy.
func (e *engine) pick() *work {
	if e.cc.cfg.Arbitration == config.ArbFIFO {
		return e.pickFIFO()
	}
	// Paper policy: responses, then network requests, then bus requests —
	// with the anti-livelock exception for long-waiting bus requests.
	if len(e.respQ) > 0 {
		return e.takeResp()
	}
	if len(e.busQ) > 0 && len(e.reqQ) > 0 && e.netStreak >= e.cc.cfg.LivelockLimit {
		e.netStreak = 0
		return e.takeBus()
	}
	if len(e.reqQ) > 0 {
		if len(e.busQ) > 0 {
			e.netStreak++
		}
		return e.takeReq()
	}
	if len(e.busQ) > 0 {
		e.netStreak = 0
		return e.takeBus()
	}
	return nil
}

func (e *engine) pickFIFO() *work {
	best := -1 // 0=resp 1=req 2=bus
	var bestAt sim.Time
	if len(e.respQ) > 0 {
		best, bestAt = 0, e.respQ[0].arrival
	}
	if len(e.reqQ) > 0 && (best < 0 || e.reqQ[0].arrival < bestAt) {
		best, bestAt = 1, e.reqQ[0].arrival
	}
	if len(e.busQ) > 0 && (best < 0 || e.busQ[0].arrival < bestAt) {
		best = 2
	}
	switch best {
	case 0:
		return e.takeResp()
	case 1:
		return e.takeReq()
	case 2:
		return e.takeBus()
	}
	return nil
}

// dispatch runs w's handler, occupying the engine for the handler's
// occupancy, then re-arbitrates.
func (e *engine) dispatch(w *work) {
	cc := e.cc
	now := cc.eng.Now()
	est := &cc.st.Engines[e.idx]
	est.Dispatches++
	est.QueueDelay += now - w.arrival
	est.QueueDelayHist.Add(now - w.arrival)
	if w.txn != nil {
		cc.spans.SpanEnd(w.txn.Attr, obs.StageCCQueue, 0, now)
	} else {
		cc.spans.SpanEnd(w.msg.Txn, obs.StageCCQueue, w.msg.Epoch, now)
	}

	e.busy = true
	if cc.hook != nil {
		cc.inDispatch = true
		cc.curTrigger = w.trigger()
		cc.curHandler = -1
	}
	var occ sim.Time
	if w.txn != nil {
		occ = cc.handleBusTxn(w)
	} else {
		occ = cc.handleMsg(w)
	}
	cc.inDispatch = false
	if occ <= 0 {
		panic("core: handler with non-positive occupancy")
	}
	est.Busy += occ
	if cc.tr != nil {
		cc.tr.Dispatch(now, cc.node, e.idx, w.label(), cc.lineOf(w), occ, now-w.arrival)
	}
	cc.eng.At(now+occ, func() {
		e.busy = false
		e.kick()
	})
}

// charge computes a handler's total occupancy and its action time (the
// cycle at which the handler's externally visible action — bus request or
// network send — is issued). dirExtra is a directory-DRAM stall inserted
// before the action; extraInvals adds per-invalidation fan-out work.
func (cc *Controller) charge(h protocol.Handler, dirExtra sim.Time, extraInvals int) (occ sim.Time, actionAt sim.Time) {
	cc.handlerCounts[h]++
	if cc.hook != nil && cc.inDispatch && cc.curHandler < 0 {
		cc.curHandler = h
		cc.hook.Dispatch(cc.node, cc.curTrigger, h)
	}
	k := cc.kind
	disp := cc.cfg.Costs.Cost(k, config.OpDispatch)
	// Handlers that fetch the line over the local bus keep the engine
	// occupied for the no-contention access time (the paper's handler
	// occupancies include SMP bus and local memory access times); the
	// fetch is issued at the action point and the engine stalls after it.
	stall := protocol.StallTime(cc.cfg, protocol.Stall(h))
	occ = disp + protocol.Occupancy(cc.costs(), k, h, extraInvals) + dirExtra + stall
	cc.handlerBusy[h] += occ
	actionAt = cc.eng.Now() + disp +
		protocol.PrefixOccupancy(cc.costs(), k, h, protocol.ActionIndex(h)) + dirExtra
	return occ, actionAt
}

// homeFetchStall is the engine stall charged by state-dependent paths that
// fetch from home memory under a handler whose common case does not.
func (cc *Controller) homeFetchStall() sim.Time {
	return protocol.StallTime(cc.cfg, protocol.StallHomeFetch)
}

// perInvalCost is the engine time per additional invalidation sent.
func (cc *Controller) perInvalCost() sim.Time {
	var t sim.Time
	for _, op := range protocol.PerInvalOps {
		t += cc.cfg.Costs.Cost(cc.kind, op)
	}
	return t
}

// requeue parks w on a waiter list with the busy-check occupancy.
func (cc *Controller) requeue(list *[]*work, w *work) sim.Time {
	occ, _ := cc.charge(protocol.HBusyRequeue, 0, 0)
	*list = append(*list, w)
	return occ
}

// replay re-enqueues parked work after the blocking state cleared.
func (cc *Controller) replay(ws []*work) {
	for _, w := range ws {
		w := w
		w.arrival = cc.eng.Now()
		e := cc.engineFor(cc.lineOf(w))
		if w.txn != nil {
			e.busQ = append(e.busQ, w)
			cc.tr.Enqueue(w.arrival, cc.node, e.idx, obs.QBus, len(e.busQ), w.label(), w.txn.Line)
			cc.spans.SpanBegin(w.txn.Attr, obs.StageCCQueue, 0, w.arrival)
		} else if w.msg.IsResponse() {
			e.respQ = append(e.respQ, w)
			cc.tr.Enqueue(w.arrival, cc.node, e.idx, obs.QResp, len(e.respQ), w.label(), w.msg.Line)
			cc.spans.SpanBegin(w.msg.Txn, obs.StageCCQueue, w.msg.Epoch, w.arrival)
		} else {
			e.reqQ = append(e.reqQ, w)
			cc.tr.Enqueue(w.arrival, cc.node, e.idx, obs.QReq, len(e.reqQ), w.label(), w.msg.Line)
			cc.spans.SpanBegin(w.msg.Txn, obs.StageCCQueue, w.msg.Epoch, w.arrival)
		}
		e.kick()
	}
}

func (cc *Controller) lineOf(w *work) uint64 {
	if w.txn != nil {
		return w.txn.Line
	}
	return w.msg.Line
}
