package core

import (
	"fmt"

	"ccnuma/internal/obs"
	"ccnuma/internal/protocol"
	"ccnuma/internal/sim"
)

// This file is the requester side of the NACK/retry and timeout recovery
// machinery. All of it is inert with the robustness knobs at their zero
// defaults: no NACK is ever sent with QueueDepth == 0, and no timeout is
// armed with RequestTimeout == 0, so fault-free base runs schedule an
// identical event stream (pinned by the golden test in internal/workload).

// requesterNack processes a NACK bounced back by the home: the outstanding
// miss backs off exponentially and re-issues, within the retry budget. A
// NACK that lost its race against a grant for the same episode (or belongs
// to an episode a retry already closed) is dropped.
func (cc *Controller) requesterNack(w *work) sim.Time {
	msg := w.msg
	occ, act := cc.charge(protocol.HNackAtRequester, 0, 0)
	m := cc.mshr[msg.Line]
	if m == nil || m.filling || m.responseArrived || msg.Epoch != m.epoch {
		cc.st.StrayDrops++
		return occ
	}
	cc.st.NacksRecv++
	cc.spanEngine(w, act, 0)
	cc.spans.SpanBegin(m.parked.Attr, obs.StageBackoff, m.epoch, act)
	cc.noteAttempt(m, "NACKed")
	backoff := cc.nackBackoff(m.attempts)
	line := m.line
	cc.eng.At(act, func() {
		cc.eng.After(backoff, func() { cc.reissue(line, m) })
	})
	return occ
}

// RetryBudgetError is the fail-stop condition of the recovery machinery: a
// line exhausted its NACK/timeout retry budget, meaning a NACK storm or a
// transaction lost beyond the link layer's recovery. It is thrown as a
// panic value (the simulation cannot continue without livelocking
// silently) so that harnesses which recover sweeps — internal/chaos,
// internal/serve — can classify the failure as pathological-scenario
// rather than a transient fault, and record it machine-readably in the
// ccnuma-run/v1 artifact instead of as a bare string.
type RetryBudgetError struct {
	Node     int
	Line     uint64
	Attempts int
	// LastEvent names the event that consumed the final attempt ("NACKed"
	// or "timed out"); At is the simulated time it fired.
	LastEvent string
	At        sim.Time
}

func (e *RetryBudgetError) Error() string {
	return fmt.Sprintf(
		"core: node %d line %#x exhausted its retry budget (%d attempts, last %s at t=%d): NACK storm or lost transaction",
		e.Node, e.Line, e.Attempts, e.LastEvent, e.At)
}

// noteAttempt charges one retry against the episode's budget. Exhausting
// the budget is a fail-stop condition: the line is unserviceable (a NACK
// storm or a transaction lost beyond the link layer's recovery), and
// continuing would livelock silently.
func (cc *Controller) noteAttempt(m *mshrEntry, why string) {
	m.attempts++
	if b := cc.cfg.RetryBudget; b > 0 && m.attempts > b {
		panic(&RetryBudgetError{
			Node: cc.node, Line: m.line, Attempts: m.attempts,
			LastEvent: why, At: cc.eng.Now(),
		})
	}
}

// nackBackoff returns the delay before re-issue number `attempts`: the base
// NackDelay doubled per consecutive failure, capped at NackBackoffMax.
func (cc *Controller) nackBackoff(attempts int) sim.Time {
	d := cc.cfg.NackDelay
	if d <= 0 {
		d = cc.cfg.BusRetry
	}
	for i := 1; i < attempts; i++ {
		d <<= 1
		if limit := cc.cfg.NackBackoffMax; limit > 0 && d >= limit {
			return limit
		}
	}
	return d
}

// reissue re-sends the episode's request (marked Retry, same epoch) unless
// a response has arrived in the meantime.
func (cc *Controller) reissue(line uint64, m *mshrEntry) {
	if cc.mshr[line] != m || m.filling || m.responseArrived {
		return
	}
	cc.st.Retries++
	cc.spans.SpanEnd(m.parked.Attr, obs.StageBackoff, m.epoch, cc.eng.Now())
	mt := protocol.MsgReadReq
	if m.excl {
		mt = protocol.MsgReadExReq
	}
	cc.send(cc.eng.Now(), cc.space.Home(line), &protocol.Msg{
		Type: mt, Line: line, Src: cc.node, Requester: cc.node,
		Retry: true, Epoch: m.epoch, Txn: m.parked.Attr,
	})
	cc.armTimeout(m)
}

// armTimeout schedules the episode's request timeout. The sequence number
// invalidates the previous timeout after each re-issue, so exactly one
// timeout is live per episode.
func (cc *Controller) armTimeout(m *mshrEntry) {
	if cc.cfg.RequestTimeout <= 0 {
		return
	}
	m.timeoutSeq++
	seq := m.timeoutSeq
	line := m.line
	cc.eng.After(cc.cfg.RequestTimeout, func() {
		if cc.mshr[line] != m || m.timeoutSeq != seq || m.filling || m.responseArrived {
			return
		}
		cc.st.Timeouts++
		cc.spans.SpanBegin(m.parked.Attr, obs.StageBackoff, m.epoch, cc.eng.Now())
		cc.noteAttempt(m, "timed out")
		cc.reissue(line, m)
	})
}

// nackRetry bounces a retried home-bound request that must not join the
// current directory transient (the home saw the requester registered as
// dirty owner: the original request was probably already granted).
func (cc *Controller) nackRetry(msg *protocol.Msg, dirExtra sim.Time) sim.Time {
	h := protocol.HRemoteReadHomeDirty
	if msg.Type == protocol.MsgReadExReq {
		h = protocol.HRemoteReadExHomeDirty
	}
	occ, act := cc.charge(h, dirExtra, 0)
	cc.st.NacksSent++
	cc.send(act, msg.Requester, &protocol.Msg{
		Type: protocol.MsgNack, Line: msg.Line, Src: cc.node,
		Requester: msg.Requester, Excl: msg.Type == protocol.MsgReadExReq,
		Epoch: msg.Epoch, Txn: msg.Txn,
	})
	return occ
}
