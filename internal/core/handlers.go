package core

import (
	"fmt"

	"ccnuma/internal/directory"
	"ccnuma/internal/obs"
	"ccnuma/internal/protocol"
	"ccnuma/internal/sim"
	"ccnuma/internal/smpbus"
)

// spanTxn resolves the causal-span identity of queued work: deferred bus
// transactions carry the requester's episode ID with no epoch; network
// messages echo both the ID and the request epoch.
func (w *work) spanTxn() (uint64, uint32) {
	if w.txn != nil {
		return w.txn.Attr, 0
	}
	return w.msg.Txn, w.msg.Epoch
}

// spanEngine checkpoints the engine occupancy on the critical path of w's
// transaction: dispatch to the handler's action point, minus any
// directory-DRAM stall, which is attributed separately.
func (cc *Controller) spanEngine(w *work, act, dirExtra sim.Time) {
	txn, epoch := w.spanTxn()
	cc.spans.SpanBegin(txn, obs.StageEngine, epoch, cc.eng.Now())
	cc.spans.SpanEnd(txn, obs.StageEngine, epoch, act-dirExtra)
	cc.spans.SpanEnd(txn, obs.StageDirectory, epoch, act)
}

// spanHome marks the start of the home-side wait window: the op is parked
// from the handler's action point until finishOp issues the grant.
func (cc *Controller) spanHome(w *work, act sim.Time) {
	txn, epoch := w.spanTxn()
	cc.spans.SpanBegin(txn, obs.StageHomeWait, epoch, act)
}

// handleBusTxn dispatches a deferred bus transaction and returns the
// engine occupancy.
func (cc *Controller) handleBusTxn(w *work) sim.Time {
	txn := w.txn
	if txn.HomeLocal {
		return cc.handleLocalBus(w)
	}
	return cc.handleRemoteBus(w)
}

// ---- requester side: misses to remote-home lines ---------------------------

func (cc *Controller) handleRemoteBus(w *work) sim.Time {
	txn := w.txn
	line := txn.Line
	home := cc.space.Home(line)
	if m := cc.mshr[line]; m != nil {
		// The bus serializes processor transactions per line, so a second
		// processor transaction can only appear here through a replay race;
		// park it behind the outstanding one.
		return cc.requeue(&m.waiters, w)
	}
	excl := txn.Kind != smpbus.Read
	h := protocol.HBusReadRemote
	mt := protocol.MsgReadReq
	if excl {
		h = protocol.HBusReadExRemote
		mt = protocol.MsgReadExReq
	}
	occ, act := cc.charge(h, 0, 0)
	cc.spanEngine(w, act, 0)
	cc.epochCtr++
	m := &mshrEntry{line: line, excl: excl, parked: txn,
		issuedAt: cc.eng.Now(), epoch: cc.epochCtr}
	cc.mshr[line] = m
	cc.spans.SetEpoch(txn.Attr, m.epoch)
	cc.send(act, home, &protocol.Msg{Type: mt, Line: line, Src: cc.node,
		Requester: cc.node, Epoch: m.epoch, Txn: txn.Attr})
	cc.armTimeout(m)
	return occ
}

// mshrFill completes an outstanding miss: the parked transaction is
// supplied on the bus; when the fill finishes, queued interventions and
// invalidations for the line are replayed.
func (cc *Controller) mshrFill(m *mshrEntry, shared bool) {
	m.filling = true
	orig := m.parked.Done
	line := m.line
	m.parked.Done = func(o smpbus.Outcome) {
		orig(o)
		cur := cc.mshr[line]
		if cur == m {
			delete(cc.mshr, line)
			cc.replay(m.waiters)
		}
	}
	cc.bus.Supply(m.parked, true, shared, m.data)
}

// ---- home side: local-home lines -------------------------------------------

func (cc *Controller) handleLocalBus(w *work) sim.Time {
	txn := w.txn
	line := txn.Line
	if op := cc.homeOps[line]; op != nil {
		return cc.requeue(&op.waiters, w)
	}
	switch txn.Kind {
	case smpbus.Read:
		return cc.homeLocalRead(w)
	case smpbus.ReadEx, smpbus.Upgrade:
		return cc.homeLocalReadEx(w)
	default:
		panic(fmt.Sprintf("core: unexpected deferred bus txn %v", txn.Kind))
	}
}

// homeLocalRead serves a local processor read that the snoop deferred
// (line dirty in a remote node, or the state changed while queued).
func (cc *Controller) homeLocalRead(w *work) sim.Time {
	txn := w.txn
	line := txn.Line
	entry, dirExtra := cc.dir.Read(cc.eng.Now(), line)
	occ, act := cc.charge(protocol.HBusReadLocalDirtyRemote, dirExtra, 0)
	cc.spanEngine(w, act, dirExtra)
	cc.spanHome(w, act)

	op := &homeOp{line: line, requester: -1, parked: txn}
	cc.homeOps[line] = op

	switch entry.State {
	case directory.DirtyRemote:
		op.intervention = true
		op.finalDir = directory.Entry{State: directory.SharedRemote,
			Sharers: directory.Bitmap(0).Set(entry.Owner)}
		cc.send(act, entry.Owner, &protocol.Msg{
			Type: protocol.MsgFetchReq, Line: line, Src: cc.node, Requester: cc.node,
			Txn: txn.Attr,
		})
	case directory.NoRemote, directory.SharedRemote:
		// The directory changed while the request was queued: the line is
		// now clean at home (or shared remotely). Fetch from memory and
		// supply.
		occ += cc.homeFetchStall()
		op.needData = true
		op.finalDir = entry
		cc.fetchForOp(act, op, false)
	default:
		panic(fmt.Sprintf("core: local read of line %#x in unknown directory state %v", line, entry.State))
	}
	return occ
}

// homeLocalReadEx serves a local processor read-exclusive or upgrade that
// the snoop deferred (remote copies exist).
func (cc *Controller) homeLocalReadEx(w *work) sim.Time {
	txn := w.txn
	line := txn.Line
	upgrade := txn.Kind == smpbus.Upgrade
	entry, dirExtra := cc.dir.Read(cc.eng.Now(), line)

	op := &homeOp{line: line, requester: -1, parked: txn, excl: true, upgrade: upgrade,
		finalDir: directory.Entry{State: directory.NoRemote}}

	switch entry.State {
	case directory.SharedRemote:
		invals := entry.Sharers.Count()
		extra := invals - 1
		if extra < 0 {
			extra = 0
		}
		occ, act := cc.charge(protocol.HBusReadExLocalCachedRemote, dirExtra, extra)
		cc.spanEngine(w, act, dirExtra)
		cc.spanHome(w, act)
		cc.homeOps[line] = op
		op.acksLeft = invals
		cc.sendInvals(act, entry.Sharers, line)
		if !upgrade {
			occ += cc.homeFetchStall()
			op.needData = true
			cc.fetchForOp(act, op, true)
		}
		return occ
	case directory.DirtyRemote:
		occ, act := cc.charge(protocol.HBusReadExLocalDirtyRemote, dirExtra, 0)
		cc.spanEngine(w, act, dirExtra)
		cc.spanHome(w, act)
		cc.homeOps[line] = op
		op.intervention = true
		cc.send(act, entry.Owner, &protocol.Msg{
			Type: protocol.MsgFetchExReq, Line: line, Src: cc.node, Requester: cc.node,
			Txn: txn.Attr,
		})
		return occ
	case directory.NoRemote: // state changed while queued
		occ, act := cc.charge(protocol.HBusReadExLocalCachedRemote, dirExtra, 0)
		cc.spanEngine(w, act, dirExtra)
		cc.spanHome(w, act)
		cc.homeOps[line] = op
		if upgrade {
			cc.eng.At(act, func() { cc.finishOp(op) })
		} else {
			occ += cc.homeFetchStall()
			op.needData = true
			cc.fetchForOp(act, op, true)
		}
		return occ
	default:
		panic(fmt.Sprintf("core: local readex of line %#x in unknown directory state %v", line, entry.State))
	}
}

// sendInvals fans invalidations out to every node in the sharing vector,
// spacing the sends by the per-invalidation engine cost.
func (cc *Controller) sendInvals(act sim.Time, sharers directory.Bitmap, line uint64) {
	per := cc.perInvalCost()
	i := 0
	sharers.ForEach(func(node int) {
		cc.send(act+sim.Time(i)*per, node, &protocol.Msg{
			Type: protocol.MsgInval, Line: line, Src: cc.node,
		})
		i++
	})
}

// fetchForOp issues the home-side bus fetch that collects line data from
// local memory or the home node's own caches. The fetch completion is
// engine-free (the network/bus data transfer was armed by the handler).
func (cc *Controller) fetchForOp(at sim.Time, op *homeOp, exclusive bool) {
	kind := smpbus.Fetch
	if exclusive {
		kind = smpbus.FetchEx
	}
	var txn *smpbus.Txn
	txn = &smpbus.Txn{
		Kind: kind, Line: op.line, Src: smpbus.CCSrc, HomeLocal: true,
		Done: func(o smpbus.Outcome) {
			switch o.Status {
			case smpbus.RetryNeeded:
				// A live processor transaction on this line is mid-flight;
				// fetch again once it lands.
				cc.eng.After(cc.cfg.BusRetry, func() { cc.bus.Issue(txn) })
			case smpbus.OK:
				st, se := op.spanTxn()
				cc.spans.SpanEnd(st, obs.StageMem, se, cc.eng.Now())
				op.haveData = true
				op.data = o.Data
				cc.finishIfReady(op)
			default:
				panic(fmt.Sprintf("core: home fetch of local line %#x failed: %+v", op.line, o))
			}
		},
	}
	cc.eng.At(at, func() { cc.bus.Issue(txn) })
}

// finishIfReady completes the op if nothing remains outstanding.
func (cc *Controller) finishIfReady(op *homeOp) {
	if cc.homeOps[op.line] != op || op.finishing {
		return // already finished or finishing
	}
	if op.ready() {
		cc.finishOp(op)
	}
}

// finishOp responds to the requester, writes the final directory state,
// and replays any queued conflicting requests. For a local requester the
// op stays open until the deferred bus reply has actually delivered the
// line: retiring earlier would let a queued remote request race the supply
// and double-grant ownership.
func (cc *Controller) finishOp(op *homeOp) {
	if op.finishing {
		return
	}
	op.finishing = true
	now := cc.eng.Now()
	st, se := op.spanTxn()
	cc.spans.SpanEnd(st, obs.StageHomeWait, se, now)
	if op.requester >= 0 {
		mt := protocol.MsgDataShared
		if op.excl {
			mt = protocol.MsgDataExcl
		}
		cc.send(now, op.requester, &protocol.Msg{
			Type: mt, Line: op.line, Src: cc.node, Requester: op.requester,
			Data: op.data, Epoch: op.epoch, Txn: op.txn,
		})
	} else if op.parked != nil {
		orig := op.parked.Done
		op.parked.Done = func(o smpbus.Outcome) {
			orig(o)
			cc.retireOp(op)
		}
		cc.bus.Supply(op.parked, !op.upgrade, !op.excl, op.data)
		return
	}
	cc.retireOp(op)
}

// retireOp writes the op's final directory state and unblocks waiters.
func (cc *Controller) retireOp(op *homeOp) {
	if cc.homeOps[op.line] != op {
		return
	}
	cc.dir.Write(cc.eng.Now(), op.line, op.finalDir)
	delete(cc.homeOps, op.line)
	cc.replay(op.waiters)
}

// ---- network message handlers ----------------------------------------------

func (cc *Controller) handleMsg(w *work) sim.Time {
	msg := w.msg
	switch msg.Type {
	case protocol.MsgReadReq:
		return cc.homeRead(w)
	case protocol.MsgReadExReq:
		return cc.homeReadEx(w)
	case protocol.MsgFetchReq:
		return cc.ownerFetch(w, false)
	case protocol.MsgFetchExReq:
		return cc.ownerFetch(w, true)
	case protocol.MsgInval:
		return cc.sharerInval(w)
	case protocol.MsgInvalAck:
		return cc.homeInvalAck(w)
	case protocol.MsgDataShared, protocol.MsgDataExcl, protocol.MsgOwnerData:
		return cc.requesterData(w)
	case protocol.MsgFetchDone:
		return cc.homeFetchDone(w)
	case protocol.MsgFetchExDone:
		return cc.homeFetchExDone(w)
	case protocol.MsgFetchDataHome:
		return cc.homeFetchData(w)
	case protocol.MsgInterventionMiss:
		return cc.homeInterventionMiss(w)
	case protocol.MsgWriteBack:
		return cc.homeWriteBack(w)
	case protocol.MsgNack:
		return cc.requesterNack(w)
	default:
		panic(fmt.Sprintf("core: unhandled message %v", msg.Type))
	}
}

// homeRead serves a remote node's read request for a local line.
func (cc *Controller) homeRead(w *work) sim.Time {
	msg := w.msg
	line := msg.Line
	if op := cc.homeOps[line]; op != nil {
		return cc.requeue(&op.waiters, w)
	}
	entry, dirExtra := cc.dir.Read(cc.eng.Now(), line)
	r := msg.Requester

	switch entry.State {
	case directory.DirtyRemote:
		if entry.Owner == r && msg.Retry {
			// A retried request finding its own node registered as owner
			// must not park awaiting a write-back: the original request was
			// probably already granted (the grant is in flight), and a
			// write-back may never come. Bounce it; the requester drops the
			// NACK once the grant lands, or backs off and retries.
			return cc.nackRetry(msg, dirExtra)
		}
		op := &homeOp{line: line, requester: r, epoch: msg.Epoch, txn: msg.Txn}
		cc.homeOps[line] = op
		if entry.Owner == r {
			// The requester is the registered owner: its write-back is in
			// flight; wait for it, then reply with the fresh data.
			occ, act := cc.charge(protocol.HRemoteReadHomeDirty, dirExtra, 0)
			cc.spanEngine(w, act, dirExtra)
			cc.spanHome(w, act)
			op.waitWB = true
			op.finalDir = directory.Entry{State: directory.SharedRemote,
				Sharers: directory.Bitmap(0).Set(r)}
			return occ
		}
		occ, act := cc.charge(protocol.HRemoteReadHomeDirty, dirExtra, 0)
		cc.spanEngine(w, act, dirExtra)
		cc.spanHome(w, act)
		op.intervention = true
		op.finalDir = directory.Entry{State: directory.SharedRemote,
			Sharers: directory.Bitmap(0).Set(entry.Owner).Set(r)}
		cc.send(act, entry.Owner, &protocol.Msg{
			Type: protocol.MsgFetchReq, Line: line, Src: cc.node, Requester: r,
			Epoch: msg.Epoch, Txn: msg.Txn,
		})
		return occ
	case directory.NoRemote, directory.SharedRemote: // clean at home
		occ, act := cc.charge(protocol.HRemoteReadHomeClean, dirExtra, 0)
		cc.spanEngine(w, act, dirExtra)
		cc.spanHome(w, act)
		op := &homeOp{line: line, requester: r, needData: true, epoch: msg.Epoch,
			txn: msg.Txn}
		op.finalDir = directory.Entry{State: directory.SharedRemote,
			Sharers: entry.Sharers.Set(r)}
		cc.homeOps[line] = op
		cc.fetchForOp(act, op, false)
		return occ
	default:
		panic(fmt.Sprintf("core: remote read of line %#x in unknown directory state %v", line, entry.State))
	}
}

// homeReadEx serves a remote node's read-exclusive request for a local
// line.
func (cc *Controller) homeReadEx(w *work) sim.Time {
	msg := w.msg
	line := msg.Line
	if op := cc.homeOps[line]; op != nil {
		return cc.requeue(&op.waiters, w)
	}
	entry, dirExtra := cc.dir.Read(cc.eng.Now(), line)
	r := msg.Requester
	op := &homeOp{line: line, requester: r, excl: true, epoch: msg.Epoch,
		txn:      msg.Txn,
		finalDir: directory.Entry{State: directory.DirtyRemote, Owner: r}}

	switch entry.State {
	case directory.NoRemote:
		occ, act := cc.charge(protocol.HRemoteReadExHomeUncached, dirExtra, 0)
		cc.spanEngine(w, act, dirExtra)
		cc.spanHome(w, act)
		cc.homeOps[line] = op
		op.needData = true
		cc.fetchForOp(act, op, true)
		return occ
	case directory.SharedRemote:
		toInval := entry.Sharers.Clear(r)
		extra := toInval.Count() - 1
		if extra < 0 {
			extra = 0
		}
		occ, act := cc.charge(protocol.HRemoteReadExHomeShared, dirExtra, extra)
		cc.spanEngine(w, act, dirExtra)
		cc.spanHome(w, act)
		cc.homeOps[line] = op
		op.acksLeft = toInval.Count()
		op.needData = true
		cc.sendInvals(act, toInval, line)
		cc.fetchForOp(act, op, true)
		return occ
	case directory.DirtyRemote:
		if entry.Owner == r {
			if msg.Retry {
				// See homeRead: a retried request must not park on a
				// write-back that may never come.
				return cc.nackRetry(msg, dirExtra)
			}
			occ, act := cc.charge(protocol.HRemoteReadExHomeDirty, dirExtra, 0)
			cc.spanEngine(w, act, dirExtra)
			cc.spanHome(w, act)
			cc.homeOps[line] = op
			op.waitWB = true
			return occ
		}
		occ, act := cc.charge(protocol.HRemoteReadExHomeDirty, dirExtra, 0)
		cc.spanEngine(w, act, dirExtra)
		cc.spanHome(w, act)
		cc.homeOps[line] = op
		op.intervention = true
		cc.send(act, entry.Owner, &protocol.Msg{
			Type: protocol.MsgFetchExReq, Line: line, Src: cc.node, Requester: r,
			Epoch: msg.Epoch, Txn: msg.Txn,
		})
		return occ
	default:
		panic(fmt.Sprintf("core: remote readex of line %#x in unknown directory state %v", line, entry.State))
	}
}

// ownerFetch serves an intervention at the (supposed) owner node.
func (cc *Controller) ownerFetch(w *work, exclusive bool) sim.Time {
	msg := w.msg
	line := msg.Line
	home := msg.Src
	if m := cc.mshr[line]; m != nil && (m.filling || m.responseArrived || cc.cfg.Robust()) {
		// Our own fill for this line is racing (its data response is on
		// the bus or still in an input queue); process the intervention
		// after the fill lands. Under the robust configuration an
		// intervention can also overtake the grant itself: the previous
		// owner forwards data straight to us while its completion notice
		// travels to the home, so a delayed forward lets the home's next
		// intervention arrive first. The home only intervenes the node
		// its directory names as owner, and the reliable link delivers
		// every grant, so an outstanding miss here always means the data
		// is on its way — answering the bus now would report a spurious
		// InterventionMiss and wedge the home waiting for a write-back.
		return cc.requeue(&m.waiters, w)
	}
	fromHome := msg.Requester == home
	var h protocol.Handler
	switch {
	case exclusive && fromHome:
		h = protocol.HFetchExOwnerFromHome
	case exclusive:
		h = protocol.HFetchExOwnerRemoteReq
	case fromHome:
		h = protocol.HFetchOwnerFromHome
	default:
		h = protocol.HFetchOwnerRemoteReq
	}
	occ, act := cc.charge(h, 0, 0)
	cc.spanEngine(w, act, 0)

	kind := smpbus.Fetch
	if exclusive {
		kind = smpbus.FetchEx
	}
	requester := msg.Requester
	spanID, spanEpoch := msg.Txn, msg.Epoch
	var txn *smpbus.Txn
	txn = &smpbus.Txn{
		Kind: kind, Line: line, Src: smpbus.CCSrc, HomeLocal: false,
		Done: func(o smpbus.Outcome) {
			switch o.Status {
			case smpbus.RetryNeeded:
				// A line transfer is in flight on our bus; retry after it
				// lands.
				cc.eng.After(cc.cfg.BusRetry, func() { cc.bus.Issue(txn) })
			case smpbus.NoData:
				cc.send(cc.eng.Now(), home, &protocol.Msg{
					Type: protocol.MsgInterventionMiss, Line: line, Src: cc.node,
				})
			case smpbus.OK:
				cc.spans.SpanEnd(spanID, obs.StageMem, spanEpoch, cc.eng.Now())
				if fromHome {
					cc.send(cc.eng.Now(), home, &protocol.Msg{
						Type: protocol.MsgFetchDataHome, Line: line, Src: cc.node,
						Dirty: o.Dirty, Excl: exclusive, Data: o.Data,
						Txn: spanID, Epoch: spanEpoch,
					})
					return
				}
				cc.send(cc.eng.Now(), requester, &protocol.Msg{
					Type: protocol.MsgOwnerData, Line: line, Src: cc.node,
					Requester: requester, Excl: exclusive, Data: o.Data,
					Epoch: spanEpoch, Txn: spanID,
				})
				if exclusive {
					cc.send(cc.eng.Now(), home, &protocol.Msg{
						Type: protocol.MsgFetchExDone, Line: line, Src: cc.node,
					})
				} else {
					cc.send(cc.eng.Now(), home, &protocol.Msg{
						Type: protocol.MsgFetchDone, Line: line, Src: cc.node,
						Dirty: o.Dirty, Data: o.Data,
					})
				}
			default:
				panic(fmt.Sprintf("core: unexpected intervention outcome %+v on line %#x", o, line))
			}
		},
	}
	cc.eng.At(act, func() { cc.bus.Issue(txn) })
	return occ
}

// sharerInval invalidates local copies on behalf of the home node.
func (cc *Controller) sharerInval(w *work) sim.Time {
	msg := w.msg
	line := msg.Line
	home := msg.Src
	if m := cc.mshr[line]; m != nil && (m.filling || m.responseArrived) {
		return cc.requeue(&m.waiters, w)
	}
	occ, act := cc.charge(protocol.HInvalAtSharer, 0, 0)
	var txn *smpbus.Txn
	txn = &smpbus.Txn{
		Kind: smpbus.Inval, Line: line, Src: smpbus.CCSrc, HomeLocal: false,
		Done: func(o smpbus.Outcome) {
			if o.Status == smpbus.RetryNeeded {
				cc.eng.After(cc.cfg.BusRetry, func() { cc.bus.Issue(txn) })
				return
			}
			cc.send(cc.eng.Now(), home, &protocol.Msg{
				Type: protocol.MsgInvalAck, Line: line, Src: cc.node,
			})
		},
	}
	cc.eng.At(act, func() { cc.bus.Issue(txn) })
	return occ
}

// homeInvalAck counts an acknowledgement at the home node.
func (cc *Controller) homeInvalAck(w *work) sim.Time {
	msg := w.msg
	op := cc.homeOps[msg.Line]
	if op == nil || op.acksLeft <= 0 {
		panic(fmt.Sprintf("core: stray invalidation ack for line %#x", msg.Line))
	}
	op.acksLeft--
	h := protocol.HInvalAckMore
	if op.acksLeft == 0 {
		if op.requester < 0 {
			h = protocol.HInvalAckLastLocal
		} else {
			h = protocol.HInvalAckLastRemote
		}
	}
	occ, act := cc.charge(h, 0, 0)
	if op.acksLeft == 0 {
		cc.eng.At(act, func() { cc.finishIfReady(op) })
	}
	return occ
}

// requesterData installs a data response for an outstanding miss. With the
// robustness knobs on, a retried request can legitimately draw more than
// one grant; stray and duplicate responses are counted and dropped instead
// of treated as protocol bugs.
func (cc *Controller) requesterData(w *work) sim.Time {
	msg := w.msg
	m := cc.mshr[msg.Line]
	if cc.cfg.Robust() && (m == nil || m.filling || msg.Epoch != m.epoch) {
		occ, _ := cc.charge(protocol.HNackAtRequester, 0, 0)
		cc.st.StrayDrops++
		return occ
	}
	if m == nil {
		panic(fmt.Sprintf("core: data response with no MSHR for line %#x", msg.Line))
	}
	if m.filling {
		panic(fmt.Sprintf("core: duplicate data response for line %#x", msg.Line))
	}
	shared := msg.Type == protocol.MsgDataShared ||
		(msg.Type == protocol.MsgOwnerData && !msg.Excl)
	h := protocol.HDataRespRead
	if !shared {
		h = protocol.HDataRespReadEx
	}
	occ, act := cc.charge(h, 0, 0)
	cc.spanEngine(w, act, 0)
	if m.attempts > 0 {
		cc.st.RetryLat.Add(cc.eng.Now() - m.issuedAt)
	}
	m.data = msg.Data
	cc.eng.At(act, func() { cc.mshrFill(m, shared) })
	return occ
}

// homeFetchDone closes a read forwarded to a remote owner (remote
// requester got its data directly from the owner).
func (cc *Controller) homeFetchDone(w *work) sim.Time {
	msg := w.msg
	op := cc.homeOps[msg.Line]
	if op == nil {
		panic(fmt.Sprintf("core: FetchDone with no home op for line %#x", msg.Line))
	}
	occ, act := cc.charge(protocol.HOwnerWBAtHomeRead, 0, 0)
	if msg.Dirty {
		cc.memoryWrite(act, msg.Line, msg.Data)
	}
	op.intervention = false
	cc.eng.At(act, func() { cc.finishIfReadyNoResponse(op) })
	return occ
}

// homeFetchExDone closes a read-exclusive forwarded to a remote owner.
func (cc *Controller) homeFetchExDone(w *work) sim.Time {
	msg := w.msg
	op := cc.homeOps[msg.Line]
	if op == nil {
		panic(fmt.Sprintf("core: FetchExDone with no home op for line %#x", msg.Line))
	}
	occ, act := cc.charge(protocol.HOwnerAckAtHome, 0, 0)
	op.intervention = false
	cc.eng.At(act, func() { cc.finishIfReadyNoResponse(op) })
	return occ
}

// homeFetchData receives owner data when the home itself was the
// requester.
func (cc *Controller) homeFetchData(w *work) sim.Time {
	msg := w.msg
	op := cc.homeOps[msg.Line]
	if op == nil {
		panic(fmt.Sprintf("core: FetchDataHome with no home op for line %#x", msg.Line))
	}
	h := protocol.HOwnerDataAtHomeRead
	if msg.Excl {
		h = protocol.HOwnerDataAtHomeReadEx
	}
	occ, act := cc.charge(h, 0, 0)
	cc.spanEngine(w, act, 0)
	if msg.Dirty && !msg.Excl {
		// The line stays shared: home memory must absorb the dirty data.
		cc.memoryWrite(act, msg.Line, msg.Data)
	}
	op.intervention = false
	op.haveData = true
	op.data = msg.Data
	cc.eng.At(act, func() { cc.finishIfReady(op) })
	return occ
}

// homeInterventionMiss notes that the owner no longer held the line: its
// write-back is (or was) in flight and carries the data.
func (cc *Controller) homeInterventionMiss(w *work) sim.Time {
	msg := w.msg
	op := cc.homeOps[msg.Line]
	if op == nil {
		panic(fmt.Sprintf("core: InterventionMiss with no home op for line %#x", msg.Line))
	}
	occ, act := cc.charge(protocol.HInterventionMissAtHome, 0, 0)
	op.intervention = false
	op.waitWB = true
	cc.eng.At(act, func() { cc.finishIfReady(op) })
	return occ
}

// homeWriteBack absorbs an eviction write-back at the home node.
func (cc *Controller) homeWriteBack(w *work) sim.Time {
	msg := w.msg
	line := msg.Line
	occ, act := cc.charge(protocol.HWriteBackAtHome, 0, 0)
	// The arriving data is visible to reads immediately (the home's
	// write-back buffer is snooped); the bus transaction below only
	// models the bandwidth of the actual memory update. Committing the
	// shadow value here closes the window between the directory update
	// and the write-back txn reaching the bus, where a read could
	// otherwise sample stale memory.
	cc.bus.SetMemValue(line, msg.Data)
	cc.memoryWrite(act, line, msg.Data)

	if op := cc.homeOps[line]; op != nil {
		op.wbArrived = true
		op.haveData = true
		op.data = msg.Data
		if op.intervention && msg.Src == op.requester {
			// The requester was granted ownership directly by the old
			// owner and has already written the line back: the op must
			// not retire recording it as dirty owner, or a later request
			// from it would park waiting for a write-back that already
			// came.
			e := directory.Entry{}
			if msg.SharedLeft {
				e = directory.Entry{State: directory.SharedRemote,
					Sharers: directory.Bitmap(0).Set(msg.Src)}
			}
			op.finalDir = e
		}
		cc.eng.At(act, func() { cc.finishIfReady(op) })
		return occ
	}
	var e directory.Entry
	if msg.SharedLeft {
		e = directory.Entry{State: directory.SharedRemote,
			Sharers: directory.Bitmap(0).Set(msg.Src)}
	}
	cc.dir.Write(cc.eng.Now(), line, e)
	return occ
}

// finishIfReadyNoResponse completes an op whose requester already received
// data directly from the owner: no home data response is sent.
func (cc *Controller) finishIfReadyNoResponse(op *homeOp) {
	if cc.homeOps[op.line] != op || op.finishing {
		return
	}
	if !op.ready() {
		return
	}
	if op.requester >= 0 {
		// Data went owner->requester directly; just retire the op.
		cc.dir.Write(cc.eng.Now(), op.line, op.finalDir)
		delete(cc.homeOps, op.line)
		cc.replay(op.waiters)
		return
	}
	cc.finishOp(op)
}

// memoryWrite updates home memory through a controller-issued bus
// write-back (contends for the bus and the banks, occupies no engine time
// beyond what the handler already charged).
func (cc *Controller) memoryWrite(at sim.Time, line uint64, data uint64) {
	txn := &smpbus.Txn{
		Kind: smpbus.WriteBack, Line: line, Src: smpbus.CCSrc, HomeLocal: true,
		Data: data,
		Done: func(smpbus.Outcome) {},
	}
	cc.eng.At(at, func() { cc.bus.Issue(txn) })
}
