// Package fault generates and applies deterministic fault schedules for
// chaos testing the coherence protocol's recovery machinery. A Schedule is
// a pure function of its seed: the same seed always produces the same fault
// sequence, so any failing chaos run reproduces exactly from the seed alone.
//
// Message faults (drop, duplicate, delay, corrupt) target the k-th message
// entering the network, counted in global send order — a coordinate that is
// stable across runs because the simulation itself is deterministic.
// Component faults (engine stall, NI port brownout, bus stall) target a
// node at a simulated time. The Injector turns a Schedule into the
// interconnect.FaultHook plus the component-fault wiring that
// machine.InjectFaults installs.
package fault

import (
	"fmt"
	"math/rand"
	"strings"

	"ccnuma/internal/interconnect"
	"ccnuma/internal/protocol"
	"ccnuma/internal/sim"
)

// Kind enumerates the injectable fault types.
type Kind uint8

const (
	// Drop loses a message on the link.
	Drop Kind = iota
	// Duplicate injects a second copy of a message.
	Duplicate
	// Delay adds extra switch-traversal latency to a message.
	Delay
	// Corrupt mangles a message's data payload (caught by link CRC when
	// Config.NetReliable is on).
	Corrupt
	// EngineStall freezes one protocol engine for a duration (transient
	// controller hiccup: ECC scrub, microcode assist, thermal throttle).
	EngineStall
	// Brownout takes one NI port out of service for a duration.
	Brownout
	// BusStall occupies one node's split-transaction bus for a duration.
	BusStall

	numKinds
)

var kindNames = [...]string{
	"drop", "dup", "delay", "corrupt", "engine-stall", "brownout", "bus-stall",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// MessageFault reports whether the kind targets a network message (as
// opposed to a component at a point in simulated time).
func (k Kind) MessageFault() bool { return k <= Corrupt }

// Event is one scheduled fault.
type Event struct {
	Kind Kind

	// MsgIndex is the global send-order index the fault hits (message
	// faults only).
	MsgIndex uint64
	// Extra is the added traversal latency of a Delay fault.
	Extra sim.Time

	// Node, Engine, Out, At, Dur locate and size component faults:
	// EngineStall uses Node/Engine/At/Dur, Brownout uses Node/Out/At/Dur,
	// BusStall uses Node/At/Dur.
	Node   int
	Engine int
	Out    bool
	At     sim.Time
	Dur    sim.Time
}

func (e Event) String() string {
	if e.Kind.MessageFault() {
		if e.Kind == Delay {
			return fmt.Sprintf("%s@msg%d(+%d)", e.Kind, e.MsgIndex, int64(e.Extra))
		}
		return fmt.Sprintf("%s@msg%d", e.Kind, e.MsgIndex)
	}
	switch e.Kind {
	case EngineStall:
		return fmt.Sprintf("%s@t%d(n%d/e%d,%d)", e.Kind, int64(e.At), e.Node, e.Engine, int64(e.Dur))
	case Brownout:
		dir := "in"
		if e.Out {
			dir = "out"
		}
		return fmt.Sprintf("%s@t%d(n%d/%s,%d)", e.Kind, int64(e.At), e.Node, dir, int64(e.Dur))
	default:
		return fmt.Sprintf("%s@t%d(n%d,%d)", e.Kind, int64(e.At), e.Node, int64(e.Dur))
	}
}

// Schedule is a deterministic, seed-reproducible fault sequence.
type Schedule struct {
	Seed   int64
	Events []Event
}

// String renders the schedule compactly for logs and repro reports.
func (s *Schedule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d [", s.Seed)
	for i, e := range s.Events {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(e.String())
	}
	b.WriteByte(']')
	return b.String()
}

// Params bounds schedule generation.
type Params struct {
	// Events is how many faults to draw.
	Events int
	// Horizon is the simulated-time window component faults land in.
	Horizon sim.Time
	// Messages is the (estimated) message count message faults index into;
	// indices past the run's actual traffic simply never fire.
	Messages uint64
	// Nodes and Engines size the component-fault targets.
	Nodes   int
	Engines int
}

// Generate draws a schedule from the seed. Identical (seed, Params) always
// yield an identical schedule.
func Generate(seed int64, p Params) *Schedule {
	rng := rand.New(rand.NewSource(seed))
	if p.Events <= 0 {
		p.Events = 4
	}
	if p.Messages == 0 {
		p.Messages = 1000
	}
	if p.Horizon <= 0 {
		p.Horizon = 1_000_000
	}
	if p.Nodes <= 0 {
		p.Nodes = 1
	}
	if p.Engines <= 0 {
		p.Engines = 1
	}
	s := &Schedule{Seed: seed, Events: make([]Event, 0, p.Events)}
	for i := 0; i < p.Events; i++ {
		// Message faults dominate (weights 30/15/15/10); component faults
		// split the rest (10/10/10).
		var k Kind
		switch w := rng.Intn(100); {
		case w < 30:
			k = Drop
		case w < 45:
			k = Duplicate
		case w < 60:
			k = Delay
		case w < 70:
			k = Corrupt
		case w < 80:
			k = EngineStall
		case w < 90:
			k = Brownout
		default:
			k = BusStall
		}
		ev := Event{Kind: k}
		if k.MessageFault() {
			ev.MsgIndex = uint64(rng.Int63n(int64(p.Messages)))
			if k == Delay {
				ev.Extra = sim.Time(20 + rng.Int63n(480))
			}
		} else {
			ev.Node = rng.Intn(p.Nodes)
			ev.At = sim.Time(rng.Int63n(int64(p.Horizon)))
			ev.Dur = sim.Time(50 + rng.Int63n(1950))
			switch k {
			case EngineStall:
				ev.Engine = rng.Intn(p.Engines)
			case Brownout:
				ev.Out = rng.Intn(2) == 0
			}
		}
		s.Events = append(s.Events, ev)
	}
	return s
}

// corruptMask is XORed into a corrupted message's data payload.
const corruptMask = 0xdeadbeefdeadbeef

// Injector applies a Schedule to a running machine: its NetFault method is
// the interconnect.FaultHook for the message faults, and the component
// faults are read out by machine.InjectFaults. It also counts what was
// actually applied (scheduled message indices beyond the run's traffic
// never fire).
type Injector struct {
	Schedule *Schedule

	msgFaults map[uint64][]Event
	msgIndex  uint64
	applied   [numKinds]uint64
}

// NewInjector indexes a schedule for application.
func NewInjector(s *Schedule) *Injector {
	in := &Injector{Schedule: s, msgFaults: make(map[uint64][]Event)}
	for _, ev := range s.Events {
		if ev.Kind.MessageFault() {
			in.msgFaults[ev.MsgIndex] = append(in.msgFaults[ev.MsgIndex], ev)
		}
	}
	return in
}

// NetFault is the interconnect.FaultHook: it counts original messages in
// send order and folds every fault scheduled for the current index into one
// Decision.
func (in *Injector) NetFault(src, dst int, payload interface{}) interconnect.Decision {
	idx := in.msgIndex
	in.msgIndex++
	evs := in.msgFaults[idx]
	if len(evs) == 0 {
		return interconnect.Decision{}
	}
	var d interconnect.Decision
	for _, ev := range evs {
		switch ev.Kind {
		case Drop:
			d.Drop = true
			in.applied[Drop]++
		case Duplicate:
			d.Duplicate = true
			in.applied[Duplicate]++
		case Delay:
			d.Delay += ev.Extra
			in.applied[Delay]++
		case Corrupt:
			if msg, ok := payload.(*protocol.Msg); ok {
				mutated := *msg
				mutated.Data ^= corruptMask
				d.Replace = &mutated
				in.applied[Corrupt]++
			}
		}
	}
	return d
}

// ComponentEvents returns the schedule's non-message faults, for the
// machine to arm at their simulated times.
func (in *Injector) ComponentEvents() []Event {
	var out []Event
	for _, ev := range in.Schedule.Events {
		if !ev.Kind.MessageFault() {
			out = append(out, ev)
		}
	}
	return out
}

// NoteApplied records that a component fault actually took effect (the
// machine calls this when it fires one).
func (in *Injector) NoteApplied(k Kind) { in.applied[k]++ }

// Applied returns how many faults of kind k took effect.
func (in *Injector) Applied(k Kind) uint64 { return in.applied[k] }

// AppliedTotal returns the number of faults that took effect across kinds.
func (in *Injector) AppliedTotal() uint64 {
	var n uint64
	for _, c := range in.applied {
		n += c
	}
	return n
}

// AppliedByKind returns a name → count map of the faults that took effect,
// for the run artifact.
func (in *Injector) AppliedByKind() map[string]uint64 {
	out := make(map[string]uint64)
	for k := Kind(0); k < numKinds; k++ {
		if in.applied[k] > 0 {
			out[k.String()] = in.applied[k]
		}
	}
	return out
}

// MsgCount returns how many original messages the injector has seen.
func (in *Injector) MsgCount() uint64 { return in.msgIndex }
