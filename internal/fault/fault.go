// Package fault generates and applies deterministic fault schedules for
// chaos testing the coherence protocol's recovery machinery. A Schedule is
// a pure function of its seed: the same seed always produces the same fault
// sequence, so any failing chaos run reproduces exactly from the seed alone.
//
// Message faults (drop, duplicate, delay, corrupt) target the k-th original
// message sent on one directed (src, dst) node pair, counted in the pair's
// send order — a coordinate that is stable across runs because each node's
// send order is deterministic, and stable across shard counts because a
// sharded simulation reproduces every node's send order exactly even though
// it does not track a global interleaving.
// Component faults (engine stall, NI port brownout, bus stall) target a
// node at a simulated time. The Injector turns a Schedule into the
// interconnect.FaultHook plus the component-fault wiring that
// machine.InjectFaults installs.
package fault

import (
	"fmt"
	"math/rand"
	"strings"
	"sync/atomic"

	"ccnuma/internal/interconnect"
	"ccnuma/internal/protocol"
	"ccnuma/internal/sim"
)

// Kind enumerates the injectable fault types.
type Kind uint8

const (
	// Drop loses a message on the link.
	Drop Kind = iota
	// Duplicate injects a second copy of a message.
	Duplicate
	// Delay adds extra switch-traversal latency to a message.
	Delay
	// Corrupt mangles a message's data payload (caught by link CRC when
	// Config.NetReliable is on).
	Corrupt
	// EngineStall freezes one protocol engine for a duration (transient
	// controller hiccup: ECC scrub, microcode assist, thermal throttle).
	EngineStall
	// Brownout takes one NI port out of service for a duration.
	Brownout
	// BusStall occupies one node's split-transaction bus for a duration.
	BusStall

	numKinds
)

var kindNames = [...]string{
	"drop", "dup", "delay", "corrupt", "engine-stall", "brownout", "bus-stall",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// MessageFault reports whether the kind targets a network message (as
// opposed to a component at a point in simulated time).
func (k Kind) MessageFault() bool { return k <= Corrupt }

// Event is one scheduled fault.
type Event struct {
	Kind Kind

	// Src, Dst, MsgIndex locate a message fault: the MsgIndex-th original
	// message sent from node Src to node Dst.
	Src, Dst int
	MsgIndex uint64
	// Extra is the added traversal latency of a Delay fault.
	Extra sim.Time

	// Node, Engine, Out, At, Dur locate and size component faults:
	// EngineStall uses Node/Engine/At/Dur, Brownout uses Node/Out/At/Dur,
	// BusStall uses Node/At/Dur.
	Node   int
	Engine int
	Out    bool
	At     sim.Time
	Dur    sim.Time
}

func (e Event) String() string {
	if e.Kind.MessageFault() {
		if e.Kind == Delay {
			return fmt.Sprintf("%s@%d>%d#%d(+%d)", e.Kind, e.Src, e.Dst, e.MsgIndex, int64(e.Extra))
		}
		return fmt.Sprintf("%s@%d>%d#%d", e.Kind, e.Src, e.Dst, e.MsgIndex)
	}
	switch e.Kind {
	case EngineStall:
		return fmt.Sprintf("%s@t%d(n%d/e%d,%d)", e.Kind, int64(e.At), e.Node, e.Engine, int64(e.Dur))
	case Brownout:
		dir := "in"
		if e.Out {
			dir = "out"
		}
		return fmt.Sprintf("%s@t%d(n%d/%s,%d)", e.Kind, int64(e.At), e.Node, dir, int64(e.Dur))
	default:
		return fmt.Sprintf("%s@t%d(n%d,%d)", e.Kind, int64(e.At), e.Node, int64(e.Dur))
	}
}

// Schedule is a deterministic, seed-reproducible fault sequence.
type Schedule struct {
	Seed   int64
	Events []Event
}

// String renders the schedule compactly for logs and repro reports.
func (s *Schedule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d [", s.Seed)
	for i, e := range s.Events {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(e.String())
	}
	b.WriteByte(']')
	return b.String()
}

// Params bounds schedule generation.
type Params struct {
	// Events is how many faults to draw.
	Events int
	// Horizon is the simulated-time window component faults land in.
	Horizon sim.Time
	// Messages is the (estimated) total message count of the run; message
	// faults draw a per-pair index from its per-pair share, and indices
	// past a pair's actual traffic simply never fire.
	Messages uint64
	// Nodes and Engines size the component-fault targets.
	Nodes   int
	Engines int
}

// Generate draws a schedule from the seed. Identical (seed, Params) always
// yield an identical schedule.
func Generate(seed int64, p Params) *Schedule {
	rng := rand.New(rand.NewSource(seed))
	if p.Events <= 0 {
		p.Events = 4
	}
	if p.Messages == 0 {
		p.Messages = 1000
	}
	if p.Horizon <= 0 {
		p.Horizon = 1_000_000
	}
	if p.Nodes <= 0 {
		p.Nodes = 1
	}
	if p.Engines <= 0 {
		p.Engines = 1
	}
	s := &Schedule{Seed: seed, Events: make([]Event, 0, p.Events)}
	for i := 0; i < p.Events; i++ {
		// Message faults dominate (weights 30/15/15/10); component faults
		// split the rest (10/10/10).
		var k Kind
		switch w := rng.Intn(100); {
		case w < 30:
			k = Drop
		case w < 45:
			k = Duplicate
		case w < 60:
			k = Delay
		case w < 70:
			k = Corrupt
		case w < 80:
			k = EngineStall
		case w < 90:
			k = Brownout
		default:
			k = BusStall
		}
		ev := Event{Kind: k}
		if k.MessageFault() {
			ev.Src = rng.Intn(p.Nodes)
			ev.Dst = ev.Src
			if p.Nodes > 1 {
				// Self-sends never cross the network, so aim the fault at a
				// remote destination.
				ev.Dst = (ev.Src + 1 + rng.Intn(p.Nodes-1)) % p.Nodes
			}
			pairMsgs := int64(p.Messages) / int64(p.Nodes*p.Nodes)
			if pairMsgs < 1 {
				pairMsgs = 1
			}
			ev.MsgIndex = uint64(rng.Int63n(pairMsgs))
			if k == Delay {
				ev.Extra = sim.Time(20 + rng.Int63n(480))
			}
		} else {
			ev.Node = rng.Intn(p.Nodes)
			ev.At = sim.Time(rng.Int63n(int64(p.Horizon)))
			ev.Dur = sim.Time(50 + rng.Int63n(1950))
			switch k {
			case EngineStall:
				ev.Engine = rng.Intn(p.Engines)
			case Brownout:
				ev.Out = rng.Intn(2) == 0
			}
		}
		s.Events = append(s.Events, ev)
	}
	return s
}

// corruptMask is XORed into a corrupted message's data payload.
const corruptMask = 0xdeadbeefdeadbeef

// Injector applies a Schedule to a running machine: its NetFault method is
// the interconnect.FaultHook for the message faults, and the component
// faults are read out by machine.InjectFaults. It also counts what was
// actually applied (scheduled message indices beyond the run's traffic
// never fire).
type Injector struct {
	Schedule *Schedule

	msgFaults map[pairIdx][]Event
	// pairNext[src][dst] counts the original messages seen on the pair. A
	// pair's counter is only ever touched from its source node's engine, so
	// no synchronization is needed even when the simulation is sharded.
	pairNext [][]uint64
	applied  [numKinds]uint64
}

// pairIdx is a message-fault coordinate: the idx-th original message on the
// directed (src, dst) pair.
type pairIdx struct {
	src, dst int
	idx      uint64
}

// NewInjector indexes a schedule for application on a machine with the
// given node count (faults aimed outside it never fire).
func NewInjector(s *Schedule, nodes int) *Injector {
	in := &Injector{Schedule: s, msgFaults: make(map[pairIdx][]Event)}
	in.pairNext = make([][]uint64, nodes)
	for i := range in.pairNext {
		in.pairNext[i] = make([]uint64, nodes)
	}
	for _, ev := range s.Events {
		if ev.Kind.MessageFault() {
			k := pairIdx{src: ev.Src, dst: ev.Dst, idx: ev.MsgIndex}
			in.msgFaults[k] = append(in.msgFaults[k], ev)
		}
	}
	return in
}

// NetFault is the interconnect.FaultHook: it counts original messages per
// directed pair in send order and folds every fault scheduled for the
// current coordinate into one Decision.
func (in *Injector) NetFault(src, dst int, payload interface{}) interconnect.Decision {
	if src < 0 || src >= len(in.pairNext) || dst < 0 || dst >= len(in.pairNext) {
		return interconnect.Decision{}
	}
	idx := in.pairNext[src][dst]
	in.pairNext[src][dst]++
	evs := in.msgFaults[pairIdx{src: src, dst: dst, idx: idx}]
	if len(evs) == 0 {
		return interconnect.Decision{}
	}
	var d interconnect.Decision
	for _, ev := range evs {
		switch ev.Kind {
		case Drop:
			d.Drop = true
			atomic.AddUint64(&in.applied[Drop], 1)
		case Duplicate:
			d.Duplicate = true
			atomic.AddUint64(&in.applied[Duplicate], 1)
		case Delay:
			d.Delay += ev.Extra
			atomic.AddUint64(&in.applied[Delay], 1)
		case Corrupt:
			if msg, ok := payload.(*protocol.Msg); ok {
				mutated := *msg
				mutated.Data ^= corruptMask
				d.Replace = &mutated
				atomic.AddUint64(&in.applied[Corrupt], 1)
			}
		}
	}
	return d
}

// ComponentEvents returns the schedule's non-message faults, for the
// machine to arm at their simulated times.
func (in *Injector) ComponentEvents() []Event {
	var out []Event
	for _, ev := range in.Schedule.Events {
		if !ev.Kind.MessageFault() {
			out = append(out, ev)
		}
	}
	return out
}

// NoteApplied records that a component fault actually took effect (the
// machine calls this when it fires one). Component faults on different
// nodes may fire from different shard workers, so the count is atomic.
func (in *Injector) NoteApplied(k Kind) { atomic.AddUint64(&in.applied[k], 1) }

// Applied returns how many faults of kind k took effect.
func (in *Injector) Applied(k Kind) uint64 { return in.applied[k] }

// AppliedTotal returns the number of faults that took effect across kinds.
func (in *Injector) AppliedTotal() uint64 {
	var n uint64
	for _, c := range in.applied {
		n += c
	}
	return n
}

// AppliedByKind returns a name → count map of the faults that took effect,
// for the run artifact.
func (in *Injector) AppliedByKind() map[string]uint64 {
	out := make(map[string]uint64)
	for k := Kind(0); k < numKinds; k++ {
		if in.applied[k] > 0 {
			out[k.String()] = in.applied[k]
		}
	}
	return out
}

// MsgCount returns how many original messages the injector has seen.
func (in *Injector) MsgCount() uint64 {
	var n uint64
	for _, row := range in.pairNext {
		for _, c := range row {
			n += c
		}
	}
	return n
}
