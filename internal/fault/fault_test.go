package fault

import (
	"testing"

	"ccnuma/internal/interconnect"
	"ccnuma/internal/protocol"
)

// TestInjectorNetFault pins the message-fault folding: the injector counts
// messages per directed pair, applies each event at its pair-order index,
// corrupts only protocol payloads, and accounts what it applied.
func TestInjectorNetFault(t *testing.T) {
	sch := &Schedule{Seed: 1, Events: []Event{
		{Kind: Drop, Src: 0, Dst: 1, MsgIndex: 0},
		{Kind: Duplicate, Src: 0, Dst: 1, MsgIndex: 1},
		{Kind: Delay, Src: 1, Dst: 0, MsgIndex: 0, Extra: 40},
		{Kind: Corrupt, Src: 1, Dst: 0, MsgIndex: 1},
		{Kind: Corrupt, Src: 0, Dst: 1, MsgIndex: 2},
	}}
	inj := NewInjector(sch, 2)

	d := inj.NetFault(0, 1, &protocol.Msg{})
	if !d.Drop {
		t.Error("0>1 #0: expected Drop")
	}
	d = inj.NetFault(0, 1, &protocol.Msg{})
	if !d.Duplicate {
		t.Error("0>1 #1: expected Duplicate")
	}
	d = inj.NetFault(1, 0, &protocol.Msg{})
	if d.Delay != 40 {
		t.Errorf("1>0 #0: Delay = %d, want 40", d.Delay)
	}
	d = inj.NetFault(1, 0, &protocol.Msg{Data: 7})
	m, ok := d.Replace.(*protocol.Msg)
	if !ok {
		t.Fatal("1>0 #1: expected a corrupted *protocol.Msg replacement")
	}
	if m.Data == 7 {
		t.Error("1>0 #1: corruption left the payload intact")
	}
	// A corrupt event landing on a non-protocol payload is skipped.
	d = inj.NetFault(0, 1, "opaque")
	if d.Replace != nil {
		t.Error("0>1 #2: corrupted a non-protocol payload")
	}
	// Past the schedule: clean passthrough.
	d = inj.NetFault(0, 1, &protocol.Msg{})
	if d != (interconnect.Decision{}) {
		t.Errorf("0>1 #3: expected a zero decision, got %+v", d)
	}
	// A pair's counter is independent of every other pair: the same index
	// on a different pair does not fire its faults.
	d = inj.NetFault(1, 0, &protocol.Msg{})
	if d != (interconnect.Decision{}) {
		t.Errorf("1>0 #2: expected a zero decision, got %+v", d)
	}

	if inj.MsgCount() != 7 {
		t.Errorf("MsgCount = %d, want 7", inj.MsgCount())
	}
	if got := inj.Applied(Drop); got != 1 {
		t.Errorf("Applied(Drop) = %d, want 1", got)
	}
	if got := inj.AppliedTotal(); got != 4 {
		t.Errorf("AppliedTotal = %d, want 4 (the skipped corrupt doesn't count)", got)
	}
	by := inj.AppliedByKind()
	if by["corrupt"] != 1 || by["delay"] != 1 || by["dup"] != 1 {
		t.Errorf("AppliedByKind = %v", by)
	}
}

// TestInjectorOutOfRange checks that faults aimed outside the machine's node
// range never fire (a schedule generated for a bigger machine stays safe).
func TestInjectorOutOfRange(t *testing.T) {
	sch := &Schedule{Seed: 2, Events: []Event{
		{Kind: Drop, Src: 3, Dst: 1, MsgIndex: 0},
	}}
	inj := NewInjector(sch, 2)
	if d := inj.NetFault(3, 1, &protocol.Msg{}); d != (interconnect.Decision{}) {
		t.Errorf("out-of-range src: expected a zero decision, got %+v", d)
	}
	if inj.AppliedTotal() != 0 {
		t.Errorf("AppliedTotal = %d, want 0", inj.AppliedTotal())
	}
}

// TestGenerateBounds checks that generated coordinates respect the params.
func TestGenerateBounds(t *testing.T) {
	p := Params{Events: 64, Horizon: 10_000, Messages: 500, Nodes: 4, Engines: 2}
	sch := Generate(99, p)
	if len(sch.Events) != p.Events {
		t.Fatalf("generated %d events, want %d", len(sch.Events), p.Events)
	}
	pairShare := uint64(int64(p.Messages) / int64(p.Nodes*p.Nodes))
	for _, e := range sch.Events {
		if e.Kind.MessageFault() {
			if e.Src < 0 || e.Src >= p.Nodes || e.Dst < 0 || e.Dst >= p.Nodes {
				t.Errorf("%s: pair out of range", e)
			}
			if e.Src == e.Dst {
				t.Errorf("%s: self-send pair never crosses the network", e)
			}
			if e.MsgIndex >= pairShare {
				t.Errorf("%s: message index beyond the pair's share", e)
			}
			continue
		}
		if e.Node < 0 || e.Node >= p.Nodes {
			t.Errorf("%s: node out of range", e)
		}
		if e.At < 0 || e.At >= p.Horizon {
			t.Errorf("%s: time outside the horizon", e)
		}
		if e.Dur <= 0 {
			t.Errorf("%s: non-positive duration", e)
		}
		if e.Kind == EngineStall && (e.Engine < 0 || e.Engine >= p.Engines) {
			t.Errorf("%s: engine out of range", e)
		}
	}
}

// TestGenerateDeterminism pins that identical (seed, Params) reproduce an
// identical schedule, the property every chaos repro line relies on.
func TestGenerateDeterminism(t *testing.T) {
	p := Params{Events: 32, Horizon: 50_000, Messages: 2000, Nodes: 4, Engines: 2}
	a, b := Generate(7, p), Generate(7, p)
	if a.String() != b.String() {
		t.Fatalf("same seed diverged:\n%s\n%s", a, b)
	}
	if c := Generate(8, p); c.String() == a.String() {
		t.Fatal("different seeds produced identical schedules")
	}
}
