package fault

import (
	"testing"

	"ccnuma/internal/interconnect"
	"ccnuma/internal/protocol"
)

// TestInjectorNetFault pins the message-fault folding: the injector counts
// every message, applies each event at its send-order index, corrupts only
// protocol payloads, and accounts what it applied.
func TestInjectorNetFault(t *testing.T) {
	sch := &Schedule{Seed: 1, Events: []Event{
		{Kind: Drop, MsgIndex: 0},
		{Kind: Duplicate, MsgIndex: 1},
		{Kind: Delay, MsgIndex: 2, Extra: 40},
		{Kind: Corrupt, MsgIndex: 3},
		{Kind: Corrupt, MsgIndex: 4},
	}}
	inj := NewInjector(sch)

	d := inj.NetFault(0, 1, &protocol.Msg{})
	if !d.Drop {
		t.Error("msg 0: expected Drop")
	}
	d = inj.NetFault(0, 1, &protocol.Msg{})
	if !d.Duplicate {
		t.Error("msg 1: expected Duplicate")
	}
	d = inj.NetFault(1, 0, &protocol.Msg{})
	if d.Delay != 40 {
		t.Errorf("msg 2: Delay = %d, want 40", d.Delay)
	}
	d = inj.NetFault(1, 0, &protocol.Msg{Data: 7})
	m, ok := d.Replace.(*protocol.Msg)
	if !ok {
		t.Fatal("msg 3: expected a corrupted *protocol.Msg replacement")
	}
	if m.Data == 7 {
		t.Error("msg 3: corruption left the payload intact")
	}
	// A corrupt event landing on a non-protocol payload is skipped.
	d = inj.NetFault(0, 1, "opaque")
	if d.Replace != nil {
		t.Error("msg 4: corrupted a non-protocol payload")
	}
	// Past the schedule: clean passthrough.
	d = inj.NetFault(0, 1, &protocol.Msg{})
	if d != (interconnect.Decision{}) {
		t.Errorf("msg 5: expected a zero decision, got %+v", d)
	}

	if inj.MsgCount() != 6 {
		t.Errorf("MsgCount = %d, want 6", inj.MsgCount())
	}
	if got := inj.Applied(Drop); got != 1 {
		t.Errorf("Applied(Drop) = %d, want 1", got)
	}
	if got := inj.AppliedTotal(); got != 4 {
		t.Errorf("AppliedTotal = %d, want 4 (the skipped corrupt doesn't count)", got)
	}
	by := inj.AppliedByKind()
	if by["corrupt"] != 1 || by["delay"] != 1 || by["dup"] != 1 {
		t.Errorf("AppliedByKind = %v", by)
	}
}

// TestGenerateBounds checks that generated coordinates respect the params.
func TestGenerateBounds(t *testing.T) {
	p := Params{Events: 64, Horizon: 10_000, Messages: 500, Nodes: 4, Engines: 2}
	sch := Generate(99, p)
	if len(sch.Events) != p.Events {
		t.Fatalf("generated %d events, want %d", len(sch.Events), p.Events)
	}
	for _, e := range sch.Events {
		if e.Kind.MessageFault() {
			if e.MsgIndex >= uint64(p.Messages) {
				t.Errorf("%s: message index beyond the run's message count", e)
			}
			continue
		}
		if e.Node < 0 || e.Node >= p.Nodes {
			t.Errorf("%s: node out of range", e)
		}
		if e.At < 0 || e.At >= p.Horizon {
			t.Errorf("%s: time outside the horizon", e)
		}
		if e.Dur <= 0 {
			t.Errorf("%s: non-positive duration", e)
		}
		if e.Kind == EngineStall && (e.Engine < 0 || e.Engine >= p.Engines) {
			t.Errorf("%s: engine out of range", e)
		}
	}
}
