package verify

import "testing"

// TestSingleFaultSweepRecovers is the robustness acceptance check: on the
// 2x1 machine with the recovery knobs on, one injected drop or duplicate at
// every message boundary of the canonical path must always drain to a
// quiescent, invariant-clean state. On failure the violations carry the
// replay path plus the injected (kind, message index) coordinates.
func TestSingleFaultSweepRecovers(t *testing.T) {
	res, err := SweepSingleFaults(Config{Nodes: 2, ProcsPerNode: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages == 0 {
		t.Fatal("reference run sent no messages; the sweep tested nothing")
	}
	if res.Truncated {
		t.Errorf("sweep truncated at %d runs (grid %d x %d); the default budget should cover the 2x1 grid",
			res.Runs, res.Messages, len(sweepKinds))
	} else if want := res.Messages * len(sweepKinds); res.Runs != want {
		t.Errorf("ran %d replays, want %d (one per message x kind)", res.Runs, want)
	}
	for _, v := range res.Violations {
		if v.PathStr == "" {
			t.Errorf("violation missing its repro path: %s", v.Detail)
		}
		t.Errorf("fault not recovered: %s", v.String())
	}
	t.Logf("sweep: %d messages, %d fault-injected replays, all recovered", res.Messages, res.Runs)
}
