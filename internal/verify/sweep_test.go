package verify

import "testing"

// TestSingleFaultSweepRecovers is the robustness acceptance check, run
// per fault class: on the 2x1 machine with the recovery knobs on, one
// injected fault at every message boundary of the canonical path must
// always drain to a quiescent, invariant-clean state. Drop and dup
// exercise the link layer's retransmission and dedup; nack exercises the
// NI's bounce/backoff/retry path; timeout parks a message past the
// requester's re-issue window so the retry races its own original. On
// failure the violations carry the replay path plus the injected
// (kind, message index) coordinates.
func TestSingleFaultSweepRecovers(t *testing.T) {
	for _, kind := range sweepKinds {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			res, err := SweepSingleFaults(Config{Nodes: 2, ProcsPerNode: 1}, 0, kind)
			if err != nil {
				t.Fatal(err)
			}
			if res.Messages == 0 {
				t.Fatal("reference run sent no messages; the sweep tested nothing")
			}
			if res.Truncated {
				t.Errorf("sweep truncated at %d runs (%d messages); the default budget should cover the 2x1 grid",
					res.Runs, res.Messages)
			} else if res.Runs != res.Messages {
				t.Errorf("ran %d replays, want %d (one per message)", res.Runs, res.Messages)
			}
			for _, v := range res.Violations {
				if v.PathStr == "" {
					t.Errorf("violation missing its repro path: %s", v.Detail)
				}
				t.Errorf("fault not recovered: %s", v.String())
			}
			t.Logf("%s: %d messages, %d fault-injected replays, all recovered", kind, res.Messages, res.Runs)
		})
	}
}

// TestSweepFullGrid covers the combined grid (all kinds interleaved, the
// shape cmd/ccverify runs) under the default budget, checking the budget
// accounting in both the exhaustive and the stride-sampled regime.
func TestSweepFullGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("replays the whole fault grid; skipped in -short")
	}
	res, err := SweepSingleFaults(Config{Nodes: 2, ProcsPerNode: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncated {
		if res.Runs > 600 {
			t.Errorf("truncated sweep still ran %d replays, budget is 600", res.Runs)
		}
	} else if want := res.Messages * len(sweepKinds); res.Runs != want {
		t.Errorf("ran %d replays, want %d (one per message x kind)", res.Runs, want)
	}
	for _, v := range res.Violations {
		t.Errorf("fault not recovered: %s", v.String())
	}
}

// TestSweepRejectsUnknownKind pins the kind-vocabulary guard.
func TestSweepRejectsUnknownKind(t *testing.T) {
	if _, err := SweepSingleFaults(Config{Nodes: 2, ProcsPerNode: 1}, 0, "corrupt-everything"); err == nil {
		t.Fatal("unknown fault kind accepted")
	}
}
