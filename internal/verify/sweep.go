package verify

import (
	"context"
	"fmt"

	"ccnuma/internal/interconnect"
	"ccnuma/internal/machine"
	"ccnuma/internal/protocol"
	pool "ccnuma/internal/runner"
)

// SweepResult summarizes a single-fault sweep: a canonical operation path
// replayed once per (message index, fault kind) pair with exactly one fault
// injected, asserting full recovery every time.
type SweepResult struct {
	// Messages is the network message count of the fault-free reference run
	// (the sweep's injection coordinate space).
	Messages int `json:"messages"`
	// Runs is how many fault-injected replays executed.
	Runs int `json:"runs"`
	// Truncated means the (message, kind) grid exceeded the run budget and
	// was stride-sampled instead of covered exhaustively.
	Truncated  bool        `json:"truncated"`
	Violations []Violation `json:"violations"`
}

// OK reports whether every injected fault was recovered from.
func (r *SweepResult) OK() bool { return len(r.Violations) == 0 }

// sweepKinds are the single-fault mutations the sweep injects: losing a
// message on the link, duplicating it, bouncing it off a "full" NI
// request queue (nackable requests only — the forced-NACK seam is inert
// for other types), and delaying it past the requester's re-issue
// timeout so the retry races its own original.
var sweepKinds = [...]string{"drop", "dup", "nack", "timeout"}

// SweepSingleFaults replays one canonical path — every (processor, op) pair
// in order, the state-space walk's step vocabulary — on the robust machine
// configuration, once per (message index, fault kind) combination, with
// exactly one fault injected at that message boundary. Each replay must
// drain to a quiescent, invariant-clean state: the link layer and the
// NACK/retry/timeout machinery must absorb any single fault. maxRuns bounds
// the grid (0 = default 600); larger grids are stride-sampled. kinds
// restricts the sweep to a subset of the fault classes (default: all).
// Violations carry the replay path plus the injected fault for
// reproduction.
func SweepSingleFaults(vc Config, maxRuns int, kinds ...string) (*SweepResult, error) {
	c := vc.normalized()
	c.Robust = true
	if maxRuns <= 0 {
		maxRuns = 600
	}
	if len(kinds) == 0 {
		kinds = sweepKinds[:]
	}
	for _, k := range kinds {
		known := false
		for _, s := range sweepKinds {
			known = known || k == s
		}
		if !known {
			return nil, fmt.Errorf("verify: unknown sweep fault kind %q", k)
		}
	}
	// The canonical path: every (processor, op) pair, then a second round of
	// target writes and reads ping-ponging dirty ownership between
	// processors — the second round starts from shared/dirty states, so its
	// traffic covers interventions and write-backs, not just cold misses.
	path := c.allSteps()
	nprocs := c.Nodes * c.ProcsPerNode
	for p := 0; p < nprocs; p++ {
		path = append(path, Step{Proc: p, Op: OpWriteT})
		path = append(path, Step{Proc: (p + 1) % nprocs, Op: OpReadT})
	}

	// Reference run: count the path's network messages with a pass-through
	// hook; these indices are the sweep's injection points.
	var msgs uint64
	c.Fault = func(m *machine.Machine) {
		m.Net.Fault = func(src, dst int, payload interface{}) interconnect.Decision {
			msgs++
			return interconnect.Decision{}
		}
	}
	if _, vio := protect(func() (string, *Violation) { return runPath(&c, path) }); vio != nil {
		vio.PathStr = PathString(vio.Path)
		return nil, fmt.Errorf("verify: fault-free robust reference run failed: %s", vio.String())
	}

	res := &SweepResult{Messages: int(msgs), Violations: []Violation{}}
	total := int(msgs) * len(kinds)
	stride := 1
	if total > maxRuns {
		stride = (total + maxRuns - 1) / maxRuns
		res.Truncated = true
	}
	var idxs []int
	for i := 0; i < total; i += stride {
		idxs = append(idxs, i)
	}
	// Replays are independent, so the grid fans out across c.Jobs workers.
	// Each job gets its own Config copy carrying its own Fault closure (the
	// injected-fault coordinates are per-replay state); results fold in grid
	// order, so Runs counting, violation order, and log lines match the
	// serial sweep exactly.
	vios, _ := pool.Map(context.Background(), c.Jobs, len(idxs),
		func(j int) (*Violation, error) {
			target, kind := uint64(idxs[j]/len(kinds)), kinds[idxs[j]%len(kinds)]
			cj := c
			cj.Fault = func(m *machine.Machine) {
				var idx uint64
				m.Net.Fault = func(src, dst int, payload interface{}) interconnect.Decision {
					var d interconnect.Decision
					if idx == target {
						switch kind {
						case "drop":
							d.Drop = true
						case "nack":
							// Deliver normally, but arm the destination's
							// one-shot forced bounce so a nackable request is
							// rejected as if the NI queue were full.
							if pm, ok := payload.(*protocol.Msg); ok && pm.Nackable() {
								m.CCs[dst].ForceNackNext(1)
							}
						case "timeout":
							// Park the message past the requester's re-issue
							// timeout so the retry races the delayed original.
							d.Delay = m.Cfg.RequestTimeout + m.Cfg.RequestTimeout/2
						default:
							d.Duplicate = true
						}
					}
					idx++
					return d
				}
			}
			_, vio := protect(func() (string, *Violation) { return runPath(&cj, path) })
			return vio, nil
		})
	for j, vio := range vios {
		target, kind := uint64(idxs[j]/len(kinds)), kinds[idxs[j]%len(kinds)]
		res.Runs++
		if vio != nil {
			vio.Detail = fmt.Sprintf("%s [injected %s@msg%d]", vio.Detail, kind, target)
			vio.PathStr = PathString(vio.Path)
			res.Violations = append(res.Violations, *vio)
			if len(res.Violations) >= c.MaxViolations {
				break
			}
		}
		c.logf("sweep: %d/%d runs, %d violations", res.Runs, (total+stride-1)/stride, len(res.Violations))
	}
	return res, nil
}
