// Package verify is an exhaustive model checker for the coherence protocol.
// Unlike a hand-written abstract model, it drives the REAL simulator stack
// (cpu caches, smpbus, core controllers, directory, interconnect) over a
// tiny machine — 2-3 nodes, 1-2 processors per node, single-set caches and
// a single shared target line — and explores the reachable protocol state
// space by breadth-first search over quiescent machine states.
//
// The simulator schedules closures, which cannot be snapshotted, so the
// checker is replay-based: every explored edge rebuilds the machine from
// scratch and deterministically replays the path of operations that leads
// to the edge's source state. Determinism of the sim engine makes replays
// bit-for-bit reproducible, so a violation's Path field is a complete
// recipe for reproducing it.
//
// Exploration has two phases:
//
//   - Phase A (BFS): from each known quiescent state, apply every
//     (processor, operation) pair, run the machine to quiescence while
//     checking safety invariants after every engine event, and hash the
//     resulting abstract state. New hashes extend the frontier; the phase
//     ends at a fixpoint (or the MaxStates budget).
//   - Phase B (races): from each known state, every ordered pair of
//     operations on two different processors is raced: the second op is
//     injected at a set of start offsets sampled from the event times of
//     the first op's solo execution, covering the transient interleavings
//     that serialized BFS edges cannot reach.
//
// Invariants checked: at most one Modified copy of a line system-wide (per
// event), no livelock (simulated time advances, the event queue drains),
// every operation completes, no transient controller state or in-flight
// message survives quiescence, directory/cache agreement at quiescence
// (machine.CheckCoherence), loads return the last written value (tracked
// through the simulator's shadow data-value plumbing), and write-backs are
// never lost (memory agrees with the last write once no dirty copy exists).
package verify

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"ccnuma/internal/machine"
	pool "ccnuma/internal/runner"
	"ccnuma/internal/sim"
)

// OpKind is one processor operation in the checker's vocabulary.
type OpKind int

const (
	// OpReadT loads the shared target line.
	OpReadT OpKind = iota
	// OpWriteT stores to the shared target line.
	OpWriteT
	// OpReadV loads the processor's private victim line, which maps to the
	// same (only) cache set as the target and therefore evicts it —
	// modelling a clean or dirty eviction depending on the target's state.
	OpReadV
	// OpWriteV stores to the victim line, so its later eviction exercises
	// the dirty write-back path for a line whose home is the local node.
	OpWriteV

	numOpKinds
)

var opNames = [...]string{"ReadT", "WriteT", "ReadV", "WriteV"}

func (k OpKind) String() string {
	if k >= 0 && int(k) < len(opNames) {
		return opNames[k]
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// Step is one scheduled operation in a replayable path.
type Step struct {
	Proc int
	Op   OpKind
	// Delay is the start offset after quiescence, used by the second
	// operation of a phase-B race (0 for serialized BFS steps).
	Delay sim.Time
}

func (s Step) String() string {
	if s.Delay > 0 {
		return fmt.Sprintf("p%d:%v@+%d", s.Proc, s.Op, s.Delay)
	}
	return fmt.Sprintf("p%d:%v", s.Proc, s.Op)
}

// PathString renders a replay path compactly.
func PathString(path []Step) string {
	parts := make([]string, len(path))
	for i, s := range path {
		parts[i] = s.String()
	}
	return strings.Join(parts, " ")
}

// Config parameterizes a checking run.
type Config struct {
	// Nodes and ProcsPerNode size the machine (2-3 nodes, 1-2 procs/node
	// are practical; the state space grows steeply beyond that).
	Nodes        int
	ProcsPerNode int

	// MaxStates bounds phase A (0 = default 5000). Hitting the bound sets
	// Result.Truncated instead of failing.
	MaxStates int
	// MaxRaceOffsets bounds the injection offsets tried per race pair
	// (0 = default 6; -1 explores every distinct solo event time).
	MaxRaceOffsets int
	// MaxRaces bounds the total phase-B runs (0 = default 5000; -1 skips
	// phase B entirely).
	MaxRaces int
	// MaxViolations stops the search after this many violations
	// (0 = default 3).
	MaxViolations int

	// Robust builds every checker machine with the robustness knobs on
	// (config.Config.WithRobustness): finite queues with NACK/retry,
	// request timeouts, and link-level reliable delivery. The single-fault
	// sweep uses it to assert that injected faults are survivable.
	Robust bool

	// Jobs bounds how many replays run concurrently (<= 0 = GOMAXPROCS,
	// 1 = serial). Replays are independent rebuilt machines and results are
	// always folded in replay order, so the Result is identical for any
	// value. A non-nil Fault must then be safe to apply to machines being
	// replayed concurrently (the stock mutation seams are: each installs
	// per-machine hooks).
	Jobs int

	// Fault, when non-nil, is applied to every rebuilt machine before
	// replay. It exists to seed protocol mutations (e.g. dropping an
	// InvalAck) and prove the invariant suite catches them.
	Fault func(m *machine.Machine)

	// Log, when non-nil, receives progress lines.
	Log func(format string, args ...interface{})
}

func (vc *Config) normalized() Config {
	c := *vc
	if c.Nodes == 0 {
		c.Nodes = 2
	}
	if c.ProcsPerNode == 0 {
		c.ProcsPerNode = 1
	}
	if c.MaxStates == 0 {
		c.MaxStates = 5000
	}
	if c.MaxRaceOffsets == 0 {
		c.MaxRaceOffsets = 6
	}
	if c.MaxRaces == 0 {
		c.MaxRaces = 5000
	}
	if c.MaxViolations == 0 {
		c.MaxViolations = 3
	}
	return c
}

func (vc *Config) logf(format string, args ...interface{}) {
	if vc.Log != nil {
		vc.Log(format, args...)
	}
}

// Violation is one invariant failure, with the deterministic replay path
// that reproduces it.
type Violation struct {
	Kind   string `json:"kind"`
	Detail string `json:"detail"`
	Path   []Step `json:"-"`
	// PathStr is the rendered path (for JSON output).
	PathStr string `json:"path"`
}

func (v *Violation) String() string {
	return fmt.Sprintf("%s: %s\n  path: %s", v.Kind, v.Detail, v.PathStr)
}

// Result summarizes an exploration.
type Result struct {
	States int `json:"states"`
	Edges  int `json:"edges"`
	Races  int `json:"races"`
	// Truncated means phase A hit the state budget before the BFS closed;
	// RacesTruncated means phase B hit the race budget. The former leaves
	// quiescent states unexplored, the latter only thins race coverage.
	Truncated      bool        `json:"truncated"`
	RacesTruncated bool        `json:"racesTruncated"`
	Violations     []Violation `json:"violations"`
}

// OK reports whether the exploration found no violations.
func (r *Result) OK() bool { return len(r.Violations) == 0 }

// Run explores the protocol state space per vc and returns the result. It
// returns a non-nil error only for configuration/machine-construction
// problems; protocol bugs are reported as Violations.
func Run(vc Config) (*Result, error) {
	c := vc.normalized()
	// Violations starts non-nil so -json emits [] rather than null.
	res := &Result{Violations: []Violation{}}

	// Probe machine construction once so config errors surface as errors
	// rather than as a violation on every edge.
	if _, err := newRunner(&c); err != nil {
		return nil, err
	}

	ops := c.allSteps()

	// Phase A: BFS over quiescent states. order holds, per visited state,
	// the shortest path that reaches it (the BFS tree).
	visited := map[string][]Step{}
	var order [][]Step

	h, vio := protect(func() (string, *Violation) { return runPath(&c, nil) })
	if vio != nil {
		vio.PathStr = PathString(vio.Path)
		res.Violations = append(res.Violations, *vio)
		return res, nil
	}
	visited[h] = nil
	order = append(order, nil)

	type edge struct {
		path []Step
		h    string
		vio  *Violation
	}
	for i := 0; i < len(order); i++ {
		if len(res.Violations) >= c.MaxViolations {
			break
		}
		src := order[i]
		// Expand every op out of src concurrently — each expansion rebuilds
		// its own machine and replays independently — then fold the edges in
		// op order, so edge counts, violation order, and frontier growth are
		// identical to the serial loop for any Jobs value.
		edges, _ := pool.Map(context.Background(), c.Jobs, len(ops),
			func(j int) (edge, error) {
				path := append(append([]Step{}, src...), ops[j])
				h, vio := protect(func() (string, *Violation) { return runPath(&c, path) })
				return edge{path: path, h: h, vio: vio}, nil
			})
		for _, e := range edges {
			res.Edges++
			if e.vio != nil {
				res.Violations = append(res.Violations, *e.vio)
				if len(res.Violations) >= c.MaxViolations {
					break
				}
				continue
			}
			if _, seen := visited[e.h]; !seen {
				if len(visited) >= c.MaxStates {
					res.Truncated = true
					continue
				}
				visited[e.h] = e.path
				order = append(order, e.path)
			}
		}
		if i%32 == 0 {
			c.logf("phase A: %d states, %d edges, frontier %d", len(visited), res.Edges, len(order)-i-1)
		}
	}
	res.States = len(visited)
	c.logf("phase A done: %d states, %d edges (fixpoint=%v)", res.States, res.Edges, !res.Truncated)

	// Phase B: pairwise races from every known state.
	if c.MaxRaces > 0 && len(res.Violations) < c.MaxViolations {
		runRaces(&c, order, res)
	}
	for i := range res.Violations {
		res.Violations[i].PathStr = PathString(res.Violations[i].Path)
	}
	return res, nil
}

// allSteps enumerates every (processor, op) pair.
func (vc *Config) allSteps() []Step {
	var out []Step
	n := vc.Nodes * vc.ProcsPerNode
	for p := 0; p < n; p++ {
		for k := OpKind(0); k < numOpKinds; k++ {
			out = append(out, Step{Proc: p, Op: k})
		}
	}
	return out
}

// protect converts panics raised inside the simulator (e.g. a handler
// hitting an impossible state after a seeded mutation) into violations.
func protect(fn func() (string, *Violation)) (h string, v *Violation) {
	defer func() {
		if p := recover(); p != nil {
			v = &Violation{Kind: "panic", Detail: fmt.Sprint(p)}
		}
	}()
	return fn()
}

// runPath rebuilds the machine, replays every step to quiescence, and
// returns the final abstract state hash.
func runPath(vc *Config, path []Step) (string, *Violation) {
	r, err := newRunner(vc)
	if err != nil {
		return "", &Violation{Kind: "setup", Detail: err.Error(), Path: path}
	}
	// Initial quiescence (allocation does not schedule events, but keep
	// the invariant checks uniform).
	if v := r.drainAndCheck(); v != nil {
		v.Path = path
		return "", v
	}
	for i, s := range path {
		if v := r.applyStep(s, nil); v != nil {
			v.Path = path[:i+1]
			return "", v
		}
	}
	return r.hash(), nil
}

// sortedLines returns the checker's lines of interest in fixed order.
func (r *runner) sortedLines() []uint64 {
	lines := append([]uint64{r.target}, r.victims...)
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	return lines
}
