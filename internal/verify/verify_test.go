package verify

import (
	"strings"
	"testing"

	"ccnuma/internal/interconnect"
	"ccnuma/internal/machine"
	"ccnuma/internal/protocol"
)

// TestCleanProtocolReachesFixpoint explores the 2-node, 1-proc/node state
// space to a fixpoint and races a sample of transient interleavings; the
// current protocol must produce zero violations.
func TestCleanProtocolReachesFixpoint(t *testing.T) {
	res, err := Run(Config{
		Nodes:          2,
		ProcsPerNode:   1,
		MaxRaces:       1500,
		MaxRaceOffsets: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Errorf("violation: %s", v.String())
	}
	if res.States < 100 {
		t.Errorf("explored only %d states; expected a substantially larger space", res.States)
	}
	if res.Edges < res.States {
		t.Errorf("edges (%d) < states (%d): BFS did not expand every state", res.Edges, res.States)
	}
	if res.Races == 0 {
		t.Error("phase B ran no races")
	}
	// Phase A must reach a true fixpoint within the default state budget;
	// only the race budget may truncate.
	if res.Truncated {
		t.Errorf("state space did not close: %d states", res.States)
	}
	t.Logf("fixpoint: %d states, %d edges, %d races", res.States, res.Edges, res.Races)
}

// TestCatchesDroppedInvalAck seeds the classic lost-acknowledgement
// mutation — the home node drops every invalidation ack it receives — and
// requires the checker to report it (the home op never completes, so the
// requesting write is lost / the transient never drains).
func TestCatchesDroppedInvalAck(t *testing.T) {
	res, err := Run(Config{
		Nodes:         2,
		ProcsPerNode:  1,
		MaxRaces:      -1, // phase A alone must catch this
		MaxViolations: 1,
		Fault: func(m *machine.Machine) {
			m.Net.Fault = func(src, dst int, payload interface{}) interconnect.Decision {
				if msg, ok := payload.(*protocol.Msg); ok && msg.Type == protocol.MsgInvalAck {
					return interconnect.Decision{Drop: true}
				}
				return interconnect.Decision{}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() {
		t.Fatal("dropped InvalAck was not detected")
	}
	v := res.Violations[0]
	switch v.Kind {
	case "lost-op", "stuck-transient", "livelock":
	default:
		t.Errorf("expected a liveness violation kind, got %q (%s)", v.Kind, v.Detail)
	}
	if len(v.Path) == 0 {
		t.Error("violation carries no repro path")
	}
	t.Logf("caught: %s", v.String())
}

// TestCatchesCorruptedWriteBackData seeds a data-path mutation — write-back
// payloads arriving at the home are corrupted — and requires the checker's
// value tracking to flag it as a safety violation.
func TestCatchesCorruptedWriteBackData(t *testing.T) {
	res, err := Run(Config{
		Nodes:         2,
		ProcsPerNode:  1,
		MaxRaces:      -1,
		MaxViolations: 1,
		Fault: func(m *machine.Machine) {
			m.Net.Fault = func(src, dst int, payload interface{}) interconnect.Decision {
				if msg, ok := payload.(*protocol.Msg); ok && msg.Type == protocol.MsgWriteBack {
					mutated := *msg
					mutated.Data ^= 0xdeadbeef
					return interconnect.Decision{Replace: &mutated}
				}
				return interconnect.Decision{}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() {
		t.Fatal("corrupted write-back data was not detected")
	}
	v := res.Violations[0]
	switch v.Kind {
	case "stale-read", "stale-copy", "lost-writeback":
	default:
		t.Errorf("expected a data-safety violation kind, got %q (%s)", v.Kind, v.Detail)
	}
	t.Logf("caught: %s", v.String())
}

// TestViolationRendering pins the human-readable path format used in
// reports and CI logs.
func TestViolationRendering(t *testing.T) {
	path := []Step{{Proc: 1, Op: OpWriteT}, {Proc: 0, Op: OpReadT, Delay: 42}}
	got := PathString(path)
	want := "p1:WriteT p0:ReadT@+42"
	if got != want {
		t.Errorf("PathString = %q, want %q", got, want)
	}
	v := Violation{Kind: "stale-read", Detail: "x", PathStr: got}
	if !strings.Contains(v.String(), want) {
		t.Errorf("Violation.String() missing path: %q", v.String())
	}
}
