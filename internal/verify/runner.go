package verify

import (
	"fmt"
	"strings"

	"ccnuma/internal/cache"
	"ccnuma/internal/config"
	"ccnuma/internal/machine"
	"ccnuma/internal/sim"
)

// stallWindow bounds how many events may execute without simulated time
// advancing before the checker calls it a livelock (a legitimate quiescent
// drain executes far fewer zero-time events than this on the tiny machine).
const stallWindow = 100_000

// runner owns one freshly built machine plus the bookkeeping needed to
// replay an operation path and check invariants along the way.
type runner struct {
	vc *Config
	m  *machine.Machine

	// target is the contended line, homed on node 0; victims[p] is the
	// private conflict line for processor p, homed on p's own node.
	target  uint64
	victims []uint64

	// lastVal holds, per line, the value of the last completed write (0
	// before any write). At quiescence every valid cached copy must carry
	// it, and memory must carry it once no dirty copy exists.
	lastVal map[uint64]uint64
}

// machineConfig derives the tiny checker machine from the base system.
func machineConfig(vc *Config) config.Config {
	c := config.Base()
	c.Nodes = vc.Nodes
	c.ProcsPerNode = vc.ProcsPerNode
	c.Topology = config.TopoCrossbar
	// Single-set, single-line caches: any second line conflicts with the
	// first, so "touch the victim line" is exactly "evict the target".
	c.L1Size, c.L1Assoc = c.LineSize, 1
	c.L2Size, c.L2Assoc = c.LineSize, 1
	// No directory cache: its contents are timing state that survives
	// quiescence and would leak into (and blow up) the abstract state
	// space without changing protocol behavior.
	c.DirCacheEntries = 0
	c.SimLimit = 5_000_000
	if vc.Robust {
		c = c.WithRobustness()
	}
	return c
}

// newRunner builds a fresh machine, allocates the checker's lines, and
// applies the configured fault (if any).
func newRunner(vc *Config) (*runner, error) {
	m, err := machine.New(machineConfig(vc), "ccverify")
	if err != nil {
		return nil, err
	}
	r := &runner{vc: vc, m: m, lastVal: map[uint64]uint64{}}
	ls := m.Cfg.LineSize
	r.target = m.Space.AllocOnNode(ls, 0)
	for _, p := range m.Procs {
		r.victims = append(r.victims, m.Space.AllocOnNode(ls, p.Node()))
	}
	if vc.Fault != nil {
		vc.Fault(m)
	}
	return r, nil
}

// lineFor maps a step to its target line and access kind.
func (r *runner) lineFor(s Step) (line uint64, write bool) {
	switch s.Op {
	case OpReadT:
		return r.target, false
	case OpWriteT:
		return r.target, true
	case OpReadV:
		return r.victims[s.Proc], false
	case OpWriteV:
		return r.victims[s.Proc], true
	default:
		panic(fmt.Sprintf("verify: unknown op %v", s.Op))
	}
}

// applyStep issues one operation via the processor's synchronous-access
// port, runs the machine to quiescence with per-event invariant checks,
// and then applies the quiescent checks (completion, read value, cache/
// directory agreement, write-back preservation).
func (r *runner) applyStep(s Step, times *[]sim.Time) *Violation {
	p := r.m.Procs[s.Proc]
	line, write := r.lineFor(s)
	done := false
	p.SyncAccess(line, write, func() { done = true })
	if v := r.drain(times); v != nil {
		return v
	}
	if !done {
		return &Violation{Kind: "lost-op", Detail: fmt.Sprintf(
			"%v never completed; engine drained at t=%d", s, r.m.Eng.Now())}
	}
	if write {
		r.lastVal[line] = p.LastWriteValue()
	} else if got, want := p.LastReadValue(), r.lastVal[line]; got != want {
		return &Violation{Kind: "stale-read", Detail: fmt.Sprintf(
			"%v observed value %#x, want last written %#x", s, got, want)}
	}
	return r.quiescentCheck()
}

// drainAndCheck runs the machine to quiescence and applies the quiescent
// invariants (used for the initial state, where no op is outstanding).
func (r *runner) drainAndCheck() *Violation {
	if v := r.drain(nil); v != nil {
		return v
	}
	return r.quiescentCheck()
}

// drain executes engine events until the queue empties, checking safety
// invariants after every event and watching for livelock. When times is
// non-nil it collects the distinct simulated times at which events ran,
// relative to the drain's start — phase B samples its race-injection
// offsets from them.
func (r *runner) drain(times *[]sim.Time) *Violation {
	eng := r.m.Eng
	start := eng.Now()
	lastT := start
	sameT := 0
	if times != nil {
		*times = append(*times, 0)
	}
	for eng.Step() {
		if v := r.stepInvariant(); v != nil {
			return v
		}
		now := eng.Now()
		if now == lastT {
			sameT++
			if sameT > stallWindow {
				return &Violation{Kind: "livelock", Detail: fmt.Sprintf(
					"%d events executed without time advancing past t=%d", sameT, lastT)}
			}
			continue
		}
		lastT, sameT = now, 0
		if times != nil {
			*times = append(*times, now-start)
		}
	}
	if eng.LimitHit() {
		return &Violation{Kind: "livelock", Detail: fmt.Sprintf(
			"sim limit hit at t=%d; machine state:\n%s", eng.Now(), r.m.Snapshot())}
	}
	return nil
}

// stepInvariant checks the per-event safety properties: at most one
// Modified/Exclusive copy of each line of interest system-wide (and no
// other valid copy beside it), and at most one Owned copy.
func (r *runner) stepInvariant() *Violation {
	for _, line := range r.sortedLines() {
		exclusive, owned, valid := 0, 0, 0
		var holders []string
		for _, p := range r.m.Procs {
			st := p.L2State(line)
			if st == cache.Invalid {
				continue
			}
			valid++
			switch st {
			case cache.Modified, cache.Exclusive:
				exclusive++
			case cache.Owned:
				owned++
			case cache.Shared:
			default:
				panic(fmt.Sprintf("verify: unknown cache state %v", st))
			}
			holders = append(holders, fmt.Sprintf("p%d=%v", p.ID(), st))
		}
		if exclusive > 0 && valid > 1 || owned > 1 {
			return &Violation{Kind: "multiple-owners", Detail: fmt.Sprintf(
				"line %#x at t=%d held as %s", line, r.m.Eng.Now(), strings.Join(holders, " "))}
		}
	}
	return nil
}

// quiescentCheck applies the invariants that only hold once the machine is
// idle: nothing in flight, no transient controller state, directory/cache
// agreement, and data-value correctness (every valid copy carries the last
// written value; memory does too unless a dirty copy exists).
func (r *runner) quiescentCheck() *Violation {
	if n := r.m.Net.InFlight(); n != 0 {
		return &Violation{Kind: "stuck-message", Detail: fmt.Sprintf(
			"%d network messages still in flight after drain at t=%d", n, r.m.Eng.Now())}
	}
	for i, cc := range r.m.CCs {
		if n := cc.PendingOps(); n != 0 {
			return &Violation{Kind: "stuck-transient", Detail: fmt.Sprintf(
				"node %d: %d transient ops survived quiescence: %s", i, n, cc.DumpPending())}
		}
	}
	if err := r.m.CheckCoherence(); err != nil {
		return &Violation{Kind: "coherence", Detail: err.Error()}
	}
	for _, line := range r.sortedLines() {
		want := r.lastVal[line]
		dirty := false
		for _, p := range r.m.Procs {
			st := p.L2State(line)
			if st == cache.Invalid {
				continue
			}
			if st.Dirty() {
				dirty = true
			}
			if got := p.LineValue(line); got != want {
				return &Violation{Kind: "stale-copy", Detail: fmt.Sprintf(
					"p%d holds line %#x (%v) with value %#x, want %#x",
					p.ID(), line, st, got, want)}
			}
		}
		if !dirty {
			home := r.m.Space.Home(line)
			if got := r.m.Buses[home].MemValue(line); got != want {
				return &Violation{Kind: "lost-writeback", Detail: fmt.Sprintf(
					"memory on node %d holds line %#x value %#x, want %#x (no dirty copy exists)",
					home, line, got, want)}
			}
		}
	}
	return nil
}

// hash canonicalizes the quiescent machine into a string. Data values are
// renamed to small ranks in a fixed traversal order (the simulator treats
// values opaquely, so states differing only in which unique values appear
// are protocol-equivalent). Everything that can influence future behavior
// is included: per-proc L1/L2 states and values of the lines of interest,
// per-home memory values, directory entries, and controller transients
// (expected empty at quiescence, included as a belt-and-braces check).
func (r *runner) hash() string {
	var b strings.Builder
	rank := map[uint64]int{0: 0}
	rk := func(v uint64) int {
		n, ok := rank[v]
		if !ok {
			n = len(rank)
			rank[v] = n
		}
		return n
	}
	lines := r.sortedLines()
	for _, p := range r.m.Procs {
		l1 := map[uint64]cache.State{}
		p.ForEachL1Line(func(line uint64, st cache.State) { l1[line] = st })
		for _, line := range lines {
			st := p.L2State(line)
			fmt.Fprintf(&b, "p%d[%#x]=%v", p.ID(), line, st)
			if st != cache.Invalid {
				fmt.Fprintf(&b, ":v%d", rk(p.LineValue(line)))
			}
			if l1st, ok := l1[line]; ok {
				fmt.Fprintf(&b, ":l1=%v", l1st)
			}
			b.WriteByte(';')
		}
	}
	for _, line := range lines {
		home := r.m.Space.Home(line)
		fmt.Fprintf(&b, "mem[%#x]=v%d;", line, rk(r.m.Buses[home].MemValue(line)))
	}
	for i, d := range r.m.Dirs {
		fmt.Fprintf(&b, "dir%d{%s};", i, d.StateSnapshot())
	}
	for i, cc := range r.m.CCs {
		fmt.Fprintf(&b, "cc%d{%s};", i, cc.StateSnapshot())
	}
	return b.String()
}
