package verify

import (
	"context"
	"fmt"

	"ccnuma/internal/cache"
	pool "ccnuma/internal/runner"
	"ccnuma/internal/sim"
)

// Phase B: serialized BFS edges never overlap two operations in time, so
// they cannot reach the transient interleavings where most protocol bugs
// live (an invalidation crossing a write-back, a fetch racing an upgrade).
// runRaces revisits every state found by phase A and, for every ordered
// pair of operations on two different processors, injects the second
// operation at a set of start offsets sampled from the event times of the
// first operation's solo execution — each offset lands the second op in a
// different window of the first op's transaction.

// opRecord tracks one racing operation's observable window and value.
type opRecord struct {
	line  uint64
	write bool
	start sim.Time
	end   sim.Time
	val   uint64
	done  bool
}

// runRaces drives phase B, appending to res. Races within one (state, s1)
// group fan out across c.Jobs workers (each race replays on its own rebuilt
// machine); results fold in the serial loop's order, so race counts,
// truncation, and violation order are identical for any Jobs value.
func runRaces(c *Config, states [][]Step, res *Result) {
	ops := c.allSteps()
	type raceJob struct {
		s2 Step
		d  sim.Time
	}
	for si, path := range states {
		for _, s1 := range ops {
			var offsets []sim.Time
			haveOffsets := false
			var group []raceJob
			for _, s2 := range ops {
				if s2.Proc == s1.Proc {
					continue
				}
				if !haveOffsets {
					offsets = soloOffsets(c, path, s1)
					haveOffsets = true
				}
				for _, d := range offsets {
					group = append(group, raceJob{s2: s2, d: d})
				}
			}
			if len(group) == 0 {
				continue
			}
			// Only races inside the remaining budget can execute; the fold
			// below re-applies the serial loop's budget check, which fires
			// exactly at the first job past the slice.
			remaining := c.MaxRaces - res.Races
			if remaining < 0 {
				remaining = 0
			}
			run := group
			if len(run) > remaining {
				run = group[:remaining]
			}
			s1 := s1
			path := path
			vios, _ := pool.Map(context.Background(), c.Jobs, len(run),
				func(j int) (*Violation, error) {
					_, vio := protect(func() (string, *Violation) {
						return "", raceRun(c, path, s1, run[j].s2, run[j].d)
					})
					return vio, nil
				})
			for j := range group {
				if res.Races >= c.MaxRaces {
					res.RacesTruncated = true
					return
				}
				if len(res.Violations) >= c.MaxViolations {
					return
				}
				res.Races++
				if vio := vios[j]; vio != nil {
					rs2 := group[j].s2
					rs2.Delay = group[j].d
					vio.Path = append(append([]Step{}, path...), s1, rs2)
					res.Violations = append(res.Violations, *vio)
				}
			}
		}
		if si%16 == 0 {
			c.logf("phase B: %d/%d states, %d races", si, len(states), res.Races)
		}
	}
}

// soloOffsets replays path, runs s1 alone while recording the simulated
// times at which events executed, and turns them into candidate injection
// offsets (each event time and the cycle after it). A violation here was
// already recorded by phase A, so it only degrades to the zero offset.
func soloOffsets(c *Config, path []Step, s1 Step) []sim.Time {
	var times []sim.Time
	_, vio := protect(func() (string, *Violation) {
		r, err := newRunner(c)
		if err != nil {
			return "", &Violation{Kind: "setup", Detail: err.Error()}
		}
		for _, s := range path {
			if v := r.applyStep(s, nil); v != nil {
				return "", v
			}
		}
		return "", r.applyStep(s1, &times)
	})
	if vio != nil || len(times) == 0 {
		return []sim.Time{0}
	}
	cand := make([]sim.Time, 0, 2*len(times))
	for _, t := range times {
		cand = append(cand, t, t+1)
	}
	return sampleOffsets(cand, c.MaxRaceOffsets)
}

// sampleOffsets dedups/sorts candidates and, when a cap is set, keeps an
// evenly spaced subset including the first and last offsets.
func sampleOffsets(cand []sim.Time, max int) []sim.Time {
	seen := map[sim.Time]bool{}
	var out []sim.Time
	for _, t := range cand {
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	if max < 0 || len(out) <= max || max < 2 {
		return out
	}
	sampled := make([]sim.Time, 0, max)
	last := sim.Time(-1)
	for i := 0; i < max; i++ {
		t := out[i*(len(out)-1)/(max-1)]
		if t != last {
			sampled = append(sampled, t)
			last = t
		}
	}
	return sampled
}

// raceRun replays path, then runs s1 (at quiescence time t0) racing s2
// (injected at t0+d on a different processor), checking the per-event
// invariants throughout and the concurrent value semantics at the end:
// a read must return either the last value written before it started or
// the value of a write whose window overlaps it, and the final memory
// state must reflect one of the admissible write serializations.
func raceRun(vc *Config, path []Step, s1, s2 Step, d sim.Time) *Violation {
	r, err := newRunner(vc)
	if err != nil {
		return &Violation{Kind: "setup", Detail: err.Error()}
	}
	for _, s := range path {
		if v := r.applyStep(s, nil); v != nil {
			return v
		}
	}
	prefix := map[uint64]uint64{}
	for k, v := range r.lastVal {
		prefix[k] = v
	}
	eng := r.m.Eng
	t0 := eng.Now()
	p1, p2 := r.m.Procs[s1.Proc], r.m.Procs[s2.Proc]
	l1, w1 := r.lineFor(s1)
	l2, w2 := r.lineFor(s2)
	rec1 := &opRecord{line: l1, write: w1, start: t0}
	rec2 := &opRecord{line: l2, write: w2, start: t0 + d}
	finish := func(rec *opRecord, val uint64) {
		rec.done = true
		rec.end = eng.Now()
		rec.val = val
	}
	p1.SyncAccess(l1, w1, func() {
		if w1 {
			finish(rec1, p1.LastWriteValue())
		} else {
			finish(rec1, p1.LastReadValue())
		}
	})
	eng.At(t0+d, func() {
		p2.SyncAccess(l2, w2, func() {
			if w2 {
				finish(rec2, p2.LastWriteValue())
			} else {
				finish(rec2, p2.LastReadValue())
			}
		})
	})
	if v := r.drain(nil); v != nil {
		return v
	}
	for _, rec := range []*opRecord{rec1, rec2} {
		if !rec.done {
			return &Violation{Kind: "lost-op", Detail: fmt.Sprintf(
				"racing op on line %#x never completed (offset +%d)", rec.line, d)}
		}
	}
	// Value semantics per line of interest.
	recs := []*opRecord{rec1, rec2}
	for _, line := range r.sortedLines() {
		var writes, reads []*opRecord
		for _, rec := range recs {
			if rec.line != line {
				continue
			}
			if rec.write {
				writes = append(writes, rec)
			} else {
				reads = append(reads, rec)
			}
		}
		for _, rd := range reads {
			allowed := allowedReadValues(prefix[line], rd, writes)
			if !allowed[rd.val] {
				return &Violation{Kind: "stale-read", Detail: fmt.Sprintf(
					"racing read of line %#x over [%d,%d] observed %#x, allowed %v",
					line, rd.start, rd.end, rd.val, valueSet(allowed))}
			}
		}
		finals := allowedFinalValues(prefix[line], writes)
		actual, where := r.finalValue(line)
		if !finals[actual] {
			return &Violation{Kind: "lost-write", Detail: fmt.Sprintf(
				"line %#x settled to %#x (%s), allowed final values %v",
				line, actual, where, valueSet(finals))}
		}
		// Anchor the quiescent sweep on the value the race serialized to.
		r.lastVal[line] = actual
	}
	return r.quiescentCheck()
}

// allowedReadValues computes the set a racing read may legally return:
// the newest value written before the read began (or the pre-race value
// if none), plus any write whose window overlaps the read's.
func allowedReadValues(prefix uint64, rd *opRecord, writes []*opRecord) map[uint64]bool {
	base := prefix
	baseEnd := sim.Time(-1)
	allowed := map[uint64]bool{}
	for _, w := range writes {
		if w.end <= rd.start && w.end > baseEnd {
			base, baseEnd = w.val, w.end
		}
		if w.start <= rd.end && rd.start <= w.end {
			allowed[w.val] = true
		}
	}
	allowed[base] = true
	return allowed
}

// allowedFinalValues computes the values a line may legally hold once the
// race quiesces: the pre-race value if nothing wrote it, the later write
// if the windows are disjoint, either write if they overlap.
func allowedFinalValues(prefix uint64, writes []*opRecord) map[uint64]bool {
	if len(writes) == 0 {
		return map[uint64]bool{prefix: true}
	}
	finals := map[uint64]bool{}
	for _, w := range writes {
		ordered := false
		for _, w2 := range writes {
			if w2 != w && w2.start >= w.end {
				ordered = true // w completed strictly before w2 began
			}
		}
		if !ordered {
			finals[w.val] = true
		}
	}
	return finals
}

// finalValue reads the line's settled value out of the quiescent machine:
// a dirty copy wins, else any valid copy, else the home memory image.
func (r *runner) finalValue(line uint64) (uint64, string) {
	var cleanVal uint64
	haveClean := false
	for _, p := range r.m.Procs {
		st := p.L2State(line)
		if st.Dirty() {
			return p.LineValue(line), fmt.Sprintf("dirty copy on p%d", p.ID())
		}
		if st != cache.Invalid && !haveClean {
			cleanVal, haveClean = p.LineValue(line), true
		}
	}
	if haveClean {
		return cleanVal, "clean cached copy"
	}
	home := r.m.Space.Home(line)
	return r.m.Buses[home].MemValue(line), fmt.Sprintf("memory on node %d", home)
}

// valueSet renders an allowed-value set deterministically for messages.
func valueSet(m map[uint64]bool) []string {
	var out []string
	for v := range m {
		out = append(out, fmt.Sprintf("%#x", v))
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
