package workload

import (
	"bytes"
	"testing"

	"ccnuma/internal/config"
	"ccnuma/internal/fault"
	"ccnuma/internal/machine"
	"ccnuma/internal/obs"
	"ccnuma/internal/stats"
)

// runSharded runs one kernel at the given shard count and returns the run.
// Shards beyond 1 execute on concurrent engine workers; everything the run
// reports must nonetheless be identical to the serial loop.
func runSharded(t *testing.T, cfg config.Config, app string, seed int64, shards int) *stats.Run {
	t.Helper()
	cfg.SimShards = shards
	m, err := machine.New(cfg, app)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewSeeded(app, SizeTest, m.NProcs(), seed)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Setup(m); err != nil {
		t.Fatal(err)
	}
	r, err := m.Run(w.Body)
	if err != nil {
		t.Fatalf("%s shards=%d: %v", app, shards, err)
	}
	if err := w.Verify(); err != nil {
		t.Fatalf("%s shards=%d verification: %v", app, shards, err)
	}
	return r
}

// artifactBytes reduces a run to its canonical artifact JSON, the external
// byte-identity surface `-shards` is held to.
func artifactBytes(t *testing.T, cfg *config.Config, r *stats.Run) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := obs.NewArtifact("test", "test", cfg, r).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestShardGoldenExecTimes extends the golden cycle pins to sharded
// execution: the parallel scheduler must reproduce the serial loop's exact
// cycle counts, not merely statistically similar ones. Any drift means a
// cross-shard event was merged out of (time, seq) order.
func TestShardGoldenExecTimes(t *testing.T) {
	cases := []struct {
		app  string
		arch string
		want int64
	}{
		{"fft", "HWC", 14804},
		{"fft", "2PPC", 21476},
	}
	for _, tc := range cases {
		for _, shards := range []int{2, 4} {
			cfg, err := config.Base().WithArch(tc.arch)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Nodes = 4
			cfg.ProcsPerNode = 2
			cfg.SimLimit = 2_000_000_000
			r := runSharded(t, cfg, tc.app, 0, shards)
			if int64(r.ExecTime) != tc.want {
				t.Errorf("%s on %s shards=%d: ExecTime = %d cycles, want %d — sharded execution diverged from the serial schedule",
					tc.app, tc.arch, shards, r.ExecTime, tc.want)
			}
		}
	}
}

// TestShardArtifactByteIdentity is the headline determinism check: the full
// run artifact — every counter, histogram bucket, and recovery total — must
// be byte-identical between the serial loop and any shard count, on the
// paper's base configuration, with robustness on, and with attribution on.
func TestShardArtifactByteIdentity(t *testing.T) {
	type variant struct {
		name string
		mut  func(*config.Config)
	}
	variants := []variant{
		{"base", func(*config.Config) {}},
		{"robust", func(c *config.Config) { *c = c.WithRobustness() }},
		{"attribution", func(c *config.Config) {
			*c = c.WithRobustness()
			c.Attribution = true
		}},
	}
	for _, v := range variants {
		for _, app := range []string{"fft", "radix"} {
			cfg, err := config.Base().WithArch("HWC")
			if err != nil {
				t.Fatal(err)
			}
			cfg.Nodes = 4
			cfg.ProcsPerNode = 2
			cfg.SimLimit = 2_000_000_000
			v.mut(&cfg)
			serial := artifactBytes(t, &cfg, runSharded(t, cfg, app, 1, 1))
			for _, shards := range []int{2, 4} {
				got := artifactBytes(t, &cfg, runSharded(t, cfg, app, 1, shards))
				if !bytes.Equal(serial, got) {
					t.Errorf("%s/%s: artifact at shards=%d differs from serial (%d vs %d bytes)",
						v.name, app, shards, len(serial), len(got))
				}
			}
		}
	}
}

// TestShardChaosByteIdentity drives seeded fault schedules through sharded
// machines and requires every recovered run to be byte-identical to its
// serial twin. Faults exercise the paths plain runs cannot: message drops
// and duplicates crossing shard boundaries, per-pair fault indexing,
// brownouts deferred into the destination window, component stalls armed on
// individual shard engines.
func TestShardChaosByteIdentity(t *testing.T) {
	cfg, err := config.Base().WithArch("HWC")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Nodes = 4
	cfg.ProcsPerNode = 2
	cfg.SimLimit = 50_000_000_000
	cfg = cfg.WithRobustness()

	const app = "fft"
	pilot := runSharded(t, cfg, app, 1, 1)
	params := fault.Params{
		Events: 8, Horizon: pilot.ExecTime, Messages: 4000,
		Nodes: cfg.Nodes, Engines: cfg.EngineCount(),
	}
	runFaulted := func(seed int64, shards int) ([]byte, uint64) {
		c := cfg
		c.SimShards = shards
		m, err := machine.New(c, app)
		if err != nil {
			t.Fatal(err)
		}
		sch := fault.Generate(seed, params)
		inj := m.InjectFaults(sch)
		w, err := NewSeeded(app, SizeTest, m.NProcs(), 1)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Setup(m); err != nil {
			t.Fatal(err)
		}
		r, err := m.Run(w.Body)
		if err != nil {
			t.Fatalf("seed %d shards=%d (%s): %v", seed, shards, sch, err)
		}
		if err := w.Verify(); err != nil {
			t.Fatalf("seed %d shards=%d verification: %v", seed, shards, err)
		}
		return artifactBytes(t, &c, r), inj.AppliedTotal()
	}
	for seed := int64(1); seed <= 10; seed++ {
		serial, appliedSerial := runFaulted(seed, 1)
		got, appliedSharded := runFaulted(seed, 4)
		if appliedSerial != appliedSharded {
			t.Errorf("seed %d: %d faults applied serial vs %d sharded — fault coordinates are not shard-stable",
				seed, appliedSerial, appliedSharded)
		}
		if !bytes.Equal(serial, got) {
			t.Errorf("seed %d: sharded chaos artifact differs from serial", seed)
		}
	}
}

// TestShardCountFullWidth runs one shard per node (the widest legal
// decomposition) across several kernels, pinning each to its serial result.
// Non-power-of-two widths catch mapping bugs the 2/4 cases cannot.
func TestShardCountFullWidth(t *testing.T) {
	for _, tc := range []struct {
		app   string
		nodes int
	}{
		{"fft", 4},
		{"lu", 3},
		{"water-sp", 2},
	} {
		cfg, err := config.Base().WithArch("HWC")
		if err != nil {
			t.Fatal(err)
		}
		cfg.Nodes = tc.nodes
		cfg.ProcsPerNode = 2
		cfg.SimLimit = 2_000_000_000
		serial := runSharded(t, cfg, tc.app, 0, 1)
		full := runSharded(t, cfg, tc.app, 0, tc.nodes)
		if serial.ExecTime != full.ExecTime {
			t.Errorf("%s: shards=%d ExecTime %d != serial %d",
				tc.app, tc.nodes, full.ExecTime, serial.ExecTime)
		}
		if !bytes.Equal(artifactBytes(t, &cfg, serial), artifactBytes(t, &cfg, full)) {
			t.Errorf("%s: full-width sharded artifact differs from serial", tc.app)
		}
	}
}

// TestShardStress is the race-detector workout for the shard barrier: a
// robust attributed run with faults at full shard width, repeated across
// seeds. Its assertions are light — the value is running the cross-shard
// machinery (mailbox publication, fence resolution, atomic counters) under
// `go test -race`, where any unsynchronized access fails the build.
func TestShardStress(t *testing.T) {
	cfg, err := config.Base().WithArch("HWC")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Nodes = 4
	cfg.ProcsPerNode = 2
	cfg.SimLimit = 50_000_000_000
	cfg = cfg.WithRobustness()
	cfg.Attribution = true
	cfg.SimShards = 4
	for seed := int64(1); seed <= 4; seed++ {
		m, err := machine.New(cfg, "fft")
		if err != nil {
			t.Fatal(err)
		}
		sch := fault.Generate(seed, fault.Params{
			Events: 10, Horizon: 200_000, Messages: 4000,
			Nodes: cfg.Nodes, Engines: cfg.EngineCount(),
		})
		m.InjectFaults(sch)
		w, err := NewSeeded("fft", SizeTest, m.NProcs(), seed)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Setup(m); err != nil {
			t.Fatal(err)
		}
		r, err := m.Run(w.Body)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := w.Verify(); err != nil {
			t.Fatalf("seed %d verification: %v", seed, err)
		}
		if a := r.Attribution; a == nil || a.Violations != 0 {
			t.Fatalf("seed %d: attribution missing or violated under shards", seed)
		}
	}
}

// TestShardRejectsTracing pins the tracer gate: the trace ring is one
// globally ordered log and cannot record from concurrent shard workers, so
// machine construction must refuse the combination loudly instead of
// emitting a silently scrambled trace.
func TestShardRejectsTracing(t *testing.T) {
	cfg, err := config.Base().WithArch("HWC")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Nodes = 4
	cfg.ProcsPerNode = 2
	cfg.SimShards = 2
	if _, err := machine.NewTraced(cfg, "fft", obs.NewTracer()); err == nil {
		t.Fatal("NewTraced accepted a tracer on a sharded machine")
	}
	if _, err := machine.New(cfg, "fft"); err != nil {
		t.Fatalf("untraced sharded machine must build: %v", err)
	}
}

// TestShardRejectsSampler pins the sampler gate for the same reason: its
// periodic probe walks every node's state from one event.
func TestShardRejectsSampler(t *testing.T) {
	cfg, err := config.Base().WithArch("HWC")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Nodes = 4
	cfg.ProcsPerNode = 2
	cfg.SimShards = 2
	m, err := machine.New(cfg, "fft")
	if err != nil {
		t.Fatal(err)
	}
	m.AttachSampler(obs.NewSampler(1000))
	w, err := New("fft", SizeTest, m.NProcs())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Setup(m); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(w.Body); err == nil {
		t.Fatal("Run accepted a sampler on a sharded machine")
	}
}
