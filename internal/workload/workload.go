// Package workload implements the eight SPLASH-2 applications of the
// paper's Table 5 as execution-driven Go kernels, plus a tunable synthetic
// microbenchmark. Each kernel performs its real computation on Go-side
// arrays while issuing its shared-memory reference stream to the timing
// model at cache-line granularity (one simulated reference per touched
// line, with the intra-line accesses folded into Compute cycles — the
// caches operate on lines, so the timing behaviour is preserved while the
// simulation runs an order of magnitude faster).
//
// Problem sizes are scaled down from the paper's (pure-Go simulation costs
// more per reference than Augmint did); communication patterns — blocked
// 2D factorization, all-to-all transposes, key permutation, stencil
// halos, tree walks, pairwise force exchanges — are preserved, which is
// what drives coherence-controller occupancy.
package workload

import (
	"fmt"
	"sort"

	"ccnuma/internal/machine"
	"ccnuma/internal/prog"
)

// SizeClass selects a problem size.
type SizeClass int

const (
	// SizeTest is a tiny configuration for unit tests and quick smoke
	// runs.
	SizeTest SizeClass = iota
	// SizeSmall is a reduced data set that still runs on the full base
	// machine: the "simpler applications" of the paper's Section 3.3
	// prediction methodology (detailed simulation of small inputs
	// calibrates the penalty-vs-RCCPI curve used to predict large ones).
	SizeSmall
	// SizeBase mirrors the paper's base data sets (scaled).
	SizeBase
	// SizeLarge mirrors the paper's larger data sets (scaled; 4x FFT
	// points, ~2x Ocean grid side, matching Figure 9's ratios).
	SizeLarge
)

func (s SizeClass) String() string {
	switch s {
	case SizeTest:
		return "test"
	case SizeSmall:
		return "small"
	case SizeBase:
		return "base"
	case SizeLarge:
		return "large"
	default:
		return fmt.Sprintf("SizeClass(%d)", int(s))
	}
}

// Workload is one SPMD application.
type Workload interface {
	// Name returns the benchmark's name (lower case, e.g. "ocean").
	Name() string
	// Setup allocates the shared regions and initializes Go-side data.
	// It runs before simulation starts; initialization references are not
	// simulated (the paper measures the parallel phase only).
	Setup(m *machine.Machine) error
	// Body is the per-processor program.
	Body(e prog.Env)
	// Verify checks the computation's result after the run.
	Verify() error
}

// Factory builds a workload at a given size for a machine with nprocs
// processors.
type Factory func(size SizeClass, nprocs int) Workload

var registry = map[string]Factory{}

func register(name string, f Factory) {
	if _, dup := registry[name]; dup {
		panic("workload: duplicate registration of " + name)
	}
	registry[name] = f
}

// New creates the named workload. Names follow the paper: lu, cholesky,
// barnes, water-sp, water-nsq, fft, radix, ocean, plus micro.
func New(name string, size SizeClass, nprocs int) (Workload, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown benchmark %q (have %v)", name, Names())
	}
	return f(size, nprocs), nil
}

// Seedable is implemented by workloads whose input data is drawn from a
// seeded generator. SetSeed offsets the kernel's fixed internal seed, so
// different seeds produce different (but still deterministic) inputs and
// reference streams; seed 0 is the identity and leaves the kernel
// byte-identical to its unseeded form.
type Seedable interface {
	SetSeed(seed int64)
}

// NewSeeded creates the named workload and applies seed when it is non-zero
// and the kernel draws seeded input data. Seed 0 always reproduces the
// exact unseeded workload, keeping default runs cycle-identical.
func NewSeeded(name string, size SizeClass, nprocs int, seed int64) (Workload, error) {
	w, err := New(name, size, nprocs)
	if err != nil {
		return nil, err
	}
	if s, ok := w.(Seedable); ok && seed != 0 {
		s.SetSeed(seed)
	}
	return w, nil
}

// Names lists the registered benchmarks in sorted order.
func Names() []string {
	var names []string
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// PaperApps lists the eight SPLASH-2 applications in the paper's
// presentation order (Figure 6).
var PaperApps = []string{"lu", "water-sp", "barnes", "cholesky", "water-nsq", "fft", "radix", "ocean"}

// ---- reference helpers -------------------------------------------------------

// spanner issues line-granular references using the machine's configured
// cache-line size. Workloads embed one and initialize it in Setup; it also
// carries the optional input seed, making every kernel Seedable.
type spanner struct {
	ls   uint64 // line size in bytes
	seed int64  // input-seed offset (0 = the kernel's fixed default)
}

func (s *spanner) init(m *machine.Machine) { s.ls = uint64(m.Cfg.LineSize) }

// SetSeed offsets the kernel's input-generation seed. Kernels whose inputs
// are fully deterministic (micro, ocean) ignore it.
func (s *spanner) SetSeed(seed int64) { s.seed = seed }

// readSpan issues one simulated read per cache line of [base, base+bytes).
func (s *spanner) readSpan(e prog.Env, base uint64, bytes int) {
	first := base &^ (s.ls - 1)
	last := (base + uint64(bytes) - 1) &^ (s.ls - 1)
	for a := first; a <= last; a += s.ls {
		e.Read(a)
	}
}

// writeSpan issues one simulated write per cache line of the span.
func (s *spanner) writeSpan(e prog.Env, base uint64, bytes int) {
	first := base &^ (s.ls - 1)
	last := (base + uint64(bytes) - 1) &^ (s.ls - 1)
	for a := first; a <= last; a += s.ls {
		e.Write(a)
	}
}

// blockRange partitions n items over nprocs and returns [lo, hi) for proc
// id (contiguous blocks, remainder spread over the first procs).
func blockRange(n, nprocs, id int) (int, int) {
	base := n / nprocs
	rem := n % nprocs
	lo := id*base + min(id, rem)
	hi := lo + base
	if id < rem {
		hi++
	}
	return lo, hi
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
