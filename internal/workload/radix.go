package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"ccnuma/internal/machine"
	"ccnuma/internal/prog"
)

func init() {
	register("radix", func(size SizeClass, nprocs int) Workload {
		n := 65536
		switch size {
		case SizeTest:
			n = 2048
		case SizeSmall:
			n = 16384
		case SizeLarge:
			n = 131072
		}
		return &radixWork{n: n, radix: 128, keyBits: 14, nprocs: nprocs}
	})
}

// radixWork is the SPLASH-2 integer radix sort: each pass histograms a
// digit locally, computes global rank offsets from all processors'
// histograms, and permutes every key to its destination in the other
// array. The permutation phase writes keys to arbitrary (mostly remote)
// lines and is the all-to-all communication that makes Radix one of the
// paper's highest-RCCPI applications; its communication rate is constant
// in the data size, as the paper notes.
type radixWork struct {
	spanner
	n       int
	radix   int
	keyBits int
	nprocs  int

	keys  []uint32 // current array
	other []uint32
	orig  []uint32
	// hist[p*radix+d] is processor p's count of digit d for the current
	// pass.
	hist []int

	keysBase, otherBase, histBase uint64
}

func (w *radixWork) Name() string { return "radix" }

func (w *radixWork) Setup(m *machine.Machine) error {
	if w.n%w.nprocs != 0 {
		// Round down to a multiple for even ownership.
		w.n -= w.n % w.nprocs
	}
	if w.n == 0 {
		return fmt.Errorf("radix: no keys for %d procs", w.nprocs)
	}
	w.init(m)
	w.keys = make([]uint32, w.n)
	w.other = make([]uint32, w.n)
	w.hist = make([]int, w.nprocs*w.radix)
	rng := rand.New(rand.NewSource(13 + w.seed))
	mask := uint32(1)<<w.keyBits - 1
	for i := range w.keys {
		w.keys[i] = rng.Uint32() & mask
	}
	w.orig = append([]uint32(nil), w.keys...)
	w.keysBase = m.Space.Alloc(w.n * 4)
	w.otherBase = m.Space.Alloc(w.n * 4)
	w.histBase = m.Space.Alloc(w.nprocs * w.radix * 8)
	return nil
}

func (w *radixWork) keyAddr(base uint64, i int) uint64 { return base + uint64(i*4) }

func (w *radixWork) histAddr(p, d int) uint64 {
	return w.histBase + uint64((p*w.radix+d)*8)
}

func (w *radixWork) Body(e prog.Env) {
	me := e.ID()
	lo, hi := blockRange(w.n, w.nprocs, me)
	digits := (w.keyBits + bitsOf(w.radix) - 1) / bitsOf(w.radix)
	src, dst := w.keys, w.other
	srcBase, dstBase := w.keysBase, w.otherBase

	for pass := 0; pass < digits; pass++ {
		shift := uint(pass * bitsOf(w.radix))
		// Phase 1: local histogram (sequential read of our key block).
		counts := make([]int, w.radix)
		for i := lo; i < hi; i++ {
			d := int(src[i]>>shift) & (w.radix - 1)
			counts[d]++
		}
		w.readSpan(e, w.keyAddr(srcBase, lo), (hi-lo)*4)
		e.Compute(6 * (hi - lo))
		// Publish our histogram.
		copy(w.hist[me*w.radix:], counts)
		w.writeSpan(e, w.histAddr(me, 0), w.radix*8)
		e.Barrier()

		// Phase 2: compute our rank offsets by reading every processor's
		// histogram (communication: P x radix shared counters).
		offsets := make([]int, w.radix)
		pos := 0
		for d := 0; d < w.radix; d++ {
			for p := 0; p < w.nprocs; p++ {
				if p == me {
					offsets[d] = pos
				}
				pos += w.hist[p*w.radix+d]
			}
		}
		for p := 0; p < w.nprocs; p++ {
			if p != me {
				w.readSpan(e, w.histAddr(p, 0), w.radix*8)
			}
		}
		e.Compute(2 * w.radix * w.nprocs)
		e.Barrier()

		// Phase 3: permute our keys to their global destinations
		// (scattered, mostly remote writes: the dominant communication).
		for i := lo; i < hi; i++ {
			d := int(src[i]>>shift) & (w.radix - 1)
			dest := offsets[d]
			offsets[d]++
			dst[dest] = src[i]
			e.Read(w.keyAddr(srcBase, i))
			e.Write(w.keyAddr(dstBase, dest))
			e.Compute(40)
		}
		e.Barrier()

		src, dst = dst, src
		srcBase, dstBase = dstBase, srcBase
	}
	// Record which array holds the result (same decision on every proc).
	if me == 0 {
		if digits%2 == 1 {
			w.keys, w.other = w.other, w.keys
		}
	}
	e.Barrier()
}

func bitsOf(radix int) int {
	b := 0
	for 1<<b < radix {
		b++
	}
	return b
}

// Verify checks the output is a sorted permutation of the input.
func (w *radixWork) Verify() error {
	if !sort.SliceIsSorted(w.keys, func(i, j int) bool { return w.keys[i] < w.keys[j] }) {
		return fmt.Errorf("radix: output not sorted")
	}
	want := append([]uint32(nil), w.orig...)
	got := append([]uint32(nil), w.keys...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i := range got {
		if got[i] != want[i] {
			return fmt.Errorf("radix: output is not a permutation of the input (index %d)", i)
		}
	}
	return nil
}
