package workload

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"

	"ccnuma/internal/machine"
	"ccnuma/internal/prog"
)

func init() {
	register("fft", func(size SizeClass, nprocs int) Workload {
		m := 128 // sqrt(n): base 16K complex points
		switch size {
		case SizeTest:
			m = 16
		case SizeSmall:
			m = 64
		case SizeLarge:
			m = 256 // 64K points: 4x the base, matching Figure 9's ratio
		}
		return &fftWork{m: m, nprocs: nprocs}
	})
}

// fftWork is the SPLASH-2 radix-sqrt(n) six-step FFT: the n complex points
// are viewed as an m x m matrix (m = sqrt(n)); the algorithm transposes,
// FFTs every row, multiplies by twiddle factors, transposes, FFTs rows
// again, and transposes back. The three blocked all-to-all transposes are
// the dominant communication (bursty, high-bandwidth), as in the paper.
// Rows are placed at their owners' nodes, matching the paper's
// programmer-optimized placement for FFT.
type fftWork struct {
	spanner
	m      int // matrix side; n = m*m complex points
	nprocs int

	src, dst []complex128
	orig     []complex128
	baseA    uint64
	baseB    uint64
	rowBytes int
}

func (w *fftWork) Name() string { return "fft" }

func (w *fftWork) Setup(m *machine.Machine) error {
	if w.m&(w.m-1) != 0 {
		return fmt.Errorf("fft: m=%d not a power of two", w.m)
	}
	w.init(m)
	n := w.m * w.m
	w.src = make([]complex128, n)
	w.dst = make([]complex128, n)
	rng := rand.New(rand.NewSource(11 + w.seed))
	for i := range w.src {
		w.src[i] = complex(rng.Float64()-0.5, rng.Float64()-0.5)
	}
	w.orig = append([]complex128(nil), w.src...)
	w.rowBytes = w.m * 16 // complex128 = 16 bytes

	// Place each processor's rows on its own node (paper: FFT runs with
	// programmer placement hints).
	nodes := m.Cfg.Nodes
	placeRows := func(page int) int {
		rowsPerPage := m.Cfg.PageSize / w.rowBytes
		if rowsPerPage == 0 {
			rowsPerPage = 1
		}
		row := page * rowsPerPage
		proc := 0
		for p := 0; p < w.nprocs; p++ {
			lo, hi := blockRange(w.m, w.nprocs, p)
			if row >= lo && row < hi {
				proc = p
				break
			}
		}
		return proc * nodes / w.nprocs
	}
	w.baseA = m.Space.AllocPlaced(n*16, placeRows)
	w.baseB = m.Space.AllocPlaced(n*16, placeRows)
	return nil
}

func (w *fftWork) addrA(row, col int) uint64 { return w.baseA + uint64((row*w.m+col)*16) }
func (w *fftWork) addrB(row, col int) uint64 { return w.baseB + uint64((row*w.m+col)*16) }

// transpose copies srcArr^T into dstArr for this processor's rows, in
// line-sized column tiles (blocked transpose, as SPLASH-2 does). Reading a
// column of the source touches one line of every source row in the tile:
// this is the all-to-all communication.
func (w *fftWork) transpose(e prog.Env, srcArr, dstArr []complex128, srcBase, dstBase uint64) {
	lo, hi := blockRange(w.m, w.nprocs, e.ID())
	tile := int(w.ls) / 16 // complex elements per line
	for r := lo; r < hi; r++ {
		for c0 := 0; c0 < w.m; c0 += tile {
			// Read the source tile: elements (c0..c0+tile-1, r).
			for c := c0; c < c0+tile && c < w.m; c++ {
				dstArr[r*w.m+c] = srcArr[c*w.m+r]
			}
			// One line read per source row in the tile (column r lives in
			// a different line of each row), one line write to our row.
			for c := c0; c < c0+tile && c < w.m; c++ {
				e.Read(srcBase + uint64((c*w.m+r)*16))
			}
			e.Write(dstBase + uint64((r*w.m+c0)*16))
			e.Compute(2 * tile)
		}
	}
}

// fftRows runs an in-place iterative radix-2 FFT over this processor's
// rows of arr, touching each row's lines and charging the O(m log m)
// butterfly work.
func (w *fftWork) fftRows(e prog.Env, arr []complex128, base uint64) {
	lo, hi := blockRange(w.m, w.nprocs, e.ID())
	logm := 0
	for 1<<logm < w.m {
		logm++
	}
	for r := lo; r < hi; r++ {
		row := arr[r*w.m : (r+1)*w.m]
		fft1d(row)
		w.readSpan(e, base+uint64(r*w.m*16), w.rowBytes)
		w.writeSpan(e, base+uint64(r*w.m*16), w.rowBytes)
		e.Compute(5 * w.m * logm) // ~5 flops per butterfly point
	}
}

// twiddle applies the six-step algorithm's twiddle factors to this
// processor's rows of dst.
func (w *fftWork) twiddle(e prog.Env, arr []complex128, base uint64) {
	lo, hi := blockRange(w.m, w.nprocs, e.ID())
	n := float64(w.m * w.m)
	for r := lo; r < hi; r++ {
		for c := 0; c < w.m; c++ {
			ang := -2 * math.Pi * float64(r) * float64(c) / n
			arr[r*w.m+c] *= cmplx.Exp(complex(0, ang))
		}
		w.readSpan(e, base+uint64(r*w.m*16), w.rowBytes)
		w.writeSpan(e, base+uint64(r*w.m*16), w.rowBytes)
		e.Compute(8 * w.m)
	}
}

func (w *fftWork) Body(e prog.Env) {
	// Step 1: transpose src -> dst.
	w.transpose(e, w.src, w.dst, w.baseA, w.baseB)
	e.Barrier()
	// Step 2: FFT the rows of dst.
	w.fftRows(e, w.dst, w.baseB)
	e.Barrier()
	// Step 3: twiddle.
	w.twiddle(e, w.dst, w.baseB)
	e.Barrier()
	// Step 4: transpose dst -> src.
	w.transpose(e, w.dst, w.src, w.baseB, w.baseA)
	e.Barrier()
	// Step 5: FFT the rows of src.
	w.fftRows(e, w.src, w.baseA)
	e.Barrier()
	// Step 6: transpose src -> dst (final order).
	w.transpose(e, w.src, w.dst, w.baseA, w.baseB)
	e.Barrier()
}

// fft1d is an in-place iterative radix-2 Cooley-Tukey FFT.
func fft1d(a []complex128) {
	n := len(a)
	// Bit reversal.
	for i, j := 0, 0; i < n; i++ {
		if i < j {
			a[i], a[j] = a[j], a[i]
		}
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j |= bit
	}
	for length := 2; length <= n; length <<= 1 {
		ang := -2 * math.Pi / float64(length)
		wl := cmplx.Exp(complex(0, ang))
		for i := 0; i < n; i += length {
			wc := complex(1, 0)
			for j := 0; j < length/2; j++ {
				u := a[i+j]
				v := a[i+j+length/2] * wc
				a[i+j] = u + v
				a[i+j+length/2] = u - v
				wc *= wl
			}
		}
	}
}

// Verify checks the six-step result against a direct FFT of the original
// input on a sample of output points.
func (w *fftWork) Verify() error {
	n := w.m * w.m
	// The six-step algorithm computes the DFT with the output index
	// factored as k = k2*m + k1; after the final transpose dst holds
	// X[k] in natural order read row-major. Check Parseval's theorem plus
	// a few direct DFT samples.
	var inE, outE float64
	for i := 0; i < n; i++ {
		inE += real(w.orig[i])*real(w.orig[i]) + imag(w.orig[i])*imag(w.orig[i])
		outE += real(w.dst[i])*real(w.dst[i]) + imag(w.dst[i])*imag(w.dst[i])
	}
	if math.Abs(outE/float64(n)-inE) > 1e-6*inE {
		return fmt.Errorf("fft: Parseval mismatch: in=%g out/n=%g", inE, outE/float64(n))
	}
	for _, k := range []int{0, 1, w.m + 3, n / 2} {
		var want complex128
		for t := 0; t < n; t++ {
			ang := -2 * math.Pi * float64(k) * float64(t) / float64(n)
			want += w.orig[t] * cmplx.Exp(complex(0, ang))
		}
		got := w.dft(k)
		if cmplx.Abs(got-want) > 1e-6*(1+cmplx.Abs(want)) {
			return fmt.Errorf("fft: X[%d] = %v, want %v", k, got, want)
		}
	}
	return nil
}

// dft returns the computed transform value for global index k. The final
// transpose of the six-step algorithm restores natural order: with
// k = k1 + k2*m, step 5 leaves X[k] at src[k1*m + k2] and step 6 moves it
// to dst[k2*m + k1] = dst[k].
func (w *fftWork) dft(k int) complex128 { return w.dst[k] }
