package workload

import (
	"testing"

	"ccnuma/internal/config"
	"ccnuma/internal/machine"
	"ccnuma/internal/stats"
)

// runWorkload executes one benchmark at test size on a small machine and
// verifies its computation.
func runWorkload(t *testing.T, name string, nodes, procsPerNode int) *stats.Run {
	t.Helper()
	cfg := config.Base()
	cfg.Nodes = nodes
	cfg.ProcsPerNode = procsPerNode
	cfg.SimLimit = 2_000_000_000
	m, err := machine.New(cfg, name)
	if err != nil {
		t.Fatal(err)
	}
	w, err := New(name, SizeTest, m.NProcs())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Setup(m); err != nil {
		t.Fatal(err)
	}
	r, err := m.Run(w.Body)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if err := w.Verify(); err != nil {
		t.Fatalf("%s verification: %v", name, err)
	}
	return r
}

func TestRegistryComplete(t *testing.T) {
	names := Names()
	want := []string{"barnes", "cholesky", "fft", "lu", "micro", "ocean", "radix", "water-nsq", "water-sp"}
	if len(names) != len(want) {
		t.Fatalf("registry has %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("registry has %v, want %v", names, want)
		}
	}
	if _, err := New("nope", SizeBase, 4); err == nil {
		t.Fatal("unknown workload should error")
	}
	if len(PaperApps) != 8 {
		t.Fatalf("paper app list has %d entries", len(PaperApps))
	}
	for _, app := range PaperApps {
		if _, err := New(app, SizeTest, 4); err != nil {
			t.Errorf("paper app %s unregistered: %v", app, err)
		}
	}
}

func TestLU(t *testing.T)       { runWorkload(t, "lu", 2, 2) }
func TestFFT(t *testing.T)      { runWorkload(t, "fft", 2, 2) }
func TestRadix(t *testing.T)    { runWorkload(t, "radix", 2, 2) }
func TestOcean(t *testing.T)    { runWorkload(t, "ocean", 2, 2) }
func TestBarnes(t *testing.T)   { runWorkload(t, "barnes", 2, 2) }
func TestWaterNsq(t *testing.T) { runWorkload(t, "water-nsq", 2, 2) }
func TestWaterSp(t *testing.T)  { runWorkload(t, "water-sp", 2, 2) }
func TestCholesky(t *testing.T) { runWorkload(t, "cholesky", 2, 2) }
func TestMicro(t *testing.T)    { runWorkload(t, "micro", 2, 2) }

func TestWorkloadsOnFourNodes(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, name := range []string{"ocean", "radix", "fft"} {
		name := name
		t.Run(name, func(t *testing.T) { runWorkload(t, name, 4, 2) })
	}
}

// The paper's key application property: communication rates (RCCPI) order
// Ocean/Radix above Barnes/Water-Spatial/LU.
func TestRCCPIOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rccpi := map[string]float64{}
	for _, name := range []string{"ocean", "radix", "lu", "water-sp"} {
		r := runWorkload(t, name, 4, 2)
		rccpi[name] = r.RCCPI()
		t.Logf("%-10s 1000*RCCPI = %.3f", name, 1000*r.RCCPI())
	}
	if rccpi["ocean"] <= rccpi["lu"] {
		t.Errorf("ocean RCCPI (%.4f) should exceed lu (%.4f)", rccpi["ocean"], rccpi["lu"])
	}
	if rccpi["radix"] <= rccpi["water-sp"] {
		t.Errorf("radix RCCPI (%.4f) should exceed water-sp (%.4f)", rccpi["radix"], rccpi["water-sp"])
	}
}

func TestMicroShareKnob(t *testing.T) {
	run := func(share int) float64 {
		cfg := config.Base()
		cfg.Nodes = 4
		cfg.ProcsPerNode = 2
		cfg.SimLimit = 1_000_000_000
		m, err := machine.New(cfg, "micro")
		if err != nil {
			t.Fatal(err)
		}
		w := NewMicro(100, share, 30, m.NProcs())
		if err := w.Setup(m); err != nil {
			t.Fatal(err)
		}
		r, err := m.Run(w.Body)
		if err != nil {
			t.Fatal(err)
		}
		return r.RCCPI()
	}
	low, high := run(5), run(80)
	if high <= low {
		t.Fatalf("RCCPI should rise with the share knob: low=%.5f high=%.5f", low, high)
	}
}

func TestBlockRange(t *testing.T) {
	covered := make([]bool, 13)
	for p := 0; p < 4; p++ {
		lo, hi := blockRange(13, 4, p)
		for i := lo; i < hi; i++ {
			if covered[i] {
				t.Fatalf("index %d covered twice", i)
			}
			covered[i] = true
		}
	}
	for i, c := range covered {
		if !c {
			t.Fatalf("index %d not covered", i)
		}
	}
}

func TestFFT1D(t *testing.T) {
	a := []complex128{1, 2, 3, 4}
	fft1d(a)
	// DFT of [1,2,3,4]: [10, -2+2i, -2, -2-2i].
	want := []complex128{10, complex(-2, 2), -2, complex(-2, -2)}
	for i := range a {
		if d := a[i] - want[i]; real(d)*real(d)+imag(d)*imag(d) > 1e-18 {
			t.Fatalf("fft1d[%d] = %v, want %v", i, a[i], want[i])
		}
	}
}

// TestWorkloadDeterminism: the same workload on the same configuration
// must produce bit-identical statistics run to run — the property that
// makes every experiment in this repository reproducible.
func TestWorkloadDeterminism(t *testing.T) {
	for _, name := range []string{"ocean", "radix", "cholesky"} {
		name := name
		t.Run(name, func(t *testing.T) {
			run := func() (int64, uint64, uint64) {
				r := runWorkload(t, name, 2, 2)
				return int64(r.ExecTime), r.Instructions, r.TotalArrivals()
			}
			e1, i1, a1 := run()
			e2, i2, a2 := run()
			if e1 != e2 || i1 != i2 || a1 != a2 {
				t.Fatalf("nondeterministic: (%d,%d,%d) vs (%d,%d,%d)", e1, i1, a1, e2, i2, a2)
			}
		})
	}
}

// TestInstructionCountArchInvariant: the paper ignores the architecture's
// effect on RCCPI ("the difference in RCCPI between the four
// implementations is less than 1% for all applications"); instruction
// counts are exactly invariant here because the programs are identical.
func TestInstructionCountArchInvariant(t *testing.T) {
	counts := map[string]uint64{}
	for _, arch := range []string{"HWC", "PPC", "2HWC", "2PPC"} {
		cfg := config.Base()
		var err error
		cfg, err = cfg.WithArch(arch)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Nodes, cfg.ProcsPerNode = 2, 2
		cfg.SimLimit = 2_000_000_000
		m, err := machine.New(cfg, "fft")
		if err != nil {
			t.Fatal(err)
		}
		w, err := New("fft", SizeTest, m.NProcs())
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Setup(m); err != nil {
			t.Fatal(err)
		}
		r, err := m.Run(w.Body)
		if err != nil {
			t.Fatal(err)
		}
		counts[arch] = r.Instructions
	}
	for arch, c := range counts {
		if c != counts["HWC"] {
			t.Errorf("%s executed %d instructions, HWC %d", arch, c, counts["HWC"])
		}
	}
}
