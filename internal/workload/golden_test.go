package workload

import (
	"testing"

	"ccnuma/internal/config"
	"ccnuma/internal/machine"
)

// TestGoldenExecTimes pins exact cycle counts for representative kernels on
// the base (robustness-off) configuration. The robustness machinery —
// finite queues, NACK/retry, timeouts, the reliable link layer — must be
// architecturally invisible when its knobs are zero: any drift here means a
// recovery code path leaked into the fault-free simulation.
func TestGoldenExecTimes(t *testing.T) {
	cases := []struct {
		app   string
		arch  string
		nodes int
		ppn   int
		want  int64
	}{
		{"fft", "HWC", 4, 2, 14804},
		{"fft", "2PPC", 4, 2, 21476},
		{"water-sp", "PPC", 2, 2, 101764},
	}
	for _, tc := range cases {
		cfg, err := config.Base().WithArch(tc.arch)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Nodes = tc.nodes
		cfg.ProcsPerNode = tc.ppn
		cfg.SimLimit = 2_000_000_000
		m, err := machine.New(cfg, tc.app)
		if err != nil {
			t.Fatal(err)
		}
		w, err := New(tc.app, SizeTest, m.NProcs())
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Setup(m); err != nil {
			t.Fatal(err)
		}
		r, err := m.Run(w.Body)
		if err != nil {
			t.Fatalf("%s/%s: %v", tc.app, tc.arch, err)
		}
		if err := w.Verify(); err != nil {
			t.Fatalf("%s/%s verification: %v", tc.app, tc.arch, err)
		}
		if int64(r.ExecTime) != tc.want {
			t.Errorf("%s on %s (%dx%d): ExecTime = %d cycles, want %d — the base configuration is no longer cycle-identical",
				tc.app, tc.arch, tc.nodes, tc.ppn, r.ExecTime, tc.want)
		}
	}
}
