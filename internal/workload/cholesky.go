package workload

import (
	"fmt"
	"math"
	"math/rand"

	"ccnuma/internal/machine"
	"ccnuma/internal/prog"
)

func init() {
	register("cholesky", func(size SizeClass, nprocs int) Workload {
		n := 192
		switch size {
		case SizeTest:
			n = 48
		case SizeSmall:
			n = 96
		case SizeLarge:
			n = 288
		}
		return &cholWork{n: n, nprocs: nprocs}
	})
}

// cholWork substitutes SPLASH-2's blocked sparse Cholesky with a
// supernodal right-looking dense Cholesky factorization driven by a
// lock-protected task queue over panels of uneven widths. The substitution
// preserves what the paper attributes to Cholesky: moderate communication
// (panels are read by many updaters right after being written) combined
// with high load imbalance (uneven panel widths and a serializing task
// queue), which the paper singles out as inflating Cholesky's execution
// time on both HWC and PPC.
type cholWork struct {
	spanner
	n      int
	nprocs int

	widths []int // panel widths (uneven on purpose)
	starts []int // first column of each panel

	a    []float64 // column-major lower triangle (full storage)
	orig []float64
	base uint64

	taskBase uint64 // shared task counters, one line per panel
	next     []int  // per-panel update cursor (task queue state)
}

func (w *cholWork) Name() string { return "cholesky" }

func (w *cholWork) Setup(m *machine.Machine) error {
	w.init(m)
	// Uneven panel widths cycling 8/24/16 columns.
	cycle := []int{8, 24, 16}
	for c, i := 0, 0; c < w.n; i++ {
		width := cycle[i%len(cycle)]
		if c+width > w.n {
			width = w.n - c
		}
		w.widths = append(w.widths, width)
		w.starts = append(w.starts, c)
		c += width
	}
	w.a = make([]float64, w.n*w.n)
	rng := rand.New(rand.NewSource(23 + w.seed))
	// Symmetric positive definite: A = B^T B + n*I (computed directly).
	b := make([]float64, w.n*w.n)
	for i := range b {
		b[i] = rng.Float64() - 0.5
	}
	for i := 0; i < w.n; i++ {
		for j := 0; j <= i; j++ {
			var s float64
			for k := 0; k < w.n; k++ {
				s += b[k*w.n+i] * b[k*w.n+j]
			}
			if i == j {
				s += float64(w.n)
			}
			w.a[i*w.n+j] = s
			w.a[j*w.n+i] = s
		}
	}
	w.orig = append([]float64(nil), w.a...)
	w.base = m.Space.Alloc(w.n * w.n * 8)
	w.taskBase = m.Space.Alloc(len(w.widths) * int(w.ls))
	w.next = make([]int, len(w.widths))
	return nil
}

func (w *cholWork) at(i, j int) float64     { return w.a[i*w.n+j] }
func (w *cholWork) set(i, j int, v float64) { w.a[i*w.n+j] = v }

// panelAddr returns the simulated address of column j's storage below row
// r0 (column-major panels: column j occupies a contiguous span).
func (w *cholWork) colAddr(j, r0 int) uint64 {
	return w.base + uint64((j*w.n+r0)*8)
}

func (w *cholWork) Body(e prog.Env) {
	me := e.ID()
	np := len(w.widths)
	for k := 0; k < np; k++ {
		// cdiv: panel k's owner factors it while everyone else waits — the
		// serial bottleneck that, with the uneven panel widths, produces
		// Cholesky's characteristic load imbalance.
		if k%w.nprocs == me {
			w.factorPanel(e, k)
			w.next[k] = k + 1 // seed the update queue before the barrier
		}
		e.Barrier()
		// cmod: update panels j > k, self-scheduled through a
		// lock-protected task queue.
		for {
			e.Lock(2000 + k)
			j := w.next[k]
			w.next[k] = j + 1
			e.Read(w.taskBase + uint64(k)*w.ls)
			e.Write(w.taskBase + uint64(k)*w.ls)
			e.Unlock(2000 + k)
			if j >= np {
				break
			}
			w.updatePanel(e, j, k)
		}
		e.Barrier()
	}
}

// factorPanel performs the dense Cholesky factorization of panel k's
// diagonal block and scales the sub-diagonal rows.
func (w *cholWork) factorPanel(e prog.Env, k int) {
	c0 := w.starts[k]
	width := w.widths[k]
	for j := c0; j < c0+width; j++ {
		d := w.at(j, j)
		for t := c0; t < j; t++ {
			d -= w.at(j, t) * w.at(j, t)
		}
		d = math.Sqrt(d)
		w.set(j, j, d)
		for i := j + 1; i < w.n; i++ {
			v := w.at(i, j)
			for t := c0; t < j; t++ {
				v -= w.at(i, t) * w.at(j, t)
			}
			w.set(i, j, v/d)
		}
	}
	for j := c0; j < c0+width; j++ {
		w.readSpan(e, w.colAddr(j, c0), (w.n-c0)*8)
		w.writeSpan(e, w.colAddr(j, c0), (w.n-c0)*8)
	}
	e.Compute(width * (w.n - c0) * (w.n - c0) / 2)
}

// updatePanel applies panel k's columns to panel j (right-looking cmod).
func (w *cholWork) updatePanel(e prog.Env, j, k int) {
	cj, wj := w.starts[j], w.widths[j]
	ck, wk := w.starts[k], w.widths[k]
	for c := cj; c < cj+wj; c++ {
		for t := ck; t < ck+wk; t++ {
			l := w.at(c, t)
			if l == 0 {
				continue
			}
			for i := c; i < w.n; i++ {
				w.set(i, c, w.at(i, c)-w.at(i, t)*l)
			}
		}
	}
	// References: read panel k's columns (shared, just written by the
	// factoring processor), read and write our target panel.
	for t := ck; t < ck+wk; t++ {
		w.readSpan(e, w.colAddr(t, cj), (w.n-cj)*8)
	}
	for c := cj; c < cj+wj; c++ {
		w.readSpan(e, w.colAddr(c, cj), (w.n-cj)*8)
		w.writeSpan(e, w.colAddr(c, cj), (w.n-cj)*8)
	}
	e.Compute(2 * wj * wk * (w.n - cj))
}

// Verify checks L L^T = A on sampled entries.
func (w *cholWork) Verify() error {
	maxErr := 0.0
	step := w.n / 16
	if step == 0 {
		step = 1
	}
	for i := 0; i < w.n; i += step {
		for j := 0; j <= i; j++ {
			var s float64
			for t := 0; t <= j; t++ {
				s += w.at(i, t) * w.at(j, t)
			}
			if d := math.Abs(s - w.orig[i*w.n+j]); d > maxErr {
				maxErr = d
			}
		}
	}
	if maxErr > 1e-6*float64(w.n) {
		return fmt.Errorf("cholesky: reconstruction error %g", maxErr)
	}
	return nil
}
