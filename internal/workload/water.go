package workload

import (
	"fmt"
	"math"
	"math/rand"

	"ccnuma/internal/machine"
	"ccnuma/internal/prog"
)

func init() {
	register("water-nsq", func(size SizeClass, nprocs int) Workload {
		n := 256
		switch size {
		case SizeTest:
			n = 32
		case SizeSmall:
			n = 128
		case SizeLarge:
			n = 384
		}
		return &waterWork{name: "water-nsq", n: n, steps: 2, nprocs: nprocs, nsq: true}
	})
	register("water-sp", func(size SizeClass, nprocs int) Workload {
		n := 512
		switch size {
		case SizeTest:
			n = 64
		case SizeSmall:
			n = 256
		case SizeLarge:
			n = 1024
		}
		return &waterWork{name: "water-sp", n: n, steps: 2, nprocs: nprocs, cells: 4}
	})
}

// molecule is a simplified water molecule: position, velocity, and a
// shared force accumulator (one cache line each for the read-mostly state
// and for the force line, as in the SPLASH-2 data layout).
type molecule struct {
	pos   [3]float64
	vel   [3]float64
	force [3]float64
}

// waterWork implements both Water variants of the paper's Table 5.
//
// water-nsq computes O(n^2/2) pairwise interactions: every processor reads
// every other molecule's state and accumulates force contributions into
// per-molecule shared accumulators guarded by per-molecule locks — the
// moderate, lock-heavy communication pattern of Water-Nsquared.
//
// water-sp sorts molecules into a 3-D grid of cells and computes
// interactions only between neighbouring cells; processors own contiguous
// cell blocks, so most interactions are node-local and the communication
// rate is the lowest of the suite, as in the paper.
type waterWork struct {
	spanner
	name   string
	n      int
	steps  int
	nprocs int
	nsq    bool
	cells  int // cells per dimension (water-sp)

	mols     []molecule
	cellOf   []int
	cellList [][]int
	molBase  uint64 // read-mostly molecule state, one line each
	frcBase  uint64 // shared force accumulators, one line each

	initialKE float64
	finalKE   float64
}

func (w *waterWork) Name() string { return w.name }

func (w *waterWork) Setup(m *machine.Machine) error {
	w.init(m)
	if w.n < w.nprocs {
		return fmt.Errorf("%s: %d molecules for %d procs", w.name, w.n, w.nprocs)
	}
	w.mols = make([]molecule, w.n)
	rng := rand.New(rand.NewSource(19 + w.seed))
	for i := range w.mols {
		for d := 0; d < 3; d++ {
			w.mols[i].pos[d] = rng.Float64() // unit box
			w.mols[i].vel[d] = (rng.Float64() - 0.5) * 0.01
		}
	}
	w.molBase = m.Space.Alloc(w.n * int(w.ls))
	w.frcBase = m.Space.Alloc(w.n * int(w.ls))
	if !w.nsq {
		w.cellOf = make([]int, w.n)
		w.cellList = make([][]int, w.cells*w.cells*w.cells)
		w.binMolecules()
	}
	w.initialKE = w.kinetic()
	return nil
}

func (w *waterWork) molAddr(i int) uint64 { return w.molBase + uint64(i)*w.ls }
func (w *waterWork) frcAddr(i int) uint64 { return w.frcBase + uint64(i)*w.ls }

func (w *waterWork) binMolecules() {
	for c := range w.cellList {
		w.cellList[c] = w.cellList[c][:0]
	}
	for i := range w.mols {
		c := 0
		for d := 0; d < 3; d++ {
			x := int(w.mols[i].pos[d] * float64(w.cells))
			if x >= w.cells {
				x = w.cells - 1
			}
			if x < 0 {
				x = 0
			}
			c = c*w.cells + x
		}
		w.cellOf[i] = c
		w.cellList[c] = append(w.cellList[c], i)
	}
}

// pairForce returns a Lennard-Jones-ish force between molecules i and j.
func (w *waterWork) pairForce(i, j int) [3]float64 {
	var dr [3]float64
	r2 := 0.01
	for d := 0; d < 3; d++ {
		dr[d] = w.mols[j].pos[d] - w.mols[i].pos[d]
		r2 += dr[d] * dr[d]
	}
	inv := 1.0 / r2
	f := inv*inv*inv - 0.5*inv*inv
	var out [3]float64
	for d := 0; d < 3; d++ {
		out[d] = f * dr[d] * 1e-4
	}
	return out
}

func (w *waterWork) Body(e prog.Env) {
	if w.nsq {
		w.bodyNsq(e)
	} else {
		w.bodySpatial(e)
	}
	if e.ID() == 0 {
		w.finalKE = w.kinetic()
	}
	e.Barrier()
}

func (w *waterWork) bodyNsq(e prog.Env) {
	me := e.ID()
	lo, hi := blockRange(w.n, w.nprocs, me)
	for s := 0; s < w.steps; s++ {
		// Local force accumulation over all pairs (i owned, any j > i).
		local := make([][3]float64, w.n)
		for i := lo; i < hi; i++ {
			e.Read(w.molAddr(i))
			for j := i + 1; j < w.n; j++ {
				f := w.pairForce(i, j)
				for d := 0; d < 3; d++ {
					local[i][d] += f[d]
					local[j][d] -= f[d]
				}
				e.Read(w.molAddr(j))
				e.Compute(100)
			}
		}
		// Publish contributions into the shared accumulators under
		// per-molecule locks (SPLASH-2 updates each molecule's force once
		// per processor per step).
		for j := 0; j < w.n; j++ {
			if local[j][0] == 0 && local[j][1] == 0 && local[j][2] == 0 {
				continue
			}
			e.Lock(j)
			for d := 0; d < 3; d++ {
				w.mols[j].force[d] += local[j][d]
			}
			e.Write(w.frcAddr(j))
			e.Compute(6)
			e.Unlock(j)
		}
		e.Barrier()
		// Integrate owned molecules (local).
		w.integrate(e, lo, hi)
		e.Barrier()
	}
}

func (w *waterWork) bodySpatial(e prog.Env) {
	me := e.ID()
	nc := w.cells * w.cells * w.cells
	cl, ch := blockRange(nc, w.nprocs, me)
	for s := 0; s < w.steps; s++ {
		// Interactions between owned cells and their neighbour cells.
		for c := cl; c < ch; c++ {
			cz := c % w.cells
			cy := (c / w.cells) % w.cells
			cx := c / (w.cells * w.cells)
			for dx := -1; dx <= 1; dx++ {
				for dy := -1; dy <= 1; dy++ {
					for dz := -1; dz <= 1; dz++ {
						nx, ny, nz := cx+dx, cy+dy, cz+dz
						if nx < 0 || ny < 0 || nz < 0 || nx >= w.cells || ny >= w.cells || nz >= w.cells {
							continue
						}
						nb := (nx*w.cells+ny)*w.cells + nz
						w.cellPair(e, c, nb)
					}
				}
			}
		}
		e.Barrier()
		// Integrate molecules in owned cells; rebinning is done by proc 0
		// after integration (cell lists are small).
		for c := cl; c < ch; c++ {
			for _, i := range w.cellList[c] {
				w.integrateOne(e, i)
			}
		}
		e.Barrier()
		if me == 0 {
			w.binMolecules()
			e.Compute(4 * w.n)
		}
		e.Barrier()
	}
}

// cellPair accumulates forces of cell c's molecules from neighbour cell nb.
func (w *waterWork) cellPair(e prog.Env, c, nb int) {
	for _, i := range w.cellList[c] {
		e.Read(w.molAddr(i))
		for _, j := range w.cellList[nb] {
			if j == i {
				continue
			}
			f := w.pairForce(i, j)
			for d := 0; d < 3; d++ {
				w.mols[i].force[d] += f[d]
			}
			e.Read(w.molAddr(j))
			e.Compute(100)
		}
		e.Write(w.frcAddr(i))
	}
}

func (w *waterWork) integrate(e prog.Env, lo, hi int) {
	for i := lo; i < hi; i++ {
		w.integrateOne(e, i)
	}
}

func (w *waterWork) integrateOne(e prog.Env, i int) {
	const dt = 0.005
	m := &w.mols[i]
	for d := 0; d < 3; d++ {
		m.vel[d] += m.force[d] * dt
		m.pos[d] += m.vel[d] * dt
		// Reflecting walls keep the box bounded.
		if m.pos[d] < 0 {
			m.pos[d], m.vel[d] = -m.pos[d], -m.vel[d]
		}
		if m.pos[d] > 1 {
			m.pos[d], m.vel[d] = 2-m.pos[d], -m.vel[d]
		}
		m.force[d] = 0
	}
	e.Read(w.frcAddr(i))
	e.Write(w.molAddr(i))
	e.Compute(18)
}

func (w *waterWork) kinetic() float64 {
	var ke float64
	for i := range w.mols {
		v := &w.mols[i].vel
		ke += v[0]*v[0] + v[1]*v[1] + v[2]*v[2]
	}
	return ke
}

// Verify checks the integration stayed finite and molecules remain in the
// box.
func (w *waterWork) Verify() error {
	if math.IsNaN(w.finalKE) || math.IsInf(w.finalKE, 0) {
		return fmt.Errorf("%s: non-finite kinetic energy", w.name)
	}
	if w.finalKE == w.initialKE {
		return fmt.Errorf("%s: molecules did not move", w.name)
	}
	for i := range w.mols {
		for d := 0; d < 3; d++ {
			p := w.mols[i].pos[d]
			if math.IsNaN(p) || p < -1e-9 || p > 1+1e-9 {
				return fmt.Errorf("%s: molecule %d left the box (%g)", w.name, i, p)
			}
		}
	}
	return nil
}
