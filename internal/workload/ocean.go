package workload

import (
	"fmt"
	"math"

	"ccnuma/internal/machine"
	"ccnuma/internal/prog"
)

func init() {
	register("ocean", func(size SizeClass, nprocs int) Workload {
		n := 258 // the paper's base 258x258 ocean
		switch size {
		case SizeTest:
			n = 34
		case SizeSmall:
			n = 130
		case SizeLarge:
			n = 514 // the paper's large 514x514 ocean
		}
		return &oceanWork{n: n, iters: 6, nprocs: nprocs}
	})
}

// oceanWork captures the communication behaviour of SPLASH-2 Ocean: a
// red-black Gauss-Seidel relaxation over an n x n grid partitioned into
// contiguous row blocks, with a convergence reduction each iteration. The
// stencil has very little computation per point and the partition
// boundaries (plus the round-robin page placement of the paper's default
// policy) generate the nearest-neighbour and false-sharing traffic that
// makes Ocean the paper's highest-RCCPI application.
type oceanWork struct {
	spanner
	n      int // grid side including boundary
	iters  int
	nprocs int

	grid []float64
	res  []float64 // per-proc partial residuals
	base uint64
	resB uint64

	residuals []float64 // per-iteration global residual (filled by proc 0)
}

func (w *oceanWork) Name() string { return "ocean" }

func (w *oceanWork) Setup(m *machine.Machine) error {
	if w.n < w.nprocs+2 {
		return fmt.Errorf("ocean: grid %d too small for %d procs", w.n, w.nprocs)
	}
	w.init(m)
	w.grid = make([]float64, w.n*w.n)
	w.res = make([]float64, w.nprocs*16) // padded to avoid Go-side confusion
	// Boundary conditions: hot left edge, cold elsewhere.
	for i := 0; i < w.n; i++ {
		w.grid[i*w.n] = 100.0
	}
	w.base = m.Space.Alloc(w.n * w.n * 8)
	w.resB = m.Space.Alloc(w.nprocs * 16 * 8)
	return nil
}

func (w *oceanWork) addr(i, j int) uint64 { return w.base + uint64((i*w.n+j)*8) }

func (w *oceanWork) Body(e prog.Env) {
	me := e.ID()
	lo, hi := blockRange(w.n-2, w.nprocs, me)
	lo++ // interior rows start at 1
	hi++
	ptsPerLine := int(w.ls) / 8

	for it := 0; it < w.iters; it++ {
		sum := 0.0
		for color := 0; color < 2; color++ {
			for i := lo; i < hi; i++ {
				// Line-granular sweep: each line of our row plus the
				// matching lines of the rows above and below.
				for j0 := 1; j0 < w.n-1; j0 += ptsPerLine {
					jEnd := min(j0+ptsPerLine, w.n-1)
					for j := j0; j < jEnd; j++ {
						if (i+j)%2 != color {
							continue
						}
						old := w.grid[i*w.n+j]
						v := 0.25 * (w.grid[(i-1)*w.n+j] + w.grid[(i+1)*w.n+j] +
							w.grid[i*w.n+j-1] + w.grid[i*w.n+j+1])
						w.grid[i*w.n+j] = v
						d := v - old
						sum += d * d
					}
					e.Read(w.addr(i-1, j0))
					e.Read(w.addr(i+1, j0))
					e.Read(w.addr(i, j0))
					e.Write(w.addr(i, j0))
					e.Compute(10 * (jEnd - j0) / 2)
				}
			}
			e.Barrier()
		}
		// Convergence reduction: publish partial residual, proc 0 sums.
		w.res[me*16] = sum
		e.Write(w.resB + uint64(me*16*8))
		e.Barrier()
		if me == 0 {
			total := 0.0
			for p := 0; p < w.nprocs; p++ {
				total += w.res[p*16]
				e.Read(w.resB + uint64(p*16*8))
			}
			e.Compute(2 * w.nprocs)
			w.residuals = append(w.residuals, total)
		}
		e.Barrier()
	}
}

// Verify checks that the relaxation is converging (residuals decrease) and
// the solution stays within the boundary-condition range.
func (w *oceanWork) Verify() error {
	if len(w.residuals) != w.iters {
		return fmt.Errorf("ocean: recorded %d residuals, want %d", len(w.residuals), w.iters)
	}
	if !(w.residuals[w.iters-1] < w.residuals[0]) {
		return fmt.Errorf("ocean: residual did not decrease: first=%g last=%g",
			w.residuals[0], w.residuals[w.iters-1])
	}
	for i, v := range w.grid {
		if math.IsNaN(v) || v < -1e-9 || v > 100.0+1e-9 {
			return fmt.Errorf("ocean: grid[%d]=%g outside [0,100]", i, v)
		}
	}
	return nil
}
