package workload

import (
	"testing"

	"ccnuma/internal/config"
	"ccnuma/internal/fault"
	"ccnuma/internal/interconnect"
	"ccnuma/internal/machine"
)

// TestChaosEarlyInterventionRace replays a fault schedule that once wedged
// the machine: a delayed owner-to-requester data forward let the home's
// next intervention overtake the grant, so the new owner answered
// InterventionMiss for a line whose data was still in flight and the home
// waited forever for a write-back. The run must recover end to end —
// kernel completes, result verifies, network drains.
func TestChaosEarlyInterventionRace(t *testing.T) {
	cfg, err := config.Base().WithArch("HWC")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Nodes = 4
	cfg.ProcsPerNode = 2
	cfg.SimLimit = 50_000_000_000
	cfg = cfg.WithRobustness()

	// Fault-free pilot on the same configuration sizes the schedule, the
	// same way ccchaos does, so the replayed coordinates stay inside the
	// run even if baseline timing shifts.
	pilot, err := machine.New(cfg, "radix")
	if err != nil {
		t.Fatal(err)
	}
	var msgs uint64
	pilot.Net.Fault = func(int, int, interface{}) interconnect.Decision {
		msgs++
		return interconnect.Decision{}
	}
	wp, err := NewSeeded("radix", SizeTest, pilot.NProcs(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := wp.Setup(pilot); err != nil {
		t.Fatal(err)
	}
	rp, err := pilot.Run(wp.Body)
	if err != nil {
		t.Fatal(err)
	}

	sch := fault.Generate(43, fault.Params{
		Events: 6, Horizon: rp.ExecTime, Messages: msgs,
		Nodes: cfg.Nodes, Engines: cfg.EngineCount(),
	})
	t.Logf("schedule: %s", sch)

	m, err := machine.New(cfg, "radix")
	if err != nil {
		t.Fatal(err)
	}
	m.InjectFaults(sch)
	w, err := NewSeeded("radix", SizeTest, m.NProcs(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Setup(m); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if p := recover(); p != nil {
			t.Fatalf("panic: %v\nsnapshot:\n%s", p, m.Snapshot())
		}
	}()
	if _, err := m.Run(w.Body); err != nil {
		t.Fatalf("run: %v\nsnapshot:\n%s", err, m.Snapshot())
	}
	if err := w.Verify(); err != nil {
		t.Fatalf("verification: %v", err)
	}
	if n := m.Net.InFlight(); n != 0 {
		t.Errorf("network did not drain: %d frames in flight", n)
	}
}
