package workload

import (
	"fmt"
	"math"
	"math/rand"

	"ccnuma/internal/machine"
	"ccnuma/internal/prog"
)

func init() {
	register("lu", func(size SizeClass, nprocs int) Workload {
		n, b := 256, 32
		switch size {
		case SizeTest:
			n, b = 64, 16
		case SizeSmall:
			n, b = 128, 16
		case SizeLarge:
			n, b = 384, 32
		}
		return &luWork{n: n, b: b, nprocs: nprocs}
	})
}

// luWork is the SPLASH-2 LU kernel: blocked dense LU factorization without
// pivoting of an n x n matrix with b x b blocks, 2D-scatter block
// ownership, and barriers separating the diagonal, perimeter, and interior
// phases of each step. Blocks are stored contiguously (the SPLASH-2
// "optimized" layout), so a block occupies whole cache lines and the
// communication is block-granular: the diagonal block and the perimeter
// blocks of step k are read by many processors right after their owners
// write them.
type luWork struct {
	spanner
	n, b   int
	nprocs int
	nb     int // blocks per dimension
	pr, pc int // processor grid

	a    []float64 // block-major storage
	orig []float64 // copy for verification
	base uint64
}

func (w *luWork) Name() string { return "lu" }

func (w *luWork) Setup(m *machine.Machine) error {
	w.init(m)
	if w.n%w.b != 0 {
		return fmt.Errorf("lu: n=%d not divisible by b=%d", w.n, w.b)
	}
	w.nb = w.n / w.b
	// Near-square processor grid.
	w.pr = 1
	for (w.pr*2) <= w.nprocs && w.nprocs%(w.pr*2) == 0 && w.pr*2 <= w.nb {
		w.pr *= 2
	}
	w.pc = w.nprocs / w.pr

	w.a = make([]float64, w.n*w.n)
	rng := rand.New(rand.NewSource(7 + w.seed))
	// Diagonally dominant matrix so factorization without pivoting is
	// stable.
	for i := 0; i < w.n; i++ {
		for j := 0; j < w.n; j++ {
			v := rng.Float64()
			if i == j {
				v += float64(w.n)
			}
			w.set(i, j, v)
		}
	}
	w.orig = append([]float64(nil), w.a...)
	w.base = m.Space.Alloc(w.n * w.n * 8)
	return nil
}

// idx maps (i, j) to the block-major element index.
func (w *luWork) idx(i, j int) int {
	bi, bj := i/w.b, j/w.b
	return (bi*w.nb+bj)*w.b*w.b + (i%w.b)*w.b + (j % w.b)
}

func (w *luWork) at(i, j int) float64     { return w.a[w.idx(i, j)] }
func (w *luWork) set(i, j int, v float64) { w.a[w.idx(i, j)] = v }

// blockAddr returns the simulated address of block (bi, bj).
func (w *luWork) blockAddr(bi, bj int) uint64 {
	return w.base + uint64((bi*w.nb+bj)*w.b*w.b*8)
}

func (w *luWork) owner(bi, bj int) int {
	return (bi%w.pr)*w.pc + (bj % w.pc)
}

func (w *luWork) blockBytes() int { return w.b * w.b * 8 }

// touchRead / touchWrite issue the line-granular references for a block
// access along with the arithmetic cost.
func (w *luWork) touchRead(e prog.Env, bi, bj int) {
	w.readSpan(e, w.blockAddr(bi, bj), w.blockBytes())
}

func (w *luWork) touchWrite(e prog.Env, bi, bj int) {
	w.writeSpan(e, w.blockAddr(bi, bj), w.blockBytes())
}

func (w *luWork) Body(e prog.Env) {
	me := e.ID()
	b := w.b
	for k := 0; k < w.nb; k++ {
		// Phase 1: factor the diagonal block.
		if w.owner(k, k) == me {
			kk := k * b
			for j := kk; j < kk+b; j++ {
				pivot := 1.0 / w.at(j, j)
				for i := j + 1; i < kk+b; i++ {
					w.set(i, j, w.at(i, j)*pivot)
					for c := j + 1; c < kk+b; c++ {
						w.set(i, c, w.at(i, c)-w.at(i, j)*w.at(j, c))
					}
				}
			}
			w.touchRead(e, k, k)
			w.touchWrite(e, k, k)
			e.Compute(2 * b * b * b / 3)
		}
		e.Barrier()
		// Phase 2: perimeter blocks.
		for j := k + 1; j < w.nb; j++ {
			if w.owner(k, j) == me {
				w.updatePerimeterRow(e, k, j)
			}
		}
		for i := k + 1; i < w.nb; i++ {
			if w.owner(i, k) == me {
				w.updatePerimeterCol(e, i, k)
			}
		}
		e.Barrier()
		// Phase 3: interior blocks.
		for i := k + 1; i < w.nb; i++ {
			for j := k + 1; j < w.nb; j++ {
				if w.owner(i, j) == me {
					w.updateInterior(e, i, j, k)
				}
			}
		}
		e.Barrier()
	}
}

// updatePerimeterRow: A(k,j) <- L(k,k)^-1 A(k,j) (forward solve).
func (w *luWork) updatePerimeterRow(e prog.Env, k, j int) {
	b := w.b
	kk, jj := k*b, j*b
	for r := kk; r < kk+b; r++ {
		for i := r + 1; i < kk+b; i++ {
			l := w.at(i, r)
			for c := jj; c < jj+b; c++ {
				w.set(i, c, w.at(i, c)-l*w.at(r, c))
			}
		}
	}
	w.touchRead(e, k, k)
	w.touchRead(e, k, j)
	w.touchWrite(e, k, j)
	e.Compute(b * b * b)
}

// updatePerimeterCol: A(i,k) <- A(i,k) U(k,k)^-1.
func (w *luWork) updatePerimeterCol(e prog.Env, i, k int) {
	b := w.b
	ii, kk := i*b, k*b
	for c := kk; c < kk+b; c++ {
		pivot := 1.0 / w.at(c, c)
		for r := ii; r < ii+b; r++ {
			w.set(r, c, w.at(r, c)*pivot)
			for c2 := c + 1; c2 < kk+b; c2++ {
				w.set(r, c2, w.at(r, c2)-w.at(r, c)*w.at(c, c2))
			}
		}
	}
	w.touchRead(e, k, k)
	w.touchRead(e, i, k)
	w.touchWrite(e, i, k)
	e.Compute(w.b * w.b * w.b)
}

// updateInterior: A(i,j) -= A(i,k) * A(k,j).
func (w *luWork) updateInterior(e prog.Env, i, j, k int) {
	b := w.b
	ii, jj, kk := i*b, j*b, k*b
	for r := 0; r < b; r++ {
		for m := 0; m < b; m++ {
			l := w.at(ii+r, kk+m)
			for c := 0; c < b; c++ {
				w.set(ii+r, jj+c, w.at(ii+r, jj+c)-l*w.at(kk+m, jj+c))
			}
		}
	}
	w.touchRead(e, i, k)
	w.touchRead(e, k, j)
	w.touchWrite(e, i, j)
	e.Compute(2 * b * b * b)
}

// Verify reconstructs A from the computed L and U factors and compares it
// against the original matrix.
func (w *luWork) Verify() error {
	n := w.n
	maxErr := 0.0
	// Sample rows to keep verification O(n^2 * samples).
	step := n / 16
	if step == 0 {
		step = 1
	}
	for i := 0; i < n; i += step {
		for j := 0; j < n; j++ {
			sum := 0.0
			kmax := min(i, j)
			for k := 0; k < kmax; k++ {
				sum += w.at(i, k) * w.at(k, j) // L(i,k)*U(k,j)
			}
			var v float64
			if i <= j {
				v = sum + w.at(i, j) // diagonal of L is 1
			} else {
				v = sum + w.at(i, j)*w.at(j, j)
			}
			if d := math.Abs(v - w.origAt(i, j)); d > maxErr {
				maxErr = d
			}
		}
	}
	if maxErr > 1e-6*float64(n) {
		return fmt.Errorf("lu: reconstruction error %g too large", maxErr)
	}
	return nil
}

func (w *luWork) origAt(i, j int) float64 { return w.orig[w.idx(i, j)] }
