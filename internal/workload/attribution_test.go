package workload

import (
	"testing"

	"ccnuma/internal/config"
	"ccnuma/internal/fault"
	"ccnuma/internal/interconnect"
	"ccnuma/internal/machine"
	"ccnuma/internal/sim"
)

// runAttributed runs one kernel with attribution on and returns the run.
// Machine.Run already self-checks the conservation invariant; failures
// surface as run errors.
func runAttributed(t *testing.T, cfg config.Config, app string) (*machine.Machine, sim.Time) {
	t.Helper()
	cfg.Attribution = true
	m, err := machine.New(cfg, app)
	if err != nil {
		t.Fatal(err)
	}
	w, err := New(app, SizeTest, m.NProcs())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Setup(m); err != nil {
		t.Fatal(err)
	}
	r, err := m.Run(w.Body)
	if err != nil {
		t.Fatalf("%s attributed run: %v", app, err)
	}
	if err := w.Verify(); err != nil {
		t.Fatalf("%s verification: %v", app, err)
	}
	a := r.Attribution
	if a == nil {
		t.Fatalf("%s: attributed run produced no Attribution stats", app)
	}
	if a.Completed == 0 {
		t.Fatalf("%s: no transactions completed under attribution", app)
	}
	if a.Violations != 0 {
		t.Fatalf("%s: %d conservation violations", app, a.Violations)
	}
	if int64(a.TotalCycles()) != a.EndToEnd.Sum {
		t.Fatalf("%s: stage cycles %d != end-to-end cycles %d over %d transactions",
			app, a.TotalCycles(), a.EndToEnd.Sum, a.Completed)
	}
	return m, r.ExecTime
}

// TestAttributionTimingInvisible checks that turning attribution on does not
// move a single cycle: the golden-pinned kernels must reproduce their exact
// execution times, because span checkpoints observe the schedule without
// touching it.
func TestAttributionTimingInvisible(t *testing.T) {
	cases := []struct {
		app  string
		arch string
		want int64
	}{
		{"fft", "HWC", 14804},
		{"fft", "2PPC", 21476},
	}
	for _, tc := range cases {
		cfg, err := config.Base().WithArch(tc.arch)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Nodes = 4
		cfg.ProcsPerNode = 2
		cfg.SimLimit = 2_000_000_000
		_, exec := runAttributed(t, cfg, tc.app)
		if int64(exec) != tc.want {
			t.Errorf("%s on %s with attribution: ExecTime = %d, want %d — span tracing perturbed the schedule",
				tc.app, tc.arch, exec, tc.want)
		}
	}
}

// TestAttributionNoLeak checks that span state is reclaimed across a full
// kernel run: every opened transaction is finished or abandoned by the time
// the machine quiesces.
func TestAttributionNoLeak(t *testing.T) {
	for _, app := range []string{"fft", "radix", "lu"} {
		cfg, err := config.Base().WithArch("HWC")
		if err != nil {
			t.Fatal(err)
		}
		cfg.Nodes = 4
		cfg.ProcsPerNode = 2
		cfg.SimLimit = 2_000_000_000
		m, _ := runAttributed(t, cfg, app)
		if n := m.Spans().OpenCount(); n != 0 {
			t.Errorf("%s: %d transaction spans still open after run end", app, n)
		}
	}
}

// TestAttributionChaosProperty is the property test over seeded chaos
// schedules: under drops, NACKs, duplicates, delays, and the retries they
// trigger, every recovered run's stage spans must still partition the
// observed end-to-end latencies with no gaps or overlaps. Each seed
// generates a different fault schedule from the same pilot sizing.
func TestAttributionChaosProperty(t *testing.T) {
	cfg, err := config.Base().WithArch("HWC")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Nodes = 4
	cfg.ProcsPerNode = 2
	cfg.SimLimit = 50_000_000_000
	cfg = cfg.WithRobustness()
	cfg.Attribution = true

	const app = "fft"
	pilot, err := machine.New(cfg, app)
	if err != nil {
		t.Fatal(err)
	}
	var msgs uint64
	pilot.Net.Fault = func(int, int, interface{}) interconnect.Decision {
		msgs++
		return interconnect.Decision{}
	}
	wp, err := NewSeeded(app, SizeTest, pilot.NProcs(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := wp.Setup(pilot); err != nil {
		t.Fatal(err)
	}
	rp, err := pilot.Run(wp.Body)
	if err != nil {
		t.Fatalf("pilot: %v", err)
	}

	params := fault.Params{
		Events: 8, Horizon: rp.ExecTime, Messages: msgs,
		Nodes: cfg.Nodes, Engines: cfg.EngineCount(),
	}
	for seed := int64(1); seed <= 12; seed++ {
		sch := fault.Generate(seed, params)
		m, err := machine.New(cfg, app)
		if err != nil {
			t.Fatal(err)
		}
		m.InjectFaults(sch)
		w, err := NewSeeded(app, SizeTest, m.NProcs(), 1)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Setup(m); err != nil {
			t.Fatal(err)
		}
		r, err := m.Run(w.Body)
		if err != nil {
			t.Fatalf("seed %d (%s): %v", seed, sch, err)
		}
		if err := w.Verify(); err != nil {
			t.Fatalf("seed %d verification: %v", seed, err)
		}
		a := r.Attribution
		if a == nil || a.Completed == 0 {
			t.Fatalf("seed %d: no attributed transactions", seed)
		}
		if a.Violations != 0 {
			t.Fatalf("seed %d: %d conservation violations under faults (%s)", seed, a.Violations, sch)
		}
		if int64(a.TotalCycles()) != a.EndToEnd.Sum {
			t.Fatalf("seed %d: stage cycles %d != end-to-end %d (%s)",
				seed, a.TotalCycles(), a.EndToEnd.Sum, sch)
		}
		if n := m.Spans().OpenCount(); n != 0 {
			t.Fatalf("seed %d: %d spans leaked open", seed, n)
		}
	}
}
