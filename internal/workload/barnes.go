package workload

import (
	"fmt"
	"math"
	"math/rand"

	"ccnuma/internal/machine"
	"ccnuma/internal/prog"
)

func init() {
	register("barnes", func(size SizeClass, nprocs int) Workload {
		n := 1024
		switch size {
		case SizeTest:
			n = 128
		case SizeSmall:
			n = 512
		case SizeLarge:
			n = 2048
		}
		return &barnesWork{n: n, steps: 2, theta: 0.6, nprocs: nprocs}
	})
}

// body is one particle.
type body struct {
	pos  [3]float64
	vel  [3]float64
	acc  [3]float64
	mass float64
}

// octNode is one octree cell.
type octNode struct {
	center [3]float64
	size   float64
	com    [3]float64 // center of mass
	mass   float64
	child  [8]int // node indices, -1 = empty
	body   int    // body index for leaves, -1 otherwise
	leaf   bool
}

// barnesWork is the hierarchical N-body kernel: an octree is rebuilt each
// timestep, centers of mass are computed bottom-up, and the force phase
// walks the tree per body with the theta opening criterion. Tree nodes are
// read-shared by every processor (each node padded to one cache line), so
// the communication is read-dominated and moderate, matching Barnes' low
// RCCPI in the paper.
type barnesWork struct {
	spanner
	n      int
	steps  int
	theta  float64
	nprocs int

	bodies []body
	nodes  []octNode

	bodyBase uint64
	nodeBase uint64
	nodeCap  int

	initialE float64
	finalE   float64
}

func (w *barnesWork) Name() string { return "barnes" }

func (w *barnesWork) Setup(m *machine.Machine) error {
	w.init(m)
	w.bodies = make([]body, w.n)
	rng := rand.New(rand.NewSource(17 + w.seed))
	for i := range w.bodies {
		b := &w.bodies[i]
		for d := 0; d < 3; d++ {
			b.pos[d] = rng.Float64()*2 - 1
			b.vel[d] = (rng.Float64()*2 - 1) * 0.01
		}
		b.mass = 1.0 / float64(w.n)
	}
	w.nodeCap = 4 * w.n
	w.nodes = make([]octNode, 0, w.nodeCap)
	// One line per body record and per tree node.
	w.bodyBase = m.Space.Alloc(w.n * int(w.ls))
	w.nodeBase = m.Space.Alloc(w.nodeCap * int(w.ls))
	w.initialE = w.energy()
	return nil
}

func (w *barnesWork) bodyAddr(i int) uint64 { return w.bodyBase + uint64(i)*w.ls }
func (w *barnesWork) nodeAddr(i int) uint64 { return w.nodeBase + uint64(i)*w.ls }

// buildTree reconstructs the octree (performed by processor 0, with its
// references simulated; SPLASH-2 builds the tree in parallel with locks —
// the serial build is a documented simplification that preserves the
// read-shared force-phase traffic).
func (w *barnesWork) buildTree(e prog.Env) {
	w.nodes = w.nodes[:0]
	root := w.newNode([3]float64{0, 0, 0}, 4.0)
	for i := range w.bodies {
		w.insert(root, i)
		e.Read(w.bodyAddr(i))
		e.Compute(40)
	}
	w.computeCOM(root)
	for i := range w.nodes {
		e.Write(w.nodeAddr(i))
		e.Compute(30)
	}
}

func (w *barnesWork) newNode(center [3]float64, size float64) int {
	n := octNode{center: center, size: size, body: -1}
	for i := range n.child {
		n.child[i] = -1
	}
	w.nodes = append(w.nodes, n)
	return len(w.nodes) - 1
}

func (w *barnesWork) insert(ni, bi int) {
	nd := &w.nodes[ni]
	if nd.leaf && nd.size < 1e-6 {
		// Coincident bodies: cells cannot subdivide further. Leave the
		// existing occupant; the lost mass is negligible for the traffic
		// pattern and the integration remains finite.
		return
	}
	if nd.leaf {
		// Split: push the existing body down.
		old := nd.body
		nd.leaf = false
		nd.body = -1
		w.pushDown(ni, old)
		w.pushDown(ni, bi)
		return
	}
	empty := true
	for _, c := range nd.child {
		if c >= 0 {
			empty = false
			break
		}
	}
	if empty && nd.mass == 0 && ni != 0 {
		nd.leaf = true
		nd.body = bi
		return
	}
	w.pushDown(ni, bi)
}

func (w *barnesWork) pushDown(ni, bi int) {
	nd := &w.nodes[ni]
	oct := 0
	var childCenter [3]float64
	for d := 0; d < 3; d++ {
		if w.bodies[bi].pos[d] >= nd.center[d] {
			oct |= 1 << d
			childCenter[d] = nd.center[d] + nd.size/4
		} else {
			childCenter[d] = nd.center[d] - nd.size/4
		}
	}
	if nd.child[oct] < 0 {
		ci := w.newNode(childCenter, nd.size/2)
		w.nodes[ni].child[oct] = ci // nd may be stale after append
		w.nodes[ci].leaf = true
		w.nodes[ci].body = bi
		return
	}
	w.insert(nd.child[oct], bi)
}

func (w *barnesWork) computeCOM(ni int) (float64, [3]float64) {
	nd := &w.nodes[ni]
	if nd.leaf {
		b := &w.bodies[nd.body]
		nd.mass = b.mass
		nd.com = b.pos
		return nd.mass, nd.com
	}
	var mass float64
	var com [3]float64
	for _, c := range nd.child {
		if c < 0 {
			continue
		}
		m, p := w.computeCOM(c)
		mass += m
		for d := 0; d < 3; d++ {
			com[d] += m * p[d]
		}
	}
	if mass > 0 {
		for d := 0; d < 3; d++ {
			com[d] /= mass
		}
	}
	nd.mass = mass
	nd.com = com
	return mass, com
}

// force walks the tree for one body, issuing a read per visited node.
func (w *barnesWork) force(e prog.Env, bi int) [3]float64 {
	const eps = 0.05
	var acc [3]float64
	var walk func(ni int)
	walk = func(ni int) {
		nd := &w.nodes[ni]
		e.Read(w.nodeAddr(ni))
		e.Compute(160)
		if nd.mass == 0 {
			return
		}
		var dr [3]float64
		dist2 := eps * eps
		for d := 0; d < 3; d++ {
			dr[d] = nd.com[d] - w.bodies[bi].pos[d]
			dist2 += dr[d] * dr[d]
		}
		dist := math.Sqrt(dist2)
		if nd.leaf || nd.size/dist < w.theta {
			if nd.leaf && nd.body == bi {
				return
			}
			f := nd.mass / (dist2 * dist)
			for d := 0; d < 3; d++ {
				acc[d] += f * dr[d]
			}
			return
		}
		for _, c := range nd.child {
			if c >= 0 {
				walk(c)
			}
		}
	}
	walk(0)
	return acc
}

func (w *barnesWork) Body(e prog.Env) {
	me := e.ID()
	lo, hi := blockRange(w.n, w.nprocs, me)
	const dt = 0.01
	for s := 0; s < w.steps; s++ {
		if me == 0 {
			w.buildTree(e)
		}
		e.Barrier()
		// Force phase: read-shared tree walk per owned body.
		for i := lo; i < hi; i++ {
			w.bodies[i].acc = w.force(e, i)
			e.Read(w.bodyAddr(i))
		}
		e.Barrier()
		// Update phase: local position/velocity integration.
		for i := lo; i < hi; i++ {
			b := &w.bodies[i]
			for d := 0; d < 3; d++ {
				b.vel[d] += b.acc[d] * dt
				b.pos[d] += b.vel[d] * dt
				// Keep bodies inside the root cell.
				if b.pos[d] > 1.9 {
					b.pos[d] = 1.9
				}
				if b.pos[d] < -1.9 {
					b.pos[d] = -1.9
				}
			}
			e.Write(w.bodyAddr(i))
			e.Compute(40)
		}
		e.Barrier()
	}
	if me == 0 {
		w.finalE = w.energy()
	}
	e.Barrier()
}

// energy returns the system's kinetic energy (a cheap sanity metric).
func (w *barnesWork) energy() float64 {
	var ke float64
	for i := range w.bodies {
		b := &w.bodies[i]
		v2 := b.vel[0]*b.vel[0] + b.vel[1]*b.vel[1] + b.vel[2]*b.vel[2]
		ke += 0.5 * b.mass * v2
	}
	return ke
}

// Verify checks the integration produced finite motion.
func (w *barnesWork) Verify() error {
	if math.IsNaN(w.finalE) || math.IsInf(w.finalE, 0) {
		return fmt.Errorf("barnes: non-finite final energy")
	}
	if w.finalE == w.initialE {
		return fmt.Errorf("barnes: bodies did not move (energy unchanged at %g)", w.finalE)
	}
	for i := range w.bodies {
		for d := 0; d < 3; d++ {
			if math.IsNaN(w.bodies[i].pos[d]) {
				return fmt.Errorf("barnes: body %d has NaN position", i)
			}
		}
	}
	return nil
}
