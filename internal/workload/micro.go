package workload

import (
	"ccnuma/internal/machine"
	"ccnuma/internal/prog"
)

func init() {
	register("micro", func(size SizeClass, nprocs int) Workload {
		iters := 400
		switch size {
		case SizeTest:
			iters = 50
		case SizeSmall:
			iters = 150
		case SizeLarge:
			iters = 1200
		}
		return &microWork{iters: iters, sharePct: 50, computePer: 30, nprocs: nprocs}
	})
}

// microWork is a synthetic workload with a directly tunable communication
// rate, used to sweep RCCPI for the Figure 11/12 reproductions (the
// paper's methodology: calibrate the penalty-vs-RCCPI curve with simple
// applications and use it to predict larger ones). Each iteration touches
// either a migratory shared line (read-modify-write that ping-pongs
// between nodes) or a node-local private line, in a deterministic
// interleave set by sharePct, followed by computePer cycles of local work.
type microWork struct {
	spanner
	iters      int
	sharePct   int // percentage of iterations touching shared lines
	computePer int
	nprocs     int

	sharedLines int
	sharedBase  uint64
	privBase    []uint64

	done []bool
}

// NewMicro builds a micro workload with explicit knobs (used by the
// experiment harness for controlled RCCPI sweeps).
func NewMicro(iters, sharePct, computePer, nprocs int) Workload {
	return &microWork{iters: iters, sharePct: sharePct, computePer: computePer, nprocs: nprocs}
}

func (w *microWork) Name() string { return "micro" }

func (w *microWork) Setup(m *machine.Machine) error {
	w.init(m)
	w.sharedLines = 64
	w.sharedBase = m.Space.Alloc(w.sharedLines * int(w.ls))
	w.privBase = make([]uint64, w.nprocs)
	for p := range w.privBase {
		node := p * m.Cfg.Nodes / w.nprocs
		w.privBase[p] = m.Space.AllocOnNode(64*int(w.ls), node)
	}
	w.done = make([]bool, w.nprocs)
	return nil
}

func (w *microWork) Body(e prog.Env) {
	me := e.ID()
	for i := 0; i < w.iters; i++ {
		if (i*100/w.iters+me*37)%100 < w.sharePct {
			// Shared access: mostly reads of lines other processors write
			// (producer/consumer), with every third access a migratory
			// read-modify-write — approximating the read-dominated sharing
			// mix of the SPLASH-2 applications.
			line := w.sharedBase + uint64(((i*13+me*7)%w.sharedLines))*w.ls
			e.Read(line)
			if i%3 == 0 {
				e.Write(line)
			}
		} else {
			line := w.privBase[me] + uint64((i%64))*w.ls
			e.Read(line)
			e.Write(line)
		}
		e.Compute(w.computePer)
	}
	w.done[me] = true
	e.Barrier()
}

// Verify checks every processor completed its loop.
func (w *microWork) Verify() error {
	for p, d := range w.done {
		if !d {
			return errNotDone(p)
		}
	}
	return nil
}

type errNotDone int

func (e errNotDone) Error() string { return "micro: processor did not finish" }
