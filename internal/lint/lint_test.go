package lint

import (
	"strings"
	"testing"
)

// loadFixture type-checks the deliberately broken fixture package.
func loadFixture(t *testing.T) []*Package {
	t.Helper()
	pkgs, err := Load(".", "./testdata/src/badswitch")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("expected 1 fixture package, got %d", len(pkgs))
	}
	return pkgs
}

// TestFixtureFindings pins the complete set of diagnostics produced for
// the fixture, including that the justified suppression silences its
// switch and the reasonless directives are themselves flagged.
func TestFixtureFindings(t *testing.T) {
	findings := Check(loadFixture(t))
	byCheck := map[string][]Finding{}
	for _, f := range findings {
		byCheck[f.Check] = append(byCheck[f.Check], f)
	}

	swEnum := byCheck["switch-enum"]
	if len(swEnum) != 2 {
		t.Errorf("switch-enum findings = %d, want 2 (NonExhaustive + SilentDefault): %v", len(swEnum), swEnum)
	}
	foundMissing, foundDefault := false, false
	for _, f := range swEnum {
		if strings.Contains(f.Message, "protocol.MsgType") && strings.Contains(f.Message, "silently ignores") {
			foundMissing = true
		}
		if strings.Contains(f.Message, "protocol.Handler") && strings.Contains(f.Message, "must panic") {
			foundDefault = true
		}
	}
	if !foundMissing {
		t.Error("non-exhaustive MsgType switch was not flagged")
	}
	if !foundDefault {
		t.Error("silent Handler default was not flagged")
	}

	if n := len(byCheck["sched-noop"]); n != 1 {
		t.Errorf("sched-noop findings = %d, want 1", n)
	}
	if n := len(byCheck["nolint-reason"]); n != 1 {
		t.Errorf("nolint-reason findings = %d, want 1", n)
	}
	if n := len(byCheck["ignore-reason"]); n != 1 {
		t.Errorf("ignore-reason findings = %d, want 1", n)
	}
	if n := len(byCheck["ignore-unknown"]); n != 1 {
		t.Errorf("ignore-unknown findings = %d, want 1", n)
	} else if !strings.Contains(byCheck["ignore-unknown"][0].Message, "switchenum") {
		t.Errorf("ignore-unknown finding does not name the typo: %s", byCheck["ignore-unknown"][0])
	}

	// Exactly the findings above and nothing else — in particular the
	// justified suppression in Suppressed must not surface.
	total := len(swEnum) + len(byCheck["sched-noop"]) + len(byCheck["nolint-reason"]) +
		len(byCheck["ignore-reason"]) + len(byCheck["ignore-unknown"])
	if total != len(findings) {
		t.Errorf("unexpected extra findings: %v", findings)
	}
}

// TestRangeMapCheck pins the rangemap analysis on its fixture: the two
// order-dependent map iterations are flagged, and the sanctioned
// collect/count/element-write/delete shapes stay silent.
func TestRangeMapCheck(t *testing.T) {
	pkgs, err := Load(".", "./testdata/src/badrangemap")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	var got []Finding
	for _, f := range Check(pkgs) {
		if f.Check != "rangemap" {
			t.Errorf("unexpected non-rangemap finding: %s", f)
			continue
		}
		got = append(got, f)
	}
	if len(got) != 2 {
		t.Fatalf("rangemap findings = %d, want 2: %v", len(got), got)
	}
	// The two flagged loops are DrainQueues (line 13) and PickVictim
	// (line 25); the silent shapes below them must produce nothing.
	for i, line := range []string{":13:", ":25:"} {
		if !strings.Contains(got[i].Pos, line) {
			t.Errorf("finding %d at %s, want line %s", i, got[i].Pos, line)
		}
	}
}

// TestRepoIsClean runs the full analyzer suite over the entire module and
// requires zero findings — the same gate make lint enforces in CI.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	pkgs, err := Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages; expected the whole module", len(pkgs))
	}
	for _, f := range Check(pkgs) {
		t.Errorf("finding: %s", f.String())
	}
}

// TestSuppressionRequiresReason covers the suppression matcher directly.
func TestSuppressionRequiresReason(t *testing.T) {
	set := &suppressionSet{byLoc: map[string][]*suppression{}}
	s := &suppression{file: "f.go", line: 10, check: "switch-enum"}
	set.byLoc[locKey("f.go", 10)] = []*suppression{s}
	f := Finding{Pos: "f.go:10:3", Check: "switch-enum"}
	if set.covers(f) {
		t.Error("reasonless suppression must not cover a finding")
	}
	s.reason = "justified"
	if !set.covers(f) {
		t.Error("complete suppression should cover the finding")
	}
	if set.covers(Finding{Pos: "f.go:11:1", Check: "switch-enum"}) {
		t.Error("suppression leaked to an unrelated line")
	}
}

// TestConfigLiteralCheck pins the config-literal analysis on its fixture:
// every locally pinned retry/timeout/backoff number is flagged, and the
// config-derived, non-numeric, and unrelated declarations stay silent.
func TestConfigLiteralCheck(t *testing.T) {
	pkgs, err := Load(".", "./testdata/src/badretry")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	findings := Check(pkgs)
	want := []string{"retryBudget", "nackDelay", "requestTimeout", "backoffMax", "localNackWindow"}
	if len(findings) != len(want) {
		t.Errorf("findings = %d, want %d: %v", len(findings), len(want), findings)
	}
	for _, name := range want {
		found := false
		for _, f := range findings {
			if f.Check == "config-literal" && strings.Contains(f.Message, name) {
				found = true
			}
		}
		if !found {
			t.Errorf("pinned value %s was not flagged: %v", name, findings)
		}
	}
	for _, f := range findings {
		for _, silent := range []string{"cfgRetry", "retryNote", "lineSize"} {
			if strings.Contains(f.Message, silent) {
				t.Errorf("allowed declaration %s was flagged: %s", silent, f)
			}
		}
	}
}

// TestConfigSchemaCheck pins the config-schema analysis on its fixture:
// untagged exported fields are flagged at the top level, through the `-`
// exclusion, and transitively through nested struct fields, while tagged,
// unexported, and unreachable declarations stay silent.
func TestConfigSchemaCheck(t *testing.T) {
	pkgs, err := Load(".", "./testdata/src/badconfig")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	var got []Finding
	for _, f := range Check(pkgs) {
		if f.Check == "config-schema" {
			got = append(got, f)
		}
	}
	want := []string{"Config.Engines", "Config.Name", "Timing.HopCost"}
	if len(got) != len(want) {
		t.Errorf("config-schema findings = %d, want %d: %v", len(got), len(want), got)
	}
	for _, name := range want {
		found := false
		for _, f := range got {
			if strings.Contains(f.Message, name) {
				found = true
			}
		}
		if !found {
			t.Errorf("untagged field %s was not flagged: %v", name, got)
		}
	}
	for _, f := range got {
		for _, silent := range []string{"Config.Nodes", "Config.Net", "Timing.Latency", "Ignored", "hidden"} {
			if strings.Contains(f.Message, silent) {
				t.Errorf("allowed field %s was flagged: %s", silent, f)
			}
		}
	}
}

// TestNoGoroutineCheck pins the goroutine ban on its fixture: the go
// statement in badgo must be flagged, and the sanctioned packages
// (internal/runner and the cpu/pram workload handoff) must stay exempt.
func TestNoGoroutineCheck(t *testing.T) {
	pkgs, err := Load(".", "./testdata/src/badgo")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	var got []Finding
	for _, f := range Check(pkgs) {
		if f.Check == "no-goroutine" {
			got = append(got, f)
		}
	}
	if len(got) != 1 {
		t.Fatalf("no-goroutine findings = %d, want 1: %v", len(got), got)
	}
	if !strings.Contains(got[0].Pos, "badgo.go") {
		t.Errorf("finding anchored at %s, want badgo.go", got[0].Pos)
	}
	for _, path := range []string{"ccnuma/internal/runner", "ccnuma/internal/cpu", "ccnuma/internal/pram"} {
		if !goroutineAllowed[path] {
			t.Errorf("%s missing from the goroutine allowlist", path)
		}
	}
}

// TestSpanPairsCheck pins the span-pair analysis on its fixture: the
// unpaired SpanBegin is flagged, while paired, end-only, and non-constant
// stage calls stay silent.
func TestSpanPairsCheck(t *testing.T) {
	pkgs, err := Load(".", "./testdata/src/badspan")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	var got []Finding
	for _, f := range Check(pkgs) {
		if f.Check == "span-pair" {
			got = append(got, f)
		}
	}
	if len(got) != 1 {
		t.Fatalf("span-pair findings = %d, want 1: %v", len(got), got)
	}
	if !strings.Contains(got[0].Message, "StageStall") {
		t.Errorf("finding names %q, want StageStall", got[0].Message)
	}
	for _, silent := range []string{"StageBackoff", "StageMem"} {
		if strings.Contains(got[0].Message, silent) {
			t.Errorf("allowed stage %s was flagged: %s", silent, got[0])
		}
	}
}
