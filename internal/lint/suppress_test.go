package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseSource builds the minimal Package (Fset + Files only) that the
// suppression collector and hygiene checker need.
func parseSource(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "s.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return &Package{ImportPath: "tmp", Dir: ".", Fset: fset, Files: []*ast.File{f}}
}

// TestCollectSuppressions pins the directive grammar: check and reason
// split off the directive, registration on both the directive's line and
// the line below, and tolerance of malformed variants (collected so the
// hygiene pass can flag them, never covering anything).
func TestCollectSuppressions(t *testing.T) {
	pkg := parseSource(t, `package tmp

//cclint:ignore rangemap iteration feeds a sorted set downstream
var A int

//cclint:ignore switch-enum
var B int

//cclint:ignore
var C int
`)
	set := collectSuppressions(pkg)
	if len(set.all) != 3 {
		t.Fatalf("collected %d suppressions, want 3", len(set.all))
	}
	full := set.all[0]
	if full.check != "rangemap" || full.reason != "iteration feeds a sorted set downstream" {
		t.Errorf("parsed suppression = %+v", full)
	}
	// Registered on its own line and the next one (the flagged statement).
	for _, line := range []int{3, 4} {
		if len(set.byLoc[locKey("s.go", line)]) == 0 {
			t.Errorf("suppression not registered on line %d", line)
		}
	}
	if reasonless := set.all[1]; reasonless.check != "switch-enum" || reasonless.reason != "" {
		t.Errorf("reasonless suppression = %+v", reasonless)
	}
	if bare := set.all[2]; bare.check != "" || bare.reason != "" {
		t.Errorf("bare suppression = %+v", bare)
	}

	// Only the complete directive covers, and only its own check name.
	if !set.covers(Finding{Pos: "s.go:4:1", Check: "rangemap"}) {
		t.Error("complete directive does not cover its line")
	}
	if set.covers(Finding{Pos: "s.go:4:1", Check: "sim-time"}) {
		t.Error("directive covered a different check")
	}
	if set.covers(Finding{Pos: "s.go:7:1", Check: "switch-enum"}) {
		t.Error("reasonless directive covered a finding")
	}
	if set.covers(Finding{Pos: "s.go:10:1", Check: "rangemap"}) {
		t.Error("bare directive covered a finding")
	}
}

// TestCommentHygieneFindings pins the hygiene pass over every malformed
// shape at once: reasonless and bare cclint directives, unknown check
// names, and //nolint without an explanation — while the complete
// directive and the explained nolint stay silent.
func TestCommentHygieneFindings(t *testing.T) {
	pkg := parseSource(t, `package tmp

//cclint:ignore rangemap justified and spelled correctly
var A int

//cclint:ignore switch-enum
var B int

//cclint:ignore
var C int

//cclint:ignore range-map typo of rangemap
var D int

var E int //nolint

var F int //nolint:gocritic

var G int //nolint:gocritic // shadow rule misfires on the engine idiom
`)
	set := collectSuppressions(pkg)
	findings := checkCommentHygiene(pkg, set)
	byCheck := map[string]int{}
	for _, f := range findings {
		byCheck[f.Check]++
	}
	if byCheck["ignore-reason"] != 2 {
		t.Errorf("ignore-reason findings = %d, want 2 (reasonless + bare): %v", byCheck["ignore-reason"], findings)
	}
	if byCheck["ignore-unknown"] != 1 {
		t.Errorf("ignore-unknown findings = %d, want 1: %v", byCheck["ignore-unknown"], findings)
	}
	if byCheck["nolint-reason"] != 2 {
		t.Errorf("nolint-reason findings = %d, want 2 (bare + unexplained): %v", byCheck["nolint-reason"], findings)
	}
	if total := byCheck["ignore-reason"] + byCheck["ignore-unknown"] + byCheck["nolint-reason"]; total != len(findings) {
		t.Errorf("unexpected extra findings: %v", findings)
	}
	for _, f := range findings {
		if f.Check == "ignore-unknown" && !strings.Contains(f.Message, "range-map") {
			t.Errorf("ignore-unknown does not name the bad check: %s", f)
		}
	}
}

// TestKnownChecksComplete walks every analyzer-emitted check name used in
// this package's tests and requires it to be in the suppression
// vocabulary, so a newly added analyzer cannot be un-suppressable by
// omission.
func TestKnownChecksComplete(t *testing.T) {
	for _, name := range []string{
		"switch-enum", "sim-time", "sim-rand", "sched-noop", "enum-string",
		"config-literal", "config-schema", "no-goroutine", "span-pair",
		"rangemap", "model-stale",
	} {
		if !knownChecks[name] {
			t.Errorf("check %q missing from knownChecks", name)
		}
	}
}
