package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"reflect"
	"regexp"
	"sort"
	"strings"
)

// Finding is one lint diagnostic.
type Finding struct {
	Pos     string `json:"pos"` // file:line:col
	Check   string `json:"check"`
	Message string `json:"message"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Check, f.Message)
}

// enumTargets lists the protocol-state enums whose switches must be
// exhaustive or fail loudly, keyed by defining package import path.
var enumTargets = map[string][]string{
	"ccnuma/internal/protocol":  {"MsgType", "Handler", "StallKind"},
	"ccnuma/internal/cache":     {"State"},
	"ccnuma/internal/directory": {"State"},
	"ccnuma/internal/smpbus":    {"Kind", "Status", "SnoopResult"},
}

// simPackages are the simulated-time packages where wall-clock time and
// global randomness are forbidden (they would make runs irreproducible).
var simPackages = map[string]bool{
	"ccnuma/internal/sim":          true,
	"ccnuma/internal/smpbus":       true,
	"ccnuma/internal/core":         true,
	"ccnuma/internal/cpu":          true,
	"ccnuma/internal/directory":    true,
	"ccnuma/internal/interconnect": true,
	"ccnuma/internal/fault":        true,
	"ccnuma/internal/machine":      true,
	"ccnuma/internal/protocol":     true,
	"ccnuma/internal/memaddr":      true,
	"ccnuma/internal/verify":       true,
}

// retryPackages are the recovery-path packages whose retry/timeout/backoff
// tuning must come from internal/config knobs: a numeric constant pinned
// locally cannot be swept, recorded in run artifacts, or turned off for the
// cycle-identical base configuration. The testdata entry is the lint
// suite's own fixture (go tooling never loads testdata via ./...).
var retryPackages = map[string]bool{
	"ccnuma/internal/core":                       true,
	"ccnuma/internal/cpu":                        true,
	"ccnuma/internal/interconnect":               true,
	"ccnuma/internal/lint/testdata/src/badretry": true,
}

// retryNamePat matches declarations that name recovery tuning values.
var retryNamePat = regexp.MustCompile(`(?i)retry|timeout|backoff|nack`)

// rangeMapPackages are the simulation-affecting packages where iterating
// a map with order-dependent effects is forbidden: Go randomizes map
// iteration order, so any such loop makes runs irreproducible (the same
// class of bug as wall-clock reads, but quieter — it only shows up as
// diverging event orders). Loops whose bodies are order-insensitive
// (key collection for sorting, deletes, counting) are allowed. The
// testdata entry is the lint suite's own fixture.
var rangeMapPackages = map[string]bool{
	"ccnuma/internal/sim":                           true,
	"ccnuma/internal/smpbus":                        true,
	"ccnuma/internal/core":                          true,
	"ccnuma/internal/cpu":                           true,
	"ccnuma/internal/directory":                     true,
	"ccnuma/internal/interconnect":                  true,
	"ccnuma/internal/protocol":                      true,
	"ccnuma/internal/stats":                         true,
	"ccnuma/internal/lint/testdata/src/badrangemap": true,
}

// configSchemaPackages are the packages whose Config struct feeds the
// ccnuma-scenario/v1 schema: every exported field must carry a json tag,
// or a knob silently becomes unrepresentable in scenario files and
// invisible to `ccsim -replay`. The testdata entry is the lint suite's own
// fixture.
var configSchemaPackages = map[string]bool{
	"ccnuma/internal/config":                      true,
	"ccnuma/internal/lint/testdata/src/badconfig": true,
}

// goroutineAllowed lists the only packages that may contain a go
// statement: the worker pool itself (the single sanctioned home of
// concurrency), the workload-handoff shims, where each compute
// processor runs its program body on a goroutine that yields control back
// to the engine synchronously, and the shard scheduler, whose barrier
// protocol carries its own determinism proof (serial (time, seq) order is
// reproduced exactly; see DESIGN.md §16). Everywhere else — model code,
// experiment drivers, tools — a go statement breaks the determinism
// argument: results must be committed on one goroutine in a fixed order.
var goroutineAllowed = map[string]bool{
	"ccnuma/internal/runner": true,
	"ccnuma/internal/cpu":    true, // workload handoff: Proc runs program bodies
	"ccnuma/internal/pram":   true, // workload handoff: PRAM reference driver
	"ccnuma/internal/serve":  true, // host-side daemon: HTTP serving + sweep resume
	"ccnuma/internal/sim":    true, // shard scheduler: barrier-synchronized workers
}

// bannedTimeFuncs are the wall-clock entry points of package time.
var bannedTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTicker": true, "NewTimer": true,
	"AfterFunc": true,
}

// Check runs every analysis over the loaded packages and returns the
// surviving findings (suppressions with a reason are honored; suppressions
// without one become findings themselves).
func Check(pkgs []*Package) []Finding {
	var out []Finding
	for _, pkg := range pkgs {
		sup := collectSuppressions(pkg)
		var raw []Finding
		raw = append(raw, checkEnumSwitches(pkg)...)
		raw = append(raw, checkSimDeterminism(pkg)...)
		raw = append(raw, checkSchedNoop(pkg)...)
		raw = append(raw, checkEnumStrings(pkg)...)
		raw = append(raw, checkConfigLiterals(pkg)...)
		raw = append(raw, checkConfigSchema(pkg)...)
		raw = append(raw, checkNoGoroutines(pkg)...)
		raw = append(raw, checkSpanPairs(pkg)...)
		raw = append(raw, checkRangeMaps(pkg)...)
		for _, f := range raw {
			if !sup.covers(f) {
				out = append(out, f)
			}
		}
		out = append(out, checkCommentHygiene(pkg, sup)...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos != out[j].Pos {
			return out[i].Pos < out[j].Pos
		}
		return out[i].Check < out[j].Check
	})
	return out
}

func (p *Package) finding(pos token.Pos, check, format string, args ...interface{}) Finding {
	return Finding{
		Pos:     p.Fset.Position(pos).String(),
		Check:   check,
		Message: fmt.Sprintf(format, args...),
	}
}

// targetEnum resolves a type to (named enum type, true) when it is one of
// the lint-target enums.
func targetEnum(t types.Type) (*types.Named, bool) {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return nil, false
	}
	for _, name := range enumTargets[named.Obj().Pkg().Path()] {
		if named.Obj().Name() == name {
			return named, true
		}
	}
	return nil, false
}

// enumMembers returns the constants of the enum declared in its defining
// package, keyed by exact constant value. Unexported members are included
// only when the switch lives in the defining package (other packages
// cannot name them). Members sharing a value collapse to one entry.
func enumMembers(named *types.Named, fromPkg *types.Package) map[string][]string {
	defPkg := named.Obj().Pkg()
	members := map[string][]string{}
	scope := defPkg.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) {
			continue
		}
		if !c.Exported() && defPkg != fromPkg {
			continue
		}
		key := c.Val().ExactString()
		members[key] = append(members[key], c.Name())
	}
	return members
}

// checkEnumSwitches enforces the exhaustiveness rule: every switch over a
// lint-target enum either covers all members or has a default that panics.
// String methods are the one shape where a returning default is legal (it
// is the formatter's fallback for corrupt values), but they still may not
// silently omit members without a default.
func checkEnumSwitches(pkg *Package) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		// Ranges of String methods: their default clauses may return a
		// formatted fallback instead of panicking.
		type posRange struct{ lo, hi token.Pos }
		var stringFns []posRange
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Name.Name == "String" && fd.Body != nil {
				stringFns = append(stringFns, posRange{fd.Body.Lbrace, fd.Body.Rbrace})
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			node, ok := n.(*ast.SwitchStmt)
			if !ok || node.Tag == nil {
				return true
			}
			tv, ok := pkg.Info.Types[node.Tag]
			if !ok {
				return true
			}
			named, ok := targetEnum(tv.Type)
			if !ok {
				return true
			}
			inString := false
			for _, r := range stringFns {
				if node.Switch > r.lo && node.Switch < r.hi {
					inString = true
				}
			}
			out = append(out, auditEnumSwitch(pkg, node, named, inString)...)
			return true
		})
	}
	return out
}

// auditEnumSwitch inspects one switch over a target enum.
func auditEnumSwitch(pkg *Package, sw *ast.SwitchStmt, named *types.Named, inString bool) []Finding {
	members := enumMembers(named, pkg.Types)
	covered := map[string]bool{}
	var defaultClause *ast.CaseClause
	for _, stmt := range sw.Body.List {
		cc := stmt.(*ast.CaseClause)
		if cc.List == nil {
			defaultClause = cc
			continue
		}
		for _, expr := range cc.List {
			tv, ok := pkg.Info.Types[expr]
			if !ok || tv.Value == nil {
				// Non-constant case (e.g. a variable): treat the switch as
				// dynamic and give up on coverage, requiring a default.
				continue
			}
			covered[tv.Value.ExactString()] = true
		}
	}
	var missing []string
	for val, names := range members {
		if !covered[val] {
			missing = append(missing, names[0])
		}
	}
	sort.Strings(missing)
	enum := named.Obj().Pkg().Name() + "." + named.Obj().Name()
	var out []Finding
	switch {
	case defaultClause == nil && len(missing) > 0:
		out = append(out, pkg.finding(sw.Switch, "switch-enum",
			"switch over %s silently ignores %s; enumerate them or add a panicking default",
			enum, strings.Join(missing, ", ")))
	case defaultClause != nil && !inString && !bodyPanics(defaultClause.Body):
		out = append(out, pkg.finding(defaultClause.Case, "switch-enum",
			"default clause of a %s switch must panic (silent fallthroughs hide unhandled protocol states)",
			enum))
	}
	return out
}

// bodyPanics reports whether the statement list (recursively) contains a
// call to the builtin panic.
func bodyPanics(stmts []ast.Stmt) bool {
	found := false
	for _, s := range stmts {
		ast.Inspect(s, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
					found = true
				}
			}
			return !found
		})
	}
	return found
}

// checkSimDeterminism flags wall-clock and global-randomness use inside
// simulated-time packages.
func checkSimDeterminism(pkg *Package) []Finding {
	if !simPackages[pkg.ImportPath] {
		return nil
	}
	var out []Finding
	for ident, obj := range pkg.Info.Uses {
		fn, ok := obj.(*types.Func)
		if !ok || fn.Pkg() == nil {
			continue
		}
		switch fn.Pkg().Path() {
		case "time":
			if bannedTimeFuncs[fn.Name()] {
				out = append(out, pkg.finding(ident.Pos(), "sim-time",
					"time.%s reads the wall clock; simulated-time code must use sim.Engine time", fn.Name()))
			}
		case "math/rand", "math/rand/v2":
			if fn.Name() != "New" && fn.Name() != "NewSource" && fn.Name() != "NewPCG" &&
				fn.Type().(*types.Signature).Recv() == nil {
				out = append(out, pkg.finding(ident.Pos(), "sim-rand",
					"rand.%s uses the global, non-reproducible source; construct a seeded *rand.Rand", fn.Name()))
			}
		}
	}
	return out
}

// checkSchedNoop flags closures handed to the event engine that can never
// advance the simulation: a callback containing no call, send, or go
// statement burns an event without enqueuing work.
func checkSchedNoop(pkg *Package) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || (sel.Sel.Name != "At" && sel.Sel.Name != "After") {
				return true
			}
			selection, ok := pkg.Info.Selections[sel]
			if !ok {
				return true
			}
			recv := selection.Recv()
			if ptr, isPtr := recv.(*types.Pointer); isPtr {
				recv = ptr.Elem()
			}
			named, isNamed := recv.(*types.Named)
			if !isNamed || named.Obj().Pkg() == nil ||
				named.Obj().Pkg().Path() != "ccnuma/internal/sim" || named.Obj().Name() != "Engine" {
				return true
			}
			if len(call.Args) == 0 {
				return true
			}
			lit, ok := call.Args[len(call.Args)-1].(*ast.FuncLit)
			if !ok {
				return true
			}
			if !doesWork(lit.Body) {
				out = append(out, pkg.finding(lit.Pos(), "sched-noop",
					"callback scheduled on the sim engine performs no call/send; it consumes an event without advancing work"))
			}
			return true
		})
	}
	return out
}

// doesWork reports whether a callback body contains at least one call,
// channel send, or go statement.
func doesWork(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.CallExpr, *ast.SendStmt, *ast.GoStmt:
			found = true
		}
		return !found
	})
	return found
}

// checkConfigLiterals flags const/var declarations in the recovery-path
// packages that pin a retry, timeout, backoff, or NACK tuning value to a
// local numeric literal. Those values must be config knobs: the robustness
// machinery defaults off and stays cycle-identical only because every
// delay it introduces is a zero-defaulted field of internal/config.
// Declarations whose initializer is derived from package config are exempt.
func checkConfigLiterals(pkg *Package) []Finding {
	if !retryPackages[pkg.ImportPath] {
		return nil
	}
	var out []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			decl, ok := n.(*ast.GenDecl)
			if !ok || (decl.Tok != token.CONST && decl.Tok != token.VAR) {
				return true
			}
			for _, spec := range decl.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if i >= len(vs.Values) || !retryNamePat.MatchString(name.Name) {
						continue
					}
					val := vs.Values[i]
					tv, ok := pkg.Info.Types[val]
					if !ok || tv.Value == nil {
						continue // not a compile-time constant
					}
					switch tv.Value.Kind() {
					case constant.Int, constant.Float:
					default:
						continue
					}
					if mentionsConfig(pkg, val) {
						continue
					}
					out = append(out, pkg.finding(name.Pos(), "config-literal",
						"%s %s pins a retry/timeout/backoff value to a literal; recovery tuning must come from an internal/config knob",
						decl.Tok, name.Name))
				}
			}
			return true
		})
	}
	return out
}

// mentionsConfig reports whether the expression references anything
// declared in internal/config (a knob or a config-derived constant).
func mentionsConfig(pkg *Package, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pkg.Info.Uses[id]; obj != nil && obj.Pkg() != nil &&
				obj.Pkg().Path() == "ccnuma/internal/config" {
				found = true
			}
		}
		return !found
	})
	return found
}

// checkEnumStrings requires every lint-target enum declared in the package
// to be printable: diagnostics, traces, and stats reports all format these
// values, and a missing String method degrades them to bare integers.
func checkEnumStrings(pkg *Package) []Finding {
	names := enumTargets[pkg.ImportPath]
	if len(names) == 0 {
		return nil
	}
	var out []Finding
	for _, name := range names {
		obj, ok := pkg.Types.Scope().Lookup(name).(*types.TypeName)
		if !ok {
			out = append(out, Finding{
				Pos:   pkg.ImportPath,
				Check: "enum-string",
				Message: fmt.Sprintf("expected enum type %s is not declared (update the lint target list)",
					name),
			})
			continue
		}
		named := obj.Type().(*types.Named)
		if m, _, _ := types.LookupFieldOrMethod(named, true, pkg.Types, "String"); m == nil {
			out = append(out, pkg.finding(obj.Pos(), "enum-string",
				"enum %s has no String method; handlers/traces/stats print it as a bare integer", name))
		}
	}
	return out
}

// checkConfigSchema requires every exported field of the package's Config
// struct — and, transitively, of any in-package struct type reachable
// through its fields — to carry a json tag. The scenario layer serializes
// Config verbatim, so an untagged field would marshal under its Go name,
// drift out of the documented camelCase schema, and break the
// canonical-form fingerprint the replay machinery depends on. Types with
// their own MarshalJSON/MarshalText control their representation directly
// and are not descended into.
func checkConfigSchema(pkg *Package) []Finding {
	if !configSchemaPackages[pkg.ImportPath] {
		return nil
	}
	obj, ok := pkg.Types.Scope().Lookup("Config").(*types.TypeName)
	if !ok {
		return []Finding{{
			Pos:     pkg.ImportPath,
			Check:   "config-schema",
			Message: "expected type Config is not declared (update the lint target list)",
		}}
	}
	var out []Finding
	seen := map[*types.Named]bool{}
	var audit func(named *types.Named)
	audit = func(named *types.Named) {
		if seen[named] {
			return
		}
		seen[named] = true
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			return
		}
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if !f.Exported() {
				continue
			}
			tag, tagged := reflect.StructTag(st.Tag(i)).Lookup("json")
			if !tagged || tag == "-" || strings.HasPrefix(tag, ",") {
				out = append(out, pkg.finding(f.Pos(), "config-schema",
					"exported field %s.%s has no json tag; every config knob must be representable in the ccnuma-scenario/v1 schema",
					named.Obj().Name(), f.Name()))
			}
			if nested, ok := fieldStruct(f.Type(), pkg.Types); ok {
				audit(nested)
			}
		}
	}
	if named, ok := obj.Type().(*types.Named); ok {
		audit(named)
	}
	return out
}

// fieldStruct resolves a field type (through pointers, slices, arrays, and
// maps) to a named struct declared in the given package that does not
// define its own JSON representation.
func fieldStruct(t types.Type, in *types.Package) (*types.Named, bool) {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Slice:
			t = u.Elem()
		case *types.Array:
			t = u.Elem()
		case *types.Map:
			t = u.Elem()
		default:
			named, ok := t.(*types.Named)
			if !ok || named.Obj().Pkg() != in {
				return nil, false
			}
			if _, isStruct := named.Underlying().(*types.Struct); !isStruct {
				return nil, false
			}
			for _, m := range []string{"MarshalJSON", "MarshalText"} {
				if fn, _, _ := types.LookupFieldOrMethod(named, true, in, m); fn != nil {
					return nil, false
				}
			}
			return named, true
		}
	}
}

// checkSpanPairs enforces the span checkpoint pairing rule: a handler file
// that marks a transaction's entry into an attribution stage (SpanBegin
// with a named obs.Stage constant) must also contain a SpanEnd checkpoint
// for the same stage constant. A begin with no end in its file means the
// component announces a stage it never closes, so the stage's cycles
// silently fold into whatever checkpoint happens to come next. SpanEnd
// without SpanBegin is legal — several stages are measured end-only because
// their entry is another component's exit. Stage arguments that are not
// named constants (variables, expressions) are outside the rule.
func checkSpanPairs(pkg *Package) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		begins := map[string]token.Pos{}
		ends := map[string]bool{}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || (sel.Sel.Name != "SpanBegin" && sel.Sel.Name != "SpanEnd") {
				return true
			}
			selection, ok := pkg.Info.Selections[sel]
			if !ok {
				return true
			}
			recv := selection.Recv()
			if ptr, isPtr := recv.(*types.Pointer); isPtr {
				recv = ptr.Elem()
			}
			named, isNamed := recv.(*types.Named)
			if !isNamed || named.Obj().Pkg() == nil ||
				named.Obj().Pkg().Path() != "ccnuma/internal/obs" || named.Obj().Name() != "SpanTracker" {
				return true
			}
			if len(call.Args) < 2 {
				return true
			}
			stage, ok := stageConstName(pkg, call.Args[1])
			if !ok {
				return true
			}
			if sel.Sel.Name == "SpanBegin" {
				if _, seen := begins[stage]; !seen {
					begins[stage] = call.Pos()
				}
			} else {
				ends[stage] = true
			}
			return true
		})
		var unpaired []string
		for stage := range begins {
			if !ends[stage] {
				unpaired = append(unpaired, stage)
			}
		}
		sort.Strings(unpaired)
		for _, stage := range unpaired {
			out = append(out, pkg.finding(begins[stage], "span-pair",
				"SpanBegin(%s) has no SpanEnd for the same stage in this file; the stage's cycles would fold into the next checkpoint",
				stage))
		}
	}
	return out
}

// stageConstName resolves an expression to the name of an obs.Stage
// constant, reporting false for anything else.
func stageConstName(pkg *Package, e ast.Expr) (string, bool) {
	var obj types.Object
	switch x := e.(type) {
	case *ast.SelectorExpr:
		obj = pkg.Info.Uses[x.Sel]
	case *ast.Ident:
		obj = pkg.Info.Uses[x]
	default:
		return "", false
	}
	c, ok := obj.(*types.Const)
	if !ok {
		return "", false
	}
	named, ok := c.Type().(*types.Named)
	if !ok || named.Obj().Pkg() == nil ||
		named.Obj().Pkg().Path() != "ccnuma/internal/obs" || named.Obj().Name() != "Stage" {
		return "", false
	}
	return c.Name(), true
}

// checkNoGoroutines flags go statements outside the sanctioned concurrency
// homes (internal/runner and the workload handoff). A goroutine anywhere
// else undermines the parallel runner's determinism argument: simulations
// stay embarrassingly parallel only while every model component runs
// exclusively on its engine's goroutine and every result is committed in
// job-index order.
func checkNoGoroutines(pkg *Package) []Finding {
	if goroutineAllowed[pkg.ImportPath] {
		return nil
	}
	var out []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				out = append(out, pkg.finding(g.Pos(), "no-goroutine",
					"go statement outside internal/runner and the workload handoff; fan work out through the runner pool instead"))
			}
			return true
		})
	}
	return out
}

// checkRangeMaps flags map iterations with order-dependent effects in the
// simulation-affecting packages. Go deliberately randomizes map iteration
// order, so any loop over a map whose body's outcome depends on visit
// order desynchronizes otherwise-identical runs. The allowed shapes are
// the order-insensitive ones used for the sorted-iteration idiom and for
// bookkeeping: collecting keys/values with append (sort afterwards),
// deleting entries, writing other map elements, and numeric/boolean
// accumulation. Everything else must iterate sorted keys instead.
func checkRangeMaps(pkg *Package) []Finding {
	if !rangeMapPackages[pkg.ImportPath] {
		return nil
	}
	var out []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pkg.Info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if rangeBodyOrderInsensitive(pkg, rs.Body.List) {
				return true
			}
			out = append(out, pkg.finding(rs.Pos(), "rangemap",
				"map iteration with order-dependent effects; collect the keys, sort them, and iterate the sorted slice"))
			return true
		})
	}
	return out
}

// rangeBodyOrderInsensitive reports whether every statement in a range
// body is insensitive to iteration order.
func rangeBodyOrderInsensitive(pkg *Package, stmts []ast.Stmt) bool {
	for _, st := range stmts {
		if !rangeStmtOrderInsensitive(pkg, st) {
			return false
		}
	}
	return true
}

func rangeStmtOrderInsensitive(pkg *Package, st ast.Stmt) bool {
	switch s := st.(type) {
	case *ast.AssignStmt:
		switch s.Tok {
		case token.ASSIGN, token.DEFINE:
			if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
				return false
			}
			// x = append(x, ...): key/value collection for later sorting.
			if call, ok := s.Rhs[0].(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" && len(call.Args) > 0 {
					if render, ok1 := s.Lhs[0].(*ast.Ident); ok1 {
						if arg, ok2 := call.Args[0].(*ast.Ident); ok2 && arg.Name == render.Name {
							return true
						}
					}
				}
			}
			// m2[k] = v: element writes land per key regardless of order.
			if ix, ok := s.Lhs[0].(*ast.IndexExpr); ok {
				if t := pkg.Info.TypeOf(ix.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						return true
					}
				}
			}
			return false
		case token.ADD_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN, token.MUL_ASSIGN:
			// Commutative accumulation.
			return true
		default:
			return false
		}
	case *ast.IncDecStmt:
		return true
	case *ast.ExprStmt:
		// delete(m, k) is the only order-insensitive call form.
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "delete" {
				return true
			}
		}
		return false
	case *ast.BlockStmt:
		return rangeBodyOrderInsensitive(pkg, s.List)
	case *ast.IfStmt:
		// A guard is fine as long as both arms stay order-insensitive and
		// the condition has no side effects (conditions are expressions;
		// the risky effects live in the branches).
		if s.Init != nil && !rangeStmtOrderInsensitive(pkg, s.Init) {
			return false
		}
		if !rangeBodyOrderInsensitive(pkg, s.Body.List) {
			return false
		}
		if s.Else != nil {
			return rangeStmtOrderInsensitive(pkg, s.Else)
		}
		return true
	case *ast.BranchStmt:
		return s.Tok == token.CONTINUE
	default:
		return false
	}
}
