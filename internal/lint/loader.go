// Package lint implements the repo's custom static analyses: protocol enum
// switches must be exhaustive or fail loudly, simulated-time packages must
// not consult wall-clock or global-randomness sources, callbacks handed to
// the discrete-event engine must do work, protocol enums must be printable,
// goroutines may be spawned only by internal/runner and the workload
// handoff, and lint suppressions must carry a reason.
//
// It is built only on the standard library's go/ast and go/types: packages
// are enumerated with `go list -deps -export -json`, dependencies are
// imported from the build cache's export data, and the analyzed packages
// themselves are parsed and type-checked from source.
package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package under analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listedPkg mirrors the `go list -json` fields the loader consumes.
type listedPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	Error      *struct{ Err string }
}

// goList runs `go list` in dir with the given extra arguments and decodes
// the JSON package stream.
func goList(dir string, args ...string) ([]*listedPkg, error) {
	cmd := exec.Command("go", append([]string{"list", "-json"}, args...)...)
	cmd.Dir = dir
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	dec := json.NewDecoder(out)
	var pkgs []*listedPkg
	for {
		p := &listedPkg{}
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("lint: go list %s: %w", strings.Join(args, " "), err)
	}
	return pkgs, nil
}

// Load type-checks the packages matched by patterns (run from dir, which
// must be inside the module) and returns them ready for analysis.
func Load(dir string, patterns ...string) ([]*Package, error) {
	targets, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	// Export data for every dependency (including in-module ones, so the
	// targets never need to be checked in topological order).
	deps, err := goList(dir, append([]string{"-deps", "-export"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	for _, d := range deps {
		if d.Export != "" {
			exports[d.ImportPath] = d.Export
		}
	}
	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(exp)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var out []*Package
	for _, t := range targets {
		if t.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", t.ImportPath, t.Error.Err)
		}
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		if len(files) == 0 {
			continue
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Uses:       map[*ast.Ident]types.Object{},
			Defs:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("lint: type-checking %s: %w", t.ImportPath, err)
		}
		out = append(out, &Package{
			ImportPath: t.ImportPath,
			Dir:        t.Dir,
			Fset:       fset,
			Files:      files,
			Types:      tpkg,
			Info:       info,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ImportPath < out[j].ImportPath })
	return out, nil
}
