// Package badconfig is a deliberately broken fixture for the
// config-schema check: its Config struct mixes properly tagged fields
// with untagged ones, at the top level and inside a nested struct.
package badconfig

// Timing has a tagged and an untagged exported field; the untagged one
// must be flagged because Config reaches it through the Net field.
type Timing struct {
	Latency int `json:"latency"`
	HopCost int // missing tag: flagged transitively
}

// Ignored is never referenced from Config, so its untagged field is not a
// finding.
type Ignored struct {
	Whatever int
}

// Config is the fixture's schema root.
type Config struct {
	Nodes   int    `json:"nodes"`
	Engines int    // missing tag: flagged
	Name    string `json:"-"` // explicitly excluded counts as untagged: flagged
	Net     Timing `json:"net"`

	hidden int // unexported: ignored
}

// Use the unexported field so the fixture compiles vet-clean.
func (c *Config) Hidden() int { return c.hidden }
