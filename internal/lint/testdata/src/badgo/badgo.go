// Package badgo is a lint fixture: model and tool code must never spawn
// goroutines (simulation determinism depends on every event executing on
// the engine's single goroutine, and on results being committed in job
// order by internal/runner). The no-goroutine check must flag the go
// statement below.
package badgo

var results = make(chan int, 1)

// Flagged: a go statement outside internal/runner and the workload handoff.
func spawn() int {
	go func() { results <- 1 }()
	return <-results
}
