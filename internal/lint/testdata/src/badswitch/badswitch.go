// Package badswitch is a cclint test fixture. Every construct in this file
// is deliberately wrong (or deliberately suppressed) and lint_test.go
// asserts the exact set of findings; it is excluded from normal builds by
// living under testdata.
package badswitch

import (
	"ccnuma/internal/protocol"
	"ccnuma/internal/sim"
)

// NonExhaustive switches over protocol.MsgType without covering every
// message and without a default: flagged by switch-enum.
func NonExhaustive(t protocol.MsgType) int {
	switch t {
	case protocol.MsgReadReq:
		return 1
	case protocol.MsgReadExReq:
		return 2
	}
	return 0
}

// SilentDefault swallows unknown handlers instead of panicking: flagged by
// switch-enum.
func SilentDefault(h protocol.Handler) int {
	switch h {
	case protocol.HBusReadRemote:
		return 1
	default:
		return 0
	}
}

// NoopCallback schedules an engine event whose body performs no call or
// send: flagged by sched-noop.
func NoopCallback(eng *sim.Engine) {
	x := 0
	eng.At(5, func() { x++ })
	_ = x
}

// Suppressed demonstrates a justified suppression: the finding is silenced
// because the directive names the check and gives a reason.
func Suppressed(t protocol.MsgType) int {
	//cclint:ignore switch-enum fixture demonstrating a justified suppression
	switch t {
	case protocol.MsgReadReq:
		return 1
	}
	return 0
}

// Bare carries a reasonless nolint: flagged by nolint-reason.
func Bare() {} //nolint

// Reasonless is a cclint directive with no reason: flagged by
// ignore-reason (and it suppresses nothing).
//
//cclint:ignore switch-enum
func Reasonless() {}

// Typoed names an unknown check, so it suppresses nothing: flagged by
// ignore-unknown.
//
//cclint:ignore switchenum the check is really called switch-enum
func Typoed() {}
