// Package badspan is a lint fixture for the span-pair analysis: one stage
// is begun and never ended in this file, one stage is properly paired, one
// stage is ended without a begin (legal), and one call passes a
// non-constant stage (outside the rule).
package badspan

import "ccnuma/internal/obs"

// Unpaired begins the stall stage and never closes it — flagged.
func Unpaired(s *obs.SpanTracker) {
	s.SpanBegin(1, obs.StageStall, 0, 10)
	s.SpanEnd(1, obs.StageBus, 0, 20)
}

// Paired begins and ends the backoff stage — silent.
func Paired(s *obs.SpanTracker) {
	s.SpanBegin(2, obs.StageBackoff, 0, 10)
	s.SpanEnd(2, obs.StageBackoff, 0, 20)
}

// EndOnly closes a stage whose entry is another component's exit — silent.
func EndOnly(s *obs.SpanTracker) {
	s.SpanEnd(3, obs.StageMem, 0, 30)
}

// Dynamic passes a non-constant stage — outside the rule.
func Dynamic(s *obs.SpanTracker, st obs.Stage) {
	s.SpanBegin(4, st, 0, 40)
}
