// Package badretry is a lint fixture: it pins recovery tuning values to
// local literals, which the config-literal check must flag. The allowed
// shapes (config-derived values, non-numeric constants, names outside the
// retry vocabulary) must stay silent.
package badretry

import "ccnuma/internal/config"

// Flagged: numeric literals naming retry/timeout/backoff/NACK tuning.
const retryBudget = 25

const (
	nackDelay      = 30
	requestTimeout = 50_000
)

var backoffMax = 2 * 1000

// Allowed: derived from internal/config.
var cfgRetry = config.Base().BusRetry

// Allowed: not numeric.
const retryNote = "retries are nacked"

// Allowed: name is outside the retry vocabulary.
const lineSize = 128

func use() (interface{}, interface{}, interface{}) {
	// Flagged: function-local pins count too.
	const localNackWindow = 64
	_ = localNackWindow
	_ = requestTimeout
	_ = retryNote
	_ = lineSize
	return retryBudget, nackDelay, backoffMax
}

var _ = cfgRetry
var _ = use
