// Package badrangemap is a cclint test fixture for the rangemap check.
// The two loops marked "flagged" iterate maps with order-dependent
// effects; everything else uses the sanctioned order-insensitive shapes
// and must stay silent. It is excluded from normal builds by living
// under testdata.
package badrangemap

import "sort"

// DrainQueues emits every queued message, but the per-queue emission
// order follows map iteration order: flagged by rangemap.
func DrainQueues(qs map[int][]string, emit func(string)) {
	for _, q := range qs {
		for _, m := range q {
			emit(m)
		}
	}
}

// PickVictim resolves ties by whichever key the iterator visits last:
// flagged by rangemap.
func PickVictim(ages map[uint64]int) uint64 {
	var victim uint64
	best := -1
	for a, age := range ages {
		if age >= best {
			best = age
			victim = a
		}
	}
	return victim
}

// SortedKeys is the sanctioned idiom: collect, sort, then iterate the
// slice. The collection loop is order-insensitive and stays silent.
func SortedKeys(m map[int]string) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// CountValid accumulates commutatively (guards and continue allowed):
// silent.
func CountValid(m map[int]bool) int {
	n := 0
	for _, ok := range m {
		if !ok {
			continue
		}
		n++
	}
	return n
}

// Invert writes map elements, which land per key in any order: silent.
func Invert(m map[int]string) map[string]int {
	out := map[string]int{}
	for k, v := range m {
		out[v] = k
	}
	return out
}

// Expire deletes entries under a guard: silent.
func Expire(m map[int]int, now int) {
	for k, v := range m {
		if v < now {
			delete(m, k)
		}
	}
}
