package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTempModule lays out a standalone module in a temp dir so loader
// failure modes can be exercised without planting broken files inside
// the real module (which would trip gofmt and go vet).
func writeTempModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module tmpmod\n\ngo 1.21\n"
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestLoadFixture pins the happy path: the fixture package arrives
// parsed, type-checked, and with its type info usable.
func TestLoadFixture(t *testing.T) {
	pkgs, err := Load(".", "./testdata/src/badgo")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.ImportPath != "ccnuma/internal/lint/testdata/src/badgo" {
		t.Errorf("ImportPath = %q", p.ImportPath)
	}
	if len(p.Files) == 0 || p.Types == nil || p.Info == nil || p.Fset == nil {
		t.Fatalf("package not fully populated: %+v", p)
	}
	if len(p.Info.Defs) == 0 {
		t.Error("type info carries no definitions; type checking did not run")
	}
}

// TestLoadUnknownPattern requires a loader error (not a silent empty
// result) when the pattern matches nothing.
func TestLoadUnknownPattern(t *testing.T) {
	if _, err := Load(".", "./testdata/src/no-such-package"); err == nil {
		t.Fatal("Load of a nonexistent pattern succeeded")
	}
}

// TestLoadSyntaxError requires Load to surface parse failures instead of
// analyzing a partial AST.
func TestLoadSyntaxError(t *testing.T) {
	dir := writeTempModule(t, map[string]string{
		"broken.go": "package tmpmod\n\nfunc Broken( {\n",
	})
	if _, err := Load(dir, "."); err == nil {
		t.Fatal("Load of a syntactically broken package succeeded")
	}
}

// TestLoadTypeError requires Load to surface type errors, since every
// analysis depends on sound type information. (They surface from the
// export-data listing, which compiles the package, before our own
// types.Config.Check pass would see them.)
func TestLoadTypeError(t *testing.T) {
	dir := writeTempModule(t, map[string]string{
		"ill.go": "package tmpmod\n\nfunc Ill() int { return undefinedSymbol }\n",
	})
	_, err := Load(dir, ".")
	if err == nil {
		t.Fatal("Load of an ill-typed package succeeded")
	}
	if !strings.Contains(err.Error(), "go list") {
		t.Errorf("unexpected error shape: %v", err)
	}
}
