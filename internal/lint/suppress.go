package lint

import (
	"fmt"
	"go/token"
	"strings"
)

// Suppressions take the form
//
//	//cclint:ignore <check> <reason...>
//
// on the flagged line or the line directly above it. The reason is
// mandatory: a suppression without one is itself a finding, as is any
// bare //nolint comment (the repo-wide rule is that silenced warnings
// must say why).

// suppression is one parsed //cclint:ignore comment.
type suppression struct {
	file   string
	line   int
	check  string
	reason string
	pos    token.Pos
	used   bool
}

type suppressionSet struct {
	byLoc map[string][]*suppression // "file:line" -> suppressions
	all   []*suppression
}

// collectSuppressions parses every cclint:ignore comment in the package.
func collectSuppressions(pkg *Package) *suppressionSet {
	set := &suppressionSet{byLoc: map[string][]*suppression{}}
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "cclint:ignore") {
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(text, "cclint:ignore"))
				s := &suppression{pos: c.Pos()}
				if len(fields) > 0 {
					s.check = fields[0]
				}
				if len(fields) > 1 {
					s.reason = strings.Join(fields[1:], " ")
				}
				p := pkg.Fset.Position(c.Pos())
				s.file, s.line = p.Filename, p.Line
				set.all = append(set.all, s)
				for _, ln := range []int{p.Line, p.Line + 1} {
					key := locKey(s.file, ln)
					set.byLoc[key] = append(set.byLoc[key], s)
				}
			}
		}
	}
	return set
}

func locKey(file string, line int) string {
	return fmt.Sprintf("%s:%d", file, line)
}

// knownChecks is the vocabulary a cclint:ignore directive may name. A
// typo here would silently suppress nothing while looking intentional,
// so unknown names are findings. model-stale is emitted by the cclint
// driver (the artifact staleness gate) rather than package lint, but is
// part of the same vocabulary.
var knownChecks = map[string]bool{
	"config-literal": true,
	"config-schema":  true,
	"enum-string":    true,
	"ignore-reason":  true,
	"ignore-unknown": true,
	"model-stale":    true,
	"no-goroutine":   true,
	"nolint-reason":  true,
	"rangemap":       true,
	"sched-noop":     true,
	"sim-rand":       true,
	"sim-time":       true,
	"span-pair":      true,
	"switch-enum":    true,
}

// covers reports whether a complete (check + reason) suppression matches
// the finding's location and check name, marking it used.
func (set *suppressionSet) covers(f Finding) bool {
	// Finding.Pos is "file:line:col".
	i := strings.LastIndex(f.Pos, ":")
	if i < 0 {
		return false
	}
	j := strings.LastIndex(f.Pos[:i], ":")
	if j < 0 {
		return false
	}
	file := f.Pos[:j]
	line := 0
	for _, ch := range f.Pos[j+1 : i] {
		line = line*10 + int(ch-'0')
	}
	for _, s := range set.byLoc[locKey(file, line)] {
		if s.check == f.Check && s.reason != "" {
			s.used = true
			return true
		}
	}
	return false
}

// checkCommentHygiene flags reasonless suppressions: cclint:ignore
// comments missing a check name or reason, and any //nolint comment that
// does not carry an explanation after the directive.
func checkCommentHygiene(pkg *Package, set *suppressionSet) []Finding {
	var out []Finding
	for _, s := range set.all {
		if s.check == "" || s.reason == "" {
			out = append(out, pkg.finding(s.pos, "ignore-reason",
				"cclint:ignore requires a check name and a reason: //cclint:ignore <check> <why>"))
			continue
		}
		if !knownChecks[s.check] {
			out = append(out, pkg.finding(s.pos, "ignore-unknown",
				fmt.Sprintf("cclint:ignore names unknown check %q; it suppresses nothing", s.check)))
		}
	}
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "nolint") {
					continue
				}
				rest := strings.TrimPrefix(text, "nolint")
				// Accepted: "//nolint:lintername // because ...". The
				// reason is whatever follows a second comment marker.
				if idx := strings.Index(rest, "//"); idx < 0 || strings.TrimSpace(rest[idx+2:]) == "" {
					out = append(out, pkg.finding(c.Pos(), "nolint-reason",
						"//nolint without a reason; write //nolint:<linter> // <why>"))
				}
			}
		}
	}
	return out
}
