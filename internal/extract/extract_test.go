package extract

import (
	"bytes"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const moduleRoot = "../.."

// TestCommittedModelFresh is the in-tree half of the staleness gate: a
// fresh extraction of this working tree must serialize byte-for-byte to
// the committed artifact. When this fails, run `ccmodel -write` and
// commit the result.
func TestCommittedModelFresh(t *testing.T) {
	fresh, err := Extract(moduleRoot)
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	fb, err := fresh.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	committed, cb, err := LoadArtifact(moduleRoot)
	if err != nil {
		t.Fatalf("no committed %s: %v (run `ccmodel -write`)", ArtifactPath, err)
	}
	if !bytes.Equal(fb, cb) {
		t.Fatalf("committed model %s is stale; fresh extraction is %s — run `ccmodel -write` and commit %s",
			committed.Fingerprint, fresh.Fingerprint, ArtifactPath)
	}
	if reason, err := CheckStale(moduleRoot); err != nil || reason != "" {
		t.Fatalf("CheckStale disagrees: reason=%q err=%v", reason, err)
	}
}

// TestModelShape pins structural invariants of the extraction: the full
// message vocabulary in enum order, the nackable subset, the handler
// count, and the presence of every trigger family.
func TestModelShape(t *testing.T) {
	m, _, err := LoadArtifact(moduleRoot)
	if err != nil {
		t.Fatal(err)
	}
	wantMsgs := []string{
		"ReadReq", "ReadExReq", "FetchReq", "FetchExReq", "Inval", "InvalAck",
		"DataShared", "DataExcl", "OwnerData", "FetchDone", "FetchExDone",
		"FetchDataHome", "InterventionMiss", "WriteBack", "Nack",
	}
	if len(m.Messages) != len(wantMsgs) {
		t.Fatalf("messages = %d, want %d", len(m.Messages), len(wantMsgs))
	}
	for i, w := range wantMsgs {
		if m.Messages[i].Name != w {
			t.Errorf("message %d = %s, want %s (enum order)", i, m.Messages[i].Name, w)
		}
		nackable := w == "ReadReq" || w == "ReadExReq"
		if m.Messages[i].Nackable != nackable {
			t.Errorf("message %s nackable = %v, want %v", w, m.Messages[i].Nackable, nackable)
		}
	}
	if len(m.Handlers) != 28 {
		t.Errorf("handlers = %d, want 28", len(m.Handlers))
	}
	if len(m.Rules) < 50 {
		t.Errorf("rules = %d, want >= 50", len(m.Rules))
	}
	families := map[string]bool{}
	for _, r := range m.Rules {
		i := strings.IndexByte(r.Trigger, ':')
		if i < 0 {
			t.Errorf("rule trigger %q has no family prefix", r.Trigger)
			continue
		}
		families[r.Trigger[:i]] = true
		if (r.Handler == "") != (r.Trigger == "ni:request" || r.Trigger == "direct:WriteBack") {
			t.Errorf("rule %q/%q: only the NI NACK bounce and the direct write-back may be engine-free",
				r.Trigger, r.Handler)
		}
	}
	for _, fam := range []string{"msg", "bus", "ni", "direct"} {
		if !families[fam] {
			t.Errorf("no rule with trigger family %q", fam)
		}
	}
}

// TestIndexAdmission pins the admission queries the checker and the
// conformance hook depend on.
func TestIndexAdmission(t *testing.T) {
	m, _, err := LoadArtifact(moduleRoot)
	if err != nil {
		t.Fatal(err)
	}
	ix := m.Index()
	if len(ix.HandlerByID) != len(m.Handlers) || len(ix.HandlerID) != len(m.Handlers) {
		t.Fatalf("handler maps incomplete: %d/%d of %d", len(ix.HandlerByID), len(ix.HandlerID), len(m.Handlers))
	}
	admitted := []struct{ trigger, handler string }{
		{"msg:ReadReq", "HRemoteReadHomeClean"},
		{"bus:Read/remote", "HBusReadRemote"},
		{"bus:ReadEx/local", "HBusReadExLocalCachedRemote"},
		{"msg:WriteBack", "HWriteBackAtHome"},
		{"msg:Nack", "HNackAtRequester"},
		{"ni:request", ""},
		{"direct:WriteBack", ""},
	}
	for _, a := range admitted {
		if !ix.Admits(a.trigger, a.handler) {
			t.Errorf("Admits(%q, %q) = false, want true", a.trigger, a.handler)
		}
	}
	if ix.Admits("msg:ReadReq", "HNackAtRequester") {
		t.Error("Admits accepted a mismatched (trigger, handler) pair")
	}
	if ix.Admits("msg:Bogus", "HRemoteReadHomeClean") {
		t.Error("Admits accepted an unknown trigger")
	}
	if !ix.AdmitsSend("msg:ReadReq", "HRemoteReadHomeClean", "DataShared") {
		t.Error("the clean home read must be able to send DataShared")
	}
	if ix.AdmitsSend("bus:Read/local", "HBusyRequeue", "DataShared") {
		t.Error("the busy requeue must not send anything")
	}
	for _, d := range []string{"DataShared", "DataExcl", "OwnerData", "Nack", "WriteBack"} {
		if !ix.Deferred[d] {
			t.Errorf("%s missing from the deferred-send set", d)
		}
	}
	if ix.Deferred["Bogus"] {
		t.Error("deferred set admits an unknown type")
	}
}

// copyModule clones the module's Go sources (plus go.mod and the
// committed artifact) into a temp dir so a mutation can be applied
// without touching the real tree.
func copyModule(t *testing.T) string {
	t.Helper()
	dst := t.TempDir()
	root, err := filepath.Abs(moduleRoot)
	if err != nil {
		t.Fatal(err)
	}
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(root, path)
		if d.IsDir() {
			if d.Name() == ".git" {
				return filepath.SkipDir
			}
			return os.MkdirAll(filepath.Join(dst, rel), 0o755)
		}
		if !strings.HasSuffix(path, ".go") && rel != "go.mod" && rel != ArtifactPath {
			return nil
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(filepath.Join(dst, rel), b, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	return dst
}

// TestStaleDetection is the required drift-detection test: mutating a
// handler source without regenerating the artifact must turn the gate
// red, and the report must name the changed file.
func TestStaleDetection(t *testing.T) {
	if testing.Short() {
		t.Skip("clones and re-extracts the module; skipped in -short")
	}
	dir := copyModule(t)
	if reason, err := CheckStale(dir); err != nil || reason != "" {
		t.Fatalf("pristine clone reported stale: reason=%q err=%v", reason, err)
	}

	hpath := filepath.Join(dir, "internal", "core", "handlers.go")
	src, err := os.ReadFile(hpath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(hpath, append(src, []byte("\n// drift probe\n")...), 0o644); err != nil {
		t.Fatal(err)
	}
	reason, err := CheckStale(dir)
	if err != nil {
		t.Fatal(err)
	}
	if reason == "" {
		t.Fatal("mutated handlers.go but the gate stayed green")
	}
	if !strings.Contains(reason, "internal/core/handlers.go") {
		t.Errorf("stale reason does not name the changed source: %q", reason)
	}
	if !strings.Contains(reason, "ccmodel -write") {
		t.Errorf("stale reason does not say how to fix it: %q", reason)
	}

	// A missing artifact is also stale, with its own actionable message.
	if err := os.Remove(filepath.Join(dir, ArtifactPath)); err != nil {
		t.Fatal(err)
	}
	reason, err = CheckStale(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(reason, "no committed") {
		t.Errorf("missing artifact reason = %q", reason)
	}
}
