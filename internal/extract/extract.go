package extract

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/constant"
	"go/printer"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"ccnuma/internal/lint"
	"ccnuma/internal/protocol"
	"ccnuma/internal/smpbus"
)

// stopSet are the controller methods the rule walker must not descend
// into: the dispatch loop itself and the waiter-replay path (replaying
// parked work re-enters dispatch, which would make the walk cyclic and
// attribute every handler's actions to every other).
var stopSet = map[string]bool{
	"dispatch": true, "kick": true, "pick": true, "pickFIFO": true,
	"takeResp": true, "takeReq": true, "takeBus": true, "replay": true,
}

// extractor holds the type-checked packages and the per-run memo tables.
type extractor struct {
	core  *lint.Package
	proto *lint.Package

	// methods maps Controller method name -> declaration.
	methods map[string]*ast.FuncDecl
	// charging marks methods that (transitively) call cc.charge.
	charging map[string]bool
	// summaries memoizes the transitive send/directory-write closure of
	// non-charging helper methods.
	summaries map[string]*summary

	handlerName map[int64]string // protocol.Handler const value -> identifier

	problems []string
}

// summary is the transitive effect closure of one helper method.
type summary struct {
	sends     []Send
	dirWrites []string
}

func (x *extractor) problemf(format string, args ...interface{}) {
	x.problems = append(x.problems, fmt.Sprintf(format, args...))
}

// Extract statically derives the protocol model from the module's
// internal/core and internal/protocol packages.
func Extract(moduleRoot string) (*Model, error) {
	pkgs, err := lint.Load(moduleRoot, "./internal/core", "./internal/protocol")
	if err != nil {
		return nil, fmt.Errorf("extract: loading packages: %w", err)
	}
	x := &extractor{
		methods:     map[string]*ast.FuncDecl{},
		charging:    map[string]bool{},
		summaries:   map[string]*summary{},
		handlerName: map[int64]string{},
	}
	for _, p := range pkgs {
		switch {
		case strings.HasSuffix(p.ImportPath, "internal/core"):
			x.core = p
		case strings.HasSuffix(p.ImportPath, "internal/protocol"):
			x.proto = p
		}
	}
	if x.core == nil || x.proto == nil {
		return nil, fmt.Errorf("extract: loaded %d packages, need internal/core and internal/protocol", len(pkgs))
	}
	x.collectMethods()
	x.collectHandlerNames()
	x.computeCharging()

	m := &Model{Schema: Schema}
	var err2 error
	if m.Sources, err2 = hashSources(moduleRoot); err2 != nil {
		return nil, err2
	}
	m.Messages = messageTable()
	m.Handlers = handlerTable(x.handlerName)
	m.Rules = x.extractRules()
	if len(x.problems) > 0 {
		sort.Strings(x.problems)
		return nil, fmt.Errorf("extract: %d unsupported patterns (the extractor must be taught about them before the model can be regenerated):\n  %s",
			len(x.problems), strings.Join(x.problems, "\n  "))
	}
	if err := x.checkComplete(m); err != nil {
		return nil, err
	}
	// Round-trip through the canonical form so the returned model carries
	// its fingerprint.
	b, err := m.Canonical()
	if err != nil {
		return nil, err
	}
	var canon Model
	if err := json.Unmarshal(b, &canon); err != nil {
		return nil, fmt.Errorf("extract: re-decoding canonical model: %w", err)
	}
	m.sortAll()
	m.Fingerprint = canon.Fingerprint
	return m, nil
}

// ---- static tables ---------------------------------------------------------

// hashSources pins every non-test Go file of the two analyzed packages.
func hashSources(moduleRoot string) ([]SourceHash, error) {
	var out []SourceHash
	for _, dir := range []string{"internal/core", "internal/protocol"} {
		names, err := filepath.Glob(filepath.Join(moduleRoot, dir, "*.go"))
		if err != nil {
			return nil, err
		}
		for _, name := range names {
			if strings.HasSuffix(name, "_test.go") {
				continue
			}
			b, err := os.ReadFile(name)
			if err != nil {
				return nil, err
			}
			sum := sha256.Sum256(b)
			out = append(out, SourceHash{
				Path:   filepath.ToSlash(filepath.Join(dir, filepath.Base(name))),
				SHA256: fmt.Sprintf("%x", sum),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

func messageTable() []Message {
	var out []Message
	for t := 0; t < protocol.NumMsgTypes; t++ {
		msg := protocol.Msg{Type: protocol.MsgType(t)}
		out = append(out, Message{
			Name:        msg.Type.String(),
			CarriesData: msg.CarriesData(),
			Nackable:    msg.Nackable(),
			Response:    msg.IsResponse(),
		})
	}
	return out
}

func handlerTable(names map[int64]string) []HandlerInfo {
	var out []HandlerInfo
	for h := 0; h < protocol.NumHandlers; h++ {
		var seq []string
		for _, op := range protocol.Sequence(protocol.Handler(h)) {
			seq = append(seq, op.String())
		}
		out = append(out, HandlerInfo{
			Name:        names[int64(h)],
			ID:          h,
			Desc:        protocol.Handler(h).String(),
			Sequence:    seq,
			Stall:       protocol.Stall(protocol.Handler(h)).String(),
			ActionIndex: protocol.ActionIndex(protocol.Handler(h)),
		})
	}
	return out
}

// collectHandlerNames maps protocol.Handler const values to their
// identifiers via the type-checked protocol package scope.
func (x *extractor) collectHandlerNames() {
	scope := x.proto.Types.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !c.Exported() {
			continue
		}
		named, ok := c.Type().(*types.Named)
		if !ok || named.Obj().Name() != "Handler" {
			continue
		}
		if v, ok := constant.Int64Val(c.Val()); ok {
			x.handlerName[v] = name
		}
	}
	if len(x.handlerName) != protocol.NumHandlers {
		x.problemf("found %d protocol.Handler constants, want %d", len(x.handlerName), protocol.NumHandlers)
	}
}

// collectMethods indexes every *Controller method declaration.
func (x *extractor) collectMethods() {
	for _, f := range x.core.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) != 1 {
				continue
			}
			if recvTypeName(fd.Recv.List[0].Type) == "Controller" {
				x.methods[fd.Name.Name] = fd
			}
		}
	}
}

// computeCharging marks methods that transitively reach cc.charge.
func (x *extractor) computeCharging() {
	direct := map[string][]string{} // method -> cc-method callees
	for name, fd := range x.methods {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if id, ok := sel.X.(*ast.Ident); ok && id.Name == "cc" {
				if sel.Sel.Name == "charge" {
					x.charging[name] = true
				} else if _, isM := x.methods[sel.Sel.Name]; isM && !stopSet[sel.Sel.Name] {
					direct[name] = append(direct[name], sel.Sel.Name)
				}
			}
			return true
		})
	}
	for changed := true; changed; {
		changed = false
		for name, callees := range direct {
			if x.charging[name] {
				continue
			}
			for _, c := range callees {
				if x.charging[c] {
					x.charging[name] = true
					changed = true
					break
				}
			}
		}
	}
}

// ---- rule extraction -------------------------------------------------------

// extractRules walks every dispatch root and assembles the rule table.
func (x *extractor) extractRules() []Rule {
	var rules []Rule

	// Message triggers: one per case constant of handleMsg's type switch.
	hm := x.methods["handleMsg"]
	if hm == nil {
		x.problemf("handleMsg not found")
		return nil
	}
	for _, cv := range x.switchCaseConsts(hm, "msg.Type") {
		trigger := "msg:" + protocol.MsgType(cv).String()
		w := x.newWalker()
		w.env["msg.Type"] = cv
		w.walkFunc(hm, nil)
		rules = append(rules, x.assemble(trigger, w.events)...)
	}

	// Bus triggers: the deferrable kinds (handleLocalBus's switch domain),
	// each in its local-home and remote-home variant.
	hlb := x.methods["handleLocalBus"]
	hbt := x.methods["handleBusTxn"]
	if hlb == nil || hbt == nil {
		x.problemf("handleLocalBus/handleBusTxn not found")
		return rules
	}
	for _, cv := range x.switchCaseConsts(hlb, "txn.Kind") {
		for _, local := range []bool{true, false} {
			domain := "/remote"
			if local {
				domain = "/local"
			}
			trigger := "bus:" + smpbus.Kind(cv).String() + domain
			w := x.newWalker()
			w.env["txn.Kind"] = cv
			w.bools["txn.HomeLocal"] = local
			w.walkFunc(hbt, nil)
			rules = append(rules, x.assemble(trigger, w.events)...)
		}
	}

	// Engine-free datapaths: the NI request-queue NACK bounce and the
	// direct write-back path send without dispatching a handler.
	for _, root := range []struct{ method, trigger string }{
		{"deliver", "ni:request"},
		{"CaptureWriteBack", "direct:WriteBack"},
	} {
		fd := x.methods[root.method]
		if fd == nil {
			x.problemf("%s not found", root.method)
			continue
		}
		w := x.newWalker()
		w.walkFunc(fd, nil)
		rules = append(rules, x.assembleOrphans(root.trigger, w.events)...)
	}
	return dedupRules(rules)
}

// switchCaseConsts returns the distinct constant values of the case
// expressions of fd's switch over tag (rendered text), in source order.
func (x *extractor) switchCaseConsts(fd *ast.FuncDecl, tag string) []int64 {
	var out []int64
	seen := map[int64]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sw, ok := n.(*ast.SwitchStmt)
		if !ok || sw.Tag == nil || x.render(sw.Tag) != tag {
			return true
		}
		for _, c := range sw.Body.List {
			for _, e := range c.(*ast.CaseClause).List {
				if v, ok := x.constVal(e); ok && !seen[v] {
					seen[v] = true
					out = append(out, v)
				}
			}
		}
		return false
	})
	if len(out) == 0 {
		x.problemf("%s: no switch over %s", fd.Name.Name, tag)
	}
	return out
}

// assemble groups the walk's ordered events into charge sites and flattens
// them into rules. A non-charge event belongs to the latest site whose
// guard stack is a prefix of its own (the charge dominates it); events seen
// before any dominating site apply to every later site they dominate.
func (x *extractor) assemble(trigger string, events []*event) []Rule {
	type asite struct {
		ev        *event
		sends     []Send
		updates   []string
		dirWrites []string
	}
	var sites []*asite
	var pre []*event
	attach := func(s *asite, ev *event) {
		switch ev.kind {
		case evSend:
			s.sends = append(s.sends, ev.sends...)
		case evUpdate:
			s.updates = append(s.updates, ev.text)
		case evDirWrite:
			s.dirWrites = append(s.dirWrites, ev.texts...)
		}
	}
	for _, ev := range events {
		if ev.kind == evCharge {
			sites = append(sites, &asite{ev: ev})
			continue
		}
		var dom *asite
		for _, s := range sites {
			if isPrefix(s.ev.guards, ev.guards) {
				dom = s
			}
		}
		if dom != nil {
			attach(dom, ev)
		} else {
			pre = append(pre, ev)
		}
	}
	for _, ev := range pre {
		for _, s := range sites {
			if isPrefix(ev.guards, s.ev.guards) {
				attach(s, ev)
			}
		}
	}
	var rules []Rule
	for _, s := range sites {
		for _, v := range s.ev.variants {
			rules = append(rules, Rule{
				Trigger:   trigger,
				Fn:        s.ev.fn,
				Handler:   v.handler,
				Guards:    dedupStrings(append(append([]string{}, s.ev.guards...), v.guards...)),
				Updates:   dedupStrings(s.updates),
				Sends:     dedupSends(s.sends),
				DirWrites: dedupStrings(s.dirWrites),
			})
		}
	}
	return rules
}

// assembleOrphans turns each send of an engine-free root into its own
// handlerless rule, folding in guard-compatible updates.
func (x *extractor) assembleOrphans(trigger string, events []*event) []Rule {
	var rules []Rule
	for _, ev := range events {
		if ev.kind == evCharge {
			x.problemf("%s: engine-free root %s charges a handler", trigger, ev.fn)
		}
		if ev.kind != evSend {
			continue
		}
		r := Rule{Trigger: trigger, Fn: ev.fn, Guards: ev.guards, Sends: dedupSends(ev.sends)}
		for _, other := range events {
			if other.kind == evUpdate && isPrefix(ev.guards, other.guards) {
				r.Updates = append(r.Updates, other.text)
			}
			if other.kind == evDirWrite && isPrefix(ev.guards, other.guards) {
				r.DirWrites = append(r.DirWrites, other.texts...)
			}
		}
		r.Updates = dedupStrings(r.Updates)
		r.DirWrites = dedupStrings(r.DirWrites)
		rules = append(rules, r)
	}
	return rules
}

// checkComplete verifies the model covers the whole protocol surface:
// every handler is charged by some rule, every message type has a
// dispatch rule, and every message type is sent by some rule.
func (x *extractor) checkComplete(m *Model) error {
	charged := map[string]bool{}
	dispatched := map[string]bool{}
	sent := map[string]bool{}
	for _, r := range m.Rules {
		if r.Handler != "" {
			charged[r.Handler] = true
		}
		if strings.HasPrefix(r.Trigger, "msg:") {
			dispatched[strings.TrimPrefix(r.Trigger, "msg:")] = true
		}
		for _, s := range r.Sends {
			sent[s.Type] = true
		}
	}
	var missing []string
	for _, h := range m.Handlers {
		if !charged[h.Name] {
			missing = append(missing, "handler never charged: "+h.Name)
		}
	}
	for _, msg := range m.Messages {
		if !dispatched[msg.Name] {
			missing = append(missing, "message never dispatched: "+msg.Name)
		}
		if !sent[msg.Name] {
			missing = append(missing, "message never sent: "+msg.Name)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("extract: incomplete model:\n  %s", strings.Join(missing, "\n  "))
	}
	return nil
}

// ---- helpers ---------------------------------------------------------------

func isPrefix(prefix, full []string) bool {
	if len(prefix) > len(full) {
		return false
	}
	for i, g := range prefix {
		if full[i] != g {
			return false
		}
	}
	return true
}

func dedupStrings(in []string) []string {
	var out []string
	seen := map[string]bool{}
	for _, s := range in {
		if s != "" && !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

func dedupSends(in []Send) []Send {
	var out []Send
	seen := map[Send]bool{}
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

func dedupRules(in []Rule) []Rule {
	var out []Rule
	seen := map[string]bool{}
	for _, r := range in {
		key := r.Trigger + "\x00" + r.Fn + "\x00" + r.Handler + "\x00" + strings.Join(r.Guards, "\x00")
		if !seen[key] {
			seen[key] = true
			out = append(out, r)
		}
	}
	return out
}

// render prints an AST node as normalized single-line source text.
func (x *extractor) render(n ast.Node) string {
	var b bytes.Buffer
	if err := printer.Fprint(&b, x.core.Fset, n); err != nil {
		return fmt.Sprintf("<%T>", n)
	}
	return strings.Join(strings.Fields(b.String()), " ")
}

// constVal resolves an expression to its integer constant value.
func (x *extractor) constVal(e ast.Expr) (int64, bool) {
	tv, ok := x.core.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(tv.Value)
}

// boolVal resolves an expression to its boolean constant value.
func (x *extractor) boolVal(e ast.Expr) (bool, bool) {
	tv, ok := x.core.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Bool {
		return false, false
	}
	return constant.BoolVal(tv.Value), true
}

// typeText returns the fully qualified type string of e (empty when the
// type checker has no entry).
func (x *extractor) typeText(e ast.Expr) string {
	tv, ok := x.core.Info.Types[e]
	if !ok || tv.Type == nil {
		return ""
	}
	return tv.Type.String()
}

func recvTypeName(t ast.Expr) string {
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// neg renders the logical negation of a rendered condition.
func neg(c string) string {
	if strings.HasPrefix(c, "!(") && strings.HasSuffix(c, ")") && balanced(c[1:]) {
		return c[2 : len(c)-1]
	}
	if strings.HasPrefix(c, "!") && !strings.ContainsAny(c[1:], " ") {
		return c[1:]
	}
	if strings.ContainsAny(c, " ") {
		return "!(" + c + ")"
	}
	return "!" + c
}

func balanced(s string) bool {
	depth := 0
	for i, r := range s {
		switch r {
		case '(':
			depth++
		case ')':
			depth--
			if depth == 0 && i != len(s)-1 {
				return false
			}
		}
	}
	return depth == 0
}

func guardsPlus(g []string, c string) []string {
	out := make([]string, len(g), len(g)+1)
	copy(out, g)
	return append(out, c)
}
