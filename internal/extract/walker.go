package extract

import (
	"go/ast"
	"go/token"
	"strings"

	"ccnuma/internal/directory"
	"ccnuma/internal/protocol"
)

// Event kinds collected during a walk, in source order.
const (
	evCharge = iota
	evSend
	evUpdate
	evDirWrite
)

// variant is one possible handler a charge site can resolve to, with the
// extra guards under which the handler variable holds that value.
type variant struct {
	handler string
	guards  []string
}

// event is one observable action on a guarded path.
type event struct {
	kind     int
	fn       string // controller method the event occurred in
	guards   []string
	variants []variant // evCharge
	sends    []Send    // evSend
	text     string    // evUpdate
	texts    []string  // evDirWrite
}

// rhsAssign is one (possibly guarded) assignment to a tracked variable;
// rhs is nil for a bare `var x T` declaration (zero value).
type rhsAssign struct {
	rhs    ast.Expr
	guards []string
}

// collection switches a walker into collect-only mode: it records the
// assignments to one local variable instead of emitting events.
type collection struct {
	name string
	out  []rhsAssign
}

// walker interprets one trigger binding over the handler call graph. env
// maps rendered expression text (e.g. "msg.Type") to known constant
// values and bools to known condition outcomes; both drive branch pruning
// so each trigger only sees the paths it can actually take.
type walker struct {
	x       *extractor
	env     map[string]int64
	bools   map[string]bool
	events  []*event
	stack   map[string]bool
	collect *collection
}

func (x *extractor) newWalker() *walker {
	return &walker{
		x:     x,
		env:   map[string]int64{},
		bools: map[string]bool{},
		stack: map[string]bool{},
	}
}

func (w *walker) emit(ev *event) {
	if w.collect == nil {
		w.events = append(w.events, ev)
	}
}

// walkFunc walks one controller method body under the given guard stack.
func (w *walker) walkFunc(fd *ast.FuncDecl, g []string) {
	name := fd.Name.Name
	if w.stack[name] {
		w.x.problemf("recursive handler call via %s", name)
		return
	}
	w.stack[name] = true
	w.walkStmts(fd.Body.List, g, name)
	delete(w.stack, name)
}

// walkStmts interprets a statement list: structured control flow extends
// the guard stack (pruned where the trigger binding decides a branch);
// everything else is scanned for charge/send/update/dir-write actions.
func (w *walker) walkStmts(list []ast.Stmt, g []string, fn string) {
	for _, s := range list {
		switch s := s.(type) {
		case *ast.IfStmt:
			if s.Init != nil {
				w.scanStmt(s.Init, g, fn)
			}
			cond := w.x.render(s.Cond)
			if v, known := w.eval(s.Cond); known {
				if v {
					w.walkStmts(s.Body.List, g, fn)
					if terminates(s.Body.List) {
						return
					}
				} else if s.Else != nil {
					if w.walkElse(s.Else, g, fn) {
						return
					}
				}
				continue
			}
			w.walkStmts(s.Body.List, guardsPlus(g, cond), fn)
			if s.Else != nil {
				et := w.walkElse(s.Else, guardsPlus(g, neg(cond)), fn)
				if terminates(s.Body.List) && et {
					return
				}
			} else if terminates(s.Body.List) {
				// the fall-through path implies the condition was false
				g = guardsPlus(g, neg(cond))
			}
		case *ast.SwitchStmt:
			w.walkSwitch(s, g, fn)
		case *ast.BlockStmt:
			w.walkStmts(s.List, g, fn)
		case *ast.ForStmt:
			w.walkStmts(s.Body.List, g, fn)
		case *ast.RangeStmt:
			w.walkStmts(s.Body.List, g, fn)
		case *ast.ReturnStmt:
			w.scanStmt(s, g, fn)
			return
		default:
			w.scanStmt(s, g, fn)
		}
	}
}

// walkElse walks an else arm and reports whether it always terminates.
func (w *walker) walkElse(s ast.Stmt, g []string, fn string) bool {
	switch s := s.(type) {
	case *ast.BlockStmt:
		w.walkStmts(s.List, g, fn)
		return terminates(s.List)
	case *ast.IfStmt:
		w.walkStmts([]ast.Stmt{s}, g, fn)
		return terminates(s.Body.List) && s.Else != nil && elseTerminates(s.Else)
	}
	return false
}

// walkSwitch handles both tag switches (pruned exactly when the trigger
// binding pins the tag) and tagless switches (an if/else-if chain with
// first-match semantics).
func (w *walker) walkSwitch(s *ast.SwitchStmt, g []string, fn string) {
	if s.Init != nil {
		w.scanStmt(s.Init, g, fn)
	}
	var def *ast.CaseClause
	var clauses []*ast.CaseClause
	for _, c := range s.Body.List {
		cc := c.(*ast.CaseClause)
		if cc.List == nil {
			def = cc
		} else {
			clauses = append(clauses, cc)
		}
	}
	if s.Tag != nil {
		tag := w.x.render(s.Tag)
		if tv, ok := w.env[tag]; ok {
			for _, cc := range clauses {
				for _, e := range cc.List {
					if cv, ok := w.x.constVal(e); ok && cv == tv {
						w.walkStmts(cc.Body, g, fn)
						return
					}
				}
			}
			if def != nil {
				w.walkStmts(def.Body, g, fn)
			}
			return
		}
		var all []string
		for _, cc := range clauses {
			var ors []string
			for _, e := range cc.List {
				ors = append(ors, tag+" == "+w.x.render(e))
			}
			all = append(all, ors...)
			w.walkStmts(cc.Body, guardsPlus(g, parenOr(ors)), fn)
		}
		if def != nil {
			w.walkStmts(def.Body, guardsPlus(g, neg(parenOr(all))), fn)
		}
		return
	}
	rem := g
	for _, cc := range clauses {
		var ors []string
		anyTrue, allFalse := false, true
		for _, e := range cc.List {
			ors = append(ors, w.x.render(e))
			v, known := w.eval(e)
			if known && v {
				anyTrue = true
			}
			if !known || v {
				allFalse = false
			}
		}
		if anyTrue {
			w.walkStmts(cc.Body, rem, fn)
			return
		}
		if allFalse {
			continue
		}
		cond := parenOr(ors)
		w.walkStmts(cc.Body, guardsPlus(rem, cond), fn)
		rem = guardsPlus(rem, neg(cond))
	}
	if def != nil {
		w.walkStmts(def.Body, rem, fn)
	}
}

// ---- statement scanning ----------------------------------------------------

func (w *walker) scanStmt(s ast.Stmt, g []string, fn string) {
	w.scanNode(s, g, fn, false)
}

// scanNode inspects a simple statement (or a function-literal body) for
// actions. lit marks positions inside a function literal: sends there may
// run after the dispatch window, so they are flagged deferred.
func (w *walker) scanNode(n ast.Node, g []string, fn string, lit bool) {
	ast.Inspect(n, func(node ast.Node) bool {
		switch nn := node.(type) {
		case *ast.FuncLit:
			w.scanNode(nn.Body, g, fn, true)
			return false
		case *ast.CallExpr:
			w.handleCall(nn, g, fn, lit)
			return true
		case *ast.AssignStmt:
			w.noteAssign(nn, g, fn, lit)
			return true
		case *ast.IncDecStmt:
			w.noteIncDec(nn, g, fn, lit)
			return true
		case *ast.ValueSpec:
			if w.collect != nil && len(nn.Values) == 0 {
				for _, id := range nn.Names {
					if id.Name == w.collect.name {
						w.collect.out = append(w.collect.out, rhsAssign{guards: g})
					}
				}
			}
			return true
		}
		return true
	})
}

// handleCall classifies a call: the charge and send primitives emit
// events, charging methods are walked inline (propagating constant
// argument bindings), and non-charging helpers contribute their
// transitive effect summary.
func (w *walker) handleCall(call *ast.CallExpr, g []string, fn string, lit bool) {
	if w.collect != nil {
		return
	}
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "delete" && len(call.Args) == 2 {
		if t := w.x.render(call.Args[0]); t == "cc.homeOps" || t == "cc.mshr" {
			w.emit(&event{kind: evUpdate, fn: fn, guards: g, text: updateText(w.x.render(call), lit)})
		}
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	recv := w.x.render(sel.X)
	name := sel.Sel.Name
	if recv == "cc.dir" && name == "Write" && len(call.Args) == 3 {
		w.emit(&event{kind: evDirWrite, fn: fn, guards: g, texts: w.entryStates("write", call.Args[2], fn)})
		return
	}
	if recv != "cc" {
		return
	}
	switch name {
	case "charge":
		if lit {
			w.x.problemf("%s: cc.charge inside a function literal is not extractable", fn)
			return
		}
		if len(call.Args) == 0 {
			w.x.problemf("%s: cc.charge without arguments", fn)
			return
		}
		w.emit(&event{kind: evCharge, fn: fn, guards: g, variants: w.handlerVariants(call.Args[0], fn)})
	case "send":
		if len(call.Args) != 3 {
			w.x.problemf("%s: cc.send with %d args", fn, len(call.Args))
			return
		}
		dst := w.x.render(call.Args[1])
		for _, t := range w.msgTypes(call.Args[2], fn) {
			w.emit(&event{kind: evSend, fn: fn, guards: g, sends: []Send{{Type: t, Dst: dst, Deferred: lit}}})
		}
	default:
		decl, isMethod := w.x.methods[name]
		if !isMethod || stopSet[name] {
			return
		}
		if w.x.charging[name] {
			if lit {
				w.x.problemf("%s: call to charging method %s inside a function literal", fn, name)
				return
			}
			w.walkCallee(decl, call, g)
			return
		}
		sum := w.x.summarize(name)
		for _, s := range sum.sends {
			s.Deferred = s.Deferred || lit
			w.emit(&event{kind: evSend, fn: fn, guards: g, sends: []Send{s}})
		}
		if len(sum.dirWrites) > 0 {
			w.emit(&event{kind: evDirWrite, fn: fn, guards: g, texts: append([]string{}, sum.dirWrites...)})
		}
	}
}

// walkCallee inlines a charging callee under the caller's guards, binding
// constant arguments (e.g. ownerFetch's exclusive flag) so the callee's
// branches prune per call site.
func (w *walker) walkCallee(decl *ast.FuncDecl, call *ast.CallExpr, g []string) {
	child := &walker{
		x:     w.x,
		env:   copyInts(w.env),
		bools: copyBools(w.bools),
		stack: w.stack,
	}
	params := flattenParams(decl.Type.Params)
	for i, p := range params {
		if i >= len(call.Args) {
			break
		}
		if v, ok := w.x.boolVal(call.Args[i]); ok {
			child.bools[p] = v
		} else if v, ok := w.x.constVal(call.Args[i]); ok {
			child.env[p] = v
		}
	}
	child.walkFunc(decl, g)
	w.events = append(w.events, child.events...)
}

func (w *walker) noteAssign(a *ast.AssignStmt, g []string, fn string, lit bool) {
	// single-target definitions feed the partial evaluator
	if !lit && len(a.Lhs) == 1 && len(a.Rhs) == 1 {
		if id, ok := a.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
			if v, known := w.eval(a.Rhs[0]); known && a.Tok == token.DEFINE {
				w.bools[id.Name] = v
			} else if a.Tok == token.ASSIGN {
				// reassigned under an unpinned branch: forget what we knew
				delete(w.bools, id.Name)
			}
		}
	}
	if w.collect != nil {
		if len(a.Lhs) == 1 && len(a.Rhs) == 1 {
			if id, ok := a.Lhs[0].(*ast.Ident); ok && id.Name == w.collect.name {
				w.collect.out = append(w.collect.out, rhsAssign{rhs: a.Rhs[0], guards: g})
			}
		}
		return
	}
	emit := false
	if a.Tok == token.DEFINE {
		for _, r := range a.Rhs {
			if w.rhsTransient(r) {
				emit = true
			}
		}
	} else {
		for _, l := range a.Lhs {
			if w.isTransient(l) {
				emit = true
			}
		}
		for _, r := range a.Rhs {
			if w.rhsTransient(r) {
				emit = true
			}
		}
	}
	if emit {
		w.emit(&event{kind: evUpdate, fn: fn, guards: g, text: updateText(w.x.render(a), lit)})
		w.noteFinalDir(a, g, fn)
	}
}

func (w *walker) noteIncDec(s *ast.IncDecStmt, g []string, fn string, lit bool) {
	if w.collect != nil {
		return
	}
	if w.isTransient(s.X) {
		w.emit(&event{kind: evUpdate, fn: fn, guards: g, text: updateText(w.x.render(s), lit)})
	}
}

// noteFinalDir records directory states staged into op.finalDir (whether
// assigned directly or carried in a homeOp composite literal); retireOp
// later commits them, which summaries report as "write=final".
func (w *walker) noteFinalDir(a *ast.AssignStmt, g []string, fn string) {
	for i, lhs := range a.Lhs {
		if i >= len(a.Rhs) {
			break
		}
		rhs := a.Rhs[i]
		if strings.HasSuffix(w.x.render(lhs), ".finalDir") {
			if st := w.litStates(rhs); st != nil {
				w.emit(&event{kind: evDirWrite, fn: fn, guards: g, texts: prefixAll("final", st)})
			}
			continue
		}
		ast.Inspect(rhs, func(n ast.Node) bool {
			kv, ok := n.(*ast.KeyValueExpr)
			if !ok {
				return true
			}
			if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "finalDir" {
				if st := w.litStates(kv.Value); st != nil {
					w.emit(&event{kind: evDirWrite, fn: fn, guards: g, texts: prefixAll("final", st)})
				}
			}
			return true
		})
	}
}

// isTransient reports whether an lvalue addresses pending-operation state
// (homeOp/mshrEntry fields, the homeOps/mshr tables, the epoch counter).
func (w *walker) isTransient(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return transientType(w.x.typeText(e))
	case *ast.SelectorExpr:
		if w.x.render(e) == "cc.epochCtr" {
			return true
		}
		return transientType(w.x.typeText(e.X))
	case *ast.IndexExpr:
		t := w.x.render(e.X)
		return t == "cc.homeOps" || t == "cc.mshr"
	}
	return false
}

// rhsTransient reports whether an expression constructs pending-operation
// state (a homeOp or mshrEntry composite literal).
func (w *walker) rhsTransient(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if lit, ok := n.(*ast.CompositeLit); ok && transientType(w.x.typeText(lit)) {
			found = true
		}
		return !found
	})
	return found
}

func transientType(t string) bool {
	return strings.Contains(t, "core.homeOp") || strings.Contains(t, "core.mshrEntry")
}

// ---- value resolution ------------------------------------------------------

// handlerVariants resolves cc.charge's handler argument: either a direct
// constant, or a local variable whose guarded constant assignments become
// one variant each.
func (w *walker) handlerVariants(arg ast.Expr, fn string) []variant {
	if v, ok := w.x.constVal(arg); ok {
		return []variant{{handler: w.x.handlerName[v]}}
	}
	id, ok := arg.(*ast.Ident)
	if !ok {
		w.x.problemf("%s: unsupported cc.charge handler expression %q", fn, w.x.render(arg))
		return nil
	}
	assigns := resolveChain(w.collectAssigns(fn, id.Name))
	var out []variant
	for _, a := range assigns {
		if a.rhs == nil {
			continue // bare declaration: every path assigns before charging
		}
		v, ok := w.x.constVal(a.rhs)
		if !ok {
			w.x.problemf("%s: non-constant assignment to handler variable %s: %q", fn, id.Name, w.x.render(a.rhs))
			continue
		}
		out = append(out, variant{handler: w.x.handlerName[v], guards: a.guards})
	}
	if len(out) == 0 {
		w.x.problemf("%s: no constant assignments to handler variable %s", fn, id.Name)
		return nil
	}
	// the initial value only survives when no later guarded assignment
	// overwrote it: extend its guards with the negation of the others'
	// branch conditions (relative to the shared path prefix)
	if len(out) > 1 {
		base := out[0].guards
		allExtend := true
		var ors []string
		for _, v := range out[1:] {
			if !isPrefix(base, v.guards) {
				allExtend = false
				break
			}
			ors = append(ors, conj(v.guards[len(base):]))
		}
		if allExtend {
			out[0].guards = append(append([]string{}, base...), neg(parenOr(ors)))
		}
	}
	return out
}

// msgTypes resolves the Type field of a cc.send message literal: a direct
// constant or a local variable's possible constant values.
func (w *walker) msgTypes(arg ast.Expr, fn string) []string {
	var lit *ast.CompositeLit
	if un, ok := arg.(*ast.UnaryExpr); ok && un.Op == token.AND {
		lit, _ = un.X.(*ast.CompositeLit)
	}
	if lit == nil {
		w.x.problemf("%s: unsupported cc.send payload %q", fn, w.x.render(arg))
		return nil
	}
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok || key.Name != "Type" {
			continue
		}
		if v, ok := w.x.constVal(kv.Value); ok {
			return []string{protocol.MsgType(v).String()}
		}
		if id, ok := kv.Value.(*ast.Ident); ok {
			assigns := resolveChain(w.collectAssigns(fn, id.Name))
			var out []string
			seen := map[string]bool{}
			for _, a := range assigns {
				if a.rhs == nil {
					continue
				}
				if v, ok := w.x.constVal(a.rhs); ok {
					n := protocol.MsgType(v).String()
					if !seen[n] {
						seen[n] = true
						out = append(out, n)
					}
				}
			}
			if len(out) > 0 {
				return out
			}
		}
		w.x.problemf("%s: unresolvable message type %q", fn, w.x.render(kv.Value))
		return nil
	}
	w.x.problemf("%s: message literal without a Type field", fn)
	return nil
}

// entryStates resolves a directory entry argument of cc.dir.Write to the
// states it can commit.
func (w *walker) entryStates(prefix string, arg ast.Expr, fn string) []string {
	if strings.HasSuffix(w.x.render(arg), ".finalDir") {
		return []string{prefix + "=final"}
	}
	if st := w.litStates(arg); st != nil {
		return prefixAll(prefix, st)
	}
	if id, ok := arg.(*ast.Ident); ok {
		assigns := resolveChain(w.collectAssigns(fn, id.Name))
		var out []string
		for _, a := range assigns {
			if a.rhs == nil {
				out = append(out, directory.State(0).String())
				continue
			}
			if st := w.litStates(a.rhs); st != nil {
				out = append(out, st...)
				continue
			}
			out = append(out, w.x.render(a.rhs))
		}
		if len(out) > 0 {
			return prefixAll(prefix, out)
		}
	}
	w.x.problemf("%s: unresolvable directory entry %q", fn, w.x.render(arg))
	return nil
}

// litStates reads the State field of a directory.Entry composite literal
// (nil when the expression isn't one); a missing field is the zero state
// and a non-constant field degrades to its source text.
func (w *walker) litStates(e ast.Expr) []string {
	lit, ok := e.(*ast.CompositeLit)
	if !ok || !strings.Contains(w.x.typeText(lit), "directory.Entry") {
		return nil
	}
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "State" {
			if v, ok := w.x.constVal(kv.Value); ok {
				return []string{directory.State(v).String()}
			}
			return []string{w.x.render(kv.Value)}
		}
	}
	return []string{directory.State(0).String()}
}

// collectAssigns re-walks fn's body in collect mode (with the caller's
// trigger binding, so pruned branches stay pruned) and returns the
// assignments to name in path order.
func (w *walker) collectAssigns(fn, name string) []rhsAssign {
	decl := w.x.methods[fn]
	if decl == nil {
		return nil
	}
	child := &walker{
		x:       w.x,
		env:     copyInts(w.env),
		bools:   copyBools(w.bools),
		stack:   map[string]bool{},
		collect: &collection{name: name},
	}
	child.walkFunc(decl, nil)
	return child.collect.out
}

// resolveChain drops dead stores: a later assignment whose guard stack is
// a prefix of an earlier one's dominates it (every pruned path through the
// earlier store also reaches the later one).
func resolveChain(assigns []rhsAssign) []rhsAssign {
	var out []rhsAssign
	for i, a := range assigns {
		dead := false
		for _, b := range assigns[i+1:] {
			if isPrefix(b.guards, a.guards) {
				dead = true
				break
			}
		}
		if !dead {
			out = append(out, a)
		}
	}
	return out
}

// ---- effect summaries ------------------------------------------------------

// summarize computes the transitive sends and directory writes of a
// non-charging helper (completion closures included, flagged deferred).
func (x *extractor) summarize(name string) *summary {
	if s, ok := x.summaries[name]; ok {
		return s
	}
	s := &summary{}
	x.summaries[name] = s // pre-insert to break call cycles
	decl := x.methods[name]
	if decl == nil {
		return s
	}
	w := x.newWalker()
	var scan func(n ast.Node, lit bool)
	scan = func(n ast.Node, lit bool) {
		ast.Inspect(n, func(node ast.Node) bool {
			fl, ok := node.(*ast.FuncLit)
			if ok {
				scan(fl.Body, true)
				return false
			}
			call, ok := node.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			recv := x.render(sel.X)
			switch {
			case recv == "cc" && sel.Sel.Name == "send" && len(call.Args) == 3:
				dst := x.render(call.Args[1])
				for _, t := range w.msgTypes(call.Args[2], name) {
					s.sends = append(s.sends, Send{Type: t, Dst: dst, Deferred: lit})
				}
			case recv == "cc.dir" && sel.Sel.Name == "Write" && len(call.Args) == 3:
				s.dirWrites = append(s.dirWrites, w.entryStates("write", call.Args[2], name)...)
			case recv == "cc":
				if _, isM := x.methods[sel.Sel.Name]; isM && !stopSet[sel.Sel.Name] && sel.Sel.Name != name {
					child := x.summarize(sel.Sel.Name)
					for _, cs := range child.sends {
						cs.Deferred = cs.Deferred || lit
						s.sends = append(s.sends, cs)
					}
					s.dirWrites = append(s.dirWrites, child.dirWrites...)
				}
			}
			return true
		})
	}
	scan(decl.Body, false)
	s.sends = dedupSends(s.sends)
	s.dirWrites = dedupStrings(s.dirWrites)
	return s
}

// ---- small helpers ---------------------------------------------------------

// eval decides a condition under the walker's trigger binding. known is
// false when the binding doesn't pin the outcome (the condition stays a
// symbolic guard).
func (w *walker) eval(e ast.Expr) (val, known bool) {
	if v, ok := w.x.boolVal(e); ok {
		return v, true
	}
	switch e := e.(type) {
	case *ast.ParenExpr:
		return w.eval(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.NOT {
			if v, ok := w.eval(e.X); ok {
				return !v, true
			}
		}
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LAND:
			lv, lk := w.eval(e.X)
			rv, rk := w.eval(e.Y)
			if (lk && !lv) || (rk && !rv) {
				return false, true
			}
			if lk && rk {
				return lv && rv, true
			}
		case token.LOR:
			lv, lk := w.eval(e.X)
			rv, rk := w.eval(e.Y)
			if (lk && lv) || (rk && rv) {
				return true, true
			}
			if lk && rk {
				return false, true
			}
		case token.EQL, token.NEQ:
			lv, lk := w.intOf(e.X)
			rv, rk := w.intOf(e.Y)
			if lk && rk {
				if e.Op == token.EQL {
					return lv == rv, true
				}
				return lv != rv, true
			}
		}
	case *ast.Ident:
		if v, ok := w.bools[e.Name]; ok {
			return v, true
		}
	case *ast.SelectorExpr:
		if v, ok := w.bools[w.x.render(e)]; ok {
			return v, true
		}
	}
	return false, false
}

func (w *walker) intOf(e ast.Expr) (int64, bool) {
	if v, ok := w.x.constVal(e); ok {
		return v, true
	}
	if v, ok := w.env[w.x.render(e)]; ok {
		return v, true
	}
	return 0, false
}

// terminates reports whether a statement list never falls through.
func terminates(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	switch s := list[len(list)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.IfStmt:
		return terminates(s.Body.List) && s.Else != nil && elseTerminates(s.Else)
	}
	return false
}

func elseTerminates(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return terminates(s.List)
	case *ast.IfStmt:
		return terminates(s.Body.List) && s.Else != nil && elseTerminates(s.Else)
	}
	return false
}

func parenOr(parts []string) string {
	if len(parts) == 1 {
		return parts[0]
	}
	return "(" + strings.Join(parts, " || ") + ")"
}

func conj(guards []string) string {
	if len(guards) == 0 {
		return "true"
	}
	if len(guards) == 1 {
		return guards[0]
	}
	return "(" + strings.Join(guards, " && ") + ")"
}

func prefixAll(prefix string, in []string) []string {
	out := make([]string, 0, len(in))
	for _, s := range in {
		out = append(out, prefix+"="+s)
	}
	return out
}

func updateText(text string, lit bool) string {
	if lit {
		return "[deferred] " + text
	}
	return text
}

func flattenParams(fl *ast.FieldList) []string {
	if fl == nil {
		return nil
	}
	var out []string
	for _, f := range fl.List {
		if len(f.Names) == 0 {
			out = append(out, "_")
			continue
		}
		for _, n := range f.Names {
			out = append(out, n.Name)
		}
	}
	return out
}

func copyInts(m map[string]int64) map[string]int64 {
	out := make(map[string]int64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func copyBools(m map[string]bool) map[string]bool {
	out := make(map[string]bool, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
