// Package extract derives a guarded-action protocol model from the
// coherence-controller implementation by static analysis. It walks the
// handler methods in internal/core (via the internal/lint loader's
// go/ast + go/types pipeline) and, for every charge site a dispatch can
// reach, records the guard conditions on the path, the transient-state
// updates performed, the messages sent (synchronously or from deferred
// completion closures), the directory states written, and the occupancy
// class (the protocol.Handler charged). The result is a versioned,
// canonically serialized ccnuma-model/v1 artifact committed to the repo;
// the abstract model checker (internal/model) explores it, the
// conformance harness replays concrete simulator transitions against it,
// and the staleness gate fails `make check` when internal/core or
// internal/protocol changed without regenerating it.
package extract

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Schema is the artifact's version tag.
const Schema = "ccnuma-model/v1"

// ArtifactPath is the committed artifact's module-root-relative path.
const ArtifactPath = "ccnuma-model.json"

// Model is the extracted guarded-action protocol model.
type Model struct {
	Schema string `json:"schema"`
	// Fingerprint is the first 16 hex digits of the SHA-256 of the
	// canonical serialization with this field blanked.
	Fingerprint string `json:"fingerprint"`
	// Sources records the hash of every implementation file the model was
	// derived from; the staleness gate compares them against the tree.
	Sources  []SourceHash  `json:"sources"`
	Messages []Message     `json:"messages"`
	Handlers []HandlerInfo `json:"handlers"`
	Rules    []Rule        `json:"rules"`
}

// SourceHash pins one source file the extraction consumed.
type SourceHash struct {
	Path   string `json:"path"`
	SHA256 string `json:"sha256"`
}

// Message describes one network message type and its channel attributes.
type Message struct {
	Name        string `json:"name"`
	CarriesData bool   `json:"carriesData"`
	Nackable    bool   `json:"nackable"`
	Response    bool   `json:"response"`
}

// HandlerInfo describes one occupancy class: the handler's sub-operation
// sequence, engine-stall kind, and the index of its action sub-op.
type HandlerInfo struct {
	Name        string   `json:"name"` // const identifier, e.g. HBusReadRemote
	ID          int      `json:"id"`
	Desc        string   `json:"desc"`
	Sequence    []string `json:"sequence"`
	Stall       string   `json:"stall"`
	ActionIndex int      `json:"actionIndex"`
}

// Send is one outgoing message of a rule. Deferred marks sends reached
// through a function literal (bus-completion callbacks, scheduled
// closures, or iterator callbacks): they may execute after the handler's
// occupancy window, so the conformance harness admits them outside a
// dispatch.
type Send struct {
	Type     string `json:"type"`
	Dst      string `json:"dst"`
	Deferred bool   `json:"deferred,omitempty"`
}

// Rule is one guarded action: dispatching Trigger under Guards charges
// Handler (the occupancy class), applies Updates to the transient state,
// emits Sends, and commits DirWrites to the directory. Rules with an
// empty Handler are engine-free datapaths (the NI request-queue NACK
// bounce and the direct write-back path).
type Rule struct {
	Trigger   string   `json:"trigger"`
	Fn        string   `json:"fn"`
	Handler   string   `json:"handler"`
	Guards    []string `json:"guards"`
	Updates   []string `json:"updates,omitempty"`
	Sends     []Send   `json:"sends,omitempty"`
	DirWrites []string `json:"dirWrites,omitempty"`
}

// Canonical serializes the model with a fixed field order, two-space
// indentation, a trailing newline, and the fingerprint computed over the
// same bytes with the fingerprint field blanked.
func (m *Model) Canonical() ([]byte, error) {
	cp := *m
	cp.Fingerprint = ""
	cp.sortAll()
	blank, err := json.MarshalIndent(&cp, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("extract: serializing model: %w", err)
	}
	sum := sha256.Sum256(append(blank, '\n'))
	cp.Fingerprint = fmt.Sprintf("%x", sum[:8])
	out, err := json.MarshalIndent(&cp, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("extract: serializing model: %w", err)
	}
	return append(out, '\n'), nil
}

// sortAll puts every order-insensitive section in its canonical order.
// Messages and handlers are kept in enum order (already deterministic);
// rules sort by (trigger, fn, handler, guards) and sends by (type, dst).
func (m *Model) sortAll() {
	sort.Slice(m.Sources, func(i, j int) bool { return m.Sources[i].Path < m.Sources[j].Path })
	for _, r := range m.Rules {
		sort.Slice(r.Sends, func(i, j int) bool {
			a, b := r.Sends[i], r.Sends[j]
			if a.Type != b.Type {
				return a.Type < b.Type
			}
			if a.Dst != b.Dst {
				return a.Dst < b.Dst
			}
			return !a.Deferred && b.Deferred
		})
	}
	sort.SliceStable(m.Rules, func(i, j int) bool {
		a, b := m.Rules[i], m.Rules[j]
		if a.Trigger != b.Trigger {
			return a.Trigger < b.Trigger
		}
		if a.Fn != b.Fn {
			return a.Fn < b.Fn
		}
		if a.Handler != b.Handler {
			return a.Handler < b.Handler
		}
		return strings.Join(a.Guards, ";") < strings.Join(b.Guards, ";")
	})
}

// Write canonicalizes the model and writes it under the module root.
func (m *Model) Write(moduleRoot string) error {
	b, err := m.Canonical()
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(moduleRoot, ArtifactPath), b, 0o644)
}

// LoadArtifact reads and decodes the committed artifact.
func LoadArtifact(moduleRoot string) (*Model, []byte, error) {
	b, err := os.ReadFile(filepath.Join(moduleRoot, ArtifactPath))
	if err != nil {
		return nil, nil, err
	}
	var m Model
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, nil, fmt.Errorf("extract: decoding %s: %w", ArtifactPath, err)
	}
	if m.Schema != Schema {
		return nil, nil, fmt.Errorf("extract: %s has schema %q, want %q", ArtifactPath, m.Schema, Schema)
	}
	return &m, b, nil
}

// RuleKey is the admission key of a rule: what fired, and as what.
type RuleKey struct {
	Trigger string
	Handler string
}

// Index builds the lookup structures the checker and the conformance
// harness use: the admissible (trigger, handler) pairs with their rules,
// and the set of message types that may legally be sent outside a
// dispatch (deferred sends plus the engine-free datapath rules).
func (m *Model) Index() *Index {
	ix := &Index{
		Rules:       map[RuleKey][]*Rule{},
		HandlerByID: map[int]string{},
		HandlerID:   map[string]int{},
		Deferred:    map[string]bool{},
	}
	for _, h := range m.Handlers {
		ix.HandlerByID[h.ID] = h.Name
		ix.HandlerID[h.Name] = h.ID
	}
	for i := range m.Rules {
		r := &m.Rules[i]
		ix.Rules[RuleKey{r.Trigger, r.Handler}] = append(ix.Rules[RuleKey{r.Trigger, r.Handler}], r)
		for _, s := range r.Sends {
			if s.Deferred || r.Handler == "" {
				ix.Deferred[s.Type] = true
			}
		}
	}
	return ix
}

// Index is the decoded model's lookup view.
type Index struct {
	Rules       map[RuleKey][]*Rule
	HandlerByID map[int]string
	HandlerID   map[string]int
	// Deferred is the set of message types admissible outside a dispatch.
	Deferred map[string]bool
}

// Admits reports whether the model admits dispatching trigger as handler.
func (ix *Index) Admits(trigger, handler string) bool {
	return len(ix.Rules[RuleKey{trigger, handler}]) > 0
}

// AdmitsSend reports whether any rule for (trigger, handler) may send t.
func (ix *Index) AdmitsSend(trigger, handler, t string) bool {
	for _, r := range ix.Rules[RuleKey{trigger, handler}] {
		for _, s := range r.Sends {
			if s.Type == t {
				return true
			}
		}
	}
	return false
}
