package extract

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"sort"
	"strings"
)

// CheckStale re-runs the extractor and compares the fresh canonical
// serialization against the committed artifact. It returns a non-empty
// reason when the committed model is stale (missing, or no longer what
// the implementation extracts to) and an error when extraction itself
// fails — which is also a gate failure, since it means internal/core
// grew a pattern the extractor cannot model.
func CheckStale(moduleRoot string) (string, error) {
	fresh, err := Extract(moduleRoot)
	if err != nil {
		return "", err
	}
	fb, err := fresh.Canonical()
	if err != nil {
		return "", err
	}
	committed, cb, err := LoadArtifact(moduleRoot)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return "no committed " + ArtifactPath + "; run `ccmodel -write`", nil
		}
		return "", err
	}
	if bytes.Equal(fb, cb) {
		return "", nil
	}
	have := map[string]string{}
	for _, s := range committed.Sources {
		have[s.Path] = s.SHA256
	}
	var changed []string
	for _, s := range fresh.Sources {
		if have[s.Path] != s.SHA256 {
			changed = append(changed, s.Path)
		}
		delete(have, s.Path)
	}
	for path := range have {
		changed = append(changed, path+" (removed)")
	}
	sort.Strings(changed)
	msg := fmt.Sprintf("committed model %s is stale (fresh extraction is %s", committed.Fingerprint, fresh.Fingerprint)
	if len(changed) > 0 {
		msg += "; changed sources: " + strings.Join(dedupStrings(changed), ", ")
	}
	msg += "); run `ccmodel -write` and commit " + ArtifactPath
	return msg, nil
}
