// Package protocol defines the coherence protocol shared by all four
// controller architectures: the network message vocabulary, the protocol
// handler set of the paper's Table 4, and each handler's sub-operation
// sequence, from which handler occupancies for HWC and PPC engines are
// computed (Table 2 costs). The protocol is the paper's: full-bit-map
// directory, invalidation-based, write-back, sequentially consistent;
// remote owners respond directly to remote requesters with data, and
// invalidation acknowledgements are collected at the home node.
package protocol

import (
	"fmt"

	"ccnuma/internal/config"
	"ccnuma/internal/sim"
)

// MsgType enumerates the network messages.
type MsgType int

const (
	// MsgReadReq: requester CC -> home, read a shared copy.
	MsgReadReq MsgType = iota
	// MsgReadExReq: requester CC -> home, read an exclusive copy.
	MsgReadExReq
	// MsgFetchReq: home -> dirty owner, retrieve the line for a read;
	// Requester identifies the final destination of the data.
	MsgFetchReq
	// MsgFetchExReq: home -> dirty owner, retrieve and invalidate for an
	// exclusive request.
	MsgFetchExReq
	// MsgInval: home -> sharer, invalidate local copies.
	MsgInval
	// MsgInvalAck: sharer -> home.
	MsgInvalAck
	// MsgDataShared: home -> requester, line data, install Shared.
	MsgDataShared
	// MsgDataExcl: home -> requester, line data, install Modified.
	MsgDataExcl
	// MsgOwnerData: owner -> remote requester, line data delivered
	// directly (Excl selects shared/exclusive install).
	MsgOwnerData
	// MsgFetchDone: owner -> home after a Fetch; carries the line when
	// Dirty so the home can update memory and always ends the home's
	// transient state ("write back from owner to home in response to a
	// read request from a remote node").
	MsgFetchDone
	// MsgFetchExDone: owner -> home after a FetchEx for a remote
	// requester; ownership-transfer acknowledgement without data.
	MsgFetchExDone
	// MsgFetchDataHome: owner -> home when the home itself is the
	// requester; carries the line.
	MsgFetchDataHome
	// MsgInterventionMiss: owner -> home; the fetch found no cached copy
	// (the owner's write-back crossed the intervention in flight).
	MsgInterventionMiss
	// MsgWriteBack: evicting node -> home; dirty line data, sent through
	// the direct data path. SharedLeft reports that the evicting node
	// still holds clean copies of the line.
	MsgWriteBack
	// MsgNack: home -> requester; the home's request queue was full (or a
	// retried request hit a transient it must not join), so the request was
	// bounced without being serviced. The requester backs off and re-issues.
	// Only ReadReq/ReadExReq are ever NACKed: forwarded interventions,
	// invalidations, and all responses travel on guaranteed channels, which
	// is what keeps the NACK protocol itself deadlock-free.
	MsgNack

	numMsgTypes
)

var msgNames = [...]string{
	"ReadReq", "ReadExReq", "FetchReq", "FetchExReq", "Inval", "InvalAck",
	"DataShared", "DataExcl", "OwnerData", "FetchDone", "FetchExDone",
	"FetchDataHome", "InterventionMiss", "WriteBack", "Nack",
}

func (t MsgType) String() string {
	if t >= 0 && int(t) < len(msgNames) {
		return msgNames[t]
	}
	return fmt.Sprintf("MsgType(%d)", int(t))
}

// NumMsgTypes is the number of message types.
const NumMsgTypes = int(numMsgTypes)

// Msg is one protocol message.
type Msg struct {
	Type MsgType
	Line uint64
	Src  int // sending node
	// Requester is the node that should ultimately receive data for
	// forwarded requests (Fetch/FetchEx), and the original requester for
	// data responses.
	Requester int
	// Excl marks OwnerData as an exclusive (read-exclusive) response.
	Excl bool
	// Dirty marks FetchDone/FetchDataHome data as dirty (home must write
	// memory).
	Dirty bool
	// SharedLeft on WriteBack: the evicting node retains clean copies.
	SharedLeft bool
	// Retry marks a ReadReq/ReadExReq re-issued after a NACK or a request
	// timeout. The home must treat it idempotently: the original request may
	// already have been serviced, so a retry that finds the requester listed
	// as the dirty owner is NACKed instead of parked awaiting a write-back.
	Retry bool
	// Epoch tags a request episode at the requester (one MSHR lifetime).
	// The home echoes it in grants and NACKs so the requester can discard
	// responses that belong to an episode a retried request has already
	// closed. It rides along at zero timing cost and is only consulted
	// when the robustness knobs are on.
	Epoch uint32
	// Data is the cache-line value carried by data-bearing messages. The
	// simulator models one shadow word per line (enough to detect stale
	// reads and lost write-backs); it rides along with the timing model at
	// zero cost and is checked by the ccverify model checker.
	Data uint64
	// Txn is the causal-span transaction ID of the miss episode this
	// message serves (zero for untracked traffic: fan-out invalidations,
	// completion acks, write-backs). Like Epoch and Data it rides along at
	// zero timing cost; it is only consulted when attribution is on.
	Txn uint64
}

// CarriesData reports whether the message includes a full cache line (and
// therefore occupies data-size flits on the network).
func (m *Msg) CarriesData() bool {
	switch m.Type {
	case MsgDataShared, MsgDataExcl, MsgOwnerData, MsgFetchDataHome, MsgWriteBack:
		return true
	case MsgFetchDone:
		return m.Dirty
	case MsgReadReq, MsgReadExReq, MsgFetchReq, MsgFetchExReq, MsgInval,
		MsgInvalAck, MsgFetchExDone, MsgInterventionMiss, MsgNack:
		return false
	default:
		panic(fmt.Sprintf("protocol: CarriesData on unknown message %v", m.Type))
	}
}

// Nackable reports whether a full input queue may bounce this message back
// to its requester. Only home-bound read/read-exclusive requests qualify;
// everything else rides a guaranteed channel (see MsgNack).
func (m *Msg) Nackable() bool {
	return m.Type == MsgReadReq || m.Type == MsgReadExReq
}

// IsResponse reports whether the message belongs in the controller's
// network-side response queue (highest dispatch priority: these are the
// transactions nearest to completion).
func (m *Msg) IsResponse() bool {
	switch m.Type {
	case MsgDataShared, MsgDataExcl, MsgOwnerData, MsgFetchDone,
		MsgFetchExDone, MsgFetchDataHome, MsgInvalAck, MsgInterventionMiss,
		MsgNack:
		return true
	case MsgReadReq, MsgReadExReq, MsgFetchReq, MsgFetchExReq, MsgInval,
		MsgWriteBack:
		return false
	default:
		panic(fmt.Sprintf("protocol: IsResponse on unknown message %v", m.Type))
	}
}

// TraceName lets the network's tracer label this payload (obs.TraceDescriber).
func (m *Msg) TraceName() string { return m.Type.String() }

// TraceLine reports the cache line for tracing (obs.TraceDescriber).
func (m *Msg) TraceLine() uint64 { return m.Line }

// SpanTxn exposes the message's transaction ID and episode epoch for span
// checkpointing (obs.SpanDescriber).
func (m *Msg) SpanTxn() (uint64, uint32) { return m.Txn, m.Epoch }

// Flits returns the network occupancy of the message under cfg.
func (m *Msg) Flits(cfg *config.Config) int {
	if m.CarriesData() {
		return cfg.LineDataFlits()
	}
	return cfg.ControlFlits()
}

// Handler identifies a protocol handler (the rows of Table 4, plus the few
// bookkeeping handlers the table omits).
type Handler int

const (
	// HBusReadRemote: local processor read miss to a remote line.
	HBusReadRemote Handler = iota
	// HBusReadExRemote: local processor write miss to a remote line.
	HBusReadExRemote
	// HBusReadLocalDirtyRemote: local read of a local line dirty in a
	// remote node.
	HBusReadLocalDirtyRemote
	// HBusReadExLocalCachedRemote: local read-exclusive of a local line
	// cached (shared) in remote nodes.
	HBusReadExLocalCachedRemote
	// HBusReadExLocalDirtyRemote: local read-exclusive of a local line
	// dirty in a remote node.
	HBusReadExLocalDirtyRemote
	// HRemoteReadHomeClean: read request arriving at home, line clean.
	HRemoteReadHomeClean
	// HRemoteReadHomeDirty: read request arriving at home, line dirty at
	// a third node (forward).
	HRemoteReadHomeDirty
	// HRemoteReadExHomeUncached: read-exclusive at home, no remote copies.
	HRemoteReadExHomeUncached
	// HRemoteReadExHomeShared: read-exclusive at home, remote sharers to
	// invalidate.
	HRemoteReadExHomeShared
	// HRemoteReadExHomeDirty: read-exclusive at home, dirty at a third
	// node (forward).
	HRemoteReadExHomeDirty
	// HFetchOwnerFromHome: fetch (read) at the owner, home is requester.
	HFetchOwnerFromHome
	// HFetchOwnerRemoteReq: fetch (read) at the owner, remote requester.
	HFetchOwnerRemoteReq
	// HFetchExOwnerFromHome: fetch-exclusive at the owner, home is
	// requester.
	HFetchExOwnerFromHome
	// HFetchExOwnerRemoteReq: fetch-exclusive at the owner, remote
	// requester.
	HFetchExOwnerRemoteReq
	// HOwnerDataAtHomeRead: data response from owner arriving at home
	// (home was the requester of a read).
	HOwnerDataAtHomeRead
	// HOwnerWBAtHomeRead: sharing write-back from owner arriving at home
	// closing a remote-requester read.
	HOwnerWBAtHomeRead
	// HOwnerDataAtHomeReadEx: data response from owner arriving at home
	// (home was the requester of a read-exclusive).
	HOwnerDataAtHomeReadEx
	// HOwnerAckAtHome: ownership-transfer ack from owner arriving at home
	// closing a remote-requester read-exclusive.
	HOwnerAckAtHome
	// HInvalAtSharer: invalidation request arriving at a sharer.
	HInvalAtSharer
	// HInvalAckMore: invalidation ack at home, more outstanding.
	HInvalAckMore
	// HInvalAckLastLocal: last invalidation ack at home, local requester.
	HInvalAckLastLocal
	// HInvalAckLastRemote: last invalidation ack at home, remote
	// requester.
	HInvalAckLastRemote
	// HDataRespRead: data response arriving at the requester (read).
	HDataRespRead
	// HDataRespReadEx: data response arriving at the requester
	// (read-exclusive).
	HDataRespReadEx
	// HWriteBackAtHome: eviction write-back arriving at home.
	HWriteBackAtHome
	// HInterventionMissAtHome: intervention-miss notice arriving at home.
	HInterventionMissAtHome
	// HBusyRequeue: a request dequeued while its line is in a transient
	// state; checked and parked on the waiter list.
	HBusyRequeue
	// HNackAtRequester: a NACK (or a stray/duplicate response a retried
	// request has made possible) arriving back at the requester; checked
	// against the MSHR and either scheduled for backed-off re-issue or
	// dropped.
	HNackAtRequester

	numHandlers
)

var handlerNames = [...]string{
	"bus read remote",
	"bus read exclusive remote",
	"bus read local (dirty remote)",
	"bus read excl. local (cached remote)",
	"bus read excl. local (dirty remote)",
	"remote read to home (clean)",
	"remote read to home (dirty remote)",
	"remote read excl. to home (uncached remote)",
	"remote read excl. to home (shared remote)",
	"remote read excl. to home (dirty remote)",
	"read from remote owner (request from home)",
	"read from remote owner (remote requester)",
	"read excl. from remote owner (request from home)",
	"read excl. from remote owner (remote requester)",
	"data response from owner to a read request from home",
	"write back from owner to home in response to a read req. from remote node",
	"data response from owner to a read excl. request from home",
	"ack. from owner to home in response to a read excl. request from remote node",
	"invalidation request from home to sharer",
	"inv. acknowledgment (more expected)",
	"inv. ack. (last ack, local request)",
	"inv. ack. (last ack, remote request)",
	"data in response to a remote read request",
	"data in response to a remote read excl. request",
	"write back from owner to home (eviction)",
	"intervention miss notice at home",
	"busy-line requeue",
	"nack or stray response at requester",
}

func (h Handler) String() string {
	if h >= 0 && int(h) < len(handlerNames) {
		return handlerNames[h]
	}
	return fmt.Sprintf("Handler(%d)", int(h))
}

// NumHandlers is the number of handler kinds.
const NumHandlers = int(numHandlers)

// Table4Handlers lists the handlers that appear in the paper's Table 4, in
// its row order.
var Table4Handlers = []Handler{
	HBusReadRemote, HBusReadExRemote, HBusReadLocalDirtyRemote,
	HBusReadExLocalCachedRemote, HRemoteReadHomeClean, HRemoteReadHomeDirty,
	HRemoteReadExHomeUncached, HRemoteReadExHomeShared, HRemoteReadExHomeDirty,
	HFetchOwnerFromHome, HFetchOwnerRemoteReq, HFetchExOwnerFromHome,
	HFetchExOwnerRemoteReq, HOwnerDataAtHomeRead, HOwnerWBAtHomeRead,
	HOwnerDataAtHomeReadEx, HOwnerAckAtHome, HInvalAtSharer, HInvalAckMore,
	HInvalAckLastLocal, HInvalAckLastRemote, HDataRespRead, HDataRespReadEx,
}

// sequences gives each handler's fixed sub-operation sequence. Handlers
// with per-sharer work (invalidation fan-out) charge the extra sub-ops
// separately via PerInvalOps. Dispatch (OpDispatch) is charged by the
// engine, not listed here.
var sequences = [numHandlers][]config.SubOp{
	HBusReadRemote: {
		config.OpLatchHeader, config.OpAssocSearch, config.OpBitField,
		config.OpSendHeader,
	},
	HBusReadExRemote: {
		config.OpLatchHeader, config.OpAssocSearch, config.OpBitField,
		config.OpSendHeader,
	},
	HBusReadLocalDirtyRemote: {
		config.OpLatchHeader, config.OpDirCacheRead, config.OpCondition,
		config.OpBitField, config.OpSendHeader, config.OpDirCacheWrite,
	},
	HBusReadExLocalCachedRemote: {
		config.OpLatchHeader, config.OpDirCacheRead, config.OpCondition,
		config.OpBitField, config.OpWriteBusReg, config.OpDirCacheWrite,
	},
	HBusReadExLocalDirtyRemote: {
		config.OpLatchHeader, config.OpDirCacheRead, config.OpCondition,
		config.OpBitField, config.OpSendHeader, config.OpDirCacheWrite,
	},
	HRemoteReadHomeClean: {
		config.OpLatchHeader, config.OpDirCacheRead, config.OpCondition,
		config.OpWriteBusReg, config.OpStartDataXfer, config.OpBitField,
		config.OpDirCacheWrite,
	},
	HRemoteReadHomeDirty: {
		config.OpLatchHeader, config.OpDirCacheRead, config.OpCondition,
		config.OpBitField, config.OpSendHeader, config.OpDirCacheWrite,
	},
	HRemoteReadExHomeUncached: {
		config.OpLatchHeader, config.OpDirCacheRead, config.OpCondition,
		config.OpWriteBusReg, config.OpStartDataXfer, config.OpBitField,
		config.OpDirCacheWrite,
	},
	HRemoteReadExHomeShared: {
		config.OpLatchHeader, config.OpDirCacheRead, config.OpCondition,
		config.OpWriteBusReg, config.OpBitField, config.OpDirCacheWrite,
	},
	HRemoteReadExHomeDirty: {
		config.OpLatchHeader, config.OpDirCacheRead, config.OpCondition,
		config.OpBitField, config.OpSendHeader, config.OpDirCacheWrite,
	},
	HFetchOwnerFromHome: {
		config.OpLatchHeader, config.OpCondition, config.OpWriteBusReg,
		config.OpStartDataXfer,
	},
	HFetchOwnerRemoteReq: {
		config.OpLatchHeader, config.OpCondition, config.OpWriteBusReg,
		config.OpStartDataXfer, config.OpSendHeader,
	},
	HFetchExOwnerFromHome: {
		config.OpLatchHeader, config.OpCondition, config.OpWriteBusReg,
		config.OpStartDataXfer,
	},
	HFetchExOwnerRemoteReq: {
		config.OpLatchHeader, config.OpCondition, config.OpWriteBusReg,
		config.OpStartDataXfer, config.OpSendHeader,
	},
	HOwnerDataAtHomeRead: {
		config.OpLatchHeader, config.OpAssocSearch, config.OpWriteBusReg,
		config.OpStartDataXfer, config.OpDirCacheWrite, config.OpBitField,
	},
	HOwnerWBAtHomeRead: {
		config.OpLatchHeader, config.OpAssocSearch, config.OpCondition,
		config.OpWriteBusReg, config.OpDirCacheWrite, config.OpBitField,
	},
	HOwnerDataAtHomeReadEx: {
		config.OpLatchHeader, config.OpAssocSearch, config.OpWriteBusReg,
		config.OpStartDataXfer, config.OpDirCacheWrite, config.OpBitField,
	},
	HOwnerAckAtHome: {
		config.OpLatchHeader, config.OpAssocSearch, config.OpCondition,
		config.OpDirCacheWrite, config.OpBitField,
	},
	HInvalAtSharer: {
		config.OpLatchHeader, config.OpCondition, config.OpWriteBusReg,
		config.OpSendHeader,
	},
	HInvalAckMore: {
		config.OpLatchHeader, config.OpAssocSearch, config.OpBitField,
		config.OpCondition,
	},
	HInvalAckLastLocal: {
		config.OpLatchHeader, config.OpAssocSearch, config.OpBitField,
		config.OpCondition, config.OpWriteBusReg, config.OpDirCacheWrite,
	},
	HInvalAckLastRemote: {
		config.OpLatchHeader, config.OpAssocSearch, config.OpBitField,
		config.OpCondition, config.OpStartDataXfer, config.OpDirCacheWrite,
	},
	HDataRespRead: {
		config.OpLatchHeader, config.OpAssocSearch, config.OpWriteBusReg,
		config.OpStartDataXfer,
	},
	HDataRespReadEx: {
		config.OpLatchHeader, config.OpAssocSearch, config.OpWriteBusReg,
		config.OpStartDataXfer,
	},
	HWriteBackAtHome: {
		config.OpLatchHeader, config.OpCondition, config.OpWriteBusReg,
		config.OpDirCacheWrite, config.OpBitField,
	},
	HInterventionMissAtHome: {
		config.OpLatchHeader, config.OpAssocSearch, config.OpCondition,
		config.OpBitField,
	},
	HBusyRequeue: {
		config.OpLatchHeader, config.OpCondition, config.OpBitField,
	},
	HNackAtRequester: {
		config.OpLatchHeader, config.OpAssocSearch, config.OpCondition,
	},
}

// PerInvalOps is charged once per invalidation sent by the fan-out
// handlers (extract next sharer from the bit map, compose and send the
// message header).
var PerInvalOps = []config.SubOp{config.OpBitField, config.OpSendHeader}

// Occupancy returns the no-contention occupancy of handler h on engine
// kind k, excluding dispatch (charge OpDispatch separately) and assuming a
// directory-cache hit. extraInvals counts invalidations sent beyond the
// handler's base sequence.
func Occupancy(costs *config.CostTable, k config.EngineKind, h Handler, extraInvals int) sim.Time {
	var t sim.Time
	for _, op := range sequences[h] {
		t += costs.Cost(k, op)
	}
	for i := 0; i < extraInvals; i++ {
		for _, op := range PerInvalOps {
			t += costs.Cost(k, op)
		}
	}
	return t
}

// Sequence returns a copy of the handler's sub-operation sequence (for
// reports).
func Sequence(h Handler) []config.SubOp {
	seq := sequences[h]
	out := make([]config.SubOp, len(seq))
	copy(out, seq)
	return out
}

// PrefixOccupancy returns the occupancy of the first n sub-operations of
// handler h: the latency-critical prefix through which the handler's
// externally visible action (bus request, network send) is issued. The
// remaining sub-operations (directory update, bookkeeping) are postponed
// until after the response, as the paper's handlers do.
func PrefixOccupancy(costs *config.CostTable, k config.EngineKind, h Handler, n int) sim.Time {
	seq := sequences[h]
	if n > len(seq) {
		n = len(seq)
	}
	var t sim.Time
	for _, op := range seq[:n] {
		t += costs.Cost(k, op)
	}
	return t
}

// StallKind classifies the bus/memory access a handler performs while the
// protocol engine waits (the paper's handler occupancies include "SMP bus
// and local memory access times").
type StallKind int

const (
	// StallNone: the handler issues messages only.
	StallNone StallKind = iota
	// StallHomeFetch: the handler fetches the line from home memory (or
	// the home node's caches) over the local SMP bus.
	StallHomeFetch
	// StallOwnerFetch: the handler retrieves the line from the owner
	// node's caches via a cache-to-cache bus transfer.
	StallOwnerFetch
)

// String names the stall class.
func (k StallKind) String() string {
	switch k {
	case StallNone:
		return "none"
	case StallHomeFetch:
		return "home-fetch"
	case StallOwnerFetch:
		return "owner-fetch"
	default:
		panic(fmt.Sprintf("protocol: unknown stall kind %d", int(k)))
	}
}

// Stall returns the bus/memory stall class of handler h (for the common
// case; state-dependent fallback paths charge their own).
func Stall(h Handler) StallKind {
	switch h {
	case HRemoteReadHomeClean, HRemoteReadExHomeUncached, HRemoteReadExHomeShared:
		return StallHomeFetch
	case HFetchOwnerFromHome, HFetchOwnerRemoteReq, HFetchExOwnerFromHome, HFetchExOwnerRemoteReq:
		return StallOwnerFetch
	case HBusReadRemote, HBusReadExRemote, HBusReadLocalDirtyRemote,
		HBusReadExLocalCachedRemote, HBusReadExLocalDirtyRemote,
		HRemoteReadHomeDirty, HRemoteReadExHomeDirty,
		HOwnerDataAtHomeRead, HOwnerWBAtHomeRead, HOwnerDataAtHomeReadEx,
		HOwnerAckAtHome, HInvalAtSharer, HInvalAckMore, HInvalAckLastLocal,
		HInvalAckLastRemote, HDataRespRead, HDataRespReadEx,
		HWriteBackAtHome, HInterventionMissAtHome, HBusyRequeue,
		HNackAtRequester:
		return StallNone
	default:
		panic(fmt.Sprintf("protocol: Stall on unknown handler %v", h))
	}
}

// StallTime returns the no-contention engine stall for a stall class under
// cfg: the bus arbitration plus data delivery to the controller's
// interface. Contention beyond this is modelled (and paid) at the bus and
// memory banks themselves.
func StallTime(cfg *config.Config, k StallKind) sim.Time {
	switch k {
	case StallHomeFetch:
		return cfg.BusArb + cfg.MemAccess + cfg.CriticalQuad
	case StallOwnerFetch:
		return cfg.BusArb + cfg.CacheToCache + cfg.CriticalQuad
	case StallNone:
		return 0
	default:
		panic(fmt.Sprintf("protocol: unknown stall kind %d", int(k)))
	}
}

// ActionIndex returns the index into h's sequence *after* which the
// handler's external action (bus transaction or network send) is
// considered issued; PrefixOccupancy(costs, k, h, ActionIndex(h)) is the
// dispatch-to-action latency.
func ActionIndex(h Handler) int {
	seq := sequences[h]
	// The action is issued by the last OpWriteBusReg / OpSendHeader /
	// OpStartDataXfer before any trailing bookkeeping; scanning from the
	// end, find the last action op.
	for i := len(seq) - 1; i >= 0; i-- {
		switch seq[i] {
		case config.OpWriteBusReg, config.OpSendHeader, config.OpStartDataXfer:
			return i + 1
		}
	}
	return len(seq)
}
