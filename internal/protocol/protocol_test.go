package protocol

import (
	"testing"

	"ccnuma/internal/config"
)

func TestMsgClassification(t *testing.T) {
	responses := []MsgType{MsgDataShared, MsgDataExcl, MsgOwnerData, MsgFetchDone,
		MsgFetchExDone, MsgFetchDataHome, MsgInvalAck, MsgInterventionMiss,
		MsgNack}
	requests := []MsgType{MsgReadReq, MsgReadExReq, MsgFetchReq, MsgFetchExReq,
		MsgInval, MsgWriteBack}
	for _, mt := range responses {
		m := Msg{Type: mt}
		if !m.IsResponse() {
			t.Errorf("%v should be a response", mt)
		}
	}
	for _, mt := range requests {
		m := Msg{Type: mt}
		if m.IsResponse() {
			t.Errorf("%v should be a request", mt)
		}
	}
	if len(responses)+len(requests) != NumMsgTypes {
		t.Fatalf("classification covers %d of %d message types",
			len(responses)+len(requests), NumMsgTypes)
	}
}

func TestMsgDataSizes(t *testing.T) {
	cfg := config.Base()
	data := []Msg{
		{Type: MsgDataShared}, {Type: MsgDataExcl}, {Type: MsgOwnerData},
		{Type: MsgFetchDataHome}, {Type: MsgWriteBack},
		{Type: MsgFetchDone, Dirty: true},
	}
	control := []Msg{
		{Type: MsgReadReq}, {Type: MsgInval}, {Type: MsgInvalAck},
		{Type: MsgFetchDone, Dirty: false}, {Type: MsgFetchExDone},
		{Type: MsgInterventionMiss}, {Type: MsgNack},
	}
	for _, m := range data {
		if !m.CarriesData() || m.Flits(&cfg) != cfg.LineDataFlits() {
			t.Errorf("%v (dirty=%v) should carry data", m.Type, m.Dirty)
		}
	}
	for _, m := range control {
		if m.CarriesData() || m.Flits(&cfg) != cfg.ControlFlits() {
			t.Errorf("%v (dirty=%v) should be control-size", m.Type, m.Dirty)
		}
	}
}

func TestOccupancyHWCvsPPC(t *testing.T) {
	costs := config.DefaultCosts()
	for h := Handler(0); h < Handler(NumHandlers); h++ {
		hwc := Occupancy(&costs, config.HWC, h, 0)
		ppc := Occupancy(&costs, config.PPC, h, 0)
		if hwc <= 0 || ppc <= 0 {
			t.Errorf("%v: non-positive occupancy hwc=%d ppc=%d", h, hwc, ppc)
		}
		if ppc <= hwc {
			t.Errorf("%v: PPC occupancy %d not greater than HWC %d", h, ppc, hwc)
		}
	}
}

// The paper observes the total PPC/HWC occupancy ratio is roughly constant
// around 2.5 across applications; the per-handler sequences should average
// in that neighbourhood.
func TestAggregateOccupancyRatio(t *testing.T) {
	costs := config.DefaultCosts()
	var hwc, ppc float64
	for _, h := range Table4Handlers {
		// Include dispatch, as the paper's occupancies do.
		hwc += float64(costs.Cost(config.HWC, config.OpDispatch) + Occupancy(&costs, config.HWC, h, 0))
		ppc += float64(costs.Cost(config.PPC, config.OpDispatch) + Occupancy(&costs, config.PPC, h, 0))
	}
	ratio := ppc / hwc
	if ratio < 2.2 || ratio > 3.6 {
		t.Fatalf("aggregate PPC/HWC handler occupancy ratio = %.2f, want in the paper's ~2.5 neighbourhood", ratio)
	}
}

func TestExtraInvalsIncreaseOccupancy(t *testing.T) {
	costs := config.DefaultCosts()
	base := Occupancy(&costs, config.PPC, HRemoteReadExHomeShared, 0)
	with3 := Occupancy(&costs, config.PPC, HRemoteReadExHomeShared, 3)
	perInval := Occupancy(&costs, config.PPC, HRemoteReadExHomeShared, 1) - base
	if with3 != base+3*perInval {
		t.Fatalf("inval fan-out not linear: base=%d with3=%d per=%d", base, with3, perInval)
	}
	if perInval <= 0 {
		t.Fatal("per-inval cost should be positive")
	}
}

func TestActionIndexAndPrefix(t *testing.T) {
	costs := config.DefaultCosts()
	for _, h := range Table4Handlers {
		idx := ActionIndex(h)
		if idx <= 0 || idx > len(Sequence(h)) {
			t.Errorf("%v: action index %d out of range", h, idx)
		}
		prefix := PrefixOccupancy(&costs, config.HWC, h, idx)
		full := Occupancy(&costs, config.HWC, h, 0)
		if prefix > full {
			t.Errorf("%v: prefix %d exceeds full occupancy %d", h, prefix, full)
		}
	}
	// PrefixOccupancy clamps n.
	if PrefixOccupancy(&costs, config.HWC, HBusReadRemote, 100) != Occupancy(&costs, config.HWC, HBusReadRemote, 0) {
		t.Error("PrefixOccupancy should clamp to the full sequence")
	}
}

func TestSequenceReturnsCopy(t *testing.T) {
	seq := Sequence(HBusReadRemote)
	if len(seq) == 0 {
		t.Fatal("empty sequence")
	}
	seq[0] = config.OpCompute
	if Sequence(HBusReadRemote)[0] == config.OpCompute {
		t.Fatal("Sequence exposed internal storage")
	}
}

func TestStringers(t *testing.T) {
	for h := Handler(0); h < Handler(NumHandlers); h++ {
		if h.String() == "" {
			t.Errorf("handler %d has no name", int(h))
		}
	}
	for m := MsgType(0); m < MsgType(NumMsgTypes); m++ {
		if m.String() == "" {
			t.Errorf("msg type %d has no name", int(m))
		}
	}
	if len(Table4Handlers) != 23 {
		t.Fatalf("Table 4 has %d handlers, want 23", len(Table4Handlers))
	}
}

func TestStallClassification(t *testing.T) {
	cfg := config.Base()
	homeFetch := []Handler{HRemoteReadHomeClean, HRemoteReadExHomeUncached, HRemoteReadExHomeShared}
	ownerFetch := []Handler{HFetchOwnerFromHome, HFetchOwnerRemoteReq, HFetchExOwnerFromHome, HFetchExOwnerRemoteReq}
	for _, h := range homeFetch {
		if Stall(h) != StallHomeFetch {
			t.Errorf("%v should stall on a home fetch", h)
		}
	}
	for _, h := range ownerFetch {
		if Stall(h) != StallOwnerFetch {
			t.Errorf("%v should stall on an owner fetch", h)
		}
	}
	// Forwarding and response handlers stall on nothing.
	for _, h := range []Handler{HRemoteReadHomeDirty, HDataRespRead, HInvalAckMore, HBusReadRemote} {
		if Stall(h) != StallNone {
			t.Errorf("%v should not stall", h)
		}
	}
	// Home fetches include the memory access; owner fetches the c2c time.
	if StallTime(&cfg, StallHomeFetch) != cfg.BusArb+cfg.MemAccess+cfg.CriticalQuad {
		t.Error("home fetch stall wrong")
	}
	if StallTime(&cfg, StallOwnerFetch) != cfg.BusArb+cfg.CacheToCache+cfg.CriticalQuad {
		t.Error("owner fetch stall wrong")
	}
	if StallTime(&cfg, StallNone) != 0 {
		t.Error("no-stall should cost 0")
	}
}
