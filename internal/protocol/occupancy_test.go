package protocol_test

import (
	"testing"

	"ccnuma/internal/config"
	"ccnuma/internal/protocol"
	"ccnuma/internal/sim"
)

// TestTable2SubOpCosts pins the paper's Table 2 sub-operation occupancies
// exactly (compute-processor cycles; PPCA is the Section 5 extension
// column). Any drift here silently rescales every occupancy figure in the
// paper reproduction, so the values are asserted literally.
func TestTable2SubOpCosts(t *testing.T) {
	costs := config.DefaultCosts()
	cases := []struct {
		op             config.SubOp
		hwc, ppc, ppca sim.Time
	}{
		{config.OpDispatch, 2, 14, 6},
		{config.OpReadBusReg, 2, 8, 8},
		{config.OpWriteBusReg, 2, 4, 4},
		{config.OpReadNIReg, 2, 8, 8},
		{config.OpWriteNIReg, 2, 4, 4},
		{config.OpLatchHeader, 2, 2, 2},
		{config.OpAssocSearch, 2, 6, 4},
		{config.OpDirCacheRead, 2, 2, 2},
		{config.OpDirCacheWrite, 2, 2, 2},
		{config.OpSendHeader, 2, 8, 4},
		{config.OpStartDataXfer, 2, 4, 2},
		{config.OpBitField, 0, 2, 0},
		{config.OpCondition, 0, 2, 2},
		{config.OpCompute, 0, 2, 2},
	}
	if len(cases) != config.NumSubOps {
		t.Fatalf("test covers %d sub-ops, table defines %d", len(cases), config.NumSubOps)
	}
	for _, c := range cases {
		if got := costs.Cost(config.HWC, c.op); got != c.hwc {
			t.Errorf("%v HWC cost = %d, want %d", c.op, got, c.hwc)
		}
		if got := costs.Cost(config.PPC, c.op); got != c.ppc {
			t.Errorf("%v PPC cost = %d, want %d", c.op, got, c.ppc)
		}
		if got := costs.Cost(config.PPCA, c.op); got != c.ppca {
			t.Errorf("%v PPCA cost = %d, want %d", c.op, got, c.ppca)
		}
	}
}

// TestHandlerOccupancies pins the no-contention occupancy of every
// protocol handler under the default cost table, for all three engine
// kinds. These are the per-handler sums of Table 2 costs that the
// end-to-end figures (occupancy ratios, PP penalty) are built from;
// until now they were only exercised indirectly through those figures.
func TestHandlerOccupancies(t *testing.T) {
	costs := config.DefaultCosts()
	cases := []struct {
		h              protocol.Handler
		hwc, ppc, ppca sim.Time
	}{
		{protocol.HBusReadRemote, 6, 18, 10},
		{protocol.HBusReadExRemote, 6, 18, 10},
		{protocol.HBusReadLocalDirtyRemote, 8, 18, 12},
		{protocol.HBusReadExLocalCachedRemote, 8, 14, 12},
		{protocol.HBusReadExLocalDirtyRemote, 8, 18, 12},
		{protocol.HRemoteReadHomeClean, 10, 18, 14},
		{protocol.HRemoteReadHomeDirty, 8, 18, 12},
		{protocol.HRemoteReadExHomeUncached, 10, 18, 14},
		{protocol.HRemoteReadExHomeShared, 8, 14, 12},
		{protocol.HRemoteReadExHomeDirty, 8, 18, 12},
		{protocol.HFetchOwnerFromHome, 6, 12, 10},
		{protocol.HFetchOwnerRemoteReq, 8, 20, 14},
		{protocol.HFetchExOwnerFromHome, 6, 12, 10},
		{protocol.HFetchExOwnerRemoteReq, 8, 20, 14},
		{protocol.HOwnerDataAtHomeRead, 10, 20, 14},
		{protocol.HOwnerWBAtHomeRead, 8, 18, 14},
		{protocol.HOwnerDataAtHomeReadEx, 10, 20, 14},
		{protocol.HOwnerAckAtHome, 6, 14, 10},
		{protocol.HInvalAtSharer, 6, 16, 12},
		{protocol.HInvalAckMore, 4, 12, 8},
		{protocol.HInvalAckLastLocal, 8, 18, 14},
		{protocol.HInvalAckLastRemote, 8, 18, 12},
		{protocol.HDataRespRead, 8, 16, 12},
		{protocol.HDataRespReadEx, 8, 16, 12},
		{protocol.HWriteBackAtHome, 6, 12, 10},
		{protocol.HInterventionMissAtHome, 4, 12, 8},
		{protocol.HBusyRequeue, 2, 6, 4},
		{protocol.HNackAtRequester, 4, 10, 8},
	}
	if len(cases) != protocol.NumHandlers {
		t.Fatalf("test covers %d handlers, protocol defines %d", len(cases), protocol.NumHandlers)
	}
	seen := map[protocol.Handler]bool{}
	for _, c := range cases {
		if seen[c.h] {
			t.Errorf("handler %v listed twice", c.h)
		}
		seen[c.h] = true
		if got := protocol.Occupancy(&costs, config.HWC, c.h, 0); got != c.hwc {
			t.Errorf("%v HWC occupancy = %d, want %d", c.h, got, c.hwc)
		}
		if got := protocol.Occupancy(&costs, config.PPC, c.h, 0); got != c.ppc {
			t.Errorf("%v PPC occupancy = %d, want %d", c.h, got, c.ppc)
		}
		if got := protocol.Occupancy(&costs, config.PPCA, c.h, 0); got != c.ppca {
			t.Errorf("%v PPCA occupancy = %d, want %d", c.h, got, c.ppca)
		}
	}
}

// TestPerInvalidationIncrement pins the marginal cost of each additional
// invalidation beyond a handler's base sequence (one bit-field extraction
// plus one header send per sharer).
func TestPerInvalidationIncrement(t *testing.T) {
	costs := config.DefaultCosts()
	for _, c := range []struct {
		kind config.EngineKind
		inc  sim.Time
	}{
		{config.HWC, 2},
		{config.PPC, 10},
		{config.PPCA, 4},
	} {
		base := protocol.Occupancy(&costs, c.kind, protocol.HRemoteReadExHomeShared, 0)
		plus2 := protocol.Occupancy(&costs, c.kind, protocol.HRemoteReadExHomeShared, 2)
		if got := plus2 - base; got != 2*c.inc {
			t.Errorf("%v: 2 extra invals add %d cycles, want %d", c.kind, got, 2*c.inc)
		}
	}
}
