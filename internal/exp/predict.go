package exp

import (
	"fmt"
	"sort"

	"ccnuma/internal/config"
	"ccnuma/internal/machine"
	"ccnuma/internal/pram"
	"ccnuma/internal/stats"
	"ccnuma/internal/workload"
)

// PredictionRow compares the paper's Section 3.3 methodology against
// ground truth for one application: the fast PRAM RCCPI estimate, the
// penalty predicted from the small-data-calibrated penalty-vs-RCCPI curve,
// and the detailed simulator's actual penalty. (The misprediction the
// paper itself warns about — Cholesky, whose load imbalance suppresses its
// penalty below its RCCPI — reproduces here.)
type PredictionRow struct {
	App              string
	PRAMRCCPIx1000   float64
	ActualRCCPIx1000 float64
	Predicted        float64
	Actual           float64
}

// PredictionResult is the full Section 3.3 reproduction.
type PredictionResult struct {
	// Curve is the calibration set: (RCCPI, penalty) points measured by
	// detailed simulation of simpler (small-data) runs across
	// communication rates.
	Curve []stats.CurvePoint
	Rows  []PredictionRow
}

// Prediction runs the methodology end to end: calibrate the penalty curve
// by detailed simulation of the applications at reduced data sizes,
// estimate each base-size application's RCCPI with the PRAM estimator
// (functional, fast), and predict its penalty by interpolation — then
// compare with the detailed simulator's measured penalty.
func (s *Suite) Prediction() (*PredictionResult, error) {
	res := &PredictionResult{}

	// 1. Calibration curve from detailed simulation of "simpler
	// applications covering a range of communication rates" (the paper's
	// own wording): the suite's applications at reduced data sizes, plus a
	// low-communication micro anchor.
	calSize := workload.SizeSmall
	if s.Size == workload.SizeTest {
		calSize = workload.SizeTest
	}
	calApps := []string{"water-sp", "barnes", "water-nsq", "fft", "radix", "ocean"}
	vCal := variant{name: "cal-small", size: calSize}
	var reqs []runReq
	for _, app := range calApps {
		s.gather(&reqs, app, "HWC", vCal)
		s.gather(&reqs, app, "PPC", vCal)
	}
	for _, app := range workload.PaperApps {
		s.gather(&reqs, app, "HWC", base())
		s.gather(&reqs, app, "PPC", base())
	}
	s.prefetch(reqs)
	for _, app := range calApps {
		hwc, err := s.Run(app, "HWC", vCal)
		if err != nil {
			return nil, err
		}
		ppc, err := s.Run(app, "PPC", vCal)
		if err != nil {
			return nil, err
		}
		res.Curve = append(res.Curve, stats.CurvePoint{
			X: 1000 * hwc.RCCPI(),
			Y: stats.Penalty(hwc, ppc),
		})
	}
	// Low anchor: a nearly computation-only micro run.
	{
		var runs [2]*stats.Run
		nodes, ppn := s.geometry("micro")
		for i, arch := range []string{"HWC", "PPC"} {
			cfg := config.Base()
			var err error
			cfg, err = cfg.WithArch(arch)
			if err != nil {
				return nil, err
			}
			cfg.Nodes, cfg.ProcsPerNode = nodes, ppn
			cfg.SimLimit = 20_000_000_000
			m, err := machine.New(cfg, "micro")
			if err != nil {
				return nil, err
			}
			w := workload.NewMicro(150, 2, 300, m.NProcs())
			if err := w.Setup(m); err != nil {
				return nil, err
			}
			r, err := m.Run(w.Body)
			if err != nil {
				return nil, err
			}
			runs[i] = r
		}
		res.Curve = append(res.Curve, stats.CurvePoint{
			X: 1000 * runs[0].RCCPI(),
			Y: stats.Penalty(runs[0], runs[1]),
		})
	}
	sort.Slice(res.Curve, func(i, j int) bool { return res.Curve[i].X < res.Curve[j].X })

	// 2. Per-application PRAM estimate + prediction vs detailed truth.
	for _, app := range workload.PaperApps {
		est, err := s.pramRCCPI(app)
		if err != nil {
			return nil, err
		}
		hwc, err := s.Run(app, "HWC", base())
		if err != nil {
			return nil, err
		}
		ppc, err := s.Run(app, "PPC", base())
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, PredictionRow{
			App:              AppLabel(app),
			PRAMRCCPIx1000:   1000 * est,
			ActualRCCPIx1000: 1000 * hwc.RCCPI(),
			Predicted:        interpolate(res.Curve, 1000*est),
			Actual:           stats.Penalty(hwc, ppc),
		})
	}
	return res, nil
}

// pramRCCPI runs the functional estimator over one application.
func (s *Suite) pramRCCPI(app string) (float64, error) {
	cfg := config.Base()
	cfg.Nodes, cfg.ProcsPerNode = s.geometry(app)
	m, err := machine.New(cfg, app)
	if err != nil {
		return 0, err
	}
	size := workload.SizeBase
	if s.Size == workload.SizeTest {
		size = workload.SizeTest
	}
	w, err := workload.New(app, size, m.NProcs())
	if err != nil {
		return 0, err
	}
	if err := w.Setup(m); err != nil {
		return 0, err
	}
	est := pram.New(&m.Cfg, m.Space)
	if err := est.Run(w.Body); err != nil {
		return 0, err
	}
	return est.RCCPI(), nil
}

// interpolate evaluates the piecewise-linear calibration curve at x,
// clamping outside the measured range.
func interpolate(curve []stats.CurvePoint, x float64) float64 {
	if len(curve) == 0 {
		return 0
	}
	if x <= curve[0].X {
		return curve[0].Y
	}
	for i := 1; i < len(curve); i++ {
		if x <= curve[i].X {
			a, b := curve[i-1], curve[i]
			t := (x - a.X) / (b.X - a.X)
			return a.Y + t*(b.Y-a.Y)
		}
	}
	return curve[len(curve)-1].Y
}

// Render formats the prediction study.
func (r *PredictionResult) Render() string {
	var rows [][]string
	for _, p := range r.Curve {
		rows = append(rows, []string{"calibration (small data)",
			fmt.Sprintf("%.2f", p.X), "", fmt.Sprintf("%.0f%%", 100*p.Y), ""})
	}
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.App,
			fmt.Sprintf("%.2f", row.PRAMRCCPIx1000),
			fmt.Sprintf("%.2f", row.ActualRCCPIx1000),
			fmt.Sprintf("%.0f%%", 100*row.Predicted),
			fmt.Sprintf("%.0f%%", 100*row.Actual),
		})
	}
	return renderTable("Prediction methodology (paper section 3.3): PRAM RCCPI + small-data-calibrated curve vs detailed simulation",
		[]string{"Point", "1000xRCCPI (PRAM)", "1000xRCCPI (detailed)", "Predicted penalty", "Actual penalty"}, rows)
}
