package exp

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"ccnuma/internal/workload"
)

// suiteOutput captures every observable product of a suite regeneration:
// the rendered tables/figures, the progress stream, and the serialized run
// artifacts.
type suiteOutput struct {
	rendered  string
	progress  string
	artifacts []byte
}

// regenerate runs Table 6 and Figure 6 at SizeTest on a fresh suite with
// the given worker count and captures everything it produced.
func regenerate(t *testing.T, jobs int) suiteOutput {
	t.Helper()
	s := NewSuite(workload.SizeTest)
	s.Jobs = jobs
	s.CollectArtifacts = true
	var progress bytes.Buffer
	s.Progress = &progress

	rows6, err := s.Table6()
	if err != nil {
		t.Fatalf("jobs=%d: Table6: %v", jobs, err)
	}
	f6, err := s.Figure6()
	if err != nil {
		t.Fatalf("jobs=%d: Figure6: %v", jobs, err)
	}
	arts, err := json.MarshalIndent(s.Artifacts(), "", "  ")
	if err != nil {
		t.Fatalf("jobs=%d: marshal artifacts: %v", jobs, err)
	}
	return suiteOutput{
		rendered:  RenderTable6(rows6) + "\n" + f6.Render(),
		progress:  progress.String(),
		artifacts: arts,
	}
}

// TestParallelMatchesSerial is the golden determinism pin for the parallel
// runner: a suite regeneration at -jobs 8 must produce byte-identical
// renders, progress lines, and artifact JSON to the serial (-jobs 1) loop.
// A second serial run additionally pins run-to-run repeatability: two
// identical simulations must serialize identically (no map iteration or
// other nondeterminism feeds the artifacts).
func TestParallelMatchesSerial(t *testing.T) {
	serial := regenerate(t, 1)
	again := regenerate(t, 1)
	parallel := regenerate(t, 8)

	if serial.rendered != again.rendered || serial.progress != again.progress {
		t.Error("two identical serial regenerations rendered differently")
	}
	if !bytes.Equal(serial.artifacts, again.artifacts) {
		t.Error("two identical serial regenerations serialized different artifacts")
	}

	if serial.rendered != parallel.rendered {
		t.Errorf("jobs=8 render differs from serial:\n--- serial ---\n%s\n--- jobs=8 ---\n%s",
			serial.rendered, parallel.rendered)
	}
	if serial.progress != parallel.progress {
		t.Errorf("jobs=8 progress stream differs from serial:\n--- serial ---\n%s\n--- jobs=8 ---\n%s",
			serial.progress, parallel.progress)
	}
	if !bytes.Equal(serial.artifacts, parallel.artifacts) {
		t.Error("jobs=8 artifacts are not byte-identical to serial")
	}
}

// TestTable3Repeatable pins the Table 3 probe: two invocations must agree
// exactly, including the rendered text.
func TestTable3Repeatable(t *testing.T) {
	a, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	b, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("Table3 results differ across runs: %+v vs %+v", a, b)
	}
	if a.Render() != b.Render() {
		t.Error("Table3 renders differ across runs")
	}
}
