package exp

import (
	"fmt"

	"ccnuma/internal/config"
	"ccnuma/internal/machine"
	"ccnuma/internal/prog"
	"ccnuma/internal/protocol"
	"ccnuma/internal/sim"
	"ccnuma/internal/stats"
	"ccnuma/internal/workload"
)

// Table1 renders the base system's no-contention latencies (the paper's
// Table 1), echoing the configuration the simulator actually uses.
func Table1() string {
	c := config.Base()
	rows := [][]string{
		{"Compute processor", "200 MHz PowerPC-class, 1 cycle = 5 ns"},
		{"L1 / L2 cache", fmt.Sprintf("%d KB / %d MB, %d-way LRU, %d B lines",
			c.L1Size/1024, c.L2Size/(1024*1024), c.L2Assoc, c.LineSize)},
		{"L1 hit / L2 hit", fmt.Sprintf("%d / %d cycles", c.L1HitTime, c.L2HitTime)},
		{"Detect L2 miss", fmt.Sprintf("%d cycles", c.L2MissDetect)},
		{"SMP bus", "100 MHz, 16 B wide, split transaction, separate address and data"},
		{"Bus address strobe to next address strobe", fmt.Sprintf("%d cycles", c.AddrStrobe)},
		{"Bus address strobe to start of data from memory", fmt.Sprintf("%d cycles", c.MemAccess)},
		{"Bus address strobe to start of cache-to-cache data", fmt.Sprintf("%d cycles", c.CacheToCache)},
		{"Line transfer on data bus", fmt.Sprintf("%d cycles (critical quad word first, +%d)", c.BusDataTime(), c.CriticalQuad)},
		{"Memory", fmt.Sprintf("%d interleaved banks per node, %d-cycle bank busy", c.MemBanks, c.BankBusy)},
		{"Network point-to-point", fmt.Sprintf("%d cycles (%.0f ns), %d B links", c.NetLatency, c.NetLatency.Nanoseconds(), c.NetFlitBytes)},
		{"Directory cache", fmt.Sprintf("%d entries, write-through; DRAM read %d cycles", c.DirCacheEntries, c.DirDRAMRead)},
		{"Base machine", fmt.Sprintf("%d nodes x %d processors", c.Nodes, c.ProcsPerNode)},
	}
	return renderTable("Table 1: base system no-contention latencies (compute processor cycles, 5 ns)",
		[]string{"Component", "Value"}, rows)
}

// Table2 renders the protocol-engine sub-operation occupancies (Table 2).
func Table2() string {
	costs := config.DefaultCosts()
	var rows [][]string
	for op := config.SubOp(0); op < config.SubOp(config.NumSubOps); op++ {
		rows = append(rows, []string{
			op.String(),
			fmt.Sprintf("%d", costs.Cost(config.HWC, op)),
			fmt.Sprintf("%d", costs.Cost(config.PPC, op)),
			fmt.Sprintf("%d", costs.Cost(config.PPCA, op)),
		})
	}
	return renderTable("Table 2: protocol engine sub-operation occupancies (compute processor cycles; PPCA is the section 5 extension)",
		[]string{"Sub-operation", "HWC", "PPC", "PPCA"}, rows)
}

// Table3Result is the measured no-contention remote clean read latency.
type Table3Result struct {
	HWC, PPC sim.Time
	// Paper's values for reference.
	PaperHWC, PaperPPC sim.Time
}

// RelativeIncrease returns the PPC latency increase over HWC.
func (t Table3Result) RelativeIncrease() float64 {
	if t.HWC == 0 {
		return 0
	}
	return float64(t.PPC-t.HWC) / float64(t.HWC)
}

// Table3 measures the latency of a read miss to a remote line clean at
// home on an otherwise idle two-node system, for both engine kinds.
func Table3() (Table3Result, error) {
	res := Table3Result{PaperHWC: 142, PaperPPC: 212}
	for _, kind := range []config.EngineKind{config.HWC, config.PPC} {
		cfg := config.Base()
		cfg.Nodes, cfg.ProcsPerNode = 2, 1
		cfg.Engine = kind
		cfg.SimLimit = 1_000_000
		m, err := machine.New(cfg, "probe")
		if err != nil {
			return res, err
		}
		addr := m.Space.AllocOnNode(4096, 0)
		r, err := m.Run(func(e prog.Env) {
			if e.ID() == 1 {
				e.Read(addr)
			}
		})
		if err != nil {
			return res, err
		}
		if kind == config.HWC {
			res.HWC = r.ExecTime
		} else {
			res.PPC = r.ExecTime
		}
	}
	return res, nil
}

// Render formats the Table 3 reproduction.
func (t Table3Result) Render() string {
	rows := [][]string{
		{"HWC", fmt.Sprintf("%d", t.HWC), fmt.Sprintf("%d", t.PaperHWC)},
		{"PPC", fmt.Sprintf("%d", t.PPC), fmt.Sprintf("%d", t.PaperPPC)},
		{"PPC/HWC increase", fmt.Sprintf("%.0f%%", 100*t.RelativeIncrease()), "49%"},
	}
	return renderTable("Table 3: no-contention latency of a read miss to a remote line clean at home (cycles)",
		[]string{"Engine", "Measured", "Paper"}, rows)
}

// Table4 renders every protocol handler's no-contention occupancy for both
// engines (dispatch included, directory-cache hits assumed), reproducing
// the paper's Table 4.
func Table4() string {
	costs := config.DefaultCosts()
	cfg := config.Base()
	var rows [][]string
	var hwcSum, ppcSum sim.Time
	for _, h := range protocol.Table4Handlers {
		// Occupancies include the no-contention SMP bus / local memory
		// access time of fetching handlers, as the paper's Table 4 does.
		stall := protocol.StallTime(&cfg, protocol.Stall(h))
		hwc := costs.Cost(config.HWC, config.OpDispatch) + protocol.Occupancy(&costs, config.HWC, h, 0) + stall
		ppc := costs.Cost(config.PPC, config.OpDispatch) + protocol.Occupancy(&costs, config.PPC, h, 0) + stall
		hwcSum += hwc
		ppcSum += ppc
		rows = append(rows, []string{
			h.String(),
			fmt.Sprintf("%d", hwc),
			fmt.Sprintf("%d", ppc),
			fmt.Sprintf("%.1f", float64(ppc)/float64(hwc)),
		})
	}
	rows = append(rows, []string{
		"mean (unweighted)",
		fmt.Sprintf("%.1f", float64(hwcSum)/float64(len(protocol.Table4Handlers))),
		fmt.Sprintf("%.1f", float64(ppcSum)/float64(len(protocol.Table4Handlers))),
		fmt.Sprintf("%.1f", float64(ppcSum)/float64(hwcSum)),
	})
	return renderTable("Table 4: protocol engine handler occupancies (compute processor cycles, incl. dispatch)",
		[]string{"Handler", "HWC", "PPC", "ratio"}, rows)
}

// Table6Row is one application's communication statistics on the base
// system (the paper's Table 6).
type Table6Row struct {
	App            string
	Penalty        float64 // PPC execution-time increase over HWC
	RCCPIx1000     float64
	OccupancyRatio float64 // PPC occupancy / HWC occupancy
	HWCUtil        float64
	PPCUtil        float64
	HWCQueueNs     float64
	PPCQueueNs     float64
	HWCArrivalUs   float64 // requests per microsecond per controller
	PPCArrivalUs   float64
	// Queue-delay distribution percentiles (cycles), interpolated from the
	// merged per-engine histograms.
	HWCQueueP50, HWCQueueP95, HWCQueueP99 float64
	PPCQueueP50, PPCQueueP95, PPCQueueP99 float64
}

// Table6 computes the communication statistics from the base runs.
func (s *Suite) Table6() ([]Table6Row, error) {
	var reqs []runReq
	for _, app := range workload.PaperApps {
		s.gather(&reqs, app, "HWC", base())
		s.gather(&reqs, app, "PPC", base())
	}
	s.prefetch(reqs)

	var rows []Table6Row
	for _, app := range workload.PaperApps {
		hwc, err := s.Run(app, "HWC", base())
		if err != nil {
			return nil, err
		}
		ppc, err := s.Run(app, "PPC", base())
		if err != nil {
			return nil, err
		}
		hq := hwc.QueueDelayHistogram()
		pq := ppc.QueueDelayHistogram()
		rows = append(rows, Table6Row{
			App:            AppLabel(app),
			Penalty:        stats.Penalty(hwc, ppc),
			RCCPIx1000:     1000 * hwc.RCCPI(),
			OccupancyRatio: stats.OccupancyRatio(hwc, ppc),
			HWCUtil:        hwc.AvgUtilization(-1),
			PPCUtil:        ppc.AvgUtilization(-1),
			HWCQueueNs:     hwc.AvgQueueDelayNs(-1),
			PPCQueueNs:     ppc.AvgQueueDelayNs(-1),
			HWCArrivalUs:   hwc.ArrivalRatePerMicrosecond(),
			PPCArrivalUs:   ppc.ArrivalRatePerMicrosecond(),
			HWCQueueP50:    hq.Percentile(50),
			HWCQueueP95:    hq.Percentile(95),
			HWCQueueP99:    hq.Percentile(99),
			PPCQueueP50:    pq.Percentile(50),
			PPCQueueP95:    pq.Percentile(95),
			PPCQueueP99:    pq.Percentile(99),
		})
	}
	return rows, nil
}

// RenderTable6 formats the Table 6 reproduction.
func RenderTable6(rows []Table6Row) string {
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.App,
			fmt.Sprintf("%.0f%%", 100*r.Penalty),
			fmt.Sprintf("%.2f", r.RCCPIx1000),
			fmt.Sprintf("%.2f", r.OccupancyRatio),
			fmt.Sprintf("%.2f%%", 100*r.HWCUtil),
			fmt.Sprintf("%.2f%%", 100*r.PPCUtil),
			fmt.Sprintf("%.0f", r.HWCQueueNs),
			fmt.Sprintf("%.0f", r.PPCQueueNs),
			fmt.Sprintf("%.0f/%.0f/%.0f", r.HWCQueueP50, r.HWCQueueP95, r.HWCQueueP99),
			fmt.Sprintf("%.0f/%.0f/%.0f", r.PPCQueueP50, r.PPCQueueP95, r.PPCQueueP99),
			fmt.Sprintf("%.2f", r.HWCArrivalUs),
			fmt.Sprintf("%.2f", r.PPCArrivalUs),
		})
	}
	return renderTable("Table 6: communication statistics on the base system configuration",
		[]string{"Application", "PP penalty", "1000xRCCPI", "PPC/HWC occ",
			"HWC util", "PPC util", "HWC queue (ns)", "PPC queue (ns)",
			"HWC q p50/95/99 (cyc)", "PPC q p50/95/99 (cyc)",
			"HWC req/us", "PPC req/us"}, out)
}

// Table7Row is one application x architecture row of the two-engine
// statistics (the paper's Table 7).
type Table7Row struct {
	App, Arch  string
	LPEUtil    float64
	RPEUtil    float64
	LPEShare   float64 // fraction of requests handled by the LPE
	RPEShare   float64
	LPEQueueNs float64
	RPEQueueNs float64
}

// Table7 computes the two-engine utilization and distribution statistics.
func (s *Suite) Table7() ([]Table7Row, error) {
	var reqs []runReq
	for _, app := range workload.PaperApps {
		for _, arch := range []string{"2HWC", "2PPC"} {
			s.gather(&reqs, app, arch, base())
		}
	}
	s.prefetch(reqs)

	var rows []Table7Row
	for _, app := range workload.PaperApps {
		for _, arch := range []string{"2HWC", "2PPC"} {
			r, err := s.Run(app, arch, base())
			if err != nil {
				return nil, err
			}
			rows = append(rows, Table7Row{
				App:        AppLabel(app),
				Arch:       arch,
				LPEUtil:    r.AvgUtilization(0),
				RPEUtil:    r.AvgUtilization(1),
				LPEShare:   r.EngineShare(0),
				RPEShare:   r.EngineShare(1),
				LPEQueueNs: r.AvgQueueDelayNs(0),
				RPEQueueNs: r.AvgQueueDelayNs(1),
			})
		}
	}
	return rows, nil
}

// RenderTable7 formats the Table 7 reproduction.
func RenderTable7(rows []Table7Row) string {
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.App, r.Arch,
			fmt.Sprintf("%.2f%%", 100*r.LPEUtil),
			fmt.Sprintf("%.2f%%", 100*r.RPEUtil),
			fmt.Sprintf("%.2f%%", 100*r.LPEShare),
			fmt.Sprintf("%.2f%%", 100*r.RPEShare),
			fmt.Sprintf("%.0f", r.LPEQueueNs),
			fmt.Sprintf("%.0f", r.RPEQueueNs),
		})
	}
	return renderTable("Table 7: communication statistics for controllers with two protocol engines",
		[]string{"Application", "Arch", "LPE util", "RPE util",
			"LPE share", "RPE share", "LPE queue (ns)", "RPE queue (ns)"}, out)
}
