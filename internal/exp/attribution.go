// Latency attribution: the causal decomposition of miss latency into the
// pipeline stages a transaction crosses (span tracing, DESIGN §13). This is
// the evaluation the paper's occupancy argument implies but never tabulates:
// for each kernel x architecture, where do the miss cycles actually go, and
// what share is queueing behind a busy protocol engine?
package exp

import (
	"fmt"

	"ccnuma/internal/obs"
	"ccnuma/internal/stats"
	"ccnuma/internal/workload"
)

// AttributionRow is one kernel x architecture attribution result.
type AttributionRow struct {
	App, Arch string
	Exec      int64
	Attr      *stats.Attribution
}

// attrReq resolves the attributed base run for (app, arch): the standard
// base-variant request with span tracing switched on, under its own memo key
// so attributed runs never alias the plain Figure 6 runs.
func (s *Suite) attrReq(app, arch string) (runReq, error) {
	req, err := s.reqFor(app, arch, base())
	if err != nil {
		return runReq{}, err
	}
	req.cfg.Attribution = true
	req.key += "/attr"
	req.vname = "attr"
	return req, nil
}

// Attribution runs every paper application on every base architecture with
// span tracing enabled and returns the per-run latency decompositions.
func (s *Suite) Attribution() ([]AttributionRow, error) {
	var reqs []runReq
	for _, app := range workload.PaperApps {
		for _, arch := range allArchs {
			if req, err := s.attrReq(app, arch); err == nil {
				reqs = append(reqs, req)
			}
		}
	}
	s.prefetch(reqs)

	var rows []AttributionRow
	for _, app := range workload.PaperApps {
		for _, arch := range allArchs {
			req, err := s.attrReq(app, arch)
			if err != nil {
				return nil, err
			}
			r, ok := s.cache[req.key]
			if !ok {
				var art *obs.Artifact
				r, art, err = simulateDetached(req, s.CollectArtifacts)
				if err != nil {
					return nil, fmt.Errorf("%s/%s (attr): %w", app, arch, err)
				}
				s.commit(req, r, art)
			}
			if r.Attribution == nil {
				return nil, fmt.Errorf("%s/%s: attributed run carried no attribution stats", app, arch)
			}
			rows = append(rows, AttributionRow{
				App: app, Arch: arch, Exec: int64(r.ExecTime), Attr: r.Attribution,
			})
		}
	}
	return rows, nil
}

// RenderAttribution formats the attribution rows: end-to-end miss-latency
// distribution plus the share of attributed cycles each stage consumed. The
// cc-queue column is the paper's occupancy bottleneck made visible — cycles
// a transaction spent waiting for a busy protocol engine to dispatch it.
func RenderAttribution(rows []AttributionRow) string {
	header := []string{"App", "Arch", "misses", "mean", "p50", "p95", "p99"}
	for i := 0; i < obs.NumStages; i++ {
		header = append(header, obs.StageName(i)+"%")
	}
	var cells [][]string
	for _, row := range rows {
		a := row.Attr
		c := []string{
			AppLabel(row.App), row.Arch,
			fmt.Sprintf("%d", a.Completed),
			fmt.Sprintf("%.0f", a.EndToEnd.Mean()),
			fmt.Sprintf("%.0f", a.EndToEnd.Percentile(50)),
			fmt.Sprintf("%.0f", a.EndToEnd.Percentile(95)),
			fmt.Sprintf("%.0f", a.EndToEnd.Percentile(99)),
		}
		for i := 0; i < obs.NumStages; i++ {
			c = append(c, fmt.Sprintf("%.1f", 100*a.StageShare(obs.StageName(i))))
		}
		cells = append(cells, c)
	}
	return renderTable("Latency attribution: miss-latency decomposition by pipeline stage (% of attributed cycles)",
		header, cells)
}
