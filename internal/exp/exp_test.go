package exp

import (
	"strings"
	"testing"

	"ccnuma/internal/stats"
	"ccnuma/internal/workload"
)

func TestStaticTablesRender(t *testing.T) {
	for name, text := range map[string]string{
		"table1": Table1(),
		"table2": Table2(),
		"table4": Table4(),
	} {
		if len(text) < 100 {
			t.Errorf("%s suspiciously short:\n%s", name, text)
		}
	}
	if !strings.Contains(Table1(), "16 nodes x 4 processors") {
		t.Error("table 1 missing base geometry")
	}
	if !strings.Contains(Table2(), "dispatch handler") {
		t.Error("table 2 missing dispatch row")
	}
	if !strings.Contains(Table4(), "remote read to home (clean)") {
		t.Error("table 4 missing a handler row")
	}
}

func TestTable3Probe(t *testing.T) {
	res, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	if res.HWC < 100 || res.HWC > 200 {
		t.Errorf("HWC latency %d outside plausible range", res.HWC)
	}
	if res.PPC <= res.HWC {
		t.Errorf("PPC latency %d not above HWC %d", res.PPC, res.HWC)
	}
	rel := res.RelativeIncrease()
	if rel < 0.25 || rel > 0.80 {
		t.Errorf("relative increase %.2f far from the paper's 0.49", rel)
	}
	if !strings.Contains(res.Render(), "Paper") {
		t.Error("render missing paper column")
	}
}

func TestSuiteFigure6TestSize(t *testing.T) {
	s := NewSuite(workload.SizeTest)
	f, err := s.Figure6()
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Apps) != 8 || len(f.Archs) != 4 {
		t.Fatalf("figure shape %dx%d", len(f.Apps), len(f.Archs))
	}
	for _, app := range f.Apps {
		if got := f.Series["HWC"][app]; got != 1.0 {
			t.Errorf("%s HWC normalized to %.3f, want 1.0", app, got)
		}
		if f.PPPenalty(app) < -0.5 {
			t.Errorf("%s PPC penalty %.2f absurdly negative", app, f.PPPenalty(app))
		}
	}
	if !strings.Contains(f.Render(), "Ocean") {
		t.Error("render missing an application")
	}
	// Memoization: re-running must not error and must be instant-ish.
	if _, err := s.Figure6(); err != nil {
		t.Fatal(err)
	}
}

func TestSuiteTables67TestSize(t *testing.T) {
	s := NewSuite(workload.SizeTest)
	rows6, err := s.Table6()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows6) != 8 {
		t.Fatalf("table 6 rows = %d", len(rows6))
	}
	for _, r := range rows6 {
		if r.RCCPIx1000 <= 0 {
			t.Errorf("%s RCCPI = %v", r.App, r.RCCPIx1000)
		}
		if r.OccupancyRatio < 1.0 {
			t.Errorf("%s occupancy ratio %.2f < 1 (PPC should occupy more)", r.App, r.OccupancyRatio)
		}
		if r.PPCUtil <= 0 || r.HWCUtil <= 0 {
			t.Errorf("%s zero utilization", r.App)
		}
	}
	out6 := RenderTable6(rows6)
	if !strings.Contains(out6, "PP penalty") {
		t.Error("table 6 render missing header")
	}

	rows7, err := s.Table7()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows7) != 16 { // 8 apps x {2HWC, 2PPC}
		t.Fatalf("table 7 rows = %d", len(rows7))
	}
	for _, r := range rows7 {
		if r.LPEShare+r.RPEShare < 0.99 || r.LPEShare+r.RPEShare > 1.01 {
			t.Errorf("%s/%s engine shares do not sum to 1: %v + %v",
				r.App, r.Arch, r.LPEShare, r.RPEShare)
		}
	}
	if !strings.Contains(RenderTable7(rows7), "LPE util") {
		t.Error("table 7 render missing header")
	}
}

func TestSuiteCurvesTestSize(t *testing.T) {
	s := NewSuite(workload.SizeTest)
	f11, err := s.Figure11()
	if err != nil {
		t.Fatal(err)
	}
	if len(f11.HWC) != len(f11.PPC) || len(f11.HWC) == 0 {
		t.Fatalf("figure 11 points: %d/%d", len(f11.HWC), len(f11.PPC))
	}
	f12, err := s.Figure12()
	if err != nil {
		t.Fatal(err)
	}
	if len(f12.Points) != len(f11.HWC) {
		t.Fatalf("figure 12 points = %d", len(f12.Points))
	}
	if !strings.Contains(f11.Render(), "req/us") || !strings.Contains(f12.Render(), "PP penalty") {
		t.Error("curve renders missing headers")
	}
}

func TestGeometryRules(t *testing.T) {
	s := NewSuite(workload.SizeBase)
	if n, p := s.geometry("ocean"); n != 16 || p != 4 {
		t.Errorf("ocean geometry %dx%d, want 16x4", n, p)
	}
	if n, p := s.geometry("lu"); n != 8 || p != 4 {
		t.Errorf("lu geometry %dx%d, want 8x4 (32 processors)", n, p)
	}
	st := NewSuite(workload.SizeTest)
	if n, p := st.geometry("ocean"); n != 4 || p != 2 {
		t.Errorf("test ocean geometry %dx%d, want 4x2", n, p)
	}
}

func TestAppLabels(t *testing.T) {
	for app, want := range map[string]string{
		"lu": "LU", "ocean": "Ocean", "water-sp": "Water-Sp",
		"water-nsq": "Water-Nsq", "fft": "FFT", "radix": "Radix",
		"barnes": "Barnes", "cholesky": "Cholesky", "other": "other",
	} {
		if got := AppLabel(app); got != want {
			t.Errorf("AppLabel(%s) = %s, want %s", app, got, want)
		}
	}
}

func TestExtensionsTestSize(t *testing.T) {
	s := NewSuite(workload.SizeTest)
	res, err := s.Extensions("radix")
	if err != nil {
		t.Fatal(err)
	}
	if res.EngineScaling["radix"][1] != 1.0 {
		t.Errorf("1-engine baseline not normalized: %v", res.EngineScaling["radix"][1])
	}
	// More engines must not slow the controller-bound workload down much;
	// four region-split engines should beat one.
	if res.EngineScaling["radix"][4] >= 1.05 {
		t.Errorf("4-engine scaling %.3f, expected improvement over 1 engine",
			res.EngineScaling["radix"][4])
	}
	// The accelerated PP sits between custom hardware and the commodity PP.
	h, a, p := res.KindTimes["radix"]["HWC"], res.KindTimes["radix"]["PPCA"], res.KindTimes["radix"]["PPC"]
	if !(h <= a && a <= p) {
		t.Errorf("engine-kind ordering HWC=%.3f PPCA=%.3f PPC=%.3f, want HWC <= PPCA <= PPC", h, a, p)
	}
	if res.Render() == "" {
		t.Error("empty render")
	}
}

func TestPlacementTestSize(t *testing.T) {
	s := NewSuite(workload.SizeTest)
	res, err := s.Placement("ocean")
	if err != nil {
		t.Fatal(err)
	}
	if res.Normalized["ocean"]["round-robin"] != 1.0 {
		t.Errorf("round-robin not normalized: %v", res.Normalized["ocean"]["round-robin"])
	}
	ft := res.Normalized["ocean"]["first-touch"]
	if ft <= 0 {
		t.Errorf("first-touch time missing: %v", ft)
	}
	if res.Render() == "" {
		t.Error("empty render")
	}
}

func TestPredictionTestSize(t *testing.T) {
	s := NewSuite(workload.SizeTest)
	res, err := s.Prediction()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curve) < 4 {
		t.Fatalf("calibration curve has %d points", len(res.Curve))
	}
	for i := 1; i < len(res.Curve); i++ {
		if res.Curve[i].X < res.Curve[i-1].X {
			t.Fatal("curve not sorted by RCCPI")
		}
	}
	if len(res.Rows) != 8 {
		t.Fatalf("prediction rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.PRAMRCCPIx1000 <= 0 {
			t.Errorf("%s: PRAM estimate missing", row.App)
		}
		// The PRAM estimate should land within a factor ~3 of the detailed
		// RCCPI even at tiny problem sizes.
		ratio := row.PRAMRCCPIx1000 / row.ActualRCCPIx1000
		if ratio < 0.25 || ratio > 4.0 {
			t.Errorf("%s: PRAM/actual RCCPI ratio %.2f", row.App, ratio)
		}
	}
	if res.Render() == "" {
		t.Error("empty render")
	}
}

func TestInterpolate(t *testing.T) {
	curve := []stats.CurvePoint{{X: 1, Y: 0.1}, {X: 3, Y: 0.3}, {X: 10, Y: 1.0}}
	cases := []struct{ x, want float64 }{
		{0.5, 0.1},  // clamp low
		{1, 0.1},    // exact
		{2, 0.2},    // midpoint
		{3, 0.3},    // exact
		{6.5, 0.65}, // interior
		{20, 1.0},   // clamp high
	}
	for _, c := range cases {
		if got := interpolate(curve, c.x); got < c.want-1e-9 || got > c.want+1e-9 {
			t.Errorf("interpolate(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if interpolate(nil, 5) != 0 {
		t.Error("empty curve should return 0")
	}
}
