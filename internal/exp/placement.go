package exp

import (
	"fmt"

	"ccnuma/internal/config"
	"ccnuma/internal/obs"
	"ccnuma/internal/workload"
)

// PlacementResult compares page-placement policies (the paper's Section 3.1
// methodology note: round-robin is the default because first-touch-after-
// initialization gave slightly inferior performance for most applications,
// from load imbalance and memory/controller contention under uneven memory
// distribution).
type PlacementResult struct {
	Apps []string
	// Normalized[app][policy] = exec time / round-robin exec time, on HWC.
	Normalized map[string]map[string]float64
}

var placementPolicies = []config.PlacementPolicy{config.PlaceRoundRobin, config.PlaceFirstTouch}

// placementReq resolves the page-placement study to a request.
func (s *Suite) placementReq(app string, pol config.PlacementPolicy) runReq {
	cfg := config.Base()
	cfg.Placement = pol
	cfg.Nodes, cfg.ProcsPerNode = s.geometry(app)
	cfg.SimLimit = 20_000_000_000
	size := workload.SizeBase
	if s.Size == workload.SizeTest {
		size = workload.SizeTest
	}
	return runReq{key: s.key(app, "HWC", variant{name: "place-" + pol.String()}),
		cfg: cfg, app: app, size: size}
}

// Placement runs the placement-policy comparison (defaults to the
// communication-heavy applications whose traffic placement shifts most).
func (s *Suite) Placement(apps ...string) (*PlacementResult, error) {
	if len(apps) == 0 {
		apps = []string{"ocean", "radix", "barnes", "water-nsq"}
	}
	var reqs []runReq
	for _, app := range apps {
		for _, pol := range placementPolicies {
			reqs = append(reqs, s.placementReq(app, pol))
		}
	}
	s.prefetch(reqs)

	res := &PlacementResult{Apps: apps, Normalized: map[string]map[string]float64{}}
	for _, app := range apps {
		res.Normalized[app] = map[string]float64{}
		var base float64
		for _, pol := range placementPolicies {
			req := s.placementReq(app, pol)
			r, ok := s.cache[req.key]
			if !ok {
				var art *obs.Artifact
				var err error
				r, art, err = simulateDetached(req, s.CollectArtifacts)
				if err != nil {
					return nil, fmt.Errorf("placement %s/%s: %w", app, pol, err)
				}
				s.commit(req, r, art)
			}
			if pol == config.PlaceRoundRobin {
				base = float64(r.ExecTime)
			}
			res.Normalized[app][pol.String()] = float64(r.ExecTime) / base
		}
	}
	return res, nil
}

// Render formats the placement comparison.
func (r *PlacementResult) Render() string {
	var rows [][]string
	for _, app := range r.Apps {
		row := []string{AppLabel(app)}
		for _, pol := range placementPolicies {
			row = append(row, fmt.Sprintf("%.3f", r.Normalized[app][pol.String()]))
		}
		rows = append(rows, row)
	}
	return renderTable("Page placement policies on HWC (normalized to round-robin, the paper's default)",
		[]string{"Application", "round-robin", "first-touch"}, rows)
}
