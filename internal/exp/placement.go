package exp

import (
	"fmt"

	"ccnuma/internal/config"
)

// PlacementResult compares page-placement policies (the paper's Section 3.1
// methodology note: round-robin is the default because first-touch-after-
// initialization gave slightly inferior performance for most applications,
// from load imbalance and memory/controller contention under uneven memory
// distribution).
type PlacementResult struct {
	Apps []string
	// Normalized[app][policy] = exec time / round-robin exec time, on HWC.
	Normalized map[string]map[string]float64
}

var placementPolicies = []config.PlacementPolicy{config.PlaceRoundRobin, config.PlaceFirstTouch}

// Placement runs the placement-policy comparison (defaults to the
// communication-heavy applications whose traffic placement shifts most).
func (s *Suite) Placement(apps ...string) (*PlacementResult, error) {
	if len(apps) == 0 {
		apps = []string{"ocean", "radix", "barnes", "water-nsq"}
	}
	res := &PlacementResult{Apps: apps, Normalized: map[string]map[string]float64{}}
	for _, app := range apps {
		res.Normalized[app] = map[string]float64{}
		var base float64
		for _, pol := range placementPolicies {
			k := s.key(app, "HWC", variant{name: "place-" + pol.String()})
			r, ok := s.cache[k]
			if !ok {
				cfg := config.Base()
				cfg.Placement = pol
				cfg.Nodes, cfg.ProcsPerNode = s.geometry(app)
				cfg.SimLimit = 20_000_000_000
				var err error
				r, err = s.simulate(cfg, app)
				if err != nil {
					return nil, fmt.Errorf("placement %s/%s: %w", app, pol, err)
				}
				s.cache[k] = r
			}
			if pol == config.PlaceRoundRobin {
				base = float64(r.ExecTime)
			}
			res.Normalized[app][pol.String()] = float64(r.ExecTime) / base
		}
	}
	return res, nil
}

// Render formats the placement comparison.
func (r *PlacementResult) Render() string {
	var rows [][]string
	for _, app := range r.Apps {
		row := []string{AppLabel(app)}
		for _, pol := range placementPolicies {
			row = append(row, fmt.Sprintf("%.3f", r.Normalized[app][pol.String()]))
		}
		rows = append(rows, row)
	}
	return renderTable("Page placement policies on HWC (normalized to round-robin, the paper's default)",
		[]string{"Application", "round-robin", "first-touch"}, rows)
}
