package exp

import (
	"fmt"
	"strings"

	"ccnuma/internal/stats"
	"ccnuma/internal/workload"
)

// FigureResult holds normalized execution times: for each application, one
// value per architecture, normalized by the named baseline run.
type FigureResult struct {
	Title string
	// Apps in presentation order; Series[arch][app] = normalized time.
	Apps   []string
	Archs  []string
	Series map[string]map[string]float64
	// Notes holds derived observations (penalties etc.).
	Notes []string
}

// Render draws the figure as a text table of normalized execution times.
func (f *FigureResult) Render() string {
	header := append([]string{"Application"}, f.Archs...)
	var rows [][]string
	for _, app := range f.Apps {
		row := []string{AppLabel(app)}
		for _, arch := range f.Archs {
			row = append(row, fmt.Sprintf("%.3f", f.Series[arch][app]))
		}
		rows = append(rows, row)
	}
	out := renderTable(f.Title, header, rows)
	if len(f.Notes) > 0 {
		out += strings.Join(f.Notes, "\n") + "\n"
	}
	return out
}

// PPPenalty returns the PPC-over-HWC penalty for an app in this figure.
func (f *FigureResult) PPPenalty(app string) float64 {
	h, p := f.Series["HWC"][app], f.Series["PPC"][app]
	if h == 0 {
		return 0
	}
	return p/h - 1
}

// normalized builds a figure over the given apps and variants, normalizing
// by each app's baseline run (HWC under baseVariant).
func (s *Suite) normalized(title string, apps []string, archs []string, v variant, baseVariant variant) (*FigureResult, error) {
	var reqs []runReq
	for _, app := range apps {
		s.gather(&reqs, app, "HWC", baseVariant)
		for _, arch := range archs {
			s.gather(&reqs, app, arch, v)
		}
	}
	s.prefetch(reqs)

	f := &FigureResult{Title: title, Apps: apps, Archs: archs, Series: map[string]map[string]float64{}}
	for _, arch := range archs {
		f.Series[arch] = map[string]float64{}
	}
	for _, app := range apps {
		baseRun, err := s.Run(app, "HWC", baseVariant)
		if err != nil {
			return nil, err
		}
		for _, arch := range archs {
			r, err := s.Run(app, arch, v)
			if err != nil {
				return nil, err
			}
			f.Series[arch][app] = float64(r.ExecTime) / float64(baseRun.ExecTime)
		}
	}
	for _, app := range apps {
		f.Notes = append(f.Notes, fmt.Sprintf("  %-10s PP penalty: %+.0f%%", AppLabel(app), 100*f.PPPenalty(app)))
	}
	return f, nil
}

var allArchs = []string{"HWC", "2HWC", "PPC", "2PPC"}

// Figure6 reproduces the base-configuration comparison of the four
// controller architectures over the eight applications.
func (s *Suite) Figure6() (*FigureResult, error) {
	return s.normalized(
		"Figure 6: normalized execution time on the base system configuration (HWC base = 1.0)",
		workload.PaperApps, allArchs, base(), base())
}

// Figure7 reproduces the 32-byte cache line experiment (normalized to the
// 128-byte-line HWC base, as in the paper).
func (s *Suite) Figure7() (*FigureResult, error) {
	v := variant{name: "line32", lineSize: 32}
	return s.normalized(
		"Figure 7: normalized execution time with small (32 byte) cache lines (base-system HWC = 1.0)",
		workload.PaperApps, allArchs, v, base())
}

// Figure8 reproduces the slow-network (1 us point-to-point) experiment for
// the four applications with the largest PP penalties.
func (s *Suite) Figure8() (*FigureResult, error) {
	v := variant{name: "slownet", netLatency: 200}
	apps := []string{"water-nsq", "fft", "radix", "ocean"}
	return s.normalized(
		"Figure 8: normalized execution time with high (1 us) network latency (base-system HWC = 1.0)",
		apps, allArchs, v, base())
}

// Figure9Result pairs base- and large-data results for FFT and Ocean.
type Figure9Result struct {
	Base, Large *FigureResult
}

// Render formats both halves of Figure 9.
func (f *Figure9Result) Render() string {
	return f.Base.Render() + "\n" + f.Large.Render()
}

// Figure9 reproduces the data-size sensitivity experiment: the PP penalty
// shrinks as data sizes grow (FFT 4x points, Ocean ~2x grid side).
func (s *Suite) Figure9() (*Figure9Result, error) {
	apps := []string{"fft", "ocean"}
	baseFig, err := s.normalized(
		"Figure 9a: normalized execution time, base data sizes (per-app HWC = 1.0)",
		apps, allArchs, base(), base())
	if err != nil {
		return nil, err
	}
	vLarge := variant{name: "large", size: workload.SizeLarge}
	largeFig, err := s.normalized(
		"Figure 9b: normalized execution time, large data sizes (per-app large-HWC = 1.0)",
		apps, allArchs, vLarge, vLarge)
	if err != nil {
		return nil, err
	}
	return &Figure9Result{Base: baseFig, Large: largeFig}, nil
}

// Figure10Result holds the processors-per-node sweep: for each app and
// node width, normalized times per architecture.
type Figure10Result struct {
	Apps   []string
	Widths []int
	Archs  []string
	// Series[app][width][arch] = exec time normalized by the app's
	// base-configuration HWC run.
	Series map[string]map[int]map[string]float64
}

// Render formats the sweep.
func (f *Figure10Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 10: normalized execution time with 1, 2, 4, and 8 processors per SMP node\n")
	b.WriteString("(normalized to each application's 4-processors-per-node HWC run)\n\n")
	header := append([]string{"Application", "procs/node"}, f.Archs...)
	var rows [][]string
	for _, app := range f.Apps {
		for _, wdt := range f.Widths {
			row := []string{AppLabel(app), fmt.Sprintf("%d", wdt)}
			for _, arch := range f.Archs {
				row = append(row, fmt.Sprintf("%.3f", f.Series[app][wdt][arch]))
			}
			rows = append(rows, row)
		}
	}
	b.WriteString(renderTable("", header, rows))
	return b.String()
}

// Figure10 sweeps the number of processors per SMP node while keeping the
// total processor count fixed (64, or 32 for LU and Cholesky), as the
// paper does.
func (s *Suite) Figure10() (*Figure10Result, error) {
	widths := []int{1, 2, 4, 8}
	var reqs []runReq
	for _, app := range workload.PaperApps {
		baseNodes, basePPN := s.geometry(app)
		total := baseNodes * basePPN
		s.gather(&reqs, app, "HWC", base())
		for _, wdt := range widths {
			if total/wdt < 1 {
				continue
			}
			v := variant{name: fmt.Sprintf("ppn%d", wdt), nodes: total / wdt, ppn: wdt}
			for _, arch := range allArchs {
				s.gather(&reqs, app, arch, v)
			}
		}
	}
	s.prefetch(reqs)

	f := &Figure10Result{Apps: workload.PaperApps, Widths: widths, Archs: allArchs,
		Series: map[string]map[int]map[string]float64{}}
	for _, app := range f.Apps {
		baseNodes, basePPN := s.geometry(app)
		total := baseNodes * basePPN
		baseRun, err := s.Run(app, "HWC", base())
		if err != nil {
			return nil, err
		}
		f.Series[app] = map[int]map[string]float64{}
		for _, wdt := range widths {
			if total/wdt < 1 {
				continue
			}
			v := variant{name: fmt.Sprintf("ppn%d", wdt), nodes: total / wdt, ppn: wdt}
			f.Series[app][wdt] = map[string]float64{}
			for _, arch := range allArchs {
				r, err := s.Run(app, arch, v)
				if err != nil {
					return nil, err
				}
				f.Series[app][wdt][arch] = float64(r.ExecTime) / float64(baseRun.ExecTime)
			}
		}
	}
	return f, nil
}

// CurvePoint is one (RCCPI, y) sample of Figures 11 and 12.
type CurvePoint struct {
	Label      string
	RCCPIx1000 float64
	Y          float64
}

// Figure11Result holds the arrival-rate-versus-RCCPI saturation curves.
type Figure11Result struct {
	HWC, PPC []CurvePoint // y = requests per microsecond per controller
}

// Render formats the saturation curves.
func (f *Figure11Result) Render() string {
	var rows [][]string
	for i := range f.HWC {
		rows = append(rows, []string{
			f.HWC[i].Label,
			fmt.Sprintf("%.2f", f.HWC[i].RCCPIx1000),
			fmt.Sprintf("%.2f", f.HWC[i].Y),
			fmt.Sprintf("%.2f", f.PPC[i].Y),
		})
	}
	return renderTable("Figure 11: coherence controller bandwidth limitations (arrival rate vs RCCPI)",
		[]string{"Point", "1000xRCCPI", "HWC req/us", "PPC req/us"}, rows)
}

// figurePoints returns the standard point set for Figures 11 and 12: the
// base applications (except LU and Cholesky, which run on 32 processors in
// the paper) plus the large data sizes of FFT and Ocean.
func (s *Suite) figurePoints() []struct {
	label, app string
	v          variant
} {
	pts := []struct {
		label, app string
		v          variant
	}{}
	for _, app := range workload.PaperApps {
		if app == "lu" || app == "cholesky" {
			continue
		}
		pts = append(pts, struct {
			label, app string
			v          variant
		}{AppLabel(app), app, base()})
	}
	vLarge := variant{name: "large", size: workload.SizeLarge}
	pts = append(pts,
		struct {
			label, app string
			v          variant
		}{"FFT-large", "fft", vLarge},
		struct {
			label, app string
			v          variant
		}{"Ocean-large", "ocean", vLarge},
	)
	return pts
}

// prefetchPoints warms the cache for the Figure 11/12 point set.
func (s *Suite) prefetchPoints() {
	var reqs []runReq
	for _, pt := range s.figurePoints() {
		s.gather(&reqs, pt.app, "HWC", pt.v)
		s.gather(&reqs, pt.app, "PPC", pt.v)
	}
	s.prefetch(reqs)
}

// Figure11 computes the arrival rate of requests to each controller
// architecture against RCCPI, showing PPC saturating below HWC.
func (s *Suite) Figure11() (*Figure11Result, error) {
	s.prefetchPoints()
	f := &Figure11Result{}
	for _, pt := range s.figurePoints() {
		hwc, err := s.Run(pt.app, "HWC", pt.v)
		if err != nil {
			return nil, err
		}
		ppc, err := s.Run(pt.app, "PPC", pt.v)
		if err != nil {
			return nil, err
		}
		f.HWC = append(f.HWC, CurvePoint{pt.label, 1000 * hwc.RCCPI(), hwc.ArrivalRatePerMicrosecond()})
		f.PPC = append(f.PPC, CurvePoint{pt.label, 1000 * ppc.RCCPI(), ppc.ArrivalRatePerMicrosecond()})
	}
	return f, nil
}

// Figure12Result holds the PP-penalty-versus-RCCPI curve.
type Figure12Result struct {
	Points []CurvePoint // y = PP penalty
}

// Render formats the penalty curve.
func (f *Figure12Result) Render() string {
	var rows [][]string
	for _, p := range f.Points {
		rows = append(rows, []string{
			p.Label,
			fmt.Sprintf("%.2f", p.RCCPIx1000),
			fmt.Sprintf("%.0f%%", 100*p.Y),
		})
	}
	return renderTable("Figure 12: effect of communication rate (RCCPI) on PP penalty",
		[]string{"Point", "1000xRCCPI", "PP penalty"}, rows)
}

// Figure12 computes the PP penalty against RCCPI for the standard point
// set, the paper's prediction methodology.
func (s *Suite) Figure12() (*Figure12Result, error) {
	s.prefetchPoints()
	f := &Figure12Result{}
	for _, pt := range s.figurePoints() {
		hwc, err := s.Run(pt.app, "HWC", pt.v)
		if err != nil {
			return nil, err
		}
		ppc, err := s.Run(pt.app, "PPC", pt.v)
		if err != nil {
			return nil, err
		}
		f.Points = append(f.Points, CurvePoint{pt.label, 1000 * hwc.RCCPI(), stats.Penalty(hwc, ppc)})
	}
	return f, nil
}
