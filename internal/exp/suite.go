// Package exp reproduces every table and figure of the paper's evaluation
// section. Each experiment has a typed result plus a text renderer that
// prints the same rows/series the paper reports; cmd/cctables drives them
// all. Runs are memoized inside a Suite so the statistics tables reuse the
// Figure 6 base runs, exactly as the paper derives Tables 6 and 7 from the
// base-configuration simulations.
package exp

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"

	"ccnuma/internal/config"
	"ccnuma/internal/machine"
	"ccnuma/internal/obs"
	"ccnuma/internal/runner"
	"ccnuma/internal/sim"
	"ccnuma/internal/stats"
	"ccnuma/internal/workload"
)

// Suite runs experiments at a given problem-size class, memoizing
// simulation results.
type Suite struct {
	// Size selects the workload problem sizes (SizeTest shrinks both the
	// data sets and the machine for quick smoke runs and benchmarks).
	Size workload.SizeClass
	// Progress, when non-nil, receives one line per completed simulation.
	Progress io.Writer
	// CollectArtifacts, when true, retains one machine-readable run
	// artifact per unique simulation (memoized reruns do not duplicate).
	CollectArtifacts bool
	// Jobs bounds how many simulations run concurrently when an experiment
	// prefetches its runs (<= 0 means GOMAXPROCS). Progress lines, memo
	// cache contents, artifact order, and every rendered result are
	// identical for any value: each simulation is self-contained, and
	// results are always committed in the serial loop's order. Jobs == 1
	// executes the plain serial loop with no goroutines at all.
	Jobs int

	cache     map[string]*stats.Run
	artifacts []*obs.Artifact
}

// Artifacts returns the run documents collected so far, in simulation order.
func (s *Suite) Artifacts() []*obs.Artifact { return s.artifacts }

// NewSuite creates a suite at the given size class. The suite runs
// simulations serially unless Jobs is set.
func NewSuite(size workload.SizeClass) *Suite {
	return &Suite{Size: size, Jobs: 1, cache: make(map[string]*stats.Run)}
}

// geometry returns the machine shape for an application: the paper's base
// system is 16 nodes x 4 processors, with LU and Cholesky run on 8 x 4
// (32 processors) because they do not scale to 64 at these data sizes. At
// SizeTest everything shrinks to 4 x 2 (2 x 2 for lu/cholesky).
func (s *Suite) geometry(app string) (nodes, ppn int) {
	small := app == "lu" || app == "cholesky"
	if s.Size == workload.SizeTest {
		if small {
			return 2, 2
		}
		return 4, 2
	}
	if small {
		return 8, 4
	}
	return 16, 4
}

// variant captures the parameter deltas of the non-base experiments.
type variant struct {
	name       string
	lineSize   int
	netLatency int
	size       workload.SizeClass
	nodes, ppn int // 0 = use default geometry
}

func (s *Suite) key(app, arch string, v variant) string {
	return fmt.Sprintf("%s/%s/%s/%d/%d/%d/%d/%d", app, arch, v.name, v.lineSize, v.netLatency, int(v.size), v.nodes, v.ppn)
}

// runReq is one fully resolved simulation request: a cache key, the exact
// configuration and problem size to run, and how to report it. Requests are
// what both the serial accessors and the parallel prefetcher operate on, so
// the two paths cannot diverge.
type runReq struct {
	key      string
	cfg      config.Config
	app      string
	size     workload.SizeClass
	progress bool   // write a progress line when it completes
	arch     string // progress-line labels
	vname    string
}

// reqFor resolves the standard (app, arch, variant) experiment to a request,
// applying the suite geometry and variant overrides.
func (s *Suite) reqFor(app, arch string, v variant) (runReq, error) {
	cfg := config.Base()
	var err error
	cfg, err = cfg.WithArch(arch)
	if err != nil {
		return runReq{}, err
	}
	nodes, ppn := s.geometry(app)
	if v.nodes > 0 {
		nodes = v.nodes
	}
	if v.ppn > 0 {
		ppn = v.ppn
	}
	cfg.Nodes, cfg.ProcsPerNode = nodes, ppn
	if v.lineSize > 0 {
		cfg.LineSize = v.lineSize
	}
	if v.netLatency > 0 {
		cfg.NetLatency = sim.Time(v.netLatency)
	}
	cfg.SimLimit = 20_000_000_000
	size := s.Size
	if v.size != 0 {
		size = v.size
	}
	if s.Size == workload.SizeTest {
		size = workload.SizeTest
	}
	return runReq{key: s.key(app, arch, v), cfg: cfg, app: app, size: size,
		progress: true, arch: arch, vname: v.name}, nil
}

// Run simulates one application on one architecture under a variant,
// memoizing the result.
func (s *Suite) Run(app, arch string, v variant) (*stats.Run, error) {
	req, err := s.reqFor(app, arch, v)
	if err != nil {
		return nil, err
	}
	if r, ok := s.cache[req.key]; ok {
		return r, nil
	}
	r, art, err := simulateDetached(req, s.CollectArtifacts)
	if err != nil {
		return nil, fmt.Errorf("%s/%s (%s): %w", app, arch, v.name, err)
	}
	s.commit(req, r, art)
	return r, nil
}

// commit records a completed simulation: progress line, memo cache,
// artifact. Always called in request order, on the suite's goroutine.
func (s *Suite) commit(req runReq, r *stats.Run, art *obs.Artifact) {
	if req.progress && s.Progress != nil {
		fmt.Fprintf(s.Progress, "  ran %-10s %-5s %-12s exec=%-12d 1000*RCCPI=%.2f\n",
			req.app, req.arch, req.vname, r.ExecTime, 1000*r.RCCPI())
	}
	s.cache[req.key] = r
	if s.CollectArtifacts && art != nil {
		s.artifacts = append(s.artifacts, art)
	}
}

// gather appends the request for (app, arch, v) to reqs. A request that
// fails to resolve (e.g. an unknown architecture) is silently skipped: the
// serial accessor will hit the same failure and report it properly.
func (s *Suite) gather(reqs *[]runReq, app, arch string, v variant) {
	req, err := s.reqFor(app, arch, v)
	if err != nil {
		return
	}
	*reqs = append(*reqs, req)
}

// prefetch warms the memo cache for a set of requests, running the missing
// simulations across the suite's worker budget. Requests must be listed in
// the order the serial code would first execute them: completions are
// committed (progress, cache, artifacts) in exactly that order, so the
// observable output is byte-identical to the serial loop for any Jobs.
//
// Errors are deliberately ignored here: a failed request is simply not
// cached, and the serial accessor that needs it will re-run it and report
// the error with its usual wrapping. That keeps error text and partial
// progress output identical to a serial run, at the cost of re-running the
// one failing simulation.
func (s *Suite) prefetch(reqs []runReq) {
	if runner.Workers(s.Jobs) == 1 {
		return
	}
	seen := make(map[string]bool, len(reqs))
	todo := reqs[:0:0]
	for _, req := range reqs {
		if seen[req.key] {
			continue
		}
		if _, ok := s.cache[req.key]; ok {
			continue
		}
		seen[req.key] = true
		todo = append(todo, req)
	}
	if len(todo) == 0 {
		return
	}
	type simOut struct {
		run *stats.Run
		art *obs.Artifact
	}
	collect := s.CollectArtifacts
	_, _ = runner.MapStream(context.Background(), s.Jobs, len(todo),
		func(i int) (simOut, error) {
			r, art, err := simulateDetached(todo[i], collect)
			return simOut{run: r, art: art}, err
		},
		func(i int, out simOut) {
			s.commit(todo[i], out.run, out.art)
		})
}

// simulate runs app on a fully specified configuration at the suite's size
// class.
func (s *Suite) simulate(cfg config.Config, app string) (*stats.Run, error) {
	size := workload.SizeBase
	if s.Size == workload.SizeTest {
		size = workload.SizeTest
	}
	r, art, err := simulateDetached(runReq{cfg: cfg, app: app, size: size}, s.CollectArtifacts)
	if err != nil {
		return nil, err
	}
	if s.CollectArtifacts && art != nil {
		s.artifacts = append(s.artifacts, art)
	}
	return r, nil
}

// simulateDetached executes one simulation without touching any suite
// state, so it is safe to call from runner workers. The artifact (if
// requested) is returned rather than recorded; commit attaches it in order.
func simulateDetached(req runReq, collectArtifact bool) (*stats.Run, *obs.Artifact, error) {
	m, err := machine.New(req.cfg, req.app)
	if err != nil {
		return nil, nil, err
	}
	w, err := workload.New(req.app, req.size, m.NProcs())
	if err != nil {
		return nil, nil, err
	}
	if err := w.Setup(m); err != nil {
		return nil, nil, err
	}
	r, err := m.Run(w.Body)
	if err != nil {
		return nil, nil, err
	}
	if err := w.Verify(); err != nil {
		return nil, nil, err
	}
	var art *obs.Artifact
	if collectArtifact {
		art = obs.NewArtifact("cctables", req.size.String(), &req.cfg, r)
	}
	return r, art, nil
}

// base returns the base-configuration variant.
func base() variant { return variant{name: "base"} }

// AppLabel maps internal names to the paper's display names.
func AppLabel(app string) string {
	switch app {
	case "lu":
		return "LU"
	case "water-sp":
		return "Water-Sp"
	case "barnes":
		return "Barnes"
	case "cholesky":
		return "Cholesky"
	case "water-nsq":
		return "Water-Nsq"
	case "fft":
		return "FFT"
	case "radix":
		return "Radix"
	case "ocean":
		return "Ocean"
	default:
		return app
	}
}

// renderTable formats rows of columns with a header, padding columns.
func renderTable(title string, header []string, rows [][]string) string {
	var b strings.Builder
	b.WriteString(title)
	b.WriteString("\n")
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(pad(c, widths[i]))
		}
		b.WriteString("\n")
	}
	line(header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteString("\n")
	for _, row := range rows {
		line(row)
	}
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// sortedKeys returns map keys in sorted order (for deterministic output).
func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
