// Package exp reproduces every table and figure of the paper's evaluation
// section. Each experiment has a typed result plus a text renderer that
// prints the same rows/series the paper reports; cmd/cctables drives them
// all. Runs are memoized inside a Suite so the statistics tables reuse the
// Figure 6 base runs, exactly as the paper derives Tables 6 and 7 from the
// base-configuration simulations.
package exp

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"ccnuma/internal/config"
	"ccnuma/internal/machine"
	"ccnuma/internal/obs"
	"ccnuma/internal/sim"
	"ccnuma/internal/stats"
	"ccnuma/internal/workload"
)

// Suite runs experiments at a given problem-size class, memoizing
// simulation results.
type Suite struct {
	// Size selects the workload problem sizes (SizeTest shrinks both the
	// data sets and the machine for quick smoke runs and benchmarks).
	Size workload.SizeClass
	// Progress, when non-nil, receives one line per completed simulation.
	Progress io.Writer
	// CollectArtifacts, when true, retains one machine-readable run
	// artifact per unique simulation (memoized reruns do not duplicate).
	CollectArtifacts bool

	cache     map[string]*stats.Run
	artifacts []*obs.Artifact
}

// Artifacts returns the run documents collected so far, in simulation order.
func (s *Suite) Artifacts() []*obs.Artifact { return s.artifacts }

// NewSuite creates a suite at the given size class.
func NewSuite(size workload.SizeClass) *Suite {
	return &Suite{Size: size, cache: make(map[string]*stats.Run)}
}

// geometry returns the machine shape for an application: the paper's base
// system is 16 nodes x 4 processors, with LU and Cholesky run on 8 x 4
// (32 processors) because they do not scale to 64 at these data sizes. At
// SizeTest everything shrinks to 4 x 2 (2 x 2 for lu/cholesky).
func (s *Suite) geometry(app string) (nodes, ppn int) {
	small := app == "lu" || app == "cholesky"
	if s.Size == workload.SizeTest {
		if small {
			return 2, 2
		}
		return 4, 2
	}
	if small {
		return 8, 4
	}
	return 16, 4
}

// variant captures the parameter deltas of the non-base experiments.
type variant struct {
	name       string
	lineSize   int
	netLatency int
	size       workload.SizeClass
	nodes, ppn int // 0 = use default geometry
}

func (s *Suite) key(app, arch string, v variant) string {
	return fmt.Sprintf("%s/%s/%s/%d/%d/%d/%d/%d", app, arch, v.name, v.lineSize, v.netLatency, int(v.size), v.nodes, v.ppn)
}

// Run simulates one application on one architecture under a variant,
// memoizing the result.
func (s *Suite) Run(app, arch string, v variant) (*stats.Run, error) {
	k := s.key(app, arch, v)
	if r, ok := s.cache[k]; ok {
		return r, nil
	}
	cfg := config.Base()
	var err error
	cfg, err = cfg.WithArch(arch)
	if err != nil {
		return nil, err
	}
	nodes, ppn := s.geometry(app)
	if v.nodes > 0 {
		nodes = v.nodes
	}
	if v.ppn > 0 {
		ppn = v.ppn
	}
	cfg.Nodes, cfg.ProcsPerNode = nodes, ppn
	if v.lineSize > 0 {
		cfg.LineSize = v.lineSize
	}
	if v.netLatency > 0 {
		cfg.NetLatency = sim.Time(v.netLatency)
	}
	cfg.SimLimit = 20_000_000_000
	size := s.Size
	if v.size != 0 {
		size = v.size
	}
	if s.Size == workload.SizeTest {
		size = workload.SizeTest
	}

	r, err := s.simulateAt(cfg, app, size)
	if err != nil {
		return nil, fmt.Errorf("%s/%s (%s): %w", app, arch, v.name, err)
	}
	if s.Progress != nil {
		fmt.Fprintf(s.Progress, "  ran %-10s %-5s %-12s exec=%-12d 1000*RCCPI=%.2f\n",
			app, arch, v.name, r.ExecTime, 1000*r.RCCPI())
	}
	s.cache[k] = r
	return r, nil
}

// simulate runs app on a fully specified configuration at the suite's size
// class.
func (s *Suite) simulate(cfg config.Config, app string) (*stats.Run, error) {
	size := workload.SizeBase
	if s.Size == workload.SizeTest {
		size = workload.SizeTest
	}
	return s.simulateAt(cfg, app, size)
}

func (s *Suite) simulateAt(cfg config.Config, app string, size workload.SizeClass) (*stats.Run, error) {
	m, err := machine.New(cfg, app)
	if err != nil {
		return nil, err
	}
	w, err := workload.New(app, size, m.NProcs())
	if err != nil {
		return nil, err
	}
	if err := w.Setup(m); err != nil {
		return nil, err
	}
	r, err := m.Run(w.Body)
	if err != nil {
		return nil, err
	}
	if err := w.Verify(); err != nil {
		return nil, err
	}
	if s.CollectArtifacts {
		s.artifacts = append(s.artifacts, obs.NewArtifact("cctables", size.String(), &cfg, r))
	}
	return r, nil
}

// base returns the base-configuration variant.
func base() variant { return variant{name: "base"} }

// AppLabel maps internal names to the paper's display names.
func AppLabel(app string) string {
	switch app {
	case "lu":
		return "LU"
	case "water-sp":
		return "Water-Sp"
	case "barnes":
		return "Barnes"
	case "cholesky":
		return "Cholesky"
	case "water-nsq":
		return "Water-Nsq"
	case "fft":
		return "FFT"
	case "radix":
		return "Radix"
	case "ocean":
		return "Ocean"
	default:
		return app
	}
}

// renderTable formats rows of columns with a header, padding columns.
func renderTable(title string, header []string, rows [][]string) string {
	var b strings.Builder
	b.WriteString(title)
	b.WriteString("\n")
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(pad(c, widths[i]))
		}
		b.WriteString("\n")
	}
	line(header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteString("\n")
	for _, row := range rows {
		line(row)
	}
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// sortedKeys returns map keys in sorted order (for deterministic output).
func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
