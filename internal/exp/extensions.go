package exp

import (
	"fmt"

	"ccnuma/internal/config"
	"ccnuma/internal/stats"
	"ccnuma/internal/workload"
)

// ExtensionResult holds the Section 5 extension studies: scaling the number
// of protocol engines ("more protocol engines for different regions of
// memory") and adding incremental custom hardware to a protocol processor
// (the PPCA engine).
type ExtensionResult struct {
	Apps []string
	// EngineScaling[app][n] = exec time with n region-split PPC engines,
	// normalized by the app's 1-engine PPC run.
	EngineScaling map[string]map[int]float64
	// KindTimes[app][kind] = exec time normalized by the app's HWC run.
	KindTimes map[string]map[string]float64
}

// engineCounts for the scaling study.
var engineCounts = []int{1, 2, 4}

// Extensions runs both Section 5 studies on the given applications
// (defaults to ocean and radix, the highest-penalty pair).
func (s *Suite) Extensions(apps ...string) (*ExtensionResult, error) {
	if len(apps) == 0 {
		apps = []string{"ocean", "radix"}
	}
	var reqs []runReq
	for _, app := range apps {
		for _, n := range engineCounts {
			reqs = append(reqs, s.engineReq(app, n, variant{name: fmt.Sprintf("eng%d", n)}))
		}
		s.gather(&reqs, app, "HWC", base2())
		for _, arch := range []string{"HWC", "PPCA", "PPC"} {
			s.gather(&reqs, app, arch, base2())
		}
	}
	s.prefetch(reqs)

	res := &ExtensionResult{
		Apps:          apps,
		EngineScaling: map[string]map[int]float64{},
		KindTimes:     map[string]map[string]float64{},
	}
	for _, app := range apps {
		res.EngineScaling[app] = map[int]float64{}
		var base *stats.Run
		for _, n := range engineCounts {
			v := variant{name: fmt.Sprintf("eng%d", n)}
			r, err := s.runEngines(app, n, v)
			if err != nil {
				return nil, err
			}
			if n == 1 {
				base = r
			}
			res.EngineScaling[app][n] = float64(r.ExecTime) / float64(base.ExecTime)
		}

		res.KindTimes[app] = map[string]float64{}
		hwc, err := s.Run(app, "HWC", base2())
		if err != nil {
			return nil, err
		}
		for _, arch := range []string{"HWC", "PPCA", "PPC"} {
			r, err := s.Run(app, arch, base2())
			if err != nil {
				return nil, err
			}
			res.KindTimes[app][arch] = float64(r.ExecTime) / float64(hwc.ExecTime)
		}
	}
	return res, nil
}

// base2 aliases the base variant (kept separate so extension runs get their
// own cache keys when suites are shared).
func base2() variant { return variant{name: "base"} }

// engineReq resolves the n-region-split-PPC-engines study to a request.
func (s *Suite) engineReq(app string, n int, v variant) runReq {
	cfg := config.Base()
	cfg.Engine = config.PPC
	cfg.NumEngines = n
	if n > 1 {
		cfg.Split = config.SplitRegion
	}
	nodes, ppn := s.geometry(app)
	cfg.Nodes, cfg.ProcsPerNode = nodes, ppn
	cfg.SimLimit = 20_000_000_000
	size := workload.SizeBase
	if s.Size == workload.SizeTest {
		size = workload.SizeTest
	}
	return runReq{key: s.key(app, fmt.Sprintf("%dPPC-region", n), v),
		cfg: cfg, app: app, size: size}
}

// runEngines simulates app with n region-split PPC engines.
func (s *Suite) runEngines(app string, n int, v variant) (*stats.Run, error) {
	req := s.engineReq(app, n, v)
	if r, ok := s.cache[req.key]; ok {
		return r, nil
	}
	r, art, err := simulateDetached(req, s.CollectArtifacts)
	if err != nil {
		return nil, err
	}
	s.commit(req, r, art)
	return r, nil
}

// Render formats the extension studies.
func (r *ExtensionResult) Render() string {
	var rows [][]string
	for _, app := range r.Apps {
		for _, n := range engineCounts {
			rows = append(rows, []string{
				AppLabel(app),
				fmt.Sprintf("%d x PPC (region split)", n),
				fmt.Sprintf("%.3f", r.EngineScaling[app][n]),
			})
		}
		for _, arch := range []string{"HWC", "PPCA", "PPC"} {
			rows = append(rows, []string{
				AppLabel(app),
				arch + " (1 engine)",
				fmt.Sprintf("%.3f", r.KindTimes[app][arch]),
			})
		}
	}
	return renderTable("Extensions (paper section 5): engine scaling (normalized to 1xPPC) and accelerated protocol processor (normalized to HWC)",
		[]string{"Application", "Configuration", "Normalized time"}, rows)
}
