package model

import (
	"fmt"

	"ccnuma/internal/config"
	"ccnuma/internal/extract"
	"ccnuma/internal/machine"
	"ccnuma/internal/protocol"
)

// Conformance implements core.ConformanceHook: it replays every handler
// dispatch and network send of a running concrete simulator through the
// extracted transition table and records the ones the model does not
// admit. This closes the loop from the other side of the checker — the
// checker proves properties of the abstract model, the conformance
// harness shows the concrete simulator stays inside it.
type Conformance struct {
	ix *extract.Index
	// Dispatches and Sends count validated events.
	Dispatches uint64
	Sends      uint64
	Failures   []string
}

const maxFailures = 16

// NewConformance builds a hook validating against ix.
func NewConformance(ix *extract.Index) *Conformance { return &Conformance{ix: ix} }

// Events is the number of concrete transitions validated.
func (c *Conformance) Events() uint64 { return c.Dispatches + c.Sends }

func (c *Conformance) fail(f string) {
	if len(c.Failures) < maxFailures {
		c.Failures = append(c.Failures, f)
	}
}

// Dispatch checks that the model admits dispatching trigger as h.
func (c *Conformance) Dispatch(node int, trigger string, h protocol.Handler) {
	c.Dispatches++
	name, ok := c.ix.HandlerByID[int(h)]
	if !ok {
		c.fail(fmt.Sprintf("n%d: dispatch of handler id %d (trigger %q) not in the model", node, int(h), trigger))
		return
	}
	if !c.ix.Admits(trigger, name) {
		c.fail(fmt.Sprintf("n%d: model admits no rule for trigger %q as handler %s", node, trigger, name))
	}
}

// Send checks an outgoing message: synchronous sends must be admitted
// under the dispatching (trigger, handler) rule; asynchronous sends
// (completion closures, the NI NACK bounce, the direct write-back path)
// must be of a type the model marks deferrable.
func (c *Conformance) Send(node int, inDispatch bool, trigger string, h protocol.Handler, t protocol.MsgType) {
	c.Sends++
	name := t.String()
	if !inDispatch {
		if !c.ix.Deferred[name] {
			c.fail(fmt.Sprintf("n%d: %s sent outside a dispatch but the model marks no %s send deferred", node, name, name))
		}
		return
	}
	hn := c.ix.HandlerByID[int(h)]
	if !c.ix.AdmitsSend(trigger, hn, name) {
		c.fail(fmt.Sprintf("n%d: model admits no %s send under trigger %q handler %s", node, name, trigger, hn))
	}
}

// ConformanceConfig shapes one concrete replay run.
type ConformanceConfig struct {
	Nodes int
	Lines int
	// Ops is the number of chained accesses per processor.
	Ops    int
	Robust bool
	// Nacks arms ForceNackNext on every controller, driving the real
	// NACK/backoff/retry path through the hook.
	Nacks int
}

// DefaultConformanceConfigs is the standard sampling mix: a small
// machine, a wider one, and a robust one with forced NACKs.
var DefaultConformanceConfigs = []ConformanceConfig{
	{Nodes: 2, Lines: 2, Ops: 32},
	{Nodes: 4, Lines: 3, Ops: 32},
	{Nodes: 4, Lines: 2, Ops: 32, Robust: true, Nacks: 4},
}

// RunConformance drives freshly built concrete machines through
// contended access storms with the hook attached and returns the
// aggregated validation counts and failures.
func RunConformance(ix *extract.Index, cfgs ...ConformanceConfig) (*Conformance, error) {
	c := NewConformance(ix)
	if len(cfgs) == 0 {
		cfgs = DefaultConformanceConfigs
	}
	for _, vc := range cfgs {
		if err := c.run(vc); err != nil {
			return nil, err
		}
	}
	return c, nil
}

func (c *Conformance) run(vc ConformanceConfig) error {
	mc := config.Base()
	mc.Nodes = vc.Nodes
	mc.ProcsPerNode = 1
	mc.Topology = config.TopoCrossbar
	// Single-set, single-line caches: walking more than one line evicts
	// on every step, so the storm exercises write-backs and interventions
	// as densely as possible.
	mc.L1Size, mc.L1Assoc = mc.LineSize, 1
	mc.L2Size, mc.L2Assoc = mc.LineSize, 1
	mc.DirCacheEntries = 0
	mc.SimLimit = 20_000_000
	if vc.Robust {
		mc = mc.WithRobustness()
	}
	m, err := machine.New(mc, "ccmodel-conform")
	if err != nil {
		return err
	}
	for _, cc := range m.CCs {
		cc.SetConformanceHook(c)
	}
	ls := m.Cfg.LineSize
	lines := make([]uint64, vc.Lines)
	for i := range lines {
		lines[i] = uint64(m.Space.AllocOnNode(ls, i%vc.Nodes))
	}
	if vc.Nacks > 0 {
		for _, cc := range m.CCs {
			cc.ForceNackNext(vc.Nacks)
		}
	}
	// Every processor walks the shared lines with a deterministic
	// phase-shifted read/write pattern, chaining the next access from the
	// completion callback so each always has one outstanding (maximum
	// contention and interleaving).
	for pi, p := range m.Procs {
		p, pi := p, pi
		step := 0
		var next func()
		next = func() {
			if step >= vc.Ops {
				return
			}
			line := lines[(step+pi)%len(lines)]
			write := (step+pi)%3 != 1
			step++
			p.SyncAccess(line, write, next)
		}
		next()
	}
	for m.Eng.Step() {
	}
	if m.Eng.LimitHit() {
		return fmt.Errorf("model: conformance run %+v hit the event limit before draining", vc)
	}
	if err := m.CheckCoherence(); err != nil {
		return fmt.Errorf("model: conformance run %+v ended incoherent: %w", vc, err)
	}
	return nil
}
