package model

import (
	"strings"
	"testing"

	"ccnuma/internal/extract"
)

// loadIndex loads the committed artifact's index (freshness is asserted
// separately by the extract package's gate test).
func loadIndex(t *testing.T) *extract.Index {
	t.Helper()
	m, _, err := extract.LoadArtifact("../..")
	if err != nil {
		t.Fatalf("no committed model artifact: %v (run `ccmodel -write`)", err)
	}
	return m.Index()
}

// TestFixpoints is the issue's core acceptance: every configuration in
// the table — including four nodes with the finite-buffer NACK/backoff
// edges — must exhaust its reachable state space with zero violations.
func TestFixpoints(t *testing.T) {
	ix := loadIndex(t)
	for _, tc := range []struct {
		cfg       Config
		minStates uint64
	}{
		{Config{Nodes: 2, Lines: 1}, 50},
		{Config{Nodes: 3, Lines: 1}, 500},
		{Config{Nodes: 4, Lines: 1}, 10_000},
		{Config{Nodes: 2, Lines: 1, Robust: true}, 100},
		{Config{Nodes: 4, Lines: 1, Robust: true}, 100_000},
		{Config{Nodes: 2, Lines: 2, POR: true}, 1_000},
	} {
		tc := tc
		res, err := Check(tc.cfg, ix)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%s", res)
		for i := range res.Violations {
			t.Errorf("violation: %s", res.Violations[i].String())
		}
		if !res.Fixpoint {
			t.Errorf("%+v: no fixpoint within %d states", tc.cfg, tc.cfg.withDefaults().MaxStates)
		}
		if res.States < tc.minStates {
			t.Errorf("%+v: only %d states reached, want >= %d (exploration collapsed?)", tc.cfg, res.States, tc.minStates)
		}
		if res.Depth <= 0 || res.Transitions <= res.States {
			t.Errorf("%+v: implausible exploration: %s", tc.cfg, res)
		}
	}
}

// TestRobustReachesNACKs requires the robust exploration to actually be
// larger than the non-robust one — i.e. the NACK/backoff/retry edges
// contribute reachable states rather than being dead configuration.
func TestRobustReachesNACKs(t *testing.T) {
	ix := loadIndex(t)
	base, err := Check(Config{Nodes: 3, Lines: 1}, ix)
	if err != nil {
		t.Fatal(err)
	}
	robust, err := Check(Config{Nodes: 3, Lines: 1, Robust: true}, ix)
	if err != nil {
		t.Fatal(err)
	}
	if !base.Fixpoint || !robust.Fixpoint {
		t.Fatalf("expected fixpoints: base=%s robust=%s", base, robust)
	}
	if robust.States <= base.States {
		t.Errorf("robust exploration (%d states) not larger than base (%d)", robust.States, base.States)
	}
}

// TestPORSoundAndEffective runs the two-line machine with and without
// the partial-order reduction: both must reach a violation-free
// fixpoint, and the reduced run must visit strictly fewer states while
// reporting the transitions it pruned.
func TestPORSoundAndEffective(t *testing.T) {
	ix := loadIndex(t)
	full, err := Check(Config{Nodes: 2, Lines: 2}, ix)
	if err != nil {
		t.Fatal(err)
	}
	red, err := Check(Config{Nodes: 2, Lines: 2, POR: true}, ix)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("full: %s", full)
	t.Logf("por:  %s", red)
	if !full.Fixpoint || len(full.Violations) > 0 {
		t.Fatalf("full exploration failed: %s", full)
	}
	if !red.Fixpoint || len(red.Violations) > 0 {
		t.Fatalf("reduced exploration failed: %s", red)
	}
	if red.Reductions == 0 {
		t.Error("POR pruned nothing")
	}
	if red.States >= full.States {
		t.Errorf("POR visited %d states, full visited %d — no reduction", red.States, full.States)
	}
}

// TestStateBound pins the MaxStates cap: a tiny budget must stop the
// exploration without a fixpoint claim and without violations.
func TestStateBound(t *testing.T) {
	res, err := Check(Config{Nodes: 4, Lines: 1, MaxStates: 500}, loadIndex(t))
	if err != nil {
		t.Fatal(err)
	}
	if res.Fixpoint {
		t.Error("capped run claimed a fixpoint")
	}
	if len(res.Violations) > 0 {
		t.Errorf("capped run reported violations: %s", res)
	}
	if res.States < 500 || res.States > 600 {
		t.Errorf("capped run visited %d states, want ~500", res.States)
	}
}

// TestConfigValidation pins the config guard rails.
func TestConfigValidation(t *testing.T) {
	ix := loadIndex(t)
	for _, cfg := range []Config{
		{Nodes: 1, Lines: 1},
		{Nodes: maxNodes + 1, Lines: 1},
		{Nodes: 2, Lines: maxLines + 1},
	} {
		if _, err := Check(cfg, ix); err == nil {
			t.Errorf("Check accepted invalid config %+v", cfg)
		}
	}
}

// TestUnmodeledTransitionDetected seeds a drift: with the clean-home-read
// rule deleted from the index, the checker must report the very first
// dispatch of that rule as an unmodeled transition, with a trace.
func TestUnmodeledTransitionDetected(t *testing.T) {
	ix := loadIndex(t)
	delete(ix.Rules, extract.RuleKey{Trigger: "msg:ReadReq", Handler: "HRemoteReadHomeClean"})
	res, err := Check(Config{Nodes: 2, Lines: 1}, ix)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) == 0 {
		t.Fatal("deleting a rule from the index went undetected")
	}
	v := res.Violations[0]
	if v.Kind != "unmodeled-transition" {
		t.Errorf("violation kind = %s, want unmodeled-transition", v.Kind)
	}
	if !strings.Contains(v.Detail, "HRemoteReadHomeClean") {
		t.Errorf("violation does not name the missing handler: %s", v.Detail)
	}
	if len(v.Trace) == 0 {
		t.Error("violation carries no trace")
	}
}

// TestUnmodeledSendDetected seeds the other drift direction: the rule
// still admits the dispatch but its DataShared send is stripped (and the
// type removed from the deferred set), so the grant must surface as an
// unmodeled send.
func TestUnmodeledSendDetected(t *testing.T) {
	ix := loadIndex(t)
	for _, rules := range ix.Rules {
		for _, r := range rules {
			kept := r.Sends[:0]
			for _, s := range r.Sends {
				if s.Type != "DataShared" {
					kept = append(kept, s)
				}
			}
			r.Sends = kept
		}
	}
	delete(ix.Deferred, "DataShared")
	res, err := Check(Config{Nodes: 2, Lines: 1}, ix)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) == 0 {
		t.Fatal("stripping every DataShared send went undetected")
	}
	if res.Violations[0].Kind != "unmodeled-send" {
		t.Errorf("violation kind = %s, want unmodeled-send", res.Violations[0].Kind)
	}
}

// TestConformance is the issue's replay acceptance: the default concrete
// runs (including a robust one with forced NACKs) must validate at least
// a thousand transitions against the extracted model without a failure.
func TestConformance(t *testing.T) {
	c, err := RunConformance(loadIndex(t))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("dispatches=%d sends=%d", c.Dispatches, c.Sends)
	for _, f := range c.Failures {
		t.Errorf("conformance: %s", f)
	}
	if c.Events() < 1000 {
		t.Errorf("validated only %d events, want >= 1000", c.Events())
	}
	if c.Dispatches == 0 || c.Sends == 0 {
		t.Error("one event class never fired; the hook is not wired through both paths")
	}
}

// TestConformanceDetectsDrift cripples the index (no rules, no deferred
// sends) and requires the replay to report failures rather than pass
// vacuously.
func TestConformanceDetectsDrift(t *testing.T) {
	m, _, err := extract.LoadArtifact("../..")
	if err != nil {
		t.Fatal(err)
	}
	ix := m.Index()
	ix.Rules = map[extract.RuleKey][]*extract.Rule{}
	ix.Deferred = map[string]bool{}
	c, err := RunConformance(ix, ConformanceConfig{Nodes: 2, Lines: 1, Ops: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Failures) == 0 {
		t.Fatal("an empty rule table validated a concrete run")
	}
}
