package model

import (
	"fmt"

	"ccnuma/internal/extract"
)

// Violation is one invariant failure, with the action trace that
// reaches it from the initial state.
type Violation struct {
	Kind   string
	Detail string
	Trace  []string
}

func (v *Violation) String() string {
	out := v.Kind + ": " + v.Detail
	for _, step := range v.Trace {
		out += "\n  " + step
	}
	return out
}

// Result summarizes one exploration.
type Result struct {
	Config      Config
	States      uint64
	Transitions uint64
	// Reductions counts transitions the partial-order reduction proved
	// redundant and skipped.
	Reductions uint64
	// Depth is the BFS depth reached (the state graph's eccentricity from
	// the initial state when Fixpoint holds).
	Depth int
	// Fixpoint reports that the reachable state space was exhausted:
	// every reachable state (modulo hash compaction) was expanded without
	// hitting MaxStates or a violation.
	Fixpoint   bool
	Violations []Violation
}

func (r *Result) String() string {
	status := "fixpoint"
	if !r.Fixpoint {
		status = "bounded"
	}
	if len(r.Violations) > 0 {
		status = "violation"
	}
	s := fmt.Sprintf("nodes=%d lines=%d robust=%v por=%v: %s — %d states, %d transitions, %d reduced, depth %d",
		r.Config.Nodes, r.Config.Lines, r.Config.Robust, r.Config.POR, status,
		r.States, r.Transitions, r.Reductions, r.Depth)
	for i := range r.Violations {
		s += "\n" + r.Violations[i].String()
	}
	return s
}

const maxTrace = 1 << 14

// Check explores the abstract machine under cfg, validating every
// labeled transition against the extracted model index and checking the
// coherence invariants on every reached state. It stops at the first
// violation (returning its trace) or at a fixpoint.
func Check(cfg Config, ix *extract.Index) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	res := &Result{Config: cfg}
	init := cfg.initial()
	h0 := init.hash(cfg)
	type entry struct {
		parent uint64
		label  string
	}
	// Hash compaction: the visited set keys on the 64-bit state hash
	// only. Parent hash + action label per entry reconstruct violation
	// traces without storing states.
	visited := map[uint64]entry{h0: {parent: h0}}
	frontier := []state{init}

	trace := func(h uint64, last string) []string {
		var rev []string
		if last != "" {
			rev = append(rev, last)
		}
		for steps := 0; h != h0 && steps < maxTrace; steps++ {
			e, ok := visited[h]
			if !ok {
				break
			}
			rev = append(rev, e.label)
			h = e.parent
		}
		out := make([]string, 0, len(rev))
		for i := len(rev) - 1; i >= 0; i-- {
			out = append(out, rev[i])
		}
		return out
	}
	report := func(kind, detail string, h uint64, last string) {
		res.Violations = append(res.Violations, Violation{Kind: kind, Detail: detail, Trace: trace(h, last)})
	}

	capped := false
	for len(frontier) > 0 && len(res.Violations) == 0 && !capped {
		res.Depth++
		var next []state
		for fi := range frontier {
			if len(res.Violations) > 0 || capped {
				break
			}
			s := &frontier[fi]
			sh := s.hash(cfg)
			succs := successors(cfg, s)
			if len(succs) == 0 {
				if s.pendingWork(cfg) {
					report("deadlock", "pending work but no enabled transition in\n"+s.describe(cfg), sh, "")
				}
				continue
			}
			hs := make([]uint64, len(succs))
			for i := range succs {
				hs[i] = succs[i].next.hash(cfg)
			}
			sel := ample(cfg, succs, hs, func(h uint64) bool { _, ok := visited[h]; return ok })
			res.Reductions += uint64(len(succs) - len(sel))
			for _, i := range sel {
				sc := &succs[i]
				res.Transitions++
				if sc.check {
					if !ix.Admits(sc.trigger, sc.handler) {
						report("unmodeled-transition",
							fmt.Sprintf("extracted model admits no rule for trigger %q as handler %q", sc.trigger, sc.handler),
							sh, sc.label)
						break
					}
					for _, t := range sc.sends {
						name := t.String()
						if !ix.AdmitsSend(sc.trigger, sc.handler, name) && !ix.Deferred[name] {
							report("unmodeled-send",
								fmt.Sprintf("extracted model admits no %s send under trigger %q handler %q", name, sc.trigger, sc.handler),
								sh, sc.label)
							break
						}
					}
					if len(res.Violations) > 0 {
						break
					}
				}
				if sc.stale != "" {
					report("stale-read", sc.stale, sh, sc.label)
					break
				}
				if _, seen := visited[hs[i]]; seen {
					continue
				}
				visited[hs[i]] = entry{parent: sh, label: sc.label}
				if kind, detail := invariant(cfg, &sc.next); kind != "" {
					report(kind, detail+"\n"+sc.next.describe(cfg), sh, sc.label)
					break
				}
				if len(visited) >= cfg.MaxStates {
					capped = true
					break
				}
				next = append(next, sc.next)
			}
		}
		frontier = next
	}
	res.States = uint64(len(visited))
	res.Fixpoint = !capped && len(res.Violations) == 0
	if !res.Fixpoint {
		res.Depth-- // the last level was not fully expanded
	}
	return res, nil
}

// ample selects the transitions to expand from succs — the partial-order
// reduction. The abstract machine's lines are fully independent: every
// transition reads and writes a single line's state plus that line's
// slice of the message pool (push caps per line, so one line can never
// disable another's sends). The global system is therefore a product of
// per-line systems, and expanding only one line's transitions at a state
// preserves reachability of every per-line invariant violation: the
// skipped lines' transitions remain enabled and commute past the chosen
// line's. Two provisos keep it sound:
//
//   - The chosen set is ALL transitions of one line (deliveries, issues,
//     and evictions — same-line transitions do interfere), chosen as the
//     lowest line with an enabled delivery so in-flight work drains and
//     globally-quiescent states (where the cross-line quiescence
//     invariants are checked) stay reachable.
//   - The ignoring problem: if every successor in the chosen set is
//     already visited (a cycle confined to the line, e.g. a NACK/retry
//     loop), the reduction could starve the other lines forever, so the
//     state is expanded fully instead.
func ample(cfg Config, succs []succ, hs []uint64, seen func(uint64) bool) []int {
	all := make([]int, len(succs))
	for i := range succs {
		all[i] = i
	}
	if !cfg.POR || cfg.Lines == 1 {
		return all
	}
	line := int8(-1)
	for i := range succs {
		if succs[i].deliver && (line < 0 || succs[i].line < line) {
			line = succs[i].line
		}
	}
	if line < 0 {
		return all
	}
	var amp []int
	fresh := false
	for i := range succs {
		if succs[i].line == line {
			amp = append(amp, i)
			if !seen(hs[i]) {
				fresh = true
			}
		}
	}
	if len(amp) == len(succs) || !fresh {
		return all
	}
	return amp
}

// invariant checks a state. Single-owner is checked everywhere; the
// freshness, lost-writeback, and directory-accounting invariants only
// hold at quiescence (no in-flight messages, home ops, or MSHRs).
func invariant(c Config, s *state) (kind, detail string) {
	for l := 0; l < c.Lines; l++ {
		ls := &s.lines[l]
		mods, valid := 0, 0
		for n := 0; n < c.Nodes; n++ {
			if ls.cache[n] == cMod {
				mods++
			}
			if ls.cache[n] != cInv {
				valid++
			}
		}
		if mods > 1 {
			return "single-owner", fmt.Sprintf("%d Modified copies of line %d", mods, l)
		}
		if mods == 1 && valid > 1 {
			return "single-owner", fmt.Sprintf("Modified copy of line %d coexists with %d other valid copies", l, valid-1)
		}
	}
	if s.pendingWork(c) {
		return "", ""
	}
	for l := 0; l < c.Lines; l++ {
		ls := &s.lines[l]
		h := c.home(l)
		current := ls.memFresh
		for n := 0; n < c.Nodes; n++ {
			if ls.cache[n] != cInv && !ls.fresh[n] {
				return "stale-copy", fmt.Sprintf("n%d holds a stale copy of line %d at quiescence", n, l)
			}
			if ls.fresh[n] && ls.cache[n] != cInv {
				current = true
			}
		}
		if !current {
			return "lost-writeback", fmt.Sprintf("line %d has no current copy at quiescence (memory stale, no fresh cache)", l)
		}
		for n := 0; n < c.Nodes; n++ {
			if n == h || ls.cache[n] == cInv {
				continue
			}
			if ls.cache[n] == cMod && !(ls.dirState == dDirty && int(ls.owner) == n) {
				return "untracked-owner", fmt.Sprintf("n%d holds line %d Modified but the directory does not record it as owner", n, l)
			}
			if ls.cache[n] == cShared && ls.dirState == dShared && ls.sharers&(1<<uint(n)) == 0 {
				return "untracked-sharer", fmt.Sprintf("n%d holds line %d Shared but is not in the directory's sharer set", n, l)
			}
			if ls.cache[n] == cShared && ls.dirState == dNone {
				return "untracked-sharer", fmt.Sprintf("n%d holds line %d Shared but the directory records no remote copies", n, l)
			}
		}
		// The directory may legally over-approximate: a recorded owner can
		// have written back already (the write-back raced the op that
		// recorded it; the next request recovers via InterventionMiss). It
		// must still name a real node, and the raced write-back must have
		// reached memory — otherwise the value is gone.
		if ls.dirState == dDirty && ls.owner < 0 {
			return "dangling-owner", fmt.Sprintf("directory records line %d dirty-remote without an owner", l)
		}
		if ls.dirState == dDirty && ls.cache[ls.owner] != cMod && !ls.memFresh {
			return "lost-writeback", fmt.Sprintf("line %d owner n%d wrote back but memory is stale at quiescence", l, ls.owner)
		}
	}
	return "", ""
}
