// Package model is the explicit-state checker over the statically
// extracted protocol model (internal/extract). It explores an abstract
// nodes × lines machine — directory, caches, pending-operation mirrors,
// and an unordered bounded message pool with NACK/backoff edges — using
// 64-bit hash compaction for the visited set and a per-line
// partial-order reduction, and checks the same single-owner /
// stale-read / lost-writeback / deadlock invariants as ccverify but at
// node counts the replay-based checker cannot reach. Every transition
// the machine takes is labeled with the (trigger, handler) pair of the
// concrete dispatch it abstracts and checked for admission against the
// extracted rule table, so the hand-written abstraction cannot drift
// from the implementation without a reported unmodeled transition.
package model

import (
	"fmt"

	"ccnuma/internal/protocol"
)

// Abstract machine bounds. These are compile-time capacities, not the
// checked configuration (Config picks the live sizes). The message pool
// is capped PER LINE, with the global array sized so the per-line cap is
// the only one that can bind: the partial-order reduction relies on
// actions of different lines being independent, which a shared global
// capacity would break (one line filling the pool could disable another
// line's sends).
const (
	maxNodes = 8
	maxLines = 4
	msgCap   = 10
	maxMsgs  = maxLines * msgCap
)

// Cache states of the abstract single-proc node.
const (
	cInv uint8 = iota
	cShared
	cMod
)

// Directory states, mirroring directory.State.
const (
	dNone uint8 = iota
	dShared
	dDirty
)

// MSHR kinds of the abstract remote-request tracker.
const (
	mNone uint8 = iota
	mRead
	mReadEx
)

// msg is one in-flight network message. The pool is an unordered
// multiset (the abstraction admits every delivery order).
type msg struct {
	typ   protocol.MsgType
	line  int8
	src   int8
	dst   int8
	req   int8 // requester (-1 = home-local)
	excl  bool
	fresh bool // payload carries the current value
	retry bool
}

// homeOp mirrors the concrete controller's pending home-side operation
// for one line (at most one, matching the homeOps conflict requeue).
type homeOp struct {
	active    bool
	requester int8 // -1 = local processor at home
	excl      bool
	acksLeft  int8
	waitWB    bool // requester is the dirty owner; wait for its write-back
	fetch     bool // intervention outstanding at the owner
	needMem   bool // intervention missed; grant from memory when it is safe
	// reqWroteBack: the requester received ownership directly from the
	// old owner and already wrote the line back while this op was still
	// waiting for the owner's completion; the op must not retire
	// recording the requester as dirty owner.
	reqWroteBack bool
}

// mshrEntry mirrors the concrete remote-side request tracker.
type mshrEntry struct {
	kind     uint8
	backoff  bool // NACKed, reissue pending
	attempts uint8
}

// lineState is the full abstract state of one line.
type lineState struct {
	dirState uint8
	sharers  uint8 // bitmask of remote sharers
	owner    int8
	memFresh bool // home memory holds the current value
	op       homeOp
	cache    [maxNodes]uint8
	fresh    [maxNodes]bool
	mshr     [maxNodes]mshrEntry
}

// state is one explored global state. It is a comparable value type:
// the message pool is kept sorted so equal multisets encode equally.
type state struct {
	lines [maxLines]lineState
	msgs  [maxMsgs]msg
	nmsgs uint8
}

// Config sizes and shapes one exploration.
type Config struct {
	Nodes int
	Lines int
	// Robust enables the finite-buffer edges: at every request delivery
	// the home may instead bounce a NACK (modeling a full NI queue), and
	// requesters back off and reissue with the retry bit set.
	Robust bool
	// MaxAttempts caps NACK bounces per outstanding request so the
	// NACK/retry cycle stays finite (matching the concrete retry budget).
	MaxAttempts int
	// MaxStates bounds the exploration; 0 means the package default.
	MaxStates int
	// POR enables the per-line partial-order reduction.
	POR bool
}

func (c Config) withDefaults() Config {
	if c.Nodes == 0 {
		c.Nodes = 4
	}
	if c.Lines == 0 {
		c.Lines = 1
	}
	if c.MaxAttempts == 0 {
		c.MaxAttempts = 1
	}
	if c.MaxStates == 0 {
		c.MaxStates = 4_000_000
	}
	return c
}

func (c Config) validate() error {
	if c.Nodes < 2 || c.Nodes > maxNodes {
		return fmt.Errorf("model: Nodes must be in [2,%d], got %d", maxNodes, c.Nodes)
	}
	if c.Lines < 1 || c.Lines > maxLines {
		return fmt.Errorf("model: Lines must be in [1,%d], got %d", maxLines, c.Lines)
	}
	return nil
}

// home maps a line to its home node (block-cyclic, like the simulator's
// default space layout).
func (c Config) home(line int) int { return line % c.Nodes }

// initial is the reset state: all caches invalid, directories empty,
// memory fresh.
func (c Config) initial() state {
	var s state
	for l := 0; l < c.Lines; l++ {
		s.lines[l].owner = -1
		s.lines[l].memFresh = true
	}
	return s
}

// ---- message pool ----------------------------------------------------------

func msgLess(a, b msg) bool {
	if a.typ != b.typ {
		return a.typ < b.typ
	}
	if a.line != b.line {
		return a.line < b.line
	}
	if a.src != b.src {
		return a.src < b.src
	}
	if a.dst != b.dst {
		return a.dst < b.dst
	}
	if a.req != b.req {
		return a.req < b.req
	}
	if a.excl != b.excl {
		return b.excl
	}
	if a.fresh != b.fresh {
		return b.fresh
	}
	if a.retry != b.retry {
		return b.retry
	}
	return false
}

// push inserts a message keeping the pool sorted; it reports false when
// the message's line is at its pool cap (the action that needed it is
// then not enabled).
func (s *state) push(m msg) bool {
	inLine := 0
	for i := 0; i < int(s.nmsgs); i++ {
		if s.msgs[i].line == m.line {
			inLine++
		}
	}
	if inLine >= msgCap || int(s.nmsgs) >= maxMsgs {
		return false
	}
	i := int(s.nmsgs)
	for i > 0 && msgLess(m, s.msgs[i-1]) {
		s.msgs[i] = s.msgs[i-1]
		i--
	}
	s.msgs[i] = m
	s.nmsgs++
	return true
}

// drop removes the message at index i, keeping the pool sorted.
func (s *state) drop(i int) {
	for j := i; j < int(s.nmsgs)-1; j++ {
		s.msgs[j] = s.msgs[j+1]
	}
	s.nmsgs--
	s.msgs[s.nmsgs] = msg{}
}

// ---- hashing ---------------------------------------------------------------

const (
	fnvOffset = 0xcbf29ce484222325
	fnvPrime  = 0x100000001b3
)

func fnv1a(h uint64, b byte) uint64 { return (h ^ uint64(b)) * fnvPrime }

func fnvBool(h uint64, v bool) uint64 {
	if v {
		return fnv1a(h, 1)
	}
	return fnv1a(h, 0)
}

// hash compacts the state to 64 bits (FNV-1a over a canonical field
// walk). The visited set stores only this hash — the classic
// hash-compaction trade: a collision can hide states, which is accepted
// for the scale it buys.
func (s *state) hash(c Config) uint64 {
	h := uint64(fnvOffset)
	for l := 0; l < c.Lines; l++ {
		ls := &s.lines[l]
		h = fnv1a(h, ls.dirState)
		h = fnv1a(h, ls.sharers)
		h = fnv1a(h, byte(ls.owner))
		h = fnvBool(h, ls.memFresh)
		op := &ls.op
		h = fnvBool(h, op.active)
		h = fnv1a(h, byte(op.requester))
		h = fnvBool(h, op.excl)
		h = fnv1a(h, byte(op.acksLeft))
		h = fnvBool(h, op.waitWB)
		h = fnvBool(h, op.fetch)
		h = fnvBool(h, op.needMem)
		h = fnvBool(h, op.reqWroteBack)
		for n := 0; n < c.Nodes; n++ {
			h = fnv1a(h, ls.cache[n])
			h = fnvBool(h, ls.fresh[n])
			h = fnv1a(h, ls.mshr[n].kind)
			h = fnvBool(h, ls.mshr[n].backoff)
			h = fnv1a(h, ls.mshr[n].attempts)
		}
	}
	h = fnv1a(h, s.nmsgs)
	for i := 0; i < int(s.nmsgs); i++ {
		m := &s.msgs[i]
		h = fnv1a(h, byte(m.typ))
		h = fnv1a(h, byte(m.line))
		h = fnv1a(h, byte(m.src))
		h = fnv1a(h, byte(m.dst))
		h = fnv1a(h, byte(m.req))
		h = fnvBool(h, m.excl)
		h = fnvBool(h, m.fresh)
		h = fnvBool(h, m.retry)
	}
	return h
}

// ---- small state helpers ---------------------------------------------------

func bitCount(m uint8) int8 {
	var n int8
	for ; m != 0; m &= m - 1 {
		n++
	}
	return n
}

// grantInFlight reports whether a data grant for (node, line) is already
// traveling — the window where the concrete controller parks incoming
// invalidations instead of acting on them.
func (s *state) grantInFlight(node, line int) bool {
	for i := 0; i < int(s.nmsgs); i++ {
		m := &s.msgs[i]
		if int(m.line) != line || int(m.dst) != node {
			continue
		}
		if m.typ == protocol.MsgDataShared || m.typ == protocol.MsgDataExcl || m.typ == protocol.MsgOwnerData {
			return true
		}
	}
	return false
}

// wbInFlight reports whether a write-back for line is still traveling.
func (s *state) wbInFlight(line int) bool {
	for i := 0; i < int(s.nmsgs); i++ {
		if s.msgs[i].typ == protocol.MsgWriteBack && int(s.msgs[i].line) == line {
			return true
		}
	}
	return false
}

// pendingWork reports whether anything is outstanding (messages, home
// ops, or MSHRs) — the predicate behind deadlock detection.
func (s *state) pendingWork(c Config) bool {
	if s.nmsgs > 0 {
		return true
	}
	for l := 0; l < c.Lines; l++ {
		if s.lines[l].op.active {
			return true
		}
		for n := 0; n < c.Nodes; n++ {
			if s.lines[l].mshr[n].kind != mNone {
				return true
			}
		}
	}
	return false
}

// describe renders a state for violation reports.
func (s *state) describe(c Config) string {
	out := ""
	for l := 0; l < c.Lines; l++ {
		ls := &s.lines[l]
		out += fmt.Sprintf("line%d: dir=%d sharers=%02x owner=%d memFresh=%v", l, ls.dirState, ls.sharers, ls.owner, ls.memFresh)
		if ls.op.active {
			out += fmt.Sprintf(" op{req=%d excl=%v acks=%d waitWB=%v fetch=%v needMem=%v}",
				ls.op.requester, ls.op.excl, ls.op.acksLeft, ls.op.waitWB, ls.op.fetch, ls.op.needMem)
		}
		for n := 0; n < c.Nodes; n++ {
			if ls.cache[n] != cInv || ls.mshr[n].kind != mNone {
				out += fmt.Sprintf(" n%d{c=%d f=%v m=%d/%d%s}", n, ls.cache[n], ls.fresh[n],
					ls.mshr[n].kind, ls.mshr[n].attempts, map[bool]string{true: " backoff"}[ls.mshr[n].backoff])
			}
		}
		out += "\n"
	}
	for i := 0; i < int(s.nmsgs); i++ {
		m := &s.msgs[i]
		out += fmt.Sprintf("msg %v line=%d %d->%d req=%d excl=%v fresh=%v retry=%v\n",
			m.typ, m.line, m.src, m.dst, m.req, m.excl, m.fresh, m.retry)
	}
	return out
}
