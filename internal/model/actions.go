package model

import (
	"fmt"

	"ccnuma/internal/protocol"
)

// Handler occupancy-class names, as they appear in the extracted model.
// Every transition the abstract machine takes is labeled with one of
// these (or "" for the engine-free datapaths) and checked for admission
// against the artifact, so a typo here — or a handler the implementation
// no longer reaches this way — surfaces as an unmodeled transition.
const (
	hBusReadRemote             = "HBusReadRemote"
	hBusReadExRemote           = "HBusReadExRemote"
	hBusReadLocalDirtyRemote   = "HBusReadLocalDirtyRemote"
	hBusReadExLocalCachedRem   = "HBusReadExLocalCachedRemote"
	hBusReadExLocalDirtyRemote = "HBusReadExLocalDirtyRemote"
	hRemoteReadHomeClean       = "HRemoteReadHomeClean"
	hRemoteReadHomeDirty       = "HRemoteReadHomeDirty"
	hRemoteReadExHomeUncached  = "HRemoteReadExHomeUncached"
	hRemoteReadExHomeShared    = "HRemoteReadExHomeShared"
	hRemoteReadExHomeDirty     = "HRemoteReadExHomeDirty"
	hFetchOwnerFromHome        = "HFetchOwnerFromHome"
	hFetchOwnerRemoteReq       = "HFetchOwnerRemoteReq"
	hFetchExOwnerFromHome      = "HFetchExOwnerFromHome"
	hFetchExOwnerRemoteReq     = "HFetchExOwnerRemoteReq"
	hInvalAtSharer             = "HInvalAtSharer"
	hInvalAckMore              = "HInvalAckMore"
	hInvalAckLastLocal         = "HInvalAckLastLocal"
	hInvalAckLastRemote        = "HInvalAckLastRemote"
	hOwnerWBAtHomeRead         = "HOwnerWBAtHomeRead"
	hOwnerAckAtHome            = "HOwnerAckAtHome"
	hOwnerDataAtHomeRead       = "HOwnerDataAtHomeRead"
	hOwnerDataAtHomeReadEx     = "HOwnerDataAtHomeReadEx"
	hInterventionMissAtHome    = "HInterventionMissAtHome"
	hWriteBackAtHome           = "HWriteBackAtHome"
	hNackAtRequester           = "HNackAtRequester"
)

// succ is one enabled transition out of a state.
type succ struct {
	next state
	// label renders the transition for violation traces.
	label string
	// trigger/handler identify the concrete dispatch this abstracts;
	// checked against the extracted model when check is set.
	trigger string
	handler string
	check   bool
	// sends lists the message types this transition pushed, each checked
	// for admission under (trigger, handler).
	sends []protocol.MsgType
	line  int8
	// deliver marks progress on in-flight work (message deliveries and
	// backoff reissues) as opposed to spontaneous new work (processor
	// issues, evictions). The partial-order reduction keys off it.
	deliver bool
	// stale carries a freshness violation raised by taking this
	// transition (a read served or granted from a stale copy).
	stale string
}

type gen struct {
	c   Config
	s   *state
	out []succ
}

// successors enumerates every enabled transition of s.
func successors(c Config, s *state) []succ {
	g := &gen{c: c, s: s}
	for l := 0; l < c.Lines; l++ {
		g.issues(l)
		g.evictions(l)
		g.reissues(l)
	}
	for i := 0; i < int(s.nmsgs); i++ {
		g.delivery(i)
	}
	return g.out
}

func trigBus(kind string, local bool) string {
	if local {
		return "bus:" + kind + "/local"
	}
	return "bus:" + kind + "/remote"
}

func trigMsg(t protocol.MsgType) string { return "msg:" + t.String() }

// ---- processor issues ------------------------------------------------------

func (g *gen) issues(l int) {
	c, s := g.c, g.s
	h := c.home(l)
	ls := &s.lines[l]
	for n := 0; n < c.Nodes; n++ {
		if ls.mshr[n].kind != mNone {
			continue // one outstanding request per node per line
		}
		if ls.cache[n] != cMod {
			g.issueRead(l, n, h)
			g.issueWrite(l, n, h)
		}
	}
}

func (g *gen) issueRead(l, n, h int) {
	ls := &g.s.lines[l]
	if ls.cache[n] == cShared {
		return // read hit
	}
	if n == h {
		if ls.op.active {
			return // local bus op requeues until the home op drains
		}
		if ls.dirState != dDirty {
			// Memory (or a snooped local copy) services the read without
			// engaging the coherence engine.
			ns := *g.s
			nl := &ns.lines[l]
			nl.cache[n] = cShared
			nl.fresh[n] = nl.memFresh
			sc := succ{next: ns, line: int8(l), label: fmt.Sprintf("n%d local read l%d", n, l)}
			if !ls.memFresh {
				sc.stale = fmt.Sprintf("local read at home n%d served stale memory on line %d", n, l)
			}
			g.out = append(g.out, sc)
			return
		}
		// Dirty remote: intervene at the owner on the home's behalf.
		ns := *g.s
		nl := &ns.lines[l]
		nl.op = homeOp{active: true, requester: -1, fetch: true}
		if !ns.push(msg{typ: protocol.MsgFetchReq, line: int8(l), src: int8(h), dst: ls.owner, req: -1}) {
			return
		}
		g.out = append(g.out, succ{
			next: ns, line: int8(l), check: true,
			trigger: trigBus("Read", true), handler: hBusReadLocalDirtyRemote,
			sends: []protocol.MsgType{protocol.MsgFetchReq},
			label: fmt.Sprintf("n%d local read l%d -> fetch owner n%d", n, l, ls.owner),
		})
		return
	}
	// Remote read miss: park in the MSHR and request from home.
	ns := *g.s
	nl := &ns.lines[l]
	nl.mshr[n] = mshrEntry{kind: mRead}
	if !ns.push(msg{typ: protocol.MsgReadReq, line: int8(l), src: int8(n), dst: int8(h), req: int8(n)}) {
		return
	}
	g.out = append(g.out, succ{
		next: ns, line: int8(l), check: true,
		trigger: trigBus("Read", false), handler: hBusReadRemote,
		sends: []protocol.MsgType{protocol.MsgReadReq},
		label: fmt.Sprintf("n%d read miss l%d", n, l),
	})
}

func (g *gen) issueWrite(l, n, h int) {
	ls := &g.s.lines[l]
	kind := "ReadEx"
	if ls.cache[n] == cShared {
		kind = "Upgrade"
	}
	if n == h {
		if ls.op.active {
			return
		}
		switch ls.dirState {
		case dNone:
			// No remote copies: the local bus upgrade completes silently.
			ns := *g.s
			nl := &ns.lines[l]
			nl.cache[n] = cMod
			nl.fresh[n] = true
			nl.memFresh = false
			g.out = append(g.out, succ{next: ns, line: int8(l),
				label: fmt.Sprintf("n%d local write l%d (no remote copies)", n, l)})
		case dShared:
			// Invalidate every remote sharer, then install Modified when the
			// last ack arrives (HInvalAckLastLocal).
			ns := *g.s
			nl := &ns.lines[l]
			nl.op = homeOp{active: true, requester: -1, excl: true, acksLeft: bitCount(ls.sharers)}
			for r := 0; r < g.c.Nodes; r++ {
				if ls.sharers&(1<<uint(r)) != 0 {
					if !ns.push(msg{typ: protocol.MsgInval, line: int8(l), src: int8(h), dst: int8(r), req: -1}) {
						return
					}
				}
			}
			g.out = append(g.out, succ{
				next: ns, line: int8(l), check: true,
				trigger: trigBus(kind, true), handler: hBusReadExLocalCachedRem,
				sends: []protocol.MsgType{protocol.MsgInval},
				label: fmt.Sprintf("n%d local write l%d -> inval sharers", n, l),
			})
		case dDirty:
			ns := *g.s
			nl := &ns.lines[l]
			nl.op = homeOp{active: true, requester: -1, excl: true, fetch: true}
			if !ns.push(msg{typ: protocol.MsgFetchExReq, line: int8(l), src: int8(h), dst: ls.owner, req: -1, excl: true}) {
				return
			}
			g.out = append(g.out, succ{
				next: ns, line: int8(l), check: true,
				trigger: trigBus("ReadEx", true), handler: hBusReadExLocalDirtyRemote,
				sends: []protocol.MsgType{protocol.MsgFetchExReq},
				label: fmt.Sprintf("n%d local write l%d -> fetchEx owner n%d", n, l, ls.owner),
			})
		}
		return
	}
	// Remote write miss/upgrade.
	ns := *g.s
	nl := &ns.lines[l]
	nl.mshr[n] = mshrEntry{kind: mReadEx}
	if !ns.push(msg{typ: protocol.MsgReadExReq, line: int8(l), src: int8(n), dst: int8(h), req: int8(n), excl: true}) {
		return
	}
	g.out = append(g.out, succ{
		next: ns, line: int8(l), check: true,
		trigger: trigBus(kind, false), handler: hBusReadExRemote,
		sends: []protocol.MsgType{protocol.MsgReadExReq},
		label: fmt.Sprintf("n%d write miss l%d", n, l),
	})
}

// ---- evictions -------------------------------------------------------------

func (g *gen) evictions(l int) {
	c, s := g.c, g.s
	h := c.home(l)
	ls := &s.lines[l]
	for n := 0; n < c.Nodes; n++ {
		if ls.mshr[n].kind != mNone {
			continue
		}
		switch ls.cache[n] {
		case cShared:
			// Clean evictions are silent (no replacement hints): the
			// directory keeps listing the node, which is why Inval must
			// tolerate hitting an already-invalid copy.
			ns := *s
			nl := &ns.lines[l]
			nl.cache[n] = cInv
			nl.fresh[n] = false
			g.out = append(g.out, succ{next: ns, line: int8(l),
				label: fmt.Sprintf("n%d evict shared l%d", n, l)})
		case cMod:
			ns := *s
			nl := &ns.lines[l]
			wasFresh := ls.fresh[n]
			nl.cache[n] = cInv
			nl.fresh[n] = false
			if n == h {
				// Home-local dirty eviction lands directly in memory.
				nl.memFresh = wasFresh
				g.out = append(g.out, succ{next: ns, line: int8(l),
					label: fmt.Sprintf("n%d evict dirty l%d (home)", n, l)})
				continue
			}
			if !ns.push(msg{typ: protocol.MsgWriteBack, line: int8(l), src: int8(n), dst: int8(h), fresh: wasFresh}) {
				continue
			}
			g.out = append(g.out, succ{
				next: ns, line: int8(l), check: true,
				trigger: "direct:WriteBack", handler: "",
				sends: []protocol.MsgType{protocol.MsgWriteBack},
				label: fmt.Sprintf("n%d evict dirty l%d -> writeback", n, l),
			})
		}
	}
}
