package model

import (
	"fmt"

	"ccnuma/internal/protocol"
)

// delivery enumerates the transitions that consume the message at pool
// index i. A message whose preconditions are not met generates nothing —
// that is the abstract form of the concrete controller's requeue: the
// message stays pooled until another transition changes the state it is
// waiting on. (If nothing ever will, the deadlock check reports it.)
func (g *gen) delivery(i int) {
	m := g.s.msgs[i]
	l := int(m.line)
	switch m.typ {
	case protocol.MsgReadReq:
		g.homeRequest(i, m, l, false)
	case protocol.MsgReadExReq:
		g.homeRequest(i, m, l, true)
	case protocol.MsgFetchReq:
		g.ownerFetch(i, m, l, false)
	case protocol.MsgFetchExReq:
		g.ownerFetch(i, m, l, true)
	case protocol.MsgInval:
		g.sharerInval(i, m, l)
	case protocol.MsgInvalAck:
		g.homeInvalAck(i, m, l)
	case protocol.MsgDataShared:
		g.requesterData(i, m, l, false)
	case protocol.MsgDataExcl:
		g.requesterData(i, m, l, true)
	case protocol.MsgOwnerData:
		g.requesterData(i, m, l, m.excl)
	case protocol.MsgFetchDone:
		g.homeFetchDone(i, m, l)
	case protocol.MsgFetchExDone:
		g.homeFetchExDone(i, m, l)
	case protocol.MsgFetchDataHome:
		g.homeFetchDataHome(i, m, l)
	case protocol.MsgInterventionMiss:
		g.homeInterventionMiss(i, m, l)
	case protocol.MsgWriteBack:
		g.homeWriteBack(i, m, l)
	case protocol.MsgNack:
		g.requesterNack(i, m, l)
	}
}

// grant builds the data response for a completed home-side operation.
func grantMsg(excl bool, line, home, req int, fresh bool) msg {
	t := protocol.MsgDataShared
	if excl {
		t = protocol.MsgDataExcl
	}
	return msg{typ: t, line: int8(line), src: int8(home), dst: int8(req), req: int8(req), excl: excl, fresh: fresh}
}

// installLocal commits a home-local grant: the home processor's cache
// takes the line directly (no network message).
func installLocal(nl *lineState, h int, excl, fresh bool) string {
	if excl {
		nl.cache[h] = cMod
		nl.fresh[h] = true
		nl.memFresh = false
		return ""
	}
	nl.cache[h] = cShared
	nl.fresh[h] = fresh
	if !fresh {
		return fmt.Sprintf("home n%d read granted stale data", h)
	}
	return ""
}

// dirFinal commits the operation's final directory state.
func dirFinal(nl *lineState, excl bool, req int) {
	if req < 0 {
		// Local requester: the home processor holds the line; no remote
		// state remains for an exclusive grant, and a read leaves whatever
		// remote sharers the op recorded (set by the caller).
		if excl {
			nl.dirState = dNone
			nl.sharers = 0
			nl.owner = -1
		}
		return
	}
	if excl {
		nl.dirState = dDirty
		nl.sharers = 0
		nl.owner = int8(req)
	} else {
		nl.dirState = dShared
		nl.sharers |= 1 << uint(req)
		nl.owner = -1
	}
}

// ---- home request handling (ReadReq / ReadExReq) ---------------------------

func (g *gen) homeRequest(i int, m msg, l int, excl bool) {
	c := g.c
	h := c.home(l)
	ls := &g.s.lines[l]
	r := int(m.req)
	trig := trigMsg(m.typ)

	// Finite-buffer edge: the home NI may bounce any nackable request
	// instead of queueing it. Bounces are capped per requester so the
	// NACK/retry cycle stays finite.
	if c.Robust && r >= 0 && int(ls.mshr[r].attempts) < c.MaxAttempts {
		ns := *g.s
		ns.drop(i)
		if ns.push(msg{typ: protocol.MsgNack, line: int8(l), src: int8(h), dst: int8(r), req: int8(r), excl: excl}) {
			g.out = append(g.out, succ{
				next: ns, line: int8(l), deliver: true, check: true,
				trigger: "ni:request", handler: "",
				sends: []protocol.MsgType{protocol.MsgNack},
				label: fmt.Sprintf("home n%d nack %v from n%d l%d (queue full)", h, m.typ, r, l),
			})
		}
	}

	if ls.op.active {
		// A home op is in flight: the request waits in the queue until the
		// op drains (the concrete controller's requeue).
		return
	}

	switch ls.dirState {
	case dNone, dShared:
		if excl {
			g.homeReadEx(i, m, l, h, r)
		} else {
			g.homeRead(i, m, l, h, r)
		}
	case dDirty:
		if int(ls.owner) == r {
			// The requester is the recorded dirty owner: its write-back is
			// still in flight. First attempt parks until the write-back
			// lands; a retry is bounced so it cannot wedge the queue.
			if m.retry {
				handler := hRemoteReadHomeDirty
				if excl {
					handler = hRemoteReadExHomeDirty
				}
				g.nackRetry(i, m, l, h, r, handler)
				return
			}
			ns := *g.s
			ns.drop(i)
			ns.lines[l].op = homeOp{active: true, requester: int8(r), excl: excl, waitWB: true}
			handler := hRemoteReadHomeDirty
			if excl {
				handler = hRemoteReadExHomeDirty
			}
			g.out = append(g.out, succ{
				next: ns, line: int8(l), deliver: true, check: true,
				trigger: trig, handler: handler,
				label: fmt.Sprintf("home n%d %v from dirty owner n%d l%d -> wait writeback", h, m.typ, r, l),
			})
			return
		}
		// Intervene at the owner.
		ns := *g.s
		ns.drop(i)
		nl := &ns.lines[l]
		nl.op = homeOp{active: true, requester: int8(r), excl: excl, fetch: true}
		ft := protocol.MsgFetchReq
		handler := hRemoteReadHomeDirty
		if excl {
			ft = protocol.MsgFetchExReq
			handler = hRemoteReadExHomeDirty
		}
		if !ns.push(msg{typ: ft, line: int8(l), src: int8(h), dst: ls.owner, req: int8(r), excl: excl}) {
			return
		}
		g.out = append(g.out, succ{
			next: ns, line: int8(l), deliver: true, check: true,
			trigger: trig, handler: handler,
			sends: []protocol.MsgType{ft},
			label: fmt.Sprintf("home n%d %v from n%d l%d -> fetch owner n%d", h, m.typ, r, l, ls.owner),
		})
	}
}

func (g *gen) nackRetry(i int, m msg, l, h, r int, handler string) {
	ns := *g.s
	ns.drop(i)
	if !ns.push(msg{typ: protocol.MsgNack, line: int8(l), src: int8(h), dst: int8(r), req: int8(r), excl: m.excl}) {
		return
	}
	g.out = append(g.out, succ{
		next: ns, line: int8(l), deliver: true, check: true,
		trigger: trigMsg(m.typ), handler: handler,
		sends: []protocol.MsgType{protocol.MsgNack},
		label: fmt.Sprintf("home n%d nack retried %v from own dirty owner n%d l%d", h, m.typ, r, l),
	})
}

// homeRead services a ReadReq when the line is home-clean.
func (g *gen) homeRead(i int, m msg, l, h, r int) {
	ns := *g.s
	ns.drop(i)
	nl := &ns.lines[l]
	// The home CC's memory access snoops the local bus: a dirty copy in
	// the home processor's cache is flushed to memory and downgraded.
	if nl.cache[h] == cMod {
		nl.memFresh = nl.fresh[h]
		nl.cache[h] = cShared
	}
	fresh := nl.memFresh
	if !ns.push(grantMsg(false, l, h, r, fresh)) {
		return
	}
	dirFinal(nl, false, r)
	g.out = append(g.out, succ{
		next: ns, line: int8(l), deliver: true, check: true,
		trigger: trigMsg(m.typ), handler: hRemoteReadHomeClean,
		sends: []protocol.MsgType{protocol.MsgDataShared},
		label: fmt.Sprintf("home n%d grant shared to n%d l%d", h, r, l),
	})
}

// homeReadEx services a ReadExReq when the line is home-clean or shared.
func (g *gen) homeReadEx(i int, m msg, l, h, r int) {
	ns := *g.s
	ns.drop(i)
	nl := &ns.lines[l]
	// Local bus snoop: flush a dirty home copy, invalidate any home copy.
	if nl.cache[h] == cMod {
		nl.memFresh = nl.fresh[h]
	}
	nl.cache[h] = cInv
	nl.fresh[h] = false
	invals := nl.sharers &^ (1 << uint(r))
	if nl.dirState == dShared && invals != 0 {
		nl.op = homeOp{active: true, requester: int8(r), excl: true, acksLeft: bitCount(invals)}
		for t := 0; t < g.c.Nodes; t++ {
			if invals&(1<<uint(t)) != 0 {
				if !ns.push(msg{typ: protocol.MsgInval, line: int8(l), src: int8(h), dst: int8(t), req: int8(r)}) {
					return
				}
			}
		}
		g.out = append(g.out, succ{
			next: ns, line: int8(l), deliver: true, check: true,
			trigger: trigMsg(m.typ), handler: hRemoteReadExHomeShared,
			sends: []protocol.MsgType{protocol.MsgInval},
			label: fmt.Sprintf("home n%d inval sharers for n%d l%d", h, r, l),
		})
		return
	}
	handler := hRemoteReadExHomeUncached
	if nl.dirState == dShared {
		handler = hRemoteReadExHomeShared // sole sharer is the requester
	}
	fresh := nl.memFresh
	if !ns.push(grantMsg(true, l, h, r, fresh)) {
		return
	}
	dirFinal(nl, true, r)
	g.out = append(g.out, succ{
		next: ns, line: int8(l), deliver: true, check: true,
		trigger: trigMsg(m.typ), handler: handler,
		sends: []protocol.MsgType{protocol.MsgDataExcl},
		label: fmt.Sprintf("home n%d grant excl to n%d l%d", h, r, l),
	})
}

// ---- owner-side intervention handling --------------------------------------

func (g *gen) ownerFetch(i int, m msg, l int, excl bool) {
	o := int(m.dst)
	h := g.c.home(l)
	ls := &g.s.lines[l]
	if g.s.grantInFlight(o, l) {
		return // the owner's own fill is arriving; the fetch requeues
	}
	fromHome := m.req < 0
	var handler string
	switch {
	case excl && fromHome:
		handler = hFetchExOwnerFromHome
	case excl:
		handler = hFetchExOwnerRemoteReq
	case fromHome:
		handler = hFetchOwnerFromHome
	default:
		handler = hFetchOwnerRemoteReq
	}
	ns := *g.s
	ns.drop(i)
	nl := &ns.lines[l]
	if ls.cache[o] != cMod {
		// The owner's write-back crossed the intervention in flight.
		if excl && nl.cache[o] == cShared {
			nl.cache[o] = cInv
			nl.fresh[o] = false
		}
		if !ns.push(msg{typ: protocol.MsgInterventionMiss, line: int8(l), src: int8(o), dst: int8(h), req: m.req, excl: excl}) {
			return
		}
		g.out = append(g.out, succ{
			next: ns, line: int8(l), deliver: true, check: true,
			trigger: trigMsg(m.typ), handler: handler,
			sends: []protocol.MsgType{protocol.MsgInterventionMiss},
			label: fmt.Sprintf("owner n%d miss on %v l%d", o, m.typ, l),
		})
		return
	}
	wasFresh := ls.fresh[o]
	var sends []protocol.MsgType
	if excl {
		nl.cache[o] = cInv
		nl.fresh[o] = false
		if fromHome {
			if !ns.push(msg{typ: protocol.MsgFetchDataHome, line: int8(l), src: int8(o), dst: int8(h), excl: true, fresh: wasFresh}) {
				return
			}
			sends = []protocol.MsgType{protocol.MsgFetchDataHome}
		} else {
			if !ns.push(msg{typ: protocol.MsgOwnerData, line: int8(l), src: int8(o), dst: m.req, req: m.req, excl: true, fresh: wasFresh}) {
				return
			}
			if !ns.push(msg{typ: protocol.MsgFetchExDone, line: int8(l), src: int8(o), dst: int8(h), req: m.req}) {
				return
			}
			sends = []protocol.MsgType{protocol.MsgOwnerData, protocol.MsgFetchExDone}
		}
	} else {
		nl.cache[o] = cShared // the owner keeps a clean copy
		if fromHome {
			if !ns.push(msg{typ: protocol.MsgFetchDataHome, line: int8(l), src: int8(o), dst: int8(h), fresh: wasFresh}) {
				return
			}
			sends = []protocol.MsgType{protocol.MsgFetchDataHome}
		} else {
			if !ns.push(msg{typ: protocol.MsgOwnerData, line: int8(l), src: int8(o), dst: m.req, req: m.req, fresh: wasFresh}) {
				return
			}
			if !ns.push(msg{typ: protocol.MsgFetchDone, line: int8(l), src: int8(o), dst: int8(h), req: m.req, fresh: wasFresh}) {
				return
			}
			sends = []protocol.MsgType{protocol.MsgOwnerData, protocol.MsgFetchDone}
		}
	}
	g.out = append(g.out, succ{
		next: ns, line: int8(l), deliver: true, check: true,
		trigger: trigMsg(m.typ), handler: handler, sends: sends,
		label: fmt.Sprintf("owner n%d serve %v l%d", o, m.typ, l),
	})
}

// ---- invalidations ---------------------------------------------------------

func (g *gen) sharerInval(i int, m msg, l int) {
	n := int(m.dst)
	h := g.c.home(l)
	if g.s.grantInFlight(n, l) {
		return // fill arriving: the invalidation requeues until installed
	}
	ns := *g.s
	ns.drop(i)
	nl := &ns.lines[l]
	// The copy may already be gone (silent clean eviction); ack anyway.
	if nl.cache[n] == cShared {
		nl.cache[n] = cInv
		nl.fresh[n] = false
	}
	if !ns.push(msg{typ: protocol.MsgInvalAck, line: int8(l), src: int8(n), dst: int8(h), req: m.req}) {
		return
	}
	g.out = append(g.out, succ{
		next: ns, line: int8(l), deliver: true, check: true,
		trigger: trigMsg(m.typ), handler: hInvalAtSharer,
		sends: []protocol.MsgType{protocol.MsgInvalAck},
		label: fmt.Sprintf("sharer n%d invalidated l%d", n, l),
	})
}

func (g *gen) homeInvalAck(i int, m msg, l int) {
	h := g.c.home(l)
	ls := &g.s.lines[l]
	if !ls.op.active || ls.op.acksLeft <= 0 {
		return
	}
	ns := *g.s
	ns.drop(i)
	nl := &ns.lines[l]
	nl.op.acksLeft--
	if nl.op.acksLeft > 0 {
		g.out = append(g.out, succ{
			next: ns, line: int8(l), deliver: true, check: true,
			trigger: trigMsg(m.typ), handler: hInvalAckMore,
			label: fmt.Sprintf("home n%d inval ack l%d (%d left)", h, l, nl.op.acksLeft),
		})
		return
	}
	r := int(nl.op.requester)
	if r < 0 {
		// Local writer: install Modified at the home processor.
		nl.op = homeOp{}
		nl.dirState = dNone
		nl.sharers = 0
		nl.owner = -1
		nl.cache[h] = cMod
		nl.fresh[h] = true
		nl.memFresh = false
		g.out = append(g.out, succ{
			next: ns, line: int8(l), deliver: true, check: true,
			trigger: trigMsg(m.typ), handler: hInvalAckLastLocal,
			label: fmt.Sprintf("home n%d last inval ack l%d -> local install", h, l),
		})
		return
	}
	fresh := nl.memFresh
	nl.op = homeOp{}
	if !ns.push(grantMsg(true, l, h, r, fresh)) {
		return
	}
	dirFinal(nl, true, r)
	g.out = append(g.out, succ{
		next: ns, line: int8(l), deliver: true, check: true,
		trigger: trigMsg(m.typ), handler: hInvalAckLastRemote,
		sends: []protocol.MsgType{protocol.MsgDataExcl},
		label: fmt.Sprintf("home n%d last inval ack l%d -> grant excl n%d", h, l, r),
	})
}

// ---- requester-side responses ----------------------------------------------

func (g *gen) requesterData(i int, m msg, l int, excl bool) {
	n := int(m.dst)
	ls := &g.s.lines[l]
	if ls.mshr[n].kind == mNone {
		// Stray response (a NACKed request was also serviced). The robust
		// configuration drops it on the floor; without robustness the
		// protocol never generates one.
		if !g.c.Robust {
			return
		}
		ns := *g.s
		ns.drop(i)
		g.out = append(g.out, succ{
			next: ns, line: int8(l), deliver: true, check: true,
			trigger: trigMsg(m.typ), handler: hNackAtRequester,
			label: fmt.Sprintf("n%d drop stray %v l%d", n, m.typ, l),
		})
		return
	}
	ns := *g.s
	ns.drop(i)
	nl := &ns.lines[l]
	nl.mshr[n] = mshrEntry{}
	handler := hDataRespRead
	if excl {
		handler = hDataRespReadEx
	}
	sc := succ{line: int8(l), deliver: true, check: true, trigger: trigMsg(m.typ), handler: handler}
	if excl {
		nl.cache[n] = cMod
		nl.fresh[n] = true // the write commits, making this the current copy
		nl.memFresh = false
		if !m.fresh {
			sc.stale = fmt.Sprintf("n%d granted exclusive with stale data l%d", n, l)
		}
		sc.label = fmt.Sprintf("n%d install M l%d", n, l)
	} else {
		nl.cache[n] = cShared
		nl.fresh[n] = m.fresh
		if !m.fresh {
			sc.stale = fmt.Sprintf("n%d read granted stale data l%d", n, l)
		}
		sc.label = fmt.Sprintf("n%d install S l%d", n, l)
	}
	sc.next = ns
	g.out = append(g.out, sc)
}

const (
	hDataRespRead   = "HDataRespRead"
	hDataRespReadEx = "HDataRespReadEx"
)

// ---- owner -> home completions ---------------------------------------------

func (g *gen) homeFetchDone(i int, m msg, l int) {
	h := g.c.home(l)
	ls := &g.s.lines[l]
	if !ls.op.active || !ls.op.fetch || ls.op.excl {
		return
	}
	ns := *g.s
	ns.drop(i)
	nl := &ns.lines[l]
	r := int(nl.op.requester)
	oldOwner := nl.owner
	nl.memFresh = m.fresh // the owner's data is written back to memory
	nl.op = homeOp{}
	nl.dirState = dShared
	nl.sharers = 1 << uint(r)
	if oldOwner >= 0 {
		nl.sharers |= 1 << uint(oldOwner) // the owner kept a clean copy
	}
	nl.owner = -1
	g.out = append(g.out, succ{
		next: ns, line: int8(l), deliver: true, check: true,
		trigger: trigMsg(m.typ), handler: hOwnerWBAtHomeRead,
		label: fmt.Sprintf("home n%d fetch done l%d (owner wrote back)", h, l),
	})
}

func (g *gen) homeFetchExDone(i int, m msg, l int) {
	h := g.c.home(l)
	ls := &g.s.lines[l]
	if !ls.op.active || !ls.op.fetch || !ls.op.excl {
		return
	}
	ns := *g.s
	ns.drop(i)
	nl := &ns.lines[l]
	r := int(nl.op.requester)
	wroteBack := nl.op.reqWroteBack
	nl.op = homeOp{}
	if wroteBack {
		// The new owner already wrote the line back: memory is current
		// and no dirty owner remains.
		nl.dirState = dNone
		nl.sharers = 0
		nl.owner = -1
	} else {
		// Ownership transferred requester-to-requester: memory stays stale.
		dirFinal(nl, true, r)
	}
	g.out = append(g.out, succ{
		next: ns, line: int8(l), deliver: true, check: true,
		trigger: trigMsg(m.typ), handler: hOwnerAckAtHome,
		label: fmt.Sprintf("home n%d fetchEx done l%d -> owner n%d", h, l, r),
	})
}

func (g *gen) homeFetchDataHome(i int, m msg, l int) {
	h := g.c.home(l)
	ls := &g.s.lines[l]
	if !ls.op.active || !ls.op.fetch || ls.op.requester >= 0 {
		return
	}
	ns := *g.s
	ns.drop(i)
	nl := &ns.lines[l]
	oldOwner := nl.owner
	nl.op = homeOp{}
	sc := succ{line: int8(l), deliver: true, check: true, trigger: trigMsg(m.typ)}
	if m.excl {
		sc.handler = hOwnerDataAtHomeReadEx
		nl.dirState = dNone
		nl.sharers = 0
		nl.owner = -1
		nl.cache[h] = cMod
		nl.fresh[h] = true
		nl.memFresh = false
		if !m.fresh {
			sc.stale = fmt.Sprintf("home n%d local write granted stale owner data l%d", h, l)
		}
		sc.label = fmt.Sprintf("home n%d owner data l%d -> local M", h, l)
	} else {
		sc.handler = hOwnerDataAtHomeRead
		nl.memFresh = m.fresh
		nl.dirState = dShared
		nl.sharers = 0
		if oldOwner >= 0 {
			nl.sharers = 1 << uint(oldOwner)
		}
		nl.owner = -1
		nl.cache[h] = cShared
		nl.fresh[h] = m.fresh
		if !m.fresh {
			sc.stale = fmt.Sprintf("home n%d local read granted stale owner data l%d", h, l)
		}
		sc.label = fmt.Sprintf("home n%d owner data l%d -> local S", h, l)
	}
	sc.next = ns
	g.out = append(g.out, sc)
}

func (g *gen) homeInterventionMiss(i int, m msg, l int) {
	h := g.c.home(l)
	ls := &g.s.lines[l]
	if !ls.op.active || !ls.op.fetch {
		return
	}
	if g.s.wbInFlight(l) {
		// The crossing write-back is still traveling; the home completes
		// the op from memory only once it lands (its delivery is enabled,
		// so this wait cannot deadlock).
		return
	}
	ns := *g.s
	ns.drop(i)
	nl := &ns.lines[l]
	r := int(nl.op.requester)
	excl := nl.op.excl
	fresh := nl.memFresh
	nl.op = homeOp{}
	sc := succ{line: int8(l), deliver: true, check: true,
		trigger: trigMsg(m.typ), handler: hInterventionMissAtHome}
	if r < 0 {
		nl.dirState = dNone
		nl.sharers = 0
		nl.owner = -1
		if stale := installLocal(nl, h, excl, fresh); stale != "" {
			sc.stale = stale
		}
		sc.label = fmt.Sprintf("home n%d intervention miss l%d -> serve local from memory", h, l)
	} else {
		if !ns.push(grantMsg(excl, l, h, r, fresh)) {
			return
		}
		nl.owner = -1
		nl.sharers = 0
		nl.dirState = dNone
		dirFinal(nl, excl, r)
		gt := protocol.MsgDataShared
		if excl {
			gt = protocol.MsgDataExcl
		}
		sc.sends = []protocol.MsgType{gt}
		sc.label = fmt.Sprintf("home n%d intervention miss l%d -> grant n%d from memory", h, l, r)
	}
	sc.next = ns
	g.out = append(g.out, sc)
}

func (g *gen) homeWriteBack(i int, m msg, l int) {
	h := g.c.home(l)
	ls := &g.s.lines[l]
	ns := *g.s
	ns.drop(i)
	nl := &ns.lines[l]
	nl.memFresh = m.fresh
	sc := succ{line: int8(l), deliver: true, check: true,
		trigger: trigMsg(m.typ), handler: hWriteBackAtHome}
	switch {
	case ls.op.active && ls.op.waitWB:
		// The write-back the pending request was waiting on: grant now.
		r := int(nl.op.requester)
		excl := nl.op.excl
		fresh := nl.memFresh
		nl.op = homeOp{}
		nl.dirState = dNone
		nl.sharers = 0
		nl.owner = -1
		if !ns.push(grantMsg(excl, l, h, r, fresh)) {
			return
		}
		dirFinal(nl, excl, r)
		gt := protocol.MsgDataShared
		if excl {
			gt = protocol.MsgDataExcl
		}
		sc.sends = []protocol.MsgType{gt}
		sc.label = fmt.Sprintf("home n%d writeback l%d -> grant waiting n%d", h, l, r)
	case ls.op.active:
		// A fetch op is in flight; it writes the final directory state
		// when it completes. Memory is fresh now either way. If the
		// write-back came from the op's own requester (it was granted
		// ownership owner-to-owner and gave it up already), the op must
		// not retire naming it dirty owner.
		if nl.op.fetch && int(m.src) == int(nl.op.requester) {
			nl.op.reqWroteBack = true
		}
		sc.label = fmt.Sprintf("home n%d writeback l%d (op in flight)", h, l)
	default:
		if nl.dirState == dDirty && nl.owner == m.src {
			nl.dirState = dNone
			nl.sharers = 0
			nl.owner = -1
		}
		sc.label = fmt.Sprintf("home n%d writeback l%d", h, l)
	}
	sc.next = ns
	g.out = append(g.out, sc)
}

// ---- NACK handling at the requester ----------------------------------------

func (g *gen) requesterNack(i int, m msg, l int) {
	n := int(m.dst)
	ls := &g.s.lines[l]
	if ls.mshr[n].kind == mNone {
		return
	}
	ns := *g.s
	ns.drop(i)
	nl := &ns.lines[l]
	if int(nl.mshr[n].attempts) < g.c.MaxAttempts {
		nl.mshr[n].attempts++
	}
	nl.mshr[n].backoff = true
	g.out = append(g.out, succ{
		next: ns, line: int8(l), deliver: true, check: true,
		trigger: trigMsg(m.typ), handler: hNackAtRequester,
		label: fmt.Sprintf("n%d nacked l%d -> backoff", n, l),
	})
}

// reissues enumerates backoff expirations: a NACKed requester re-sends
// its request with the retry bit. These ride the msg:Nack rule's
// deferred sends in the extracted model.
func (g *gen) reissues(l int) {
	c := g.c
	h := c.home(l)
	ls := &g.s.lines[l]
	for n := 0; n < c.Nodes; n++ {
		if !ls.mshr[n].backoff {
			continue
		}
		ns := *g.s
		nl := &ns.lines[l]
		nl.mshr[n].backoff = false
		t := protocol.MsgReadReq
		excl := false
		if nl.mshr[n].kind == mReadEx {
			t = protocol.MsgReadExReq
			excl = true
		}
		if !ns.push(msg{typ: t, line: int8(l), src: int8(n), dst: int8(h), req: int8(n), excl: excl, retry: true}) {
			continue
		}
		g.out = append(g.out, succ{
			next: ns, line: int8(l), deliver: true, check: true,
			trigger: trigMsg(protocol.MsgNack), handler: hNackAtRequester,
			sends: []protocol.MsgType{t},
			label: fmt.Sprintf("n%d reissue %v l%d (retry)", n, t, l),
		})
	}
}
