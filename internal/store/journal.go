package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// The write-ahead journal is an append-only file of JSON records, one per
// line, each sealed with a checksum over its own fields. It records
// intent, not data: which cell fingerprints have a write in flight
// ("begin" without a matching "done") and which sweep submissions were
// accepted but not finished ("sweep" without "sweepdone"). The artifact
// bytes themselves live only in self-verifying object files, so the
// journal never needs to be trusted for content — a lost or truncated
// journal can cost knowledge of in-flight work, never integrity.
//
// Because appends are not atomic, a crash can leave a torn final record.
// The checksum makes torn records detectable, and the append-only
// discipline makes them safe to drop: a record is only unreadable if the
// crash happened while it was being written, so everything after the first
// unreadable byte is part of the same interrupted append and the journal
// is truncated there on recovery.

// Journal operation names.
const (
	opBegin     = "begin"     // cell fp has a write in flight
	opDone      = "done"      // cell fp's object is durable
	opSweep     = "sweep"     // sweep fp accepted; spec carries its scenario
	opSweepDone = "sweepdone" // sweep fp fully served
)

// record is one journal line.
type record struct {
	Op string `json:"op"`
	Fp string `json:"fp"`
	// Spec is the canonical scenario document of a sweep record
	// (base64-encoded by encoding/json), empty otherwise.
	Spec []byte `json:"spec,omitempty"`
	// Sum seals the record: the first 8 hex digits of the SHA-256 over
	// op, fp, and spec. A mismatch marks a torn append.
	Sum string `json:"sum"`
}

func recordSum(op, fp string, spec []byte) string {
	h := sha256.New()
	io.WriteString(h, op)
	h.Write([]byte{0})
	io.WriteString(h, fp)
	h.Write([]byte{0})
	h.Write(spec)
	return hex.EncodeToString(h.Sum(nil))[:8]
}

// appendRecord marshals, appends, and fsyncs one sealed record.
func (s *Store) appendRecord(op, fp string, spec []byte) error {
	if err := s.failAt(CrashJournalAppend); err != nil {
		return err
	}
	r := record{Op: op, Fp: fp, Spec: spec, Sum: recordSum(op, fp, spec)}
	line, err := json.Marshal(&r)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	if _, err := s.journal.Write(line); err != nil {
		return fmt.Errorf("store: journal append: %w", err)
	}
	if err := s.syncFile(s.journal); err != nil {
		return fmt.Errorf("store: journal sync: %w", err)
	}
	return nil
}

// journalState is what a parse recovers: the fingerprints with begun or
// completed cell writes and the accepted sweeps, in first-seen order.
type journalState struct {
	begun     map[string]bool
	done      map[string]bool
	sweeps    map[string][]byte // sweep fp -> canonical spec
	sweepDone map[string]bool
	sweepSeq  []string // sweeps in journal order, for deterministic resume
	records   int
	tornBytes int64
}

// parseJournal reads path, tolerating a torn tail: the state up to the
// first unreadable record is returned, and the file is truncated there so
// the next append starts on a record boundary. A missing journal is an
// empty one.
func parseJournal(path string) (*journalState, error) {
	st := &journalState{
		begun:     map[string]bool{},
		done:      map[string]bool{},
		sweeps:    map[string][]byte{},
		sweepDone: map[string]bool{},
	}
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return st, nil
		}
		return nil, fmt.Errorf("store: journal: %w", err)
	}

	good := int64(0) // byte offset of the end of the last readable record
	rest := data
	for len(rest) > 0 {
		nl := bytes.IndexByte(rest, '\n')
		if nl < 0 {
			break // unterminated final record: torn append
		}
		line := rest[:nl]
		var r record
		if err := json.Unmarshal(line, &r); err != nil {
			break // unparsable record: torn append
		}
		if r.Sum != recordSum(r.Op, r.Fp, r.Spec) {
			break // seal mismatch: torn append
		}
		switch r.Op {
		case opBegin:
			st.begun[r.Fp] = true
		case opDone:
			st.done[r.Fp] = true
		case opSweep:
			if _, seen := st.sweeps[r.Fp]; !seen {
				st.sweepSeq = append(st.sweepSeq, r.Fp)
			}
			st.sweeps[r.Fp] = r.Spec
		case opSweepDone:
			st.sweepDone[r.Fp] = true
		default:
			// A sealed record with an unknown op came from a newer writer;
			// skipping it loses only that writer's bookkeeping.
		}
		st.records++
		good += int64(nl) + 1
		rest = rest[nl+1:]
	}
	if good < int64(len(data)) {
		st.tornBytes = int64(len(data)) - good
		if err := os.Truncate(path, good); err != nil {
			return nil, fmt.Errorf("store: truncating torn journal tail: %w", err)
		}
	}
	return st, nil
}
