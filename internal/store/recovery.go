package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// recover is the startup pass that makes the store consistent regardless
// of where the previous process died:
//
//  1. Discard tmp/ leftovers — a file there is torn by definition (the
//     rename that would have published it never happened).
//  2. Parse the journal, truncating a torn final append.
//  3. Verify every object in objects/; quarantine any that fail (a torn
//     object cannot appear via the rename protocol, so a failure here
//     means disk-level corruption, preserved as evidence).
//  4. Replay the journal against the surviving objects: a begun cell whose
//     object verified is complete (its done record was lost between rename
//     and append); a begun cell with no object was interrupted mid-write
//     and is simply absent. Sweeps without a sweepdone are surfaced as
//     pending for the serving layer to resume.
//  5. Checkpoint, so the on-disk journal reflects exactly the recovered
//     state.
func (s *Store) recover() (*Recovery, error) {
	rec := &Recovery{}

	// 1. Torn temp files.
	tmps, err := os.ReadDir(s.tmpDir())
	if err != nil {
		return nil, fmt.Errorf("store: recovery: %w", err)
	}
	for _, e := range tmps {
		if err := os.Remove(filepath.Join(s.tmpDir(), e.Name())); err != nil {
			return nil, fmt.Errorf("store: recovery: discarding %s: %w", e.Name(), err)
		}
		rec.TmpDiscarded++
	}

	// 2. Journal.
	js, err := parseJournal(s.journalPath())
	if err != nil {
		return nil, err
	}
	rec.JournalRecords = js.records
	rec.TornTailBytes = js.tornBytes

	// 3. Object verification.
	objs, err := os.ReadDir(s.objectsDir())
	if err != nil {
		return nil, fmt.Errorf("store: recovery: %w", err)
	}
	for _, e := range objs {
		name := e.Name()
		fp := strings.TrimSuffix(name, ".obj")
		path := filepath.Join(s.objectsDir(), name)
		if !strings.HasSuffix(name, ".obj") || !fpPat.MatchString(fp) {
			// Not ours; quarantine rather than guess.
			if err := s.quarantineLocked(path); err != nil {
				return nil, fmt.Errorf("store: recovery: quarantining %s: %w", name, err)
			}
			rec.Quarantined++
			continue
		}
		if _, err := readObject(path); err != nil {
			if qerr := s.quarantineLocked(path); qerr != nil {
				return nil, fmt.Errorf("store: recovery: quarantining %s: %w", name, qerr)
			}
			rec.Quarantined++
			continue
		}
		s.complete[fp] = true
		rec.Objects++
	}

	// 4. Journal replay.
	for fp := range js.begun {
		if s.complete[fp] {
			if !js.done[fp] {
				rec.ReplayedDone++
			}
			continue
		}
		rec.Interrupted = append(rec.Interrupted, fp)
		s.inflight[fp] = true
	}
	sort.Strings(rec.Interrupted)
	for _, fp := range js.sweepSeq {
		if js.sweepDone[fp] {
			continue
		}
		spec := js.sweeps[fp]
		s.sweeps[fp] = spec
		s.sweepSeq = append(s.sweepSeq, fp)
		rec.PendingSweeps = append(rec.PendingSweeps, PendingSweep{Fp: fp, Spec: spec})
	}

	// 5. Compact. checkpointLocked reopens the journal for appending.
	if err := s.checkpointLocked(); err != nil {
		return nil, err
	}
	return rec, nil
}
