package store

// CrashPoint names one step of the store's write protocol. The FailPoint
// seam injects a failure at the named step, leaving the on-disk state
// exactly as a crash there would: no cleanup runs, the operation simply
// stops. The crash-interleaving tests drive every point and prove the
// recovery pass restores each one to "absent" or "complete and verified",
// never torn.
type CrashPoint string

const (
	// CrashJournalAppend fires before any journal record is written (the
	// begin record of a Put, the done record, or a sweep record).
	CrashJournalAppend CrashPoint = "journal-append"
	// CrashMidTempWrite fires after half the payload has been written to
	// the temp file — the canonical torn write.
	CrashMidTempWrite CrashPoint = "temp-write"
	// CrashBeforeTempSync fires after the payload is fully written but
	// before the temp file is fsynced.
	CrashBeforeTempSync CrashPoint = "temp-sync"
	// CrashBeforeRename fires after the temp file is durable but before it
	// is renamed into objects/.
	CrashBeforeRename CrashPoint = "rename"
	// CrashBeforeDirSync fires after the rename but before the directory
	// entry is fsynced.
	CrashBeforeDirSync CrashPoint = "dir-sync"
	// CrashBeforeJournalDone fires after the object is fully durable but
	// before the done record is appended.
	CrashBeforeJournalDone CrashPoint = "journal-done"
)

// failAt consults the installed fault hook (nil outside tests).
func (s *Store) failAt(p CrashPoint) error {
	if s.FailPoint == nil {
		return nil
	}
	return s.FailPoint(p)
}
