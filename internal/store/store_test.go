package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func open(t *testing.T, dir string) (*Store, *Recovery) {
	t.Helper()
	s, rec, err := Open(dir)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s, rec
}

func TestPutGetRoundTrip(t *testing.T) {
	s, rec := open(t, t.TempDir())
	defer s.Close()
	if rec.Objects != 0 || rec.JournalRecords != 0 {
		t.Fatalf("fresh store recovered state: %+v", rec)
	}
	payload := []byte(`{"schema":"ccnuma-run/v1","fake":true}`)
	const fp = "00deadbeef00cafe"
	if err := s.Put(fp, payload); err != nil {
		t.Fatal(err)
	}
	if !s.Has(fp) {
		t.Fatal("Has after Put = false")
	}
	got, ok, err := s.Get(fp)
	if err != nil || !ok {
		t.Fatalf("Get: ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("Get returned %q, want %q", got, payload)
	}
	if _, ok, _ := s.Get("ffffffffffffffff"); ok {
		t.Fatal("Get of absent key reported ok")
	}
}

func TestPutIdempotent(t *testing.T) {
	s, _ := open(t, t.TempDir())
	defer s.Close()
	const fp = "0123456789abcdef"
	if err := s.Put(fp, []byte("one")); err != nil {
		t.Fatal(err)
	}
	// Content-addressed: a second Put of a complete fp is a no-op, even
	// with different bytes (the fingerprint IS the identity; disagreeing
	// bytes would mean the caller broke the fingerprint contract).
	if err := s.Put(fp, []byte("one")); err != nil {
		t.Fatal(err)
	}
	if st := s.StatsSnapshot(); st.Puts != 1 || st.Objects != 1 {
		t.Fatalf("stats after duplicate Put: %+v", st)
	}
}

func TestInvalidFingerprintRejected(t *testing.T) {
	s, _ := open(t, t.TempDir())
	defer s.Close()
	for _, fp := range []string{"", "UPPER", "short", "../../etc/passwd", "0123456789abcdeg"} {
		if err := s.Put(fp, []byte("x")); err == nil {
			t.Fatalf("Put(%q) accepted an invalid fingerprint", fp)
		}
		if _, _, err := s.Get(fp); err == nil {
			t.Fatalf("Get(%q) accepted an invalid fingerprint", fp)
		}
	}
}

func TestReopenRecoversObjects(t *testing.T) {
	dir := t.TempDir()
	s, _ := open(t, dir)
	var fps []string
	for i := 0; i < 5; i++ {
		fp := fmt.Sprintf("%016x", i+1)
		fps = append(fps, fp)
		if err := s.Put(fp, []byte(fmt.Sprintf("payload-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, rec := open(t, dir)
	defer s2.Close()
	if rec.Objects != 5 || rec.Quarantined != 0 {
		t.Fatalf("recovery: %+v", rec)
	}
	for i, fp := range fps {
		got, ok, err := s2.Get(fp)
		if err != nil || !ok {
			t.Fatalf("Get(%s): ok=%v err=%v", fp, ok, err)
		}
		if want := fmt.Sprintf("payload-%d", i); string(got) != want {
			t.Fatalf("Get(%s) = %q, want %q", fp, got, want)
		}
	}
	if got := s2.Keys(); len(got) != 5 {
		t.Fatalf("Keys = %v", got)
	}
}

func TestCorruptObjectQuarantinedAtRecovery(t *testing.T) {
	dir := t.TempDir()
	s, _ := open(t, dir)
	const fp = "00000000000000aa"
	if err := s.Put(fp, []byte("precious bytes")); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Flip payload bytes on disk: header hash no longer matches.
	path := filepath.Join(dir, "objects", fp+".obj")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o666); err != nil {
		t.Fatal(err)
	}

	s2, rec := open(t, dir)
	defer s2.Close()
	if rec.Quarantined != 1 || rec.Objects != 0 {
		t.Fatalf("recovery: %+v", rec)
	}
	if _, ok, err := s2.Get(fp); ok || err != nil {
		t.Fatalf("corrupt object still served: ok=%v err=%v", ok, err)
	}
	q, err := os.ReadDir(filepath.Join(dir, "quarantine"))
	if err != nil || len(q) != 1 {
		t.Fatalf("quarantine dir: %v entries, err=%v", len(q), err)
	}
}

func TestCorruptObjectDetectedOnGet(t *testing.T) {
	dir := t.TempDir()
	s, _ := open(t, dir)
	defer s.Close()
	const fp = "00000000000000bb"
	if err := s.Put(fp, []byte("will rot")); err != nil {
		t.Fatal(err)
	}
	// Corrupt behind the running store's back (disk rot).
	path := filepath.Join(dir, "objects", fp+".obj")
	if err := os.WriteFile(path, []byte("ccstore/v1 junk"), 0o666); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Get(fp); ok || err == nil {
		t.Fatalf("first Get of rotted object: ok=%v err=%v (want detection error)", ok, err)
	}
	// Detection quarantines and drops the key: subsequent reads are clean
	// absences, never bad bytes.
	if _, ok, err := s.Get(fp); ok || err != nil {
		t.Fatalf("second Get: ok=%v err=%v (want plain absent)", ok, err)
	}
	if st := s.StatsSnapshot(); st.VerifyFails != 1 {
		t.Fatalf("VerifyFails = %d, want 1", st.VerifyFails)
	}
}

func TestTornJournalTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s, _ := open(t, dir)
	const fp = "00000000000000cc"
	if err := s.Put(fp, []byte("ok")); err != nil {
		t.Fatal(err)
	}
	if err := s.BeginSweep("00000000000000dd", []byte(`{"spec":1}`)); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: garbage after the last good record. The
	// store is deliberately not Closed (a Close would checkpoint).
	jp := filepath.Join(dir, "journal.wal")
	f, err := os.OpenFile(jp, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"op":"done","fp":"0000000`) // torn mid-record
	f.Close()

	s2, rec := open(t, dir)
	defer s2.Close()
	if rec.TornTailBytes == 0 {
		t.Fatalf("torn tail not detected: %+v", rec)
	}
	if rec.Objects != 1 {
		t.Fatalf("object lost: %+v", rec)
	}
	if len(rec.PendingSweeps) != 1 || rec.PendingSweeps[0].Fp != "00000000000000dd" {
		t.Fatalf("pending sweep lost: %+v", rec.PendingSweeps)
	}
	if string(rec.PendingSweeps[0].Spec) != `{"spec":1}` {
		t.Fatalf("sweep spec corrupted: %q", rec.PendingSweeps[0].Spec)
	}
}

func TestSweepLifecycle(t *testing.T) {
	dir := t.TempDir()
	s, _ := open(t, dir)
	if err := s.BeginSweep("00000000000000ee", []byte("spec-a")); err != nil {
		t.Fatal(err)
	}
	if err := s.BeginSweep("00000000000000ef", []byte("spec-b")); err != nil {
		t.Fatal(err)
	}
	if err := s.EndSweep("00000000000000ee"); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, rec := open(t, dir)
	defer s2.Close()
	if len(rec.PendingSweeps) != 1 || rec.PendingSweeps[0].Fp != "00000000000000ef" {
		t.Fatalf("pending sweeps after restart: %+v", rec.PendingSweeps)
	}
	if err := s2.EndSweep("00000000000000ef"); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	_, rec3 := open(t, dir)
	if len(rec3.PendingSweeps) != 0 {
		t.Fatalf("finished sweep still pending: %+v", rec3.PendingSweeps)
	}
}

func TestCheckpointCompactsJournal(t *testing.T) {
	dir := t.TempDir()
	s, _ := open(t, dir)
	defer s.Close()
	for i := 0; i < 10; i++ {
		if err := s.Put(fmt.Sprintf("%016x", i+0x100), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "journal.wal"))
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.TrimSpace(string(data)); lines != "" {
		t.Fatalf("checkpoint of a quiescent store left journal records:\n%s", lines)
	}
	// The store must still be usable after the journal swap.
	if err := s.Put("00000000000000ff", []byte("post-checkpoint")); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentPutsAndGets(t *testing.T) {
	s, _ := open(t, t.TempDir())
	defer s.Close()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				fp := fmt.Sprintf("%015x%d", i, w%2) // overlap across workers
				payload := []byte(fmt.Sprintf("payload-%d-%d", i, w%2))
				if err := s.Put(fp, payload); err != nil {
					t.Errorf("Put(%s): %v", fp, err)
					return
				}
				got, ok, err := s.Get(fp)
				if err != nil || !ok || !bytes.Equal(got, payload) {
					t.Errorf("Get(%s): ok=%v err=%v", fp, ok, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if st := s.StatsSnapshot(); st.Objects != 40 {
		t.Fatalf("Objects = %d, want 40", st.Objects)
	}
}
