package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// errInjected is what the crash seam returns; the aborted operation leaves
// the disk exactly as a SIGKILL at that instant would.
var errInjected = errors.New("injected crash")

// failOnce returns a FailPoint hook that fires at the first occurrence of
// point p and never again (so a Put reaches p even when an earlier step
// shares the same journal-append seam).
func failOnce(p CrashPoint) func(CrashPoint) error {
	fired := false
	return func(q CrashPoint) error {
		if q == p && !fired {
			fired = true
			return errInjected
		}
		return nil
	}
}

// TestCrashInterleavings drives the write protocol into a crash at every
// point of the seam and proves the recovery invariant: after reopening,
// the key is either absent or complete-and-verified — never torn — a
// previously completed key is never lost, the recovery pass never
// quarantines anything (quarantine is for disk corruption, which a crash
// cannot produce), and a retried Put then succeeds.
func TestCrashInterleavings(t *testing.T) {
	payload := []byte(`{"cell":"artifact bytes, long enough to tear in half"}`)
	const prior = "00000000aaaaaaaa" // completed before the crash
	const fp = "00000000bbbbbbbb"    // the Put that crashes

	cases := []struct {
		point CrashPoint
		// complete reports whether the object must survive the crash: true
		// once the rename published it (only the bookkeeping after the
		// rename can be lost), false before.
		complete bool
	}{
		{CrashJournalAppend, false},
		{CrashMidTempWrite, false},
		{CrashBeforeTempSync, false},
		{CrashBeforeRename, false},
		{CrashBeforeDirSync, true},
		{CrashBeforeJournalDone, true},
	}
	for _, tc := range cases {
		t.Run(string(tc.point), func(t *testing.T) {
			dir := t.TempDir()
			s, _ := open(t, dir)
			if err := s.Put(prior, []byte("prior artifact")); err != nil {
				t.Fatal(err)
			}
			s.FailPoint = failOnce(tc.point)
			if err := s.Put(fp, payload); !errors.Is(err, errInjected) {
				t.Fatalf("Put under crash at %s: err = %v, want injected crash", tc.point, err)
			}
			// SIGKILL: the store is abandoned, not Closed.

			s2, rec := open(t, dir)
			defer s2.Close()
			if rec.Quarantined != 0 {
				t.Fatalf("crash at %s quarantined %d objects; a crash must never corrupt", tc.point, rec.Quarantined)
			}

			// The previously completed key survives every interleaving.
			got, ok, err := s2.Get(prior)
			if err != nil || !ok || string(got) != "prior artifact" {
				t.Fatalf("prior key lost after crash at %s: ok=%v err=%v", tc.point, ok, err)
			}

			got, ok, err = s2.Get(fp)
			if err != nil {
				t.Fatalf("Get after crash at %s: %v (torn state survived recovery)", tc.point, err)
			}
			if ok != tc.complete {
				t.Fatalf("crash at %s: complete=%v, want %v", tc.point, ok, tc.complete)
			}
			if ok && !bytes.Equal(got, payload) {
				t.Fatalf("crash at %s: recovered payload %q != put payload", tc.point, got)
			}
			if !ok {
				// An interrupted write that journaled its begin is reported
				// for the serving layer; one that crashed before the begin
				// record is simply absent.
				if tc.point != CrashJournalAppend && len(rec.Interrupted) != 1 {
					t.Fatalf("crash at %s: Interrupted = %v, want [%s]", tc.point, rec.Interrupted, fp)
				}
			}

			// A retried Put converges to complete and verified.
			if err := s2.Put(fp, payload); err != nil {
				t.Fatalf("retried Put after crash at %s: %v", tc.point, err)
			}
			got, ok, err = s2.Get(fp)
			if err != nil || !ok || !bytes.Equal(got, payload) {
				t.Fatalf("Get after retried Put at %s: ok=%v err=%v", tc.point, ok, err)
			}
		})
	}
}

// TestCrashDuringSweepJournal crashes the sweep-accept append and proves
// the sweep is either pending or absent after recovery, and re-journalable.
func TestCrashDuringSweepJournal(t *testing.T) {
	dir := t.TempDir()
	s, _ := open(t, dir)
	s.FailPoint = failOnce(CrashJournalAppend)
	const fp = "00000000cccccccc"
	if err := s.BeginSweep(fp, []byte("spec")); !errors.Is(err, errInjected) {
		t.Fatalf("BeginSweep under crash: %v", err)
	}

	s2, rec := open(t, dir)
	defer s2.Close()
	if len(rec.PendingSweeps) != 0 {
		t.Fatalf("sweep whose accept append crashed is pending: %+v", rec.PendingSweeps)
	}
	if err := s2.BeginSweep(fp, []byte("spec")); err != nil {
		t.Fatal(err)
	}
}

// TestRepeatedCrashesConverge rains a crash on every Put of a batch, then
// retries each; the store must end complete and verified with no residue
// beyond the quarantine-free recovery reports.
func TestRepeatedCrashesConverge(t *testing.T) {
	dir := t.TempDir()
	points := []CrashPoint{
		CrashJournalAppend, CrashMidTempWrite, CrashBeforeTempSync,
		CrashBeforeRename, CrashBeforeDirSync, CrashBeforeJournalDone,
	}
	for round, p := range points {
		s, rec := open(t, dir)
		if rec.Quarantined != 0 {
			t.Fatalf("round %d: quarantined %d", round, rec.Quarantined)
		}
		fp := fmt.Sprintf("%016x", round+0xd00)
		s.FailPoint = failOnce(p)
		if err := s.Put(fp, []byte("payload")); !errors.Is(err, errInjected) {
			t.Fatalf("round %d: %v", round, err)
		}
		// Abandon (crash), reopen, retry to completion, crash again on the
		// NEXT round's open — every round inherits the previous wreckage.
		s2, _ := open(t, dir)
		if err := s2.Put(fp, []byte("payload")); err != nil {
			t.Fatalf("round %d retry: %v", round, err)
		}
		// Abandoned without Close: the next round's recovery must cope
		// with an uncheckpointed journal too.
	}
	s, rec := open(t, dir)
	defer s.Close()
	if rec.Quarantined != 0 || rec.Objects != len(points) {
		t.Fatalf("final recovery: %+v", rec)
	}
	for round := range points {
		fp := fmt.Sprintf("%016x", round+0xd00)
		if got, ok, err := s.Get(fp); err != nil || !ok || string(got) != "payload" {
			t.Fatalf("final Get(%s): ok=%v err=%v", fp, ok, err)
		}
	}
}

// TestTmpResidueNeverPublished proves a torn temp file is discarded, not
// promoted: recovery must not move tmp/ leftovers into objects/.
func TestTmpResidueNeverPublished(t *testing.T) {
	dir := t.TempDir()
	s, _ := open(t, dir)
	s.FailPoint = failOnce(CrashBeforeRename)
	const fp = "00000000eeeeeeee"
	if err := s.Put(fp, []byte("fully written, synced, never renamed")); !errors.Is(err, errInjected) {
		t.Fatal("expected injected crash")
	}
	// The temp file exists and would even verify — but it was never
	// published, so recovery must discard it.
	tmps, _ := os.ReadDir(filepath.Join(dir, "tmp"))
	if len(tmps) != 1 {
		t.Fatalf("expected 1 temp leftover, found %d", len(tmps))
	}

	s2, rec := open(t, dir)
	defer s2.Close()
	if rec.TmpDiscarded != 1 {
		t.Fatalf("TmpDiscarded = %d, want 1", rec.TmpDiscarded)
	}
	if _, ok, _ := s2.Get(fp); ok {
		t.Fatal("unpublished temp file was promoted to an object")
	}
}
