// Package store is a crash-safe, content-addressed artifact store: the
// durability layer under ccserved. Objects are keyed by scenario
// fingerprint (the canonical hash internal/scenario assigns every
// experiment), written with the classic atomic-write discipline — temp
// file, fsync, rename, directory fsync — and framed self-verifyingly, so a
// read either returns exactly the bytes that were put or detects
// corruption. A write-ahead journal records in-flight cell writes and
// accepted-but-unfinished sweep submissions; the recovery pass at Open
// discards torn temp files, truncates a torn journal tail, verifies every
// object, quarantines anything corrupt, and replays the journal against
// the surviving objects, so a process killed at any instant restarts into
// a store that is consistent by construction: every key is either absent
// or complete and verified, never torn.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// objectMagic frames an object file: "ccstore/v1 <sha256> <len>\n" followed
// by exactly len payload bytes. The header binds the payload to its hash,
// making every object self-verifying without a sidecar file that could
// desynchronize.
const objectMagic = "ccstore/v1"

// fpPat constrains keys to scenario fingerprints (and keeps them safe as
// file names).
var fpPat = regexp.MustCompile(`^[0-9a-f]{8,64}$`)

// Store is a content-addressed artifact store rooted at one directory.
// All methods are safe for concurrent use.
type Store struct {
	// FailPoint, when non-nil, is the crash-injection seam: it is consulted
	// at every CrashPoint of the write protocol, and a non-nil return
	// aborts the operation with no cleanup, modeling a crash at that
	// instant. Install it only before the store is shared (tests).
	FailPoint func(CrashPoint) error

	dir     string
	mu      sync.Mutex
	journal *os.File
	// complete holds the fingerprints whose objects were present and
	// verified at recovery or written successfully since.
	complete map[string]bool
	// inflight holds fingerprints with a begin record but no completed
	// object (this process's active Puts plus interrupted ones inherited
	// from the journal).
	inflight map[string]bool
	// sweeps holds accepted-but-unfinished sweep submissions.
	sweeps   map[string][]byte
	sweepSeq []string
	stats    Stats
	noSync   bool
}

// Stats counts store activity since Open.
type Stats struct {
	Objects     int    `json:"objects"`     // verified complete objects
	InFlight    int    `json:"inFlight"`    // begun, not completed
	Puts        uint64 `json:"puts"`        // successful writes this process
	Gets        uint64 `json:"gets"`        // successful verified reads
	VerifyFails uint64 `json:"verifyFails"` // corrupt objects detected (and quarantined)
}

// Recovery reports what the startup pass found and repaired.
type Recovery struct {
	JournalRecords int   `json:"journalRecords"`
	TornTailBytes  int64 `json:"tornTailBytes"` // journal bytes dropped as a torn append
	TmpDiscarded   int   `json:"tmpDiscarded"`  // torn temp files removed
	Objects        int   `json:"objects"`       // objects present and verified
	Quarantined    int   `json:"quarantined"`   // corrupt objects moved aside
	// ReplayedDone counts begin records whose object proved durable even
	// though the done record was lost (crash between rename and journal
	// append); recovery re-marks them complete.
	ReplayedDone int `json:"replayedDone"`
	// Interrupted lists cell fingerprints that were mid-write at the
	// crash: begun, never completed. They are absent from the store and
	// will be recomputed on demand.
	Interrupted []string `json:"interrupted,omitempty"`
	// PendingSweeps are sweep submissions accepted but not finished, in
	// journal order; the serving layer resumes them.
	PendingSweeps []PendingSweep `json:"pendingSweeps,omitempty"`
}

// PendingSweep is one journaled, unfinished sweep submission.
type PendingSweep struct {
	Fp   string `json:"fp"`
	Spec []byte `json:"spec"`
}

// Open opens (creating if needed) the store rooted at dir and runs the
// recovery pass. It returns the store and a report of what recovery found.
func Open(dir string) (*Store, *Recovery, error) {
	s := &Store{
		dir:      dir,
		complete: map[string]bool{},
		inflight: map[string]bool{},
		sweeps:   map[string][]byte{},
	}
	for _, d := range []string{dir, s.objectsDir(), s.tmpDir(), s.quarantineDir()} {
		if err := os.MkdirAll(d, 0o777); err != nil {
			return nil, nil, fmt.Errorf("store: %w", err)
		}
	}
	// recover ends with a checkpoint, which leaves s.journal open for
	// appending.
	rec, err := s.recover()
	if err != nil {
		return nil, nil, err
	}
	return s, rec, nil
}

func (s *Store) objectsDir() string    { return filepath.Join(s.dir, "objects") }
func (s *Store) tmpDir() string        { return filepath.Join(s.dir, "tmp") }
func (s *Store) quarantineDir() string { return filepath.Join(s.dir, "quarantine") }
func (s *Store) journalPath() string   { return filepath.Join(s.dir, "journal.wal") }
func (s *Store) objectPath(fp string) string {
	return filepath.Join(s.objectsDir(), fp+".obj")
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Has reports whether fp is complete and verified.
func (s *Store) Has(fp string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.complete[fp]
}

// Keys returns the complete fingerprints, sorted.
func (s *Store) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.complete))
	for fp := range s.complete {
		keys = append(keys, fp)
	}
	sort.Strings(keys)
	return keys
}

// StatsSnapshot returns a copy of the store's counters.
func (s *Store) StatsSnapshot() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Objects = len(s.complete)
	st.InFlight = len(s.inflight)
	return st
}

// Get returns the verified payload for fp. ok is false when fp is absent.
// A non-nil error means the object existed but failed verification; it has
// been quarantined and fp now reads as absent.
func (s *Store) Get(fp string) (payload []byte, ok bool, err error) {
	if !fpPat.MatchString(fp) {
		return nil, false, fmt.Errorf("store: invalid fingerprint %q", fp)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.complete[fp] {
		return nil, false, nil
	}
	payload, err = readObject(s.objectPath(fp))
	if err != nil {
		// The object was verified at recovery (or written by us) and is now
		// unreadable: disk-level corruption. Quarantine it and drop the key
		// rather than ever serving bad bytes.
		s.stats.VerifyFails++
		delete(s.complete, fp)
		qerr := s.quarantineLocked(s.objectPath(fp))
		return nil, false, fmt.Errorf("store: object %s failed verification (quarantined): %w (quarantine: %v)", fp, err, qerr)
	}
	s.stats.Gets++
	return payload, true, nil
}

// Put makes payload durable under fp using the journaled atomic-write
// protocol: journal begin → temp write → fsync → rename → directory fsync
// → journal done. A Put of an already-complete fp is a no-op (the store is
// content-addressed: one fingerprint, one payload).
func (s *Store) Put(fp string, payload []byte) error {
	if !fpPat.MatchString(fp) {
		return fmt.Errorf("store: invalid fingerprint %q", fp)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.complete[fp] {
		return nil
	}

	if err := s.appendRecord(opBegin, fp, nil); err != nil {
		return err
	}
	s.inflight[fp] = true

	if err := s.writeObjectLocked(fp, payload); err != nil {
		return err
	}

	if err := s.failAt(CrashBeforeJournalDone); err != nil {
		return err
	}
	if err := s.appendRecord(opDone, fp, nil); err != nil {
		return err
	}
	delete(s.inflight, fp)
	s.complete[fp] = true
	s.stats.Puts++
	return nil
}

// writeObjectLocked performs the atomic object write below the journal.
func (s *Store) writeObjectLocked(fp string, payload []byte) error {
	sum := sha256.Sum256(payload)
	header := fmt.Sprintf("%s %s %d\n", objectMagic, hex.EncodeToString(sum[:]), len(payload))

	tmp, err := os.CreateTemp(s.tmpDir(), fp+".*")
	if err != nil {
		return fmt.Errorf("store: temp file: %w", err)
	}
	// No deferred cleanup: an abort at a crash point must leave the disk
	// exactly as a crash would; recovery discards tmp/ leftovers.
	if _, err := tmp.WriteString(header); err != nil {
		tmp.Close()
		return fmt.Errorf("store: temp write: %w", err)
	}
	if ferr := s.failAt(CrashMidTempWrite); ferr != nil {
		tmp.Write(payload[:len(payload)/2])
		tmp.Close()
		return ferr
	}
	if _, err := tmp.Write(payload); err != nil {
		tmp.Close()
		return fmt.Errorf("store: temp write: %w", err)
	}
	if ferr := s.failAt(CrashBeforeTempSync); ferr != nil {
		tmp.Close()
		return ferr
	}
	if err := s.syncFile(tmp); err != nil {
		tmp.Close()
		return fmt.Errorf("store: temp sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: temp close: %w", err)
	}
	if ferr := s.failAt(CrashBeforeRename); ferr != nil {
		return ferr
	}
	if err := os.Rename(tmp.Name(), s.objectPath(fp)); err != nil {
		return fmt.Errorf("store: rename: %w", err)
	}
	if ferr := s.failAt(CrashBeforeDirSync); ferr != nil {
		return ferr
	}
	if err := s.syncDir(s.objectsDir()); err != nil {
		return fmt.Errorf("store: directory sync: %w", err)
	}
	return nil
}

// BeginSweep journals an accepted sweep submission: fp is the submitted
// spec's fingerprint, spec its canonical bytes. After a crash, recovery
// surfaces it as pending so the serving layer can resume it.
func (s *Store) BeginSweep(fp string, spec []byte) error {
	if !fpPat.MatchString(fp) {
		return fmt.Errorf("store: invalid fingerprint %q", fp)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, seen := s.sweeps[fp]; !seen {
		s.sweepSeq = append(s.sweepSeq, fp)
	}
	s.sweeps[fp] = spec
	return s.appendRecord(opSweep, fp, spec)
}

// EndSweep journals a sweep as fully served.
func (s *Store) EndSweep(fp string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.sweeps[fp]; !ok {
		return nil
	}
	delete(s.sweeps, fp)
	return s.appendRecord(opSweepDone, fp, nil)
}

// Checkpoint compacts the journal to the live state only: begin records
// for in-flight cells and sweep records for unfinished submissions.
// Everything else — done pairs, finished sweeps, any torn-tail slack — is
// dropped. Graceful shutdown checkpoints so restart recovery replays a
// minimal journal.
func (s *Store) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.checkpointLocked()
}

func (s *Store) checkpointLocked() error {
	var buf strings.Builder
	write := func(op, fp string, spec []byte) {
		r := record{Op: op, Fp: fp, Spec: spec, Sum: recordSum(op, fp, spec)}
		line, err := json.Marshal(&r)
		if err == nil {
			buf.Write(line)
			buf.WriteByte('\n')
		}
	}
	for _, fp := range s.sweepSeq {
		if spec, ok := s.sweeps[fp]; ok {
			write(opSweep, fp, spec)
		}
	}
	inflight := make([]string, 0, len(s.inflight))
	for fp := range s.inflight {
		inflight = append(inflight, fp)
	}
	sort.Strings(inflight)
	for _, fp := range inflight {
		write(opBegin, fp, nil)
	}

	tmp := s.journalPath() + ".tmp"
	if err := os.WriteFile(tmp, []byte(buf.String()), 0o666); err != nil {
		return fmt.Errorf("store: checkpoint: %w", err)
	}
	if err := s.syncPath(tmp); err != nil {
		return fmt.Errorf("store: checkpoint sync: %w", err)
	}
	if s.journal != nil {
		s.journal.Close()
	}
	if err := os.Rename(tmp, s.journalPath()); err != nil {
		return fmt.Errorf("store: checkpoint rename: %w", err)
	}
	if err := s.syncDir(s.dir); err != nil {
		return fmt.Errorf("store: checkpoint dir sync: %w", err)
	}
	j, err := os.OpenFile(s.journalPath(), os.O_WRONLY|os.O_APPEND, 0o666)
	if err != nil {
		return fmt.Errorf("store: checkpoint reopen: %w", err)
	}
	s.journal = j
	return nil
}

// Close checkpoints the journal and releases the store.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.journal == nil {
		return nil
	}
	err := s.checkpointLocked()
	cerr := s.journal.Close()
	s.journal = nil
	if err == nil {
		err = cerr
	}
	return err
}

// quarantineLocked moves a corrupt file into quarantine/ under a unique
// name, so the evidence survives without ever being served again.
func (s *Store) quarantineLocked(path string) error {
	base := filepath.Base(path)
	for i := 0; ; i++ {
		dst := filepath.Join(s.quarantineDir(), base)
		if i > 0 {
			dst += "." + strconv.Itoa(i)
		}
		if _, err := os.Lstat(dst); err == nil {
			continue
		}
		return os.Rename(path, dst)
	}
}

func (s *Store) syncFile(f *os.File) error {
	if s.noSync {
		return nil
	}
	return f.Sync()
}

func (s *Store) syncPath(path string) error {
	if s.noSync {
		return nil
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	err = f.Sync()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func (s *Store) syncDir(dir string) error {
	return s.syncPath(dir)
}

// readObject reads and verifies one object file: header parse, length
// check, SHA-256 match.
func readObject(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	nl := -1
	for i, b := range data {
		if b == '\n' {
			nl = i
			break
		}
	}
	if nl < 0 {
		return nil, fmt.Errorf("no header line")
	}
	fields := strings.Fields(string(data[:nl]))
	if len(fields) != 3 || fields[0] != objectMagic {
		return nil, fmt.Errorf("bad header %q", string(data[:nl]))
	}
	wantLen, err := strconv.Atoi(fields[2])
	if err != nil {
		return nil, fmt.Errorf("bad header length: %w", err)
	}
	payload := data[nl+1:]
	if len(payload) != wantLen {
		return nil, fmt.Errorf("payload %d bytes, header says %d", len(payload), wantLen)
	}
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != fields[1] {
		return nil, fmt.Errorf("sha256 mismatch")
	}
	return payload, nil
}
