// Package obs is the structured observability layer of the simulator: typed
// protocol trace events, a simulated-time metrics sampler, and versioned
// machine-readable run artifacts. The timing model records events through a
// *Tracer handle that is nil when tracing is disabled; every recording
// method begins with a nil-receiver check, so the disabled path costs one
// branch and zero allocations. The single-goroutine simulation discipline
// (all model code runs on the engine goroutine) means one ring buffer per
// Tracer suffices; Tracer is not safe for concurrent use.
package obs

import (
	"fmt"

	"ccnuma/internal/sim"
)

// EventKind identifies the typed trace-event vocabulary.
type EventKind uint8

const (
	// EvDispatch is a protocol-handler execution on an engine: a complete
	// span with Dur = handler occupancy and A = queueing delay.
	EvDispatch EventKind = iota
	// EvEnqueue is an insertion into a controller input queue. Track is the
	// engine, A the queue (QResp/QReq/QBus), B the depth after insertion.
	EvEnqueue
	// EvDequeue is a removal from a controller input queue at dispatch time.
	// Track is the engine, A the queue, B the depth after removal.
	EvDequeue
	// EvBusStrobe is a bus transaction reaching the address strobe; A is the
	// issuing snooper index (smpbus.CCSrc for the controller).
	EvBusStrobe
	// EvNetSend is a message accepted by a node's NI output port; A is the
	// destination node, B the flit count.
	EvNetSend
	// EvNetRecv is the last flit of a message draining into the destination
	// NI; Node is the receiver, A the source node.
	EvNetRecv
	// EvDirRead is a directory read; A is 1 on a directory-cache hit, 0 on a
	// miss, and Name the state read.
	EvDirRead
	// EvDirWrite is a directory write-through; Name is the state written.
	EvDirWrite
	// EvCache is a processor cache transition (snoop, install, evict,
	// write-back); Track is the node-local processor index.
	EvCache
	// EvNack is a request bounced by a home controller (full input queue or
	// retried-owner collision); Track is the engine, Name the request type.
	EvNack
	// EvFault is an injected fault taking effect (drop, duplicate, delay,
	// corrupt, engine stall, port brownout); Name is the fault kind, A a
	// kind-specific argument (delay/stall cycles, message index).
	EvFault
	// EvSpan is a latency-attribution checkpoint of one coherence
	// transaction: A is the transaction ID, Name the stage, B the marker
	// kind (0 = stage begin, 1 = measured stage slice with Dur = its
	// length, 2 = transaction finish with Dur = end-to-end latency).
	EvSpan

	numEventKinds
)

var eventKindNames = [...]string{
	"dispatch", "enqueue", "dequeue", "bus", "send", "recv",
	"dir-read", "dir-write", "cache", "nack", "fault", "span",
}

func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return fmt.Sprintf("EventKind(%d)", int(k))
}

// Queue identifiers for EvEnqueue/EvDequeue (the controller's three input
// queues, in the paper's dispatch-priority order).
const (
	QResp = 0 // network responses
	QReq  = 1 // network requests
	QBus  = 2 // bus-side requests
)

// QueueName returns the report name of a controller input queue.
func QueueName(q int) string {
	switch q {
	case QResp:
		return "respQ"
	case QReq:
		return "reqQ"
	case QBus:
		return "busQ"
	default:
		return fmt.Sprintf("queue%d", q)
	}
}

// TraceDescriber lets payloads that are opaque to a carrier (the network
// sees only interface{}) describe themselves for tracing.
type TraceDescriber interface {
	TraceName() string
	TraceLine() uint64
}

// DescribePayload extracts a trace label and line from an opaque payload,
// returning zero values when the payload cannot describe itself.
func DescribePayload(p interface{}) (string, uint64) {
	if d, ok := p.(TraceDescriber); ok {
		return d.TraceName(), d.TraceLine()
	}
	return "", 0
}

// Event is one typed trace record. The struct is fixed-size and string
// fields only ever reference constant name tables, so recording an event
// never allocates.
type Event struct {
	At   sim.Time  // simulated timestamp
	Dur  sim.Time  // span length (EvDispatch), zero for instants
	Kind EventKind // vocabulary entry
	Node int32     // node the event happened on
	// Track distinguishes parallel units within a node: the protocol-engine
	// index for dispatch/queue events, the node-local processor index for
	// cache events, unused otherwise.
	Track int32
	Line  uint64 // cache-line address (zero when not line-related)
	A, B  int64  // kind-specific arguments (see the EventKind docs)
	Name  string // kind-specific label (handler, message, txn kind, state)
	Aux   string // secondary label (cache state for EvCache), often empty
}

// Tracer records typed events into a fixed-capacity ring buffer and/or
// streams them to a sink. A nil *Tracer is the disabled tracer: every
// recording method no-ops after one nil check.
type Tracer struct {
	ring []Event
	next uint64 // total events recorded (ring index = next % len(ring))
	sink func(*Event)
	// scratch carries the event to the sink; passing &scratch instead of a
	// stack variable's address keeps record() allocation-free (a local whose
	// address reaches an unknown function would escape to the heap).
	scratch Event
}

// Option configures a Tracer.
type Option func(*Tracer)

// WithBuffer sets the ring-buffer capacity in events (default 1<<18;
// 0 disables buffering, for pure streaming use).
func WithBuffer(capacity int) Option {
	return func(t *Tracer) {
		if capacity <= 0 {
			t.ring = nil
			return
		}
		t.ring = make([]Event, capacity)
	}
}

// WithSink streams every event to fn as it is recorded (in addition to the
// ring buffer, if any). The *Event is only valid during the call.
func WithSink(fn func(*Event)) Option {
	return func(t *Tracer) { t.sink = fn }
}

// NewTracer creates an enabled tracer.
func NewTracer(opts ...Option) *Tracer {
	t := &Tracer{ring: make([]Event, 1<<18)}
	for _, o := range opts {
		o(t)
	}
	return t
}

// Enabled reports whether the tracer records events.
func (t *Tracer) Enabled() bool { return t != nil }

// Recorded returns the total number of events recorded (including any that
// have been overwritten in the ring).
func (t *Tracer) Recorded() uint64 {
	if t == nil {
		return 0
	}
	return t.next
}

// Dropped returns how many events were overwritten by ring wraparound.
func (t *Tracer) Dropped() uint64 {
	if t == nil || t.ring == nil || t.next <= uint64(len(t.ring)) {
		return 0
	}
	return t.next - uint64(len(t.ring))
}

// Events returns the buffered events in chronological order (a copy).
func (t *Tracer) Events() []Event {
	if t == nil || t.ring == nil {
		return nil
	}
	n := t.next
	capacity := uint64(len(t.ring))
	if n <= capacity {
		out := make([]Event, n)
		copy(out, t.ring[:n])
		return out
	}
	out := make([]Event, capacity)
	head := n % capacity // oldest surviving event
	copy(out, t.ring[head:])
	copy(out[capacity-head:], t.ring[:head])
	return out
}

// record appends an event to the ring and/or sink.
func (t *Tracer) record(ev Event) {
	if t.sink != nil {
		t.scratch = ev
		t.sink(&t.scratch)
	}
	if t.ring != nil {
		t.ring[t.next%uint64(len(t.ring))] = ev
	}
	t.next++
}

// Dispatch records a handler execution: engine idx, the dispatched work's
// label (message type or bus-transaction kind), its line, the occupancy
// charged, and the arrival-to-dispatch queueing delay.
func (t *Tracer) Dispatch(at sim.Time, node, engine int, name string, line uint64, occ, queueDelay sim.Time) {
	if t == nil {
		return
	}
	t.record(Event{At: at, Dur: occ, Kind: EvDispatch, Node: int32(node),
		Track: int32(engine), Line: line, A: int64(queueDelay), Name: name})
}

// Enqueue records an insertion into a controller input queue, with the
// queue's depth after the insertion.
func (t *Tracer) Enqueue(at sim.Time, node, engine, queue, depth int, name string, line uint64) {
	if t == nil {
		return
	}
	t.record(Event{At: at, Kind: EvEnqueue, Node: int32(node), Track: int32(engine),
		Line: line, A: int64(queue), B: int64(depth), Name: name})
}

// Dequeue records a removal from a controller input queue at dispatch time,
// with the queue's depth after the removal.
func (t *Tracer) Dequeue(at sim.Time, node, engine, queue, depth int, line uint64) {
	if t == nil {
		return
	}
	t.record(Event{At: at, Kind: EvDequeue, Node: int32(node), Track: int32(engine),
		Line: line, A: int64(queue), B: int64(depth)})
}

// BusStrobe records a bus transaction reaching the address strobe.
func (t *Tracer) BusStrobe(at sim.Time, node int, kind string, line uint64, src int) {
	if t == nil {
		return
	}
	t.record(Event{At: at, Kind: EvBusStrobe, Node: int32(node), Line: line,
		A: int64(src), Name: kind})
}

// NetSend records a message entering a node's NI output port.
func (t *Tracer) NetSend(at sim.Time, src, dst int, name string, line uint64, flits int) {
	if t == nil {
		return
	}
	t.record(Event{At: at, Kind: EvNetSend, Node: int32(src), A: int64(dst),
		B: int64(flits), Line: line, Name: name})
}

// NetRecv records a message fully drained into the destination NI.
func (t *Tracer) NetRecv(at sim.Time, src, dst int, name string, line uint64) {
	if t == nil {
		return
	}
	t.record(Event{At: at, Kind: EvNetRecv, Node: int32(dst), A: int64(src),
		Line: line, Name: name})
}

// DirAccess records a directory read (hit reports a directory-cache hit) or
// write-through; state is the entry state read or written.
func (t *Tracer) DirAccess(at sim.Time, node int, line uint64, write, hit bool, state string) {
	if t == nil {
		return
	}
	kind := EvDirRead
	var a int64
	if write {
		kind = EvDirWrite
	} else if hit {
		a = 1
	}
	t.record(Event{At: at, Kind: kind, Node: int32(node), Line: line, A: a, Name: state})
}

// Cache records a processor cache transition; proc is the node-local
// processor index, action the transition (snoop/install/evict/writeback)
// and state the resulting or observed cache state.
func (t *Tracer) Cache(at sim.Time, node, proc int, line uint64, action, state string) {
	if t == nil {
		return
	}
	t.record(Event{At: at, Kind: EvCache, Node: int32(node), Track: int32(proc),
		Line: line, Name: action, Aux: state})
}

// Nack records a request bounced by a home controller without dispatch.
func (t *Tracer) Nack(at sim.Time, node, engine int, name string, line uint64) {
	if t == nil {
		return
	}
	t.record(Event{At: at, Kind: EvNack, Node: int32(node), Track: int32(engine),
		Line: line, Name: name})
}

// Fault records an injected fault taking effect; kind is the fault name
// (drop/dup/delay/corrupt/stall/brownout) and arg a kind-specific value.
func (t *Tracer) Fault(at sim.Time, node int, kind string, arg int64) {
	if t == nil {
		return
	}
	t.record(Event{At: at, Kind: EvFault, Node: int32(node), A: arg, Name: kind})
}

// Span records a latency-attribution checkpoint of one transaction; stage
// is the stage name (a constant-table string), txn the transaction ID, and
// mark the marker kind (see EvSpan).
func (t *Tracer) Span(at, dur sim.Time, node int, stage string, line uint64, txn uint64, mark int64) {
	if t == nil {
		return
	}
	t.record(Event{At: at, Dur: dur, Kind: EvSpan, Node: int32(node),
		Line: line, A: int64(txn), B: mark, Name: stage})
}
