package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"ccnuma/internal/sim"
)

// Sample is one time-series observation of one protocol engine and its
// node-level surroundings. The machine emits one row per (tick, node,
// engine); node-level columns (bus, banks, directory DRAM, NI ports) repeat
// on every engine row of the node so each row is self-contained for
// plotting. Utilizations are percentages of the sampling interval; backlogs
// are how far ahead of the current cycle a port is already committed.
type Sample struct {
	At     int64 `json:"t"`      // simulated cycle of the sample
	Node   int   `json:"node"`   // node index
	Engine int   `json:"engine"` // protocol-engine index within the node

	EngineUtilPct float64 `json:"engineUtilPct"` // engine occupancy over the interval
	EngineBusy    bool    `json:"engineBusy"`    // a handler is executing right now
	RespQ         int     `json:"respQ"`         // network-response queue depth
	ReqQ          int     `json:"reqQ"`          // network-request queue depth
	BusQ          int     `json:"busQ"`          // bus-request queue depth

	BusAddrUtilPct float64 `json:"busAddrUtilPct"` // address-bus occupancy
	BusDataUtilPct float64 `json:"busDataUtilPct"` // data-bus occupancy
	BankUtilPct    float64 `json:"bankUtilPct"`    // mean memory-bank occupancy
	DirDRAMUtilPct float64 `json:"dirDramUtilPct"` // directory-DRAM occupancy

	NIOutBacklog int64 `json:"niOutBacklogCycles"` // output-port commitment beyond now
	NIInBacklog  int64 `json:"niInBacklogCycles"`  // input-port commitment beyond now

	// Robustness columns (all zero with the recovery knobs off). QueueCap is
	// the configured per-queue depth limit so plots can show depth against
	// capacity; Nacks/Retries are this node's deltas over the interval;
	// Overflows is the machine-wide NI output-buffer overflow delta
	// (repeated on every row of the tick).
	QueueCap    int    `json:"queueCap"`    // configured input-queue capacity (0 = unbounded)
	NIOutQueued int    `json:"niOutQueued"` // messages held in the node's NI output buffer
	Nacks       uint64 `json:"nacks"`       // NACKs sent by this node in the interval
	Retries     uint64 `json:"retries"`     // re-issues by this node in the interval
	Overflows   uint64 `json:"overflows"`   // machine-wide NI overflow delta in the interval
}

// Sampler accumulates periodic samples for CSV/JSON emission. The machine
// probes its components every Interval simulated cycles and calls Add.
type Sampler struct {
	Interval sim.Time
	samples  []Sample
}

// NewSampler creates a sampler with the given simulated-time interval.
func NewSampler(interval sim.Time) *Sampler {
	if interval <= 0 {
		interval = 10_000
	}
	return &Sampler{Interval: interval}
}

// Add appends one observation.
func (s *Sampler) Add(smp Sample) { s.samples = append(s.samples, smp) }

// Samples returns all accumulated rows in emission order.
func (s *Sampler) Samples() []Sample { return s.samples }

// UtilPct converts a busy-time delta over the sampling interval to a
// percentage, clamped to [0, 100] (occupancy is charged at acquire time, so
// a burst can momentarily exceed the interval).
func (s *Sampler) UtilPct(busyDelta sim.Time) float64 {
	if s.Interval <= 0 {
		return 0
	}
	pct := 100 * float64(busyDelta) / float64(s.Interval)
	if pct < 0 {
		pct = 0
	}
	if pct > 100 {
		pct = 100
	}
	return pct
}

// csvHeader lists the CSV columns in Sample field order.
var csvHeader = []string{
	"t", "node", "engine", "engine_util_pct", "engine_busy",
	"resp_q", "req_q", "bus_q",
	"bus_addr_util_pct", "bus_data_util_pct", "bank_util_pct", "dir_dram_util_pct",
	"ni_out_backlog_cycles", "ni_in_backlog_cycles",
	"queue_cap", "ni_out_queued", "nacks", "retries", "overflows",
}

// WriteCSV emits the samples as CSV with a header row.
func (s *Sampler) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, strings.Join(csvHeader, ",")); err != nil {
		return err
	}
	for i := range s.samples {
		r := &s.samples[i]
		busy := 0
		if r.EngineBusy {
			busy = 1
		}
		_, err := fmt.Fprintf(bw, "%d,%d,%d,%.2f,%d,%d,%d,%d,%.2f,%.2f,%.2f,%.2f,%d,%d,%d,%d,%d,%d,%d\n",
			r.At, r.Node, r.Engine, r.EngineUtilPct, busy,
			r.RespQ, r.ReqQ, r.BusQ,
			r.BusAddrUtilPct, r.BusDataUtilPct, r.BankUtilPct, r.DirDRAMUtilPct,
			r.NIOutBacklog, r.NIInBacklog,
			r.QueueCap, r.NIOutQueued, r.Nacks, r.Retries, r.Overflows)
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

// samplerDoc wraps the JSON form with the interval for self-description.
type samplerDoc struct {
	IntervalCycles int64    `json:"intervalCycles"`
	Samples        []Sample `json:"samples"`
}

// WriteJSON emits the samples as a JSON document.
func (s *Sampler) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(samplerDoc{IntervalCycles: int64(s.Interval), Samples: s.samples})
}

// WriteFile writes JSON when path ends in .json, CSV otherwise.
func (s *Sampler) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".json") {
		err = s.WriteJSON(f)
	} else {
		err = s.WriteCSV(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
