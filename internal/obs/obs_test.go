package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"ccnuma/internal/sim"
)

func TestDisabledTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Error("nil tracer reports enabled")
	}
	if tr.Recorded() != 0 || tr.Dropped() != 0 || tr.Events() != nil {
		t.Error("nil tracer reports recorded events")
	}
	// Every recording method must be callable on the nil receiver.
	tr.Dispatch(1, 0, 0, "Read", 0x100, 10, 2)
	tr.Enqueue(1, 0, 0, QResp, 1, "Reply", 0x100)
	tr.Dequeue(1, 0, 0, QResp, 0, 0x100)
	tr.BusStrobe(1, 0, "Read", 0x100, 2)
	tr.NetSend(1, 0, 1, "ReadReq", 0x100, 2)
	tr.NetRecv(1, 0, 1, "ReadReq", 0x100)
	tr.DirAccess(1, 0, 0x100, false, true, "S")
	tr.Cache(1, 0, 1, 0x100, "install", "E")
}

func TestDisabledTracerZeroAllocs(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		tr.Dispatch(1, 0, 0, "Read", 0x100, 10, 2)
		tr.Enqueue(1, 0, 0, QBus, 1, "Read", 0x100)
		tr.NetSend(1, 0, 1, "ReadReq", 0x100, 2)
		tr.DirAccess(1, 0, 0x100, true, false, "S")
	})
	if allocs != 0 {
		t.Errorf("disabled tracer allocates %.1f per run, want 0", allocs)
	}
}

func TestEnabledTracerZeroAllocsSteadyState(t *testing.T) {
	tr := NewTracer(WithBuffer(64)) // ring pre-allocated; recording must not grow it
	allocs := testing.AllocsPerRun(1000, func() {
		tr.Dispatch(1, 0, 0, "Read", 0x100, 10, 2)
		tr.BusStrobe(2, 0, "Read", 0x100, 1)
	})
	if allocs != 0 {
		t.Errorf("enabled tracer allocates %.1f per event pair in steady state, want 0", allocs)
	}
}

func TestRingWraparound(t *testing.T) {
	tr := NewTracer(WithBuffer(8))
	for i := 0; i < 20; i++ {
		tr.BusStrobe(sim.Time(i), 0, "Read", uint64(i), 0)
	}
	if got := tr.Recorded(); got != 20 {
		t.Fatalf("Recorded() = %d, want 20", got)
	}
	if got := tr.Dropped(); got != 12 {
		t.Fatalf("Dropped() = %d, want 12", got)
	}
	evs := tr.Events()
	if len(evs) != 8 {
		t.Fatalf("Events() len = %d, want 8", len(evs))
	}
	// The survivors must be the last 8 events, in chronological order.
	for i, ev := range evs {
		want := sim.Time(12 + i)
		if ev.At != want {
			t.Errorf("event %d: At = %d, want %d", i, ev.At, want)
		}
	}
}

func TestRingNoWraparound(t *testing.T) {
	tr := NewTracer(WithBuffer(16))
	for i := 0; i < 5; i++ {
		tr.BusStrobe(sim.Time(10*i), 0, "Read", uint64(i), 0)
	}
	if tr.Dropped() != 0 {
		t.Errorf("Dropped() = %d, want 0", tr.Dropped())
	}
	evs := tr.Events()
	if len(evs) != 5 {
		t.Fatalf("Events() len = %d, want 5", len(evs))
	}
	for i, ev := range evs {
		if ev.At != sim.Time(10*i) {
			t.Errorf("event %d out of order: At = %d", i, ev.At)
		}
	}
}

func TestSinkStreaming(t *testing.T) {
	var seen []Event
	tr := NewTracer(WithBuffer(0), WithSink(func(ev *Event) { seen = append(seen, *ev) }))
	tr.Dispatch(5, 1, 0, "Read", 0x200, 32, 4)
	tr.NetRecv(7, 0, 1, "ReadReq", 0x200)
	if tr.Events() != nil {
		t.Error("buffer disabled but Events() non-nil")
	}
	if len(seen) != 2 {
		t.Fatalf("sink saw %d events, want 2", len(seen))
	}
	if seen[0].Kind != EvDispatch || seen[0].Dur != 32 || seen[0].A != 4 {
		t.Errorf("sink event 0 = %+v", seen[0])
	}
	if seen[1].Kind != EvNetRecv || seen[1].Node != 1 || seen[1].A != 0 {
		t.Errorf("sink event 1 = %+v", seen[1])
	}
}

func TestChromeTraceJSONValid(t *testing.T) {
	tr := NewTracer(WithBuffer(64))
	tr.Dispatch(100, 0, 1, "ReadReq", 0x3200, 80, 12)
	tr.Enqueue(90, 0, 1, QReq, 1, "ReadReq", 0x3200)
	tr.Dequeue(100, 0, 1, QReq, 0, 0x3200)
	tr.BusStrobe(110, 0, "Fetch", 0x3200, -1)
	tr.NetSend(120, 0, 3, "ReadReply", 0x3200, 5)
	tr.NetRecv(140, 0, 3, "ReadReply", 0x3200)
	tr.DirAccess(100, 0, 0x3200, false, true, "NoRemote")
	tr.DirAccess(115, 0, 0x3200, true, false, "SharedRemote")
	tr.Cache(150, 3, 2, 0x3200, "install", "S")

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr.Events()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string                 `json:"name"`
			Ph   string                 `json:"ph"`
			Ts   float64                `json:"ts"`
			Pid  int32                  `json:"pid"`
			Tid  int32                  `json:"tid"`
			Args map[string]interface{} `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	var spans, instants, counters, meta int
	names := map[string]bool{}
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "X":
			spans++
		case "i":
			instants++
		case "C":
			counters++
		case "M":
			meta++
			if n, ok := e.Args["name"].(string); ok {
				names[n] = true
			}
		default:
			t.Errorf("unexpected phase %q", e.Ph)
		}
	}
	if spans != 1 {
		t.Errorf("spans = %d, want 1 (the dispatch)", spans)
	}
	if counters != 2 {
		t.Errorf("counter samples = %d, want 2 (enqueue+dequeue)", counters)
	}
	if instants != 8 {
		t.Errorf("instants = %d, want 8", instants)
	}
	// Metadata must name both processes and the distinct tracks.
	for _, want := range []string{"node 0", "node 3", "engine 1", "smp bus", "ni out", "ni in", "directory", "cpu 2"} {
		if !names[want] {
			t.Errorf("metadata missing track/process name %q", want)
		}
	}
	// Timestamp conversion: 100 cycles x 5 ns = 0.5 us.
	for _, e := range doc.TraceEvents {
		if e.Ph == "X" && e.Ts != 0.5 {
			t.Errorf("dispatch ts = %v us, want 0.5", e.Ts)
		}
	}
}

func TestEventText(t *testing.T) {
	cases := []struct {
		ev   Event
		want string
	}{
		{Event{At: 4273, Node: 3, Kind: EvBusStrobe, Name: "Read", Line: 0x3200, A: 1},
			"bus Read line=0x3200 src=1"},
		{Event{At: 4273, Node: 3, Kind: EvDispatch, Track: 0, Name: "Read", Line: 0x3200, Dur: 32},
			"dispatch e0 Read line=0x3200 occ=32 qdelay=0"},
		{Event{At: 4321, Node: 2, Kind: EvDirRead, Line: 0x3200, Name: "NoRemote"},
			"dir read line=0x3200 NoRemote (miss)"},
		{Event{At: 4321, Node: 2, Kind: EvDirRead, Line: 0x3200, Name: "Dirty", A: 1},
			"dir read line=0x3200 Dirty (hit)"},
		{Event{At: 4305, Node: 3, Kind: EvNetSend, Name: "ReadReq", Line: 0x3200, A: 2, B: 1},
			"send ReadReq line=0x3200 -> n2 (1 flits)"},
		{Event{At: 9, Node: 0, Kind: EvCache, Track: 1, Name: "install", Line: 0x80, Aux: "E"},
			"cpu1 install line=0x80 E"},
	}
	for _, c := range cases {
		got := c.ev.Text()
		if !strings.HasSuffix(got, c.want) {
			t.Errorf("Text() = %q, want suffix %q", got, c.want)
		}
		if !strings.Contains(got, "n"+itoa(int(c.ev.Node))+"]") {
			t.Errorf("Text() = %q missing node prefix", got)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func TestSamplerOutputs(t *testing.T) {
	s := NewSampler(5000)
	if s.Interval != 5000 {
		t.Fatalf("interval = %d", s.Interval)
	}
	s.Add(Sample{At: 5000, Node: 0, Engine: 0, EngineUtilPct: 29.04, RespQ: 1, BusAddrUtilPct: 3.68})
	s.Add(Sample{At: 5000, Node: 1, Engine: 0, EngineUtilPct: 97.72, EngineBusy: true, BusQ: 1})

	var csv bytes.Buffer
	if err := s.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV lines = %d, want header + 2 rows", len(lines))
	}
	if !strings.HasPrefix(lines[0], "t,node,engine,engine_util_pct") {
		t.Errorf("CSV header = %q", lines[0])
	}
	if cols := strings.Count(lines[0], ","); strings.Count(lines[1], ",") != cols {
		t.Errorf("row has %d commas, header %d", strings.Count(lines[1], ","), cols)
	}
	if !strings.Contains(lines[2], "97.72,1") {
		t.Errorf("busy row = %q", lines[2])
	}

	var js bytes.Buffer
	if err := s.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		IntervalCycles int64    `json:"intervalCycles"`
		Samples        []Sample `json:"samples"`
	}
	if err := json.Unmarshal(js.Bytes(), &doc); err != nil {
		t.Fatalf("sampler JSON invalid: %v", err)
	}
	if doc.IntervalCycles != 5000 || len(doc.Samples) != 2 {
		t.Fatalf("doc = interval %d, %d samples", doc.IntervalCycles, len(doc.Samples))
	}
	if doc.Samples[1].EngineUtilPct != 97.72 || !doc.Samples[1].EngineBusy {
		t.Errorf("sample round-trip mismatch: %+v", doc.Samples[1])
	}
}

func TestUtilPctClamps(t *testing.T) {
	s := NewSampler(100)
	if got := s.UtilPct(50); got != 50 {
		t.Errorf("UtilPct(50) = %v", got)
	}
	if got := s.UtilPct(250); got != 100 {
		t.Errorf("UtilPct(250) = %v, want clamp to 100", got)
	}
	if got := s.UtilPct(-10); got != 0 {
		t.Errorf("UtilPct(-10) = %v, want clamp to 0", got)
	}
}

type fakePayload struct{}

func (fakePayload) TraceName() string { return "Fake" }
func (fakePayload) TraceLine() uint64 { return 0xabc }

func TestDescribePayload(t *testing.T) {
	name, line := DescribePayload(fakePayload{})
	if name != "Fake" || line != 0xabc {
		t.Errorf("DescribePayload = %q, %#x", name, line)
	}
	name, line = DescribePayload(42)
	if name != "" || line != 0 {
		t.Errorf("opaque payload = %q, %#x, want zero values", name, line)
	}
}
