package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestParseLintReport decodes a document with the exact shape cclint -json
// emits (it builds obs.LintReport directly, so these field names are the
// wire format).
func TestParseLintReport(t *testing.T) {
	data := []byte(`{
  "packages": 29,
  "findings": [
    {"pos": "internal/core/handlers.go:12:2", "check": "switch-enum",
     "message": "switch over protocol.MsgType silently ignores MsgInvalAck"}
  ]
}`)
	r, err := ParseLintReport(data)
	if err != nil {
		t.Fatalf("ParseLintReport: %v", err)
	}
	if r.Packages != 29 || len(r.Findings) != 1 {
		t.Fatalf("got %d packages, %d findings", r.Packages, len(r.Findings))
	}
	if r.Findings[0].Check != "switch-enum" {
		t.Errorf("finding check = %q", r.Findings[0].Check)
	}
}

// TestParseVerifyReport decodes a document with the shape ccverify -json
// emits (verify.Result's JSON tags).
func TestParseVerifyReport(t *testing.T) {
	data := []byte(`{
  "states": 203, "edges": 1624, "races": 2000, "truncated": false,
  "violations": [
    {"kind": "lost-writeback", "detail": "line 0x1000 lost 0x200000001",
     "path": "p1:WriteT p1:ReadV"}
  ]
}`)
	r, err := ParseVerifyReport(data)
	if err != nil {
		t.Fatalf("ParseVerifyReport: %v", err)
	}
	if r.States != 203 || r.Edges != 1624 || r.Races != 2000 {
		t.Fatalf("unexpected sizes: %+v", r)
	}
	if len(r.Violations) != 1 || r.Violations[0].Kind != "lost-writeback" {
		t.Fatalf("unexpected violations: %+v", r.Violations)
	}
}

// TestArtifactToolingRoundTrip attaches a tooling section and checks it
// survives the artifact's own JSON encoding, and that artifacts without
// one omit the key entirely (backwards compatibility of ccnuma-run/v1).
func TestArtifactToolingRoundTrip(t *testing.T) {
	a := &Artifact{Schema: ArtifactSchema, Tool: "ccsim"}
	var buf bytes.Buffer
	if err := a.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if bytes.Contains(buf.Bytes(), []byte(`"tooling"`)) {
		t.Error("artifact without tooling must omit the tooling key")
	}

	a.Tooling = &ToolingDoc{
		Lint:   &LintReport{Packages: 29, Findings: []LintFindingDoc{}},
		Verify: &VerifyReport{States: 203, Edges: 1624, Races: 2000},
	}
	buf.Reset()
	if err := a.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var back Artifact
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("decoding artifact: %v", err)
	}
	if back.Tooling == nil || back.Tooling.Lint == nil || back.Tooling.Verify == nil {
		t.Fatalf("tooling section lost in round-trip: %+v", back.Tooling)
	}
	if back.Tooling.Lint.Packages != 29 || back.Tooling.Verify.States != 203 {
		t.Errorf("tooling contents corrupted: %+v", back.Tooling)
	}
}
