// Causal span tracing: every coherence transaction (one processor miss
// episode) carries a stable ID from the cycle its miss is detected to the
// cycle its processor restarts, and each component it crosses checkpoints
// the stages of its life. The tracker tiles each transaction's lifetime
// with half-open stage segments: a checkpoint at cycle t closes the
// interval [cursor, t) under the named stage and advances the cursor, so
// the stages of a completed transaction always partition its end-to-end
// latency exactly — conservation holds by construction, and the residue
// between the last checkpoint and the processor restart is attributed to
// the fill stage. Checkpoints that would move the cursor backwards (stale
// duplicates, replayed messages under fault injection) are silent no-ops;
// the only conservation violation the tracker can record is a transaction
// finishing before its own cursor, which would mean a component
// checkpointed time the processor never observed.
package obs

import (
	"fmt"
	"sync"

	"ccnuma/internal/sim"
	"ccnuma/internal/stats"
)

// Stage identifies one segment class of a transaction's lifetime.
type Stage int

const (
	// StageStall is the L2 miss-detect window before the bus request issues.
	StageStall Stage = iota
	// StageBusArb is SMP bus arbitration: issue to address strobe.
	StageBusArb
	// StageBus is bus occupancy after the strobe: snoop, data transfer,
	// critical-quad delivery (or the bounce delay of a conflicting retry).
	StageBus
	// StageMem is local-memory bank access time (home memory fetches and
	// the owner/home bus fetches a protocol handler performs).
	StageMem
	// StageCCQueue is coherence-controller input-queue wait: arrival at a
	// protocol engine's queue to handler dispatch — the paper's occupancy
	// bottleneck.
	StageCCQueue
	// StageEngine is protocol-engine occupancy up to the handler's action
	// point (the Table 2 sub-operation sequence actually on the critical
	// path of this transaction).
	StageEngine
	// StageDirectory is directory/DRAM access stalled on under a handler.
	StageDirectory
	// StageHomeWait is home-side transient-op wait: the window where the
	// home has dispatched the request but is collecting invalidation acks,
	// owner data, or an eviction write-back before it can grant.
	StageHomeWait
	// StageNIPort is network-interface port buffering (output-port queue
	// and serialization wait, including reliable-link retransmission holds).
	StageNIPort
	// StageWire is network flight time: out-port grant to last flit drained
	// into the destination NI.
	StageWire
	// StageBackoff is recovery wait: NACK back-off and timeout windows
	// between a bounced request and its re-issue.
	StageBackoff
	// StageFill is the residue between the last checkpoint and the
	// processor's restart: cache fill and restart scheduling.
	StageFill

	numStages
)

var stageNames = [numStages]string{
	"stall", "bus-arb", "bus-xfer", "mem", "cc-queue", "engine",
	"directory", "home-wait", "ni-port", "wire", "backoff", "fill",
}

func (s Stage) String() string {
	if s >= 0 && s < numStages {
		return stageNames[s]
	}
	return fmt.Sprintf("Stage(%d)", int(s))
}

// NumStages is the number of attribution stages.
const NumStages = int(numStages)

// StageName returns the report name of stage index i.
func StageName(i int) string { return Stage(i).String() }

// SpanDescriber lets payloads that are opaque to a carrier (the network
// sees only interface{}) expose their transaction ID and episode epoch for
// span checkpointing. Payloads that do not implement it (fault-wrapped
// frames, raw test payloads) are simply not checkpointed.
type SpanDescriber interface {
	SpanTxn() (txn uint64, epoch uint32)
}

// DescribeSpan extracts (txn, epoch) from an opaque payload, returning
// zeros when the payload cannot describe itself.
func DescribeSpan(p interface{}) (uint64, uint32) {
	if d, ok := p.(SpanDescriber); ok {
		return d.SpanTxn()
	}
	return 0, 0
}

// EvSpan marker kinds (Event.B).
const (
	spanMarkBegin  = 0 // stage entry marker, Dur = 0
	spanMarkSlice  = 1 // measured stage slice, Dur = its length
	spanMarkFinish = 2 // transaction finish, Dur = end-to-end latency
)

// spanState is one open transaction's tracking state.
type spanState struct {
	line   uint64
	node   int32
	start  sim.Time
	cursor sim.Time
	epoch  uint32
	segs   [numStages]sim.Time
}

// SpanTracker assigns stage segments to open transactions and aggregates
// completed ones into per-stage latency distributions. Like *Tracer, a nil
// *SpanTracker is the disabled tracker: every method no-ops after one nil
// check, so call sites need no attribution-knob branches and the disabled
// path leaves event order untouched.
type SpanTracker struct {
	tr *Tracer // optional: emits EvSpan trace events (may be nil)

	// mu guards the open-transaction map and the aggregates: under -shards,
	// checkpoints for different transactions arrive from different shard
	// workers. Any one transaction's checkpoints are never concurrent (its
	// lifecycle events are causally chained at least one lookahead apart),
	// and every aggregate is an order-independent sum, so the lock protects
	// memory without affecting the aggregated results.
	mu   sync.Mutex
	open map[uint64]*spanState

	stages     [numStages]stats.Histogram
	totals     [numStages]sim.Time
	endToEnd   stats.Histogram
	completed  uint64
	violations uint64
}

// NewSpanTracker creates an enabled tracker. tr may be nil to aggregate
// without emitting trace events.
func NewSpanTracker(tr *Tracer) *SpanTracker {
	return &SpanTracker{tr: tr, open: make(map[uint64]*spanState)}
}

// Enabled reports whether the tracker records spans.
func (s *SpanTracker) Enabled() bool { return s != nil }

// Start opens transaction txn at time at: the requesting processor detected
// a miss on line. An ID of zero (untracked work) is ignored.
func (s *SpanTracker) Start(txn uint64, node int, line uint64, at sim.Time) {
	if s == nil || txn == 0 {
		return
	}
	s.mu.Lock()
	s.open[txn] = &spanState{line: line, node: int32(node), start: at, cursor: at}
	s.mu.Unlock()
}

// SetEpoch tags the open transaction with its current request episode so
// checkpoints carrying a stale epoch (messages from a closed, retried
// episode) are ignored. A new episode (timeout or NACK re-issue) simply
// calls SetEpoch again.
func (s *SpanTracker) SetEpoch(txn uint64, epoch uint32) {
	if s == nil || txn == 0 {
		return
	}
	s.mu.Lock()
	if st := s.open[txn]; st != nil {
		st.epoch = epoch
	}
	s.mu.Unlock()
}

// match resolves a checkpoint to its open transaction. Epoch zero on
// either side is a wildcard (bus- and CPU-side checkpoints predate epoch
// minting; the base configuration never mints epochs at all).
func (s *SpanTracker) match(txn uint64, epoch uint32) *spanState {
	if s == nil || txn == 0 {
		return nil
	}
	st := s.open[txn]
	if st == nil {
		return nil
	}
	if st.epoch != 0 && epoch != 0 && st.epoch != epoch {
		return nil
	}
	return st
}

// SpanBegin marks the entry of txn into a stage at time at. It is an
// informational marker (the attribution math is driven entirely by
// SpanEnd's cursor tiling): it emits a trace event for cctrace/Perfetto
// and anchors the lint pairing rule, but moves no cursor.
func (s *SpanTracker) SpanBegin(txn uint64, stage Stage, epoch uint32, at sim.Time) {
	if s == nil {
		return
	}
	s.mu.Lock()
	st := s.match(txn, epoch)
	if st == nil {
		s.mu.Unlock()
		return
	}
	node, line := int(st.node), st.line
	s.mu.Unlock()
	s.tr.Span(at, 0, node, stage.String(), line, txn, spanMarkBegin)
}

// SpanEnd closes the open interval [cursor, at) under the given stage and
// advances the cursor. Checkpoints at or before the cursor (duplicate or
// stale deliveries, same-cycle hops) are silent no-ops: they attribute
// zero cycles rather than corrupt the tiling.
func (s *SpanTracker) SpanEnd(txn uint64, stage Stage, epoch uint32, at sim.Time) {
	if s == nil {
		return
	}
	s.mu.Lock()
	st := s.match(txn, epoch)
	if st == nil || at <= st.cursor {
		s.mu.Unlock()
		return
	}
	s.tr.Span(st.cursor, at-st.cursor, int(st.node), stage.String(), st.line, txn, spanMarkSlice)
	st.segs[stage] += at - st.cursor
	st.cursor = at
	s.mu.Unlock()
}

// Finish completes transaction txn at time at (the processor restart),
// attributing the residue past the last checkpoint to StageFill and
// folding the transaction into the aggregate distributions. A finish
// before the transaction's own cursor is the one true conservation
// violation: some component checkpointed cycles past the observed
// end-to-end latency.
func (s *SpanTracker) Finish(txn uint64, at sim.Time) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.open[txn]
	if st == nil {
		return
	}
	delete(s.open, txn)
	if at < st.cursor {
		s.violations++
		return
	}
	if at > st.cursor {
		s.tr.Span(st.cursor, at-st.cursor, int(st.node), StageFill.String(), st.line, txn, spanMarkSlice)
		st.segs[StageFill] += at - st.cursor
	}
	for i := Stage(0); i < numStages; i++ {
		if st.segs[i] > 0 {
			s.stages[i].Add(st.segs[i])
			s.totals[i] += st.segs[i]
		}
	}
	s.endToEnd.Add(at - st.start)
	s.completed++
	s.tr.Span(st.start, at-st.start, int(st.node), "txn", st.line, txn, spanMarkFinish)
}

// Abandon discards an open transaction without aggregating it (the
// processor dropped the miss episode: a racing snoop turned the retry into
// a plain cache hit).
func (s *SpanTracker) Abandon(txn uint64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	delete(s.open, txn)
	s.mu.Unlock()
}

// OpenCount returns how many transactions are currently open.
func (s *SpanTracker) OpenCount() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.open)
}

// Completed returns how many transactions finished and were aggregated.
func (s *SpanTracker) Completed() uint64 {
	if s == nil {
		return 0
	}
	return s.completed
}

// Violations returns how many transactions finished before their own
// cursor (conservation failures).
func (s *SpanTracker) Violations() uint64 {
	if s == nil {
		return 0
	}
	return s.violations
}

// Stats snapshots the aggregate attribution into the stats-layer form the
// reports consume. Returns nil on a disabled tracker.
func (s *SpanTracker) Stats() *stats.Attribution {
	if s == nil {
		return nil
	}
	a := &stats.Attribution{
		Completed:  s.completed,
		Violations: s.violations,
		EndToEnd:   s.endToEnd,
	}
	for i := Stage(0); i < numStages; i++ {
		a.Stages = append(a.Stages, stats.StageAttribution{
			Stage: i.String(), Total: s.totals[i], Hist: s.stages[i],
		})
	}
	return a
}

// CheckConservation verifies the tracker's global invariants after a run:
// no transaction finished past its cursor, no transaction leaked open, and
// the per-stage totals sum cycle-exactly to the end-to-end total.
func (s *SpanTracker) CheckConservation() error {
	if s == nil {
		return nil
	}
	if s.violations > 0 {
		return fmt.Errorf("obs: %d span conservation violations (stage cycles past end-to-end latency)", s.violations)
	}
	if len(s.open) > 0 {
		return fmt.Errorf("obs: %d transaction spans leaked open after run end", len(s.open))
	}
	var sum sim.Time
	for i := range s.totals {
		sum += s.totals[i]
	}
	if int64(sum) != s.endToEnd.Sum {
		return fmt.Errorf("obs: stage cycles (%d) != end-to-end cycles (%d) over %d transactions",
			sum, s.endToEnd.Sum, s.completed)
	}
	return nil
}
