package obs

import "fmt"

// Text renders the event in the classic cctrace line format: a timestamp
// and node prefix followed by a kind-specific description. cctrace is a
// thin view over structured events via this renderer.
func (ev *Event) Text() string {
	prefix := fmt.Sprintf("[%8d n%d] ", int64(ev.At), ev.Node)
	switch ev.Kind {
	case EvDispatch:
		return prefix + fmt.Sprintf("dispatch e%d %s line=%#x occ=%d qdelay=%d",
			ev.Track, ev.Name, ev.Line, int64(ev.Dur), ev.A)
	case EvEnqueue:
		return prefix + fmt.Sprintf("enqueue e%d %s %s line=%#x depth=%d",
			ev.Track, QueueName(int(ev.A)), ev.Name, ev.Line, ev.B)
	case EvDequeue:
		return prefix + fmt.Sprintf("dequeue e%d %s line=%#x depth=%d",
			ev.Track, QueueName(int(ev.A)), ev.Line, ev.B)
	case EvBusStrobe:
		return prefix + fmt.Sprintf("bus %s line=%#x src=%d", ev.Name, ev.Line, ev.A)
	case EvNetSend:
		return prefix + fmt.Sprintf("send %s line=%#x -> n%d (%d flits)",
			ev.Name, ev.Line, ev.A, ev.B)
	case EvNetRecv:
		return prefix + fmt.Sprintf("recv %s line=%#x <- n%d", ev.Name, ev.Line, ev.A)
	case EvDirRead:
		hm := "miss"
		if ev.A == 1 {
			hm = "hit"
		}
		return prefix + fmt.Sprintf("dir read line=%#x %s (%s)", ev.Line, ev.Name, hm)
	case EvDirWrite:
		return prefix + fmt.Sprintf("dir write line=%#x %s", ev.Line, ev.Name)
	case EvCache:
		return prefix + fmt.Sprintf("cpu%d %s line=%#x %s", ev.Track, ev.Name, ev.Line, ev.Aux)
	case EvNack:
		return prefix + fmt.Sprintf("nack e%d %s line=%#x", ev.Track, ev.Name, ev.Line)
	case EvFault:
		return prefix + fmt.Sprintf("fault %s arg=%d", ev.Name, ev.A)
	case EvSpan:
		switch ev.B {
		case spanMarkSlice:
			return prefix + fmt.Sprintf("span txn=%#x %s line=%#x +%d cycles",
				uint64(ev.A), ev.Name, ev.Line, int64(ev.Dur))
		case spanMarkFinish:
			return prefix + fmt.Sprintf("span txn=%#x done line=%#x total=%d cycles",
				uint64(ev.A), ev.Line, int64(ev.Dur))
		default:
			return prefix + fmt.Sprintf("span txn=%#x begin %s line=%#x",
				uint64(ev.A), ev.Name, ev.Line)
		}
	default:
		return prefix + fmt.Sprintf("%s line=%#x", ev.Kind, ev.Line)
	}
}
