// Chrome trace_event export: buffered events become a JSON document loadable
// in Perfetto (ui.perfetto.dev) or chrome://tracing. Each node is a process;
// within a node, each protocol engine, the SMP bus, the NI ports, the
// directory, and each processor get their own named track. Handler
// executions are complete ("X") spans; everything else is an instant;
// queue insertions additionally drive counter tracks so input-queue depth
// plots over time.
package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Thread-track ids within a node's process. Engines occupy tidEngineBase+k
// and processors tidCPUBase+k, so fixed tracks sit between the two bases.
const (
	tidEngineBase = 0
	tidBus        = 32
	tidNIOut      = 33
	tidNIIn       = 34
	tidDir        = 35
	tidSpan       = 36
	tidCPUBase    = 40
)

// chromeEvent is one trace_event entry. Ph "X" spans carry Dur; "i" are
// instants; "C" counters; "M" metadata; "s"/"t" flow events carry Cat/ID
// and bind same-id slices into an arrow chain across tracks.
type chromeEvent struct {
	Name  string                 `json:"name"`
	Ph    string                 `json:"ph"`
	Cat   string                 `json:"cat,omitempty"`
	ID    string                 `json:"id,omitempty"`
	Ts    float64                `json:"ts"` // microseconds
	Dur   *float64               `json:"dur,omitempty"`
	Pid   int32                  `json:"pid"`
	Tid   int32                  `json:"tid"`
	Scope string                 `json:"s,omitempty"`
	Args  map[string]interface{} `json:"args,omitempty"`
}

// chromeDoc is the top-level trace_event JSON object.
type chromeDoc struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// usec converts simulated cycles (5 ns) to trace microseconds.
func usec(t int64) float64 { return float64(t) * 0.005 }

// trackOf maps an event to its thread track within the node's process.
func trackOf(ev *Event) int32 {
	switch ev.Kind {
	case EvDispatch, EvEnqueue, EvDequeue:
		return tidEngineBase + ev.Track
	case EvBusStrobe:
		return tidBus
	case EvNetSend:
		return tidNIOut
	case EvNetRecv:
		return tidNIIn
	case EvDirRead, EvDirWrite:
		return tidDir
	case EvSpan:
		return tidSpan
	case EvCache:
		return tidCPUBase + ev.Track
	default:
		return tidBus
	}
}

func trackName(tid int32) string {
	switch {
	case tid >= tidCPUBase:
		return fmt.Sprintf("cpu %d", tid-tidCPUBase)
	case tid == tidBus:
		return "smp bus"
	case tid == tidNIOut:
		return "ni out"
	case tid == tidNIIn:
		return "ni in"
	case tid == tidDir:
		return "directory"
	case tid == tidSpan:
		return "txn spans"
	default:
		return fmt.Sprintf("engine %d", tid-tidEngineBase)
	}
}

// WriteChromeTrace emits the events as a Chrome trace_event JSON document.
func WriteChromeTrace(w io.Writer, events []Event) error {
	doc := chromeDoc{DisplayTimeUnit: "ns", TraceEvents: make([]chromeEvent, 0, len(events)+64)}

	// Metadata: name each process and every track that appears.
	seenProc := map[int32]bool{}
	seenTrack := map[[2]int32]bool{}
	for i := range events {
		ev := &events[i]
		if !seenProc[ev.Node] {
			seenProc[ev.Node] = true
			doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
				Name: "process_name", Ph: "M", Pid: ev.Node,
				Args: map[string]interface{}{"name": fmt.Sprintf("node %d", ev.Node)},
			})
		}
		tid := trackOf(ev)
		key := [2]int32{ev.Node, tid}
		if !seenTrack[key] {
			seenTrack[key] = true
			doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: ev.Node, Tid: tid,
				Args: map[string]interface{}{"name": trackName(tid)},
			})
		}
	}

	// seenFlow tracks transaction IDs that already started a flow chain, so
	// the first span slice of a transaction emits a flow start ("s") and
	// every later slice a flow step ("t").
	seenFlow := map[int64]bool{}
	for i := range events {
		ev := &events[i]
		ce := chromeEvent{
			Name: ev.Name,
			Ts:   usec(int64(ev.At)),
			Pid:  ev.Node,
			Tid:  trackOf(ev),
			Args: map[string]interface{}{},
		}
		if ev.Line != 0 || ev.Kind != EvNetSend {
			ce.Args["line"] = fmt.Sprintf("%#x", ev.Line)
		}
		switch ev.Kind {
		case EvDispatch:
			ce.Ph = "X"
			d := usec(int64(ev.Dur))
			ce.Dur = &d
			ce.Args["queueDelayCycles"] = ev.A
		case EvEnqueue, EvDequeue:
			ce.Ph = "i"
			ce.Scope = "t"
			qn := QueueName(int(ev.A))
			ce.Name = ev.Kind.String() + " " + qn
			if ev.Kind == EvEnqueue {
				ce.Name = ce.Name + " " + ev.Name
			}
			ce.Args["depth"] = ev.B
			// Counter track: queue depth over time.
			doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
				Name: fmt.Sprintf("e%d %s depth", ev.Track, qn),
				Ph:   "C", Ts: ce.Ts, Pid: ev.Node, Tid: ce.Tid,
				Args: map[string]interface{}{"depth": ev.B},
			})
		case EvBusStrobe:
			ce.Ph = "i"
			ce.Scope = "t"
			ce.Args["src"] = ev.A
		case EvNetSend:
			ce.Ph = "i"
			ce.Scope = "t"
			ce.Args["dst"] = ev.A
			ce.Args["flits"] = ev.B
			ce.Args["line"] = fmt.Sprintf("%#x", ev.Line)
		case EvNetRecv:
			ce.Ph = "i"
			ce.Scope = "t"
			ce.Args["src"] = ev.A
		case EvDirRead:
			ce.Ph = "i"
			ce.Scope = "t"
			ce.Name = "dir read " + ev.Name
			ce.Args["hit"] = ev.A == 1
		case EvDirWrite:
			ce.Ph = "i"
			ce.Scope = "t"
			ce.Name = "dir write " + ev.Name
		case EvCache:
			ce.Ph = "i"
			ce.Scope = "t"
			ce.Name = ev.Name
			if ev.Aux != "" {
				ce.Args["state"] = ev.Aux
			}
		case EvSpan:
			txnID := fmt.Sprintf("%#x", uint64(ev.A))
			ce.Args["txn"] = txnID
			switch ev.B {
			case spanMarkSlice:
				ce.Ph = "X"
				d := usec(int64(ev.Dur))
				ce.Dur = &d
				// Flow events stitch this transaction's slices into an
				// arrow chain across nodes in Perfetto.
				ph := "t"
				if !seenFlow[ev.A] {
					seenFlow[ev.A] = true
					ph = "s"
				}
				doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
					Name: "txn", Ph: ph, Cat: "txn", ID: txnID,
					Ts: ce.Ts, Pid: ev.Node, Tid: ce.Tid,
				})
			case spanMarkFinish:
				ce.Ph = "i"
				ce.Scope = "p"
				ce.Name = "txn done"
				ce.Args["totalCycles"] = int64(ev.Dur)
			default:
				ce.Ph = "i"
				ce.Scope = "t"
				ce.Name = "begin " + ev.Name
			}
		default:
			ce.Ph = "i"
			ce.Scope = "t"
		}
		if ce.Name == "" {
			ce.Name = ev.Kind.String()
		}
		doc.TraceEvents = append(doc.TraceEvents, ce)
	}

	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(&doc); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteChromeTraceFile writes the trace to path (see WriteChromeTrace).
func WriteChromeTraceFile(path string, events []Event) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteChromeTrace(f, events); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
